(** The dynamic semantics of XQuery! (the paper's Figs. 2-3).

    The judgement [store0; dynEnv |- Expr => value; Delta; store1] is
    realized as: mutation of [ctx]'s store under a defined
    left-to-right evaluation order; ∆ accumulation on [ctx]'s snap
    stack; [Snap] pushes a frame, evaluates, pops and applies. *)

(** [eval ctx env focus e] evaluates a core expression under variable
    bindings [env] and the optional focus (context item / position /
    size). @raise Xqb_xdm.Errors.Dynamic_error,
    @raise Conflict.Conflict, @raise Xqb_store.Store.Update_error. *)
val eval :
  Context.t ->
  Context.env ->
  Context.focus option ->
  Core_ast.expr ->
  Xqb_xdm.Value.t

(** Convert a value to the node list an insert/replace payload
    denotes: runs of atomics become space-joined text nodes, exactly
    as in element-constructor content. Exposed for the plan executor
    and white-box tests. *)
val content_to_nodes : Context.t -> Xqb_xdm.Value.t -> Xqb_store.Store.node_id list

(** Order-by key machinery, shared with the plan executor's OrderBy:
    evaluate one key (empty allowed, sequences are errors) and compare
    key tuples (empty first, untyped-as-string, stable on ties). *)
val eval_sort_key :
  Context.t -> Context.env -> Context.focus option -> Core_ast.expr ->
  Xqb_xdm.Atomic.t option

val compare_sort_keys :
  (Xqb_xdm.Atomic.t option * Xqb_syntax.Ast.sort_dir) list ->
  (Xqb_xdm.Atomic.t option * Xqb_syntax.Ast.sort_dir) list ->
  int
