(** Builtin function library: the XQuery 1.0 Functions & Operators
    subset the paper's programs and the XMark workloads exercise, plus
    internal helpers produced by normalization ("%ddo", "%avt-part" —
    not reachable from surface syntax). *)

(** Is [name]/[arity] a known builtin? (fn: or no prefix; "xs:T" names
    the constructor functions.) *)
val is_builtin : string -> int -> bool

(** All builtin names (diagnostics). *)
val names : unit -> string list

(** Distinct-document-order on a node value (exposed for the plan
    executor). *)
val ddo : Xqb_store.Store.t -> Xqb_xdm.Value.t -> Xqb_xdm.Value.t

(** fn:deep-equal. *)
val deep_equal : Xqb_store.Store.t -> Xqb_xdm.Value.t -> Xqb_xdm.Value.t -> bool

(** Dispatch a builtin call. The focus carries the context
    item/position/size for fn:position, fn:last, fn:string()...
    @raise Xqb_xdm.Errors.Dynamic_error on errors, including unknown
    name/arity (XPST0017). *)
val call :
  Context.t ->
  Context.focus option ->
  string ->
  Xqb_xdm.Value.t list ->
  Xqb_xdm.Value.t
