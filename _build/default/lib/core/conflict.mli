(** Conflict detection for the conflict-detection snap semantics
    (§3.2): prove, before application, that every permutation of the
    ∆'s ordered application yields the same store. Linear in |∆| using
    hash tables over node ids (§4.1).

    The rules are deliberately conservative (the paper concedes the
    approach "rules out many reasonable pieces of code"):
    - R1: two inserts into the same slot conflict;
    - R2: an insert anchored on a deleted node conflicts;
    - R3: a node inserted by two requests conflicts;
    - R4: a node both inserted and deleted conflicts;
    - R5: diverging renames of one node conflict. *)

exception Conflict of string

(** @raise Conflict when order-independence cannot be proven. *)
val check : Update.delta -> unit

val is_conflict_free : Update.delta -> bool
