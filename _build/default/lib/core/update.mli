(** Update requests and pending-update lists (∆) — §3.2.

    An update request is the tuple "opname(par1, ..., parn)" of the
    paper; its application is a partial function on stores. A ∆ is an
    ordered list of requests, collected during evaluation inside a
    snap scope and applied when the scope closes ({!Apply}).

    Insert positions: [First]/[Last] are kept symbolic and resolved at
    {e application} time; [Before]/[After] anchor on nodes. This
    follows the paper's §3.4 worked example (and the later XQuery
    Update Facility) rather than the appendix's evaluation-time
    "last child otherwise self" resolution — the two are inconsistent
    in the paper; see EXPERIMENTS.md "Deviations". *)

type position =
  | First
  | Last
  | Before of Xqb_store.Store.node_id
  | After of Xqb_store.Store.node_id

type request =
  | Insert of {
      nodes : Xqb_store.Store.node_id list;
      parent : Xqb_store.Store.node_id;
      position : position;
    }
  | Delete of Xqb_store.Store.node_id  (** detach, §3.1 *)
  | Rename of Xqb_store.Store.node_id * Xqb_xml.Qname.t
  | Set_value of Xqb_store.Store.node_id * string
      (** XQUF "replace value of node": content for
          text/comment/PI/attribute nodes; for elements/documents all
          children are replaced by one text node *)

type delta = request list

val position_to_string : position -> string
val request_to_string : request -> string
val delta_to_string : delta -> string

(** Apply one request. Partial: @raise Xqb_store.Store.Update_error
    when a precondition fails. *)
val apply_request : Xqb_store.Store.t -> request -> unit
