lib/core/typing.mli: Core_ast Map Normalize Xqb_syntax
