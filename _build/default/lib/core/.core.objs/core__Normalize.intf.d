lib/core/normalize.mli: Core_ast Xqb_syntax Xqb_xml
