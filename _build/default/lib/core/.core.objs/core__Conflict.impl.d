lib/core/conflict.ml: Format Hashtbl List String Update Xqb_store Xqb_xml
