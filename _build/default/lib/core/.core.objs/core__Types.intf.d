lib/core/types.mli: Xqb_store Xqb_syntax Xqb_xdm Xqb_xml
