lib/core/functions.ml: Buffer Char Context Float Hashtbl List Logs Re String Types Xqb_store Xqb_syntax Xqb_xdm Xqb_xml
