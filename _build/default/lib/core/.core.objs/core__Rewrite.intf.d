lib/core/rewrite.mli: Core_ast Static
