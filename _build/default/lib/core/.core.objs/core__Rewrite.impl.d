lib/core/rewrite.ml: Core_ast Float List Static String Typing Xqb_store Xqb_syntax Xqb_xdm
