lib/core/apply.ml: Array Conflict Core_ast List Random Update Xqb_store
