lib/core/update.mli: Xqb_store Xqb_xml
