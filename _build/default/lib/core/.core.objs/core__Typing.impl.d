lib/core/typing.ml: Core_ast Format Hashtbl List Map Normalize String Xqb_store Xqb_syntax Xqb_xdm Xqb_xml
