lib/core/functions.mli: Context Xqb_store Xqb_xdm
