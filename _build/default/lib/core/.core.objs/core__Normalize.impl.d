lib/core/normalize.ml: Core_ast Format List Option Printf Xqb_syntax Xqb_xdm Xqb_xml
