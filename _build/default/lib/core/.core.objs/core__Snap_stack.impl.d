lib/core/snap_stack.ml: Apply List Update
