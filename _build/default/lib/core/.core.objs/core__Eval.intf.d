lib/core/eval.mli: Context Core_ast Xqb_store Xqb_syntax Xqb_xdm
