lib/core/context.ml: Apply Core_ast Hashtbl Map Random Snap_stack String Update Xqb_store Xqb_syntax Xqb_xdm Xqb_xml
