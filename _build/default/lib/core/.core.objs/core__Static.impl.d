lib/core/static.ml: Core_ast Hashtbl List Normalize Option Printf Set String Xqb_xml
