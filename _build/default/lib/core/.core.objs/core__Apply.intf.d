lib/core/apply.mli: Core_ast Random Update Xqb_store
