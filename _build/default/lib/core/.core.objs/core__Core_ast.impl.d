lib/core/core_ast.ml: Format List Xqb_store Xqb_syntax Xqb_xdm Xqb_xml
