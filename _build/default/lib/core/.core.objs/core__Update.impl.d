lib/core/update.ml: List Printf String Xqb_store Xqb_xml
