lib/core/conflict.mli: Update
