lib/core/static.mli: Core_ast Normalize Set Xqb_xml
