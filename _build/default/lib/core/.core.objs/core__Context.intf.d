lib/core/context.mli: Apply Core_ast Hashtbl Map Random Snap_stack Update Xqb_store Xqb_syntax Xqb_xdm Xqb_xml
