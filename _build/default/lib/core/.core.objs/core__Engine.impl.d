lib/core/engine.ml: Buffer Context Core_ast Eval Functions Hashtbl List Normalize Option Printexc Printf Rewrite Static Types Typing Xqb_store Xqb_syntax Xqb_xdm Xqb_xml
