lib/core/eval.ml: Apply Context Core_ast Functions Int List Printf Set Snap_stack String Types Update Xqb_store Xqb_syntax Xqb_xdm Xqb_xml
