lib/core/types.ml: List Xqb_store Xqb_syntax Xqb_xdm Xqb_xml
