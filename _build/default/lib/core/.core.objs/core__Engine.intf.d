lib/core/engine.mli: Context Core_ast Normalize Static Xqb_store Xqb_xdm
