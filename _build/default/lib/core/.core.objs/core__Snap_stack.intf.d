lib/core/snap_stack.mli: Apply Update
