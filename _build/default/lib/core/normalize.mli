(** Normalization of the surface language into the XQuery! core
    (§3.3). The paper's one non-trivial rule — a deep copy inserted
    around insert's first argument and replace's second — plus the
    standard XQuery 1.0 normalizations: FLWOR chains to nested
    for/let/if, paths to per-context-node iteration with
    distinct-doc-order, direct constructors to computed constructors,
    typeswitch to an instance-of cascade, function resolution. *)

exception Static_error of string

type env = {
  user_fns : (Xqb_xml.Qname.t * int) list;
  is_builtin : string -> int -> bool;
}

(** Fresh internal variable ("%base<n>") — cannot collide with surface
    names, which never contain '%'. *)
val fresh_var : string -> string

val normalize : env -> Xqb_syntax.Ast.expr -> Core_ast.expr

type func = {
  fname : Xqb_xml.Qname.t;
  params : (string * Xqb_syntax.Ast.seq_type option) list;
  return_type : Xqb_syntax.Ast.seq_type option;
  body : Core_ast.expr;
}

type prog = {
  global_vars : (string * Xqb_syntax.Ast.seq_type option * Core_ast.expr) list;
  functions : func list;
  body : Core_ast.expr option;
}

(** Normalize a parsed program. [extra_fns] contributes
    already-installed host functions (earlier modules in the same
    engine). @raise Static_error on unknown functions/arities and
    duplicate declarations. *)
val normalize_prog :
  ?extra_fns:(Xqb_xml.Qname.t * int) list ->
  is_builtin:(string -> int -> bool) ->
  Xqb_syntax.Ast.prog ->
  prog
