(* Update requests and pending-update lists (∆) — §3.2.

   An update request is a tuple "opname(par1, ..., parn)"; its
   application is a partial function from stores to stores (the
   preconditions are enforced by [Xqb_store.Store]). A ∆ is an
   *ordered* list of requests; the order is fully specified by the
   language semantics, and whether application honors it depends on
   the snap mode ([Apply]).

   Note on insert positions: the paper's worked example in §3.4
   (snap ordered { insert <a/>; snap { insert <b/> }; insert <c/> }
   yielding b,a,c) requires "into" to mean *as last at application
   time*: the inner snap's <b/> lands before the outer <a/> only if
   the outer inserts resolve "last" when the outer ∆ is applied, not
   when the insert expression is evaluated. The appendix's
   "last child otherwise self" judgement resolves the anchor at
   evaluation time, which would yield a,b,c instead. We follow the
   worked example (and the later XQuery Update Facility), keeping
   First/Last symbolic and Before/After anchored on nodes. *)

type position =
  | First
  | Last
  | Before of Xqb_store.Store.node_id
  | After of Xqb_store.Store.node_id

type request =
  | Insert of {
      nodes : Xqb_store.Store.node_id list;
      parent : Xqb_store.Store.node_id;
      position : position;
    }
  | Delete of Xqb_store.Store.node_id
  | Rename of Xqb_store.Store.node_id * Xqb_xml.Qname.t
  | Set_value of Xqb_store.Store.node_id * string
    (* XQUF "replace value of node": for text/comment/PI/attribute
       nodes set the content; for elements/documents replace all
       children by one text node with the given value *)

(* ∆: most-recent request last. Represented as a reversed list inside
   accumulation frames (see [Snap_stack]) and materialized in order
   here. *)
type delta = request list

let position_to_string = function
  | First -> "first"
  | Last -> "last"
  | Before n -> Printf.sprintf "before(%d)" n
  | After n -> Printf.sprintf "after(%d)" n

let request_to_string = function
  | Insert { nodes; parent; position } ->
    Printf.sprintf "insert([%s], %d, %s)"
      (String.concat ";" (List.map string_of_int nodes))
      parent
      (position_to_string position)
  | Delete n -> Printf.sprintf "delete(%d)" n
  | Rename (n, q) -> Printf.sprintf "rename(%d, %s)" n (Xqb_xml.Qname.to_string q)
  | Set_value (n, s) -> Printf.sprintf "set-value(%d, %S)" n s

let delta_to_string d = String.concat ", " (List.map request_to_string d)

(* Apply one request to the store. Partial: raises
   [Xqb_store.Store.Update_error] when a precondition fails. *)
let apply_request store (r : request) =
  match r with
  | Insert { nodes; parent; position } -> (
    match position with
    | First -> Xqb_store.Store.insert store ~parent ~position:Xqb_store.Store.First nodes
    | Last -> Xqb_store.Store.insert store ~parent ~position:Xqb_store.Store.Last nodes
    | After anchor ->
      Xqb_store.Store.insert store ~parent ~position:(Xqb_store.Store.After anchor) nodes
    | Before anchor ->
      (* before(x) = after the preceding sibling of x, or first *)
      let a = Xqb_store.Store.get store anchor in
      if a.Xqb_store.Store.parent <> Some parent then
        raise
          (Xqb_store.Store.Update_error
             "insertion anchor is not a child of the target parent");
      if a.Xqb_store.Store.pos = 0 then
        Xqb_store.Store.insert store ~parent ~position:Xqb_store.Store.First nodes
      else
        let prev =
          Xqb_store.Store.nth_child store parent (a.Xqb_store.Store.pos - 1)
        in
        Xqb_store.Store.insert store ~parent ~position:(Xqb_store.Store.After prev)
          nodes)
  | Delete n -> Xqb_store.Store.detach store n
  | Rename (n, q) -> Xqb_store.Store.rename store n q
  | Set_value (n, s) -> (
    match Xqb_store.Store.kind store n with
    | Xqb_store.Store.Text | Xqb_store.Store.Comment | Xqb_store.Store.Pi
    | Xqb_store.Store.Attribute ->
      Xqb_store.Store.set_content store n s
    | Xqb_store.Store.Element | Xqb_store.Store.Document ->
      List.iter (Xqb_store.Store.detach store) (Xqb_store.Store.children store n);
      if s <> "" then
        Xqb_store.Store.insert store ~parent:n ~position:Xqb_store.Store.Last
          [ Xqb_store.Store.make_text store s ])
