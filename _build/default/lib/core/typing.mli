(** A lightweight static type system — the paper's open "static
    typing" issue, implemented as far as is useful without schema
    import: sound sequence-type inference (item-kind x occurrence
    lattices) plus advisory warnings for expressions whose type proves
    a dynamic error. Warnings never block execution. *)

type atomic_kind =
  | K_integer
  | K_decimal
  | K_double
  | K_numeric  (** any numeric *)
  | K_string
  | K_boolean
  | K_untyped
  | K_qname
  | K_any_atomic

type item_ty =
  | T_atomic of atomic_kind
  | T_element
  | T_attribute
  | T_text
  | T_comment
  | T_pi
  | T_document
  | T_node  (** any node kind *)
  | T_item  (** anything *)

(** How many items the value may contain ([O_zero] = provably empty). *)
type occ = O_zero | O_one | O_opt | O_star | O_plus

type t = { item : item_ty; occ : occ }

val empty_ty : t

(** The top type, [item()*]. *)
val item_star : t

val to_string : t -> string
val item_ty_to_string : item_ty -> string

(** Least upper bounds. *)
val join : t -> t -> t

(** Type of a sequence concatenation / of an iteration body. *)
val concat : t -> t -> t

(** Translate a declared sequence type. *)
val of_seq_type : Xqb_syntax.Ast.seq_type -> t

(** Can a value of the inferred type never match the declared type?
    (Conservative: [false] when unsure.) *)
val disjoint_with_declared : t -> t -> bool

module SMap : Map.S with type key = string

(** Infer a whole program; returns the advisory warnings (empty = no
    definite problems found). Parameter/return annotations seed the
    environment; unannotated positions default to [item()*]. *)
val check_prog : Normalize.prog -> string list

(** Infer one expression under optional variable types; returns the
    type and any warnings. *)
val infer_expr : ?vars:t SMap.t -> Core_ast.expr -> t * string list
