(* Dynamic sequence-type matching: [instance of], function parameter
   and return checks ("as xs:integer" on nextid() in §2.5), and the
   cast/castable operators. *)

module A = Xqb_syntax.Ast
module Atomic = Xqb_xdm.Atomic
module Item = Xqb_xdm.Item
module Store = Xqb_store.Store
module Qname = Xqb_xml.Qname

(* Does atomic [a] have (a subtype of) the named atomic type? The
   numeric tower is integer <: decimal; all types <: anyAtomicType. *)
let atomic_matches (a : Atomic.t) (q : Qname.t) =
  let name = Qname.to_string q in
  match name, a with
  | "xs:anyAtomicType", _ -> true
  | "xs:integer", Atomic.Integer _ -> true
  | ("xs:decimal" | "xs:numeric"), (Atomic.Integer _ | Atomic.Decimal _) -> true
  | "xs:numeric", Atomic.Double _ -> true
  | "xs:double", Atomic.Double _ -> true
  | "xs:float", Atomic.Double _ -> true
  | "xs:string", Atomic.String _ -> true
  | "xs:boolean", Atomic.Boolean _ -> true
  | "xs:untypedAtomic", Atomic.Untyped _ -> true
  | "xs:QName", Atomic.QName _ -> true
  | _ -> false

let item_matches store (it : A.item_type) (i : Item.t) =
  match it, i with
  | A.It_item, _ -> true
  | A.It_atomic q, Item.Atomic a -> atomic_matches a q
  | A.It_atomic _, Item.Node _ -> false
  | _, Item.Atomic _ -> false
  | A.It_node, Item.Node _ -> true
  | A.It_element None, Item.Node n -> Store.kind store n = Store.Element
  | A.It_element (Some q), Item.Node n ->
    Store.kind store n = Store.Element
    && (match Store.name store n with
       | Some nm -> Qname.equal nm q
       | None -> false)
  | A.It_attribute None, Item.Node n -> Store.kind store n = Store.Attribute
  | A.It_attribute (Some q), Item.Node n ->
    Store.kind store n = Store.Attribute
    && (match Store.name store n with
       | Some nm -> Qname.equal nm q
       | None -> false)
  | A.It_text, Item.Node n -> Store.kind store n = Store.Text
  | A.It_comment, Item.Node n -> Store.kind store n = Store.Comment
  | A.It_pi, Item.Node n -> Store.kind store n = Store.Pi
  | A.It_document, Item.Node n -> Store.kind store n = Store.Document

let matches store (st : A.seq_type) (v : Xqb_xdm.Value.t) =
  match st with
  | A.St_empty -> v = []
  | A.St (it, occ) -> (
    let ok_items = List.for_all (item_matches store it) v in
    ok_items
    &&
    match occ, v with
    | A.Occ_one, [ _ ] -> true
    | A.Occ_one, _ -> false
    | A.Occ_opt, ([] | [ _ ]) -> true
    | A.Occ_opt, _ -> false
    | A.Occ_star, _ -> true
    | A.Occ_plus, _ :: _ -> true
    | A.Occ_plus, [] -> false)

(* [cast as] on a single atomic value. *)
let cast_atomic (a : Atomic.t) (q : Qname.t) : Atomic.t =
  match Qname.to_string q with
  | "xs:integer" -> Atomic.Integer (Atomic.to_integer a)
  | "xs:decimal" -> Atomic.Decimal (Atomic.to_double a)
  | "xs:double" | "xs:float" -> Atomic.Double (Atomic.to_double a)
  | "xs:string" -> Atomic.String (Atomic.to_string a)
  | "xs:boolean" -> Atomic.Boolean (Atomic.to_boolean a)
  | "xs:untypedAtomic" -> Atomic.Untyped (Atomic.to_string a)
  | "xs:QName" -> (
    match a with
    | Atomic.QName _ -> a
    | Atomic.String s | Atomic.Untyped s ->
      let q = Qname.of_string s in
      if not (Qname.valid q) then
        Xqb_xdm.Errors.value_error "cannot cast %S to xs:QName" s;
      Atomic.QName q
    | _ ->
      Xqb_xdm.Errors.type_error "cannot cast %s to xs:QName" (Atomic.type_name a))
  | t -> Xqb_xdm.Errors.type_error "unknown cast target %s" t

let cast store (it : A.item_type) (v : Xqb_xdm.Value.t) : Xqb_xdm.Value.t =
  match it with
  | A.It_atomic q -> (
    match v with
    | [] -> Xqb_xdm.Errors.type_error "cast of the empty sequence"
    | [ i ] -> [ Item.Atomic (cast_atomic (Item.atomize store i) q) ]
    | _ -> Xqb_xdm.Errors.type_error "cast of a sequence of more than one item")
  | _ -> Xqb_xdm.Errors.type_error "cast target must be an atomic type"

let castable store it v =
  match cast store it v with _ -> true | exception _ -> false
