(** The "phase of syntactic rewriting" of §4.2: simplification rules
    on the core language, each guarded by the side-effect judgement —
    a rule that drops, copies or moves a subexpression demands purity,
    because eliminating or duplicating a merely-Updating expression
    would change the ∆ and moving code across an Effecting one would
    change what it observes.

    Rules: if-const, dead-let, inline-let (copy propagation only —
    general inlining is unsound for node constructors and
    store-reading expressions), for-empty, for-singleton, seq-empty,
    const-fold (only when the folded operation cannot raise),
    pred-true/pred-false (boolean constants only; numeric constants
    are positional), ddo-ddo. *)

(** Simplify to a (bounded) fixpoint. Returns the rewritten expression
    and fire counts per rule name. *)
val simplify :
  purity:(Core_ast.expr -> Static.purity) ->
  Core_ast.expr ->
  Core_ast.expr * (string * int) list

(** Free occurrence count of a variable (exposed for tests). *)
val occurrences : string -> Core_ast.expr -> int

(** Does evaluation depend on the focus? *)
val uses_focus : Core_ast.expr -> bool
