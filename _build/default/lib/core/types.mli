(** Dynamic sequence-type matching: [instance of], [treat as],
    function signatures ("as xs:integer" on nextid() in §2.5), and the
    cast/castable operators. *)

(** Atomic-type subsumption: integer <: decimal; everything
    <: xs:anyAtomicType; untypedAtomic only matches itself. *)
val atomic_matches : Xqb_xdm.Atomic.t -> Xqb_xml.Qname.t -> bool

val item_matches :
  Xqb_store.Store.t -> Xqb_syntax.Ast.item_type -> Xqb_xdm.Item.t -> bool

(** Does the value match the sequence type (item type + occurrence)? *)
val matches : Xqb_store.Store.t -> Xqb_syntax.Ast.seq_type -> Xqb_xdm.Value.t -> bool

(** [cast as] on a single atomic value.
    @raise Xqb_xdm.Errors.Dynamic_error on failure. *)
val cast_atomic : Xqb_xdm.Atomic.t -> Xqb_xml.Qname.t -> Xqb_xdm.Atomic.t

(** [cast as] on a value: atomize a singleton, cast it. Errors on
    empty or plural input and on non-atomic target types. *)
val cast :
  Xqb_store.Store.t -> Xqb_syntax.Ast.item_type -> Xqb_xdm.Value.t -> Xqb_xdm.Value.t

(** Would {!cast} succeed? *)
val castable : Xqb_store.Store.t -> Xqb_syntax.Ast.item_type -> Xqb_xdm.Value.t -> bool
