(* The tuple algebra of §4 — a simplified version of the Galax
   nested-relational algebra ([20, 21] in the paper). Tuple plans
   ([tplan]) produce streams of variable-binding tuples; value plans
   ([vplan]) produce XDM values.

   The shape mirrors the paper's optimized plan for the XMark Q8
   variant:

     Snap {
       MapFromItem { <person ...>{count(Input#a)}</person> }
       (GroupBy [Input#p, {...}]
         (LeftOuterJoin (MapFromItem{[p:Input]}(...),
                         MapFromItem{[t:Input]}(...))
           on {...}))
     }

   [Outer_join_group] fuses the LeftOuterJoin + GroupBy pair — the
   grouping key is the (preserved) left tuple, which is how Galax's
   unnesting uses it, so fusing loses no generality for this pattern
   and keeps the executor O(|L| + |R| + |matches|). *)

module C = Core.Core_ast

type tplan =
  | Unit  (* a single empty tuple *)
  | For_tuple of tplan * string * string option * C.expr
    (* MapConcat: for each input tuple, bind var (and position var)
       from the expression's items *)
  | Let_tuple of tplan * string * C.expr
  | Select of tplan * C.expr  (* keep tuples where the EBV holds *)
  | Join of {
      left : tplan;
      right : tplan;
      lkey : C.expr;  (* evaluated in left-tuple scope *)
      rkey : C.expr;  (* evaluated in right-tuple scope *)
    }
    (* typed hash join on general-= of the keys *)
  | Outer_join_group of {
      left : tplan;
      right : tplan;
      lkey : C.expr;
      rkey : C.expr;
      ret : C.expr;  (* evaluated per matching right tuple (+ left scope) *)
      out : string;  (* variable receiving the grouped sequence *)
    }
  | Sort of tplan * (C.expr * Xqb_syntax.Ast.sort_dir) list
    (* stable sort of the tuple stream by per-tuple keys (order by) *)

type vplan =
  | Direct of C.expr  (* fallback: direct interpretation *)
  | Map_from_tuple of tplan * C.expr  (* MapFromItem *)
  | Seq_v of vplan * vplan
  | Snap_v of C.snap_mode * vplan

(* -- Explain -------------------------------------------------------- *)

let rec pp_tplan ppf (p : tplan) =
  let open Format in
  match p with
  | Unit -> fprintf ppf "Unit"
  | For_tuple (input, v, _, e) ->
    fprintf ppf "@[<v 2>MapConcat [%s := %s]@,(%a)@]" v
      (abbrev (C.to_string e))
      pp_tplan input
  | Let_tuple (input, v, e) ->
    fprintf ppf "@[<v 2>MapLet [%s := %s]@,(%a)@]" v (abbrev (C.to_string e))
      pp_tplan input
  | Select (input, e) ->
    fprintf ppf "@[<v 2>Select {%s}@,(%a)@]" (abbrev (C.to_string e)) pp_tplan input
  | Join { left; right; lkey; rkey } ->
    fprintf ppf "@[<v 2>HashJoin on {%s = %s}@,(%a,@, %a)@]"
      (abbrev (C.to_string lkey))
      (abbrev (C.to_string rkey))
      pp_tplan left pp_tplan right
  | Outer_join_group { left; right; lkey; rkey; ret; out } ->
    fprintf ppf
      "@[<v 2>GroupBy [%s := {%s}]@,(@[<v 2>LeftOuterJoin on {%s = %s}@,(%a,@, %a)@])@]"
      out
      (abbrev (C.to_string ret))
      (abbrev (C.to_string lkey))
      (abbrev (C.to_string rkey))
      pp_tplan left pp_tplan right
  | Sort (input, specs) ->
    fprintf ppf "@[<v 2>OrderBy [%s]@,(%a)@]"
      (String.concat ", "
         (List.map
            (fun (k, d) ->
              abbrev (C.to_string k)
              ^ match d with Xqb_syntax.Ast.Ascending -> "" | Descending -> " desc")
            specs))
      pp_tplan input

and pp_vplan ppf (p : vplan) =
  let open Format in
  match p with
  | Direct e -> fprintf ppf "Eval {%s}" (abbrev (C.to_string e))
  | Map_from_tuple (t, e) ->
    fprintf ppf "@[<v 2>MapFromItem {%s}@,(%a)@]" (abbrev (C.to_string e)) pp_tplan t
  | Seq_v (a, b) -> fprintf ppf "@[<v 2>Sequence@,(%a,@, %a)@]" pp_vplan a pp_vplan b
  | Snap_v (m, p) ->
    let ms = Xqb_syntax.Ast.snap_mode_to_string m in
    fprintf ppf "@[<v 2>Snap %s{@,%a@,}@]" (if ms = "" then "" else ms ^ " ") pp_vplan p

and abbrev s = if String.length s <= 60 then s else String.sub s 0 57 ^ "..."

let explain (p : vplan) = Format.asprintf "%a" pp_vplan p

(* Is any part of the plan more than a Direct fallback? (E7 counts
   this as "rewrites fired".) *)
let rec uses_algebra = function
  | Direct _ -> false
  | Map_from_tuple _ -> true
  | Seq_v (a, b) -> uses_algebra a || uses_algebra b
  | Snap_v (_, p) -> uses_algebra p

let rec has_join_t = function
  | Unit -> false
  | For_tuple (p, _, _, _) | Let_tuple (p, _, _) | Select (p, _) | Sort (p, _) ->
    has_join_t p
  | Join _ | Outer_join_group _ -> true

let rec has_join = function
  | Direct _ -> false
  | Map_from_tuple (t, _) -> has_join_t t
  | Seq_v (a, b) -> has_join a || has_join b
  | Snap_v (_, p) -> has_join p
