lib/algebra/runner.mli: Compile Core Exec Plan Xqb_xdm
