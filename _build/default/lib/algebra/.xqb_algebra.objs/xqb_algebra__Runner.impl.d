lib/algebra/runner.ml: Compile Core Exec Plan Xqb_xdm
