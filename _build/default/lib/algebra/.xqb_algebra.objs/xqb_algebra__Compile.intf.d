lib/algebra/compile.mli: Core Plan
