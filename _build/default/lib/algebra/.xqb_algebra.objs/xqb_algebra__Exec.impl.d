lib/algebra/exec.ml: Array Core Float Hashtbl List Plan String Xqb_xdm Xqb_xml
