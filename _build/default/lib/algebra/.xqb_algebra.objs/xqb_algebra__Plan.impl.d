lib/algebra/plan.ml: Core Format List String Xqb_syntax
