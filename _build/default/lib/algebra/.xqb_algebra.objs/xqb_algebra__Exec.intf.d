lib/algebra/exec.mli: Core Plan Xqb_xdm
