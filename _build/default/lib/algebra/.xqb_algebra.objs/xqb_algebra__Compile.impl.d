lib/algebra/compile.ml: Core List Option Plan Xqb_syntax
