(** Compilation of core expressions into the tuple algebra, with the
    §4.2-4.3 rewrite guards:

    - a block containing a snap compiles to [Direct] (evaluation order
      is pinned);
    - the inner branch of a join (right input and both keys) must be
      {e pure} — a merely-updating inner branch would change how many
      update requests are emitted (the cardinality guard);
    - return clauses may be updating: inside the innermost snap they
      emit requests without touching the store, and the join/group-by
      plan preserves their cardinality. *)

(** Rewrite trace: which rules fired and which were rejected (with the
    guard's reason) — E7's instrumentation. *)
type result = {
  plan : Plan.vplan;
  fired : string list;
  rejected : (string * string) list;
}

(** [compile ~purity e] compiles [e]; [purity] is the §5
    classification oracle (from [Core.Static.purity_in_prog]). *)
val compile : purity:(Core.Core_ast.expr -> Core.Static.purity) -> Core.Core_ast.expr -> result
