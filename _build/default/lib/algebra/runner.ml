(* Optimizing front end: the same pipeline as [Core.Engine.run] with
   the algebraic compilation step of §4.2 inserted between
   normalization and evaluation. *)

module Engine = Core.Engine
module C = Core.Core_ast

type run_result = {
  value : Xqb_xdm.Value.t;
  plan : Plan.vplan;
  fired : string list;  (* rewrites that fired *)
  rejected : (string * string) list;  (* rewrites rejected by a guard *)
  stats : Exec.stats;
}

(* Compile [source] and return the optimized plan for its body (under
   the implicit top-level snap). *)
let plan_of ?(mode = C.Snap_ordered) engine source =
  let compiled = Engine.compile engine source in
  let purity = Core.Static.purity_oracle compiled.Engine.prog in
  let body =
    match compiled.Engine.prog.Core.Normalize.body with
    | Some b -> C.Snap (mode, b)
    | None -> C.Empty
  in
  (compiled, Compile.compile ~purity body)

let run ?(mode = C.Snap_ordered) engine source : run_result =
  let compiled, cres = plan_of ~mode engine source in
  Engine.eval_globals ~mode engine compiled;
  let stats = Exec.new_stats () in
  let ctx = Engine.context engine in
  let value = Exec.exec ~stats ctx ctx.Core.Context.globals cres.Compile.plan in
  {
    value;
    plan = cres.Compile.plan;
    fired = cres.Compile.fired;
    rejected = cres.Compile.rejected;
    stats;
  }

let explain ?mode engine source =
  let _, cres = plan_of ?mode engine source in
  Plan.explain cres.Compile.plan
