(** Executor for the tuple algebra. Tuples are variable environments
    extending the engine's globals; expression leaves are evaluated by
    the core evaluator, so plan execution and direct evaluation share
    one semantics. *)

type stats = {
  mutable tuples : int;  (** tuples materialized *)
  mutable probes : int;  (** hash-table probes *)
  mutable matches : int;  (** join pairs produced *)
}

val new_stats : unit -> stats

(** Execute a tuple plan from an initial environment; returns the
    tuple stream in order. *)
val exec_t :
  Core.Context.t -> stats -> Core.Context.env -> Plan.tplan -> Core.Context.env list

(** Execute a value plan. *)
val exec_v :
  Core.Context.t -> stats -> Core.Context.env -> Plan.vplan -> Xqb_xdm.Value.t

val exec :
  ?stats:stats ->
  Core.Context.t ->
  Core.Context.env ->
  Plan.vplan ->
  Xqb_xdm.Value.t
