(* Dynamic and type errors, named with the W3C error codes the
   XQuery 1.0 / Formal Semantics drafts use. A single exception keeps
   error propagation simple across the evaluator, functions library
   and plan executor. *)

exception Dynamic_error of string * string  (* code, message *)

let raise_error code fmt =
  Format.kasprintf (fun msg -> raise (Dynamic_error (code, msg))) fmt

(* Common codes *)
let type_error fmt = raise_error "XPTY0004" fmt
let value_error fmt = raise_error "FORG0001" fmt
let arity_error fmt = raise_error "XPST0017" fmt
let undefined_variable fmt = raise_error "XPST0008" fmt
let division_by_zero () = raise_error "FOAR0001" "division by zero"
let ebv_error fmt = raise_error "FORG0006" fmt

let to_string = function
  | Dynamic_error (code, msg) -> Printf.sprintf "[%s] %s" code msg
  | e -> Printexc.to_string e
