(* XDM values are flat sequences of items; there are no nested
   sequences and a single item is the singleton sequence. *)

type t = Item.t list

let empty : t = []
let of_item i : t = [ i ]
let of_atomic a = [ Item.Atomic a ]
let of_node id = [ Item.Node id ]
let of_nodes ids = List.map Item.node ids
let of_int i = of_atomic (Atomic.Integer i)
let of_bool b = of_atomic (Atomic.Boolean b)
let of_string s = of_atomic (Atomic.String s)
let of_double f = of_atomic (Atomic.Double f)

let singleton_item (v : t) =
  match v with
  | [ i ] -> i
  | [] -> Errors.type_error "expected exactly one item, got empty sequence"
  | _ -> Errors.type_error "expected exactly one item, got %d" (List.length v)

let item_opt (v : t) =
  match v with
  | [] -> None
  | [ i ] -> Some i
  | _ -> Errors.type_error "expected at most one item, got %d" (List.length v)

let atomize store (v : t) = List.map (Item.atomize store) v

let singleton_atomic store v = Item.atomize store (singleton_item v)

let singleton_node v = Item.as_node (singleton_item v)

let nodes_of v =
  List.map
    (function
      | Item.Node id -> id
      | Item.Atomic a ->
        Errors.type_error "expected a sequence of nodes, found %s"
          (Atomic.type_name a))
    v

(* Effective boolean value, XQuery 1.0 §2.4.3. *)
let effective_boolean_value (v : t) =
  match v with
  | [] -> false
  | Item.Node _ :: _ -> true
  | [ Item.Atomic a ] -> (
    match a with
    | Atomic.Boolean b -> b
    | Atomic.String s | Atomic.Untyped s -> s <> ""
    | Atomic.Integer i -> i <> 0
    | Atomic.Decimal f | Atomic.Double f -> not (f = 0.0 || Float.is_nan f)
    | Atomic.QName _ ->
      Errors.ebv_error "effective boolean value of a QName")
  | Item.Atomic _ :: _ ->
    Errors.ebv_error "effective boolean value of a multi-atomic sequence"

(* fn:string() on a value: string of the single item, "" for empty. *)
let string_value store (v : t) =
  match v with
  | [] -> ""
  | [ i ] -> Item.string_value store i
  | _ -> Errors.type_error "fn:string on a sequence of more than one item"

let to_integer store v = Atomic.to_integer (singleton_atomic store v)
let to_double store v = Atomic.to_double (singleton_atomic store v)

let equal store (a : t) (b : t) =
  List.length a = List.length b && List.for_all2 (Item.equal store) a b

let pp store ppf (v : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (Item.pp store))
    v
