lib/xdm/item.mli: Atomic Format Xqb_store
