lib/xdm/item.ml: Atomic Errors Format Xqb_store Xqb_xml
