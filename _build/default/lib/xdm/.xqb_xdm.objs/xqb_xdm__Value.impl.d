lib/xdm/value.ml: Atomic Errors Float Format Item List
