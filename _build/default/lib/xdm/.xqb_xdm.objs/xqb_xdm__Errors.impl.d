lib/xdm/errors.ml: Format Printexc Printf
