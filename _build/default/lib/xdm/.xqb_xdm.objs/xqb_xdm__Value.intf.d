lib/xdm/value.mli: Atomic Format Item Xqb_store
