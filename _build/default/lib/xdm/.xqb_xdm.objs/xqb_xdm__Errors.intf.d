lib/xdm/errors.mli: Format
