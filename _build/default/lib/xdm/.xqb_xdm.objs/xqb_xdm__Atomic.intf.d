lib/xdm/atomic.mli: Format Xqb_xml
