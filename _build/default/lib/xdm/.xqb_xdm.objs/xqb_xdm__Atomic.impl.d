lib/xdm/atomic.ml: Bool Errors Float Format Printf String Xqb_xml
