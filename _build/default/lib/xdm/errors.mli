(** Dynamic and type errors, named with the W3C error codes the
    XQuery 1.0 drafts use. *)

exception Dynamic_error of string * string  (** code, message *)

(** [raise_error code fmt ...] raises {!Dynamic_error}. *)
val raise_error : string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** XPTY0004. *)
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** FORG0001 (invalid lexical value). *)
val value_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** XPST0017 (unknown function / wrong arity). *)
val arity_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** XPST0008. *)
val undefined_variable : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** FOAR0001. *)
val division_by_zero : unit -> 'a

(** FORG0006 (bad effective boolean value). *)
val ebv_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Render any exception, formatting {!Dynamic_error} as "[code] msg". *)
val to_string : exn -> string
