(* XDM items: a node reference or an atomic value. *)

type t =
  | Node of Xqb_store.Store.node_id
  | Atomic of Atomic.t

let node id = Node id
let atomic a = Atomic a
let integer i = Atomic (Atomic.Integer i)
let string s = Atomic (Atomic.String s)
let boolean b = Atomic (Atomic.Boolean b)
let double f = Atomic (Atomic.Double f)

let is_node = function Node _ -> true | Atomic _ -> false

let as_node = function
  | Node id -> id
  | Atomic a -> Errors.type_error "expected a node, got %s" (Atomic.type_name a)

let as_atomic = function
  | Atomic a -> a
  | Node _ -> Errors.type_error "expected an atomic value, got a node"

(* String value of an item (fn:string). *)
let string_value store = function
  | Node id -> Xqb_store.Store.string_value store id
  | Atomic a -> Atomic.to_string a

(* Typed value: nodes in well-formed (untyped) documents atomize to
   xs:untypedAtomic of their string value. *)
let atomize store = function
  | Node id -> Atomic.Untyped (Xqb_store.Store.string_value store id)
  | Atomic a -> a

let equal store a b =
  match a, b with
  | Node x, Node y -> x = y
  | Atomic x, Atomic y -> Atomic.equal x y
  | Node _, Atomic _ | Atomic _, Node _ -> ignore store; false

let pp store ppf = function
  | Node id -> Format.fprintf ppf "node:%d<%s>" id
      (match Xqb_store.Store.name store id with
      | Some q -> Xqb_xml.Qname.to_string q
      | None -> Xqb_store.Store.kind_to_string (Xqb_store.Store.kind store id))
  | Atomic a -> Atomic.pp ppf a
