(* Atomic values of the XDM fragment the paper exercises. The paper
   restricts attention to well-formed (untyped) documents, so the
   atomic universe is: the numeric tower integer/decimal/double,
   strings, booleans, untypedAtomic (what node atomization yields) and
   QNames (for rename). *)

type t =
  | Integer of int
  | Decimal of float
  | Double of float
  | String of string
  | Boolean of bool
  | Untyped of string
  | QName of Xqb_xml.Qname.t

let type_name = function
  | Integer _ -> "xs:integer"
  | Decimal _ -> "xs:decimal"
  | Double _ -> "xs:double"
  | String _ -> "xs:string"
  | Boolean _ -> "xs:boolean"
  | Untyped _ -> "xs:untypedAtomic"
  | QName _ -> "xs:QName"

(* XPath-style number formatting: integers without decimal point,
   doubles shortest-round-trip. *)
let float_to_string f =
  let f = if f = 0.0 then 0.0 else f in  (* fold -0.0 into 0 *)
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else if Float.is_nan f then "NaN"
  else if f = Float.infinity then "INF"
  else if f = Float.neg_infinity then "-INF"
  else
    let s = Printf.sprintf "%.12g" f in
    s

let to_string = function
  | Integer i -> string_of_int i
  | Decimal f | Double f -> float_to_string f
  | String s | Untyped s -> s
  | Boolean b -> if b then "true" else "false"
  | QName q -> Xqb_xml.Qname.to_string q

let pp ppf a = Format.pp_print_string ppf (to_string a)

(* -- Casts --------------------------------------------------------- *)

let parse_integer s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> Errors.value_error "cannot cast %S to xs:integer" s

let parse_float s =
  let s = String.trim s in
  match s with
  | "INF" -> Float.infinity
  | "-INF" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | _ -> (
    match float_of_string_opt s with
    | Some f -> f
    | None -> Errors.value_error "cannot cast %S to xs:double" s)

let parse_boolean s =
  match String.trim s with
  | "true" | "1" -> true
  | "false" | "0" -> false
  | s -> Errors.value_error "cannot cast %S to xs:boolean" s

let to_integer = function
  | Integer i -> i
  | Decimal f | Double f ->
    if Float.is_nan f || Float.abs f = Float.infinity then
      Errors.value_error "cannot cast %s to xs:integer" (float_to_string f)
    else int_of_float (Float.trunc f)
  | String s | Untyped s -> parse_integer s
  | Boolean b -> if b then 1 else 0
  | QName _ -> Errors.type_error "cannot cast xs:QName to xs:integer"

let to_double = function
  | Integer i -> float_of_int i
  | Decimal f | Double f -> f
  | String s | Untyped s -> parse_float s
  | Boolean b -> if b then 1.0 else 0.0
  | QName _ -> Errors.type_error "cannot cast xs:QName to xs:double"

let to_boolean = function
  | Boolean b -> b
  | Integer i -> i <> 0
  | Decimal f | Double f -> not (f = 0.0 || Float.is_nan f)
  | String s | Untyped s -> parse_boolean s
  | QName _ -> Errors.type_error "cannot cast xs:QName to xs:boolean"

let is_numeric = function
  | Integer _ | Decimal _ | Double _ -> true
  | String _ | Boolean _ | Untyped _ | QName _ -> false

let is_nan = function
  | Double f | Decimal f -> Float.is_nan f
  | Integer _ | String _ | Boolean _ | Untyped _ | QName _ -> false

(* -- Arithmetic ----------------------------------------------------- *)

type arith_op = Add | Sub | Mul | Div | Idiv | Mod

let arith_op_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Idiv -> "idiv"
  | Mod -> "mod"

(* Numeric type promotion: integer < decimal < double; untypedAtomic
   is cast to xs:double first (XQuery 1.0 §3.4). *)
let promote a =
  match a with
  | Untyped s -> Double (parse_float s)
  | Integer _ | Decimal _ | Double _ -> a
  | String _ | Boolean _ | QName _ ->
    Errors.type_error "operand of arithmetic is not numeric: %s" (type_name a)

let arith op a b =
  let a = promote a and b = promote b in
  match a, b, op with
  | Integer x, Integer y, Add -> Integer (x + y)
  | Integer x, Integer y, Sub -> Integer (x - y)
  | Integer x, Integer y, Mul -> Integer (x * y)
  | Integer x, Integer y, Idiv ->
    if y = 0 then Errors.division_by_zero () else Integer (x / y)
  | Integer x, Integer y, Mod ->
    if y = 0 then Errors.division_by_zero () else Integer (x mod y)
  | Integer x, Integer y, Div ->
    if y = 0 then Errors.division_by_zero ()
    else if x mod y = 0 then Integer (x / y)
    else Decimal (float_of_int x /. float_of_int y)
  | _ ->
    let x = to_double a and y = to_double b in
    let both_decimal =
      match a, b with
      | (Integer _ | Decimal _), (Integer _ | Decimal _) -> true
      | _ -> false
    in
    let wrap f = if both_decimal then Decimal f else Double f in
    (match op with
    | Add -> wrap (x +. y)
    | Sub -> wrap (x -. y)
    | Mul -> wrap (x *. y)
    | Div ->
      if y = 0.0 && both_decimal then Errors.division_by_zero ()
      else wrap (x /. y)
    | Idiv ->
      if y = 0.0 then Errors.division_by_zero ()
      else Integer (int_of_float (Float.trunc (x /. y)))
    | Mod ->
      if y = 0.0 && both_decimal then Errors.division_by_zero ()
      else wrap (Float.rem x y))

let negate = function
  | Integer i -> Integer (-i)
  | Decimal f -> Decimal (-.f)
  | Double f -> Double (-.f)
  | Untyped s -> Double (-.parse_float s)
  | a -> Errors.type_error "cannot negate a %s" (type_name a)

(* -- Comparison ------------------------------------------------------ *)

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

let cmp_op_to_string = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

(* Value comparison after both operands have been coerced to a common
   type. In *general* comparisons an untyped operand is cast to the
   other operand's type (to string if both untyped); in *value*
   comparisons untyped is treated as string. The caller does that
   coercion; here both sides must already be comparable. *)
let compare_values a b : int option =
  match a, b with
  | (Integer _ | Decimal _ | Double _ | Untyped _), (Integer _ | Decimal _ | Double _ | Untyped _)
    when is_numeric a || is_numeric b ->
    let x = to_double a and y = to_double b in
    if Float.is_nan x || Float.is_nan y then None else Some (Float.compare x y)
  | (String x | Untyped x), (String y | Untyped y) -> Some (String.compare x y)
  | Boolean x, Boolean y -> Some (Bool.compare x y)
  | QName x, QName y -> if Xqb_xml.Qname.equal x y then Some 0 else Some 1
  | _ ->
    Errors.type_error "cannot compare %s with %s" (type_name a) (type_name b)

(* General-comparison coercion of the pair, per XQuery 1.0 §3.5.2. *)
let coerce_general a b =
  match a, b with
  | Untyped x, Untyped y -> String x, String y
  | Untyped x, (Integer _ | Decimal _ | Double _) -> Double (parse_float x), b
  | (Integer _ | Decimal _ | Double _), Untyped y -> a, Double (parse_float y)
  | Untyped x, String _ -> String x, b
  | String _, Untyped y -> a, String y
  | Untyped x, Boolean _ -> Boolean (parse_boolean x), b
  | Boolean _, Untyped y -> a, Boolean (parse_boolean y)
  | _ -> a, b

let cmp_result op c =
  match op, c with
  | Eq, Some 0 -> true
  | Ne, Some c -> c <> 0
  | Lt, Some c -> c < 0
  | Le, Some c -> c <= 0
  | Gt, Some c -> c > 0
  | Ge, Some c -> c >= 0
  | Eq, Some _ -> false
  | _, None -> false (* NaN comparisons are false; Ne with NaN: also false per spec? *)

(* General comparison of two atomics. *)
let general_compare op a b =
  let a, b = coerce_general a b in
  cmp_result op (compare_values a b)

(* Value comparison ('eq', 'lt', ...): untyped treated as string. *)
let value_compare op a b =
  let norm = function Untyped s -> String s | x -> x in
  cmp_result op (compare_values (norm a) (norm b))

let equal a b =
  match a, b with
  | Integer x, Integer y -> x = y
  | Boolean x, Boolean y -> x = y
  | QName x, QName y -> Xqb_xml.Qname.equal x y
  | (String x | Untyped x), (String y | Untyped y) -> String.equal x y
  | _ ->
    if is_numeric a && is_numeric b then to_double a = to_double b
    else false
