(** XDM values: flat sequences of items. There are no nested
    sequences; a single item is its singleton sequence. *)

type t = Item.t list

val empty : t
val of_item : Item.t -> t
val of_atomic : Atomic.t -> t
val of_node : Xqb_store.Store.node_id -> t
val of_nodes : Xqb_store.Store.node_id list -> t
val of_int : int -> t
val of_bool : bool -> t
val of_string : string -> t
val of_double : float -> t

(** Exactly one item. @raise Errors.Dynamic_error otherwise. *)
val singleton_item : t -> Item.t

(** Zero or one item. @raise Errors.Dynamic_error on more. *)
val item_opt : t -> Item.t option

(** Atomize every item (fn:data). *)
val atomize : Xqb_store.Store.t -> t -> Atomic.t list

(** Atomized single item. *)
val singleton_atomic : Xqb_store.Store.t -> t -> Atomic.t

(** Single node. @raise Errors.Dynamic_error otherwise. *)
val singleton_node : t -> Xqb_store.Store.node_id

(** All items as node ids. @raise Errors.Dynamic_error on atomics. *)
val nodes_of : t -> Xqb_store.Store.node_id list

(** Effective boolean value, XQuery 1.0 §2.4.3: empty is false, a
    node-first sequence is true, a singleton atomic by its own rules,
    a multi-atomic sequence is an error (FORG0006). *)
val effective_boolean_value : t -> bool

(** fn:string: "" for empty, the item's string for singletons,
    an error for longer sequences. *)
val string_value : Xqb_store.Store.t -> t -> string

val to_integer : Xqb_store.Store.t -> t -> int
val to_double : Xqb_store.Store.t -> t -> float
val equal : Xqb_store.Store.t -> t -> t -> bool
val pp : Xqb_store.Store.t -> Format.formatter -> t -> unit
