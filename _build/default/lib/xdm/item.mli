(** XDM items: a node reference or an atomic value. *)

type t =
  | Node of Xqb_store.Store.node_id
  | Atomic of Atomic.t

val node : Xqb_store.Store.node_id -> t
val atomic : Atomic.t -> t
val integer : int -> t
val string : string -> t
val boolean : bool -> t
val double : float -> t

val is_node : t -> bool

(** @raise Errors.Dynamic_error (XPTY0004) on an atomic. *)
val as_node : t -> Xqb_store.Store.node_id

(** @raise Errors.Dynamic_error (XPTY0004) on a node. *)
val as_atomic : t -> Atomic.t

(** fn:string of a single item. *)
val string_value : Xqb_store.Store.t -> t -> string

(** Typed value: untyped nodes atomize to [xs:untypedAtomic] of their
    string value. *)
val atomize : Xqb_store.Store.t -> t -> Atomic.t

(** Node identity / atomic equality. *)
val equal : Xqb_store.Store.t -> t -> t -> bool

val pp : Xqb_store.Store.t -> Format.formatter -> t -> unit
