(** Atomic values of the XDM fragment the paper exercises: the numeric
    tower integer/decimal/double, strings, booleans, untypedAtomic
    (what untyped-node atomization yields) and QNames (for rename). *)

type t =
  | Integer of int
  | Decimal of float
  | Double of float
  | String of string
  | Boolean of bool
  | Untyped of string
  | QName of Xqb_xml.Qname.t

val type_name : t -> string

(** XPath-style lexical form ("3", "3.5", "INF", "true", ...). *)
val to_string : t -> string

val float_to_string : float -> string
val pp : Format.formatter -> t -> unit

(** {1 Casts} — raise [Errors.Dynamic_error] on failure. *)

val parse_integer : string -> int
val parse_float : string -> float
val parse_boolean : string -> bool
val to_integer : t -> int
val to_double : t -> float
val to_boolean : t -> bool
val is_numeric : t -> bool
val is_nan : t -> bool

(** {1 Arithmetic} *)

type arith_op = Add | Sub | Mul | Div | Idiv | Mod

val arith_op_to_string : arith_op -> string

(** Numeric promotion: integer < decimal < double; untypedAtomic casts
    to double first (XQuery 1.0 §3.4). *)
val promote : t -> t

(** [arith op a b] after promotion. Integer [div] yields an integer
    when exact, a decimal otherwise; division by zero is an error for
    integers/decimals and ±INF/NaN for doubles. *)
val arith : arith_op -> t -> t -> t

val negate : t -> t

(** {1 Comparison} *)

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

val cmp_op_to_string : cmp_op -> string

(** Three-way comparison of already-coerced operands; [None] when a
    NaN is involved. @raise Errors.Dynamic_error on incomparable
    types. *)
val compare_values : t -> t -> int option

(** The general-comparison coercion of the operand pair (XQuery 1.0
    §3.5.2): untyped-untyped compares as strings, untyped-numeric as
    numbers, etc. *)
val coerce_general : t -> t -> t * t

(** General comparison of two atomics ([=], [<], ...). *)
val general_compare : cmp_op -> t -> t -> bool

(** Value comparison ([eq], [lt], ...): untyped treated as string. *)
val value_compare : cmp_op -> t -> t -> bool

(** Loose equality used by item comparison (numeric tower folded). *)
val equal : t -> t -> bool
