(** Recursive-descent parser for XQuery! — the Fig. 1 grammar over the
    XQuery 1.0 expression grammar. Keywords are contextual; direct
    element constructors are lexed in raw character mode. *)

exception Error of int * int * string  (** line, column, message *)

(** Parse a whole program: prolog declarations then an optional query
    body. @raise Error on malformed input. *)
val parse_prog : string -> Ast.prog

(** Parse a single expression (must consume all input). *)
val parse_expr_string : string -> Ast.expr
