lib/syntax/lexer.ml: Buffer List Printf String Xqb_xml
