lib/syntax/pretty.ml: Ast Buffer Float List Option Printf String Xqb_store Xqb_xml
