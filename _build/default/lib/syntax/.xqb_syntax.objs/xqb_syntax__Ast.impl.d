lib/syntax/ast.ml: Xqb_store Xqb_xml
