lib/syntax/lexer.mli: Xqb_xml
