lib/syntax/parser.ml: Ast Lexer List Option Printf String Xqb_store Xqb_xml
