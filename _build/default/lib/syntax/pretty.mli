(** Pretty-printer for the surface AST. Output re-parses to the same
    AST (a qcheck property in the test suite), so it over-parenthesizes
    rather than track precedence minimally. *)

val expr_to_string : Ast.expr -> string
val decl_to_string : Ast.decl -> string
val prog_to_string : Ast.prog -> string
