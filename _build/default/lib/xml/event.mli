(** Pull-style XML events: what the parser produces, the writer
    consumes, the store loader folds over and the XMark generator
    emits. *)

type t =
  | Start_element of Qname.t * (Qname.t * string) list
  | End_element of Qname.t
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, content *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
