(* Pull-style XML events. The store loader folds over these to build
   trees; the XMark generator emits them; the serializer consumes the
   same shape, which gives us parse/serialize round-trip tests. *)

type t =
  | Start_element of Qname.t * (Qname.t * string) list
  | End_element of Qname.t
  | Text of string
  | Comment of string
  | Pi of string * string  (* target, content *)

let pp ppf = function
  | Start_element (n, attrs) ->
    Format.fprintf ppf "<%a%a>" Qname.pp n
      (fun ppf ->
        List.iter (fun (k, v) ->
          Format.fprintf ppf " %a=%S" Qname.pp k v))
      attrs
  | End_element n -> Format.fprintf ppf "</%a>" Qname.pp n
  | Text s -> Format.fprintf ppf "Text %S" s
  | Comment s -> Format.fprintf ppf "<!--%s-->" s
  | Pi (t, c) -> Format.fprintf ppf "<?%s %s?>" t c

let equal a b =
  match a, b with
  | Start_element (n1, a1), Start_element (n2, a2) ->
    Qname.equal n1 n2
    && List.length a1 = List.length a2
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> Qname.equal k1 k2 && String.equal v1 v2)
         a1 a2
  | End_element n1, End_element n2 -> Qname.equal n1 n2
  | Text s1, Text s2 | Comment s1, Comment s2 -> String.equal s1 s2
  | Pi (t1, c1), Pi (t2, c2) -> String.equal t1 t2 && String.equal c1 c2
  | ( Start_element _ | End_element _ | Text _ | Comment _ | Pi _ ), _ ->
    false
