(* Escaping and entity resolution for XML text and attribute values. *)

let add_escaped_text buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s

let add_escaped_attr buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\n' -> Buffer.add_string buf "&#10;"
      | '\t' -> Buffer.add_string buf "&#9;"
      | c -> Buffer.add_char buf c)
    s

let text s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped_text buf s;
  Buffer.contents buf

let attr s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped_attr buf s;
  Buffer.contents buf

(* Encode a Unicode code point as UTF-8 into [buf]. Invalid code
   points are replaced by U+FFFD. *)
let add_utf8 buf cp =
  let cp = if cp < 0 || cp > 0x10FFFF then 0xFFFD else cp in
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

exception Unknown_entity of string

(* Resolve a single entity name (the text between '&' and ';'). *)
let resolve_entity buf name =
  match name with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "quot" -> Buffer.add_char buf '"'
  | "apos" -> Buffer.add_char buf '\''
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      let num = String.sub name 1 (String.length name - 1) in
      let cp =
        try
          if String.length num > 1 && (num.[0] = 'x' || num.[0] = 'X') then
            int_of_string ("0x" ^ String.sub num 1 (String.length num - 1))
          else int_of_string num
        with Failure _ -> raise (Unknown_entity name)
      in
      add_utf8 buf cp
    end
    else raise (Unknown_entity name)

(* Expand entity and character references in [s]. Raises
   [Unknown_entity] on undefined entities and on unterminated
   references. *)
let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '&' then begin
      match String.index_from_opt s !i ';' with
      | None -> raise (Unknown_entity (String.sub s !i (n - !i)))
      | Some j ->
        resolve_entity buf (String.sub s (!i + 1) (j - !i - 1));
        i := j + 1
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf
