(** XML escaping and entity resolution. *)

exception Unknown_entity of string

(** Escape ['<' '>' '&'] for element content. *)
val text : string -> string

(** Escape ['<' '>' '&' '"'] plus tab/newline for attribute values
    (double-quoted). *)
val attr : string -> string

(** Buffer variants used by the serializer. *)
val add_escaped_text : Buffer.t -> string -> unit

val add_escaped_attr : Buffer.t -> string -> unit

(** Append a Unicode code point as UTF-8. *)
val add_utf8 : Buffer.t -> int -> unit

(** Append the expansion of one entity name (the text between ['&']
    and [';']) to the buffer. @raise Unknown_entity if undefined. *)
val resolve_entity : Buffer.t -> string -> unit

(** Expand [&lt; &gt; &amp; &quot; &apos; &#10; &#x1F;]-style
    references. @raise Unknown_entity on undefined or unterminated
    references. *)
val unescape : string -> string
