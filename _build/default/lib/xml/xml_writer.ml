(* Serialize an event stream back to XML text. Inverse of
   {!Xml_parser.parse} on its supported subset, which the test suite
   checks by round-tripping. *)

let add_event buf (e : Event.t) =
  match e with
  | Start_element (name, attrs) ->
    Buffer.add_char buf '<';
    Buffer.add_string buf (Qname.to_string name);
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Qname.to_string k);
        Buffer.add_string buf "=\"";
        Escape.add_escaped_attr buf v;
        Buffer.add_char buf '"')
      attrs;
    Buffer.add_char buf '>'
  | End_element name ->
    Buffer.add_string buf "</";
    Buffer.add_string buf (Qname.to_string name);
    Buffer.add_char buf '>'
  | Text s -> Escape.add_escaped_text buf s
  | Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Pi (target, content) ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    if content <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf content
    end;
    Buffer.add_string buf "?>"

let to_string events =
  let buf = Buffer.create 1024 in
  List.iter (add_event buf) events;
  Buffer.contents buf

(* Variant collapsing empty Start/End pairs into [<e/>] — the
   serialization most XML tools emit. *)
let to_string_self_closing events =
  let buf = Buffer.create 1024 in
  let rec loop = function
    | [] -> ()
    | Event.Start_element (name, attrs) :: Event.End_element name' :: rest
      when Qname.equal name name' ->
      Buffer.add_char buf '<';
      Buffer.add_string buf (Qname.to_string name);
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (Qname.to_string k);
          Buffer.add_string buf "=\"";
          Escape.add_escaped_attr buf v;
          Buffer.add_char buf '"')
        attrs;
      Buffer.add_string buf "/>";
      loop rest
    | e :: rest ->
      add_event buf e;
      loop rest
  in
  loop events;
  Buffer.contents buf

(* Indented variant used by the CLI's pretty output: puts each element
   on its own line when it has element children only. *)
let to_string_indented events =
  let buf = Buffer.create 1024 in
  let depth = ref 0 in
  let pad () =
    Buffer.add_char buf '\n';
    for _ = 1 to !depth * 2 do
      Buffer.add_char buf ' '
    done
  in
  let rec loop first = function
    | [] -> ()
    | Event.Start_element _ as e :: rest ->
      if not first then pad ();
      add_event buf e;
      incr depth;
      loop false rest
    | Event.End_element _ as e :: rest ->
      decr depth;
      (* Only break before the end tag if the previous event was not
         text (mixed content stays inline). *)
      (match Buffer.length buf with
      | 0 -> ()
      | n when Buffer.nth buf (n - 1) = '>' -> pad ()
      | _ -> ());
      add_event buf e;
      loop false rest
    | e :: rest ->
      add_event buf e;
      loop false rest
  in
  loop true events;
  Buffer.contents buf
