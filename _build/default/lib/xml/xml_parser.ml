(* A small, strict XML 1.0 parser producing {!Event.t} values.

   Supported: prolog, elements, attributes (single or double quoted),
   character data, entity and character references, CDATA sections,
   comments, processing instructions. Not supported (rejected):
   DOCTYPE with internal subsets beyond a name, parameter entities.
   This covers the documents the paper's workloads exercise (XMark
   auction data, Web-service logs) while staying auditable. *)

type position = { line : int; col : int }

exception Error of position * string

type state = {
  src : string;
  mutable pos : int;  (* byte offset *)
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let position st = { line = st.line; col = st.pos - st.bol + 1 }

let fail st msg = raise (Error (position st, msg))

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st <> c then fail st (Printf.sprintf "expected %C" c);
  advance st

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip_string st s =
  if not (looking_at st s) then fail st (Printf.sprintf "expected %S" s);
  for _ = 1 to String.length s do
    advance st
  done

(* Scan until [stop] appears; returns the text before it and consumes
   the terminator. *)
let scan_until st stop =
  match
    let rec find i =
      if i + String.length stop > String.length st.src then None
      else if String.sub st.src i (String.length stop) = stop then Some i
      else find (i + 1)
    in
    find st.pos
  with
  | None -> fail st (Printf.sprintf "unterminated construct, expected %S" stop)
  | Some j ->
    let text = String.sub st.src st.pos (j - st.pos) in
    while st.pos < j + String.length stop do
      advance st
    done;
    text

let parse_name st =
  let start = st.pos in
  if not (Qname.is_name_start (peek st)) then fail st "expected a name";
  while (not (eof st)) && (Qname.is_name_char (peek st) || peek st = ':') do
    advance st
  done;
  Qname.of_string (String.sub st.src start (st.pos - start))

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected attribute value";
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> quote do
    if peek st = '<' then fail st "'<' in attribute value";
    advance st
  done;
  if eof st then fail st "unterminated attribute value";
  let raw = String.sub st.src start (st.pos - start) in
  advance st;
  try Escape.unescape raw
  with Escape.Unknown_entity e -> fail st ("unknown entity: " ^ e)

let parse_attributes st =
  let rec loop acc =
    skip_space st;
    let c = peek st in
    if c = '>' || c = '/' || eof st then List.rev acc
    else begin
      let name = parse_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = parse_attr_value st in
      if List.exists (fun (n, _) -> Qname.equal n name) acc then
        fail st ("duplicate attribute " ^ Qname.to_string name);
      loop ((name, value) :: acc)
    end
  in
  loop []

(* Parse the document into an event list. [keep_ws] keeps
   whitespace-only text nodes between elements (default: dropped, as
   for data-oriented documents). *)
let parse ?(keep_ws = false) src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let events = ref [] in
  let emit e = events := e :: !events in
  let depth = ref 0 in
  let seen_root = ref false in
  let emit_text raw =
    let text =
      try Escape.unescape raw
      with Escape.Unknown_entity e -> fail st ("unknown entity: " ^ e)
    in
    let ws_only = String.for_all is_space text in
    if text <> "" && ((not ws_only) || (keep_ws && !depth > 0)) then begin
      if !depth = 0 && not ws_only then fail st "text outside root element";
      emit (Event.Text text)
    end
  in
  let rec element_content () =
    (* Invariant: st.pos is at '<' of a markup construct or at text. *)
    if eof st then ()
    else if peek st = '<' then begin
      if looking_at st "<!--" then begin
        skip_string st "<!--";
        let body = scan_until st "-->" in
        emit (Event.Comment body);
        element_content ()
      end
      else if looking_at st "<![CDATA[" then begin
        if !depth = 0 then fail st "CDATA outside root element";
        skip_string st "<![CDATA[";
        let body = scan_until st "]]>" in
        if body <> "" then emit (Event.Text body);
        element_content ()
      end
      else if looking_at st "<?" then begin
        skip_string st "<?";
        let name = parse_name st in
        skip_space st;
        let body = scan_until st "?>" in
        let target = Qname.to_string name in
        if String.lowercase_ascii target <> "xml" then
          emit (Event.Pi (target, body));
        element_content ()
      end
      else if looking_at st "<!DOCTYPE" then begin
        skip_string st "<!DOCTYPE";
        (* Accept a simple <!DOCTYPE name> declaration; reject internal
           subsets, which we do not need for the paper's workloads. *)
        let body = scan_until st ">" in
        if String.contains body '[' then
          fail st "DOCTYPE internal subsets are not supported";
        element_content ()
      end
      else if peek2 st = '/' then begin
        skip_string st "</";
        let name = parse_name st in
        skip_space st;
        expect st '>';
        decr depth;
        emit (Event.End_element name);
        element_content ()
      end
      else begin
        advance st;
        let name = parse_name st in
        let attrs = parse_attributes st in
        skip_space st;
        if !depth = 0 then begin
          if !seen_root then fail st "multiple root elements";
          seen_root := true
        end;
        if peek st = '/' then begin
          advance st;
          expect st '>';
          emit (Event.Start_element (name, attrs));
          emit (Event.End_element name)
        end
        else begin
          expect st '>';
          emit (Event.Start_element (name, attrs));
          incr depth
        end;
        element_content ()
      end
    end
    else begin
      let start = st.pos in
      while (not (eof st)) && peek st <> '<' do
        advance st
      done;
      emit_text (String.sub st.src start (st.pos - start));
      element_content ()
    end
  in
  element_content ();
  if !depth <> 0 then fail st "unclosed element";
  if not !seen_root then fail st "no root element";
  (* Check well-nestedness of end tags in a second pass (cheap and
     keeps the main loop simple). *)
  let evs = List.rev !events in
  let stack = ref [] in
  List.iter
    (fun e ->
      match e with
      | Event.Start_element (n, _) -> stack := n :: !stack
      | Event.End_element n -> (
        match !stack with
        | top :: rest when Qname.equal top n -> stack := rest
        | top :: _ ->
          fail st
            (Printf.sprintf "mismatched end tag </%s>, expected </%s>"
               (Qname.to_string n) (Qname.to_string top))
        | [] -> fail st "stray end tag")
      | Event.Text _ | Event.Comment _ | Event.Pi _ -> ())
    evs;
  evs

let parse_string = parse
