(** A small, strict XML 1.0 parser producing {!Event.t} values.

    Supported: prolog, elements, attributes, character data, entity
    and character references, CDATA, comments, processing
    instructions, subset-free DOCTYPE. Rejected: internal DTD subsets,
    mismatched/unclosed tags, duplicate attributes, text or multiple
    elements at top level. *)

type position = { line : int; col : int }

exception Error of position * string

(** Parse a document into its event list. [keep_ws] keeps
    whitespace-only text nodes (default: dropped, as for data-oriented
    documents). @raise Error with a source position on malformed
    input. *)
val parse : ?keep_ws:bool -> string -> Event.t list

val parse_string : ?keep_ws:bool -> string -> Event.t list
