(* Qualified names.

   XQuery! (like XQuery 1.0) identifies elements, attributes and
   functions by expanded names. This reproduction keeps the prefix
   around for faithful serialization but compares names on
   [(prefix, local)] pairs: the paper's examples never rebind
   prefixes, so prefix equality and URI equality coincide. A handful
   of well-known prefixes ([xs], [fn], [local]) are pre-declared. *)

type t = { prefix : string; local : string }

let make ?(prefix = "") local = { prefix; local }

let prefix t = t.prefix
let local t = t.local

(* Parse "p:local" or "local". A leading colon or empty local part is
   the caller's error; we keep the function total and let the name
   validator reject it. *)
let of_string s =
  match String.index_opt s ':' with
  | None -> { prefix = ""; local = s }
  | Some i ->
    { prefix = String.sub s 0 i;
      local = String.sub s (i + 1) (String.length s - i - 1) }

let to_string t = if t.prefix = "" then t.local else t.prefix ^ ":" ^ t.local

let equal a b = String.equal a.prefix b.prefix && String.equal a.local b.local

let compare a b =
  match String.compare a.prefix b.prefix with
  | 0 -> String.compare a.local b.local
  | c -> c

let pp ppf t = Format.pp_print_string ppf (to_string t)

let hash t = Hashtbl.hash (t.prefix, t.local)

(* Name validity per XML 1.0 (ASCII subset; non-ASCII name characters
   are accepted verbatim, which is sufficient for the workloads). *)
let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let valid_ncname s =
  s <> ""
  && is_name_start s.[0]
  && (let ok = ref true in
      String.iter (fun c -> if not (is_name_char c) then ok := false) s;
      !ok)

let valid t =
  valid_ncname t.local && (t.prefix = "" || valid_ncname t.prefix)

(* Pre-declared names used throughout the engine. *)
let xs l = make ~prefix:"xs" l
let fn l = make ~prefix:"fn" l
