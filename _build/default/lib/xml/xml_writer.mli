(** Serialize event streams back to XML text; inverse of
    {!Xml_parser.parse} on its supported subset (checked by a
    round-trip property in the test suite). *)

val add_event : Buffer.t -> Event.t -> unit

val to_string : Event.t list -> string

(** Human-oriented variant: elements on their own lines where content
    permits. *)
val to_string_indented : Event.t list -> string

(** Like {!to_string} but collapses empty Start/End pairs into
    [<e/>]. *)
val to_string_self_closing : Event.t list -> string
