(** Qualified names for elements, attributes and functions.

    Names are [(prefix, local)] pairs; the engine compares names
    structurally (the paper's programs never rebind prefixes, so this
    coincides with expanded-name equality). *)

type t = { prefix : string; local : string }

(** [make ?prefix local] builds a name; [prefix] defaults to [""]. *)
val make : ?prefix:string -> string -> t

val prefix : t -> string
val local : t -> string

(** Parse ["p:local"] or ["local"]. Total; validity is checked
    separately with {!valid}. *)
val of_string : string -> t

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Character classes for XML names (ASCII subset; bytes >= 128
    accepted). *)
val is_name_start : char -> bool

val is_name_char : char -> bool

(** XML 1.0 NCName check. *)
val valid_ncname : string -> bool

(** Both parts of the name are valid NCNames (empty prefix allowed). *)
val valid : t -> bool

(** [xs "integer"] = [xs:integer]. *)
val xs : string -> t

(** [fn "count"] = [fn:count]. *)
val fn : string -> t
