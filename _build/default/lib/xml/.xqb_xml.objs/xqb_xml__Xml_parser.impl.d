lib/xml/xml_parser.ml: Escape Event List Printf Qname String
