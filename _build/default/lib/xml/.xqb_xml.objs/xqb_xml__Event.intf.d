lib/xml/event.mli: Format Qname
