lib/xml/xml_parser.mli: Event
