lib/xml/xml_writer.mli: Buffer Event
