lib/xml/event.ml: Format List Qname String
