lib/xml/qname.ml: Char Format Hashtbl String
