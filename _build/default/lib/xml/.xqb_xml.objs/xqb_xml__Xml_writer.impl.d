lib/xml/xml_writer.ml: Buffer Escape Event List Qname
