(** XPath axes and node tests over the store.

    Forward axes return nodes in document order, reverse axes in
    reverse document order (nearest first) — positional predicates
    count in axis order, as XPath requires. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Attribute
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding

val axis_to_string : axis -> string
val is_reverse : axis -> bool

(** Node tests. A [Name] test matches the axis' principal node kind:
    attributes on the attribute axis, elements everywhere else. *)
type node_test =
  | Name of Xqb_xml.Qname.t
  | Wildcard
  | Kind_node
  | Kind_text
  | Kind_element of Xqb_xml.Qname.t option
  | Kind_attribute of Xqb_xml.Qname.t option
  | Kind_comment
  | Kind_pi of string option
  | Kind_document

val node_test_to_string : node_test -> string

val principal_kind : axis -> Store.kind

val test_matches : Store.t -> axis -> node_test -> Store.node_id -> bool

(** All nodes on [axis] from the context node, unfiltered. *)
val apply : Store.t -> axis -> Store.node_id -> Store.node_id list

(** [apply] filtered by the node test — one full step. *)
val step : Store.t -> axis -> node_test -> Store.node_id -> Store.node_id list

(** Descendants in document order (no attributes). *)
val descendants : Store.t -> Store.node_id -> Store.node_id list

(** Ancestors, nearest first. *)
val ancestors : Store.t -> Store.node_id -> Store.node_id list
