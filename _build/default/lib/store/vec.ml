(* Growable vector of ints, used for child/attribute lists in the
   store. OCaml 5.1 has no Dynarray yet (5.2+), and child lists are a
   hot path: XMark-style workloads append thousands of children under
   one parent ($purchasers in the paper's §4.3 example), so the
   amortized O(1) push matters for the E1 complexity claims. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 4) () = { data = Array.make (max capacity 1) 0; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let ensure v n =
  if n > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(* Insert [x] at index [i], shifting the tail right. *)
let insert v i x =
  if i < 0 || i > v.len then invalid_arg "Vec.insert";
  ensure v (v.len + 1);
  Array.blit v.data i v.data (i + 1) (v.len - i);
  v.data.(i) <- x;
  v.len <- v.len + 1

(* Remove the element at index [i], shifting the tail left. *)
let remove_at v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.remove_at";
  Array.blit v.data (i + 1) v.data i (v.len - i - 1);
  v.len <- v.len - 1

let index_of v x =
  let rec find i = if i >= v.len then None else if v.data.(i) = x then Some i else find (i + 1) in
  find 0

let remove v x =
  match index_of v x with
  | None -> false
  | Some i ->
    remove_at v i;
    true

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let of_list l =
  let v = create ~capacity:(max 1 (List.length l)) () in
  List.iter (push v) l;
  v

let is_empty v = v.len = 0

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let first v = if v.len = 0 then None else Some v.data.(0)

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0
