(** Growable vector of ints, used for child/attribute lists.

    Child lists are a hot path: XMark-style workloads append thousands
    of children under one parent, so the amortized O(1) {!push}
    matters for the complexity claims of experiment E1. *)

type t

(** Fresh empty vector. *)
val create : ?capacity:int -> unit -> t

val length : t -> int

(** @raise Invalid_argument on out-of-range indexes. *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** Append; amortized O(1). *)
val push : t -> int -> unit

(** [insert v i x] inserts [x] at index [i], shifting the tail. O(n-i). *)
val insert : t -> int -> int -> unit

(** Remove the element at an index, shifting the tail. O(n-i). *)
val remove_at : t -> int -> unit

(** Index of the first occurrence, if any. O(n). *)
val index_of : t -> int -> int option

(** Remove the first occurrence; [true] if something was removed. *)
val remove : t -> int -> bool

val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_list : t -> int list
val of_list : int list -> t
val is_empty : t -> bool
val first : t -> int option
val last : t -> int option
val exists : (int -> bool) -> t -> bool
