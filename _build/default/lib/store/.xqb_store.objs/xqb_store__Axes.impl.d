lib/store/axes.ml: List Printf Store String Vec Xqb_xml
