lib/store/store.mli: Vec Xqb_xml
