lib/store/store.ml: Array Buffer Format Hashtbl List Option Printf Vec Xqb_xml
