lib/store/axes.mli: Store Xqb_xml
