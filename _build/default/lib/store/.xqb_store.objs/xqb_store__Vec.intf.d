lib/store/vec.mli:
