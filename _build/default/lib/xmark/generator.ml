(* XMark-style auction document generator (substitute for xmlgen,
   Schmidt et al., VLDB 2002 — cited by the paper as its workload).

   It reproduces the structural shape the paper's queries touch:

     <site>
       <regions><{region}><item id="itemN">...</item>...</{region}>...</regions>
       <categories><category id="catN">...</category>...</categories>
       <people><person id="personN"><name/><emailaddress/>...</person>...</people>
       <open_auctions><open_auction id="openN">...<bidder>...</open_auction>...
       <closed_auctions><closed_auction>
           <seller person="..."/><buyer person="..."/>
           <itemref item="..."/><price>...</price>...
       </closed_auction>...</closed_auctions>
     </site>

   Cardinalities scale linearly in [config]; the §4.3 experiment (E1)
   only depends on |person|, |closed_auction| and the join selectivity
   buyer/@person = person/@id, which we control exactly. *)

type config = {
  persons : int;
  items : int;
  categories : int;
  open_auctions : int;
  closed_auctions : int;
  seed : int;
}

let default = {
  persons = 100;
  items = 80;
  categories = 10;
  open_auctions = 40;
  closed_auctions = 200;
  seed = 42;
}

(* The standard XMark scale knob: factor 1.0 ~ 25500 persons in the
   original; we keep the original's *ratios* at a laptop-friendly
   absolute size. *)
let scaled factor =
  let f x = max 1 (int_of_float (float_of_int x *. factor)) in
  {
    persons = f 255;
    items = f 217;
    categories = f 10;
    open_auctions = f 120;
    closed_auctions = f 97;
    seed = 42;
  }

let regions = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]


let q = Xqb_xml.Qname.make

let start_el emit name attrs =
  emit (Xqb_xml.Event.Start_element
          (q name, List.map (fun (k, v) -> (q k, v)) attrs))

let end_el emit name = emit (Xqb_xml.Event.End_element (q name))

let text_el emit name s =
  start_el emit name [];
  emit (Xqb_xml.Event.Text s);
  end_el emit name

let gen_person rand emit i =
  start_el emit "person" [ ("id", Printf.sprintf "person%d" i) ];
  let name =
    Printf.sprintf "%s %s" (Rand.pick rand Text_pool.first_names)
      (Rand.pick rand Text_pool.last_names)
  in
  text_el emit "name" name;
  text_el emit "emailaddress"
    (Printf.sprintf "mailto:%s%d@example.org"
       (String.lowercase_ascii (Rand.pick rand Text_pool.last_names)) i);
  if Rand.bool rand then text_el emit "phone" (Printf.sprintf "+39 %07d" (Rand.int rand 10000000));
  if Rand.int rand 4 = 0 then begin
    start_el emit "address" [];
    text_el emit "street" (Printf.sprintf "%d %s St" (1 + Rand.int rand 99) (Rand.pick rand Text_pool.words));
    text_el emit "city" (Rand.pick rand Text_pool.cities);
    end_el emit "address"
  end;
  end_el emit "person"

let gen_item rand emit cfg i =
  start_el emit "item" [ ("id", Printf.sprintf "item%d" i) ];
  text_el emit "location" (Rand.pick rand Text_pool.cities);
  text_el emit "quantity" (string_of_int (1 + Rand.int rand 5));
  text_el emit "name" (Text_pool.sentence rand 2);
  start_el emit "description" [];
  text_el emit "text" (Text_pool.sentence rand (3 + Rand.int rand 10));
  end_el emit "description";
  start_el emit "incategory"
    [ ("category", Printf.sprintf "cat%d" (Rand.int rand cfg.categories)) ];
  end_el emit "incategory";
  end_el emit "item"

let gen_open_auction rand emit cfg i =
  start_el emit "open_auction" [ ("id", Printf.sprintf "open%d" i) ];
  text_el emit "initial" (string_of_int (1 + Rand.int rand 200));
  let bidders = Rand.int rand 5 in
  for _ = 1 to bidders do
    start_el emit "bidder" [];
    start_el emit "personref"
      [ ("person", Printf.sprintf "person%d" (Rand.int rand cfg.persons)) ];
    end_el emit "personref";
    text_el emit "increase" (string_of_int (1 + (2 * Rand.int rand 10)));
    end_el emit "bidder"
  done;
  text_el emit "current" (string_of_int (10 + Rand.int rand 4000));
  start_el emit "itemref"
    [ ("item", Printf.sprintf "item%d" (Rand.int rand (max 1 cfg.items))) ];
  end_el emit "itemref";
  text_el emit "quantity" "1";
  end_el emit "open_auction"

let gen_closed_auction rand emit cfg =
  start_el emit "closed_auction" [];
  start_el emit "seller"
    [ ("person", Printf.sprintf "person%d" (Rand.int rand cfg.persons)) ];
  end_el emit "seller";
  start_el emit "buyer"
    [ ("person", Printf.sprintf "person%d" (Rand.int rand cfg.persons)) ];
  end_el emit "buyer";
  start_el emit "itemref"
    [ ("item", Printf.sprintf "item%d" (Rand.int rand (max 1 cfg.items))) ];
  end_el emit "itemref";
  text_el emit "price" (string_of_int (5 + Rand.int rand 500));
  text_el emit "date" (Printf.sprintf "%02d/%02d/2005" (1 + Rand.int rand 12) (1 + Rand.int rand 28));
  text_el emit "quantity" "1";
  start_el emit "annotation" [];
  text_el emit "description" (Text_pool.sentence rand (2 + Rand.int rand 6));
  end_el emit "annotation";
  end_el emit "closed_auction"

(* Generate as an event stream. *)
let events (cfg : config) : Xqb_xml.Event.t list =
  let rand = Rand.create cfg.seed in
  let out = ref [] in
  let emit e = out := e :: !out in
  start_el emit "site" [];
  (* regions with items *)
  start_el emit "regions" [];
  Array.iteri
    (fun ri rname ->
      start_el emit rname [];
      let lo = ri * cfg.items / Array.length regions in
      let hi = (ri + 1) * cfg.items / Array.length regions in
      for i = lo to hi - 1 do
        gen_item rand emit cfg i
      done;
      end_el emit rname)
    regions;
  end_el emit "regions";
  (* categories *)
  start_el emit "categories" [];
  for i = 0 to cfg.categories - 1 do
    start_el emit "category" [ ("id", Printf.sprintf "cat%d" i) ];
    text_el emit "name" Text_pool.categories_pool.(i mod Array.length Text_pool.categories_pool);
    end_el emit "category"
  done;
  end_el emit "categories";
  (* people *)
  start_el emit "people" [];
  for i = 0 to cfg.persons - 1 do
    gen_person rand emit i
  done;
  end_el emit "people";
  (* open auctions *)
  start_el emit "open_auctions" [];
  for i = 0 to cfg.open_auctions - 1 do
    gen_open_auction rand emit cfg i
  done;
  end_el emit "open_auctions";
  (* closed auctions *)
  start_el emit "closed_auctions" [];
  for _ = 1 to cfg.closed_auctions do
    gen_closed_auction rand emit cfg
  done;
  end_el emit "closed_auctions";
  end_el emit "site";
  List.rev !out

(* Generate straight into a store; returns the document node. *)
let generate store cfg = Xqb_store.Store.load_events store (events cfg)

(* Generate as XML text (for the CLI and for parser round-trips). *)
let to_xml cfg = Xqb_xml.Xml_writer.to_string (events cfg)
