(* Small deterministic PRNG (64-bit splitmix-style), so generated
   documents are identical across runs and platforms — the benches and
   tests depend on that. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rand.int";
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let pick t arr = arr.(int t (Array.length arr))

let bool t = int t 2 = 0
