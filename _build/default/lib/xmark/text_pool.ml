(* Word pools for the XMark-style generator. The real xmlgen uses
   Shakespeare excerpts; any fixed pool preserves the properties that
   matter for the experiments (distinct names, plausible string
   lengths, repeatable content). *)

let first_names =
  [| "Anna"; "Bob"; "Carmen"; "Dmitri"; "Elena"; "Farid"; "Giorgio"; "Hana";
     "Ines"; "Jerome"; "Kurt"; "Lena"; "Marco"; "Nadia"; "Omar"; "Paula";
     "Quentin"; "Rosa"; "Stefan"; "Tara"; "Umberto"; "Vera"; "Walter";
     "Xenia"; "Yusuf"; "Zelda" |]

let last_names =
  [| "Ghelli"; "Re"; "Simeon"; "Schmidt"; "Waas"; "Kersten"; "Carey";
     "Manolescu"; "Busse"; "Florescu"; "Kossmann"; "Chamberlin"; "Robie";
     "Fernandez"; "Wadler"; "Rys"; "Lehti"; "Suciu"; "Benedikt"; "Bonifati" |]

let words =
  [| "auction"; "vintage"; "rare"; "mint"; "boxed"; "signed"; "antique";
     "modern"; "large"; "small"; "blue"; "red"; "golden"; "silver"; "wooden";
     "ceramic"; "painted"; "engraved"; "limited"; "edition"; "classic";
     "original"; "restored"; "working"; "complete"; "partial"; "early";
     "late"; "curious"; "delicate" |]

let cities =
  [| "Pisa"; "Seattle"; "Hawthorne"; "Amsterdam"; "Darmstadt"; "Paris";
     "Tokyo"; "Sydney"; "Toronto"; "Cape Town" |]

let categories_pool =
  [| "art"; "books"; "coins"; "stamps"; "toys"; "tools"; "music";
     "photography"; "maps"; "clocks" |]

let sentence rand n =
  let buf = Buffer.create 64 in
  for i = 1 to n do
    if i > 1 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Rand.pick rand words)
  done;
  Buffer.contents buf
