(** XMark-style auction document generator — the reproduction's
    substitute for xmlgen (Schmidt et al., VLDB 2002), the paper's
    workload. Deterministic for a given [config] (including [seed]);
    reproduces the structural shape the paper's queries touch:
    regions/items, categories, people, open and closed auctions, with
    resolvable person/item references (join keys for experiment E1). *)

type config = {
  persons : int;
  items : int;
  categories : int;
  open_auctions : int;
  closed_auctions : int;
  seed : int;
}

val default : config

(** Standard XMark-style scale knob, preserving the original's
    cardinality ratios at laptop-friendly absolute sizes (factor 1.0 ≈
    255 persons). *)
val scaled : float -> config

(** The document as an event stream. *)
val events : config -> Xqb_xml.Event.t list

(** Generate straight into a store; returns the document node. *)
val generate : Xqb_store.Store.t -> config -> Xqb_store.Store.node_id

(** The document as XML text. *)
val to_xml : config -> string
