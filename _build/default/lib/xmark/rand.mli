(** Small deterministic PRNG (splitmix64-style): generated documents
    are identical across runs and platforms. *)

type t

val create : int -> t
val next : t -> int64

(** Uniform in [0, bound). @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

val pick : t -> 'a array -> 'a
val bool : t -> bool
