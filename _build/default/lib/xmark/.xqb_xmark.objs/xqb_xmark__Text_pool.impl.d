lib/xmark/text_pool.ml: Buffer Rand
