lib/xmark/generator.ml: Array List Printf Rand String Text_pool Xqb_store Xqb_xml
