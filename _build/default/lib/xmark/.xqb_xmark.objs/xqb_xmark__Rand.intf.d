lib/xmark/rand.mli:
