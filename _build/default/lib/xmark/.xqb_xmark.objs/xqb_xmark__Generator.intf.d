lib/xmark/generator.mli: Xqb_store Xqb_xml
