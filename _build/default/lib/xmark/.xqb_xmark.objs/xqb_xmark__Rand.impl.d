lib/xmark/rand.ml: Array Int64
