(* Integration corpus: XMark-flavoured queries over the generated
   auction document. The generator is deterministic (seed 42, default
   config), so the expected values are exact goldens — any engine or
   generator regression shows up as a concrete value change. *)

open Helpers
module G = Xqb_xmark.Generator

let engine =
  lazy
    (let eng = Core.Engine.create () in
     let doc = G.generate (Core.Engine.store eng) G.default in
     Core.Engine.bind_node eng "auction" doc;
     eng)

let q name src pred =
  tc name `Quick (fun () ->
      let eng = Lazy.force engine in
      let got = Core.Engine.serialize eng (Core.Engine.run eng src) in
      pred got)

let eq expected got = check Alcotest.string "value" expected got

let int_in lo hi got =
  let n = int_of_string got in
  if n < lo || n > hi then
    Alcotest.failf "expected a value in [%d, %d], got %d" lo hi n

let queries =
  [
    q "Q1-like: initial of a known auction"
      "xs:double(($auction//open_auction[@id = 'open0']/initial)[1]) > 0"
      (eq "true");
    q "Q3-like: auctions with at least two bidders"
      "count($auction//open_auction[count(bidder) >= 2])"
      (int_in 1 G.default.G.open_auctions);
    q "Q4-like: ordered price list is sorted"
      {|let $prices := for $a in $auction//open_auction
                      order by xs:integer($a/current)
                      return xs:integer($a/current)
        return every $i in 1 to count($prices) - 1
               satisfies $prices[$i] <= $prices[$i + 1]|}
      (eq "true");
    q "Q5-like: expensive closed auctions"
      "count($auction//closed_auction[xs:double(price) >= 40])"
      (int_in 1 G.default.G.closed_auctions);
    q "Q6-like: items per region sum to all items"
      {|sum(for $r in $auction/site/regions/* return count($r/item))
        = count($auction//item)|}
      (eq "true");
    q "Q8-like: buyer counts sum to closed auctions"
      {|sum(for $p in $auction//person
            return count($auction//closed_auction[buyer/@person = $p/@id]))
        = count($auction//closed_auction)|}
      (eq "true");
    q "Q13-like: region listing preserves items"
      {|count(for $i in $auction/site/regions/australia/item
             return <item name="{$i/name}">{$i/description}</item>)
        = count($auction/site/regions/australia/item)|}
      (eq "true");
    q "Q14-like: items whose description mentions a word"
      "count($auction//item[contains(string(description), 'vintage')]) >= 0"
      (eq "true");
    q "Q17-like: people without a phone"
      {|count($auction//person[empty(phone)]) + count($auction//person[phone])
        = count($auction//person)|}
      (eq "true");
    q "Q19-like: order by name gives deterministic first"
      {|(for $p in $auction//person
         order by string($p/name), string($p/@id)
         return string($p/@id))[1]|}
      (fun got ->
        check Alcotest.bool "person id" true
          (String.length got > 6 && String.sub got 0 6 = "person"));
    q "aggregates: average closed price is plausible"
      {|let $p := avg(for $t in $auction//closed_auction return xs:double($t/price))
        return ($p >= 5 and $p <= 505)|}
      (eq "true");
    q "join keys resolve exactly"
      {|every $t in $auction//closed_auction satisfies
          count($auction//person[@id = $t/buyer/@person]) = 1|}
      (eq "true");
    q "identity: two paths to the same node"
      {|let $p := ($auction//person)[1]
        return $p is $auction/site/people/person[1]|}
      (eq "true");
    q "update round-trip on the shared doc (snap + undo by delete)"
      {|let $site := $auction/site
        return (snap insert {<marker/>} into {$site},
                let $n := count($site/marker)
                return (snap delete {$site/marker}, concat($n, '-', count($site/marker))))|}
      (eq "1-0");
  ]

let suite = [ ("xmark-queries", queries) ]
