(* Program-level fuzzing: generate random *well-scoped* XQuery!
   programs mixing queries and updates, then check engine-level
   invariants that must hold for every program:

   P1. determinism — running the same program twice on fresh engines
       (same seed) produces identical serializations and stores;
   P2. store health — after any run (including failed ones), the store
       invariants hold;
   P3. the §4.2 simplifier never changes results;
   P4. the algebraic runner agrees with direct evaluation. *)

open Helpers

(* -- a generator of well-scoped programs ----------------------------- *)

(* Variables: $d0..$d2 are document roots bound by the harness; query
   generation threads the set of bound let-variables. *)

type genv = { depth : int; vars : string list; rng : Random.State.t }

let pick g l = List.nth l (Random.State.int g.rng (List.length l))

let fresh_var =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "v%d" !n

let gen_path g root =
  let steps = [ ""; "/*"; "//*"; "/a"; "//b"; "//node()"; "/*[1]"; "//a/.." ] in
  root ^ pick g steps

let gen_atom g vars =
  match Random.State.int g.rng 6 with
  | 0 -> string_of_int (Random.State.int g.rng 10)
  | 1 -> Printf.sprintf "'s%d'" (Random.State.int g.rng 4)
  | 2 -> "<n/>"
  | 3 -> Printf.sprintf "<e k=\"%d\">t</e>" (Random.State.int g.rng 3)
  | 4 when vars <> [] -> "$" ^ pick g vars
  | _ -> "."

(* a node-valued expression (target of updates) *)
let gen_target g = gen_path g (pick g [ "$d0"; "$d1"; "$d2" ])

let rec gen_expr (g : genv) : string =
  if g.depth = 0 then gen_atom g g.vars
  else
    let sub () = gen_expr { g with depth = g.depth - 1 } in
    match Random.State.int g.rng 14 with
    | 0 -> Printf.sprintf "(%s, %s)" (sub ()) (sub ())
    | 1 ->
      let v = fresh_var () in
      Printf.sprintf "let $%s := %s return %s" v (sub ())
        (gen_expr { g with depth = g.depth - 1; vars = v :: g.vars })
    | 2 ->
      let v = fresh_var () in
      Printf.sprintf "for $%s in %s return %s" v (sub ())
        (gen_expr { g with depth = g.depth - 1; vars = v :: g.vars })
    | 3 -> Printf.sprintf "if (%s) then %s else %s" (sub ()) (sub ()) (sub ())
    | 4 -> Printf.sprintf "count(%s)" (sub ())
    | 5 -> Printf.sprintf "(%s)[%d]" (sub ()) (1 + Random.State.int g.rng 3)
    | 6 -> gen_target g
    | 7 -> Printf.sprintf "<w>{%s}</w>" (sub ())
    | 8 -> Printf.sprintf "insert {%s} into {%s}" (sub ()) (gen_target g)
    | 9 -> Printf.sprintf "delete {%s}" (gen_target g)
    | 10 ->
      Printf.sprintf "rename {(%s)[1]} to {'r%d'}" (gen_target g)
        (Random.State.int g.rng 3)
    | 11 -> Printf.sprintf "snap { %s }" (sub ())
    | 12 -> Printf.sprintf "string-join(for $s in %s return name($s), ',')" (sub ())
    | _ -> Printf.sprintf "(%s = %s)" (sub ()) (sub ())

let gen_program seed =
  let rng = Random.State.make [| seed |] in
  gen_expr { depth = 4; vars = []; rng }

(* -- the harness ------------------------------------------------------ *)

let docs =
  [
    "<r><a>1</a><b><a>2</a></b></r>";
    "<r><b/><b/><c><a/></c></r>";
    "<r>text<a k=\"v\"/></r>";
  ]

let run_program ?(simplify = true) ?(optimized = false) src =
  let eng = Core.Engine.create ~seed:1234 () in
  List.iteri
    (fun i xml ->
      let d = Core.Engine.load_document eng ~uri:(Printf.sprintf "d%d" i) xml in
      Core.Engine.bind_node eng (Printf.sprintf "d%d" i) d)
    docs;
  let outcome =
    if optimized then
      match Xqb_algebra.Runner.run eng src with
      | r -> Ok (Core.Engine.serialize eng r.Xqb_algebra.Runner.value)
      | exception e -> Error (Printexc.to_string e)
    else
      match Core.Engine.compile ~simplify eng src with
      | c -> (
        match Core.Engine.run_compiled eng c with
        | v -> Ok (Core.Engine.serialize eng v)
        | exception e -> Error (Printexc.to_string e))
      | exception e -> Error (Printexc.to_string e)
  in
  let store_state =
    String.concat "|"
      (List.mapi
         (fun i _ ->
           Core.Engine.serialize eng
             (Core.Engine.run eng (Printf.sprintf "$d%d" i)))
         docs)
  in
  let health = Xqb_store.Store.validate (Core.Engine.store eng) in
  (outcome, store_state, health)

let seeds = QCheck2.Gen.int_range 0 100000

let p1_determinism =
  qtest ~count:150 "P1: same program, same seed, same result" seeds (fun seed ->
      let src = gen_program seed in
      let o1, s1, _ = run_program src in
      let o2, s2, _ = run_program src in
      if o1 = o2 && s1 = s2 then true
      else
        QCheck2.Test.fail_reportf "diverged on:@.%s@.%s vs %s" src
          (match o1 with Ok s -> s | Error e -> "ERR " ^ e)
          (match o2 with Ok s -> s | Error e -> "ERR " ^ e))

let p2_store_health =
  qtest ~count:150 "P2: store invariants survive any program" seeds (fun seed ->
      let src = gen_program seed in
      let _, _, health = run_program src in
      if health = [] then true
      else
        QCheck2.Test.fail_reportf "store corrupted by:@.%s@.%s" src
          (String.concat "; " health))

let p3_simplifier =
  qtest ~count:150 "P3: simplifier preserves results" seeds (fun seed ->
      let src = gen_program seed in
      let simplified, s1, _ = run_program ~simplify:true src in
      let plain, s2, _ = run_program ~simplify:false src in
      (* XQuery 1.0 §2.3.4 allows an implementation to avoid evaluating
         expressions whose value is not needed, so simplification may
         legally *eliminate* a dynamic error (dead-let dropping an
         erroring unused binding). The reverse — introducing an error —
         is a bug, as is any divergence between two successful runs. *)
      let same =
        match simplified, plain with
        | Ok a, Ok b -> a = b && s1 = s2
        | Error e1, Error e2 ->
          (* same failure => same trajectory => same store; if the
             simplifier legally eliminated an *earlier* error (§2.3.4
             latitude), evaluation proceeds further and inner snaps it
             reaches may apply, so the stores may differ *)
          if e1 = e2 then s1 = s2 else true
        | Ok _, Error _ -> true  (* error legally optimized away *)
        | Error _, Ok _ -> false
      in
      if same then true
      else QCheck2.Test.fail_reportf "simplifier changed semantics of:@.%s" src)

let p4_optimizer =
  qtest ~count:150 "P4: algebraic runner agrees with direct evaluation" seeds
    (fun seed ->
      let src = gen_program seed in
      let o1, s1, _ = run_program ~optimized:false src in
      let o2, s2, _ = run_program ~optimized:true src in
      let same =
        match o1, o2 with
        | Ok a, Ok b -> a = b && s1 = s2
        | Error _, Error _ -> s1 = s2
        | _ -> false
      in
      if same then true
      else
        QCheck2.Test.fail_reportf "optimizer changed semantics of:@.%s@.%s / %s"
          src
          (match o1 with Ok s -> s | Error e -> "ERR " ^ e)
          (match o2 with Ok s -> s | Error e -> "ERR " ^ e))

let suite =
  [
    ( "fuzz:programs",
      [ p1_determinism; p2_store_health; p3_simplifier; p4_optimizer ] );
  ]
