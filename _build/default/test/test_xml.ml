(* S1: QNames, escaping and the XML parser/writer. *)

open Helpers
module Qname = Xqb_xml.Qname
module Escape = Xqb_xml.Escape
module Event = Xqb_xml.Event
module P = Xqb_xml.Xml_parser
module W = Xqb_xml.Xml_writer

let qname_tests =
  [
    tc "of_string plain" `Quick (fun () ->
        let q = Qname.of_string "foo" in
        check Alcotest.string "local" "foo" (Qname.local q);
        check Alcotest.string "prefix" "" (Qname.prefix q));
    tc "of_string prefixed" `Quick (fun () ->
        let q = Qname.of_string "xs:integer" in
        check Alcotest.string "prefix" "xs" (Qname.prefix q);
        check Alcotest.string "local" "integer" (Qname.local q);
        check Alcotest.string "round" "xs:integer" (Qname.to_string q));
    tc "equality and compare" `Quick (fun () ->
        check Alcotest.bool "eq" true (Qname.equal (qn "a:b") (qn "a:b"));
        check Alcotest.bool "neq prefix" false (Qname.equal (qn "a:b") (qn "c:b"));
        check Alcotest.bool "order" true (Qname.compare (qn "a") (qn "b") < 0));
    tc "validity" `Quick (fun () ->
        check Alcotest.bool "valid" true (Qname.valid (qn "foo-bar.baz"));
        check Alcotest.bool "digit start" false (Qname.valid (qn "1foo"));
        check Alcotest.bool "empty" false (Qname.valid (qn ""));
        check Alcotest.bool "underscore" true (Qname.valid (qn "_x")));
  ]

let escape_tests =
  [
    tc "text escaping" `Quick (fun () ->
        check Alcotest.string "amp" "a&amp;b&lt;c&gt;d" (Escape.text "a&b<c>d"));
    tc "attr escaping" `Quick (fun () ->
        check Alcotest.string "quot" "say &quot;hi&quot;&#10;" (Escape.attr "say \"hi\"\n"));
    tc "unescape entities" `Quick (fun () ->
        check Alcotest.string "five" "<>&\"'" (Escape.unescape "&lt;&gt;&amp;&quot;&apos;"));
    tc "unescape charrefs" `Quick (fun () ->
        check Alcotest.string "dec" "A" (Escape.unescape "&#65;");
        check Alcotest.string "hex" "A" (Escape.unescape "&#x41;");
        check Alcotest.string "utf8" "\xc3\xa9" (Escape.unescape "&#233;"));
    tc "unknown entity" `Quick (fun () ->
        match Escape.unescape "&nope;" with
        | _ -> Alcotest.fail "expected Unknown_entity"
        | exception Escape.Unknown_entity _ -> ());
    tc "round trip" `Quick (fun () ->
        let s = "a<b>&c\"d'e" in
        check Alcotest.string "text rt" s (Escape.unescape (Escape.text s));
        check Alcotest.string "attr rt" s (Escape.unescape (Escape.attr s)));
  ]

let ev_pp = Alcotest.testable Event.pp Event.equal

let parser_tests =
  [
    tc "simple element" `Quick (fun () ->
        check (Alcotest.list ev_pp) "events"
          [ Event.Start_element (qn "a", []); Event.End_element (qn "a") ]
          (P.parse "<a/>"));
    tc "attributes" `Quick (fun () ->
        match P.parse {|<a x="1" y='two'/>|} with
        | [ Event.Start_element (_, attrs); _ ] ->
          check
            (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
            "attrs"
            [ ("x", "1"); ("y", "two") ]
            (List.map (fun (k, v) -> (Qname.to_string k, v)) attrs)
        | _ -> Alcotest.fail "unexpected events");
    tc "text and nesting" `Quick (fun () ->
        check (Alcotest.list ev_pp) "events"
          [
            Event.Start_element (qn "a", []);
            Event.Text "x";
            Event.Start_element (qn "b", []);
            Event.End_element (qn "b");
            Event.Text "y";
            Event.End_element (qn "a");
          ]
          (P.parse "<a>x<b/>y</a>"));
    tc "whitespace-only text dropped by default" `Quick (fun () ->
        check Alcotest.int "count" 4 (List.length (P.parse "<a>\n  <b/>\n</a>")));
    tc "keep_ws keeps it" `Quick (fun () ->
        check Alcotest.int "count" 6
          (List.length (P.parse ~keep_ws:true "<a>\n  <b/>\n</a>")));
    tc "entities in text and attrs" `Quick (fun () ->
        match P.parse {|<a t="&lt;&#65;">x&amp;y</a>|} with
        | [ Event.Start_element (_, [ (_, v) ]); Event.Text t; _ ] ->
          check Alcotest.string "attr" "<A" v;
          check Alcotest.string "text" "x&y" t
        | _ -> Alcotest.fail "unexpected events");
    tc "cdata" `Quick (fun () ->
        match P.parse "<a><![CDATA[<not>&parsed;]]></a>" with
        | [ _; Event.Text t; _ ] -> check Alcotest.string "cdata" "<not>&parsed;" t
        | _ -> Alcotest.fail "unexpected events");
    tc "comments and pis" `Quick (fun () ->
        check (Alcotest.list ev_pp) "events"
          [
            Event.Comment " c ";
            Event.Start_element (qn "a", []);
            Event.Pi ("target", "data");
            Event.End_element (qn "a");
          ]
          (P.parse "<!-- c --><a><?target data?></a>"));
    tc "xml decl and doctype skipped" `Quick (fun () ->
        check Alcotest.int "count" 2
          (List.length (P.parse "<?xml version=\"1.0\"?><!DOCTYPE a><a/>")));
    tc "mismatched tag rejected" `Quick (fun () ->
        match P.parse "<a></b>" with
        | _ -> Alcotest.fail "expected error"
        | exception P.Error _ -> ());
    tc "unclosed rejected" `Quick (fun () ->
        match P.parse "<a><b></b>" with
        | _ -> Alcotest.fail "expected error"
        | exception P.Error _ -> ());
    tc "duplicate attribute rejected" `Quick (fun () ->
        match P.parse {|<a x="1" x="2"/>|} with
        | _ -> Alcotest.fail "expected error"
        | exception P.Error _ -> ());
    tc "two roots rejected" `Quick (fun () ->
        match P.parse "<a/><b/>" with
        | _ -> Alcotest.fail "expected error"
        | exception P.Error _ -> ());
    tc "text outside root rejected" `Quick (fun () ->
        match P.parse "hello<a/>" with
        | _ -> Alcotest.fail "expected error"
        | exception P.Error _ -> ());
    tc "error position reported" `Quick (fun () ->
        match P.parse "<a>\n  <b x=></b></a>" with
        | _ -> Alcotest.fail "expected error"
        | exception P.Error (pos, _) ->
          check Alcotest.int "line" 2 pos.P.line);
  ]

(* Random well-formed event streams round-trip through write+parse. *)
let gen_tree =
  let open QCheck2.Gen in
  let name = oneofl [ "a"; "b"; "c"; "ns:d" ] in
  let text = oneofl [ "x"; "a<b"; "4 & 2"; "\"q\""; "tail " ] in
  let rec tree depth =
    if depth = 0 then map (fun t -> `Text t) text
    else
      frequency
        [
          (2, map (fun t -> `Text t) text);
          (1, map (fun s -> `Comment s) (oneofl [ "c"; "note" ]));
          ( 3,
            map3
              (fun n attrs kids -> `Elem (n, attrs, kids))
              name
              (small_list (pair (oneofl [ "k"; "l" ]) text))
              (list_size (int_bound 3) (tree (depth - 1))) );
        ]
  in
  map3 (fun n attrs kids -> `Elem (n, attrs, kids)) name
    (small_list (pair (oneofl [ "k"; "l" ]) text))
    (list_size (int_bound 4) (tree 3))

let rec emit_tree acc t =
  match t with
  | `Text s -> Event.Text s :: acc
  | `Comment s -> Event.Comment s :: acc
  | `Elem (n, attrs, kids) ->
    (* dedupe attribute names to keep the stream well-formed *)
    let attrs =
      List.fold_left
        (fun seen (k, v) ->
          if List.mem_assoc k seen then seen else seen @ [ (k, v) ])
        [] attrs
    in
    let acc =
      Event.Start_element (qn n, List.map (fun (k, v) -> (qn k, v)) attrs) :: acc
    in
    let acc = List.fold_left emit_tree acc kids in
    Event.End_element (qn n) :: acc

(* Adjacent text events merge on reparse, so compare *normalized*
   streams: merge adjacent texts before comparing. *)
let rec merge_texts = function
  | Event.Text a :: Event.Text b :: rest -> merge_texts (Event.Text (a ^ b) :: rest)
  | e :: rest -> e :: merge_texts rest
  | [] -> []

let roundtrip_prop =
  qtest ~count:300 "write/parse round-trip" gen_tree (fun t ->
      let events = merge_texts (List.rev (emit_tree [] t)) in
      let xml = W.to_string events in
      let back = P.parse ~keep_ws:true xml in
      if List.length events = List.length back
         && List.for_all2 Event.equal events back
      then true
      else
        QCheck2.Test.fail_reportf "xml: %s@.expected %d events, got %d" xml
          (List.length events) (List.length back))

let suite =
  [
    ("xml:qname", qname_tests);
    ("xml:escape", escape_tests);
    ("xml:parser", parser_tests @ [ roundtrip_prop ]);
  ]

(* -- writer variants -------------------------------------------------- *)

let writer_tests =
  [
    tc "self-closing collapses empty elements" `Quick (fun () ->
        let evs = P.parse "<a><b/><c>t</c><d x='1'/></a>" in
        check Alcotest.string "xml" "<a><b/><c>t</c><d x=\"1\"/></a>"
          (W.to_string_self_closing evs));
    tc "self-closing output reparses identically" `Quick (fun () ->
        let src = "<a><b/><c>t<e/></c></a>" in
        let evs = P.parse src in
        let evs2 = P.parse (W.to_string_self_closing evs) in
        check Alcotest.bool "equal" true
          (List.length evs = List.length evs2 && List.for_all2 Event.equal evs evs2));
    tc "indented output reparses to the same events" `Quick (fun () ->
        let evs = P.parse "<a><b><c/></b><d/></a>" in
        let evs2 = P.parse (W.to_string_indented evs) in
        check Alcotest.bool "equal modulo ws" true
          (List.length evs = List.length evs2 && List.for_all2 Event.equal evs evs2));
  ]

let suite = suite @ [ ("xml:writer", writer_tests) ]
