(* S3: atomic values, arithmetic, comparisons, EBV, atomization. *)

open Helpers
module Atomic = Xqb_xdm.Atomic
module Value = Xqb_xdm.Value
module Item = Xqb_xdm.Item
module Errors = Xqb_xdm.Errors

let a_int i = Atomic.Integer i
let a_dbl f = Atomic.Double f
let a_str s = Atomic.String s
let a_unt s = Atomic.Untyped s

let atomic_str = Alcotest.testable Atomic.pp Atomic.equal

let arith_tests =
  [
    tc "integer arithmetic" `Quick (fun () ->
        check atomic_str "add" (a_int 7) (Atomic.arith Atomic.Add (a_int 3) (a_int 4));
        check atomic_str "mul" (a_int 12) (Atomic.arith Atomic.Mul (a_int 3) (a_int 4));
        check atomic_str "idiv" (a_int 2) (Atomic.arith Atomic.Idiv (a_int 7) (a_int 3));
        check atomic_str "mod" (a_int 1) (Atomic.arith Atomic.Mod (a_int 7) (a_int 3)));
    tc "integer div yields decimal when inexact" `Quick (fun () ->
        check atomic_str "exact" (a_int 2) (Atomic.arith Atomic.Div (a_int 6) (a_int 3));
        match Atomic.arith Atomic.Div (a_int 7) (a_int 2) with
        | Atomic.Decimal f -> check (Alcotest.float 1e-9) "3.5" 3.5 f
        | a -> Alcotest.failf "expected decimal, got %s" (Atomic.type_name a));
    tc "division by zero" `Quick (fun () ->
        (match Atomic.arith Atomic.Div (a_int 1) (a_int 0) with
        | _ -> Alcotest.fail "expected error"
        | exception Errors.Dynamic_error ("FOAR0001", _) -> ());
        (* double division by zero gives infinity, not an error *)
        match Atomic.arith Atomic.Div (a_dbl 1.) (a_dbl 0.) with
        | Atomic.Double f -> check Alcotest.bool "inf" true (f = Float.infinity)
        | _ -> Alcotest.fail "expected double");
    tc "promotion integer->double" `Quick (fun () ->
        match Atomic.arith Atomic.Add (a_int 1) (a_dbl 0.5) with
        | Atomic.Double f -> check (Alcotest.float 1e-9) "1.5" 1.5 f
        | a -> Alcotest.failf "expected double, got %s" (Atomic.type_name a));
    tc "untyped promotes to double" `Quick (fun () ->
        match Atomic.arith Atomic.Add (a_unt "2") (a_int 1) with
        | Atomic.Double f -> check (Alcotest.float 1e-9) "3" 3.0 f
        | a -> Alcotest.failf "expected double, got %s" (Atomic.type_name a));
    tc "string arithmetic is a type error" `Quick (fun () ->
        match Atomic.arith Atomic.Add (a_str "x") (a_int 1) with
        | _ -> Alcotest.fail "expected error"
        | exception Errors.Dynamic_error ("XPTY0004", _) -> ());
    tc "negate" `Quick (fun () ->
        check atomic_str "int" (a_int (-3)) (Atomic.negate (a_int 3)));
    qtest "integer add/sub cancel" QCheck2.Gen.(pair int int) (fun (x, y) ->
        Atomic.arith Atomic.Sub (Atomic.arith Atomic.Add (a_int x) (a_int y)) (a_int y)
        = a_int x);
  ]

let cmp_tests =
  [
    tc "general compare: untyped vs number is numeric" `Quick (fun () ->
        check Alcotest.bool "10 > 9" true
          (Atomic.general_compare Atomic.Gt (a_unt "10") (a_int 9)));
    tc "general compare: untyped vs untyped is string" `Quick (fun () ->
        (* "10" < "9" as strings *)
        check Alcotest.bool "10 lt 9 stringly" true
          (Atomic.general_compare Atomic.Lt (a_unt "10") (a_unt "9")));
    tc "general compare: untyped vs string is string" `Quick (fun () ->
        check Alcotest.bool "eq" true
          (Atomic.general_compare Atomic.Eq (a_unt "ab") (a_str "ab")));
    tc "value compare: untyped as string" `Quick (fun () ->
        check Alcotest.bool "eq" true
          (Atomic.value_compare Atomic.Eq (a_unt "x") (a_str "x")));
    tc "NaN comparisons are false" `Quick (fun () ->
        check Alcotest.bool "eq" false
          (Atomic.general_compare Atomic.Eq (a_dbl Float.nan) (a_dbl Float.nan));
        check Alcotest.bool "lt" false
          (Atomic.general_compare Atomic.Lt (a_dbl Float.nan) (a_dbl 1.)));
    tc "boolean compare" `Quick (fun () ->
        check Alcotest.bool "t=t" true
          (Atomic.general_compare Atomic.Eq (Atomic.Boolean true) (Atomic.Boolean true));
        check Alcotest.bool "f<t" true
          (Atomic.general_compare Atomic.Lt (Atomic.Boolean false) (Atomic.Boolean true)));
    tc "numeric tower equality" `Quick (fun () ->
        check Alcotest.bool "1 = 1.0" true
          (Atomic.general_compare Atomic.Eq (a_int 1) (a_dbl 1.0)));
    qtest "general eq is symmetric"
      QCheck2.Gen.(
        pair
          (oneof [ map a_int (int_bound 20); map a_unt (oneofl ["1";"2";"x"]); map a_str (oneofl ["1";"x"]) ])
          (oneof [ map a_int (int_bound 20); map a_unt (oneofl ["1";"2";"x"]); map a_str (oneofl ["1";"x"]) ]))
      (fun (x, y) ->
        match Atomic.general_compare Atomic.Eq x y with
        | r -> (try r = Atomic.general_compare Atomic.Eq y x with _ -> false)
        | exception _ -> (match Atomic.general_compare Atomic.Eq y x with
                          | _ -> false | exception _ -> true));
  ]

let cast_tests =
  [
    tc "to_integer" `Quick (fun () ->
        check Alcotest.int "str" 42 (Atomic.to_integer (a_str " 42 "));
        check Alcotest.int "trunc" 3 (Atomic.to_integer (a_dbl 3.9));
        check Alcotest.int "neg trunc" (-3) (Atomic.to_integer (a_dbl (-3.9)));
        check Alcotest.int "bool" 1 (Atomic.to_integer (Atomic.Boolean true)));
    tc "to_double special" `Quick (fun () ->
        check Alcotest.bool "INF" true (Atomic.to_double (a_str "INF") = Float.infinity);
        check Alcotest.bool "NaN" true (Float.is_nan (Atomic.to_double (a_str "NaN"))));
    tc "to_boolean" `Quick (fun () ->
        check Alcotest.bool "1" true (Atomic.to_boolean (a_str "1"));
        check Alcotest.bool "false" false (Atomic.to_boolean (a_str "false"));
        match Atomic.to_boolean (a_str "maybe") with
        | _ -> Alcotest.fail "expected error"
        | exception Errors.Dynamic_error _ -> ());
    tc "float formatting" `Quick (fun () ->
        check Alcotest.string "int-like" "3" (Atomic.to_string (a_dbl 3.0));
        check Alcotest.string "frac" "3.5" (Atomic.to_string (a_dbl 3.5));
        check Alcotest.string "INF" "INF" (Atomic.to_string (a_dbl Float.infinity)));
  ]

let ebv_tests =
  let ebv v = Value.effective_boolean_value v in
  [
    tc "empty is false" `Quick (fun () -> check Alcotest.bool "ebv" false (ebv []));
    tc "node-first is true" `Quick (fun () ->
        check Alcotest.bool "ebv" true (ebv [ Item.Node 0; Item.integer 0 ]));
    tc "singleton atomics" `Quick (fun () ->
        check Alcotest.bool "0" false (ebv (Value.of_int 0));
        check Alcotest.bool "1" true (ebv (Value.of_int 1));
        check Alcotest.bool "''" false (ebv (Value.of_string ""));
        check Alcotest.bool "'x'" true (ebv (Value.of_string "x"));
        check Alcotest.bool "NaN" false (ebv (Value.of_double Float.nan));
        check Alcotest.bool "false" false (ebv (Value.of_bool false)));
    tc "multi-atomic is an error" `Quick (fun () ->
        match ebv [ Item.integer 1; Item.integer 2 ] with
        | _ -> Alcotest.fail "expected error"
        | exception Errors.Dynamic_error ("FORG0006", _) -> ());
  ]

let atomize_tests =
  [
    tc "node atomizes to untyped string value" `Quick (fun () ->
        let f = fixture () in
        (match Item.atomize f.store (Item.Node f.b1) with
        | Atomic.Untyped s -> check Alcotest.string "sv" "one" s
        | a -> Alcotest.failf "expected untyped, got %s" (Atomic.type_name a));
        match Item.atomize f.store (Item.Node f.x1) with
        | Atomic.Untyped s -> check Alcotest.string "attr" "1" s
        | a -> Alcotest.failf "expected untyped, got %s" (Atomic.type_name a));
    tc "singleton helpers" `Quick (fun () ->
        (match Value.singleton_item [] with
        | _ -> Alcotest.fail "expected error"
        | exception Errors.Dynamic_error _ -> ());
        match Value.item_opt [ Item.integer 1; Item.integer 2 ] with
        | _ -> Alcotest.fail "expected error"
        | exception Errors.Dynamic_error _ -> ());
  ]

let suite =
  [
    ("xdm:arith", arith_tests);
    ("xdm:compare", cmp_tests);
    ("xdm:cast", cast_tests);
    ("xdm:ebv", ebv_tests);
    ("xdm:atomize", atomize_tests);
  ]
