(* S6/E1/E7: the algebraic compiler — join and outer-join/group-by
   detection, the purity guards of §4.2-4.3, and naive-vs-optimized
   equivalence on values *and* side effects. *)

open Helpers
module Plan = Xqb_algebra.Plan
module Runner = Xqb_algebra.Runner
module Compile = Xqb_algebra.Compile

let xmark_engine ?(persons = 40) ?(closed = 80) () =
  let eng = Core.Engine.create () in
  let cfg =
    { Xqb_xmark.Generator.default with persons; closed_auctions = closed }
  in
  let doc = Xqb_xmark.Generator.generate (Core.Engine.store eng) cfg in
  Core.Engine.bind_node eng "auction" doc;
  eng

let plan_for ?pre src =
  let eng = Core.Engine.create () in
  (match pre with Some f -> f eng | None -> ());
  let _, cres = Runner.plan_of eng src in
  cres

let bind_x eng =
  Core.Engine.bind_node eng "x"
    (Xqb_store.Store.load_string (Core.Engine.store eng) "<x/>")

let q8 =
  {|for $p in $auction//person
    let $a :=
      for $t in $auction//closed_auction
      where $t/buyer/@person = $p/@id
      return (insert { <buyer person="{$t/buyer/@person}"
                       itemid="{$t/itemref/@item}" /> }
              into { $purchasers }, $t)
    return <item person="{ $p/name }">{ count($a) }</item>|}

let detection =
  [
    tc "plain join is detected" `Quick (fun () ->
        let cres =
          plan_for ~pre:bind_x
            "for $a in $x/a for $b in $x/b where $a/@k = $b/@k return ($a, $b)"
        in
        check (Alcotest.list Alcotest.string) "fired" [ "hash-join" ]
          cres.Compile.fired;
        check Alcotest.bool "join in plan" true (Plan.has_join cres.Compile.plan));
    tc "outer-join/group-by is detected on the paper's Q8 variant" `Quick (fun () ->
        let cres =
          plan_for
            ~pre:(fun eng ->
              Core.Engine.bind_node eng "auction"
                (Xqb_store.Store.load_string (Core.Engine.store eng) "<site/>");
              Core.Engine.bind_node eng "purchasers"
                (Xqb_store.Store.load_string (Core.Engine.store eng) "<p/>"))
            q8
        in
        check (Alcotest.list Alcotest.string) "fired" [ "outer-join-groupby" ]
          cres.Compile.fired);
    tc "join key can be on either side" `Quick (fun () ->
        let cres =
          plan_for ~pre:bind_x
            "for $a in $x/a for $b in $x/b where $b/@k = $a/@k return 1"
        in
        check (Alcotest.list Alcotest.string) "fired" [ "hash-join" ]
          cres.Compile.fired);
    tc "dependent inner branch is not joined" `Quick (fun () ->
        let cres =
          plan_for ~pre:bind_x
            "for $a in $x/a for $b in $a/b where $a/@k = $b/@k return 1"
        in
        check (Alcotest.list Alcotest.string) "no fire" [] cres.Compile.fired);
    tc "non-equality predicate is not joined" `Quick (fun () ->
        let cres =
          plan_for ~pre:bind_x
            "for $a in $x/a for $b in $x/b where $a/@k < $b/@k return 1"
        in
        check (Alcotest.list Alcotest.string) "no fire" [] cres.Compile.fired);
    tc "explain shows the paper's plan shape" `Quick (fun () ->
        let eng = Core.Engine.create () in
        Core.Engine.bind_node eng "auction"
          (Xqb_store.Store.load_string (Core.Engine.store eng) "<site/>");
        Core.Engine.bind_node eng "purchasers"
          (Xqb_store.Store.load_string (Core.Engine.store eng) "<p/>");
        let s = Runner.explain eng q8 in
        List.iter
          (fun needle ->
            if not (Re.execp (Re.compile (Re.str needle)) s) then
              Alcotest.failf "explain misses %S:\n%s" needle s)
          [ "Snap"; "MapFromItem"; "GroupBy"; "LeftOuterJoin" ]);
  ]

let guards =
  [
    tc "updating inner branch blocks the join (cardinality guard)" `Quick
      (fun () ->
        let cres =
          plan_for ~pre:bind_x
            {|for $a in $x/a
              for $b in (insert {<l/>} into {$x}, $x/b)
              where $a/@k = $b/@k return 1|}
        in
        check Alcotest.bool "rejected" true
          (List.exists (fun (r, _) -> r = "hash-join") cres.Compile.rejected);
        check (Alcotest.list Alcotest.string) "not fired" [] cres.Compile.fired);
    tc "updating join key blocks the join" `Quick (fun () ->
        let cres =
          plan_for ~pre:bind_x
            {|for $a in $x/a
              for $b in $x/b
              where (insert {<l/>} into {$x}, $a/@k) = $b/@k return 1|}
        in
        check (Alcotest.list Alcotest.string) "not fired" [] cres.Compile.fired);
    tc "snap in the block pins evaluation (Effecting guard)" `Quick (fun () ->
        let cres =
          plan_for ~pre:bind_x
            {|for $a in $x/a
              for $b in $x/b
              where $a/@k = $b/@k
              return snap insert {<l/>} into {$x}|}
        in
        (match cres.Compile.plan with
        | Plan.Snap_v (_, Plan.Direct _) -> ()
        | p -> Alcotest.failf "expected Direct fallback, got %s" (Plan.explain p));
        check Alcotest.bool "reason recorded" true
          (List.exists (fun (_, why) -> why = "block contains a snap")
             cres.Compile.rejected));
    tc "updating return clause is allowed (the paper's point)" `Quick (fun () ->
        let cres =
          plan_for ~pre:bind_x
            {|for $a in $x/a
              for $b in $x/b
              where $a/@k = $b/@k
              return insert {<l/>} into {$x}|}
        in
        check (Alcotest.list Alcotest.string) "fired" [ "hash-join" ]
          cres.Compile.fired);
    tc "snap inside inner return blocks group-by" `Quick (fun () ->
        let cres =
          plan_for ~pre:bind_x
            {|for $a in $x/a
              let $g := for $b in $x/b where $a/@k = $b/@k
                        return snap insert {<l/>} into {$x}
              return count($g)|}
        in
        (* the whole block classifies Effecting, so the guard fires at
           the block level before group-by detection is even tried *)
        check Alcotest.bool "rejected for snap" true
          (List.exists
             (fun (_, why) ->
               why = "block contains a snap" || why = "inner return contains a snap")
             cres.Compile.rejected));
  ]

(* -- Equivalence: naive vs optimized ------------------------------- *)

let serialize_global eng name =
  Core.Engine.serialize eng (Option.get (Core.Engine.lookup_global eng name))

let equivalence_case name ?(persons = 30) ?(closed = 60) src =
  tc name `Quick (fun () ->
      let eng1 = xmark_engine ~persons ~closed () in
      Core.Engine.bind_node eng1 "sink"
        (Xqb_store.Store.load_string (Core.Engine.store eng1) "<sink/>");
      let v1 = Core.Engine.run eng1 src in
      let eng2 = xmark_engine ~persons ~closed () in
      Core.Engine.bind_node eng2 "sink"
        (Xqb_store.Store.load_string (Core.Engine.store eng2) "<sink/>");
      let r = Runner.run eng2 src in
      check Alcotest.string "values"
        (Core.Engine.serialize eng1 v1)
        (Core.Engine.serialize eng2 r.Runner.value);
      check Alcotest.string "effects"
        (serialize_global eng1 "sink")
        (serialize_global eng2 "sink"))

let equivalence =
  [
    equivalence_case "pure join"
      {|for $p in $auction//person
        for $t in $auction//closed_auction
        where $t/buyer/@person = $p/@id
        return concat($p/@id, ':', $t/itemref/@item)|};
    equivalence_case "join with updating return"
      {|for $p in $auction//person
        for $t in $auction//closed_auction
        where $t/buyer/@person = $p/@id
        return insert { <pair p="{$p/@id}" i="{$t/itemref/@item}"/> } into { $sink }|};
    equivalence_case "outer join group-by with count"
      {|for $p in $auction//person
        let $a := for $t in $auction//closed_auction
                  where $t/buyer/@person = $p/@id
                  return $t
        return <r id="{$p/@id}" n="{count($a)}"/>|};
    equivalence_case "the paper's Q8 variant (value + effects)"
      {|for $p in $auction//person
        let $a := for $t in $auction//closed_auction
                  where $t/buyer/@person = $p/@id
                  return (insert { <buyer person="{$t/buyer/@person}"/> }
                          into { $sink }, $t)
        return <item person="{ $p/name }">{ count($a) }</item>|};
    equivalence_case "sellers join (different key)"
      {|for $p in $auction//person
        for $t in $auction//closed_auction
        where $t/seller/@person = $p/@id
        return string($p/name)|};
    equivalence_case "pipeline without join still agrees"
      {|for $p in $auction//person
        where starts-with($p/name, 'A')
        return string($p/name)|};
  ]

(* qcheck: random small join queries agree between naive evaluation
   and the optimizer. Keys are chosen so matches actually occur. *)
let gen_join_query =
  let open QCheck2.Gen in
  let key = oneofl [ "@k"; "@j"; "text()" ] in
  let ret = oneofl [ "1"; "($a, $b)"; "concat($a/@k, '-', $b/@k)"; "name($b)" ] in
  let extra_where = oneofl [ ""; " where $a/@j = 'x'" ] in
  map3
    (fun k r w -> (k, r, w))
    key ret extra_where

let random_equivalence =
  qtest ~count:60 "random join queries agree" gen_join_query (fun (k, r, w) ->
      let src =
        Printf.sprintf
          "for $a in $x/a %s for $b in $x/b where $a/%s = $b/%s return %s" w k k r
      in
      let data =
        "<x><a k=\"1\" j=\"x\">1</a><a k=\"2\" j=\"y\">2</a><a k=\"1\" j=\"x\">3</a>\
         <b k=\"1\" j=\"x\">1</b><b k=\"3\" j=\"y\">2</b><b k=\"2\" j=\"x\">1</b></x>"
      in
      let mk () =
        let eng = Core.Engine.create () in
        Core.Engine.bind_node eng "x"
          (Xqb_store.Store.load_string (Core.Engine.store eng) data);
        eng
      in
      let eng1 = mk () in
      let v1 = Core.Engine.serialize eng1 (Core.Engine.run eng1 src) in
      let eng2 = mk () in
      let res = Runner.run eng2 src in
      let v2 = Core.Engine.serialize eng2 res.Runner.value in
      if v1 = v2 then true
      else QCheck2.Test.fail_reportf "query %s:@.naive: %s@.opt:   %s" src v1 v2)

(* Complexity: the optimized plan's probe count is linear, while the
   naive nested loop's work is quadratic. We assert the plan executes
   at most c*(L+R+matches) hash probes. *)
let complexity =
  [
    tc "join executes O(L + R + matches) probes" `Quick (fun () ->
        let eng = xmark_engine ~persons:60 ~closed:120 () in
        let r =
          Runner.run eng
            {|for $p in $auction//person
              for $t in $auction//closed_auction
              where $t/buyer/@person = $p/@id
              return 1|}
        in
        let stats = r.Runner.stats in
        (* each probe corresponds to one left-tuple key variant *)
        check Alcotest.bool "probes bounded" true
          (stats.Xqb_algebra.Exec.probes <= 2 * (60 + 120 + stats.Xqb_algebra.Exec.matches));
        check Alcotest.bool "found matches" true (stats.Xqb_algebra.Exec.matches > 0));
  ]

let suite =
  [
    ("optimizer:detection", detection);
    ("optimizer:guards", guards);
    ("optimizer:equivalence", equivalence);
    ("optimizer:random", [ random_equivalence ]);
    ("optimizer:complexity", complexity);
  ]

(* -- order-by through the algebra ------------------------------------ *)

let orderby_tests =
  [
    tc "order-by FLWOR with a join compiles to Sort over HashJoin" `Quick
      (fun () ->
        let cres =
          plan_for ~pre:bind_x
            {|for $a in $x/a
              for $b in $x/b
              where $a/@k = $b/@k
              order by string($a/@k) descending
              return concat($a/@k, $b/@k)|}
        in
        check (Alcotest.list Alcotest.string) "fired" [ "hash-join" ]
          cres.Compile.fired;
        (match cres.Compile.plan with
        | Plan.Snap_v (_, Plan.Map_from_tuple (Plan.Sort (t, [ _ ]), _)) ->
          check Alcotest.bool "join below sort" true (Plan.has_join_t t)
        | p -> Alcotest.failf "unexpected plan: %s" (Plan.explain p)));
    equivalence_case "order-by join agrees with direct evaluation"
      {|for $p in $auction//person
        for $t in $auction//closed_auction
        where $t/buyer/@person = $p/@id
        order by string($p/name), string($t/itemref/@item) descending
        return concat($p/name, ':', $t/itemref/@item)|};
    equivalence_case "order-by with updating return agrees"
      {|for $p in $auction//person
        for $t in $auction//closed_auction
        where $t/buyer/@person = $p/@id
        order by string($p/name)
        return insert { <hit p="{$p/@id}"/> } into { $sink }|};
    equivalence_case "order-by without a join agrees"
      {|for $p in $auction//person
        order by string($p/name) descending
        return string($p/name)|};
    tc "snap inside an order-by block falls back to Direct" `Quick (fun () ->
        let cres =
          plan_for ~pre:bind_x
            {|for $a in $x/a
              order by name($a)
              return snap insert {<l/>} into {$x}|}
        in
        match cres.Compile.plan with
        | Plan.Snap_v (_, Plan.Direct _) -> ()
        | p -> Alcotest.failf "expected Direct, got %s" (Plan.explain p));
  ]

let suite = suite @ [ ("optimizer:order-by", orderby_tests) ]
