(* Systematic update-combination corpus: insert locations × payload
   kinds, operation interleavings, snap-mode agreement on
   order-independent programs, and the snap-scope visibility matrix.
   Complements the per-rule tests in test_eval_updates.ml. *)

open Helpers

(* -- locations × payloads ------------------------------------------- *)

(* Target tree: <x><a/><b/></x>; insert the payload at each location
   relative to $x/a and check the final serialization. *)
let payloads =
  [
    ("element ctor", "<p/>", "<p></p>");
    ("text ctor", "text {'t'}", "t");
    ("atomic", "'s'", "s");
    ("two atomics", "(1, 2)", "1 2");
    ("sequence of elements", "(<p/>, <q/>)", "<p></p><q></q>");
    ("copied subtree", "copy {<p><i/></p>}", "<p><i></i></p>");
  ]

let locations =
  [
    ("into", "into {$x}", fun payload -> "<x><a></a><b></b>" ^ payload ^ "</x>");
    ("as first into", "as first into {$x}",
     fun payload -> "<x>" ^ payload ^ "<a></a><b></b></x>");
    ("as last into", "as last into {$x}",
     fun payload -> "<x><a></a><b></b>" ^ payload ^ "</x>");
    ("before", "before {$x/b}", fun payload -> "<x><a></a>" ^ payload ^ "<b></b></x>");
    ("after", "after {$x/a}", fun payload -> "<x><a></a>" ^ payload ^ "<b></b></x>");
  ]

let location_payload_cases =
  List.concat_map
    (fun (lname, lsyntax, expected_of) ->
      List.map
        (fun (pname, psyntax, pserial) ->
          expect
            (Printf.sprintf "insert %s %s" pname lname)
            (Printf.sprintf
               "let $x := <x><a/><b/></x> return (snap insert {%s} %s, $x)"
               psyntax lsyntax)
            (expected_of pserial))
        payloads)
    locations

(* -- operation interleavings within one snap ------------------------ *)

let interleavings =
  [
    expect "insert then delete of distinct nodes"
      {|let $x := <x><a/><b/></x>
        return (snap ordered { insert {<c/>} into {$x}, delete {$x/a} }, $x)|}
      "<x><b></b><c></c></x>";
    expect "delete then insert at same parent"
      {|let $x := <x><a/></x>
        return (snap ordered { delete {$x/a}, insert {<c/>} into {$x} }, $x)|}
      "<x><c></c></x>";
    expect "rename then insert before the renamed node"
      {|let $x := <x><a/></x>
        return (snap ordered { rename {$x/a} to {'z'}, insert {<c/>} before {$x/a} }, $x)|}
      "<x><c></c><z></z></x>";
    expect "replace then insert after the replacement spot"
      {|let $x := <x><a/><b/></x>
        return (snap ordered { replace {$x/a} with {<r/>}, insert {<c/>} after {$x/b} }, $x)|}
      "<x><r></r><b></b><c></c></x>";
    expect "two inserts before the same anchor stack in delta order"
      {|let $x := <x><m/></x>
        return (snap ordered { insert {<a/>} before {$x/m}, insert {<b/>} before {$x/m} }, $x)|}
      "<x><a></a><b></b><m></m></x>";
    expect "two inserts after the same anchor: later lands closer"
      {|let $x := <x><m/></x>
        return (snap ordered { insert {<a/>} after {$x/m}, insert {<b/>} after {$x/m} }, $x)|}
      "<x><m></m><b></b><a></a></x>";
    expect "delete of anchor after insert-before resolves in order"
      {|let $x := <x><m/></x>
        return (snap ordered { insert {<a/>} before {$x/m}, delete {$x/m} }, $x)|}
      "<x><a></a></x>";
    expect "update inside both branches via sequence"
      {|let $x := <x/>
        let $y := <y/>
        return (snap ordered { insert {<a/>} into {$x}, insert {<b/>} into {$y} },
                $x, $y)|}
      "<x><a></a></x><y><b></b></y>";
    expect "delete parent and child in either order"
      {|let $x := <x><p><c/></p></x>
        let $p := $x/p
        return (snap ordered { delete {$p/c}, delete {$p} }, $x, $p)|}
      "<x></x><p></p>";
  ]

(* -- snap-mode agreement on order-independent programs -------------- *)

let mode_agreement =
  let program mode =
    "let $x := <x><a/><b/><c/></x>\n"
    ^ "return (snap " ^ mode ^ " {\n"
    ^ "          rename {$x/a} to {'a2'},\n"
    ^ "          delete {$x/b},\n"
    ^ "          insert {<d/>} into {$x}\n"
    ^ "        }, $x)"
  in
  let expected = "<x><a2></a2><c></c><d></d></x>" in
  List.map
    (fun mode ->
      expect
        (Printf.sprintf "independent updates agree under %s" mode)
        (program mode) expected)
    [ "ordered"; "nondeterministic"; "conflict"; "atomic" ]

(* -- scope visibility matrix ---------------------------------------- *)

(* Observation points: before any update, after emitting (same scope),
   after an inner snap closes, after the outer snap closes. *)
let visibility =
  [
    expect "visibility matrix"
      {|let $x := <x/>
        let $o1 := count($x/*)                       (: 0: nothing yet :)
        let $r := snap {
          insert {<a/>} into {$x},
          (: still pending in this scope :)
          count($x/*),
          snap { insert {<b/>} into {$x} },
          (: b applied, a still pending :)
          count($x/b), count($x/a)
        }
        (: both applied now :)
        return ($o1, $r, count($x/*))|}
      "0 0 1 0 2";
    expect "sibling snaps see each other's effects"
      {|let $x := <x/>
        return (snap insert {<a/>} into {$x},
                snap insert {element n {count($x/*)}} into {$x},
                string($x/n))|}
      "1";
    expect "function call inside snap contributes to caller's delta"
      {|declare variable $x := <x/>;
        declare function add() { insert {<f/>} into {$x} };
        snap { add(), add(), count($x/*) }|}
      "0";
    expect "function with its own snap applies immediately"
      {|declare variable $x := <x/>;
        declare function add_now() { snap insert {<f/>} into {$x} };
        snap { add_now(), add_now(), count($x/*) }|}
      "2";
  ]

(* -- deterministic engine behaviour --------------------------------- *)

let determinism =
  [
    tc "same seed => identical nondeterministic application" `Quick (fun () ->
        let run () =
          let eng = Core.Engine.create ~seed:99 () in
          let v =
            Core.Engine.run eng
              {|let $x := <x/>
                return (snap nondeterministic {
                          for $i in 1 to 8 return insert {element n {$i}} into {$x}
                        }, $x)|}
          in
          Core.Engine.serialize eng v
        in
        check Alcotest.string "deterministic" (run ()) (run ()));
    tc "ordered mode ignores the seed" `Quick (fun () ->
        let run seed =
          let eng = Core.Engine.create ~seed () in
          let v =
            Core.Engine.run eng
              {|let $x := <x/>
                return (snap ordered {
                          for $i in 1 to 8 return insert {element n {$i}} into {$x}
                        }, $x)|}
          in
          Core.Engine.serialize eng v
        in
        check Alcotest.string "seed independent" (run 1) (run 2));
  ]

let suite =
  [
    ("update-matrix:location-x-payload", location_payload_cases);
    ("update-matrix:interleavings", interleavings);
    ("update-matrix:mode-agreement", mode_agreement);
    ("update-matrix:visibility", visibility);
    ("update-matrix:determinism", determinism);
  ]
