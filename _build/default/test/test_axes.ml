(* S2: the twelve XPath axes and node tests, plus document order. *)

open Helpers
module Store = Xqb_store.Store
module Axes = Xqb_store.Axes

let ids = Alcotest.(list int)

let axis_tests =
  [
    tc "child" `Quick (fun () ->
        let f = fixture () in
        check ids "a" [ f.b1; f.c1; f.b2 ] (Axes.apply f.store Axes.Child f.a));
    tc "attribute" `Quick (fun () ->
        let f = fixture () in
        check ids "b1" [ f.x1 ] (Axes.apply f.store Axes.Attribute f.b1);
        check ids "c1" [] (Axes.apply f.store Axes.Attribute f.c1));
    tc "self / parent" `Quick (fun () ->
        let f = fixture () in
        check ids "self" [ f.b1 ] (Axes.apply f.store Axes.Self f.b1);
        check ids "parent" [ f.a ] (Axes.apply f.store Axes.Parent f.b1);
        check ids "parent of attr" [ f.b1 ] (Axes.apply f.store Axes.Parent f.x1);
        check ids "parent of root" [] (Axes.apply f.store Axes.Parent f.doc));
    tc "descendant in document order" `Quick (fun () ->
        let f = fixture () in
        check ids "a" [ f.b1; f.t1; f.c1; f.b2; f.t2; f.d1 ]
          (Axes.apply f.store Axes.Descendant f.a);
        check ids "dos" (f.a :: [ f.b1; f.t1; f.c1; f.b2; f.t2; f.d1 ])
          (Axes.apply f.store Axes.Descendant_or_self f.a));
    tc "ancestor nearest-first" `Quick (fun () ->
        let f = fixture () in
        check ids "d1" [ f.b2; f.a; f.doc ] (Axes.apply f.store Axes.Ancestor f.d1);
        check ids "aos" [ f.d1; f.b2; f.a; f.doc ]
          (Axes.apply f.store Axes.Ancestor_or_self f.d1));
    tc "siblings" `Quick (fun () ->
        let f = fixture () in
        check ids "after b1" [ f.c1; f.b2 ]
          (Axes.apply f.store Axes.Following_sibling f.b1);
        check ids "before b2 nearest-first" [ f.c1; f.b1 ]
          (Axes.apply f.store Axes.Preceding_sibling f.b2);
        check ids "attr has none" []
          (Axes.apply f.store Axes.Following_sibling f.x1));
    tc "following excludes descendants" `Quick (fun () ->
        let f = fixture () in
        check ids "b1" [ f.c1; f.b2; f.t2; f.d1 ]
          (Axes.apply f.store Axes.Following f.b1);
        check ids "t1 follows up" [ f.c1; f.b2; f.t2; f.d1 ]
          (Axes.apply f.store Axes.Following f.t1);
        check ids "t2" [ f.d1 ] (Axes.apply f.store Axes.Following f.t2));
    tc "preceding excludes ancestors" `Quick (fun () ->
        let f = fixture () in
        let p = Axes.apply f.store Axes.Preceding f.d1 in
        check Alcotest.bool "no ancestors" true
          (not (List.mem f.a p) && not (List.mem f.b2 p));
        check Alcotest.bool "has b1 c1 t1 t2" true
          (List.for_all (fun n -> List.mem n p) [ f.b1; f.c1; f.t1; f.t2 ]));
  ]

let test_tests =
  [
    tc "name test vs principal kind" `Quick (fun () ->
        let f = fixture () in
        check ids "child b" [ f.b1; f.b2 ]
          (Axes.step f.store Axes.Child (Axes.Name (qn "b")) f.a);
        check ids "attr x" [ f.x1 ]
          (Axes.step f.store Axes.Attribute (Axes.Name (qn "x")) f.b1);
        (* a name test on the child axis never matches attributes *)
        check ids "child x empty" []
          (Axes.step f.store Axes.Child (Axes.Name (qn "x")) f.b1));
    tc "wildcard" `Quick (fun () ->
        let f = fixture () in
        (* elements only, not text *)
        check ids "b2/*" [ f.d1 ] (Axes.step f.store Axes.Child Axes.Wildcard f.b2));
    tc "kind tests" `Quick (fun () ->
        let f = fixture () in
        check ids "text()" [ f.t2 ]
          (Axes.step f.store Axes.Child Axes.Kind_text f.b2);
        check ids "node()" [ f.t2; f.d1 ]
          (Axes.step f.store Axes.Child Axes.Kind_node f.b2);
        check ids "element()" [ f.d1 ]
          (Axes.step f.store Axes.Child (Axes.Kind_element None) f.b2);
        check ids "element(d)" [ f.d1 ]
          (Axes.step f.store Axes.Child (Axes.Kind_element (Some (qn "d"))) f.b2);
        check ids "element(z)" []
          (Axes.step f.store Axes.Child (Axes.Kind_element (Some (qn "z"))) f.b2);
        check ids "document-node()" [ f.doc ]
          (Axes.step f.store Axes.Self Axes.Kind_document f.doc));
  ]

let order_tests =
  [
    tc "document order basics" `Quick (fun () ->
        let f = fixture () in
        check Alcotest.bool "b1 < c1" true (Store.compare_order f.store f.b1 f.c1 < 0);
        check Alcotest.bool "ancestor first" true
          (Store.compare_order f.store f.a f.t1 < 0);
        check Alcotest.bool "attr before children" true
          (Store.compare_order f.store f.x1 f.t1 < 0);
        check Alcotest.bool "attr after element" true
          (Store.compare_order f.store f.b1 f.x1 < 0);
        check Alcotest.int "reflexive" 0 (Store.compare_order f.store f.d1 f.d1));
    tc "sort_doc_order sorts and dedupes" `Quick (fun () ->
        let f = fixture () in
        check ids "sorted" [ f.a; f.b1; f.t1; f.c1 ]
          (Store.sort_doc_order f.store [ f.c1; f.a; f.t1; f.b1; f.c1; f.a ]));
    tc "cross-tree order is stable" `Quick (fun () ->
        let f = fixture () in
        let g = Store.load_string f.store "<z/>" in
        (* earlier-created tree first *)
        check Alcotest.bool "doc < g" true (Store.compare_order f.store f.d1 g < 0));
    qtest ~count:100 "order is a strict total order"
      QCheck2.Gen.(triple small_nat small_nat small_nat)
      (fun (i, j, k) ->
        let f = fixture () in
        let all =
          List.init (Store.node_count f.store) Fun.id
        in
        let n = List.length all in
        let a = List.nth all (i mod n)
        and b = List.nth all (j mod n)
        and c = List.nth all (k mod n) in
        let cmp = Store.compare_order f.store in
        (* antisymmetry *)
        (compare (cmp a b) (-(cmp b a)) = 0 || a = b)
        (* transitivity *)
        && (not (cmp a b < 0 && cmp b c < 0) || cmp a c < 0));
  ]

let suite =
  [ ("axes:apply", axis_tests); ("axes:tests", test_tests); ("axes:order", order_tests) ]
