(* A mini conformance corpus for the XQuery 1.0 fragment: one-line
   (query, expected-serialization) pairs in the spirit of XQTS. Each
   case pins a distinct behaviour; goldens were checked against the
   spec by hand. *)

open Helpers

let cases_arithmetic =
  [
    ("integer addition", "1 + 2", "3");
    ("left assoc subtraction", "10 - 3 - 2", "5");
    ("mixed precedence", "2 + 3 * 4 - 1", "13");
    ("integer division exact", "8 div 4", "2");
    ("integer division inexact", "1 div 2", "0.5");
    ("idiv truncates toward zero", "(-7) idiv 2", "-3");
    ("mod sign follows dividend", "(-7) mod 2, 7 mod -2", "-1 1");
    ("decimal arithmetic", "0.1 + 0.2 < 0.4", "true");
    ("double exponent literal", "1e2 + 1", "101");
    ("double overflow to INF", "1e308 * 10", "INF");
    ("double division by zero", "1e0 div 0", "INF");
    ("negative double division", "-1e0 div 0", "-INF");
    ("NaN from 0 div 0 double", "string(0e0 div 0)", "NaN");
    ("unary minus binds tighter than sub", "5 - -3", "8");
    ("double unary minus", "- -4", "4");
    ("untyped arithmetic via double", "<a>4</a> + 1", "5");
    ("promotion int+decimal", "1 + 0.5", "1.5");
    ("arith over singleton node", "<n>6</n> * 7", "42");
    ("to range single", "(5 to 5)", "5");
    ("count of range", "count(1 to 100)", "100");
    ("range with arith bounds", "(1+1) to (2*2)", "2 3 4");
  ]

let cases_comparison =
  [
    ("string inequality", "'a' != 'b'", "true");
    ("numeric general le", "(3, 4) <= 3", "true");
    ("general eq needs one pair", "(1, 2) = (3, 2)", "true");
    ("general against empty", "1 = ()", "false");
    ("general both empty", "() = ()", "false");
    ("untyped node vs string", "<a>x</a> = 'x'", "true");
    ("untyped node vs number", "<a>07</a> = 7", "true");
    ("two untyped nodes compare stringly", "<a>07</a> = <b>7</b>", "false");
    ("value lt on strings", "'abc' lt 'b'", "true");
    ("value ge", "3 ge 3", "true");
    ("ne on numeric tower", "1 ne 1.0", "false");
    ("boolean eq", "true() = true()", "true");
    ("boolean lt", "false() lt true()", "true");
    ("is on same node", "let $a := <a/> return $a is $a", "true");
    ("is on equal but distinct nodes", "<a/> is <a/>", "false");
    ("precedes within tree", "let $a := <a><b/><c/></a> return $a/b << $a/c", "true");
  ]

let cases_logic =
  [
    ("and true", "true() and 1", "true");
    ("or false", "false() or 0", "false");
    ("ebv of string", "'false' and true()", "true");
    ("ebv of zero string is false?", "boolean('')", "false");
    ("not of node seq", "not(<a/>)", "false");
    ("nested boolean ops", "(true() or false()) and not(false())", "true");
    ("if with empty condition", "if (()) then 1 else 2", "2");
    ("if with node condition", "if (<a/>) then 1 else 2", "1");
  ]

let cases_sequences =
  [
    ("empty flattening", "((), (), ())", "");
    ("deep nesting flattens", "(1, (2, (3, (4))))", "1 2 3 4");
    ("count nested", "count((1, (2, 3)))", "3");
    ("reverse of empty", "count(reverse(()))", "0");
    ("subsequence beyond end", "subsequence((1,2), 5)", "");
    ("subsequence negative start", "subsequence((1,2,3), -1, 3)", "1");
    ("remove out of range", "remove((1,2), 9)", "1 2");
    ("insert-before position 1", "insert-before((2,3), 1, 1)", "1 2 3");
    ("index-of no match", "count(index-of((1,2), 9))", "0");
    ("index-of with untyped", "index-of((<a>5</a>, 5), 5)", "1 2");
    ("distinct preserves first occurrence order",
     "distinct-values(('b', 'a', 'b', 'c'))", "b a c");
    ("empty() and exists()", "(empty(()), exists(0))", "true true");
  ]

let cases_strings =
  [
    ("concat coerces", "concat(1, '-', 2.5)", "1-2.5");
    ("string-join empty sep", "string-join(('a','b'), '')", "ab");
    ("string-join singleton", "string-join('x', ',')", "x");
    ("substring fractional start", "substring('12345', 1.5)", "2345");
    ("substring fractional length", "substring('12345', 2, 2.5)", "234");
    ("substring-before no match", "substring-before('abc', 'z')", "");
    ("substring-after full match", "substring-after('abc', 'abc')", "");
    ("string-length of empty seq via arg", "string-length('')", "0");
    ("normalize-space all ws", "normalize-space('   ')", "");
    ("contains empty needle", "contains('abc', '')", "true");
    ("translate deletes", "translate('abcd', 'bd', '')", "ac");
    ("upper-case non-letters", "upper-case('a1b')", "A1B");
    ("starts-with empty", "starts-with('abc', '')", "true");
    ("matches anchors", "(matches('abc', '^abc$'), matches('xabc', '^abc$'))",
     "true false");
    ("replace with groups", "replace('a1b2', '[0-9]', '#')", "a#b#");
    ("tokenize collapses nothing", "count(tokenize('a b  c', ' '))", "4");
    ("string of number", "string(1.5)", "1.5");
    ("string of boolean", "string(true())", "true");
  ]

let cases_numeric_fns =
  [
    ("sum mixed tower", "sum((1, 2.5))", "3.5");
    ("sum of untyped nodes", "sum((<a>1</a>, <a>2</a>))", "3");
    ("avg preserves decimal", "avg((1, 2))", "1.5");
    ("min over mixed", "min((3, 1.5))", "1.5");
    ("max of strings", "max(('a', 'c', 'b'))", "c");
    ("floor of negative", "floor(-1.5)", "-2");
    ("ceiling of negative", "ceiling(-1.5)", "-1");
    ("round half up", "round(2.5)", "3");
    ("round negative half", "round(-2.5)", "-2");
    ("abs of integer keeps type", "abs(-3) instance of xs:integer", "true");
    ("number of unparseable", "string(number('abc'))", "NaN");
  ]

let cases_nodes_paths =
  [
    ("name of attribute", "let $a := <e k='v'/> return name($a/@k)", "k");
    ("string of attribute", "string(<e k='v'/>/@k)", "v");
    ("data of attribute", "data(<e k='3'/>/@k) + 1", "4");
    ("text node string", "string((<a>x<b/>y</a>/text())[1])", "x");
    ("two text nodes around element", "count(<a>x<b/>y</a>/text())", "2");
    ("wildcard attribute", "count(<e a='1' b='2'/>/@*)", "2");
    ("parent of attribute", "let $e := <e k='v'/> return $e/@k/.. is $e", "true");
    ("descendant-or-self from element",
     "count(<a><b><c/></b></a>/descendant-or-self::*)", "3");
    ("path over empty input", "count(()/a)", "0");
    ("predicate false for all", "count((1,2,3)[. > 5])", "0");
    ("predicate on path result order",
     "let $d := <d><x>1</x><y>2</y><x>3</x></d> return string-join($d/*/name(.), ',')",
     "x,y,x");
    ("positional on reversed", "reverse((1,2,3))[1]", "3");
    ("last in predicate arithmetic", "(1,2,3,4)[last() - 1]", "3");
    ("comma in predicate needs parens", "(1,2,3)[(1,2) = position()]", "1 2");
    ("attribute of constructed element",
     "element e { attribute k {'v'}, 'body' }/@k/string(.)", "v");
    ("self axis filters kind", "count(<a/>/self::text())", "0");
    ("union of attributes and elements sorted",
     "let $e := <e k='v'><c/></e> return string-join(($e/c | $e/@k)/name(.), ',')",
     "k,c");
  ]

let cases_flwor_quant =
  [
    ("let over empty", "let $x := () return count($x)", "0");
    ("for over single item", "for $x in 5 return $x * $x", "25");
    ("nested lets shadow", "let $x := 1 return let $x := $x + 1 return $x", "2");
    ("where with position var",
     "for $x at $i in ('a','b','c') where $i mod 2 = 1 return $x", "a c");
    ("order by numeric vs string",
     "for $x in ('10', '9') order by xs:integer($x) return $x", "9 10");
    ("order by on doubles", "for $x in (1.5, 0.5, 2.5) order by $x return $x",
     "0.5 1.5 2.5");
    ("some short data", "some $x in (1, 'a') satisfies $x instance of xs:string",
     "true");
    ("every fails on one", "every $x in (1, 'a') satisfies $x instance of xs:integer",
     "false");
    ("quantifier over path", "some $b in <a><b>1</b><b>2</b></a>/b satisfies $b = 2",
     "true");
    ("for in for expression", "for $x in (for $y in (1,2) return $y * 10) return $x + 1",
     "11 21");
  ]

let cases_constructors =
  [
    ("empty element self-closes in AST", "count(<a/>/node())", "0");
    ("attribute value normalizes entity", "string(<a k=\"&lt;\"/>/@k)", "<");
    ("numeric enclosed in attribute", "string(<a k=\"{1+1}\"/>/@k)", "2");
    ("sequence in attribute joins with space", "string(<a k=\"{1,2,3}\"/>/@k)",
     "1 2 3");
    ("nested constructor inherits nothing", "count(<a><b/></a>/b/@*)", "0");
    ("text in computed element", "element x {'a', 'b'}/string(.)", "a b");
    ("computed element with node content", "count(element x {<y/>, <z/>}/*)", "2");
    ("document node children", "count(document {(<a/>, <b/>)}/*)", "2");
    ("constructed attr then query it", "<e>{attribute q {1+2}}</e>/@q = 3", "true");
    ("deep construction", "string(<a><b><c>{40+2}</c></b></a>)", "42");
    ("comment node has no children", "count(<a><!--x--></a>/comment())", "1");
    ("pi in constructor", "count(<a><?t d?></a>/processing-instruction())", "1");
    ("boundary whitespace dropped", "count(<a> <b/> </a>/text())", "0");
    ("explicit whitespace kept via enclosed", "string-length(<a>{' '}</a>)", "1");
  ]

let cases_types =
  [
    ("instance of anyAtomicType", "'x' instance of xs:anyAtomicType", "true");
    ("integer is decimal", "1 instance of xs:decimal", "true");
    ("decimal literal is not integer", "1.5 instance of xs:integer", "false");
    ("node not atomic", "<a/> instance of xs:anyAtomicType", "false");
    ("empty matches star", "() instance of item()*", "true");
    ("cast untyped to boolean", "xs:boolean(<a>true</a>)", "true");
    ("cast boolean to integer", "xs:integer(true())", "1");
    ("cast to untypedAtomic", "xs:untypedAtomic(3) instance of xs:untypedAtomic",
     "true");
    ("castable rejects bad qname", "'1bad' castable as xs:QName", "false");
    ("cast integer to string round trip", "xs:integer(xs:string(42))", "42");
  ]

let cases_edge =
  [
    ("count of a large range", "count(1 to 100000)", "100000");
    ("sum of a large range", "sum(1 to 1000)", "500500");
    ("deeply nested arithmetic", "((((((1+2)*3)-4) idiv 2)+5)*2)", "14");
    ("deep recursion",
     "declare function down($n) { if ($n = 0) then 0 else down($n - 1) }; down(2000)",
     "0");
    ("long filter chain", "(1 to 100)[. mod 2 = 0][. mod 3 = 0][. > 50]",
     "54 60 66 72 78 84 90 96");
    ("nested constructors 6 deep",
     "string(<a><b><c><d><e><f>x</f></e></d></c></b></a>)", "x");
    ("unicode through the pipeline", "string-length('caf\xc3\xa9')", "5");
    ("unicode entity in constructor", "string(<a>&#233;</a>)", "\xc3\xa9");
    ("empty string operations",
     "(concat('', ''), string-length(''), substring('', 1))", " 0 ");
    ("negative literal in sequence", "(-1, - 2, -(3))", "-1 -2 -3");
    ("integer bounds", "(4611686018427387903 - 1) + 1", "4611686018427387903");
    ("many attributes",
     "count(<e a='1' b='2' c='3' d='4' f='5' g='6' h='7' i='8'/>/@*)", "8");
    ("predicate over attributes", "count(<e a='1' b='2'/>/@*[. = '1'])", "1");
    ("boolean of nested empties", "boolean(((), (), ()))", "false");
    ("if chains", "if (0) then 1 else if (0) then 2 else if (1) then 3 else 4",
     "3");
    ("quantifier over large range", "every $x in 1 to 5000 satisfies $x > 0",
     "true");
    ("distinct over many duplicates",
     "count(distinct-values(for $i in 1 to 1000 return $i mod 7))", "7");
    ("string-join of a computed sequence",
     "string-join(for $i in 1 to 5 return string($i), '')", "12345");
    ("shadowing across scopes",
     "let $x := 1 return ((for $x in (10, 20) return $x + 1), $x)", "11 21 1");
    ("comparison chains need parens",
     "(1 < 2) = (3 < 4)", "true");
    ("mod of decimals", "5.5 mod 2", "1.5");
    ("whitespace handling in constructors",
     "string-length(string(<a> {'x'} </a>))", "1");
    ("text nodes do not merge on detach-reinsert",
     {|let $x := <a>one<b/>two</a>
       return (snap delete {$x/b}, count($x/text()))|},
     "2");
    ("copy of a copy", "string(copy { copy { <a>v</a> } })", "v");
    ("snap returning nodes",
     "count(snap { (<a/>, <b/>) })", "2");
    ("update in both quantifier and body",
     {|let $x := <x/>
       return (some $i in (insert {<q/>} into {$x}, 1) satisfies $i = 1,
               count($x/q))|},
     "true 0");
  ]

let all_cases =
  [
    ("conformance:edge", cases_edge);
    ("conformance:arithmetic", cases_arithmetic);
    ("conformance:comparison", cases_comparison);
    ("conformance:logic", cases_logic);
    ("conformance:sequences", cases_sequences);
    ("conformance:strings", cases_strings);
    ("conformance:numeric-fns", cases_numeric_fns);
    ("conformance:nodes-paths", cases_nodes_paths);
    ("conformance:flwor-quant", cases_flwor_quant);
    ("conformance:constructors", cases_constructors);
    ("conformance:types", cases_types);
  ]

(* Semantic pretty-printer round-trip: for every corpus query,
   [run (pretty (parse q))] must equal [run q]. This checks the
   printer *semantically* (the structural qcheck round-trip lives in
   test_pretty.ml) and doubles the corpus' value. *)
let pretty_semantic_roundtrip =
  List.map
    (fun (group, cases) ->
      tc (group ^ " round-trips semantically") `Quick (fun () ->
          List.iter
            (fun (name, q, expected) ->
              let printed =
                Xqb_syntax.Pretty.prog_to_string (Xqb_syntax.Parser.parse_prog q)
              in
              match run printed with
              | got ->
                check Alcotest.string
                  (Printf.sprintf "%s via %s" name printed)
                  expected got
              | exception e ->
                Alcotest.failf "%s: reprinted %S failed: %s" name printed
                  (Printexc.to_string e))
            cases))
    all_cases

let suite =
  List.map
    (fun (group, cases) ->
      (group, List.map (fun (name, q, expected) -> expect name q expected) cases))
    all_cases
  @ [ ("conformance:pretty-roundtrip", pretty_semantic_roundtrip) ]
