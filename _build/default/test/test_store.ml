(* S2: the XDM store — constructors, accessors, mutations with
   preconditions, detach semantics, deep copy, journal/transactions,
   and invariant preservation under random mutation sequences. *)

open Helpers
module Store = Xqb_store.Store
module Vec = Xqb_store.Vec

let no_errors store =
  check (Alcotest.list Alcotest.string) "invariants" [] (Store.validate store)

let vec_tests =
  [
    tc "push/get/length" `Quick (fun () ->
        let v = Vec.create () in
        for i = 0 to 99 do
          Vec.push v i
        done;
        check Alcotest.int "len" 100 (Vec.length v);
        check Alcotest.int "get" 42 (Vec.get v 42));
    tc "insert shifts" `Quick (fun () ->
        let v = Vec.of_list [ 1; 2; 4 ] in
        Vec.insert v 2 3;
        check (Alcotest.list Alcotest.int) "list" [ 1; 2; 3; 4 ] (Vec.to_list v));
    tc "insert at ends" `Quick (fun () ->
        let v = Vec.of_list [ 2 ] in
        Vec.insert v 0 1;
        Vec.insert v 2 3;
        check (Alcotest.list Alcotest.int) "list" [ 1; 2; 3 ] (Vec.to_list v));
    tc "remove_at" `Quick (fun () ->
        let v = Vec.of_list [ 1; 2; 3 ] in
        Vec.remove_at v 1;
        check (Alcotest.list Alcotest.int) "list" [ 1; 3 ] (Vec.to_list v));
    tc "remove by value" `Quick (fun () ->
        let v = Vec.of_list [ 5; 6; 7 ] in
        check Alcotest.bool "hit" true (Vec.remove v 6);
        check Alcotest.bool "miss" false (Vec.remove v 99);
        check (Alcotest.list Alcotest.int) "list" [ 5; 7 ] (Vec.to_list v));
    tc "bounds checked" `Quick (fun () ->
        let v = Vec.of_list [ 1 ] in
        (match Vec.get v 1 with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
        match Vec.insert v 3 0 with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    qtest "vec models list" QCheck2.Gen.(small_list (int_bound 100)) (fun ops ->
        let v = Vec.create () in
        let model = ref [] in
        List.iter
          (fun x ->
            if x mod 7 = 0 && Vec.length v > 0 then begin
              Vec.remove_at v 0;
              model := List.tl !model
            end
            else begin
              Vec.push v x;
              model := !model @ [ x ]
            end)
          ops;
        Vec.to_list v = !model);
  ]

let store_basic =
  [
    tc "load and accessors" `Quick (fun () ->
        let f = fixture () in
        check Alcotest.bool "doc kind" true (Store.kind f.store f.doc = Store.Document);
        check Alcotest.string "a name" "a"
          (Xqb_xml.Qname.to_string (Option.get (Store.name f.store f.a)));
        check Alcotest.int "a children" 3 (List.length (Store.children f.store f.a));
        check Alcotest.string "attr value" "1" (Store.content f.store f.x1);
        check (Alcotest.option Alcotest.int) "parent" (Some f.a)
          (Store.parent f.store f.b1);
        no_errors f.store);
    tc "string_value concatenates descendants" `Quick (fun () ->
        let f = fixture () in
        check Alcotest.string "a" "onetwo" (Store.string_value f.store f.a);
        check Alcotest.string "b2" "two" (Store.string_value f.store f.b2);
        check Alcotest.string "attr" "1" (Store.string_value f.store f.x1));
    tc "serialize" `Quick (fun () ->
        let f = fixture () in
        check Alcotest.string "xml"
          "<a><b x=\"1\">one</b><c></c><b>two<d></d></b></a>"
          (Store.serialize f.store f.doc));
    tc "root and ancestry" `Quick (fun () ->
        let f = fixture () in
        check Alcotest.int "root" f.doc (Store.root f.store f.d1);
        check Alcotest.bool "anc" true (Store.is_ancestor f.store ~ancestor:f.a f.d1);
        check Alcotest.bool "not anc" false
          (Store.is_ancestor f.store ~ancestor:f.b1 f.d1));
  ]

let store_mutation =
  [
    tc "insert last" `Quick (fun () ->
        let f = fixture () in
        let e = Store.make_element f.store (qn "new") in
        Store.insert f.store ~parent:f.a ~position:Store.Last [ e ];
        check Alcotest.int "4 children" 4 (List.length (Store.children f.store f.a));
        check (Alcotest.option Alcotest.int) "parent set" (Some f.a)
          (Store.parent f.store e);
        no_errors f.store);
    tc "insert first and after" `Quick (fun () ->
        let f = fixture () in
        let e1 = Store.make_element f.store (qn "first") in
        let e2 = Store.make_element f.store (qn "mid") in
        Store.insert f.store ~parent:f.a ~position:Store.First [ e1 ];
        Store.insert f.store ~parent:f.a ~position:(Store.After f.c1) [ e2 ];
        let names =
          List.map
            (fun c ->
              match Store.name f.store c with
              | Some q -> Xqb_xml.Qname.to_string q
              | None -> "?")
            (Store.children f.store f.a)
        in
        check (Alcotest.list Alcotest.string) "order"
          [ "first"; "b"; "c"; "mid"; "b" ] names;
        no_errors f.store);
    tc "insert multiple keeps order" `Quick (fun () ->
        let f = fixture () in
        let es = List.map (fun n -> Store.make_element f.store (qn n)) [ "p"; "q"; "r" ] in
        Store.insert f.store ~parent:f.c1 ~position:Store.Last es;
        check Alcotest.int "3 children" 3 (List.length (Store.children f.store f.c1));
        no_errors f.store);
    tc "insert attribute" `Quick (fun () ->
        let f = fixture () in
        let at = Store.make_attribute f.store (qn "y") "2" in
        Store.insert f.store ~parent:f.b1 ~position:Store.Last [ at ];
        check Alcotest.int "2 attrs" 2 (List.length (Store.attributes f.store f.b1));
        no_errors f.store);
    tc "insert node with parent rejected" `Quick (fun () ->
        let f = fixture () in
        match Store.insert f.store ~parent:f.c1 ~position:Store.Last [ f.b1 ] with
        | _ -> Alcotest.fail "expected Update_error"
        | exception Store.Update_error _ -> no_errors f.store);
    tc "cycle rejected" `Quick (fun () ->
        let f = fixture () in
        Store.detach f.store f.b2;
        (* b2 is now a root; inserting its ancestor-to-be under its own
           descendant d1 must fail *)
        match Store.insert f.store ~parent:f.d1 ~position:Store.Last [ f.b2 ] with
        | _ -> Alcotest.fail "expected Update_error"
        | exception Store.Update_error _ -> no_errors f.store);
    tc "duplicate attribute rejected" `Quick (fun () ->
        let f = fixture () in
        let at = Store.make_attribute f.store (qn "x") "dup" in
        match Store.insert f.store ~parent:f.b1 ~position:Store.Last [ at ] with
        | _ -> Alcotest.fail "expected Update_error"
        | exception Store.Update_error _ -> ());
    tc "attribute into non-element rejected" `Quick (fun () ->
        let f = fixture () in
        let at = Store.make_attribute f.store (qn "z") "v" in
        match Store.insert f.store ~parent:f.doc ~position:Store.Last [ at ] with
        | _ -> Alcotest.fail "expected Update_error"
        | exception Store.Update_error _ -> ());
    tc "insert into text rejected" `Quick (fun () ->
        let f = fixture () in
        let e = Store.make_element f.store (qn "e") in
        match Store.insert f.store ~parent:f.t1 ~position:Store.Last [ e ] with
        | _ -> Alcotest.fail "expected Update_error"
        | exception Store.Update_error _ -> ());
    tc "bad anchor rejected" `Quick (fun () ->
        let f = fixture () in
        let e = Store.make_element f.store (qn "e") in
        (* t1 is a child of b1, not of a *)
        match Store.insert f.store ~parent:f.a ~position:(Store.After f.t1) [ e ] with
        | _ -> Alcotest.fail "expected Update_error"
        | exception Store.Update_error _ -> ());
    tc "detach is the paper's delete" `Quick (fun () ->
        let f = fixture () in
        Store.detach f.store f.b1;
        check Alcotest.int "2 children" 2 (List.length (Store.children f.store f.a));
        check (Alcotest.option Alcotest.int) "no parent" None (Store.parent f.store f.b1);
        (* the detached subtree is still fully readable (§3.1) *)
        check Alcotest.string "still queryable" "one" (Store.string_value f.store f.b1);
        check Alcotest.int "detached count" 1 (Store.detached_count f.store);
        no_errors f.store);
    tc "detach attribute" `Quick (fun () ->
        let f = fixture () in
        Store.detach f.store f.x1;
        check Alcotest.int "no attrs" 0 (List.length (Store.attributes f.store f.b1));
        no_errors f.store);
    tc "detach twice is a no-op" `Quick (fun () ->
        let f = fixture () in
        Store.detach f.store f.b1;
        Store.detach f.store f.b1;
        no_errors f.store);
    tc "reinsert detached elsewhere" `Quick (fun () ->
        let f = fixture () in
        Store.detach f.store f.b1;
        Store.insert f.store ~parent:f.b2 ~position:Store.First [ f.b1 ];
        check (Alcotest.option Alcotest.int) "new parent" (Some f.b2)
          (Store.parent f.store f.b1);
        check Alcotest.string "value moved" "onetwo" (Store.string_value f.store f.b2);
        no_errors f.store);
    tc "rename element and attribute" `Quick (fun () ->
        let f = fixture () in
        Store.rename f.store f.c1 (qn "renamed");
        Store.rename f.store f.x1 (qn "attr2");
        check Alcotest.string "elem" "renamed"
          (Xqb_xml.Qname.to_string (Option.get (Store.name f.store f.c1)));
        check Alcotest.string "attr" "attr2"
          (Xqb_xml.Qname.to_string (Option.get (Store.name f.store f.x1)));
        no_errors f.store);
    tc "rename text rejected" `Quick (fun () ->
        let f = fixture () in
        match Store.rename f.store f.t1 (qn "nope") with
        | _ -> Alcotest.fail "expected Update_error"
        | exception Store.Update_error _ -> ());
    tc "set_content on text" `Quick (fun () ->
        let f = fixture () in
        Store.set_content f.store f.t1 "uno";
        check Alcotest.string "value" "uno" (Store.string_value f.store f.b1));
  ]

let store_copy =
  [
    tc "deep copy is isomorphic and fresh" `Quick (fun () ->
        let f = fixture () in
        let c = Store.deep_copy f.store f.a in
        check Alcotest.bool "different id" true (c <> f.a);
        check (Alcotest.option Alcotest.int) "no parent" None (Store.parent f.store c);
        check Alcotest.string "same serialization"
          (Store.serialize f.store f.a)
          (Store.serialize f.store c);
        no_errors f.store);
    tc "copy is disjoint from original" `Quick (fun () ->
        let f = fixture () in
        let c = Store.deep_copy f.store f.a in
        (* mutate the copy; the original must be untouched *)
        let kid = List.hd (Store.children f.store c) in
        Store.detach f.store kid;
        check Alcotest.int "original intact" 3
          (List.length (Store.children f.store f.a));
        no_errors f.store);
  ]

let store_txn =
  [
    tc "rollback on exception" `Quick (fun () ->
        let f = fixture () in
        let before = Store.serialize f.store f.doc in
        (match
           Store.transactionally f.store (fun () ->
               Store.detach f.store f.b1;
               Store.rename f.store f.c1 (qn "zz");
               let e = Store.make_element f.store (qn "new") in
               Store.insert f.store ~parent:f.a ~position:Store.First [ e ];
               Store.set_content f.store f.t2 "changed";
               failwith "boom")
         with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
        check Alcotest.string "restored" before (Store.serialize f.store f.doc);
        no_errors f.store);
    tc "commit keeps changes" `Quick (fun () ->
        let f = fixture () in
        Store.transactionally f.store (fun () -> Store.detach f.store f.b1);
        check Alcotest.int "2 children" 2 (List.length (Store.children f.store f.a)));
    tc "nested transactions" `Quick (fun () ->
        let f = fixture () in
        let before = Store.serialize f.store f.doc in
        (match
           Store.transactionally f.store (fun () ->
               Store.detach f.store f.b1;
               (* inner commits, outer still rolls everything back *)
               Store.transactionally f.store (fun () ->
                   Store.rename f.store f.c1 (qn "inner"));
               failwith "outer boom")
         with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
        check Alcotest.string "all restored" before (Store.serialize f.store f.doc);
        no_errors f.store);
    tc "inner rollback, outer commit" `Quick (fun () ->
        let f = fixture () in
        Store.transactionally f.store (fun () ->
            Store.rename f.store f.c1 (qn "keep");
            match
              Store.transactionally f.store (fun () ->
                  Store.detach f.store f.b1;
                  failwith "inner boom")
            with
            | _ -> Alcotest.fail "expected failure"
            | exception Failure _ -> ());
        check Alcotest.string "rename kept" "keep"
          (Xqb_xml.Qname.to_string (Option.get (Store.name f.store f.c1)));
        check Alcotest.int "detach undone" 3
          (List.length (Store.children f.store f.a));
        no_errors f.store);
  ]

(* Random mutation sequences preserve the store invariants and roll
   back exactly. *)
let mutation_gen =
  QCheck2.Gen.(list_size (int_bound 40) (pair (int_bound 5) (pair small_nat small_nat)))

let random_mutations =
  [
    qtest ~count:100 "random mutations keep invariants" mutation_gen (fun ops ->
        let f = fixture () in
        let nodes () =
          List.init (Store.node_count f.store) (fun i -> i)
          |> List.filter (fun n -> Store.kind f.store n <> Store.Attribute)
        in
        List.iter
          (fun (op, (i, j)) ->
            let ns = nodes () in
            let pick k = List.nth ns (k mod List.length ns) in
            try
              match op with
              | 0 -> Store.detach f.store (pick i)
              | 1 ->
                let e = Store.make_element f.store (qn "r") in
                Store.insert f.store ~parent:(pick i) ~position:Store.Last [ e ]
              | 2 -> Store.rename f.store (pick i) (qn "m")
              | 3 ->
                ignore (Store.deep_copy f.store (pick i))
              | 4 ->
                Store.insert f.store ~parent:(pick i)
                  ~position:Store.First [ Store.make_text f.store "t" ]
              | _ ->
                let a = pick i and b = pick j in
                Store.detach f.store a;
                Store.insert f.store ~parent:b ~position:Store.Last [ a ]
            with Store.Update_error _ -> ())
          ops;
        Store.validate f.store = []);
    qtest ~count:100 "random transaction rolls back exactly" mutation_gen (fun ops ->
        let f = fixture () in
        let before = Store.serialize f.store f.doc in
        let before_count = Store.node_count f.store in
        ignore before_count;
        (match
           Store.transactionally f.store (fun () ->
               List.iter
                 (fun (op, (i, _)) ->
                   let n = i mod Store.node_count f.store in
                   try
                     match op mod 3 with
                     | 0 -> Store.detach f.store n
                     | 1 ->
                       Store.insert f.store ~parent:n ~position:Store.Last
                         [ Store.make_element f.store (qn "x") ]
                     | _ -> Store.rename f.store n (qn "y")
                   with Store.Update_error _ -> ())
                 ops;
               failwith "rollback")
         with
        | _ -> false
        | exception Failure _ -> true)
        && Store.serialize f.store f.doc = before
        && Store.validate f.store = []);
  ]

let suite =
  [
    ("store:vec", vec_tests);
    ("store:basic", store_basic);
    ("store:mutation", store_mutation);
    ("store:copy", store_copy);
    ("store:transaction", store_txn);
    ("store:random", random_mutations);
  ]
