(* S5: dynamic semantics of the XQuery 1.0 fragment (Fig. 3 and the
   standard rules): sequences, FLWOR, paths, predicates, comparisons,
   arithmetic, constructors, casts. *)

open Helpers

let doc_pre xml var eng =
  let d = Core.Engine.load_document eng ~uri:var xml in
  Core.Engine.bind_node eng var d

let site =
  {|<site>
      <people>
        <person id="p1"><name>Anna</name><age>30</age></person>
        <person id="p2"><name>Bob</name><age>20</age></person>
        <person id="p3"><name>Cleo</name><age>25</age></person>
      </people>
      <items><item n="1"/><item n="2"/><item n="3"/><item n="4"/></items>
    </site>|}

let pre = doc_pre site "s"

let basics =
  [
    expect "integer literal" "42" "42";
    expect "decimal literal" "1.5" "1.5";
    expect "double literal" "2e3" "2000";
    expect "string literal" "'hi'" "hi";
    expect "sequence flattens" "(1, (2, 3), ())" "1 2 3";
    expect "arith precedence" "2 + 3 * 4" "14";
    expect "idiv and mod" "(7 idiv 2, 7 mod 2)" "3 1";
    expect "unary minus" "-(2 + 3)" "-5";
    expect "unary minus on empty" "-()" "";
    expect "arith with empty operand is empty" "1 + ()" "";
    expect "range" "1 to 4" "1 2 3 4";
    expect "empty range" "3 to 1" "";
    expect "nested parens" "((((7))))" "7";
  ]

let comparisons =
  [
    expect "general eq existential" "(1, 2) = (2, 3)" "true";
    expect "general ne existential" "(1, 2) != (1, 2)" "true";
    expect "general empty is false" "() = 1" "false";
    expect "value comparison" "2 lt 3" "true";
    expect "value comparison empty" "() eq 1" "";
    expect "string comparison" "'abc' < 'abd'" "true";
    expect "and or with short circuit" "(false() and error(), true() or error())"
      "false true";
    expect "untyped attr compares numerically with number" ~pre
      "exists($s//person[@id = 'p2'])" "true";
    expect_error "value comparison on sequence" "(1,2) eq 1" any_dynamic_error;
    expect "node identity" ~pre
      "let $p := ($s//person)[1] return ($p is $p, $p is ($s//person)[2])"
      "true false";
    expect "node order comparisons" ~pre
      "(($s//person)[1] << ($s//person)[2], ($s//person)[1] >> ($s//person)[2])"
      "true false";
    expect "is on empty is empty" ~pre "(() is ($s//person)[1])" "";
  ]

let paths =
  [
    expect "child steps" ~pre "count($s/site/people/person)" "3";
    expect "descendant shorthand" ~pre "count($s//person)" "3";
    expect "attribute axis" ~pre "string(($s//person)[2]/@id)" "p2";
    expect "wildcard" ~pre "count($s/site/*)" "2";
    expect "text()" ~pre "($s//name/text())[1]/string(.)" "Anna";
    expect "parent axis" ~pre
      "string(($s//name)[1]/parent::person/@id)" "p1";
    expect "ancestor (person, people, site, document)" ~pre
      "count(($s//name)[1]/ancestor::node())" "4";
    expect "following-sibling" ~pre
      "count(($s//item)[1]/following-sibling::item)" "3";
    expect "preceding-sibling predicate counts from nearest" ~pre
      "string(($s//item)[4]/preceding-sibling::item[1]/@n)" "3";
    expect "parenthesized reverse-axis result is in doc order" ~pre
      "string((($s//item)[4]/preceding-sibling::item)[1]/@n)" "1";
    expect "self axis with test" ~pre "count($s//person/self::person)" "3";
    expect "doc order and dedup across overlapping steps" ~pre
      "count(($s//node(), $s//person)/.)" "22";
    expect "predicates are per-step" ~pre "count($s//person[1])" "1";
    expect "numeric predicate" ~pre "string($s//person[2]/name)" "Bob";
    expect "boolean predicate" ~pre "count($s//person[@id = 'p1'])" "1";
    expect "position()" "(10, 20, 30)[position() ge 2]" "20 30";
    expect "last()" "(10, 20, 30)[last()]" "30";
    expect "predicate position in filter" "('a','b','c')[2]" "b";
    expect "chained predicates" ~pre "count($s//person[age > 21][2])" "1";
    expect "general rhs: string()" ~pre "($s//name/string())[1]" "Anna";
    expect_error "mixed path result" "let $x := <a><b/></a> return $x/(1, b)"
      (dynamic_error "XPTY0018");
    expect "root via fn:root" ~pre "count($s//name/root(.))" "1";
    expect "union dedupes and orders" ~pre
      "count(($s//person | $s//person | $s//name))" "6";
    expect "intersect" ~pre "count(($s//person intersect ($s//person)[2]))" "1";
    expect "except" ~pre "count(($s//person except ($s//person)[2]))" "2";
  ]

let flwor =
  [
    expect "for over sequence" "for $x in (1,2,3) return $x * 2" "2 4 6";
    expect "for flattens" "for $x in (1,2) return ($x, $x)" "1 1 2 2";
    expect "let binds once" "let $x := (1,2) return count($x)" "2";
    expect "where filters" "for $x in 1 to 6 where $x mod 2 = 0 return $x" "2 4 6";
    expect "at position" "for $x at $i in ('a','b') return $i" "1 2";
    expect "nested for" "for $x in (1,2) for $y in (10,20) return $x + $y"
      "11 21 12 22";
    expect "order by ascending" "for $x in (3,1,2) order by $x return $x" "1 2 3";
    expect "order by descending" "for $x in (3,1,2) order by $x descending return $x"
      "3 2 1";
    expect "order by string key" ~pre
      "for $p in $s//person order by string($p/name) descending return string($p/@id)"
      "p3 p2 p1";
    expect "order by two keys"
      "for $x in (2,1) for $y in (1,2) order by $x, $y descending return concat($x,'-',$y)"
      "1-2 1-1 2-2 2-1";
    expect "order by is stable"
      "for $x in ('b1','a1','b2','a2') order by substring($x,1,1) return $x"
      "a1 a2 b1 b2";
    expect "order by with empty key sorts first"
      "for $p in (<a><k>2</k></a>, <a/>, <a><k>1</k></a>) order by $p/k return concat('[', string($p), ']')"
      "[] [1] [2]";
    expect "where before order by" ~pre
      "for $p in $s//person where $p/age > 21 order by string($p/name) return string($p/@id)"
      "p1 p3";
    expect "some satisfies" "some $x in (1,2,3) satisfies $x > 2" "true";
    expect "every satisfies" "every $x in (1,2,3) satisfies $x > 0" "true";
    expect "some over empty is false" "some $x in () satisfies true()" "false";
    expect "every over empty is true" "every $x in () satisfies false()" "true";
    expect "if then else" "if (1 < 2) then 'y' else 'n'" "y";
    expect "if on node sequence ebv" ~pre "if ($s//person) then 'has' else 'none'"
      "has";
    expect "variable shadowing" "let $x := 1 return (for $x in (9) return $x, $x)"
      "9 1";
  ]

let constructors =
  [
    expect "direct element" "<a>hi</a>" "<a>hi</a>";
    expect "nested content with exprs" "<a>{1 + 1}<b/>{'t'}</a>" "<a>2<b></b>t</a>";
    expect "adjacent atomics space-joined" "<a>{1, 2, 3}</a>" "<a>1 2 3</a>";
    expect "attribute avt" "let $v := 7 return <a x=\"v={$v}!\"/>" "<a x=\"v=7!\"></a>";
    expect "computed element dynamic name" "element {concat('a','b')} {1}" "<ab>1</ab>";
    expect "computed attribute" "<e>{attribute who {'me'}}</e>" "<e who=\"me\"></e>";
    expect "text constructor" "<e>{text {'t1'}}</e>" "<e>t1</e>";
    expect "text of empty is empty" "count(text {()})" "0";
    expect "document constructor" "count(document { <a/> }/a)" "1";
    expect "construction copies content" ~pre
      "let $e := <wrap>{($s//person)[1]}</wrap> return (count($s//person), count($e/person))"
      "3 1";
    expect "construction copy is deep" ~pre
      "string(<w>{($s//person)[1]}</w>/person/name)" "Anna";
    expect_error "attribute after content" "<a>{'t', attribute x {1}}</a>"
      (dynamic_error "XQTY0024");
    expect "constructed nodes have doc order"
      "let $e := <a><b/><c/></a> return ($e/b << $e/c)" "true";
    expect "escaped text serializes" "<a>{'x &lt; y &amp; z'}</a>" "<a>x &lt; y &amp; z</a>";
    expect "comment content in constructor" "<a><!--note--></a>" "<a><!--note--></a>";
  ]

let casts =
  [
    expect "instance of" "(1 instance of xs:integer, 'x' instance of xs:integer)"
      "true false";
    expect "occurrence indicators"
      "((1,2) instance of xs:integer+, () instance of xs:integer?, (1,2) instance of xs:integer)"
      "true true false";
    expect "node kind instance" "(<a/> instance of element(), <a/> instance of element(a), <a/> instance of element(b))"
      "true true false";
    expect "cast as" "('3' cast as xs:integer) + 1" "4";
    expect "castable as" "('3' castable as xs:integer, 'x' castable as xs:integer)"
      "true false";
    expect_error "failed cast" "'x' cast as xs:integer" any_dynamic_error;
    expect "untyped content casts" ~pre "(($s//age)[1] cast as xs:integer) + 1" "31";
  ]

let functions_calls =
  [
    expect "user function" "declare function f($x) { $x * 2 }; f(21)" "42";
    expect "recursion"
      "declare function fact($n as xs:integer) as xs:integer { if ($n le 1) then 1 else $n * fact($n - 1) }; fact(6)"
      "720";
    expect "mutual recursion"
      {|declare function is_even($n) { if ($n = 0) then true() else is_odd($n - 1) };
        declare function is_odd($n) { if ($n = 0) then false() else is_even($n - 1) };
        (is_even(10), is_odd(10))|}
      "true false";
    expect "globals visible in functions"
      "declare variable $g := 5; declare function f() { $g + 1 }; f()" "6";
    expect "parameter type check passes"
      "declare function f($x as xs:integer) { $x }; f(3)" "3";
    expect_error "parameter type check fails"
      "declare function f($x as xs:integer) { $x }; f('a')" any_dynamic_error;
    expect_error "return type check fails"
      "declare function f($x) as xs:integer { 'nope' }; f(1)" any_dynamic_error;
    expect "numeric predicate through a function"
      "declare function f() { 1 }; (1,2)[f()]" "1";
  ]

let suite =
  [
    ("eval:basics", basics);
    ("eval:comparisons", comparisons);
    ("eval:paths", paths);
    ("eval:flwor", flwor);
    ("eval:constructors", constructors);
    ("eval:casts", casts);
    ("eval:functions", functions_calls);
  ]

(* -- computed comment / processing-instruction constructors ---------- *)

let comment_pi_ctors =
  [
    expect "computed comment" "<a>{comment {'note'}}</a>" "<a><!--note--></a>";
    expect "computed pi with static target" "<a>{processing-instruction t {'d'}}</a>"
      "<a><?t d?></a>";
    expect "computed pi with dynamic target"
      "<a>{processing-instruction {concat('t', 1)} {'d'}}</a>" "<a><?t1 d?></a>";
    expect "comment node kind" "comment {'c'} instance of comment()" "true";
    expect "pi node kind"
      "processing-instruction x {'c'} instance of processing-instruction()" "true";
    expect "comment constructor still a path step name"
      "let $x := <r><comment/></r> return count($x/comment)" "1";
  ]

let suite = suite @ [ ("eval:comment-pi", comment_pi_ctors) ]
