(* E3: the full §2 Web-service use case as an integration test —
   updates inside functions, snap-per-entry logging, archiving every
   $maxlog entries, nextid() ids monotonically increasing. *)

open Helpers

let service =
  {|
declare variable $log := <log/>;
declare variable $archive := <archive/>;
declare variable $maxlog := 3;
declare variable $d := element counter { 0 };

declare function nextid() as xs:integer {
  snap { replace { $d/text() } with { $d + 1 }, xs:integer($d) }
};

declare function archivelog($log, $archive) {
  snap insert { <batch size="{count($log/logentry)}"/> } into { $archive }
};

declare function get_item($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return (
    let $name := $auction//person[@id = $userid]/name
    return
      (snap insert { <logentry id="{nextid()}" user="{$name}" itemid="{$itemid}"/> }
        into { $log },
      if (count($log/logentry) >= $maxlog)
      then (archivelog($log, $archive),
            snap delete { $log/logentry })
      else ()),
    $item
  )
};
|}

let make_service () =
  let eng = Core.Engine.create () in
  let cfg = { Xqb_xmark.Generator.default with Xqb_xmark.Generator.persons = 12;
              items = 6; closed_auctions = 10; open_auctions = 5 } in
  let doc = Xqb_xmark.Generator.generate (Core.Engine.store eng) cfg in
  Core.Engine.bind_node eng "auction" doc;
  let m = Core.Engine.compile eng service in
  Core.Engine.eval_globals eng m;
  eng

let q eng src = Core.Engine.serialize eng (Core.Engine.run eng src)

let call eng i u = q eng (Printf.sprintf "count(get_item('item%d','person%d'))" i u)

let usecase =
  [
    tc "get_item returns the item and logs" `Quick (fun () ->
        let eng = make_service () in
        check Alcotest.string "one item" "1" (call eng 0 1);
        check Alcotest.string "one log entry" "1" (q eng "count($log/logentry)");
        check Alcotest.string "entry fields" "item0"
          (q eng "string($log/logentry/@itemid)"));
    tc "log archives every maxlog entries" `Quick (fun () ->
        let eng = make_service () in
        for i = 0 to 6 do
          ignore (call eng (i mod 6) (i mod 12))
        done;
        (* 7 calls, maxlog=3: archive after calls 3 and 6, leaving 1 *)
        check Alcotest.string "batches" "2" (q eng "count($archive/batch)");
        check Alcotest.string "batch sizes" "3 3"
          (q eng "for $b in $archive/batch return xs:integer($b/@size)");
        check Alcotest.string "residue" "1" (q eng "count($log/logentry)"));
    tc "nextid ids increase across calls" `Quick (fun () ->
        let eng = make_service () in
        for i = 0 to 4 do
          ignore (call eng (i mod 6) i)
        done;
        check Alcotest.string "counter" "5" (q eng "string($d)");
        (* the remaining log entries carry the most recent ids *)
        check Alcotest.string "ids" "3 4"
          (q eng "for $e in $log/logentry return xs:integer($e/@id)"));
    tc "unknown user logs empty name but still returns the item" `Quick
      (fun () ->
        let eng = make_service () in
        check Alcotest.string "item" "1" (call eng 2 9999);
        check Alcotest.string "empty user" ""
          (q eng "string($log/logentry[1]/@user)"));
    tc "unknown item returns empty but logs the access" `Quick (fun () ->
        let eng = make_service () in
        check Alcotest.string "no item" "0" (call eng 9999 1);
        check Alcotest.string "logged anyway" "1" (q eng "count($log/logentry)"));
    tc "logging is oblivious to the caller (snapshot isolation)" `Quick
      (fun () ->
        let eng = make_service () in
        (* the log insert inside get_item is snapped, so it is visible
           to code running after the call in the same query *)
        check Alcotest.string "visible" "1"
          (q eng "(get_item('item1','person1'), count($log/logentry))[last()]"));
  ]

let suite = [ ("usecase:web-service", usecase) ]
