(* The element-name index and the descendant-step rewrites that feed
   it: correctness vs the naive axis walk, invalidation on mutation,
   and the positional-predicate guard. *)

open Helpers
module Store = Xqb_store.Store
module Axes = Xqb_store.Axes
module R = Core.Rewrite

let naive_descendants store root q =
  List.filter
    (fun n ->
      Store.kind store n = Store.Element
      && match Store.name store n with Some nm -> Xqb_xml.Qname.equal nm q | None -> false)
    (Axes.descendants store root)

let store_tests =
  [
    tc "index agrees with the naive walk" `Quick (fun () ->
        let store = Store.create () in
        let doc =
          Store.load_string store
            "<r><a/><b><a/><c><a/><b/></c></b><a><a/></a></r>"
        in
        List.iter
          (fun name ->
            let q = qn name in
            check (Alcotest.list Alcotest.int) name
              (naive_descendants store doc q)
              (Store.descendants_by_name store doc q))
          [ "a"; "b"; "c"; "zzz" ]);
    tc "index invalidates on mutation" `Quick (fun () ->
        let store = Store.create () in
        let doc = Store.load_string store "<r><a/></r>" in
        check Alcotest.int "one a" 1
          (List.length (Store.descendants_by_name store doc (qn "a")));
        let r = List.hd (Store.children store doc) in
        Store.insert store ~parent:r ~position:Store.Last
          [ Store.make_element store (qn "a") ];
        check Alcotest.int "two a after insert" 2
          (List.length (Store.descendants_by_name store doc (qn "a")));
        Store.detach store (List.hd (Store.children store r));
        check Alcotest.int "one a after detach" 1
          (List.length (Store.descendants_by_name store doc (qn "a"))));
    tc "rename invalidates" `Quick (fun () ->
        let store = Store.create () in
        let doc = Store.load_string store "<r><a/></r>" in
        ignore (Store.descendants_by_name store doc (qn "a"));
        let a = List.hd (Store.children store (List.hd (Store.children store doc))) in
        Store.rename store a (qn "z");
        check Alcotest.int "a gone" 0
          (List.length (Store.descendants_by_name store doc (qn "a")));
        check Alcotest.int "z there" 1
          (List.length (Store.descendants_by_name store doc (qn "z"))));
    tc "attached context nodes bypass the cache" `Quick (fun () ->
        let store = Store.create () in
        let doc = Store.load_string store "<r><s><a/></s><a/></r>" in
        let r = List.hd (Store.children store doc) in
        let s = List.hd (Store.children store r) in
        check Alcotest.int "subtree only" 1
          (List.length (Store.descendants_by_name store s (qn "a")));
        check Alcotest.int "whole doc" 2
          (List.length (Store.descendants_by_name store doc (qn "a"))));
    tc "disabling the index gives identical results" `Quick (fun () ->
        let q = "string-join(for $n in $d//a return name($n/..), ',')" in
        let run indexing =
          let eng = Core.Engine.create () in
          Store.set_indexing (Core.Engine.store eng) indexing;
          let d =
            Core.Engine.load_document eng ~uri:"d"
              "<r><a/><b><a/></b><c><a/></c></r>"
          in
          Core.Engine.bind_node eng "d" d;
          Core.Engine.serialize eng (Core.Engine.run eng q)
        in
        check Alcotest.string "same" (run false) (run true));
  ]

let normalize_body src =
  let prog =
    Core.Normalize.normalize_prog ~is_builtin:Core.Functions.is_builtin
      (Xqb_syntax.Parser.parse_prog src)
  in
  (prog, Option.get prog.Core.Normalize.body)

let simplify src =
  let prog, body = normalize_body src in
  let purity e = Core.Static.purity_in_prog prog e in
  R.simplify ~purity body

let fired rule stats = List.mem_assoc rule stats

let rewrite_tests =
  [
    tc "plain //name rewrites to descendant" `Quick (fun () ->
        let _, s = simplify "declare variable $x := 1; $x//a" in
        check Alcotest.bool "fired" true (fired "descendant-step" s));
    tc "//T[boolean predicate] rewrites" `Quick (fun () ->
        let _, s = simplify "declare variable $x := 1; $x//a[@k = 'v']" in
        check Alcotest.bool "fired" true (fired "descendant-step-pred" s));
    tc "numeric predicate blocks the rewrite" `Quick (fun () ->
        let _, s = simplify "declare variable $x := 1; $x//a[1]" in
        check Alcotest.bool "not fired" false (fired "descendant-step-pred" s));
    tc "position() blocks the rewrite" `Quick (fun () ->
        let _, s = simplify "declare variable $x := 1; $x//a[position() = last()]" in
        check Alcotest.bool "not fired" false (fired "descendant-step-pred" s));
    tc "user function in predicate blocks the rewrite" `Quick (fun () ->
        let _, s =
          simplify
            "declare variable $x := 1; declare function f() { 1 }; $x//a[f()]"
        in
        check Alcotest.bool "not fired" false (fired "descendant-step-pred" s));
    (* positional semantics preserved where the guard blocks *)
    expect "//a[1] selects per parent"
      "let $x := <r><p><a i='1'/><a i='2'/></p><p><a i='3'/></p></r> return string-join($x//a[1]/@i, ',')"
      "1,3";
    expect "//a[boolean] equals the flattened form"
      "let $x := <r><a k='v'/><b><a/></b><c><a k='v'/></c></r> return count($x//a[@k = 'v'])"
      "2";
  ]

let suite = [ ("index:store", store_tests); ("index:rewrites", rewrite_tests) ]

(* -- attribute-value key index ------------------------------------- *)

let key_simplify = simplify

let key_tests =
  [
    tc "//e[@a = pure-string] rewrites to a key step" `Quick (fun () ->
        let _, s = key_simplify "declare variable $x := 1; $x//person[@id = 'p7']" in
        check Alcotest.bool "fired" true (fired "key-step" s));
    tc "key on either side of =" `Quick (fun () ->
        let _, s = key_simplify "declare variable $x := 1; $x//person['p7' = @id]" in
        check Alcotest.bool "fired" true (fired "key-step" s));
    tc "variable keys are allowed (pure, focus-free)" `Quick (fun () ->
        let _, s =
          key_simplify
            "declare variable $x := 1; declare variable $u := 'p7'; $x//person[@id = $u]"
        in
        check Alcotest.bool "fired" true (fired "key-step" s));
    tc "updating keys are blocked" `Quick (fun () ->
        let _, s =
          key_simplify
            "declare variable $x := <x/>; $x//person[@id = (insert {<l/>} into {$x}, 'p')]"
        in
        check Alcotest.bool "not fired" false (fired "key-step" s));
    tc "focus-dependent keys are blocked" `Quick (fun () ->
        let _, s = key_simplify "declare variable $x := 1; $x//person[@id = string(.)]" in
        check Alcotest.bool "not fired" false (fired "key-step" s));
    expect "key lookup result matches scan"
      ~pre:(fun eng ->
        let d =
          Core.Engine.load_document eng ~uri:"d"
            "<r><p id='a'/><q><p id='b'/><p id='a'/></q><p/></r>"
        in
        Core.Engine.bind_node eng "d" d)
      "(count($d//p[@id = 'a']), count($d//p[@id = 'zzz']), count($d//p[@id = ('a','b')]))"
      "2 0 3";
    expect "non-string keys fall back to general comparison"
      ~pre:(fun eng ->
        let d =
          Core.Engine.load_document eng ~uri:"d"
            "<r><p n='07'/><p n='7'/><p n='8'/></r>"
        in
        Core.Engine.bind_node eng "d" d)
      (* numeric 7 compares numerically with untyped: both 07 and 7 match *)
      "count($d//p[@n = 7])"
      "2";
    expect "string keys compare stringly (index path)"
      ~pre:(fun eng ->
        let d =
          Core.Engine.load_document eng ~uri:"d"
            "<r><p n='07'/><p n='7'/></r>"
        in
        Core.Engine.bind_node eng "d" d)
      "count($d//p[@n = '7'])"
      "1";
    expect "rhs not evaluated when no candidates exist"
      "let $x := <r/> return (count($x//nothing[@k = error('E','boom')]), 'survived')"
      "0 survived";
    tc "store-level key lookup and invalidation" `Quick (fun () ->
        let store = Store.create () in
        let doc = Store.load_string store "<r><p id='a'/><p id='b'/></r>" in
        check Alcotest.int "a" 1
          (List.length (Store.lookup_by_key store doc ~elem:(qn "p") ~attr:(qn "id") "a"));
        let r = List.hd (Store.children store doc) in
        let p = Store.make_element store (qn "p") in
        Store.insert store ~parent:p ~position:Store.Last
          [ Store.make_attribute store (qn "id") "a" ];
        Store.insert store ~parent:r ~position:Store.Last [ p ];
        check Alcotest.int "a after insert" 2
          (List.length (Store.lookup_by_key store doc ~elem:(qn "p") ~attr:(qn "id") "a")));
  ]

let suite = suite @ [ ("index:key", key_tests) ]
