(* The §4.2 syntactic-rewriting phase: each rule fires where legal and
   is blocked by the side-effect judgement where it would change
   semantics. Plus an end-to-end property: simplification preserves
   results on the whole conformance corpus. *)

open Helpers
module C = Core.Core_ast
module R = Core.Rewrite

let normalize src =
  let prog =
    Core.Normalize.normalize_prog ~is_builtin:Core.Functions.is_builtin
      (Xqb_syntax.Parser.parse_prog src)
  in
  (prog, Option.get prog.Core.Normalize.body)

let simplify src =
  let prog, body = normalize src in
  let purity e = Core.Static.purity_in_prog prog e in
  R.simplify ~purity body

let fired rule stats = List.mem_assoc rule stats

let rules =
  [
    tc "if-const folds both ways" `Quick (fun () ->
        let e, s = simplify "if (true()) then 1 else 2" in
        check Alcotest.bool "fired" true (fired "if-const" s);
        check Alcotest.bool "kept then" true (e = C.Scalar (Xqb_xdm.Atomic.Integer 1));
        let e2, _ = simplify "if (0) then 1 else 2" in
        check Alcotest.bool "kept else" true
          (e2 = C.Scalar (Xqb_xdm.Atomic.Integer 2)));
    tc "dead-let drops unused pure binding" `Quick (fun () ->
        let e, s = simplify "let $unused := (1, 2, 3) return 7" in
        check Alcotest.bool "fired" true (fired "dead-let" s);
        check Alcotest.bool "just the body" true
          (e = C.Scalar (Xqb_xdm.Atomic.Integer 7)));
    tc "dead-let keeps an updating binding" `Quick (fun () ->
        let _, s =
          simplify
            "declare variable $x := <x/>; let $u := insert {<a/>} into {$x} return 7"
        in
        check Alcotest.bool "not fired" false (fired "dead-let" s));
    tc "inline-let propagates variables and literals" `Quick (fun () ->
        let e, s = simplify "declare variable $g := 1; let $v := $g return $v + 0" in
        check Alcotest.bool "fired" true (fired "inline-let" s);
        ignore e);
    tc "inline-let does not move constructors (node identity)" `Quick (fun () ->
        let _, s = simplify "let $v := <a/> return count($v)" in
        check Alcotest.bool "not fired" false (fired "inline-let" s));
    tc "const-fold arithmetic and comparisons" `Quick (fun () ->
        let e, s = simplify "1 + 2 * 3" in
        check Alcotest.bool "fired" true (fired "const-fold" s);
        check Alcotest.bool "value" true (e = C.Scalar (Xqb_xdm.Atomic.Integer 7));
        let e2, _ = simplify "2 < 3" in
        check Alcotest.bool "cmp folded" true
          (e2 = C.Scalar (Xqb_xdm.Atomic.Boolean true)));
    tc "const-fold leaves runtime errors alone" `Quick (fun () ->
        let _, s = simplify "1 div 0" in
        check Alcotest.bool "not fired" false (fired "const-fold" s);
        (* and the error still happens at run time *)
        match run "1 div 0" with
        | _ -> Alcotest.fail "expected division error"
        | exception Xqb_xdm.Errors.Dynamic_error ("FOAR0001", _) -> ());
    tc "seq-empty collapses" `Quick (fun () ->
        let e, s = simplify "((), 5, ())" in
        check Alcotest.bool "fired" true (fired "seq-empty" s);
        check Alcotest.bool "single" true (e = C.Scalar (Xqb_xdm.Atomic.Integer 5)));
    tc "for-empty eliminates the loop" `Quick (fun () ->
        let e, s = simplify "for $x in () return error()" in
        check Alcotest.bool "fired" true (fired "for-empty" s);
        check Alcotest.bool "empty" true (e = C.Empty));
    tc "for-singleton becomes let" `Quick (fun () ->
        let _, s = simplify "for $x in 5 return $x + $x" in
        check Alcotest.bool "fired" true (fired "for-singleton" s));
    tc "pred-true strips, numeric predicates survive" `Quick (fun () ->
        let _, s = simplify "(1,2,3)[true()]" in
        check Alcotest.bool "fired" true (fired "pred-true" s);
        let _, s2 = simplify "(1,2,3)[1]" in
        check Alcotest.bool "positional untouched" false (fired "pred-true" s2);
        (* and it still selects by position *)
        check Alcotest.string "semantics" "1" (run "(1,2,3)[1]"));
    tc "pred-false guard requires a pure input" `Quick (fun () ->
        let _, s =
          simplify
            "declare variable $x := <x/>; ((insert {<a/>} into {$x}, 1))[false()]"
        in
        check Alcotest.bool "not fired on updating input" false (fired "pred-false" s));
    tc "no capture through shadowing binders" `Quick (fun () ->
        (* $v := $g, but the body rebinds $g: inlining $v would
           capture. (inline-let may still fire on inner lets the
           for-singleton rule creates — that one is capture-free.) *)
        check Alcotest.string "semantics intact" "1 9"
          (run
             "declare variable $g := 1; let $v := $g return for $g in (9) return ($v, $g)");
        (* direct unit check on the guard *)
        let prog, body =
          normalize
            "declare variable $g := 1; let $v := $g return for $g in (<e/>, <f/>) return ($v, count($g))"
        in
        let purity e = Core.Static.purity_in_prog prog e in
        let _, s = R.simplify ~purity body in
        check Alcotest.bool "outer inline blocked" false (fired "inline-let" s));
  ]

(* End-to-end: for every conformance query, running with the
   simplifier on equals running with it off. *)
let corpus_equivalence =
  List.map
    (fun (group, cases) ->
      tc (group ^ " unchanged by simplification") `Quick (fun () ->
          List.iter
            (fun (name, q, _) ->
              let with_simp =
                let eng = Core.Engine.create () in
                let c = Core.Engine.compile ~simplify:true eng q in
                Core.Engine.serialize eng (Core.Engine.run_compiled eng c)
              in
              let without =
                let eng = Core.Engine.create () in
                let c = Core.Engine.compile ~simplify:false eng q in
                Core.Engine.serialize eng (Core.Engine.run_compiled eng c)
              in
              check Alcotest.string name without with_simp)
            cases))
    Test_conformance.all_cases

let suite =
  [ ("rewrite:rules", rules); ("rewrite:corpus-equivalence", corpus_equivalence) ]
