(* S5: the update operations of Fig. 2 — one or more tests per
   semantic rule, including the copy-insertion behaviour of §3.3 and
   the "updates return ()" property of §2.2. *)

open Helpers

let updates_return_empty =
  [
    expect "insert returns ()" "let $x := <x/> return count((insert {<a/>} into {$x}))"
      "0";
    expect "delete returns ()" "let $x := <x><a/></x> return count((delete {$x/a}))" "0";
    expect "rename returns ()" "let $x := <x/> return count((rename {$x} to {'y'}))" "0";
    expect "replace returns ()"
      "let $x := <x><a/></x> return count((replace {$x/a} with {<b/>}))" "0";
    expect "composition via comma (the get_item pattern)"
      "let $x := <x/> return (insert {<l/>} into {$x}, 'value')" "value";
  ]

let insert_locations =
  [
    expect "into appends (as last)"
      "let $x := <x><a/></x> return (snap insert {<z/>} into {$x}, $x)"
      "<x><a></a><z></z></x>";
    expect "as first into"
      "let $x := <x><a/></x> return (snap insert {<z/>} as first into {$x}, $x)"
      "<x><z></z><a></a></x>";
    expect "as last into"
      "let $x := <x><a/></x> return (snap insert {<z/>} as last into {$x}, $x)"
      "<x><a></a><z></z></x>";
    expect "before"
      "let $x := <x><a/><b/></x> return (snap insert {<z/>} before {$x/b}, $x)"
      "<x><a></a><z></z><b></b></x>";
    expect "before first child"
      "let $x := <x><a/></x> return (snap insert {<z/>} before {$x/a}, $x)"
      "<x><z></z><a></a></x>";
    expect "after"
      "let $x := <x><a/><b/></x> return (snap insert {<z/>} after {$x/a}, $x)"
      "<x><a></a><z></z><b></b></x>";
    expect "insert a sequence keeps its order"
      "let $x := <x/> return (snap insert {(<a/>, <b/>, <c/>)} into {$x}, $x)"
      "<x><a></a><b></b><c></c></x>";
    expect "insert atomic payload becomes text"
      "let $x := <x/> return (snap insert {1 + 1} into {$x}, $x)" "<x>2</x>";
    expect "insert attribute node"
      "let $x := <x/> return (snap insert {attribute k {'v'}} into {$x}, $x)"
      "<x k=\"v\"></x>";
    expect_error "insert before parentless node"
      "let $x := <x/> return snap insert {<z/>} before {$x}"
      (dynamic_error "XUDY0029");
    expect_error "insert into text node"
      "let $x := <x>t</x> return snap insert {<z/>} into {$x/text()}"
      (fun e -> match e with Xqb_store.Store.Update_error _ -> true | _ -> false);
  ]

let copy_semantics =
  [
    (* §3.3: "this copy prevents the inserted tree from having two
       parents" — inserting an attached node must copy it. *)
    expect "insert copies its payload"
      {|let $x := <x><keep/></x>
        let $y := <y/>
        return (snap insert {$x/keep} into {$y},
                count($x/keep), count($y/keep))|}
      "1 1";
    expect "replace copies its payload"
      {|let $x := <x><a/></x>
        let $y := <y><b/></y>
        return (snap replace {$y/b} with {$x/a}, count($x/a), count($y/a))|}
      "1 1";
    expect "explicit copy is deep and fresh"
      {|let $x := <x><a><b/></a></x>
        let $c := copy {$x/a}
        return (count($c/b), $c is $x/a)|}
      "1 false";
    expect "copy of atomics is identity" "copy {(1, 'a')}" "1 a";
    expect "mutating the copy leaves the original"
      {|let $x := <x><a/></x>
        let $c := copy {$x}
        return (snap delete {$c/a}, count($x/a), count($c/a))|}
      "1 0";
  ]

let delete_semantics =
  [
    expect "delete detaches"
      "let $x := <x><a/><b/></x> return (snap delete {$x/a}, $x)" "<x><b></b></x>";
    expect "detached nodes remain queryable (§3.1)"
      {|let $x := <x><a><c/></a></x>
        let $a := $x/a
        return (snap delete {$x/a}, count($x/a), count($a/c))|}
      "0 1";
    (* insert always copies its payload (§3.3), so moving a detached
       node actually inserts a fresh copy of it *)
    expect "re-inserting a detached node still copies"
      {|let $x := <x><a/></x>
        let $y := <y/>
        let $a := $x/a
        return (snap delete {$a},
                snap insert {$a} into {$y},
                count($y/a), $y/a is $a)|}
      "1 false";
    expect "delete a whole sequence"
      "let $x := <x><a/><a/><a/></x> return (snap delete {$x/a}, count($x/a))" "0";
    expect "delete of empty sequence is fine"
      "let $x := <x/> return (snap delete {$x/nothing}, 'ok')" "ok";
    expect "delete attribute"
      "let $x := <x k=\"v\"/> return (snap delete {$x/@k}, count($x/@k))" "0";
  ]

let rename_replace =
  [
    expect "rename element"
      "let $x := <x><a/></x> return (snap rename {$x/a} to {'z'}, $x)"
      "<x><z></z></x>";
    expect "rename with computed name"
      "let $x := <x><a/></x> return (snap rename {$x/a} to {concat('n', 1)}, $x)"
      "<x><n1></n1></x>";
    expect "rename attribute"
      "let $x := <x k=\"v\"/> return (snap rename {$x/@k} to {'j'}, string($x/@j))"
      "v";
    expect_error "rename to invalid name"
      "let $x := <x><a/></x> return snap rename {$x/a} to {'not a name'}"
      any_dynamic_error;
    expect "replace produces insert+delete at the same spot (Fig. 2)"
      "let $x := <x><a/><b/><c/></x> return (snap replace {$x/b} with {<z/>}, $x)"
      "<x><a></a><z></z><c></c></x>";
    expect "replace with sequence"
      "let $x := <x><a/></x> return (snap replace {$x/a} with {(<p/>, <q/>)}, $x)"
      "<x><p></p><q></q></x>";
    expect "replace with atomic (counter pattern, §2.5)"
      "let $d := <c>0</c> return (snap replace {$d/text()} with {$d + 1}, string($d))"
      "1";
    expect_error "replace parentless node"
      "let $x := <x/> return snap replace {$x} with {<y/>}"
      (dynamic_error "XUDY0009");
    expect_error "rename needs a node" "snap rename {1} to {'x'}" any_dynamic_error;
  ]

(* Fig. 2/3 ordering: Delta3 = (Delta1, Delta2, op...) — sub-expression
   updates come first, and sequence order is preserved. *)
let delta_ordering =
  [
    expect "sequence concatenates deltas in order"
      {|let $x := <x/>
        return (snap ordered { insert {<a/>} into {$x}, insert {<b/>} into {$x} }, $x)|}
      "<x><a></a><b></b></x>";
    expect "for loop emits deltas in iteration order"
      {|let $x := <x/>
        return (snap ordered { for $i in (1,2,3) return insert {element n {$i}} into {$x} }, $x)|}
      "<x><n>1</n><n>2</n><n>3</n></x>";
    expect "function call: argument deltas precede body deltas"
      {|declare variable $x := <x/>;
        declare function f($arg) { insert {<body/>} into {$x} };
        (snap ordered { f(insert {<arg/>} into {$x}) }, $x)|}
      "<x><arg></arg><body></body></x>";
    expect "nested update operands: inner expressions first"
      {|let $x := <x/>
        return (snap ordered {
                  insert { (insert {<inner/>} into {$x}, <outer/>) } into {$x}
                }, $x)|}
      "<x><inner></inner><outer></outer></x>";
    expect "where clause updates are collected"
      {|let $x := <x/>
        return (snap ordered {
                  for $i in (1,2)
                  where (insert {element w {$i}} into {$x}, true())
                  return insert {element r {$i}} into {$x}
                }, $x)|}
      "<x><w>1</w><r>1</r><w>2</w><r>2</r></x>";
  ]

let snapshot_isolation =
  [
    (* Inside a snap, updates are pending: queries see the old store. *)
    expect "pending updates are invisible inside their snap"
      {|let $x := <x/>
        return snap { insert {<a/>} into {$x}, count($x/a) }|}
      "0";
    expect "visible after the snap closes"
      {|let $x := <x/>
        return (snap { insert {<a/>} into {$x} }, count($x/a))|}
      "1";
    expect "top-level implicit snap delays to query end"
      {|let $x := <x/>
        return (insert {<a/>} into {$x}, count($x/a))|}
      "0";
  ]

let suite =
  [
    ("updates:return-empty", updates_return_empty);
    ("updates:insert-locations", insert_locations);
    ("updates:copy", copy_semantics);
    ("updates:delete", delete_semantics);
    ("updates:rename-replace", rename_replace);
    ("updates:delta-order", delta_ordering);
    ("updates:snapshot", snapshot_isolation);
  ]
