(* S5: the builtin function library (F&O subset). *)

open Helpers

let pre eng =
  let d =
    Core.Engine.load_document eng ~uri:"d"
      "<r><a>1</a><a>2</a><b>x</b><c/></r>"
  in
  Core.Engine.bind_node eng "d" d

let sequences =
  [
    expect "count/empty/exists" "(count((1,2,3)), empty(()), exists(()))" "3 true false";
    expect "not and boolean" "(not(0), boolean('x'))" "true true";
    expect "true false" "(true(), false())" "true false";
    expect "distinct-values" "distinct-values((1, 2, 1, 1.0, 'a', 'a'))" "1 2 a";
    expect "distinct-values numeric tower" "count(distinct-values((1, 1.0, 2e0)))" "2";
    expect "reverse" "reverse((1,2,3))" "3 2 1";
    expect "subsequence/2" "subsequence((1,2,3,4), 3)" "3 4";
    expect "subsequence/3" "subsequence((1,2,3,4), 2, 2)" "2 3";
    expect "insert-before" "insert-before((1,2,3), 2, (9,9))" "1 9 9 2 3";
    expect "insert-before at end" "insert-before((1,2), 9, 0)" "1 2 0";
    expect "remove" "remove((1,2,3), 2)" "1 3";
    expect "index-of" "index-of((5,6,5), 5)" "1 3";
    expect "exactly-one ok" "exactly-one((42))" "42";
    expect_error "exactly-one fails" "exactly-one((1,2))" any_dynamic_error;
    expect "zero-or-one" "zero-or-one(())" "";
    expect_error "one-or-more fails" "one-or-more(())" any_dynamic_error;
  ]

let strings =
  [
    expect "concat" "concat('a', 1, 'b')" "a1b";
    expect "string-join" "string-join(('a','b','c'), '-')" "a-b-c";
    expect "string-length" "string-length('hello')" "5";
    expect "contains" "(contains('abc','b'), contains('abc','z'), contains('abc',''))"
      "true false true";
    expect "starts/ends-with" "(starts-with('abc','ab'), ends-with('abc','bc'))"
      "true true";
    expect "substring" "(substring('12345', 2), substring('12345', 2, 2))" "2345 23";
    expect "substring clamps" "(substring('abc', 0), substring('abc', 9))" "abc ";
    expect "substring-before/after"
      "(substring-before('a=b','='), substring-after('a=b','='))" "a b";
    expect "upper/lower" "(upper-case('aBc'), lower-case('aBc'))" "ABC abc";
    expect "translate" "translate('abcabc', 'abc', 'AB')" "ABAB";
    expect "normalize-space" "normalize-space('  a  b ')" "a b";
    expect "matches" "(matches('abc','b.'), matches('abc','^c'))" "true false";
    expect "replace" "replace('banana', 'an', '*')" "b**a";
    expect "tokenize" "tokenize('a,b,,c', ',')" "a b  c";
    expect "string on node" ~pre "string(($d//a)[1])" "1";
    expect "string-length of context" "('abc')[string-length() = 3]" "abc";
  ]

let numerics =
  [
    expect "sum" "sum((1, 2, 3))" "6";
    expect "sum of empty" "sum(())" "0";
    expect "sum with zero value" "sum((), 100)" "100";
    expect "avg" "avg((1, 2, 3))" "2";
    expect "avg of empty" "count(avg(()))" "0";
    expect "max min" "(max((3,1,2)), min((3,1,2)))" "3 1";
    expect "max over untyped" ~pre "max($d//a)" "2";
    expect "abs" "(abs(-3), abs(3.5))" "3 3.5";
    expect "floor ceiling round" "(floor(1.7), ceiling(1.2), round(1.5))" "1 2 2";
    expect "number" "(number('3'), number('x'))" "3 NaN";
    expect "sum promotes" "sum((1, 0.5))" "1.5";
  ]

let nodes =
  [
    expect "name and local-name" ~pre "(name(($d//a)[1]), local-name(($d//a)[1]))" "a a";
    expect "name of empty" "name(())" "";
    expect "node-name" ~pre "count(node-name(($d//c)[1]))" "1";
    expect "root" ~pre "(root(($d//a)[1]) is $d)" "true";
    expect "data" ~pre "data($d//a)" "1 2";
    expect "deep-equal same" "deep-equal(<a x='1'>t<b/></a>, <a x='1'>t<b/></a>)" "true";
    expect "deep-equal attr order" "deep-equal(<a x='1' y='2'/>, <a y='2' x='1'/>)"
      "true";
    expect "deep-equal differs" "deep-equal(<a>1</a>, <a>2</a>)" "false";
    expect "deep-equal atomics" "(deep-equal((1,'a'), (1,'a')), deep-equal(1, 2))"
      "true false";
    expect "doc function" ~pre "count(doc('d')//a)" "2";
    expect_error "doc unknown" "doc('missing')" (dynamic_error "FODC0002");
  ]

let errors_and_misc =
  [
    expect_error "fn:error" "error()" (dynamic_error "FOER0000");
    expect_error "fn:error with code" "error('MYERR', 'boom')" (dynamic_error "MYERR");
    expect "position/last" "(1,2,3)[position() = last()]" "3";
    expect_error "position without context" "position()" (dynamic_error "XPDY0002");
    expect "xs constructors" "(xs:integer('7'), xs:string(7), xs:boolean('1'), xs:double('1.5'))"
      "7 7 true 1.5";
    expect "trace passes value" "trace((1,2), 'lbl')" "1 2";
  ]

let suite =
  [
    ("functions:sequences", sequences);
    ("functions:strings", strings);
    ("functions:numerics", numerics);
    ("functions:nodes", nodes);
    ("functions:misc", errors_and_misc);
  ]
