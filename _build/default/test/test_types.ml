(* S5: dynamic sequence-type matching and casts (Types). *)

open Helpers
module A = Xqb_syntax.Ast
module Types = Core.Types
module Atomic = Xqb_xdm.Atomic
module Item = Xqb_xdm.Item

let st it occ = A.St (it, occ)
let xs l = A.It_atomic (Xqb_xml.Qname.xs l)

let matching =
  [
    tc "atomic types and the numeric tower" `Quick (fun () ->
        let f = fixture () in
        let m ty v = Types.matches f.store ty v in
        check Alcotest.bool "int : integer" true
          (m (st (xs "integer") A.Occ_one) (Xqb_xdm.Value.of_int 1));
        check Alcotest.bool "int : decimal" true
          (m (st (xs "decimal") A.Occ_one) (Xqb_xdm.Value.of_int 1));
        check Alcotest.bool "int : anyAtomicType" true
          (m (st (xs "anyAtomicType") A.Occ_one) (Xqb_xdm.Value.of_int 1));
        check Alcotest.bool "double !: integer" false
          (m (st (xs "integer") A.Occ_one) (Xqb_xdm.Value.of_double 1.0));
        check Alcotest.bool "untyped !: string" false
          (m (st (xs "string") A.Occ_one) [ Item.Atomic (Atomic.Untyped "x") ]));
    tc "occurrence indicators" `Quick (fun () ->
        let f = fixture () in
        let m occ v = Types.matches f.store (st (xs "integer") occ) v in
        let one = Xqb_xdm.Value.of_int 1 in
        let two = one @ one in
        check Alcotest.bool "one/1" true (m A.Occ_one one);
        check Alcotest.bool "one/0" false (m A.Occ_one []);
        check Alcotest.bool "one/2" false (m A.Occ_one two);
        check Alcotest.bool "opt/0" true (m A.Occ_opt []);
        check Alcotest.bool "opt/2" false (m A.Occ_opt two);
        check Alcotest.bool "star/2" true (m A.Occ_star two);
        check Alcotest.bool "plus/0" false (m A.Occ_plus []);
        check Alcotest.bool "plus/2" true (m A.Occ_plus two));
    tc "empty-sequence()" `Quick (fun () ->
        let f = fixture () in
        check Alcotest.bool "empty" true (Types.matches f.store A.St_empty []);
        check Alcotest.bool "non-empty" false
          (Types.matches f.store A.St_empty (Xqb_xdm.Value.of_int 1)));
    tc "node kind matching" `Quick (fun () ->
        let f = fixture () in
        let m it n = Types.matches f.store (st it A.Occ_one) [ Item.Node n ] in
        check Alcotest.bool "element()" true (m (A.It_element None) f.b1);
        check Alcotest.bool "element(b)" true (m (A.It_element (Some (qn "b"))) f.b1);
        check Alcotest.bool "element(z)" false (m (A.It_element (Some (qn "z"))) f.b1);
        check Alcotest.bool "attribute(x)" true
          (m (A.It_attribute (Some (qn "x"))) f.x1);
        check Alcotest.bool "text()" true (m A.It_text f.t1);
        check Alcotest.bool "document-node()" true (m A.It_document f.doc);
        check Alcotest.bool "node()" true (m A.It_node f.c1);
        check Alcotest.bool "item() matches atomic" true
          (Types.matches f.store (st A.It_item A.Occ_one) (Xqb_xdm.Value.of_int 1));
        check Alcotest.bool "node() rejects atomic" false
          (Types.matches f.store (st A.It_node A.Occ_one) (Xqb_xdm.Value.of_int 1)));
  ]

let casting =
  [
    tc "cast_atomic conversions" `Quick (fun () ->
        check Alcotest.bool "string->int" true
          (Types.cast_atomic (Atomic.String "12") (Xqb_xml.Qname.xs "integer")
          = Atomic.Integer 12);
        check Alcotest.bool "int->string" true
          (Types.cast_atomic (Atomic.Integer 12) (Xqb_xml.Qname.xs "string")
          = Atomic.String "12");
        check Alcotest.bool "untyped->double" true
          (Types.cast_atomic (Atomic.Untyped "1.5") (Xqb_xml.Qname.xs "double")
          = Atomic.Double 1.5);
        check Alcotest.bool "string->QName" true
          (Types.cast_atomic (Atomic.String "a:b") (Xqb_xml.Qname.xs "QName")
          = Atomic.QName (qn "a:b")));
    tc "cast on sequences" `Quick (fun () ->
        let f = fixture () in
        (match Types.cast f.store (xs "integer") [] with
        | _ -> Alcotest.fail "empty cast should fail"
        | exception Xqb_xdm.Errors.Dynamic_error _ -> ());
        match
          Types.cast f.store (xs "integer")
            (Xqb_xdm.Value.of_int 1 @ Xqb_xdm.Value.of_int 2)
        with
        | _ -> Alcotest.fail "multi cast should fail"
        | exception Xqb_xdm.Errors.Dynamic_error _ -> ());
    tc "castable mirrors cast" `Quick (fun () ->
        let f = fixture () in
        check Alcotest.bool "yes" true
          (Types.castable f.store (xs "integer") (Xqb_xdm.Value.of_string "3"));
        check Alcotest.bool "no" false
          (Types.castable f.store (xs "integer") (Xqb_xdm.Value.of_string "x")));
    tc "node casts via atomization" `Quick (fun () ->
        let f = fixture () in
        (* b1's string value is "one": not castable to integer *)
        (match Types.cast f.store (xs "integer") [ Item.Node f.b1 ] with
        | _ -> Alcotest.fail "element cast should fail"
        | exception Xqb_xdm.Errors.Dynamic_error _ -> ());
        match Types.cast f.store (xs "integer") [ Item.Node f.x1 ] with
        | [ Item.Atomic (Atomic.Integer 1) ] -> ()
        | _ -> Alcotest.fail "attr cast");
  ]

let signature_checks =
  [
    expect "declared types on globals"
      "declare variable $v as xs:integer := 3; $v + 1" "4";
    expect_error "global type mismatch"
      "declare variable $v as xs:string := 3; $v" compile_error;
    expect "sequence param types"
      "declare function f($xs as xs:integer*) { count($xs) }; f((1,2,3))" "3";
    expect_error "plus rejects empty"
      "declare function f($xs as xs:integer+) { count($xs) }; f(())"
      any_dynamic_error;
    expect "element param"
      "declare function f($e as element(a)) { name($e) }; f(<a/>)" "a";
    expect_error "element param mismatch"
      "declare function f($e as element(a)) { name($e) }; f(<b/>)"
      any_dynamic_error;
    expect "the nextid signature from §2.5 enforces integers"
      {|declare function f() as xs:integer { 41 + 1 }; f()|} "42";
  ]

let suite =
  [
    ("types:matching", matching);
    ("types:casting", casting);
    ("types:signatures", signature_checks);
  ]
