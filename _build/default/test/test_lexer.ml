(* S4: token-level lexer behaviour. *)

open Helpers
module L = Xqb_syntax.Lexer

let tokens src =
  let lx = L.make src in
  let rec go acc =
    match L.next lx with L.Eof -> List.rev acc | t -> go (t :: acc)
  in
  go []

let tok = Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (L.token_to_string t)) ( = )

let lexer_tests =
  [
    tc "numbers" `Quick (fun () ->
        check (Alcotest.list tok) "ints"
          [ L.Int 0; L.Int 42 ] (tokens "0 42");
        check (Alcotest.list tok) "decimal" [ L.Decimal 1.5 ] (tokens "1.5");
        check (Alcotest.list tok) "double" [ L.Double 1500.0 ] (tokens "1.5e3");
        check (Alcotest.list tok) "leading dot" [ L.Decimal 0.5 ] (tokens ".5"));
    tc "strings with quote doubling and entities" `Quick (fun () ->
        check (Alcotest.list tok) "dquote" [ L.Str {|say "hi"|} ] (tokens {|"say ""hi"""|});
        check (Alcotest.list tok) "squote" [ L.Str "it's" ] (tokens "'it''s'");
        check (Alcotest.list tok) "entity" [ L.Str "a&b" ] (tokens {|"a&amp;b"|}));
    tc "names and qnames" `Quick (fun () ->
        check (Alcotest.list tok) "plain" [ L.Name "foo" ] (tokens "foo");
        check (Alcotest.list tok) "qname" [ L.Qname ("xs", "integer") ] (tokens "xs:integer");
        check (Alcotest.list tok) "spaced colon is not a qname"
          [ L.Name "a"; L.Coloncolon; L.Name "b" ] (tokens "a::b"));
    tc "variables" `Quick (fun () ->
        check (Alcotest.list tok) "var" [ L.Var "x" ] (tokens "$x");
        check (Alcotest.list tok) "prefixed" [ L.Var "local:x" ] (tokens "$local:x"));
    tc "operators" `Quick (fun () ->
        check (Alcotest.list tok) "cmp"
          [ L.Le; L.Lt; L.Ge; L.Gt; L.Ne; L.Eq; L.Ltlt; L.Gtgt ]
          (tokens "<= < >= > != = << >>");
        check (Alcotest.list tok) "assign" [ L.Colonassign ] (tokens ":=");
        check (Alcotest.list tok) "paths"
          [ L.Slash; L.Slashslash; L.Dot; L.Dotdot; L.At ] (tokens "/ // . .. @"));
    tc "comments nest" `Quick (fun () ->
        check (Alcotest.list tok) "nested" [ L.Int 1 ] (tokens "(: a (: b :) c :) 1");
        match tokens "(: unterminated" with
        | _ -> Alcotest.fail "expected error"
        | exception L.Error _ -> ());
    tc "positions" `Quick (fun () ->
        let lx = L.make "a\n  b" in
        ignore (L.next lx);
        ignore (L.next lx);
        let line, col = L.position lx in
        check Alcotest.int "line" 2 line;
        check Alcotest.int "col" 4 col);
    tc "unterminated string" `Quick (fun () ->
        match tokens "\"abc" with
        | _ -> Alcotest.fail "expected error"
        | exception L.Error _ -> ());
  ]

let suite = [ ("lexer", lexer_tests) ]
