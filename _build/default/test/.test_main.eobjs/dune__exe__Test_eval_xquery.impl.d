test/test_eval_xquery.ml: Core Helpers
