test/test_normalize.ml: Alcotest Core Helpers Option Xqb_store Xqb_syntax Xqb_xdm
