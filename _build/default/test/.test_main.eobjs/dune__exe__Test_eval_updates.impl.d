test/test_eval_updates.ml: Helpers Xqb_store
