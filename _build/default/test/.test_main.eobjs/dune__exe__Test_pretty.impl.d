test/test_pretty.ml: Alcotest Helpers List Printexc QCheck2 Xqb_store Xqb_syntax
