test/test_xmark.ml: Alcotest Core Helpers Lazy List Option QCheck2 Xqb_store Xqb_xmark Xqb_xml
