test/test_axes.ml: Alcotest Fun Helpers List QCheck2 Xqb_store
