test/test_lexer.ml: Alcotest Format Helpers List Xqb_syntax
