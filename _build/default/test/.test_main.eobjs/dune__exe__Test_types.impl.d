test/test_types.ml: Alcotest Core Helpers Xqb_syntax Xqb_xdm Xqb_xml
