test/test_optimizer.ml: Alcotest Core Helpers List Option Printf QCheck2 Re Xqb_algebra Xqb_store Xqb_xmark
