test/test_update_matrix.ml: Alcotest Core Helpers List Printf
