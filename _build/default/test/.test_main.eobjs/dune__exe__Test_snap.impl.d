test/test_snap.ml: Alcotest Core Helpers List
