test/test_rewrite.ml: Alcotest Core Helpers List Option Test_conformance Xqb_syntax Xqb_xdm
