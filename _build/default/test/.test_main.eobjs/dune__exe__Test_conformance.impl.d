test/test_conformance.ml: Alcotest Helpers List Printexc Printf Xqb_syntax
