test/test_usecase.ml: Alcotest Core Helpers Printf Xqb_xmark
