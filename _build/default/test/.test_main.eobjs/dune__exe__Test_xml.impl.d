test/test_xml.ml: Alcotest Helpers List QCheck2 Xqb_xml
