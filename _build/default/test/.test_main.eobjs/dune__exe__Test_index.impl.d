test/test_index.ml: Alcotest Core Helpers List Option Xqb_store Xqb_syntax Xqb_xml
