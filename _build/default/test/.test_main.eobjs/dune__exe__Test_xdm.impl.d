test/test_xdm.ml: Alcotest Float Helpers QCheck2 Xqb_xdm
