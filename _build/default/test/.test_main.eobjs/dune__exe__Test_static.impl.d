test/test_static.ml: Alcotest Core Helpers List Option Xqb_syntax Xqb_xml
