test/test_parser.ml: Alcotest Helpers List Xqb_store Xqb_syntax Xqb_xml
