test/test_typing.ml: Alcotest Core Helpers List Option Test_conformance Xqb_store Xqb_syntax Xqb_xdm
