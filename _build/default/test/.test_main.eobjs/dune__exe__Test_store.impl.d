test/test_store.ml: Alcotest Helpers List Option QCheck2 Xqb_store Xqb_xml
