test/test_xquf.ml: Alcotest Core Helpers Option Xqb_syntax
