test/test_fuzz.ml: Core Helpers List Printexc Printf QCheck2 Random String Xqb_algebra Xqb_store
