test/test_apply.ml: Alcotest Array Core Fun Helpers List Printf QCheck2 Random Xqb_store
