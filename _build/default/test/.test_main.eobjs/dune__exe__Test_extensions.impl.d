test/test_extensions.ml: Alcotest Core Helpers Xqb_store Xqb_xdm
