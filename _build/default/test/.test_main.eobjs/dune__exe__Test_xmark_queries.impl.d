test/test_xmark_queries.ml: Alcotest Core Helpers Lazy String Xqb_xmark
