test/helpers.ml: Alcotest Core List Printexc QCheck2 QCheck_alcotest String Xqb_store Xqb_xdm Xqb_xml
