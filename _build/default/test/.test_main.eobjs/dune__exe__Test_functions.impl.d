test/test_functions.ml: Core Helpers
