test/test_engine.ml: Alcotest Core Helpers Printf Re String Xqb_store Xqb_xdm Xqb_xml
