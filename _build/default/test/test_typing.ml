(* The lightweight static type system (the paper's open "static
   typing" issue): inference soundness on the conformance corpus and
   the advisory warnings. *)

open Helpers
module T = Core.Typing
module C = Core.Core_ast

let normalize src =
  Core.Normalize.normalize_prog ~is_builtin:Core.Functions.is_builtin
    (Xqb_syntax.Parser.parse_prog src)

let infer src =
  let prog = normalize src in
  fst (T.infer_expr (Option.get prog.Core.Normalize.body))

let warnings src = T.check_prog (normalize src)

let ty name src expected =
  tc name `Quick (fun () ->
      check Alcotest.string name expected (T.to_string (infer src)))

let inference =
  [
    ty "integer literal" "1" "xs:integer";
    ty "decimal literal" "1.5" "xs:decimal";
    ty "string literal" "'x'" "xs:string";
    ty "empty" "()" "empty-sequence()";
    ty "sequence of ints" "(1, 2)" "xs:integer+";
    ty "mixed numeric sequence" "(1, 1.5)" "xs:numeric+";
    ty "mixed atomic sequence" "(1, 'a')" "xs:anyAtomicType+";
    ty "arithmetic" "1 + 2" "xs:numeric";
    ty "arithmetic with maybe-empty" "1 + ()" "xs:numeric?";
    ty "comparison" "1 = 2" "xs:boolean";
    ty "value comparison may be empty" "() eq 1" "xs:boolean?";
    ty "if join" "if (1) then 1 else 2.5" "xs:numeric";
    ty "if with branches of different kinds" "if (1) then 1 else 'a'"
      "xs:anyAtomicType";
    ty "element constructor" "<a/>" "element()";
    ty "attribute constructor" "attribute k {1}" "attribute()";
    ty "text constructor" "text {'x'}" "text()";
    ty "element sequence via for" "for $x in (1,2,3) return <a/>" "element()+";
    ty "for over possibly-empty" "for $x in (1,2)[. > 1] return <a/>" "element()*";
    ty "step type" "<a><b/></a>/b" "node()*";
    ty "count is an integer" "count((1,2))" "xs:integer";
    ty "string function" "concat('a','b')" "xs:string";
    ty "updates are empty" "delete {<a/>}" "empty-sequence()";
    ty "snap passes its body type" "snap { 1 }" "xs:integer";
    ty "range" "1 to 3" "xs:integer*";
    ty "cast" "'1' cast as xs:integer" "xs:integer";
    ty "treat" "(1,2) treat as xs:integer+" "xs:integer+";
    ty "quantifier" "some $x in (1) satisfies $x" "xs:boolean";
    ty "union of nodes" "(<a/> union <b/>)" "element()*";
  ]

(* Soundness on the conformance corpus: the inferred type must match
   the actual runtime value (checked with the dynamic matcher). *)
let soundness =
  [
    tc "inference is sound on the conformance corpus" `Quick (fun () ->
        List.iter
          (fun (_, cases) ->
            List.iter
              (fun (name, q, _) ->
                let eng = Core.Engine.create () in
                let prog = normalize q in
                let t = fst (T.infer_expr (Option.get prog.Core.Normalize.body)) in
                match Core.Engine.run eng q with
                | v ->
                  let store = Core.Engine.store eng in
                  let n = List.length v in
                  (* occurrence soundness *)
                  let occ_ok =
                    match t.T.occ with
                    | T.O_zero -> n = 0
                    | T.O_one -> n = 1
                    | T.O_opt -> n <= 1
                    | T.O_plus -> n >= 1
                    | T.O_star -> true
                  in
                  if not occ_ok then
                    Alcotest.failf "%s: inferred %s but got %d items" name
                      (T.to_string t) n;
                  (* item-kind soundness *)
                  List.iter
                    (fun item ->
                      let ok =
                        match t.T.item, item with
                        | T.T_item, _ -> true
                        | T.T_atomic _, Xqb_xdm.Item.Atomic _ -> true
                        | T.T_atomic _, Xqb_xdm.Item.Node _ -> false
                        | T.T_node, Xqb_xdm.Item.Node _ -> true
                        | kind, Xqb_xdm.Item.Node nd ->
                          let k = Xqb_store.Store.kind store nd in
                          (match kind, k with
                          | T.T_element, Xqb_store.Store.Element
                          | T.T_attribute, Xqb_store.Store.Attribute
                          | T.T_text, Xqb_store.Store.Text
                          | T.T_comment, Xqb_store.Store.Comment
                          | T.T_pi, Xqb_store.Store.Pi
                          | T.T_document, Xqb_store.Store.Document ->
                            true
                          | _ -> false)
                        | _, Xqb_xdm.Item.Atomic _ -> false
                      in
                      if not ok then
                        Alcotest.failf "%s: inferred %s, got incompatible item"
                          name (T.to_string t))
                    v
                | exception _ -> () (* runtime errors are outside the claim *))
              cases)
          Test_conformance.all_cases);
  ]

let warning_tests =
  [
    tc "arithmetic on a string warns" `Quick (fun () ->
        check Alcotest.int "one warning" 1 (List.length (warnings "'a' + 1")));
    tc "path step over atomics warns" `Quick (fun () ->
        check Alcotest.bool "warns" true (warnings "(1, 2)/child::a" <> []));
    tc "delete of atomics warns" `Quick (fun () ->
        check Alcotest.bool "warns" true (warnings "delete {(1, 2)}" <> []));
    tc "declared return type contradiction warns" `Quick (fun () ->
        check Alcotest.bool "warns" true
          (warnings "declare function f() as xs:integer { 'nope' }; 1" <> []));
    tc "declared global contradiction warns" `Quick (fun () ->
        check Alcotest.bool "warns" true
          (warnings "declare variable $v as element() := 3; 1" <> []));
    tc "clean programs stay quiet" `Quick (fun () ->
        check (Alcotest.list Alcotest.string) "no warnings" []
          (warnings
             {|declare variable $x := <x><a>1</a></x>;
               declare function total() as xs:numeric { sum($x/a) };
               (total() + 1, for $a in $x/a return delete {$a})|}));
    tc "untyped stays permissive (no false positives)" `Quick (fun () ->
        check (Alcotest.list Alcotest.string) "no warnings" []
          (warnings "<a>3</a> + 1"));
    tc "engine surfaces warnings on compile" `Quick (fun () ->
        let eng = Core.Engine.create () in
        let c = Core.Engine.compile eng "'a' * 2" in
        check Alcotest.bool "present" true (c.Core.Engine.type_warnings <> []));
  ]

let suite =
  [
    ("typing:inference", inference);
    ("typing:soundness", soundness);
    ("typing:warnings", warning_tests);
  ]
