(* S7: the XMark-style generator — shape, determinism, scaling, and
   referential integrity of the join keys E1 depends on. *)

open Helpers
module G = Xqb_xmark.Generator
module Store = Xqb_store.Store

let gen ?(cfg = G.default) () =
  let store = Store.create () in
  let doc = G.generate store cfg in
  (store, doc)

(* A shared engine over the default document; the queries below are
   read-only. *)
let default_engine =
  lazy
    (let eng = Core.Engine.create () in
     let doc = G.generate (Core.Engine.store eng) G.default in
     Core.Engine.bind_node eng "a" doc;
     eng)

let q query =
  let eng = Lazy.force default_engine in
  Core.Engine.serialize eng (Core.Engine.run eng query)

let structure =
  [
    tc "document shape" `Quick (fun () ->
        let store, doc = gen () in
        let site = List.hd (Store.children store doc) in
        let names =
          List.map
            (fun c -> Xqb_xml.Qname.to_string (Option.get (Store.name store c)))
            (Store.children store site)
        in
        check
          (Alcotest.list Alcotest.string)
          "sections"
          [ "regions"; "categories"; "people"; "open_auctions"; "closed_auctions" ]
          names;
        check (Alcotest.list Alcotest.string) "invariants" [] (Store.validate store));
    tc "cardinalities match config" `Quick (fun () ->
        check Alcotest.string "persons" (string_of_int G.default.G.persons)
          (q "count($a//person)");
        check Alcotest.string "closed" (string_of_int G.default.G.closed_auctions)
          (q "count($a//closed_auction)");
        check Alcotest.string "items" (string_of_int G.default.G.items)
          (q "count($a//item)");
        check Alcotest.string "categories" (string_of_int G.default.G.categories)
          (q "count($a//category)"));
    tc "person ids are unique and well-formed" `Quick (fun () ->
        check Alcotest.string "distinct ids" (string_of_int G.default.G.persons)
          (q "count(distinct-values($a//person/@id))");
        check Alcotest.string "prefixed" "true"
          (q "every $p in $a//person satisfies starts-with($p/@id, 'person')"));
    tc "buyer references resolve (join integrity for E1)" `Quick (fun () ->
        check Alcotest.string "all buyers are persons" "true"
          (q "every $t in $a//closed_auction satisfies exists($a//person[@id = $t/buyer/@person])");
        check Alcotest.string "itemrefs resolve" "true"
          (q "every $t in $a//closed_auction satisfies exists($a//item[@id = $t/itemref/@item])"));
  ]

let determinism =
  [
    tc "same seed, same document" `Quick (fun () ->
        check Alcotest.string "equal" (G.to_xml G.default) (G.to_xml G.default));
    tc "different seed, different document" `Quick (fun () ->
        check Alcotest.bool "differ" true
          (G.to_xml G.default <> G.to_xml { G.default with G.seed = 43 }));
    tc "events round-trip through the XML parser" `Quick (fun () ->
        let xml = G.to_xml { G.default with G.persons = 10; items = 8 } in
        let events = Xqb_xml.Xml_parser.parse xml in
        check Alcotest.bool "nonempty" true (List.length events > 50));
  ]

let scaling =
  [
    tc "scaled keeps XMark ratios" `Quick (fun () ->
        let s1 = G.scaled 1.0 in
        let s2 = G.scaled 2.0 in
        check Alcotest.int "persons x2" (2 * s1.G.persons) s2.G.persons;
        check Alcotest.bool "ratio persons/closed" true
          (abs ((s1.G.persons * 97) - (s1.G.closed_auctions * 255)) < 300));
    tc "tiny factors stay positive" `Quick (fun () ->
        let s = G.scaled 0.001 in
        check Alcotest.bool "all >= 1" true
          (s.G.persons >= 1 && s.G.items >= 1 && s.G.closed_auctions >= 1));
  ]

let prng =
  [
    tc "rand determinism and bounds" `Quick (fun () ->
        let r1 = Xqb_xmark.Rand.create 7 in
        let r2 = Xqb_xmark.Rand.create 7 in
        for _ = 1 to 100 do
          let a = Xqb_xmark.Rand.int r1 13 in
          let b = Xqb_xmark.Rand.int r2 13 in
          check Alcotest.int "same stream" a b;
          check Alcotest.bool "in bounds" true (a >= 0 && a < 13)
        done);
    qtest "rand stays in range" QCheck2.Gen.(pair small_nat (int_range 1 1000))
      (fun (seed, bound) ->
        let r = Xqb_xmark.Rand.create seed in
        let x = Xqb_xmark.Rand.int r bound in
        x >= 0 && x < bound);
  ]

let suite =
  [
    ("xmark:structure", structure);
    ("xmark:determinism", determinism);
    ("xmark:scaling", scaling);
    ("xmark:prng", prng);
  ]
