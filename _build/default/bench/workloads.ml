(* Shared workloads for the experiment benches. *)

module G = Xqb_xmark.Generator

(* The §4.3 query: XMark Q8 variant with a logging insert in the
   inner return clause. *)
let q8_with_inserts =
  {|for $p in $auction//person
    let $a :=
      for $t in $auction//closed_auction
      where $t/buyer/@person = $p/@id
      return (insert { <buyer person="{$t/buyer/@person}"
                       itemid="{$t/itemref/@item}" /> }
              into { $purchasers }, $t)
    return <item person="{ $p/name }">{ count($a) }</item>|}

(* Pure XMark Q8 (no updates) — isolates the join speedup itself. *)
let q8_pure =
  {|for $p in $auction//person
    let $a :=
      for $t in $auction//closed_auction
      where $t/buyer/@person = $p/@id
      return $t
    return <item person="{ $p/name }">{ count($a) }</item>|}

(* Engine with an XMark document at the given cardinalities, plus an
   empty $purchasers target. *)
let engine ~persons ~closed () =
  let eng = Core.Engine.create () in
  let cfg = { G.default with G.persons; closed_auctions = closed } in
  let doc = G.generate (Core.Engine.store eng) cfg in
  Core.Engine.bind_node eng "auction" doc;
  Core.Engine.bind_node eng "purchasers"
    (Xqb_store.Store.load_string (Core.Engine.store eng) "<purchasers/>");
  eng

(* The §2 Web-service module (E3). *)
let web_service_module maxlog =
  Printf.sprintf
    {|
declare variable $log := <log/>;
declare variable $archive := <archive/>;
declare variable $maxlog := %d;
declare variable $d := element counter { 0 };

declare function nextid() as xs:integer {
  snap { replace { $d/text() } with { $d + 1 }, xs:integer($d) }
};

declare function archivelog($log, $archive) {
  snap insert { <batch size="{count($log/logentry)}"/> } into { $archive }
};

declare function get_item_nolog($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return $item
};

declare function get_item($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return (
    let $name := $auction//person[@id = $userid]/name
    return
      (snap insert { <logentry id="{nextid()}" user="{$name}" itemid="{$itemid}"/> }
        into { $log },
      if (count($log/logentry) >= $maxlog)
      then (archivelog($log, $archive),
            snap delete { $log/logentry })
      else ()),
    $item
  )
};
|}
    maxlog

let web_service_engine ?(maxlog = 16) () =
  let eng = Core.Engine.create () in
  let cfg = { G.default with G.persons = 50; items = 30; closed_auctions = 30 } in
  let doc = G.generate (Core.Engine.store eng) cfg in
  Core.Engine.bind_node eng "auction" doc;
  let m = Core.Engine.compile eng (web_service_module maxlog) in
  Core.Engine.eval_globals eng m;
  eng
