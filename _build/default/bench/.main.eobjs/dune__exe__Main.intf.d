bench/main.mli:
