bench/bench_util.ml: Analyze Bechamel Benchmark Float Hashtbl List Measure Printf Staged String Test Time Toolkit Unix
