bench/workloads.ml: Core Printf Xqb_store Xqb_xmark
