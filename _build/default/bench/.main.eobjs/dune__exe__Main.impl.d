bench/main.ml: Array Bench_util Buffer Core Gc List Option Printf Random String Sys Workloads Xqb_algebra Xqb_store Xqb_syntax Xqb_xdm Xqb_xmark Xqb_xml
