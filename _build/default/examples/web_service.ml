(* The paper's §2 use case: an auction Web service whose get_item
   call logs each access — an update *inside a function* that also
   returns a value, with snap-per-entry log archiving and nextid()
   from §2.5.

   Run with: dune exec examples/web_service.exe *)

let service_module =
  {|
declare variable $log := <log/>;
declare variable $archive := <archive/>;
declare variable $maxlog := 4;
declare variable $d := element counter { 0 };

declare function nextid() as xs:integer {
  snap { replace { $d/text() } with { $d + 1 }, xs:integer($d) }
};

declare function archivelog($log, $archive) {
  snap insert { <batch size="{count($log/logentry)}"/> } into { $archive }
};

declare function get_item($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return (
    (: ::: Logging code ::: :)
    let $name := $auction//person[@id = $userid]/name
    return
      (snap insert { <logentry id="{nextid()}"
                     user="{$name}"
                     itemid="{$itemid}"/> }
        into { $log },
      if (count($log/logentry) >= $maxlog)
      then (archivelog($log, $archive),
            snap delete { $log/logentry })
      else ()),
    (: ::: End logging code ::: :)
    $item
  )
};
|}

let () =
  let engine = Core.Engine.create () in
  let cfg = { Xqb_xmark.Generator.default with persons = 20; items = 10 } in
  let doc = Xqb_xmark.Generator.generate (Core.Engine.store engine) cfg in
  Core.Engine.bind_node engine "auction" doc;

  (* Install the module (functions + globals). *)
  let compiled = Core.Engine.compile engine service_module in
  Core.Engine.eval_globals engine compiled;

  (* Simulate a burst of Web-service calls. *)
  let call item user =
    let v =
      Core.Engine.run engine
        (Printf.sprintf "get_item('item%d','person%d')/name/string()" item user)
    in
    Printf.printf "get_item(item%d) by person%d -> %s\n" item user
      (Core.Engine.serialize engine v)
  in
  List.iter (fun (i, u) -> call i u)
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (0, 7); (1, 8); (2, 9) ];

  (* Inspect the service state: the log was archived twice (every
     $maxlog entries) and new ids kept increasing across calls. *)
  let show label q =
    Printf.printf "%-10s %s\n" label
      (Core.Engine.serialize engine (Core.Engine.run engine q))
  in
  show "log:" "$log";
  show "archive:" "$archive";
  show "counter:" "string($d)"
