examples/counter.mli:
