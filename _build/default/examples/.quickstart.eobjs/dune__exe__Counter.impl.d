examples/counter.ml: Core Printf String
