examples/auction_report.ml: Core List Printf String Unix Xqb_algebra Xqb_store Xqb_xdm Xqb_xmark
