examples/xmark_queries.ml: Core List Printexc Printf Unix Xqb_xmark
