examples/web_service.ml: Core List Printf Xqb_xmark
