examples/quickstart.mli:
