(* The §4.3 experiment as an application: run the XMark-Q8-with-
   updates query naively and through the algebraic optimizer, check
   the results (value *and* side effects) agree and show the plan.

   Run with: dune exec examples/auction_report.exe *)

let query =
  {|
for $p in $auction//person
let $a :=
  for $t in $auction//closed_auction
  where $t/buyer/@person = $p/@id
  return (insert { <buyer person="{$t/buyer/@person}"
                   itemid="{$t/itemref/@item}" /> }
          into { $purchasers }, $t)
return <item person="{ $p/name }">{ count($a) }</item>
|}

let setup () =
  let engine = Core.Engine.create () in
  let cfg =
    { Xqb_xmark.Generator.default with persons = 120; closed_auctions = 240 }
  in
  let doc = Xqb_xmark.Generator.generate (Core.Engine.store engine) cfg in
  Core.Engine.bind_node engine "auction" doc;
  ignore (Core.Engine.run engine "()");  (* warm the pipeline *)
  engine

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, (Unix.gettimeofday () -. t0) *. 1000.)

let () =
  print_endline "== XMark Q8 variant with logging inserts (paper §4.3) ==";

  let eng_naive = setup () in
  Core.Engine.bind eng_naive "purchasers"
    (Xqb_xdm.Value.of_node
       (Xqb_store.Store.load_string (Core.Engine.store eng_naive) "<purchasers/>"));
  let v_naive, ms_naive = time (fun () -> Core.Engine.run eng_naive query) in

  let eng_opt = setup () in
  Core.Engine.bind eng_opt "purchasers"
    (Xqb_xdm.Value.of_node
       (Xqb_store.Store.load_string (Core.Engine.store eng_opt) "<purchasers/>"));
  let r_opt, ms_opt = time (fun () -> Xqb_algebra.Runner.run eng_opt query) in

  Printf.printf "naive (nested loop): %4d items in %6.1f ms\n"
    (List.length v_naive) ms_naive;
  Printf.printf "optimized (join):    %4d items in %6.1f ms  (rewrites: %s)\n"
    (List.length r_opt.Xqb_algebra.Runner.value)
    ms_opt
    (String.concat ", " r_opt.Xqb_algebra.Runner.fired);

  let s1 = Core.Engine.serialize eng_naive v_naive in
  let s2 = Core.Engine.serialize eng_opt r_opt.Xqb_algebra.Runner.value in
  Printf.printf "values agree:  %b\n" (String.equal s1 s2);

  let purchasers eng =
    Core.Engine.serialize eng
      (Core.Engine.run eng "for $b in $purchasers/buyer return string($b/@person)")
  in
  Printf.printf "effects agree: %b\n"
    (String.equal (purchasers eng_naive) (purchasers eng_opt));

  print_endline "\n== optimized plan ==";
  print_endline (Xqb_algebra.Runner.explain eng_opt query)
