(* Quickstart: load a document, query it, update it with snap.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Create an engine and load a document. *)
  let engine = Core.Engine.create () in
  let doc =
    Core.Engine.load_document engine ~uri:"library.xml"
      {|<library>
          <book year="2004"><title>XQuery from the Experts</title></book>
          <book year="2006"><title>XQuery!</title></book>
          <book year="1997"><title>The Definition of Standard ML</title></book>
        </library>|}
  in
  Core.Engine.bind_node engine "lib" doc;

  (* 2. A plain XQuery 1.0 query. *)
  let titles =
    Core.Engine.run engine
      {|for $b in $lib//book where $b/@year >= 2004 order by $b/@year return string($b/title)|}
  in
  Printf.printf "Recent books: %s\n" (Core.Engine.serialize engine titles);

  (* 3. An XQuery! update: side effects compose with queries. The
     insert below both logs and returns a value (§2.2). *)
  let v =
    Core.Engine.run engine
      {|let $new := <book year="2011"><title>XQuery Update Facility</title></book>
        return (
          insert { $new } into { $lib/library },
          count($lib//book)
        )|}
  in
  (* The count runs before the top-level snap applies the insert: *)
  Printf.printf "Books seen inside the snap: %s\n" (Core.Engine.serialize engine v);
  let after = Core.Engine.run engine {|count($lib//book)|} in
  Printf.printf "Books after the snap applied: %s\n" (Core.Engine.serialize engine after);

  (* 4. snap { } gives control over when updates apply (§2.3). *)
  let v =
    Core.Engine.run engine
      {|(snap insert { <book year="1974"><title>The Art of Computer Programming</title></book> }
         into { $lib/library },
        count($lib//book))|}
  in
  Printf.printf "Books after an inner snap (visible immediately): %s\n"
    (Core.Engine.serialize engine v);

  (* 5. Detach semantics: deleted nodes remain queryable (§3.1). *)
  let v =
    Core.Engine.run engine
      {|let $victim := ($lib//book)[1]
        return (snap delete { $victim },
                concat("still readable after delete: ", string($victim/title)))|}
  in
  print_endline (Core.Engine.serialize engine v)
