(* An XMark-style query mix over generated auction data, finishing
   with an XQUF-syntax maintenance script — the "downstream user"
   workload: read-only analytics plus periodic updates on one store.

   Run with: dune exec examples/xmark_queries.exe *)

let queries =
  [
    ( "Q1: initial price of a known open auction",
      {|for $b in $auction//open_auction[@id = 'open3']
        return xs:double($b/initial)|} );
    ( "Q2: current prices, first five",
      {|let $p := for $b in $auction//open_auction
                  order by xs:integer($b/current) descending
                  return <price>{ string($b/current) }</price>
        return subsequence($p, 1, 5)|} );
    ( "Q5: how many sold items cost more than 40",
      {|count(for $i in $auction//closed_auction
             where xs:double($i/price) >= 40
             return $i/price)|} );
    ( "Q7: pieces of prose",
      {|count($auction//description) + count($auction//annotation)
        + count($auction//emailaddress)|} );
    ( "Q8 (join): buyers per person, top entry",
      {|let $rows :=
          for $p in $auction//person
          let $a := for $t in $auction//closed_auction
                    where $t/buyer/@person = $p/@id
                    return $t
          order by count($a) descending, string($p/name)
          return <item person="{$p/name}">{count($a)}</item>
        return $rows[1]|} );
    ( "Q20: demographics",
      {|<result>
          <with_phone>{ count($auction//person[phone]) }</with_phone>
          <with_address>{ count($auction//person[address]) }</with_address>
        </result>|} );
  ]

(* Periodic maintenance in XQUF syntax (the W3C language this paper
   fed into): close out low-value auctions and stamp the document. *)
let maintenance =
  {|let $cheap := $auction//open_auction[xs:integer(current) < 1000]
    return (
      snap {
        for $a in $cheap return delete node $a,
        insert node <maintenance removed="{count($cheap)}"/>
          as last into $auction/site
      },
      concat("removed ", count($cheap), " cheap auctions")
    )|}

let () =
  let engine = Core.Engine.create () in
  let cfg = Xqb_xmark.Generator.scaled 0.5 in
  let doc = Xqb_xmark.Generator.generate (Core.Engine.store engine) cfg in
  Core.Engine.bind_node engine "auction" doc;
  Printf.printf "document: %d persons, %d open auctions, %d closed auctions\n\n"
    cfg.Xqb_xmark.Generator.persons cfg.Xqb_xmark.Generator.open_auctions
    cfg.Xqb_xmark.Generator.closed_auctions;
  List.iter
    (fun (name, q) ->
      let t0 = Unix.gettimeofday () in
      match Core.Engine.run engine q with
      | v ->
        let ms = (Unix.gettimeofday () -. t0) *. 1000. in
        Printf.printf "%-45s (%5.1f ms)\n  %s\n" name ms
          (Core.Engine.serialize engine v)
      | exception e ->
        Printf.printf "%-45s FAILED: %s\n" name (Printexc.to_string e))
    queries;
  print_newline ();
  let v = Core.Engine.run engine maintenance in
  Printf.printf "maintenance: %s\n" (Core.Engine.serialize engine v);
  let v =
    Core.Engine.run engine
      "(count($auction//open_auction), string($auction/site/maintenance/@removed))"
  in
  Printf.printf "after: open auctions + stamp: %s\n" (Core.Engine.serialize engine v)
