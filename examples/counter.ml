(* §2.5 and §3.4 in miniature: nested snap scopes, the nextid()
   counter, and the three update-application semantics.

   Run with: dune exec examples/counter.exe *)

let () =
  let engine = Core.Engine.create () in

  (* The paper's §3.4 ordering example: the inner snap applies first,
     so the final child order is b, a, c. *)
  let v =
    Core.Engine.run engine
      {|let $x := <x/>
        return (snap ordered { insert {<a/>} into {$x},
                               snap { insert {<b/>} into {$x} },
                               insert {<c/>} into {$x} },
                $x)|}
  in
  Printf.printf "paper 3.4 example: %s (expected <x><b/><a/><c/></x>)\n"
    (Core.Engine.serialize engine v);

  (* The nextid() counter: each call's snap closes before the next
     call starts, so ids increase. *)
  let v =
    Core.Engine.run engine
      {|declare variable $d := element counter { 0 };
        declare function nextid() as xs:integer {
          snap { replace { $d/text() } with { $d + 1 }, xs:integer($d) }
        };
        (nextid(), nextid(), nextid(), nextid())|}
  in
  Printf.printf "nextid() stream:   %s\n" (Core.Engine.serialize engine v);

  (* Conflict-detection semantics: two inserts into the same slot are
     rejected, and the failed snap leaves the store untouched. *)
  let v =
    Core.Engine.run engine
      {|let $x := <x><k/></x>
        return (
          (: two "as last into $x" requests conflict under the
             conflict-detection semantics :)
          snap conflict { rename {$x/k} to {"renamed"} },
          string(($x/*)[1]/node-name(.))
        )|}
  in
  Printf.printf "conflict-free snap applied: %s\n" (Core.Engine.serialize engine v);

  (match
     Core.Engine.run engine
       {|let $x := <x/>
         return snap conflict { insert {<a/>} into {$x}, insert {<b/>} into {$x} }|}
   with
  | _ -> print_endline "ERROR: conflicting snap was not rejected"
  | exception Core.Conflict.Conflict_error c ->
    Printf.printf "conflicting snap rejected: %s\n" (Core.Conflict.to_string c));

  (* Nondeterministic semantics: with independent updates, any
     application order yields the same store. *)
  let run_nondet seed =
    let e = Core.Engine.create ~seed () in
    let v =
      Core.Engine.run e
        {|let $x := <x><a/><b/><c/></x>
          return (snap nondeterministic {
                    for $c in $x/* return rename {$c} to {concat("n-", node-name($c))}
                  }, $x)|}
    in
    Core.Engine.serialize e v
  in
  let r1 = run_nondet 1 and r2 = run_nondet 99 in
  Printf.printf "nondet order-independent: %b\n" (String.equal r1 r2)
