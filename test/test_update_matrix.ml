(* Systematic update-combination corpus: insert locations × payload
   kinds, operation interleavings, snap-mode agreement on
   order-independent programs, and the snap-scope visibility matrix.
   Complements the per-rule tests in test_eval_updates.ml. *)

open Helpers

(* -- locations × payloads ------------------------------------------- *)

(* Target tree: <x><a/><b/></x>; insert the payload at each location
   relative to $x/a and check the final serialization. *)
let payloads =
  [
    ("element ctor", "<p/>", "<p></p>");
    ("text ctor", "text {'t'}", "t");
    ("atomic", "'s'", "s");
    ("two atomics", "(1, 2)", "1 2");
    ("sequence of elements", "(<p/>, <q/>)", "<p></p><q></q>");
    ("copied subtree", "copy {<p><i/></p>}", "<p><i></i></p>");
  ]

let locations =
  [
    ("into", "into {$x}", fun payload -> "<x><a></a><b></b>" ^ payload ^ "</x>");
    ("as first into", "as first into {$x}",
     fun payload -> "<x>" ^ payload ^ "<a></a><b></b></x>");
    ("as last into", "as last into {$x}",
     fun payload -> "<x><a></a><b></b>" ^ payload ^ "</x>");
    ("before", "before {$x/b}", fun payload -> "<x><a></a>" ^ payload ^ "<b></b></x>");
    ("after", "after {$x/a}", fun payload -> "<x><a></a>" ^ payload ^ "<b></b></x>");
  ]

let location_payload_cases =
  List.concat_map
    (fun (lname, lsyntax, expected_of) ->
      List.map
        (fun (pname, psyntax, pserial) ->
          expect
            (Printf.sprintf "insert %s %s" pname lname)
            (Printf.sprintf
               "let $x := <x><a/><b/></x> return (snap insert {%s} %s, $x)"
               psyntax lsyntax)
            (expected_of pserial))
        payloads)
    locations

(* -- operation interleavings within one snap ------------------------ *)

let interleavings =
  [
    expect "insert then delete of distinct nodes"
      {|let $x := <x><a/><b/></x>
        return (snap ordered { insert {<c/>} into {$x}, delete {$x/a} }, $x)|}
      "<x><b></b><c></c></x>";
    expect "delete then insert at same parent"
      {|let $x := <x><a/></x>
        return (snap ordered { delete {$x/a}, insert {<c/>} into {$x} }, $x)|}
      "<x><c></c></x>";
    expect "rename then insert before the renamed node"
      {|let $x := <x><a/></x>
        return (snap ordered { rename {$x/a} to {'z'}, insert {<c/>} before {$x/a} }, $x)|}
      "<x><c></c><z></z></x>";
    expect "replace then insert after the replacement spot"
      {|let $x := <x><a/><b/></x>
        return (snap ordered { replace {$x/a} with {<r/>}, insert {<c/>} after {$x/b} }, $x)|}
      "<x><r></r><b></b><c></c></x>";
    expect "two inserts before the same anchor stack in delta order"
      {|let $x := <x><m/></x>
        return (snap ordered { insert {<a/>} before {$x/m}, insert {<b/>} before {$x/m} }, $x)|}
      "<x><a></a><b></b><m></m></x>";
    expect "two inserts after the same anchor: later lands closer"
      {|let $x := <x><m/></x>
        return (snap ordered { insert {<a/>} after {$x/m}, insert {<b/>} after {$x/m} }, $x)|}
      "<x><m></m><b></b><a></a></x>";
    expect "delete of anchor after insert-before resolves in order"
      {|let $x := <x><m/></x>
        return (snap ordered { insert {<a/>} before {$x/m}, delete {$x/m} }, $x)|}
      "<x><a></a></x>";
    expect "update inside both branches via sequence"
      {|let $x := <x/>
        let $y := <y/>
        return (snap ordered { insert {<a/>} into {$x}, insert {<b/>} into {$y} },
                $x, $y)|}
      "<x><a></a></x><y><b></b></y>";
    expect "delete parent and child in either order"
      {|let $x := <x><p><c/></p></x>
        let $p := $x/p
        return (snap ordered { delete {$p/c}, delete {$p} }, $x, $p)|}
      "<x></x><p></p>";
  ]

(* -- snap-mode agreement on order-independent programs -------------- *)

let mode_agreement =
  let program mode =
    "let $x := <x><a/><b/><c/></x>\n"
    ^ "return (snap " ^ mode ^ " {\n"
    ^ "          rename {$x/a} to {'a2'},\n"
    ^ "          delete {$x/b},\n"
    ^ "          insert {<d/>} into {$x}\n"
    ^ "        }, $x)"
  in
  let expected = "<x><a2></a2><c></c><d></d></x>" in
  List.map
    (fun mode ->
      expect
        (Printf.sprintf "independent updates agree under %s" mode)
        (program mode) expected)
    [ "ordered"; "nondeterministic"; "conflict"; "atomic" ]

(* -- scope visibility matrix ---------------------------------------- *)

(* Observation points: before any update, after emitting (same scope),
   after an inner snap closes, after the outer snap closes. *)
let visibility =
  [
    expect "visibility matrix"
      {|let $x := <x/>
        let $o1 := count($x/*)                       (: 0: nothing yet :)
        let $r := snap {
          insert {<a/>} into {$x},
          (: still pending in this scope :)
          count($x/*),
          snap { insert {<b/>} into {$x} },
          (: b applied, a still pending :)
          count($x/b), count($x/a)
        }
        (: both applied now :)
        return ($o1, $r, count($x/*))|}
      "0 0 1 0 2";
    expect "sibling snaps see each other's effects"
      {|let $x := <x/>
        return (snap insert {<a/>} into {$x},
                snap insert {element n {count($x/*)}} into {$x},
                string($x/n))|}
      "1";
    expect "function call inside snap contributes to caller's delta"
      {|declare variable $x := <x/>;
        declare function add() { insert {<f/>} into {$x} };
        snap { add(), add(), count($x/*) }|}
      "0";
    expect "function with its own snap applies immediately"
      {|declare variable $x := <x/>;
        declare function add_now() { snap insert {<f/>} into {$x} };
        snap { add_now(), add_now(), count($x/*) }|}
      "2";
  ]

(* -- conflict explanations: one case per rule R1..R7 ---------------- *)

(* Each rule is triggered with two hand-built requests carrying
   distinct provenance (3:12 and 7:5); the structured Conflict_error
   must name the rule and its explanation must cite both sites. *)
module U = Core.Update
module Conflict = Core.Conflict

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let site1 = "3:12"
let site2 = "7:5"

let at line col op =
  U.make
    ~prov:{ U.src_line = line; src_col = col; snap_depth = 0; trace_id = None }
    op

let first_req op = at 3 12 op
let second_req op = at 7 5 op

let expect_rule name ?store rule_str delta =
  tc name `Quick (fun () ->
      match Conflict.check ?store delta with
      | () -> Alcotest.failf "%s: expected a conflict" name
      | exception Conflict.Conflict_error c ->
        check Alcotest.string "rule id" rule_str
          (Conflict.rule_id c.Conflict.rule);
        let msg = Conflict.explain ?store c in
        check Alcotest.string "rule id leads the explanation" rule_str
          (String.sub msg 0 (String.length rule_str));
        if not (contains msg site1) then
          Alcotest.failf "%s: %S lacks the first site %s" name msg site1;
        if not (contains msg site2) then
          Alcotest.failf "%s: %S lacks the second site %s" name msg site2)

let ins ?(nodes = [ 10 ]) ?(parent = 1) position =
  U.Insert { nodes; parent; position }

let explanation_matrix =
  let r7 =
    (* Needs a real store: set-value on element b2 vs a delete strictly
       inside its subtree (d1). Node ids must come from the fixture. *)
    let f = fixture () in
    [
      expect_rule "R7: set-value vs structural work in its subtree"
        ~store:f.store "R7"
        [ first_req (U.Set_value (f.b2, "v")); second_req (U.Delete f.d1) ];
      tc "R7 explanation renders stable node paths" `Quick (fun () ->
          match
            Conflict.check ~store:f.store
              [
                first_req (U.Set_value (f.b2, "v"));
                second_req (U.Delete f.d1);
              ]
          with
          | () -> Alcotest.fail "expected a conflict"
          | exception Conflict.Conflict_error c ->
            let msg = Conflict.explain ~store:f.store c in
            if not (contains msg "/a[1]/b[2]") then
              Alcotest.failf "no stable path in %S" msg);
    ]
  in
  [
    expect_rule "R1: two inserts into the same slot" "R1"
      [
        first_req (ins U.First ~nodes:[ 10 ]);
        second_req (ins U.First ~nodes:[ 11 ]);
      ];
    expect_rule "R2: insert anchored on a deleted node" "R2"
      [ first_req (U.Delete 5); second_req (ins (U.Before 5)) ];
    expect_rule "R2: delete of an already-used anchor" "R2"
      [ first_req (ins (U.After 5)); second_req (U.Delete 5) ];
    expect_rule "R3: one node inserted by two requests" "R3"
      [
        first_req (ins U.Last ~parent:1);
        second_req (ins U.Last ~parent:2);
      ];
    expect_rule "R4: node both inserted and deleted" "R4"
      [ first_req (U.Delete 10); second_req (ins U.Last) ];
    expect_rule "R4: insert then delete, either order" "R4"
      [ first_req (ins U.Last); second_req (U.Delete 10) ];
    expect_rule "R5: diverging renames" "R5"
      [
        first_req (U.Rename (5, qn "a"));
        second_req (U.Rename (5, qn "b"));
      ];
    expect_rule "R6: diverging set-values" "R6"
      [
        first_req (U.Set_value (5, "a"));
        second_req (U.Set_value (5, "b"));
      ];
    expect_rule "R6: set-value vs delete" "R6"
      [ first_req (U.Set_value (5, "a")); second_req (U.Delete 5) ];
    tc "unknown provenance renders as such" `Quick (fun () ->
        match
          Conflict.check [ U.make (U.Delete 5); second_req (ins (U.Before 5)) ]
        with
        | () -> Alcotest.fail "expected a conflict"
        | exception Conflict.Conflict_error c ->
          let msg = Conflict.to_string c in
          if not (contains msg "<unknown source>" && contains msg site2) then
            Alcotest.failf "bad sites in %S" msg);
    tc "end to end: conflict mode surfaces the structured error" `Quick
      (fun () ->
        let eng = Core.Engine.create () in
        match
          Core.Engine.run eng
            {|let $x := <x><a/></x>
              return snap conflict {
                rename {$x/a} to {'p'},
                rename {$x/a} to {'q'}
              }|}
        with
        | _ -> Alcotest.fail "expected a conflict"
        | exception Conflict.Conflict_error c ->
          check Alcotest.string "rule id" "R5" (Conflict.rule_id c.Conflict.rule);
          let msg =
            Conflict.explain ~store:(Core.Engine.store eng) c
          in
          (* both effecting expressions carry real source positions *)
          if not (contains msg "3:" && contains msg "4:") then
            Alcotest.failf "expected two source sites in %S" msg);
    tc "dynamic update errors carry the source location" `Quick (fun () ->
        let eng = Core.Engine.create () in
        match
          Core.Engine.run eng
            {|let $x := <x a="1"/> return snap insert {attribute a {'2'}} into {$x}|}
        with
        | _ -> Alcotest.fail "expected Update_error"
        | exception Store.Update_error msg ->
          if not (contains msg "at 1:" && contains msg "duplicate attribute")
          then Alcotest.failf "no location prefix in %S" msg);
  ]
  @ r7

(* -- deterministic engine behaviour --------------------------------- *)

let determinism =
  [
    tc "same seed => identical nondeterministic application" `Quick (fun () ->
        let run () =
          let eng = Core.Engine.create ~seed:99 () in
          let v =
            Core.Engine.run eng
              {|let $x := <x/>
                return (snap nondeterministic {
                          for $i in 1 to 8 return insert {element n {$i}} into {$x}
                        }, $x)|}
          in
          Core.Engine.serialize eng v
        in
        check Alcotest.string "deterministic" (run ()) (run ()));
    tc "ordered mode ignores the seed" `Quick (fun () ->
        let run seed =
          let eng = Core.Engine.create ~seed () in
          let v =
            Core.Engine.run eng
              {|let $x := <x/>
                return (snap ordered {
                          for $i in 1 to 8 return insert {element n {$i}} into {$x}
                        }, $x)|}
          in
          Core.Engine.serialize eng v
        in
        check Alcotest.string "seed independent" (run 1) (run 2));
  ]

let suite =
  [
    ("update-matrix:location-x-payload", location_payload_cases);
    ("update-matrix:interleavings", interleavings);
    ("update-matrix:mode-agreement", mode_agreement);
    ("update-matrix:visibility", visibility);
    ("update-matrix:conflict-explanations", explanation_matrix);
    ("update-matrix:determinism", determinism);
  ]
