(* S5: the snap operator — §2.3 (scope control), §2.5 (nesting), the
   §3.4 golden example (E5), error atomicity, and the snap stack. *)

open Helpers

let paper_examples =
  [
    (* E5: the literal program from §3.4. *)
    expect "paper 3.4: inner snap applies first => b, a, c"
      {|let $x := <x/>
        return (snap ordered { insert {<a/>} into {$x},
                               snap { insert {<b/>} into {$x} },
                               insert {<c/>} into {$x} },
                $x)|}
      "<x><b></b><a></a><c></c></x>";
    expect "paper 3.4 with non-empty target"
      {|let $x := <x><o/></x>
        return (snap ordered { insert {<a/>} into {$x},
                               snap { insert {<b/>} into {$x} },
                               insert {<c/>} into {$x} },
                $x)|}
      "<x><o></o><b></b><a></a><c></c></x>";
    (* §2.5: the counter. Each nextid() call closes its own snap, so
       consecutive calls see consecutive values. *)
    expect "paper 2.5: nextid counter"
      {|declare variable $d := element counter { 0 };
        declare function nextid() as xs:integer {
          snap { replace { $d/text() } with { $d + 1 }, xs:integer($d) }
        };
        (nextid(), nextid(), nextid())|}
      "0 1 2";
    (* §2.3: snap makes effects visible to the code that follows. *)
    expect "paper 2.3: snap then observe"
      {|declare variable $log := <log/>;
        (snap insert { <logentry/> } into { $log },
         count($log/logentry))|}
      "1";
  ]

let nesting =
  [
    expect "inner snap effects visible to outer scope code"
      {|let $x := <x/>
        return snap {
          snap { insert {<a/>} into {$x} },
          count($x/a)
        }|}
      "1";
    expect "outer pending updates stay pending across inner snap"
      {|let $x := <x/>
        return snap {
          insert {<outer/>} into {$x},
          snap { insert {<inner/>} into {$x} },
          count($x/outer), count($x/inner)
        }|}
      "0 1";
    expect "three levels of nesting"
      {|let $x := <x/>
        return (snap ordered {
          insert {<l1/>} into {$x},
          snap ordered { insert {<l2/>} into {$x},
                         snap { insert {<l3/>} into {$x} } }
        }, $x)|}
      "<x><l3></l3><l2></l2><l1></l1></x>";
    expect "snap returns its body's value"
      "snap { 1 + 1 }" "2";
    expect "snap of empty" "snap { () }" "";
    expect "snap in every clause of a FLWOR"
      {|let $x := <x/>
        return (for $i in (snap insert {<f/>} into {$x}, 1 to 2)
                let $n := count($x/*)
                return $n)|}
      "1 1";
  ]

let error_handling =
  [
    expect_error "failing snap body discards its frame"
      {|let $x := <x/>
        return snap { insert {<a/>} into {$x}, error() }|}
      (dynamic_error "FOER0000");
    expect "store untouched after failing snap body"
      {|let $x := <x/>
        let $r :=
          (: a user function that traps nothing; we test at top level
             by checking after the error the engine state is clean in
             test_engine; here check that a snap whose body fails does
             not corrupt sibling evaluation :)
          ()
        return count($x/*)|}
      "0";
  ]

(* Evaluation order: XQuery! defines left-to-right evaluation (§2.4).
   These tests observe it through side effects. *)
let evaluation_order =
  [
    expect "comma evaluates left before right"
      {|let $x := <x/>
        return (snap insert {<a/>} into {$x},
                string-join(for $c in $x/* return name($c), ','))|}
      "a";
    expect "let before its body"
      {|let $x := <x/>
        let $ignored := snap insert {<a/>} into {$x}
        return count($x/a)|}
      "1";
    expect "arguments left to right"
      {|declare variable $x := <x/>;
        declare function two($a, $b) { ($a, $b) };
        two(count($x/*),
            (snap insert {<one/>} into {$x}, count($x/*)))|}
      "0 1";
    expect "if condition before branch"
      {|let $x := <x/>
        return if (snap insert {<c/>} into {$x}, true())
               then count($x/c) else -1|}
      "1";
    expect "and short-circuits right effects"
      {|let $x := <x/>
        return (false() and (snap insert {<e/>} into {$x}, true()),
                count($x/e))|}
      "false 0";
  ]

let stack_unit =
  [
    tc "snap stack push/emit/pop" `Quick (fun () ->
        let s = Core.Snap_stack.create () in
        check Alcotest.int "depth 0" 0 (Core.Snap_stack.depth s);
        Core.Snap_stack.push s Core.Apply.Ordered;
        Core.Snap_stack.emit s (Core.Update.make (Core.Update.Delete 1));
        Core.Snap_stack.push s Core.Apply.Ordered;
        Core.Snap_stack.emit s (Core.Update.make (Core.Update.Delete 2));
        check Alcotest.int "pending inner" 1 (Core.Snap_stack.pending s);
        let inner, _ = Core.Snap_stack.pop s in
        check Alcotest.int "inner delta" 1 (List.length inner);
        (match inner with
        | [ { Core.Update.op = Core.Update.Delete 2; _ } ] -> ()
        | _ -> Alcotest.fail "wrong inner delta");
        let outer, _ = Core.Snap_stack.pop s in
        (match outer with
        | [ { Core.Update.op = Core.Update.Delete 1; _ } ] -> ()
        | _ -> Alcotest.fail "wrong outer delta");
        check Alcotest.int "depth 0 again" 0 (Core.Snap_stack.depth s));
    tc "emit without scope raises" `Quick (fun () ->
        let s = Core.Snap_stack.create () in
        match Core.Snap_stack.emit s (Core.Update.make (Core.Update.Delete 0)) with
        | _ -> Alcotest.fail "expected No_snap_scope"
        | exception Core.Snap_stack.No_snap_scope -> ());
    tc "pending count tracks each frame exactly" `Quick (fun () ->
        (* [pending] is an O(1) per-frame counter, not a list walk —
           verify it matches the frame contents through pushes, emits
           and pops. *)
        let s = Core.Snap_stack.create () in
        check Alcotest.int "empty stack" 0 (Core.Snap_stack.pending s);
        Core.Snap_stack.push s Core.Apply.Ordered;
        check Alcotest.int "fresh frame" 0 (Core.Snap_stack.pending s);
        for i = 1 to 3 do
          Core.Snap_stack.emit s (Core.Update.make (Core.Update.Delete i))
        done;
        check Alcotest.int "outer after 3 emits" 3 (Core.Snap_stack.pending s);
        Core.Snap_stack.push s Core.Apply.Ordered;
        Core.Snap_stack.emit s (Core.Update.make (Core.Update.Delete 9));
        check Alcotest.int "inner counts only itself" 1
          (Core.Snap_stack.pending s);
        let inner, _ = Core.Snap_stack.pop s in
        check Alcotest.int "inner delta matches count" 1 (List.length inner);
        check Alcotest.int "outer count restored" 3 (Core.Snap_stack.pending s);
        let outer, _ = Core.Snap_stack.pop s in
        check Alcotest.int "outer delta matches count" 3 (List.length outer);
        check Alcotest.int "empty again" 0 (Core.Snap_stack.pending s));
    tc "delta preserves emission order" `Quick (fun () ->
        let s = Core.Snap_stack.create () in
        Core.Snap_stack.push s Core.Apply.Ordered;
        for i = 1 to 5 do
          Core.Snap_stack.emit s (Core.Update.make (Core.Update.Delete i))
        done;
        let delta, _ = Core.Snap_stack.pop s in
        check
          (Alcotest.list Alcotest.int)
          "order" [ 1; 2; 3; 4; 5 ]
          (List.map
             (fun r ->
               match r.Core.Update.op with Core.Update.Delete n -> n | _ -> -1)
             delta));
  ]

let suite =
  [
    ("snap:paper-examples", paper_examples);
    ("snap:nesting", nesting);
    ("snap:errors", error_handling);
    ("snap:evaluation-order", evaluation_order);
    ("snap:stack", stack_unit);
  ]
