(* S4: the parser, covering every production of the paper's Fig. 1
   grammar plus the XQuery 1.0 fragment. Structural assertions on the
   AST; textual round-trips live in test_pretty.ml. *)

open Helpers
module A = Xqb_syntax.Ast
module P = Xqb_syntax.Parser
module Axes = Xqb_store.Axes

let parse = P.parse_expr_string

let parses name src pred =
  tc name `Quick (fun () ->
      let e = parse src in
      if not (pred e) then
        Alcotest.failf "%s: unexpected AST for %s" name src)

let parse_fails name src =
  tc name `Quick (fun () ->
      match parse src with
      | _ -> Alcotest.failf "%s: expected parse error" name
      | exception (P.Error _ | Xqb_syntax.Lexer.Error _) -> ())

(* -- Fig. 1: the XQuery! productions ------------------------------- *)

let fig1_tests =
  [
    parses "DeleteExpr" "delete { $x }" (function A.Delete (A.Var "x", _) -> true | _ -> false);
    parses "snap DeleteExpr abbreviation" "snap delete { $x }"
      (function A.Snap (A.Snap_default, A.Delete _) -> true | _ -> false);
    parses "InsertExpr into" "insert { $a } into { $b }"
      (function A.Insert (A.Var "a", A.Into (A.Var "b"), _) -> true | _ -> false);
    parses "InsertExpr as first" "insert { $a } as first into { $b }"
      (function A.Insert (_, A.Into_as_first _, _) -> true | _ -> false);
    parses "InsertExpr as last" "insert { $a } as last into { $b }"
      (function A.Insert (_, A.Into_as_last _, _) -> true | _ -> false);
    parses "InsertExpr before" "insert { $a } before { $b }"
      (function A.Insert (_, A.Before _, _) -> true | _ -> false);
    parses "InsertExpr after" "insert { $a } after { $b }"
      (function A.Insert (_, A.After _, _) -> true | _ -> false);
    parses "snap insert abbreviation" "snap insert { $a } into { $b }"
      (function A.Snap (A.Snap_default, A.Insert _) -> true | _ -> false);
    parses "ReplaceExpr" "replace { $a } with { $b }"
      (function A.Replace (A.Var "a", A.Var "b", _) -> true | _ -> false);
    parses "RenameExpr" "rename { $a } to { \"n\" }"
      (function A.Rename (A.Var "a", A.Literal (A.Lit_string "n"), _) -> true | _ -> false);
    parses "CopyExpr" "copy { $x }" (function A.Copy (A.Var "x") -> true | _ -> false);
    parses "SnapExpr default" "snap { $x }"
      (function A.Snap (A.Snap_default, A.Var "x") -> true | _ -> false);
    parses "SnapExpr ordered" "snap ordered { 1 }"
      (function A.Snap (A.Snap_ordered, _) -> true | _ -> false);
    parses "SnapExpr nondeterministic" "snap nondeterministic { 1 }"
      (function A.Snap (A.Snap_nondeterministic, _) -> true | _ -> false);
    parses "SnapExpr conflict" "snap conflict { 1 }"
      (function A.Snap (A.Snap_conflict, _) -> true | _ -> false);
    parses "nested snap" "snap { snap { 1 } }"
      (function A.Snap (_, A.Snap (_, _)) -> true | _ -> false);
    (* keywords stay available as element names *)
    parses "delete as a path step" "$x/delete"
      (function A.Path (A.Var "x", { A.test = Axes.Name n; _ }) ->
         Xqb_xml.Qname.local n = "delete" | _ -> false);
    parses "snap as element name" "<snap/>"
      (function A.Dir_elem (n, [], []) -> Xqb_xml.Qname.local n = "snap" | _ -> false);
  ]

(* -- XQuery 1.0 fragment -------------------------------------------- *)

let xquery_tests =
  [
    parses "precedence: or < and < comparison < additive"
      "$a or $b and $c = $d + 1"
      (function
        | A.Binop (A.Or, A.Var "a",
            A.Binop (A.And, A.Var "b",
              A.Binop (A.Gen_eq, A.Var "c", A.Binop (A.Add, A.Var "d", _)))) ->
          true
        | _ -> false);
    parses "multiplicative binds tighter" "1 + 2 * 3"
      (function
        | A.Binop (A.Add, _, A.Binop (A.Mul, _, _)) -> true
        | _ -> false);
    parses "value comparisons" "$a eq $b"
      (function A.Binop (A.Val_eq, _, _) -> true | _ -> false);
    parses "node comparisons" "$a is $b"
      (function A.Binop (A.Is, _, _) -> true | _ -> false);
    parses "range" "1 to 3" (function A.Binop (A.To, _, _) -> true | _ -> false);
    parses "union bar" "$a | $b" (function A.Binop (A.Union, _, _) -> true | _ -> false);
    parses "intersect" "$a intersect $b"
      (function A.Binop (A.Intersect, _, _) -> true | _ -> false);
    parses "flwor clauses" "for $x in $s let $y := $x where $y return $y"
      (function
        | A.Flwor ([ A.For [ ("x", None, _) ]; A.Let [ ("y", _) ]; A.Where _ ], None, _)
          ->
          true
        | _ -> false);
    parses "for with at" "for $x at $i in $s return $i"
      (function A.Flwor ([ A.For [ ("x", Some "i", _) ] ], None, _) -> true | _ -> false);
    parses "multiple bindings" "for $x in $a, $y in $b return 1"
      (function A.Flwor ([ A.For [ _; _ ] ], None, _) -> true | _ -> false);
    parses "order by" "for $x in $s order by $x descending return $x"
      (function A.Flwor (_, Some [ (_, A.Descending) ], _) -> true | _ -> false);
    parses "quantified" "every $x in $s satisfies $x > 0"
      (function A.Quantified (A.Every_q, [ _ ], _) -> true | _ -> false);
    parses "if then else" "if ($c) then 1 else 2"
      (function A.If (_, _, _) -> true | _ -> false);
    parses "paths with axes" "$x/ancestor-or-self::node()"
      (function
        | A.Path (_, { A.axis = Axes.Ancestor_or_self; test = Axes.Kind_node; _ }) -> true
        | _ -> false);
    parses "abbreviated attribute" "$x/@id"
      (function A.Path (_, { A.axis = Axes.Attribute; _ }) -> true | _ -> false);
    parses "dotdot" "$x/.."
      (function A.Path (_, { A.axis = Axes.Parent; _ }) -> true | _ -> false);
    parses "descendant shorthand" "$x//y"
      (function
        | A.Path (A.Path (_, { A.axis = Axes.Descendant_or_self; _ }), _) -> true
        | _ -> false);
    parses "predicates attach to steps" "$x/y[1][2]"
      (function A.Path (_, { A.preds = [ _; _ ]; _ }) -> true | _ -> false);
    parses "filter on primary" "$x[3]"
      (function A.Filter (A.Var "x", [ _ ]) -> true | _ -> false);
    parses "general rhs step" "$x/string()"
      (function A.Path_general (A.Var "x", A.Call _) -> true | _ -> false);
    parses "root only" "/" (function A.Root -> true | _ -> false);
    parses "root then step" "/site"
      (function A.Path (A.Root, _) -> true | _ -> false);
    parses "context item" "." (function A.Context_item -> true | _ -> false);
    parses "empty seq" "()" (function A.Seq [] -> true | _ -> false);
    parses "sequence" "1, 2, 3" (function A.Seq [ _; _; _ ] -> true | _ -> false);
    parses "function call" "concat('a', 'b')"
      (function A.Call (f, [ _; _ ]) -> Xqb_xml.Qname.local f = "concat" | _ -> false);
    parses "instance of" "$x instance of xs:integer+"
      (function
        | A.Instance_of (_, A.St (A.It_atomic _, A.Occ_plus)) -> true
        | _ -> false);
    parses "instance of empty-sequence" "$x instance of empty-sequence()"
      (function A.Instance_of (_, A.St_empty) -> true | _ -> false);
    parses "cast as" "'1' cast as xs:integer"
      (function A.Cast_as (_, A.It_atomic _) -> true | _ -> false);
    parses "castable as" "'1' castable as xs:double"
      (function A.Castable_as (_, _) -> true | _ -> false);
    parses "computed element" "element foo { 1 }"
      (function A.Comp_elem (A.Static_name _, _) -> true | _ -> false);
    parses "computed dynamic name" "element { $n } { 1 }"
      (function A.Comp_elem (A.Dynamic_name _, _) -> true | _ -> false);
    parses "computed attribute/text/document"
      "(attribute a { 1 }, text { 'x' }, document { <a/> })"
      (function
        | A.Seq [ A.Comp_attr _; A.Comp_text _; A.Comp_doc _ ] -> true
        | _ -> false);
    parses "direct ctor with avt" {|<a b="x{$v}y"/>|}
      (function
        | A.Dir_elem (_, [ (_, [ A.Avt_text "x"; A.Avt_expr _; A.Avt_text "y" ]) ], [])
          ->
          true
        | _ -> false);
    parses "direct ctor content" "<a>t{1}<b/></a>"
      (function
        | A.Dir_elem (_, [], [ A.C_text "t"; A.C_expr _; A.C_elem _ ]) -> true
        | _ -> false);
    parses "brace escaping in content" "<a>{{literal}}</a>"
      (function A.Dir_elem (_, [], [ A.C_text "{literal}" ]) -> true | _ -> false);
    parses "unary minus" "-1" (function A.Unary_minus _ -> true | _ -> false);
    parses "some with multiple bindings" "some $x in $a, $y in $b satisfies $x = $y"
      (function A.Quantified (A.Some_q, [ _; _ ], _) -> true | _ -> false);
  ]

let prog_tests =
  [
    tc "prolog: variable + function" `Quick (fun () ->
        let p =
          P.parse_prog
            {|declare variable $v := 1;
              declare function f($x as xs:integer) as xs:integer { $x + $v };
              f(1)|}
        in
        check Alcotest.int "decls" 2 (List.length p.A.prolog);
        check Alcotest.bool "body" true (p.A.body <> None));
    tc "declare namespace accepted" `Quick (fun () ->
        let p = P.parse_prog {|declare namespace foo = "http://x"; 1|} in
        check Alcotest.int "no decls recorded" 0 (List.length p.A.prolog));
    tc "prolog only" `Quick (fun () ->
        let p = P.parse_prog {|declare variable $v := 1;|} in
        check Alcotest.bool "no body" true (p.A.body = None));
    tc "missing semicolon rejected" `Quick (fun () ->
        match P.parse_prog "declare variable $v := 1 2" with
        | _ -> Alcotest.fail "expected error"
        | exception P.Error _ -> ());
  ]

let error_tests =
  [
    parse_fails "unbalanced paren" "(1, 2";
    parse_fails "missing brace" "snap { 1";
    parse_fails "insert without location" "insert { $a }";
    parse_fails "replace without with" "replace { $a } { $b }";
    parse_fails "for without return" "for $x in $y";
    parse_fails "dangling operator" "1 +";
    parse_fails "bad axis" "$x/sideways::a";
    parse_fails "mismatched constructor tags" "<a></b>";
    parse_fails "empty" "";
    parse_fails "if without else" "if ($c) then 1";
  ]

let suite =
  [
    ("parser:fig1", fig1_tests);
    ("parser:xquery", xquery_tests);
    ("parser:prog", prog_tests);
    ("parser:errors", error_tests);
  ]
