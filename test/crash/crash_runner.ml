(* Crash-injection harness for the durable store.

   Spawns a real [xqbang serve --data-dir DIR --fsync always] child on
   a pipe, feeds it update queries over the wire protocol, and
   SIGKILLs it at randomized points — after an acknowledgment, or
   mid-query with the acknowledgment never read. After each kill the
   server is restarted on the same data dir and its recovered state
   (the canonical store digest from JOURNAL STAT) is compared against
   an in-process mirror service that replayed exactly the
   acknowledged queries: recovery must reproduce either the last
   acknowledged state or, when the kill raced the acknowledgment,
   that state plus the single in-flight query — never anything else.
   A final round shuts down cleanly (QUIT) and requires an exact
   match. Some rounds force a CHECKPOINT first so recovery exercises
   the snapshot + WAL-tail path, not just plain replay.

   Each SIGKILL round also verifies the crash flight recorder: the
   restarted server must write a flight-<ts>.json (the killed child's
   events.jsonl does not end in lifecycle.shutdown), the dump must be
   strict JSON, and no wal.commit event spliced into it may carry an
   LSN above what recovery reports — commit events are emitted after
   the durability barrier, so the event log can never claim more than
   the disk has. The clean-shutdown round must leave no dump. With
   XQBANG_CRASH_ARTIFACT_DIR set, the last dump is copied there (CI
   uploads it).

   The seed is printed and overridable via XQBANG_CRASH_SEED. *)

module Svc = Xqb_service.Service
module Catalog = Xqb_service.Catalog
module Codec = Xqb_wal.Codec
module Json = Xqb_obs.Json

let doc_xml = "<r><a/></r>"
let rounds = 6
let queries_per_round = 8

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("crash harness: " ^ m); exit 1) fmt

(* ---------- child process plumbing ---------- *)

type child = {
  pid : int;
  to_child : out_channel;
  from_child : in_channel;
  devnull : Unix.file_descr;
}

let spawn exe data_dir =
  let stdin_r, stdin_w = Unix.pipe ~cloexec:false () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:false () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--data-dir"; data_dir; "--fsync"; "always" |]
      stdin_r stdout_w devnull
  in
  Unix.close stdin_r;
  Unix.close stdout_w;
  {
    pid;
    to_child = Unix.out_channel_of_descr stdin_w;
    from_child = Unix.in_channel_of_descr stdout_r;
    devnull;
  }

let send c line =
  output_string c.to_child line;
  output_char c.to_child '\n';
  flush c.to_child

let recv c what =
  match input_line c.from_child with
  | line -> line
  | exception End_of_file -> fail "child died while waiting for %s" what

let recv_ok c what =
  let line = recv c what in
  if String.length line >= 3 && String.sub line 0 3 = "OK " then
    String.sub line 3 (String.length line - 3)
  else if line = "OK" then ""
  else fail "%s: expected OK, got %S" what line

let sigkill c =
  Unix.kill c.pid Sys.sigkill;
  ignore (Unix.waitpid [] c.pid);
  close_out_noerr c.to_child;
  close_in_noerr c.from_child;
  Unix.close c.devnull

let quit c =
  send c "QUIT";
  (* drain until EOF so the child can flush and exit cleanly *)
  (try
     while true do
       ignore (input_line c.from_child)
     done
   with End_of_file -> ());
  ignore (Unix.waitpid [] c.pid);
  close_out_noerr c.to_child;
  close_in_noerr c.from_child;
  Unix.close c.devnull

(* OPEN a session and (re)attach the document; recovery already has
   the tree resident, so the LOAD is a cheap re-register then. *)
let session c doc_path =
  let sid = recv_ok c "OPEN" in
  let sid = match int_of_string_opt (String.trim sid) with
    | Some n -> n
    | None -> fail "OPEN returned %S" sid
  in
  send c (Printf.sprintf "LOAD %d d %s" sid doc_path);
  ignore (recv_ok c "LOAD");
  sid

let open_session c doc_path =
  send c "OPEN";
  session c doc_path

let journal_stat c =
  send c "JOURNAL STAT";
  let payload = recv_ok c "JOURNAL STAT" in
  match Json.parse payload with
  | Error e -> fail "JOURNAL STAT payload is not JSON (%s): %S" e payload
  | Ok v -> (
    match
      ( Option.bind (Json.path v [ "digest" ]) Json.to_string_opt,
        Option.bind (Json.path v [ "lsn" ]) Json.to_float_opt )
    with
    | Some d, Some lsn -> (d, int_of_float lsn)
    | _ -> fail "JOURNAL STAT payload lacks digest/lsn: %S" payload)

let journal_digest c = fst (journal_stat c)

(* ---------- flight-recorder checks ---------- *)

let flight_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n ->
         String.length n > 7
         && String.sub n 0 7 = "flight-"
         && Filename.check_suffix n ".json")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The dump must parse, name its reason, and respect the commit
   barrier: no spliced wal.commit event may exceed the recovered
   LSN — the event is only logged once the frames are durable. *)
let check_flight ~round ~recovered_lsn path =
  let v =
    match Json.parse (read_file path) with
    | Ok v -> v
    | Error e -> fail "round %d: flight dump %s is not JSON: %s" round path e
  in
  (match Option.bind (Json.member "reason" v) Json.to_string_opt with
  | Some "unclean-shutdown" -> ()
  | Some r -> fail "round %d: flight reason %S" round r
  | None -> fail "round %d: flight dump has no reason" round);
  let events =
    match Json.member "events" v with
    | Some a -> Json.to_list a
    | None -> fail "round %d: flight dump splices no events" round
  in
  if events = [] then fail "round %d: flight dump has an empty event tail" round;
  List.iter
    (fun e ->
      match Option.bind (Json.member "kind" e) Json.to_string_opt with
      | Some "wal.commit" -> (
        match Option.bind (Json.path e [ "data"; "lsn" ]) Json.to_float_opt with
        | Some lsn ->
          if int_of_float lsn > recovered_lsn then
            fail
              "round %d: flight records wal.commit lsn %d but recovery only \
               reached %d"
              round (int_of_float lsn) recovered_lsn
        | None -> fail "round %d: wal.commit event without an lsn" round)
      | _ -> ())
    events

let copy_artifact path =
  match Sys.getenv_opt "XQBANG_CRASH_ARTIFACT_DIR" with
  | None | Some "" -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let dst = Filename.concat dir (Filename.basename path) in
    let oc = open_out_bin dst in
    output_string oc (read_file path);
    close_out_noerr oc

(* ---------- the in-process mirror ---------- *)

let mirror = Svc.create ~domains:0 ()
let mirror_sid = Svc.open_session mirror
let mirror_digest () = Codec.store_digest_hex (Catalog.store (Svc.catalog mirror))

let mirror_apply q =
  match Svc.query mirror mirror_sid q with
  | Ok _ -> ()
  | Error e ->
    fail "mirror rejected %S: %s" q (Xqb_service.Service_error.to_string e)

(* ---------- workload ---------- *)

let qcount = ref 0

(* A deterministic cycle of committing updates against doc("d"):
   mostly inserts (monotonic growth), with renames mixed in so
   recovery replays more than one op kind. *)
let next_query () =
  incr qcount;
  let i = !qcount in
  if i mod 4 = 0 then
    Printf.sprintf {|snap rename {(doc("d")/r/*)[1]} to {'m%d'}|} i
  else Printf.sprintf {|snap insert {<n%d/>} into {doc("d")/r}|} i

(* ---------- driver ---------- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let () =
  let exe =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else fail "usage: crash_runner <path to xqbang binary>"
  in
  let seed =
    match Sys.getenv_opt "XQBANG_CRASH_SEED" with
    | Some s -> int_of_string s
    | None -> 0x5EED
  in
  Random.init seed;
  let tmp = Filename.get_temp_dir_name () in
  let data_dir =
    Filename.concat tmp (Printf.sprintf "xqbang-crash-%d" (Unix.getpid ()))
  in
  let doc_path =
    Filename.concat tmp (Printf.sprintf "xqbang-crash-doc-%d.xml" (Unix.getpid ()))
  in
  rm_rf data_dir;
  let oc = open_out doc_path in
  output_string oc doc_xml;
  close_out oc;
  Svc.load_document mirror mirror_sid ~uri:"d" doc_xml;
  Printf.printf "crash harness: seed %d, data dir %s\n%!" seed data_dir;

  (* verify the recovered child against the mirror; [inflight] is the
     query whose acknowledgment the kill raced, if any *)
  let verify ~round ~inflight =
    let flights_before = flight_files data_dir in
    let probe = spawn exe data_dir in
    let recovered, recovered_lsn = journal_stat probe in
    (* the killed child left its events.jsonl without a shutdown
       marker: this boot must have written a flight dump *)
    let fresh =
      List.filter
        (fun f -> not (List.mem f flights_before))
        (flight_files data_dir)
    in
    (match List.rev fresh with
    | [] -> fail "round %d: no flight dump after a SIGKILL recovery" round
    | newest :: _ ->
      let path = Filename.concat data_dir newest in
      check_flight ~round ~recovered_lsn path;
      copy_artifact path);
    let acked = mirror_digest () in
    (if recovered = acked then ()
     else
       match inflight with
       | None ->
         quit probe;
         fail "round %d: recovered %s but the acknowledged state is %s"
           round recovered acked
       | Some q ->
         (* the kill landed after the commit barrier but before the
            acknowledgment was read: the in-flight query is durable *)
         mirror_apply q;
         let with_inflight = mirror_digest () in
         if recovered <> with_inflight then begin
           quit probe;
           fail
             "round %d: recovered %s matches neither the acknowledged state \
              %s nor it plus the in-flight query (%s)"
             round recovered acked with_inflight
         end);
    quit probe
  in

  for round = 1 to rounds do
    let c = spawn exe data_dir in
    let sid = open_session c doc_path in
    let kill_at = Random.int queries_per_round in
    (* 0: kill right after an acknowledgment (no in-flight query);
       1: kill with the last acknowledgment unread;
       2: like 1, but force a CHECKPOINT mid-round first *)
    let mode = Random.int 3 in
    let inflight = ref None in
    (try
       for i = 0 to queries_per_round - 1 do
         if mode = 2 && i = kill_at / 2 then begin
           send c "CHECKPOINT";
           ignore (recv_ok c "CHECKPOINT")
         end;
         let q = next_query () in
         send c (Printf.sprintf "QUERY %d %s" sid q);
         if i < kill_at || mode = 0 then begin
           ignore (recv_ok c "QUERY");
           mirror_apply q;
           if i = kill_at then raise Exit
         end
         else begin
           (* let the child get a random way into commit, then kill
              without ever reading the acknowledgment *)
           if Random.bool () then Unix.sleepf (Random.float 0.004);
           inflight := Some q;
           raise Exit
         end
       done
     with Exit -> ());
    sigkill c;
    verify ~round ~inflight:!inflight;
    Printf.printf
      "crash harness: round %d ok (mode %d, killed at query %d%s)\n%!" round
      mode kill_at
      (if !inflight = None then ", no in-flight" else ", in-flight raced")
  done;

  (* clean shutdown must preserve everything exactly *)
  let c = spawn exe data_dir in
  let sid = open_session c doc_path in
  for _ = 1 to 4 do
    let q = next_query () in
    send c (Printf.sprintf "QUERY %d %s" sid q);
    ignore (recv_ok c "QUERY");
    mirror_apply q
  done;
  quit c;
  let flights_before = flight_files data_dir in
  let probe = spawn exe data_dir in
  let recovered = journal_digest probe in
  quit probe;
  if recovered <> mirror_digest () then
    fail "clean shutdown: recovered %s but expected %s" recovered
      (mirror_digest ());
  (* QUIT wrote lifecycle.shutdown: no flight dump on this boot *)
  if flight_files data_dir <> flights_before then
    fail "clean shutdown still produced a flight dump";
  Printf.printf "crash harness: clean shutdown round ok\n%!";
  Svc.shutdown mirror;
  rm_rf data_dir;
  Sys.remove doc_path;
  print_endline "crash harness: all rounds passed"
