(* XQuery Update Facility compatibility front end. The paper fed into
   XQUF's design; this suite checks that XQUF surface syntax maps onto
   the XQuery! core with XQUF's observable semantics (the whole query
   runs under one snapshot — which is exactly the implicit top-level
   snap of §2.3). *)

open Helpers
module A = Xqb_syntax.Ast
module P = Xqb_syntax.Parser

let syntax_mapping =
  let parses name src pred =
    tc name `Quick (fun () ->
        let e = P.parse_expr_string src in
        if not (pred e) then Alcotest.failf "%s: unexpected AST" name)
  in
  [
    parses "insert node ... into" "insert node <a/> into $x"
      (function A.Insert (A.Dir_elem _, A.Into (A.Var "x"), _) -> true | _ -> false);
    parses "insert nodes plural" "insert nodes ($a, $b) into $x"
      (function A.Insert (A.Seq [ _; _ ], A.Into _, _) -> true | _ -> false);
    parses "insert node as first into" "insert node <a/> as first into $x"
      (function A.Insert (_, A.Into_as_first _, _) -> true | _ -> false);
    parses "insert node as last into" "insert node <a/> as last into $x"
      (function A.Insert (_, A.Into_as_last _, _) -> true | _ -> false);
    parses "insert node before" "insert node <a/> before $x/b"
      (function A.Insert (_, A.Before _, _) -> true | _ -> false);
    parses "insert node after" "insert node <a/> after $x/b"
      (function A.Insert (_, A.After _, _) -> true | _ -> false);
    parses "delete node" "delete node $x/a"
      (function A.Delete (A.Path _, _) -> true | _ -> false);
    parses "delete nodes" "delete nodes $x/a"
      (function A.Delete _ -> true | _ -> false);
    parses "replace node with" "replace node $x/a with <b/>"
      (function A.Replace (_, A.Dir_elem _, _) -> true | _ -> false);
    parses "replace value of node" "replace value of node $x/a with 'v'"
      (function A.Replace_value (_, A.Literal _, _) -> true | _ -> false);
    parses "rename node as" "rename node $x/a as 'b'"
      (function A.Rename (_, A.Literal _, _) -> true | _ -> false);
    parses "both syntaxes coexist"
      "(insert {<a/>} into {$x}, insert node <a/> into $x)"
      (function A.Seq [ A.Insert _; A.Insert _ ] -> true | _ -> false);
    parses "delete with braces still works" "delete { $x }"
      (function A.Delete (A.Var "x", _) -> true | _ -> false);
  ]

let semantics =
  [
    expect "XQUF insert applies at query end (snapshot)"
      {|let $x := <x/>
        return (insert node <a/> into $x, count($x/a))|}
      "0";
    expect "XQUF insert visible in the next query step via snap"
      {|let $x := <x/>
        return (snap { insert node <a/> into $x }, count($x/a))|}
      "1";
    expect "insert node into full round trip"
      {|let $x := <x><old/></x>
        return (snap { insert node <new/> as first into $x }, $x)|}
      "<x><new></new><old></old></x>";
    expect "delete node"
      {|let $x := <x><a/><b/></x>
        return (snap { delete node $x/a }, $x)|}
      "<x><b></b></x>";
    expect "replace node"
      {|let $x := <x><a/></x>
        return (snap { replace node $x/a with <b/> }, $x)|}
      "<x><b></b></x>";
    expect "rename node as"
      {|let $x := <x><a/></x>
        return (snap { rename node $x/a as 'z' }, $x)|}
      "<x><z></z></x>";
  ]

let replace_value =
  [
    expect "replace value of element replaces its children"
      {|let $x := <x><a>old<b/></a></x>
        return (snap { replace value of node $x/a with 'new' }, $x)|}
      "<x><a>new</a></x>";
    expect "replace value of attribute"
      {|let $x := <x k="old"/>
        return (snap { replace value of node $x/@k with 41 + 1 }, string($x/@k))|}
      "42";
    expect "replace value of text node"
      {|let $x := <x>old</x>
        return (snap { replace value of node $x/text() with 'new' }, string($x))|}
      "new";
    expect "replace value with empty clears"
      {|let $x := <x><a>old</a></x>
        return (snap { replace value of node $x/a with '' }, count($x/a/node()))|}
      "0";
    expect "replace value atomizes a sequence"
      {|let $x := <x><a/></x>
        return (snap { replace value of node $x/a with (1, 2) }, string($x/a))|}
      "1 2";
    expect "replace value needs no copy (no aliasing possible)"
      {|let $src := <s>v</s>
        let $x := <x><a/></x>
        return (snap { replace value of node $x/a with $src },
                string($x/a), count($src))|}
      "v 1";
    expect_error "replace value of a non-node" "snap { replace value of node 1 with 'v' }"
      any_dynamic_error;
  ]

let conflict_r6 =
  let sv n s = Core.Update.make (Core.Update.Set_value (n, s)) in
  [
    tc "R6: diverging set-values conflict" `Quick (fun () ->
        check Alcotest.bool "conflict" false
          (Core.Conflict.is_conflict_free [ sv 3 "a"; sv 3 "b" ]);
        check Alcotest.bool "agreeing ok" true
          (Core.Conflict.is_conflict_free [ sv 3 "a"; sv 3 "a" ]));
    tc "R6: set-value vs insert into same node" `Quick (fun () ->
        let ins =
          Core.Update.make
            (Core.Update.Insert
               { nodes = [ 9 ]; parent = 3; position = Core.Update.Last })
        in
        check Alcotest.bool "conflict either order" false
          (Core.Conflict.is_conflict_free [ sv 3 "a"; ins ]);
        check Alcotest.bool "conflict either order 2" false
          (Core.Conflict.is_conflict_free [ ins; sv 3 "a" ]));
    tc "R6: set-value vs delete of the node" `Quick (fun () ->
        check Alcotest.bool "conflict" false
          (Core.Conflict.is_conflict_free
             [ sv 3 "a"; Core.Update.make (Core.Update.Delete 3) ]);
        check Alcotest.bool "conflict 2" false
          (Core.Conflict.is_conflict_free
             [ Core.Update.make (Core.Update.Delete 3); sv 3 "a" ]));
    tc "R6: independent set-values are fine" `Quick (fun () ->
        check Alcotest.bool "free" true
          (Core.Conflict.is_conflict_free [ sv 3 "a"; sv 4 "b" ]));
    expect "conflict-mode accepts one replace value"
      {|let $x := <x><a>v</a></x>
        return (snap conflict { replace value of node $x/a with 'w' }, string($x/a))|}
      "w";
  ]

let purity =
  [
    tc "replace value classifies as updating" `Quick (fun () ->
        let prog =
          Core.Normalize.normalize_prog ~is_builtin:Core.Functions.is_builtin
            (P.parse_prog
               "declare variable $x := <x/>; replace value of node $x with 'v'")
        in
        check Alcotest.string "updating" "updating"
          (Core.Static.purity_to_string
             (Core.Static.purity_in_prog prog (Option.get prog.Core.Normalize.body))));
  ]

let suite =
  [
    ("xquf:syntax", syntax_mapping);
    ("xquf:semantics", semantics);
    ("xquf:replace-value", replace_value);
    ("xquf:conflict-r6", conflict_r6);
    ("xquf:purity", purity);
  ]

(* -- XQUF transform (copy ... modify ... return) --------------------- *)

let transform_tests =
  [
    expect "transform leaves the source untouched"
      {|let $src := <e><a/></e>
        let $out := copy $c := $src modify delete node $c/a return $c
        return (count($src/a), count($out/a))|}
      "1 0";
    expect "transform modify applies before return"
      {|copy $c := <e count="0"/>
        modify replace value of node $c/@count with 42
        return string($c/@count)|}
      "42";
    expect "multiple copy bindings"
      {|copy $a := <x>1</x>, $b := <y>2</y>
        modify (rename node $a as 'z', rename node $b as 'z')
        return concat(name($a), name($b))|}
      "zz";
    expect "transform composes with XQuery! snap"
      {|let $log := <log/>
        let $out := copy $c := <v/> modify insert node <m/> into $c
                    return (snap insert {<entry/>} into {$log}, $c)
        return (count($out/m), count($log/entry))|}
      "1 1";
    expect "transform result can be any expression"
      {|copy $c := <e><n>3</n></e>
        modify replace value of node $c/n with 4
        return xs:integer($c/n) * 10|}
      "40";
    tc "transform pretty round-trips" `Quick (fun () ->
        let src = "copy $c := <a/> modify delete node $c return $c" in
        let e = Xqb_syntax.Parser.parse_expr_string src in
        (match e with A.Transform ([ _ ], _, _) -> () | _ -> Alcotest.fail "not a transform");
        let printed = Xqb_syntax.Pretty.expr_to_string e in
        (* source locations differ between the two parses, so compare
           modulo locations via a reprint *)
        check Alcotest.string "reparses equal" printed
          (Xqb_syntax.Pretty.expr_to_string
             (Xqb_syntax.Parser.parse_expr_string printed)));
  ]

let suite = suite @ [ ("xquf:transform", transform_tests) ]
