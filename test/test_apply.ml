(* S5/E2: the three update-application semantics of §3.2 and the
   conflict-detection rules, including the qcheck property behind the
   conflict-detection design: a ∆ that passes verification yields the
   same store under *every* permutation. *)

open Helpers
module Store = Xqb_store.Store
module Update = Core.Update
module Apply = Core.Apply
module Conflict = Core.Conflict

(* Hand-built deltas: ops wrapped into requests (no provenance). *)
let rq = Update.make
let rqs = List.map Update.make

(* Build a store with a root <x/> plus n fresh <e{i}/> roots to
   insert. *)
let setup n =
  let store = Store.create () in
  let doc = Store.load_string store "<x><a/><b/></x>" in
  let x = List.hd (Store.children store doc) in
  let fresh = List.init n (fun i -> Store.make_element store (qn (Printf.sprintf "e%d" i))) in
  (store, x, fresh)

let serialize store x = Store.serialize store x

let ordered_tests =
  [
    tc "ordered applies in delta order" `Quick (fun () ->
        let store, x, fresh = setup 3 in
        let delta =
          List.map
            (fun n ->
              rq (Update.Insert { nodes = [ n ]; parent = x; position = Update.Last }))
            fresh
        in
        Apply.apply store Apply.Ordered delta;
        check Alcotest.string "xml"
          "<x><a></a><b></b><e0></e0><e1></e1><e2></e2></x>"
          (serialize store x));
    tc "failure rolls back everything" `Quick (fun () ->
        let store, x, fresh = setup 2 in
        let before = serialize store x in
        let bad =
          (* second request inserts a node that just got a parent *)
          rqs
            [
              Update.Insert { nodes = [ List.nth fresh 0 ]; parent = x; position = Update.Last };
              Update.Insert { nodes = [ List.nth fresh 0 ]; parent = x; position = Update.Last };
            ]
        in
        (match Apply.apply store Apply.Ordered bad with
        | _ -> Alcotest.fail "expected Update_error"
        | exception Store.Update_error _ -> ());
        check Alcotest.string "unchanged" before (serialize store x);
        check (Alcotest.list Alcotest.string) "invariants" [] (Store.validate store));
    tc "before/after anchors resolve at application time" `Quick (fun () ->
        let store, x, fresh = setup 2 in
        let a = List.hd (Store.children store x) in
        let delta =
          rqs
            [
              Update.Insert { nodes = [ List.nth fresh 0 ]; parent = x; position = Update.After a };
              Update.Insert { nodes = [ List.nth fresh 1 ]; parent = x; position = Update.Before a };
            ]
        in
        Apply.apply store Apply.Ordered delta;
        check Alcotest.string "xml"
          "<x><e1></e1><a></a><e0></e0><b></b></x>"
          (serialize store x));
  ]

let nondet_tests =
  [
    tc "nondeterministic permutes by seed" `Quick (fun () ->
        (* With enough independent same-slot inserts, two different
           seeds are overwhelmingly likely to give different orders;
           the same seed must give the same order. *)
        let run seed =
          let store, x, fresh = setup 6 in
          let delta =
            List.map
              (fun n ->
                rq (Update.Insert { nodes = [ n ]; parent = x; position = Update.Last }))
              fresh
          in
          Apply.apply ~rand_state:(Random.State.make [| seed |]) store
            Apply.Nondeterministic delta;
          serialize store x
        in
        check Alcotest.string "same seed, same result" (run 7) (run 7);
        check Alcotest.bool "different seeds differ somewhere" true
          (List.exists (fun s -> run s <> run 7) [ 1; 2; 3; 4; 5 ]));
    tc "order-independent deltas agree across seeds" `Quick (fun () ->
        let run seed =
          let store, x, _ = setup 0 in
          let kids = Store.children store x in
          let delta = List.map (fun k -> rq (Update.Delete k)) kids in
          Apply.apply ~rand_state:(Random.State.make [| seed |]) store
            Apply.Nondeterministic delta;
          serialize store x
        in
        check Alcotest.string "same" (run 1) (run 42));
  ]

let conflict_rules =
  let insert_last nodes parent =
    rq (Update.Insert { nodes; parent; position = Update.Last })
  in
  [
    tc "R1: two inserts on the same slot" `Quick (fun () ->
        check Alcotest.bool "conflict" false
          (Conflict.is_conflict_free [ insert_last [ 10 ] 1; insert_last [ 11 ] 1 ]));
    tc "R1: different parents are fine" `Quick (fun () ->
        check Alcotest.bool "free" true
          (Conflict.is_conflict_free [ insert_last [ 10 ] 1; insert_last [ 11 ] 2 ]));
    tc "R1: first vs last on same parent are distinct slots" `Quick (fun () ->
        check Alcotest.bool "free" true
          (Conflict.is_conflict_free
             [
               rq (Update.Insert { nodes = [ 10 ]; parent = 1; position = Update.First });
               insert_last [ 11 ] 1;
             ]));
    tc "R2: insert anchored on a deleted node" `Quick (fun () ->
        check Alcotest.bool "conflict" false
          (Conflict.is_conflict_free
             (rqs
                [
                  Update.Insert { nodes = [ 10 ]; parent = 1; position = Update.After 5 };
                  Update.Delete 5;
                ]));
        (* in either order *)
        check Alcotest.bool "conflict" false
          (Conflict.is_conflict_free
             (rqs
                [
                  Update.Delete 5;
                  Update.Insert { nodes = [ 10 ]; parent = 1; position = Update.Before 5 };
                ])));
    tc "R3: same node inserted twice" `Quick (fun () ->
        check Alcotest.bool "conflict" false
          (Conflict.is_conflict_free [ insert_last [ 10 ] 1; insert_last [ 10 ] 2 ]));
    tc "R4: node both inserted and deleted" `Quick (fun () ->
        check Alcotest.bool "conflict" false
          (Conflict.is_conflict_free [ insert_last [ 10 ] 1; rq (Update.Delete 10) ]);
        check Alcotest.bool "conflict" false
          (Conflict.is_conflict_free [ rq (Update.Delete 10); insert_last [ 10 ] 1 ]));
    tc "R5: diverging renames" `Quick (fun () ->
        check Alcotest.bool "conflict" false
          (Conflict.is_conflict_free
             (rqs [ Update.Rename (3, qn "a"); Update.Rename (3, qn "b") ]));
        check Alcotest.bool "same name ok" true
          (Conflict.is_conflict_free
             (rqs [ Update.Rename (3, qn "a"); Update.Rename (3, qn "a") ])));
    tc "independent mix is conflict-free" `Quick (fun () ->
        check Alcotest.bool "free" true
          (Conflict.is_conflict_free
             [
               insert_last [ 10 ] 1;
               rq (Update.Insert { nodes = [ 11 ]; parent = 2; position = Update.First });
               rq (Update.Delete 7);
               rq (Update.Delete 7);
               rq (Update.Rename (8, qn "n"));
             ]));
    tc "deletes of the same node commute" `Quick (fun () ->
        check Alcotest.bool "free" true
          (Conflict.is_conflict_free (rqs [ Update.Delete 7; Update.Delete 7 ])));
  ]

let conflict_engine =
  [
    expect_error "conflicting snap fails"
      {|let $x := <x/>
        return snap conflict { insert {<a/>} into {$x}, insert {<b/>} into {$x} }|}
      (fun e -> match e with Core.Conflict.Conflict_error _ -> true | _ -> false);
    expect "store untouched after rejected conflict snap"
      {|let $x := <x><keep/></x>
        let $r := (
          (: trap the conflict in a sibling snap: not expressible in
             the language, so check from the outside that a rejected
             snap earlier in the program leaves the store intact —
             covered by the engine test; here verify the positive
             case :)
          snap conflict { insert {<a/>} into {$x}, rename {$x/keep} to {'kept'} }
        )
        return ($x/kept is $x/*[1], count($x/a))|}
      "true 1";
    expect "conflict-free snap applies in any order"
      {|let $x := <x><a/><b/></x>
        return (snap conflict { delete {$x/a}, rename {$x/b} to {'z'} }, $x)|}
      "<x><z></z></x>";
  ]

(* -- The E2 property: conflict-free ⇒ permutation-independent ------- *)

(* Generate random deltas over a fixed store shape, apply under every
   permutation (n ≤ 4 requests): if the conflict checker accepts, all
   permutations must agree. This is the soundness property of the
   §3.2 conflict-detection semantics. *)
let gen_requests =
  let open QCheck2.Gen in
  list_size (int_range 1 4)
    (oneof
       [
         map2 (fun parent fresh -> `Ins (parent, fresh)) (int_bound 3) (int_bound 3);
         map (fun t -> `Del t) (int_bound 3);
         map2 (fun t n -> `Ren (t, n)) (int_bound 3) (oneofl [ "m"; "n" ]);
         map2 (fun t v -> `SetV (t, v)) (int_bound 3) (oneofl [ "u"; "w" ]);
       ])

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let conflict_free_is_order_independent =
  qtest ~count:300 "conflict-free deltas commute (E2 soundness)" gen_requests
    (fun spec ->
      (* Materialize the delta against a fresh store; node ids are
         deterministic, so the same spec builds the same delta in
         every run. *)
      let build () =
        let store = Store.create () in
        let doc = Store.load_string store "<r><p0/><p1/><p2/><p3/></r>" in
        let r = List.hd (Store.children store doc) in
        let parents = Store.children store r in
        let fresh = List.init 4 (fun i -> Store.make_element store (qn (Printf.sprintf "f%d" i))) in
        let delta =
          rqs
            (List.map
               (function
                 | `Ins (p, f) ->
                   Update.Insert
                     {
                       nodes = [ List.nth fresh f ];
                       parent = List.nth parents p;
                       position = Update.Last;
                     }
                 | `Del t -> Update.Delete (List.nth parents t)
                 | `Ren (t, n) -> Update.Rename (List.nth parents t, qn n)
                 | `SetV (t, v) -> Update.Set_value (List.nth parents t, v))
               spec)
        in
        (store, doc, delta)
      in
      let _, _, delta0 = build () in
      if not (Conflict.is_conflict_free delta0) then true (* property vacuous *)
      else begin
        let results =
          List.map
            (fun perm ->
              let store, doc, delta = build () in
              let permuted = List.map (fun i -> List.nth delta i) perm in
              match Apply.apply store Apply.Ordered permuted with
              | () -> Some (Store.serialize store doc)
              | exception _ -> None)
            (permutations (List.init (List.length delta0) Fun.id))
        in
        match results with
        | [] -> true
        | first :: rest ->
          if List.for_all (fun r -> r = first) rest then true
          else
            QCheck2.Test.fail_reportf
              "conflict-free delta diverged under permutation: %s"
              (Update.delta_to_string delta0)
      end)

(* The checker itself must not depend on ∆ order: acceptance of a ∆
   is a property of its *set* of requests (it decides whether all
   permutations commute), so permuting the input must not change the
   verdict. *)
let checker_permutation_insensitive =
  qtest ~count:200 "Conflict.check is permutation-insensitive"
    QCheck2.Gen.(
      pair gen_requests (int_bound 1000))
    (fun (spec, seed) ->
      let mk specs =
        rqs
          (List.map
             (function
               | `Ins (p, f) ->
                 Update.Insert
                   { nodes = [ 100 + f ]; parent = p; position = Update.Last }
               | `Del t -> Update.Delete t
               | `Ren (t, n) -> Update.Rename (t, qn n)
               | `SetV (t, v) -> Update.Set_value (t, v))
             specs)
      in
      let delta = mk spec in
      let rand = Random.State.make [| seed |] in
      let arr = Array.of_list delta in
      for i = Array.length arr - 1 downto 1 do
        let j = Random.State.int rand (i + 1) in
        let t = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- t
      done;
      Conflict.is_conflict_free delta
      = Conflict.is_conflict_free (Array.to_list arr))

(* -- R1–R6 matrix --------------------------------------------------
   Each conflict rule gets a pair of deltas over the same fixture: a
   conflicting one (must be rejected, leaving the store byte-identical)
   and a conflict-free sibling (must yield the same store under the
   ordered, reversed and several seeded permutations, and under the
   conflict-detection mode itself). *)

type matrix_ctx = {
  store : Store.t;
  doc : Store.node_id;
  x : Store.node_id;
  a : Store.node_id;
  b : Store.node_id;
  c : Store.node_id;
  fresh : Store.node_id list;
}

(* Node ids are allocation-ordered, so rebuilding the fixture gives
   the same ids every time — deltas built against one instance are
   valid against any other. *)
let matrix_fixture () =
  let store = Store.create () in
  let doc = Store.load_string store "<x><a>1</a><b>2</b><c>3</c></x>" in
  let x = List.hd (Store.children store doc) in
  let kids = Store.children store x in
  {
    store;
    doc;
    x;
    a = List.nth kids 0;
    b = List.nth kids 1;
    c = List.nth kids 2;
    fresh =
      List.init 3 (fun i ->
          Store.make_element store (qn (Printf.sprintf "f%d" i)));
  }

let shuffle seed l =
  let arr = Array.of_list l in
  let rand = Random.State.make [| seed |] in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rand (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let matrix_cases =
  let ins ?(pos = Update.Last) n parent =
    rq (Update.Insert { nodes = [ n ]; parent; position = pos })
  in
  let f i m = List.nth m.fresh i in
  [
    ( "R1 two inserts on one slot",
      (fun m -> [ ins (f 0 m) m.x; ins (f 1 m) m.x ]),
      fun m ->
        [
          ins ~pos:Update.First (f 0 m) m.x;
          ins (f 1 m) m.x;
          ins ~pos:(Update.After m.a) (f 2 m) m.x;
        ] );
    ( "R2 insert anchored on a deleted node",
      (fun m -> [ ins ~pos:(Update.Before m.a) (f 0 m) m.x; rq (Update.Delete m.a) ]),
      fun m -> [ ins ~pos:(Update.After m.a) (f 0 m) m.x; rq (Update.Delete m.b) ]
    );
    ( "R3 one node inserted twice",
      (fun m -> [ ins (f 0 m) m.a; ins (f 0 m) m.b ]),
      fun m -> [ ins (f 0 m) m.a; ins (f 1 m) m.b ] );
    ( "R4 node both inserted and deleted",
      (fun m -> [ ins (f 0 m) m.x; rq (Update.Delete (f 0 m)) ]),
      fun m -> [ ins (f 0 m) m.x; rq (Update.Delete m.c) ] );
    ( "R5 diverging renames",
      (fun m -> rqs [ Update.Rename (m.a, qn "m"); Update.Rename (m.a, qn "n") ]),
      fun m ->
        rqs
          [
            Update.Rename (m.a, qn "m");
            Update.Rename (m.a, qn "m");
            Update.Rename (m.b, qn "n");
          ] );
    ( "R6 diverging set-values",
      (fun m -> rqs [ Update.Set_value (m.a, "u"); Update.Set_value (m.a, "w") ]),
      fun m ->
        rqs
          [
            Update.Set_value (m.a, "u");
            Update.Set_value (m.a, "u");
            Update.Set_value (m.b, "w");
          ] );
    ( "R6 set-value vs insert into the same element",
      (fun m -> [ rq (Update.Set_value (m.a, "u")); ins (f 0 m) m.a ]),
      fun m -> [ rq (Update.Set_value (m.a, "u")); ins (f 0 m) m.b ] );
    ( "R6 set-value vs delete of the same node",
      (fun m -> rqs [ Update.Set_value (m.a, "u"); Update.Delete m.a ]),
      fun m -> rqs [ Update.Set_value (m.a, "u"); Update.Delete m.b ] );
  ]

let matrix_tests =
  List.concat_map
    (fun (name, bad, good) ->
      [
        tc (name ^ ": rejected, store byte-identical") `Quick (fun () ->
            let m = matrix_fixture () in
            let before = Store.serialize m.store m.doc in
            (match Apply.apply m.store Apply.Conflict_detection (bad m) with
            | () -> Alcotest.fail "expected Conflict"
            | exception Conflict.Conflict_error _ -> ());
            check Alcotest.string "byte-identical" before
              (Store.serialize m.store m.doc);
            check
              (Alcotest.list Alcotest.string)
              "invariants hold" [] (Store.validate m.store));
        tc (name ^ ": conflict-free sibling commutes") `Quick (fun () ->
            let m0 = matrix_fixture () in
            check Alcotest.bool "accepted" true
              (Conflict.is_conflict_free (good m0));
            let run permute =
              let m = matrix_fixture () in
              Apply.apply m.store Apply.Ordered (permute (good m));
              Store.serialize m.store m.doc
            in
            let reference = run Fun.id in
            List.iteri
              (fun i result ->
                check Alcotest.string
                  (Printf.sprintf "permutation %d" i)
                  reference result)
              (run List.rev
              :: List.map (fun seed -> run (shuffle seed)) [ 3; 17; 29; 41 ]);
            (* and the mode under test itself, which permutes
               internally after verification *)
            let m = matrix_fixture () in
            Apply.apply
              ~rand_state:(Random.State.make [| 99 |])
              m.store Apply.Conflict_detection (good m);
            check Alcotest.string "conflict-detection mode agrees" reference
              (Store.serialize m.store m.doc));
      ])
    matrix_cases

let suite =
  [
    ("apply:ordered", ordered_tests);
    ("apply:rule-matrix", matrix_tests);
    ("apply:checker-insensitive", [ checker_permutation_insensitive ]);
    ("apply:nondeterministic", nondet_tests);
    ("apply:conflict-rules", conflict_rules);
    ("apply:conflict-engine", conflict_engine);
    ("apply:permutation-property", [ conflict_free_is_order_independent ]);
  ]
