(* Static ddo-elision (Static.elide_ddo): the analysis may only
   remove sorts it can prove redundant, so an elided run must be
   indistinguishable from an unelided one — results and side effects
   both — while the counters prove sorts actually were removed.
   Reuses the tiny-auction harness from Test_explain. *)

open Helpers
module Runner = Xqb_algebra.Runner
module Engine = Core.Engine

let contains needle s = Re.execp (Re.compile (Re.str needle)) s

(* The tiny-auction document as doc("auction"): the analysis proves
   single-rootedness for doc() calls and FLWOR binders, but not for
   global variables (a global can be rebound to an arbitrary
   sequence), so the rooted-path tests query through doc(). *)
let engine () =
  let eng = Engine.create () in
  ignore (Engine.load_document eng ~uri:"auction" Test_explain.tiny_auction);
  eng

(* Run [src] twice on fresh engines, with and without elision, and
   insist on identical serialized results. Returns the elision site
   count from the default compile. *)
let same_both_ways name src =
  let eng1 = engine () in
  let c1 = Engine.compile eng1 src in
  let v1 = Engine.serialize eng1 (Engine.run_compiled eng1 c1) in
  let eng2 = engine () in
  let c2 = Engine.compile ~elide_ddo:false eng2 src in
  let v2 = Engine.serialize eng2 (Engine.run_compiled eng2 c2) in
  check Alcotest.string name v1 v2;
  check (Alcotest.option Alcotest.int) (name ^ ": no elision when off") None
    (List.assoc_opt "ddo-elide" c2.Engine.rewrites);
  List.assoc_opt "ddo-elide" c1.Engine.rewrites

let elision_count name src =
  tc name `Quick (fun () ->
      match same_both_ways name src with
      | Some n when n > 0 -> ()
      | other ->
        Alcotest.failf "%s: expected elision sites, got %s" name
          (match other with None -> "none" | Some n -> string_of_int n))

(* Queries where the analysis must stay conservative: same answers,
   and the sort still runs (dup-producing or order-breaking shapes). *)
let no_elision_needed name src =
  tc name `Quick (fun () -> ignore (same_both_ways name src))

let tests =
  [
    (* -- equivalence, effects included ---------------------------- *)
    tc "elided Q8 = unelided Q8, inserts included" `Quick (fun () ->
        let eng1 = Test_explain.engine () in
        let c1 = Engine.compile eng1 Test_explain.q8 in
        let obs1 = Test_explain.observe eng1 (Engine.run_compiled eng1 c1) in
        let eng2 = Test_explain.engine () in
        let c2 = Engine.compile ~elide_ddo:false eng2 Test_explain.q8 in
        let obs2 = Test_explain.observe eng2 (Engine.run_compiled eng2 c2) in
        check (Alcotest.pair Alcotest.string Alcotest.string)
          "result and effects" obs1 obs2;
        check Alcotest.string "pinned result"
          {|<item person="Alice">2</item><item person="Bob">0</item><item person="Cara">1</item>|}
          (fst obs1);
        check Alcotest.string "pinned effects" "p1:i1 p1:i2 p3:i3" (snd obs1);
        (* Q8's paths are all downward single-binder chains *)
        check Alcotest.bool "elision fired on Q8" true
          (List.assoc_opt "ddo-elide" c1.Engine.rewrites <> None));
    tc "interpreter = plan on an elided updating query" `Quick (fun () ->
        let src =
          {|for $p in $auction//person
            return (insert { <seen/> } into { $purchasers }, $p/name/text())|}
        in
        let eng_i = Test_explain.engine () in
        let interp = Test_explain.observe eng_i (Engine.run eng_i src) in
        let eng_p = Test_explain.engine () in
        let r = Runner.run eng_p src in
        let planned = Test_explain.observe eng_p r.Runner.value in
        check (Alcotest.pair Alcotest.string Alcotest.string)
          "result and effects" interp planned);
    (* -- elision fires on the provable shapes --------------------- *)
    elision_count "descendant chain" {|count(doc("auction")//person)|};
    elision_count "child chain"
      {|count(doc("auction")/site/people/person/name)|};
    elision_count "per-binder paths"
      {|for $p in doc("auction")//person return count($p/name)|};
    elision_count "positional predicate"
      {|(doc("auction")//person)[2]/name|};
    elision_count "preceding rooted at a single node"
      {|count((doc("auction")//itemref)[1]/preceding::person)|};
    (* -- and stays conservative where it must --------------------- *)
    no_elision_needed "dup-producing parent step"
      {|count((doc("auction")//itemref, doc("auction")//buyer)/parent::closed_auction)|};
    no_elision_needed "nested descendants"
      {|count(doc("auction")//closed_auction//buyer)|};
    no_elision_needed "union of paths"
      {|count(doc("auction")//buyer | doc("auction")//itemref)|};
    (* -- counters and EXPLAIN rendering --------------------------- *)
    tc "runner counts elided sorts" `Quick (fun () ->
        let eng = engine () in
        let r = Runner.run eng {|doc("auction")//person/name|} in
        check Alcotest.bool "ddo_elided > 0" true (r.Runner.ddo_elided > 0));
    tc "EXPLAIN shows the elided DDO operator" `Quick (fun () ->
        let eng = engine () in
        let s = Runner.explain eng {|doc("auction")//person|} in
        if not (contains "DDO (elided)" s) then
          Alcotest.failf "no elided DDO in plan:\n%s" s);
    tc "EXPLAIN keeps unelided DDO visible" `Quick (fun () ->
        let eng = Test_explain.engine () in
        let s =
          Runner.explain eng
            {|($auction//itemref, $auction//buyer)/parent::closed_auction|}
        in
        if not (contains "DDO" s) then Alcotest.failf "no DDO in plan:\n%s" s;
        if contains "DDO (elided)" s then
          Alcotest.failf "dup-producing path wrongly elided:\n%s" s);
    tc "EXPLAIN ANALYZE renders the elision counter" `Quick (fun () ->
        let eng = engine () in
        let r, rendered = Runner.analyze eng {|doc("auction")//person/name|} in
        check Alcotest.bool "counter positive" true (r.Runner.ddo_elided > 0);
        if not (contains "ddo sorts elided" rendered) then
          Alcotest.failf "no elision line in render:\n%s" rendered);
  ]

let suite = [ ("ddo elision", tests) ]
