(* Aggregate test runner: every module contributes a list of
   (suite name, test cases). *)

let () =
  Alcotest.run "xquery_bang"
    (List.concat
       [
         Test_xml.suite;
         Test_store.suite;
         Test_axes.suite;
         Test_xdm.suite;
         Test_lexer.suite;
         Test_parser.suite;
         Test_pretty.suite;
         Test_normalize.suite;
         Test_eval_xquery.suite;
         Test_functions.suite;
         Test_eval_updates.suite;
         Test_snap.suite;
         Test_apply.suite;
         Test_types.suite;
         Test_static.suite;
         Test_optimizer.suite;
         Test_xmark.suite;
         Test_engine.suite;
         Test_usecase.suite;
         Test_extensions.suite;
         Test_conformance.suite;
         Test_update_matrix.suite;
         Test_xquf.suite;
         Test_rewrite.suite;
         Test_typing.suite;
         Test_fuzz.suite;
         Test_index.suite;
         Test_xmark_queries.suite;
         Test_service.suite;
         Test_obs.suite;
         Test_explain.suite;
         Test_order_keys.suite;
         Test_ddo_elision.suite;
         Test_journal.suite;
         Test_wal.suite;
         Test_footprint.suite;
         Test_edge.suite;
         Test_profile.suite;
       ])
