(* The static effects footprint (Core.Static.Footprint) and the
   footprint gate (Xqb_service.Rwlock) behind the scheduler.

   The contract under test, end to end:

   - inference: literal-doc plans get precise (document, path-prefix)
     regions; dynamic [fn:doc] URIs, upward axes and user functions
     widen to "any document" (inconclusive);
   - independence is *sound*: if two programs' footprints are
     independent, running them in either order produces identical
     stores (commutativity — the behavioral form of "no R1–R7
     conflict on any interleaving", checked by qcheck below);
   - inconclusive footprints fall back to exclusion: an any-document
     write region conflicts with every reader and writer, so the gate
     degrades to the old single-writer lock;
   - the gate itself: under 8 domains hammering two documents, no two
     conflicting footprints are ever admitted concurrently, while
     independent ones genuinely overlap. *)

open Helpers
module FP = Core.Static.Footprint
module RW = Xqb_service.Rwlock
module Engine = Core.Engine

(* Compile [src] against an engine with documents [da]/[db] loaded
   and return its inferred footprint. *)
let docs_xml = "<r><x><a>one</a></x><y><a>two</a></y></r>"

let fresh_engine () =
  let eng = Engine.create ~seed:77 () in
  List.iter
    (fun uri ->
      let d = Engine.load_document eng ~uri docs_xml in
      Engine.bind_node eng uri d)
    [ "da"; "db" ];
  eng

let fp_of src =
  let eng = fresh_engine () in
  let c = Engine.compile eng src in
  Engine.footprint
    ~var_docs:(fun v -> if v = "da" || v = "db" then Some v else None)
    c

let mentions_doc uri fp =
  List.exists (fun r -> r.FP.rdoc = FP.Named uri) fp.FP.reads

let inference =
  [
    tc "a literal-doc read is precise and write-free" `Quick (fun () ->
        let fp = fp_of "count(doc('da')//a)" in
        check Alcotest.bool "writes nothing" true (FP.writes_nothing fp);
        check Alcotest.bool "conclusive" true (FP.conclusive fp);
        check Alcotest.bool "names da" true (mentions_doc "da" fp));
    tc "host-bound $uri names its document" `Quick (fun () ->
        let fp = fp_of "count($da//a)" in
        check Alcotest.bool "conclusive" true (FP.conclusive fp);
        check Alcotest.bool "names da" true (mentions_doc "da" fp));
    tc "writers on distinct documents are independent" `Quick (fun () ->
        let w_a = fp_of "insert {<hit/>} into {doc('da')/r}" in
        let w_b = fp_of "insert {<hit/>} into {doc('db')/r}" in
        check Alcotest.bool "write regions present" false
          (FP.writes_nothing w_a);
        check Alcotest.bool "disjoint docs commute" true
          (FP.independent w_a w_b));
    tc "a writer conflicts with a reader of the same document" `Quick
      (fun () ->
        let w = fp_of "insert {<hit/>} into {doc('da')/r}" in
        let r = fp_of "count(doc('da')//a)" in
        check Alcotest.bool "same doc conflicts" false (FP.independent w r);
        let r' = fp_of "count(doc('db')//a)" in
        check Alcotest.bool "other doc is fine" true (FP.independent w r'));
    tc "disjoint subtrees of one document are independent" `Quick (fun () ->
        let w = fp_of "insert {<hit/>} into {doc('da')/r/x}" in
        let r = fp_of "string(doc('da')/r/y)" in
        check Alcotest.bool "sibling subtrees commute" true
          (FP.independent w r);
        let r_overlap = fp_of "string(doc('da')/r/x/a)" in
        check Alcotest.bool "nested read conflicts" false
          (FP.independent w r_overlap));
    tc "a dynamic doc URI is inconclusive" `Quick (fun () ->
        (* the URI comes out of the store, so no amount of constant
           propagation can name the document statically *)
        let fp = fp_of "count(doc(string(doc('da')/r/x/a))//a)" in
        check Alcotest.bool "not conclusive" false (FP.conclusive fp);
        let w = fp_of "insert {<hit/>} into {doc('db')/r}" in
        check Alcotest.bool "excludes every writer" false
          (FP.independent fp w));
    tc "a user function call widens to any document" `Quick (fun () ->
        let fp =
          fp_of
            "declare function local:f() { doc('da')//a }; count(local:f())"
        in
        check Alcotest.bool "not conclusive" false (FP.conclusive fp));
    tc "an inconclusive write excludes everything (fallback)" `Quick
      (fun () ->
        (* any-document write region: conflicts with every reader and
           writer, i.e. the gate degrades to the exclusive lock *)
        check Alcotest.bool "top vs read_all" false
          (FP.independent FP.top FP.read_all);
        check Alcotest.bool "top vs top" false (FP.independent FP.top FP.top);
        check Alcotest.bool "read/read always fine" true
          (FP.independent FP.read_all FP.read_all);
        let w = fp_of "insert {<hit/>} into {doc('da')/r}" in
        check Alcotest.bool "top vs a precise writer" false
          (FP.independent FP.top w));
  ]

(* -- soundness: independent footprints commute ----------------------- *)

(* A small pool of programs with statically analyzable and
   deliberately overlapping shapes: single-request updates and reads
   over two documents and two sibling subtrees, plus a dynamic-URI
   variant the analysis must refuse to approve. *)
let pool =
  [
    "insert {<hit/>} into {doc('da')/r/x}";
    "insert {<hit/>} into {doc('da')/r/y}";
    "insert {<hit/>} into {doc('db')/r/x}";
    "delete {doc('da')/r/x/a}";
    "delete {doc('db')/r/y}";
    "rename {(doc('da')/r/y)[1]} to {'z'}";
    "count(doc('da')//a)";
    "string(doc('da')/r/y)";
    "string(doc('db')/r/x)";
    "count(doc('db')//a)";
    "count(doc(string(doc('da')/r/x/a))//a)";
  ]

let state eng =
  String.concat "|"
    (List.map
       (fun uri -> Engine.serialize eng (Engine.run eng ("doc('" ^ uri ^ "')")))
       [ "da"; "db" ])

(* Run [a] then [b] on a fresh store; outcomes (including errors) and
   the final store state are both part of the observation. *)
let run_pair a b =
  let eng = fresh_engine () in
  let go src =
    match Engine.run eng src with
    | v -> Ok (Engine.serialize eng v)
    | exception e -> Error (Printexc.to_string e)
  in
  let oa = go a in
  let ob = go b in
  (oa, ob, state eng)

let var_docs v = if v = "da" || v = "db" then Some v else None

let fp_cache = Hashtbl.create 16

let footprint_of src =
  match Hashtbl.find_opt fp_cache src with
  | Some fp -> fp
  | None ->
    let eng = fresh_engine () in
    let fp = Engine.footprint ~var_docs (Engine.compile eng src) in
    Hashtbl.add fp_cache src fp;
    fp

let commute =
  qtest ~count:200 "independent footprints commute (both orders agree)"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 100000))
    (fun (i, j) ->
      let a = List.nth pool (i mod List.length pool) in
      let b = List.nth pool (j mod List.length pool) in
      if not (FP.independent (footprint_of a) (footprint_of b)) then true
        (* conflicting footprints serialize in the gate; nothing to
           check here *)
      else begin
        let oa1, ob1, s1 = run_pair a b in
        let ob2, oa2, s2 = run_pair b a in
        if oa1 = oa2 && ob1 = ob2 && s1 = s2 then true
        else
          QCheck2.Test.fail_reportf
            "independent plans did not commute:@.A: %s@.B: %s@.store A;B: \
             %s@.store B;A: %s"
            a b s1 s2
      end)

(* -- the gate under contention ---------------------------------------- *)

(* 8 domains over two documents: per-document reader/writer counters
   (guarded by a plain mutex) assert the gate's invariant — never two
   conflicting footprints admitted at once — while cross-document
   pairs are free to overlap. *)
let gate_smoke =
  tc "footprint gate linearizability smoke (8 domains)" `Slow (fun () ->
      let g = RW.create () in
      let reg d = { FP.rdoc = FP.Named d; rpath = []; ranchored = true } in
      let wfp d = { FP.reads = [ reg d ]; FP.writes = [ reg d ] } in
      let rfp d = { FP.reads = [ reg d ]; FP.writes = [] } in
      let m = Mutex.create () in
      let writers = [| 0; 0 |] and readers = [| 0; 0 |] in
      let violations = ref [] in
      let enter i is_writer =
        Mutex.lock m;
        if is_writer then begin
          if writers.(i) > 0 then
            violations := "two writers on one doc" :: !violations;
          if readers.(i) > 0 then
            violations := "writer admitted over readers" :: !violations;
          writers.(i) <- writers.(i) + 1
        end
        else begin
          if writers.(i) > 0 then
            violations := "reader admitted over a writer" :: !violations;
          readers.(i) <- readers.(i) + 1
        end;
        Mutex.unlock m
      in
      let leave i is_writer =
        Mutex.lock m;
        if is_writer then writers.(i) <- writers.(i) - 1
        else readers.(i) <- readers.(i) - 1;
        Mutex.unlock m
      in
      let work (doc_idx, is_writer) () =
        let fp =
          let d = if doc_idx = 0 then "d0" else "d1" in
          if is_writer then wfp d else rfp d
        in
        for _ = 1 to 40 do
          RW.with_footprint g fp (fun () ->
              enter doc_idx is_writer;
              Unix.sleepf 0.0005;
              leave doc_idx is_writer)
        done
      in
      let roles =
        [
          (0, true); (1, true); (0, false); (1, false);
          (0, false); (1, false); (0, true); (1, true);
        ]
      in
      let ds = List.map (fun r -> Domain.spawn (work r)) roles in
      List.iter Domain.join ds;
      check
        Alcotest.(list string)
        "no admission violations" [] !violations;
      (* independent footprints really do overlap: with readers on
         both documents and writers on both documents, the peak must
         exceed one admitted job *)
      check Alcotest.bool "concurrency happened" true (RW.peak g > 1))

let suite =
  [
    ("footprint:inference", inference);
    ("footprint:soundness", [ commute ]);
    ("footprint:gate", [ gate_smoke ]);
  ]
