(* S5: static analyses — scoping, free variables, and the §5
   pure/updating/effecting classification with its call-graph
   fixpoint ("a function that calls an updating function is updating
   as well"). *)

open Helpers
module C = Core.Core_ast
module N = Core.Normalize
module Static = Core.Static

let normalize_prog src =
  N.normalize_prog ~is_builtin:Core.Functions.is_builtin
    (Xqb_syntax.Parser.parse_prog src)

let body src = Option.get (normalize_prog src).N.body

let scoping =
  [
    expect_error "unbound variable" "$nope" compile_error;
    expect_error "for variable does not leak" "(for $x in (1) return $x, $x)"
      compile_error;
    expect_error "let body scope only" "(let $x := 1 return 2, $x)" compile_error;
    expect_error "posvar scope" "(for $x at $i in (1) return $i, $i)" compile_error;
    expect_error "quantifier scope" "(some $q in (1) satisfies $q, $q)" compile_error;
    expect_error "function params are local"
      "declare function f($p) { $p }; $p" compile_error;
    expect_error "later global not visible earlier"
      "declare variable $a := $b; declare variable $b := 1; $a" compile_error;
    expect "earlier global visible later"
      "declare variable $a := 1; declare variable $b := $a + 1; $b" "2";
    expect "order-by keys are in scope"
      "for $x in (2,1) order by $x return $x" "1 2";
  ]

let free_vars_tests =
  let fv src = Static.SSet.elements (Static.free_vars (body src)) in
  [
    tc "simple var" `Quick (fun () ->
        check (Alcotest.list Alcotest.string) "fv" [ "x" ] (fv "declare variable $x := 1; $x"));
    tc "bound for-var excluded" `Quick (fun () ->
        check (Alcotest.list Alcotest.string) "fv" [ "s" ]
          (fv "declare variable $s := 1; for $x in $s return $x"));
    tc "inner flwor over outer var" `Quick (fun () ->
        check (Alcotest.list Alcotest.string) "fv" [ "a"; "b" ]
          (fv
             "declare variable $a := 1; declare variable $b := 1; for $p in $a return (for $t in $b return ($p, $t))"));
    tc "shadowing" `Quick (fun () ->
        check (Alcotest.list Alcotest.string) "fv" [ "x" ]
          (fv "declare variable $x := 1; ($x, for $x in (1) return $x)"));
  ]

let purity_lookup_pure _ _ = Static.Pure

let purity =
  let p src = Static.purity_with purity_lookup_pure (body src) in
  [
    tc "pure expressions" `Quick (fun () ->
        check Alcotest.string "arith" "pure" (Static.purity_to_string (p "1 + 2"));
        check Alcotest.string "flwor" "pure"
          (Static.purity_to_string (p "for $x in (1,2) return $x * 2"));
        check Alcotest.string "ctor" "pure"
          (Static.purity_to_string (p "<a>{1}</a>")));
    tc "updating expressions" `Quick (fun () ->
        check Alcotest.string "insert" "updating"
          (Static.purity_to_string
             (p "declare variable $x := 1; insert {<a/>} into {$x}"));
        check Alcotest.string "delete in flwor" "updating"
          (Static.purity_to_string
             (p "declare variable $x := 1; for $i in (1) return delete {$x}"));
        check Alcotest.string "rename" "updating"
          (Static.purity_to_string
             (p "declare variable $x := 1; rename {$x} to {'y'}"));
        check Alcotest.string "replace" "updating"
          (Static.purity_to_string
             (p "declare variable $x := 1; replace {$x} with {1}")));
    tc "effecting expressions" `Quick (fun () ->
        check Alcotest.string "snap" "effecting"
          (Static.purity_to_string
             (p "declare variable $x := 1; snap { insert {<a/>} into {$x} }"));
        check Alcotest.string "snap in branch" "effecting"
          (Static.purity_to_string
             (p "declare variable $x := 1; if (1) then snap { delete {$x} } else ()")));
    tc "copy alone is pure" `Quick (fun () ->
        check Alcotest.string "copy" "pure"
          (Static.purity_to_string (p "declare variable $x := 1; copy {$x}")));
  ]

let fixpoint =
  [
    tc "function classification fixpoint" `Quick (fun () ->
        let prog =
          normalize_prog
            {|declare variable $x := <x/>;
              declare function pure_fn($a) { $a + 1 };
              declare function upd_fn() { insert {<a/>} into {$x} };
              declare function calls_upd() { upd_fn() };
              declare function calls_calls() { calls_upd() };
              declare function eff_fn() { snap { upd_fn() } };
              declare function calls_eff() { eff_fn() };
              declare function rec_pure($n) { if ($n = 0) then 0 else rec_pure($n - 1) };
              1|}
        in
        let classes = Static.classify_functions prog.N.functions in
        let find name =
          let _, _, p =
            List.find (fun (f, _, _) -> Xqb_xml.Qname.to_string f = name) classes
          in
          Static.purity_to_string p
        in
        check Alcotest.string "pure_fn" "pure" (find "pure_fn");
        check Alcotest.string "upd_fn" "updating" (find "upd_fn");
        check Alcotest.string "calls_upd" "updating" (find "calls_upd");
        check Alcotest.string "calls_calls" "updating" (find "calls_calls");
        check Alcotest.string "eff_fn" "effecting" (find "eff_fn");
        check Alcotest.string "calls_eff" "effecting" (find "calls_eff");
        check Alcotest.string "rec_pure" "pure" (find "rec_pure"));
    tc "purity_in_prog sees function classes" `Quick (fun () ->
        let prog =
          normalize_prog
            {|declare variable $x := <x/>;
              declare function upd() { insert {<a/>} into {$x} };
              upd()|}
        in
        check Alcotest.string "body" "updating"
          (Static.purity_to_string
             (Static.purity_in_prog prog (Option.get prog.N.body))));
    tc "mutually recursive updating pair" `Quick (fun () ->
        let prog =
          normalize_prog
            {|declare variable $x := <x/>;
              declare function f($n) { if ($n = 0) then delete {$x} else g($n - 1) };
              declare function g($n) { f($n) };
              1|}
        in
        let classes = Static.classify_functions prog.N.functions in
        check Alcotest.bool "both updating" true
          (List.for_all (fun (_, _, p) -> p = Static.Updating) classes));
  ]

let join_meet =
  [
    tc "purity join" `Quick (fun () ->
        check Alcotest.bool "pure+updating" true
          (Static.join Static.Pure Static.Updating = Static.Updating);
        check Alcotest.bool "updating+effecting" true
          (Static.join Static.Updating Static.Effecting = Static.Effecting);
        check Alcotest.bool "pure+pure" true
          (Static.join Static.Pure Static.Pure = Static.Pure));
  ]

(* -- qcheck: Pure programs never touch the store ---------------------

   The property behind the service layer's purity gate
   (docs/SERVICE.md): if the §5 analysis classifies a program's body
   as Pure, evaluating it leaves every pre-existing document
   bit-identical and the store invariants intact. (A Pure program may
   still *allocate* fresh nodes — constructors are pure — so the
   check compares the serialized documents, not store size; the
   stronger allocation-free judgement is [Static.prog_parallel_safe].)
   Reuses the fuzz generator, whose samples mix reads and updates, so
   a good fraction exercise the Pure branch. *)

let pure_leaves_store_intact =
  let snapshot eng =
    String.concat "|"
      (List.map
         (fun v -> Core.Engine.serialize eng (Core.Engine.run eng v))
         [ "$d0"; "$d1"; "$d2" ])
  in
  qtest ~count:300 "Pure-classified programs leave documents bit-identical"
    Test_fuzz.seeds (fun seed ->
      let src = Test_fuzz.gen_program seed in
      let eng = Core.Engine.create ~seed:1234 () in
      List.iteri
        (fun i xml ->
          let d =
            Core.Engine.load_document eng ~uri:(Printf.sprintf "d%d" i) xml
          in
          Core.Engine.bind_node eng (Printf.sprintf "d%d" i) d)
        Test_fuzz.docs;
      match Core.Engine.compile eng src with
      | exception _ -> true  (* ill-typed sample: nothing to check *)
      | c ->
        if Core.Engine.body_purity c <> Static.Pure then true
        else begin
          let before = snapshot eng in
          (* a Pure program may still fail dynamically; the store must
             be untouched either way *)
          (try ignore (Core.Engine.run_compiled eng c) with _ -> ());
          let after = snapshot eng in
          let health = Xqb_store.Store.validate (Core.Engine.store eng) in
          if before = after && health = [] then true
          else
            QCheck2.Test.fail_reportf
              "Pure program mutated the store:@.%s@.before %s@.after  %s@.%s"
              src before after (String.concat "; " health)
        end)

let suite =
  [
    ("static:scoping", scoping);
    ("static:free-vars", free_vars_tests);
    ("static:purity", purity);
    ("static:fixpoint", fixpoint);
    ("static:join", join_meet);
    ("static:pure-no-writes", [ pure_leaves_store_intact ]);
  ]
