(* lib/obs: the strict JSON checker, the fixed-footprint histogram
   (nearest-rank percentiles, exact-then-bucketed), and the per-query
   span tracer with its Chrome trace-event export. Also round-trips
   the service's Metrics JSON, including escaped document URIs. *)

open Helpers
module J = Xqb_obs.Json
module Hist = Xqb_obs.Hist
module Trace = Xqb_obs.Trace

(* -- Json: strict parser ------------------------------------------- *)

let parses name s =
  tc name `Quick (fun () -> ignore (check_json name s))

let rejects name s =
  tc name `Quick (fun () ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "%s: accepted %S" name s
      | Error _ -> ())

let json_tests =
  [
    parses "scalars and nesting"
      {|{"a":[1,2.5,-3e2,true,false,null],"b":{"c":""}}|};
    parses "bare literal" "true";
    parses "escapes" {|"quote \" backslash \\ slash \/ tab \t nul \u0000 bell \u0007"|};
    parses "surrogate pair" {|"😀"|};
    tc "surrogate pair decodes to UTF-8" `Quick (fun () ->
        match J.parse_exn {|"😀"|} with
        | J.Str s -> check Alcotest.string "emoji" "\xf0\x9f\x98\x80" s
        | _ -> Alcotest.fail "expected a string");
    tc "\\u0041 decodes" `Quick (fun () ->
        match J.parse_exn {|"A"|} with
        | J.Str s -> check Alcotest.string "A" "A" s
        | _ -> Alcotest.fail "expected a string");
    rejects "trailing garbage" "{} x";
    rejects "trailing comma in array" "[1,2,]";
    rejects "trailing comma in object" {|{"a":1,}|};
    rejects "unquoted key" "{a:1}";
    rejects "single quotes" "{'a':1}";
    rejects "unterminated string" {|"abc|};
    rejects "invalid escape" {|"\x41"|};
    rejects "lone surrogate" {|"\ud83d"|};
    rejects "raw control char in string" "\"a\nb\"";
    rejects "leading zero" "[01]";
    rejects "bare NaN" "NaN";
    rejects "empty input" "";
    tc "member and path" `Quick (fun () ->
        let v = J.parse_exn {|{"a":{"b":[10,20]}}|} in
        (match J.path v [ "a"; "b" ] with
        | Some (J.Arr [ J.Num x; J.Num y ]) ->
          check (Alcotest.pair (Alcotest.float 0.) (Alcotest.float 0.))
            "elements" (10., 20.) (x, y)
        | _ -> Alcotest.fail "path a.b should be [10,20]");
        check Alcotest.bool "missing member" true (J.member "z" v = None));
    tc "escape emits what parse accepts" `Quick (fun () ->
        let nasty = "q\"b\\s/n\nr\rt\tu\x01 \xf0\x9f\x98\x80 end" in
        match J.parse_exn ("\"" ^ J.escape nasty ^ "\"") with
        | J.Str s -> check Alcotest.string "round trip" nasty s
        | _ -> Alcotest.fail "expected a string");
  ]

(* -- Hist: exact and bucketed percentiles --------------------------- *)

let hist_tests =
  [
    tc "empty histogram reports zeros" `Quick (fun () ->
        let h = Hist.create () in
        check Alcotest.int "count" 0 (Hist.count h);
        check (Alcotest.float 0.) "p99" 0. (Hist.percentile h 0.99);
        check (Alcotest.float 0.) "mean" 0. (Hist.mean h));
    tc "nearest-rank percentile uses ceil, not truncation" `Quick (fun () ->
        (* 5 samples, p50: rank ceil(2.5)=3 -> 3.0; the old truncating
           definition picked rank 2 and under-reported *)
        let h = Hist.create () in
        List.iter (fun v -> Hist.record h v) [ 1.; 2.; 3.; 4.; 5. ];
        check (Alcotest.float 0.) "p50 of 5" 3. (Hist.percentile h 0.50);
        (* p95 of 10 must be the 10th sample, not the 9th *)
        let h = Hist.create () in
        for i = 1 to 10 do
          Hist.record h (float_of_int i)
        done;
        check (Alcotest.float 0.) "p95 of 10" 10. (Hist.percentile h 0.95));
    tc "exact regime: percentiles on 1..100" `Quick (fun () ->
        let h = Hist.create () in
        for i = 1 to 100 do
          Hist.record h (float_of_int i)
        done;
        check (Alcotest.float 0.) "p50" 50. (Hist.percentile h 0.50);
        check (Alcotest.float 0.) "p90" 90. (Hist.percentile h 0.90);
        check (Alcotest.float 0.) "p99" 99. (Hist.percentile h 0.99);
        check (Alcotest.float 0.) "max" 100. (Hist.max_value h);
        check (Alcotest.float 1e-9) "mean" 50.5 (Hist.mean h));
    tc "insertion order does not matter in the exact regime" `Quick (fun () ->
        let h = Hist.create () in
        List.iter (fun v -> Hist.record h v) [ 9.; 1.; 7.; 3.; 5. ];
        check (Alcotest.float 0.) "p50" 5. (Hist.percentile h 0.50));
    tc "bucketed regime: ~19% relative error, fixed footprint" `Quick
      (fun () ->
        (* 10_000 samples exceed the 512-sample exact prefix; the
           log-bucket estimate must land within one bucket ratio
           (2^(1/4) ~ 1.19x) of the true percentile *)
        let h = Hist.create () in
        for i = 1 to 10_000 do
          Hist.record h (float_of_int i)
        done;
        check Alcotest.int "count" 10_000 (Hist.count h);
        let within p truth =
          let v = Hist.percentile h p in
          let ratio = v /. truth in
          if ratio < 0.80 || ratio > 1.25 then
            Alcotest.failf "p%.0f: estimate %.1f vs true %.1f" (100. *. p) v
              truth
        in
        within 0.50 5000.;
        within 0.90 9000.;
        within 0.99 9900.;
        check (Alcotest.float 0.) "max exact" 10_000. (Hist.max_value h);
        check (Alcotest.float 0.) "min exact" 1. (Hist.min_value h));
    tc "bucket estimate is clamped to the observed range" `Quick (fun () ->
        (* constant samples: every percentile must equal the constant,
           not a bucket midpoint *)
        let h = Hist.create () in
        for _ = 1 to 1000 do
          Hist.record h 42.
        done;
        check (Alcotest.float 0.) "p99 of constant" 42.
          (Hist.percentile h 0.99));
    tc "reset empties the histogram" `Quick (fun () ->
        let h = Hist.create () in
        Hist.record h 5.;
        Hist.reset h;
        check Alcotest.int "count" 0 (Hist.count h);
        check (Alcotest.float 0.) "p50" 0. (Hist.percentile h 0.50));
    tc "to_json_fields is valid JSON with p99" `Quick (fun () ->
        let h = Hist.create () in
        List.iter (fun v -> Hist.record h v) [ 1.; 2.; 3. ];
        let v = check_json "hist" ("{" ^ Hist.to_json_fields h ^ "}") in
        match (J.member "p99" v, J.member "count" v) with
        | Some (J.Num p99), Some (J.Num n) ->
          check (Alcotest.float 1e-9) "p99" 3. p99;
          check (Alcotest.float 0.) "count" 3. n
        | _ -> Alcotest.fail "p99/count fields missing");
  ]

(* -- Trace: spans, nesting, export ---------------------------------- *)

let span_names tr = List.map (fun s -> s.Trace.name) (Trace.spans tr)

let trace_tests =
  [
    tc "with_span nests via parent links" `Quick (fun () ->
        let tr = Trace.create () in
        Trace.with_span tr "outer" (fun () ->
            Trace.with_span tr "inner" (fun () -> ());
            Trace.with_span tr "inner2" (fun () -> ()));
        check (Alcotest.list Alcotest.string) "names"
          [ "outer"; "inner"; "inner2" ] (span_names tr);
        match Trace.spans tr with
        | [ outer; inner; inner2 ] ->
          check Alcotest.int "outer is a root" (-1) outer.Trace.parent;
          check Alcotest.int "inner under outer" outer.Trace.id
            inner.Trace.parent;
          check Alcotest.int "inner2 under outer" outer.Trace.id
            inner2.Trace.parent;
          check Alcotest.bool "inner closed" true (inner.Trace.dur_ns >= 0)
        | _ -> Alcotest.fail "expected 3 spans");
    tc "disabled tracer records nothing and returns -1" `Quick (fun () ->
        let tr = Trace.disabled in
        let id = Trace.begin_span tr "x" in
        Trace.end_span tr id;
        check Alcotest.int "id" (-1) id;
        check Alcotest.int "count" 0 (Trace.span_count tr);
        check Alcotest.bool "enabled" false (Trace.enabled tr));
    tc "with_span closes the span on exceptions" `Quick (fun () ->
        let tr = Trace.create () in
        (try Trace.with_span tr "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        (* the stack must be unwound: a new span is again a root *)
        Trace.with_span tr "after" (fun () -> ());
        match Trace.spans tr with
        | [ boom; after ] ->
          check Alcotest.bool "boom closed" true (boom.Trace.dur_ns >= 0);
          check Alcotest.int "after is a root" (-1) after.Trace.parent
        | _ -> Alcotest.fail "expected 2 spans");
    tc "add_span records retroactive cross-thread spans" `Quick (fun () ->
        let tr = Trace.create () in
        Trace.add_span ~cat:"sched" tr ~name:"queue.wait" ~start_ns:1000
          ~dur_ns:5000 ();
        match Trace.spans tr with
        | [ s ] ->
          check Alcotest.string "name" "queue.wait" s.Trace.name;
          check Alcotest.int "dur" 5000 s.Trace.dur_ns
        | _ -> Alcotest.fail "expected 1 span");
    tc "cap drops excess spans and counts them" `Quick (fun () ->
        let tr = Trace.create ~cap:4 () in
        for i = 1 to 10 do
          Trace.with_span tr (Printf.sprintf "s%d" i) (fun () -> ())
        done;
        check Alcotest.int "kept" 4 (Trace.span_count tr);
        check Alcotest.int "dropped" 6 (Trace.dropped tr));
    tc "phase_totals sums per name in first-occurrence order" `Quick
      (fun () ->
        let tr = Trace.create () in
        Trace.add_span tr ~name:"parse" ~start_ns:0 ~dur_ns:10 ();
        Trace.add_span tr ~name:"eval" ~start_ns:10 ~dur_ns:100 ();
        Trace.add_span tr ~name:"parse" ~start_ns:110 ~dur_ns:5 ();
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
          "totals"
          [ ("parse", 15); ("eval", 100) ]
          (Trace.phase_totals tr));
    tc "chrome export is strict JSON with escaped args" `Quick (fun () ->
        let tr = Trace.create () in
        Trace.with_span tr
          ~args:[ ("uri", "he\"llo\\wo\nrld"); ("k\te y", "v") ]
          "load" (fun () -> ());
        Trace.instant tr "mark";
        let v = check_json "chrome trace" (Trace.to_chrome_json tr) in
        let events =
          match J.member "traceEvents" v with
          | Some a -> J.to_list a
          | None -> Alcotest.fail "no traceEvents"
        in
        check Alcotest.int "two events" 2 (List.length events);
        let load = List.hd events in
        (match Option.bind (J.member "name" load) J.to_string_opt with
        | Some n -> check Alcotest.string "name" "load" n
        | None -> Alcotest.fail "event has no name");
        match
          Option.bind (J.member "args" load) (fun a -> J.member "uri" a)
        with
        | Some (J.Str u) ->
          check Alcotest.string "nasty uri round-trips" "he\"llo\\wo\nrld" u
        | _ -> Alcotest.fail "args.uri missing");
    tc "dropped count is reported in otherData" `Quick (fun () ->
        let tr = Trace.create ~cap:1 () in
        Trace.with_span tr "a" (fun () -> ());
        Trace.with_span tr "b" (fun () -> ());
        let v = check_json "trace" (Trace.to_chrome_json tr) in
        match J.path v [ "otherData"; "dropped" ] with
        | Some (J.Num d) -> check (Alcotest.float 0.) "dropped" 1. d
        | _ -> Alcotest.fail "otherData.dropped missing");
  ]

(* -- Metrics / service JSON round-trips ----------------------------- *)

module Svc = Xqb_service.Service

let roundtrip_tests =
  [
    tc "stats_json round-trips, including escaped URIs" `Quick (fun () ->
        let svc = Svc.create ~domains:0 ~tracing:true () in
        let sid = Svc.open_session svc in
        (* a URI the emitter must escape: quote, backslash, newline *)
        let nasty = "doc\"with\\esc\napes" in
        Svc.load_document svc sid ~uri:nasty "<r><a/></r>";
        ignore (Svc.query svc sid "1+1");
        let v = check_json "stats_json" (Svc.stats_json svc) in
        (* the nasty URI must survive the parse intact *)
        let docs =
          match J.member "documents" v with Some a -> J.to_list a | None -> []
        in
        let uris =
          List.filter_map
            (fun d -> Option.bind (J.member "uri" d) J.to_string_opt)
            docs
        in
        if not (List.mem nasty uris) then
          Alcotest.failf "escaped URI lost; got: %s"
            (String.concat ", " uris);
        (* per-phase latency histograms appear once a query ran *)
        (match J.member "phases_ns" v with
        | Some (J.Obj fields) ->
          check Alcotest.bool "has at least one phase" true (fields <> [])
        | _ -> Alcotest.fail "phases_ns missing");
        (match J.path v [ "latency_ns"; "p99" ] with
        | Some (J.Num _) -> ()
        | _ -> Alcotest.fail "latency_ns.p99 missing");
        Svc.shutdown svc);
    tc "recorded job trace round-trips through the strict parser" `Quick
      (fun () ->
        (* domains>0 so jobs go through the queue (queue.wait) *)
        let svc = Svc.create ~domains:2 ~tracing:true () in
        let sid = Svc.open_session svc in
        Svc.load_document svc sid ~uri:"d" "<r><a/><a/></r>";
        (* updating: write side, snap application on the profile *)
        (match
           Svc.query svc sid
             {|(insert {<b/>} into {doc("d")/r}, snap { count(doc("d")//a) })|}
         with
        | Ok r -> check Alcotest.string "result" "2" r
        | Error e ->
          Alcotest.failf "query failed: %s"
            (Xqb_service.Service_error.to_string e));
        (match Svc.trace_json svc None with
        | None -> Alcotest.fail "no trace recorded with tracing on"
        | Some (_, json) ->
          let v = check_json "job trace" json in
          let names =
            List.filter_map
              (fun e -> Option.bind (J.member "name" e) J.to_string_opt)
              (match J.member "traceEvents" v with
              | Some a -> J.to_list a
              | None -> [])
          in
          List.iter
            (fun phase ->
              if not (List.mem phase names) then
                Alcotest.failf "trace misses %S; has: %s" phase
                  (String.concat "," names))
            [
              "queue.wait"; "lock.wait"; "compile"; "parse"; "normalize";
              "static.check"; "simplify"; "typing"; "eval"; "snap.apply";
            ]);
        Svc.shutdown svc);
    tc "tracing off: TRACE has nothing, queries still work" `Quick (fun () ->
        let svc = Svc.create ~domains:0 () in
        let sid = Svc.open_session svc in
        (match Svc.query svc sid "1+1" with
        | Ok r -> check Alcotest.string "result" "2" r
        | Error _ -> Alcotest.fail "query failed");
        check Alcotest.bool "no trace" true (Svc.trace_json svc None = None);
        Svc.shutdown svc);
  ]

let suite =
  [
    ("obs: json", json_tests);
    ("obs: hist", hist_tests);
    ("obs: trace", trace_tests);
    ("obs: round-trips", roundtrip_tests);
  ]
