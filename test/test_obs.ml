(* lib/obs: the strict JSON checker, the fixed-footprint histogram
   (nearest-rank percentiles, exact-then-bucketed, window merge), the
   per-query span tracer with its Chrome trace-event export, the
   rolling-window metrics ring and the structured event log. Also
   round-trips the service's Metrics JSON, including escaped document
   URIs. *)

open Helpers
module J = Xqb_obs.Json
module Hist = Xqb_obs.Hist
module Trace = Xqb_obs.Trace
module Window = Xqb_obs.Window
module Events = Xqb_obs.Events

(* -- Json: strict parser ------------------------------------------- *)

let parses name s =
  tc name `Quick (fun () -> ignore (check_json name s))

let rejects name s =
  tc name `Quick (fun () ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "%s: accepted %S" name s
      | Error _ -> ())

let json_tests =
  [
    parses "scalars and nesting"
      {|{"a":[1,2.5,-3e2,true,false,null],"b":{"c":""}}|};
    parses "bare literal" "true";
    parses "escapes" {|"quote \" backslash \\ slash \/ tab \t nul \u0000 bell \u0007"|};
    parses "surrogate pair" {|"😀"|};
    tc "surrogate pair decodes to UTF-8" `Quick (fun () ->
        match J.parse_exn {|"😀"|} with
        | J.Str s -> check Alcotest.string "emoji" "\xf0\x9f\x98\x80" s
        | _ -> Alcotest.fail "expected a string");
    tc "\\u0041 decodes" `Quick (fun () ->
        match J.parse_exn {|"A"|} with
        | J.Str s -> check Alcotest.string "A" "A" s
        | _ -> Alcotest.fail "expected a string");
    rejects "trailing garbage" "{} x";
    rejects "trailing comma in array" "[1,2,]";
    rejects "trailing comma in object" {|{"a":1,}|};
    rejects "unquoted key" "{a:1}";
    rejects "single quotes" "{'a':1}";
    rejects "unterminated string" {|"abc|};
    rejects "invalid escape" {|"\x41"|};
    rejects "lone surrogate" {|"\ud83d"|};
    rejects "raw control char in string" "\"a\nb\"";
    rejects "leading zero" "[01]";
    rejects "bare NaN" "NaN";
    rejects "empty input" "";
    tc "member and path" `Quick (fun () ->
        let v = J.parse_exn {|{"a":{"b":[10,20]}}|} in
        (match J.path v [ "a"; "b" ] with
        | Some (J.Arr [ J.Num x; J.Num y ]) ->
          check (Alcotest.pair (Alcotest.float 0.) (Alcotest.float 0.))
            "elements" (10., 20.) (x, y)
        | _ -> Alcotest.fail "path a.b should be [10,20]");
        check Alcotest.bool "missing member" true (J.member "z" v = None));
    tc "escape emits what parse accepts" `Quick (fun () ->
        let nasty = "q\"b\\s/n\nr\rt\tu\x01 \xf0\x9f\x98\x80 end" in
        match J.parse_exn ("\"" ^ J.escape nasty ^ "\"") with
        | J.Str s -> check Alcotest.string "round trip" nasty s
        | _ -> Alcotest.fail "expected a string");
  ]

(* -- Hist: exact and bucketed percentiles --------------------------- *)

let hist_tests =
  [
    tc "empty histogram reports zeros" `Quick (fun () ->
        let h = Hist.create () in
        check Alcotest.int "count" 0 (Hist.count h);
        check (Alcotest.float 0.) "p99" 0. (Hist.percentile h 0.99);
        check (Alcotest.float 0.) "mean" 0. (Hist.mean h));
    tc "nearest-rank percentile uses ceil, not truncation" `Quick (fun () ->
        (* 5 samples, p50: rank ceil(2.5)=3 -> 3.0; the old truncating
           definition picked rank 2 and under-reported *)
        let h = Hist.create () in
        List.iter (fun v -> Hist.record h v) [ 1.; 2.; 3.; 4.; 5. ];
        check (Alcotest.float 0.) "p50 of 5" 3. (Hist.percentile h 0.50);
        (* p95 of 10 must be the 10th sample, not the 9th *)
        let h = Hist.create () in
        for i = 1 to 10 do
          Hist.record h (float_of_int i)
        done;
        check (Alcotest.float 0.) "p95 of 10" 10. (Hist.percentile h 0.95));
    tc "exact regime: percentiles on 1..100" `Quick (fun () ->
        let h = Hist.create () in
        for i = 1 to 100 do
          Hist.record h (float_of_int i)
        done;
        check (Alcotest.float 0.) "p50" 50. (Hist.percentile h 0.50);
        check (Alcotest.float 0.) "p90" 90. (Hist.percentile h 0.90);
        check (Alcotest.float 0.) "p99" 99. (Hist.percentile h 0.99);
        check (Alcotest.float 0.) "max" 100. (Hist.max_value h);
        check (Alcotest.float 1e-9) "mean" 50.5 (Hist.mean h));
    tc "insertion order does not matter in the exact regime" `Quick (fun () ->
        let h = Hist.create () in
        List.iter (fun v -> Hist.record h v) [ 9.; 1.; 7.; 3.; 5. ];
        check (Alcotest.float 0.) "p50" 5. (Hist.percentile h 0.50));
    tc "bucketed regime: ~19% relative error, fixed footprint" `Quick
      (fun () ->
        (* 10_000 samples exceed the 512-sample exact prefix; the
           log-bucket estimate must land within one bucket ratio
           (2^(1/4) ~ 1.19x) of the true percentile *)
        let h = Hist.create () in
        for i = 1 to 10_000 do
          Hist.record h (float_of_int i)
        done;
        check Alcotest.int "count" 10_000 (Hist.count h);
        let within p truth =
          let v = Hist.percentile h p in
          let ratio = v /. truth in
          if ratio < 0.80 || ratio > 1.25 then
            Alcotest.failf "p%.0f: estimate %.1f vs true %.1f" (100. *. p) v
              truth
        in
        within 0.50 5000.;
        within 0.90 9000.;
        within 0.99 9900.;
        check (Alcotest.float 0.) "max exact" 10_000. (Hist.max_value h);
        check (Alcotest.float 0.) "min exact" 1. (Hist.min_value h));
    tc "bucket estimate is clamped to the observed range" `Quick (fun () ->
        (* constant samples: every percentile must equal the constant,
           not a bucket midpoint *)
        let h = Hist.create () in
        for _ = 1 to 1000 do
          Hist.record h 42.
        done;
        check (Alcotest.float 0.) "p99 of constant" 42.
          (Hist.percentile h 0.99));
    tc "reset empties the histogram" `Quick (fun () ->
        let h = Hist.create () in
        Hist.record h 5.;
        Hist.reset h;
        check Alcotest.int "count" 0 (Hist.count h);
        check (Alcotest.float 0.) "p50" 0. (Hist.percentile h 0.50));
    tc "to_json_fields is valid JSON with p99" `Quick (fun () ->
        let h = Hist.create () in
        List.iter (fun v -> Hist.record h v) [ 1.; 2.; 3. ];
        let v = check_json "hist" ("{" ^ Hist.to_json_fields h ^ "}") in
        match (J.member "p99" v, J.member "count" v) with
        | Some (J.Num p99), Some (J.Num n) ->
          check (Alcotest.float 1e-9) "p99" 3. p99;
          check (Alcotest.float 0.) "count" 3. n
        | _ -> Alcotest.fail "p99/count fields missing");
  ]

(* -- Hist.merge: the window-snapshot primitive ---------------------- *)

let record_all h vs = List.iter (fun v -> Hist.record h v) vs

let merge_tests =
  [
    tc "merging empties stays empty with zero percentiles" `Quick (fun () ->
        let a = Hist.create () and b = Hist.create () in
        Hist.merge ~into:a b;
        check Alcotest.int "count" 0 (Hist.count a);
        check (Alcotest.float 0.) "p50" 0. (Hist.percentile a 0.50);
        check (Alcotest.float 0.) "p99" 0. (Hist.percentile a 0.99);
        check (Alcotest.float 0.) "mean" 0. (Hist.mean a));
    tc "merging an empty window changes nothing" `Quick (fun () ->
        let a = Hist.create () in
        record_all a [ 3.; 1.; 2. ];
        Hist.merge ~into:a (Hist.create ());
        check Alcotest.int "count" 3 (Hist.count a);
        check (Alcotest.float 0.) "p50 still exact" 2.
          (Hist.percentile a 0.50));
    tc "single-sample windows merge to exact percentiles" `Quick (fun () ->
        (* every slot holding one sample is the worst case for a
           bucketed merge; small unions must stay sample-exact *)
        let into = Hist.create () in
        List.iter
          (fun v ->
            let s = Hist.create () in
            Hist.record s v;
            check (Alcotest.float 0.) "slot p99 = its sample" v
              (Hist.percentile s 0.99);
            Hist.merge ~into s)
          [ 5.; 1.; 4.; 2.; 3. ];
        check Alcotest.int "count" 5 (Hist.count into);
        check (Alcotest.float 0.) "p50" 3. (Hist.percentile into 0.50);
        check (Alcotest.float 0.) "max" 5. (Hist.max_value into);
        check (Alcotest.float 0.) "min" 1. (Hist.min_value into));
    tc "merge into self raises" `Quick (fun () ->
        let h = Hist.create () in
        Hist.record h 1.;
        match Hist.merge ~into:h h with
        | () -> Alcotest.fail "self-merge accepted"
        | exception Invalid_argument _ -> ());
    tc "overflowing merge degrades to estimates, counts stay exact" `Quick
      (fun () ->
        let into = Hist.create ~exact_cap:8 () in
        let src = Hist.create () in
        record_all into [ 1.; 2.; 3.; 4.; 5. ];
        record_all src [ 6.; 7.; 8.; 9.; 10. ];
        Hist.merge ~into src;
        check Alcotest.int "count" 10 (Hist.count into);
        check (Alcotest.float 1e-9) "sum" 55. (Hist.sum into);
        check (Alcotest.float 0.) "max" 10. (Hist.max_value into);
        let p99 = Hist.percentile into 0.99 in
        if p99 < 8. || p99 > 12.5 then
          Alcotest.failf "p99 estimate %.2f outside one bucket of 10" p99);
    qtest ~count:100 "merge of sub-windows equals the whole window"
      QCheck2.Gen.(
        pair
          (list_size (int_range 0 40)
             (list_size (int_range 0 30) (float_range 1. 1e6)))
          unit)
      (fun (slots, ()) ->
        (* split a population across N slot histograms and merge them
           back — exactly what Window.snapshot does — then compare to
           one histogram fed the whole population directly *)
        let whole = Hist.create () in
        let merged = Hist.create () in
        List.iter
          (fun slot ->
            let h = Hist.create () in
            List.iter
              (fun v ->
                Hist.record h v;
                Hist.record whole v)
              slot;
            Hist.merge ~into:merged h)
          slots;
        Hist.count merged = Hist.count whole
        && abs_float (Hist.sum merged -. Hist.sum whole) < 1e-6
        && Hist.max_value merged = Hist.max_value whole
        && Hist.min_value merged = Hist.min_value whole
        &&
        (* percentiles sample-exact while the union fits the exact
           prefix; both sides agree regardless of the split *)
        List.for_all
          (fun p ->
            let a = Hist.percentile merged p
            and b = Hist.percentile whole p in
            if Hist.count whole <= 512 then a = b
            else a = 0. = (b = 0.) && (b = 0. || a /. b < 1.5 && a /. b > 0.6))
          [ 0.5; 0.9; 0.99 ]);
  ]

(* -- Window: deterministic rolling-window behaviour ------------------ *)

(* 10 slots x 100ms = a 1s window, driven by a synthetic clock. *)
let mk_window () = Window.create ~slot_ms:100 ~slots:10 ()

let ms n = n * 1_000_000

let window_tests =
  [
    tc "empty window: zero rate, zero percentiles, zero fracs" `Quick
      (fun () ->
        let w = mk_window () in
        let s = Window.snapshot ~now_ns:(ms 50) w in
        check Alcotest.int "count" 0 s.Window.count;
        check (Alcotest.float 0.) "rate" 0. s.Window.rate;
        check (Alcotest.float 0.) "p99" 0. s.Window.p99_ns;
        check (Alcotest.float 0.) "err_frac" 0. s.Window.err_frac;
        check (Alcotest.float 0.) "slow_frac" 0. s.Window.slow_frac);
    tc "single-sample window reports that sample" `Quick (fun () ->
        let w = mk_window () in
        Window.record ~now_ns:(ms 10) w ~ok:true ~slow:false 5000;
        let s = Window.snapshot ~now_ns:(ms 20) w in
        check Alcotest.int "count" 1 s.Window.count;
        check (Alcotest.float 0.) "p50" 5000. s.Window.p50_ns;
        check (Alcotest.float 0.) "p99" 5000. s.Window.p99_ns;
        check (Alcotest.float 0.) "max" 5000. s.Window.max_ns;
        check (Alcotest.float 1e-9) "mean" 5000. s.Window.mean_ns);
    tc "errors and slow samples produce fracs" `Quick (fun () ->
        let w = mk_window () in
        Window.record ~now_ns:(ms 10) w ~ok:true ~slow:false 100;
        Window.record ~now_ns:(ms 20) w ~ok:false ~slow:false 100;
        Window.record ~now_ns:(ms 30) w ~ok:true ~slow:true 100;
        Window.record ~now_ns:(ms 40) w ~ok:true ~slow:false 100;
        let s = Window.snapshot ~now_ns:(ms 50) w in
        check Alcotest.int "count" 4 s.Window.count;
        check Alcotest.int "errors" 1 s.Window.errors;
        check Alcotest.int "slow" 1 s.Window.slow;
        check (Alcotest.float 1e-9) "err_frac" 0.25 s.Window.err_frac;
        check (Alcotest.float 1e-9) "slow_frac" 0.25 s.Window.slow_frac);
    tc "ring rollover: samples expire after the span" `Quick (fun () ->
        let w = mk_window () in
        Window.record ~now_ns:(ms 10) w ~ok:false ~slow:false 100;
        (* still visible within the 1s span *)
        check Alcotest.int "inside span" 1
          (Window.snapshot ~now_ns:(ms 900) w).Window.count;
        (* one full span later the slot has been recycled *)
        check Alcotest.int "expired" 0
          (Window.snapshot ~now_ns:(ms 1500) w).Window.count;
        (* and the recycled slot accepts new samples cleanly *)
        Window.record ~now_ns:(ms 1510) w ~ok:true ~slow:false 200;
        let s = Window.snapshot ~now_ns:(ms 1520) w in
        check Alcotest.int "fresh sample" 1 s.Window.count;
        check Alcotest.int "old error gone" 0 s.Window.errors);
    tc "rollover across many spans keeps the footprint fixed" `Quick
      (fun () ->
        let w = mk_window () in
        (* 10k samples spread over 100 spans: any leak of expired
           slots would show up as count > one window's worth *)
        for i = 1 to 10_000 do
          Window.record ~now_ns:(ms (i * 10)) w ~ok:true ~slow:false 100
        done;
        let s = Window.snapshot ~now_ns:(ms 100_000) w in
        check Alcotest.bool "at most one window retained" true
          (s.Window.count <= 100);
        check Alcotest.bool "rate ~ 100/s" true
          (s.Window.rate > 50. && s.Window.rate < 150.));
    qtest ~count:100 "windowed count never exceeds the cumulative count"
      QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 3000))
      (fun deltas_ms ->
        (* a random monotone sample schedule: whatever the window
           retains is a subset of everything recorded *)
        let w = mk_window () in
        let now = ref 0 in
        let total = ref 0 in
        List.iter
          (fun d ->
            now := !now + ms d;
            Window.record ~now_ns:!now w ~ok:true ~slow:false 100;
            incr total;
            let s = Window.snapshot ~now_ns:!now w in
            if s.Window.count > !total then
              QCheck2.Test.fail_reportf "window %d > cumulative %d"
                s.Window.count !total)
          deltas_ms;
        true);
    tc "burn rate: observed over budget" `Quick (fun () ->
        check (Alcotest.float 1e-9) "at budget" 1.
          (Window.burn ~frac:0.01 ~budget_frac:0.01);
        check (Alcotest.float 1e-9) "4x burn" 4.
          (Window.burn ~frac:0.04 ~budget_frac:0.01);
        check (Alcotest.float 0.) "no failures" 0.
          (Window.burn ~frac:0. ~budget_frac:0.01));
    tc "snap_json round-trips the strict parser" `Quick (fun () ->
        let w = mk_window () in
        Window.record ~now_ns:(ms 10) w ~ok:true ~slow:false 100;
        let v =
          check_json "window snap"
            (Window.snap_json (Window.snapshot ~now_ns:(ms 20) w))
        in
        match J.member "count" v with
        | Some (J.Num n) -> check (Alcotest.float 0.) "count" 1. n
        | _ -> Alcotest.fail "count missing");
  ]

(* -- Events: bounded ring, severity filter, JSONL sink --------------- *)

let event_tests =
  [
    tc "severity names round-trip, unknown rejected" `Quick (fun () ->
        List.iter
          (fun s ->
            match Events.severity_of_string (Events.severity_to_string s) with
            | Some s' ->
              check Alcotest.int "rank" (Events.severity_rank s)
                (Events.severity_rank s')
            | None -> Alcotest.fail "round trip failed")
          [ Events.Debug; Info; Warn; Error; Critical ];
        check Alcotest.bool "unknown" true
          (Events.severity_of_string "loud" = None));
    tc "ring keeps the last cap events, total keeps counting" `Quick
      (fun () ->
        let t = Events.create ~cap:4 () in
        for i = 1 to 10 do
          Events.info t ~kind:"k" [ ("i", Events.I i) ]
        done;
        check Alcotest.int "total" 10 (Events.total t);
        let tl = Events.tail t 100 in
        check Alcotest.int "retained" 4 (List.length tl);
        check
          (Alcotest.list Alcotest.int)
          "oldest first, newest retained" [ 7; 8; 9; 10 ]
          (List.map
             (fun e ->
               match List.assoc "i" e.Events.data with
               | Events.I i -> i
               | _ -> -1)
             tl));
    tc "tail level filter and count_at_least agree" `Quick (fun () ->
        let t = Events.create () in
        Events.debug t ~kind:"d" [];
        Events.info t ~kind:"i" [];
        Events.warn t ~kind:"w" [];
        Events.error t ~kind:"e" [];
        Events.critical t ~kind:"c" [];
        check Alcotest.int "all" 5 (Events.count_at_least t Events.Debug);
        check Alcotest.int "warn+" 3 (Events.count_at_least t Events.Warn);
        check Alcotest.int "critical" 1
          (Events.count_at_least t Events.Critical);
        check
          (Alcotest.list Alcotest.string)
          "filtered tail" [ "w"; "e"; "c" ]
          (List.map
             (fun e -> e.Events.kind)
             (Events.tail ~level:Events.Warn t 100)));
    tc "events_json round-trips with escaped data" `Quick (fun () ->
        let t = Events.create () in
        Events.warn t ~kind:"q.slow"
          [
            ("uri", Events.S "doc\"with\\esc\napes");
            ("ms", Events.F 1.5);
            ("jid", Events.I 7);
            ("forced", Events.B true);
          ];
        let v = check_json "events" (Events.events_json (Events.tail t 10)) in
        match J.to_list v with
        | [ e ] -> (
          (match Option.bind (J.member "kind" e) J.to_string_opt with
          | Some k -> check Alcotest.string "kind" "q.slow" k
          | None -> Alcotest.fail "kind missing");
          match J.path e [ "data"; "uri" ] with
          | Some (J.Str u) ->
            check Alcotest.string "nasty value" "doc\"with\\esc\napes" u
          | _ -> Alcotest.fail "data.uri missing")
        | l -> Alcotest.failf "expected 1 event, got %d" (List.length l));
    tc "subscribers see each event and may log reentrantly" `Quick (fun () ->
        let t = Events.create () in
        let seen = ref [] in
        Events.subscribe t (fun e ->
            seen := e.Events.kind :: !seen;
            (* a subscriber that logs must not deadlock; its event
               reaches the ring but not the (already-running) hook *)
            if e.Events.kind = "outer" then Events.info t ~kind:"nested" []);
        Events.info t ~kind:"outer" [];
        check Alcotest.bool "outer seen" true (List.mem "outer" !seen);
        check Alcotest.int "both in ring" 2 (Events.total t));
    tc "disabled log is a no-op" `Quick (fun () ->
        let t = Events.disabled () in
        Events.critical t ~kind:"x" [];
        check Alcotest.bool "enabled" false (Events.enabled t);
        check Alcotest.int "total" 0 (Events.total t);
        check Alcotest.int "tail" 0 (List.length (Events.tail t 10)));
    tc "sink mirrors events as JSONL, Info+ flushed immediately" `Quick
      (fun () ->
        let dir = Filename.temp_file "xqb_events" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let path = Filename.concat dir "events.jsonl" in
        let t = Events.create ~sink_path:path () in
        Events.info t ~kind:"lifecycle.boot" [ ("domains", Events.I 2) ];
        Events.warn t ~kind:"sched.overload" [];
        (* Info and above flush per event: readable before close *)
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        close_in ic;
        Events.close t;
        let lines = List.rev !lines in
        check Alcotest.int "two lines" 2 (List.length lines);
        List.iter (fun l -> ignore (check_json "sink line" l)) lines;
        (match J.member "kind" (J.parse_exn (List.hd lines)) with
        | Some (J.Str k) -> check Alcotest.string "first kind" "lifecycle.boot" k
        | _ -> Alcotest.fail "kind missing in sink");
        Sys.remove path;
        Unix.rmdir dir);
  ]

(* -- Trace: spans, nesting, export ---------------------------------- *)

let span_names tr = List.map (fun s -> s.Trace.name) (Trace.spans tr)

let trace_tests =
  [
    tc "with_span nests via parent links" `Quick (fun () ->
        let tr = Trace.create () in
        Trace.with_span tr "outer" (fun () ->
            Trace.with_span tr "inner" (fun () -> ());
            Trace.with_span tr "inner2" (fun () -> ()));
        check (Alcotest.list Alcotest.string) "names"
          [ "outer"; "inner"; "inner2" ] (span_names tr);
        match Trace.spans tr with
        | [ outer; inner; inner2 ] ->
          check Alcotest.int "outer is a root" (-1) outer.Trace.parent;
          check Alcotest.int "inner under outer" outer.Trace.id
            inner.Trace.parent;
          check Alcotest.int "inner2 under outer" outer.Trace.id
            inner2.Trace.parent;
          check Alcotest.bool "inner closed" true (inner.Trace.dur_ns >= 0)
        | _ -> Alcotest.fail "expected 3 spans");
    tc "disabled tracer records nothing and returns -1" `Quick (fun () ->
        let tr = Trace.disabled in
        let id = Trace.begin_span tr "x" in
        Trace.end_span tr id;
        check Alcotest.int "id" (-1) id;
        check Alcotest.int "count" 0 (Trace.span_count tr);
        check Alcotest.bool "enabled" false (Trace.enabled tr));
    tc "with_span closes the span on exceptions" `Quick (fun () ->
        let tr = Trace.create () in
        (try Trace.with_span tr "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        (* the stack must be unwound: a new span is again a root *)
        Trace.with_span tr "after" (fun () -> ());
        match Trace.spans tr with
        | [ boom; after ] ->
          check Alcotest.bool "boom closed" true (boom.Trace.dur_ns >= 0);
          check Alcotest.int "after is a root" (-1) after.Trace.parent
        | _ -> Alcotest.fail "expected 2 spans");
    tc "add_span records retroactive cross-thread spans" `Quick (fun () ->
        let tr = Trace.create () in
        Trace.add_span ~cat:"sched" tr ~name:"queue.wait" ~start_ns:1000
          ~dur_ns:5000 ();
        match Trace.spans tr with
        | [ s ] ->
          check Alcotest.string "name" "queue.wait" s.Trace.name;
          check Alcotest.int "dur" 5000 s.Trace.dur_ns
        | _ -> Alcotest.fail "expected 1 span");
    tc "cap drops excess spans and counts them" `Quick (fun () ->
        let tr = Trace.create ~cap:4 () in
        for i = 1 to 10 do
          Trace.with_span tr (Printf.sprintf "s%d" i) (fun () -> ())
        done;
        check Alcotest.int "kept" 4 (Trace.span_count tr);
        check Alcotest.int "dropped" 6 (Trace.dropped tr));
    tc "phase_totals sums per name in first-occurrence order" `Quick
      (fun () ->
        let tr = Trace.create () in
        Trace.add_span tr ~name:"parse" ~start_ns:0 ~dur_ns:10 ();
        Trace.add_span tr ~name:"eval" ~start_ns:10 ~dur_ns:100 ();
        Trace.add_span tr ~name:"parse" ~start_ns:110 ~dur_ns:5 ();
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
          "totals"
          [ ("parse", 15); ("eval", 100) ]
          (Trace.phase_totals tr));
    tc "chrome export is strict JSON with escaped args" `Quick (fun () ->
        let tr = Trace.create () in
        Trace.with_span tr
          ~args:[ ("uri", "he\"llo\\wo\nrld"); ("k\te y", "v") ]
          "load" (fun () -> ());
        Trace.instant tr "mark";
        let v = check_json "chrome trace" (Trace.to_chrome_json tr) in
        let events =
          match J.member "traceEvents" v with
          | Some a -> J.to_list a
          | None -> Alcotest.fail "no traceEvents"
        in
        check Alcotest.int "two events" 2 (List.length events);
        let load = List.hd events in
        (match Option.bind (J.member "name" load) J.to_string_opt with
        | Some n -> check Alcotest.string "name" "load" n
        | None -> Alcotest.fail "event has no name");
        match
          Option.bind (J.member "args" load) (fun a -> J.member "uri" a)
        with
        | Some (J.Str u) ->
          check Alcotest.string "nasty uri round-trips" "he\"llo\\wo\nrld" u
        | _ -> Alcotest.fail "args.uri missing");
    tc "dropped count is reported in otherData" `Quick (fun () ->
        let tr = Trace.create ~cap:1 () in
        Trace.with_span tr "a" (fun () -> ());
        Trace.with_span tr "b" (fun () -> ());
        let v = check_json "trace" (Trace.to_chrome_json tr) in
        match J.path v [ "otherData"; "dropped" ] with
        | Some (J.Num d) -> check (Alcotest.float 0.) "dropped" 1. d
        | _ -> Alcotest.fail "otherData.dropped missing");
  ]

(* -- Metrics / service JSON round-trips ----------------------------- *)

module Svc = Xqb_service.Service

let roundtrip_tests =
  [
    tc "stats_json round-trips, including escaped URIs" `Quick (fun () ->
        let svc = Svc.create ~domains:0 ~tracing:true () in
        let sid = Svc.open_session svc in
        (* a URI the emitter must escape: quote, backslash, newline *)
        let nasty = "doc\"with\\esc\napes" in
        Svc.load_document svc sid ~uri:nasty "<r><a/></r>";
        ignore (Svc.query svc sid "1+1");
        let v = check_json "stats_json" (Svc.stats_json svc) in
        (* the nasty URI must survive the parse intact *)
        let docs =
          match J.member "documents" v with Some a -> J.to_list a | None -> []
        in
        let uris =
          List.filter_map
            (fun d -> Option.bind (J.member "uri" d) J.to_string_opt)
            docs
        in
        if not (List.mem nasty uris) then
          Alcotest.failf "escaped URI lost; got: %s"
            (String.concat ", " uris);
        (* per-phase latency histograms appear once a query ran *)
        (match J.member "phases_ns" v with
        | Some (J.Obj fields) ->
          check Alcotest.bool "has at least one phase" true (fields <> [])
        | _ -> Alcotest.fail "phases_ns missing");
        (match J.path v [ "latency_ns"; "p99" ] with
        | Some (J.Num _) -> ()
        | _ -> Alcotest.fail "latency_ns.p99 missing");
        Svc.shutdown svc);
    tc "recorded job trace round-trips through the strict parser" `Quick
      (fun () ->
        (* domains>0 so jobs go through the queue (queue.wait) *)
        let svc = Svc.create ~domains:2 ~tracing:true () in
        let sid = Svc.open_session svc in
        Svc.load_document svc sid ~uri:"d" "<r><a/><a/></r>";
        (* updating: write side, snap application on the profile *)
        (match
           Svc.query svc sid
             {|(insert {<b/>} into {doc("d")/r}, snap { count(doc("d")//a) })|}
         with
        | Ok r -> check Alcotest.string "result" "2" r
        | Error e ->
          Alcotest.failf "query failed: %s"
            (Xqb_service.Service_error.to_string e));
        (match Svc.trace_json svc None with
        | None -> Alcotest.fail "no trace recorded with tracing on"
        | Some (_, json) ->
          let v = check_json "job trace" json in
          let names =
            List.filter_map
              (fun e -> Option.bind (J.member "name" e) J.to_string_opt)
              (match J.member "traceEvents" v with
              | Some a -> J.to_list a
              | None -> [])
          in
          List.iter
            (fun phase ->
              if not (List.mem phase names) then
                Alcotest.failf "trace misses %S; has: %s" phase
                  (String.concat "," names))
            [
              "queue.wait"; "lock.wait"; "compile"; "parse"; "normalize";
              "static.check"; "simplify"; "typing"; "eval"; "snap.apply";
            ]);
        Svc.shutdown svc);
    tc "tracing off: TRACE has nothing, queries still work" `Quick (fun () ->
        let svc = Svc.create ~domains:0 () in
        let sid = Svc.open_session svc in
        (match Svc.query svc sid "1+1" with
        | Ok r -> check Alcotest.string "result" "2" r
        | Error _ -> Alcotest.fail "query failed");
        check Alcotest.bool "no trace" true (Svc.trace_json svc None = None);
        Svc.shutdown svc);
  ]

let suite =
  [
    ("obs: json", json_tests);
    ("obs: hist", hist_tests);
    ("obs: hist-merge", merge_tests);
    ("obs: window", window_tests);
    ("obs: events", event_tests);
    ("obs: trace", trace_tests);
    ("obs: round-trips", roundtrip_tests);
  ]
