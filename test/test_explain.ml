(* EXPLAIN ANALYZE: per-operator counters on the paper's Q8-with-
   inserts variant over a tiny hand-built auction document, where the
   fused outer-join/group-by's build/probe/match counts can be checked
   against hand-computed cardinalities — and the profiled run must
   produce exactly what the tree interpreter produces, side effects
   included. *)

open Helpers
module Runner = Xqb_algebra.Runner
module Profile = Xqb_algebra.Profile
module Svc = Xqb_service.Service

(* 3 persons (probe side L), 4 closed auctions (build side R);
   matches: p1 buys twice, p3 once, p2 never; one auction's buyer
   matches nobody. *)
let tiny_auction =
  {|<site>
      <people>
        <person id="p1"><name>Alice</name></person>
        <person id="p2"><name>Bob</name></person>
        <person id="p3"><name>Cara</name></person>
      </people>
      <closed_auctions>
        <closed_auction><buyer person="p1"/><itemref item="i1"/></closed_auction>
        <closed_auction><buyer person="p1"/><itemref item="i2"/></closed_auction>
        <closed_auction><buyer person="p3"/><itemref item="i3"/></closed_auction>
        <closed_auction><buyer person="zz"/><itemref item="i4"/></closed_auction>
      </closed_auctions>
    </site>|}

let q8 =
  {|for $p in $auction//person
    let $a :=
      for $t in $auction//closed_auction
      where $t/buyer/@person = $p/@id
      return (insert { <buyer person="{$t/buyer/@person}"
                       itemid="{$t/itemref/@item}" /> }
              into { $purchasers }, $t)
    return <item person="{ $p/name }">{ count($a) }</item>|}

let engine () =
  let eng = Core.Engine.create () in
  let store = Core.Engine.store eng in
  Core.Engine.bind_node eng "auction"
    (Xqb_store.Store.load_string store tiny_auction);
  Core.Engine.bind_node eng "purchasers"
    (Xqb_store.Store.load_string store "<purchasers/>");
  eng

(* Serialized query result plus the observable side effect: the
   buyers inserted under $purchasers. *)
let observe eng value =
  let result = Core.Engine.serialize eng value in
  let effects =
    Core.Engine.run eng
      {|for $b in $purchasers//buyer
        return concat($b/@person, ":", $b/@itemid)|}
  in
  (result, Core.Engine.serialize eng effects)

let find_join_op prof =
  let rec scan i =
    if i >= Profile.n_ops prof then None
    else
      let op = Profile.op prof i in
      if op.Profile.build > 0 || op.Profile.probed > 0 then Some op
      else scan (i + 1)
  in
  scan 0

let tests =
  [
    tc "Q8 fuses to outer-join/group-by and counts |L|,|R|,matches" `Quick
      (fun () ->
        let eng = engine () in
        let r, rendered = Runner.analyze eng q8 in
        check (Alcotest.list Alcotest.string) "fired" [ "outer-join-groupby" ]
          r.Runner.fired;
        let prof =
          match r.Runner.profile with
          | Some p -> p
          | None -> Alcotest.fail "analyze returned no profile"
        in
        (match find_join_op prof with
        | None -> Alcotest.failf "no join operator in profile:\n%s" rendered
        | Some op ->
          (* build side = the 4 closed auctions, probe side = the 3
             persons, pairs = the 3 buyer matches *)
          check Alcotest.int "build = |R| = 4" 4 op.Profile.build;
          check Alcotest.int "probed = |L| = 3" 3 op.Profile.probed;
          check Alcotest.int "matches = 3" 3 op.Profile.matches;
          check Alcotest.bool "probes >= probed" true
            (op.Profile.probes >= op.Profile.probed));
        (* the annotated render carries the same counters in-line *)
        List.iter
          (fun needle ->
            if not (Re.execp (Re.compile (Re.str needle)) rendered) then
              Alcotest.failf "render misses %S:\n%s" needle rendered)
          [ "build=4"; "probed=3"; "matches=3"; "operators" ]);
    tc "profiled plan run equals the tree interpreter, effects included"
      `Quick (fun () ->
        let eng_i = engine () in
        let interp = observe eng_i (Core.Engine.run eng_i q8) in
        let eng_p = engine () in
        let r, _ = Runner.analyze eng_p q8 in
        let planned = observe eng_p r.Runner.value in
        check (Alcotest.pair Alcotest.string Alcotest.string)
          "result and inserted buyers" interp planned;
        (* and the hand-computed values, so both paths are honest:
           Alice bought i1+i2, Bob nothing, Cara i3 *)
        check Alcotest.string "expected result"
          {|<item person="Alice">2</item><item person="Bob">0</item><item person="Cara">1</item>|}
          (fst interp);
        check Alcotest.string "expected inserts" "p1:i1 p1:i2 p3:i3"
          (snd interp));
    tc "self times decompose: each operator's self <= its total" `Quick
      (fun () ->
        let eng = engine () in
        let r, rendered = Runner.analyze eng q8 in
        let prof = Option.get r.Runner.profile in
        (* render computes self = total - sum(children); a negative
           self would print as such and indicates broken attribution *)
        if Re.execp (Re.compile (Re.str "self=-")) rendered then
          Alcotest.failf "negative self time:\n%s" rendered;
        check Alcotest.bool "all operators invoked" true
          (Profile.n_ops prof > 0));
    tc "service EXPLAIN executes for real under write-side governance"
      `Quick (fun () ->
        let svc = Svc.create ~domains:0 ~tracing:true () in
        let sid = Svc.open_session svc in
        Svc.load_document svc sid ~uri:"log" "<log/>";
        (match
           Svc.explain svc sid {|insert {<hit/>} into {doc("log")/log}|}
         with
        | Ok rendered ->
          check Alcotest.bool "renders operators" true
            (Re.execp (Re.compile (Re.str "operators")) rendered)
        | Error e ->
          Alcotest.failf "explain failed: %s"
            (Xqb_service.Service_error.to_string e));
        (* the side effect landed *)
        (match Svc.query svc sid {|count(doc("log")/log/hit)|} with
        | Ok n -> check Alcotest.string "insert applied" "1" n
        | Error _ -> Alcotest.fail "count failed");
        Svc.shutdown svc);
  ]

let suite = [ ("explain analyze", tests) ]
