(* Language extensions beyond the minimal paper core: typeswitch,
   treat as, the transactional [snap atomic] (§5's failure-control
   sketch), and the extra builtins. *)

open Helpers

let typeswitch_tests =
  [
    expect "typeswitch picks the first matching case"
      {|typeswitch (<a/>)
        case element(b) return 'b'
        case element(a) return 'a'
        default return 'other'|}
      "a";
    expect "typeswitch case binds its variable"
      {|typeswitch ((1, 2, 3))
        case $n as xs:integer+ return sum($n)
        default return -1|}
      "6";
    expect "typeswitch default binds its variable"
      {|typeswitch ('s')
        case xs:integer return 0
        default $d return concat($d, '!')|}
      "s!";
    expect "typeswitch on empty"
      {|typeswitch (())
        case empty-sequence() return 'empty'
        default return 'nonempty'|}
      "empty";
    expect "typeswitch evaluates scrutinee once"
      {|declare variable $x := <x/>;
        (typeswitch ((snap insert {<a/>} into {$x}, $x/a))
         case element(a)+ return 'inserted'
         default return 'missing',
         count($x/a))|}
      "inserted 1";
    expect_error "typeswitch needs a case"
      "typeswitch (1) default return 2" compile_error;
  ]

let treat_tests =
  [
    expect "treat as passes matching values" "(1, 2) treat as xs:integer+" "1 2";
    expect_error "treat as fails on mismatch" "('a') treat as xs:integer"
      (dynamic_error "XPDY0050");
    expect "treat as element" "(<a/> treat as element(a))/name(.)" "a";
    expect "cast as T? accepts the question mark" "'3' cast as xs:integer? + 1" "4";
  ]

let snap_atomic_tests =
  [
    expect "snap atomic applies like ordered on success"
      {|let $x := <x/>
        return (snap atomic { insert {<a/>} into {$x}, insert {<b/>} into {$x} }, $x)|}
      "<x><a></a><b></b></x>";
    tc "snap atomic rolls back applied inner snaps on failure" `Quick (fun () ->
        let eng = Core.Engine.create () in
        (match
           Core.Engine.run eng
             {|declare variable $x := <x><keep/></x>;
               snap atomic {
                 snap delete { $x/keep },
                 error('E', 'abort')
               }|}
         with
        | _ -> Alcotest.fail "expected error"
        | exception Xqb_xdm.Errors.Dynamic_error ("E", _) -> ());
        check Alcotest.string "keep survives" "1"
          (Core.Engine.serialize eng (Core.Engine.run eng "count($x/keep)")));
    tc "snap atomic commits on success" `Quick (fun () ->
        let eng = Core.Engine.create () in
        ignore
          (Core.Engine.run eng
             {|declare variable $x := <x><keep/></x>;
               snap atomic { snap delete { $x/keep } }|});
        check Alcotest.string "keep gone" "0"
          (Core.Engine.serialize eng (Core.Engine.run eng "count($x/keep)")));
    tc "failed conflict snap inside atomic rolls back cleanly" `Quick (fun () ->
        let eng = Core.Engine.create () in
        (match
           Core.Engine.run eng
             {|declare variable $x := <x/>;
               snap atomic {
                 snap { insert {<applied/>} into {$x} },
                 snap conflict { insert {<a/>} into {$x}, insert {<b/>} into {$x} }
               }|}
         with
        | _ -> Alcotest.fail "expected conflict"
        | exception Core.Conflict.Conflict_error _ -> ());
        check Alcotest.string "all rolled back" "0"
          (Core.Engine.serialize eng (Core.Engine.run eng "count($x/*)"));
        check (Alcotest.list Alcotest.string) "invariants" []
          (Xqb_store.Store.validate (Core.Engine.store eng)));
  ]

let builtin_tests =
  [
    expect "fn:compare" "(compare('a','b'), compare('b','a'), compare('a','a'))"
      "-1 1 0";
    expect "fn:compare with empty" "count(compare((), 'a'))" "0";
    expect "string-to-codepoints" "string-to-codepoints('AB')" "65 66";
    expect "codepoints-to-string" "codepoints-to-string((72, 105))" "Hi";
    expect "codepoints round-trip"
      "codepoints-to-string(string-to-codepoints('caf\xc3\xa9'))" "caf\xc3\xa9";
    expect "round-half-to-even"
      "(round-half-to-even(0.5), round-half-to-even(1.5), round-half-to-even(2.5), round-half-to-even(-0.5))"
      "0 2 2 0";
    expect "doc-available" ~pre:(fun eng ->
        ignore (Core.Engine.load_document eng ~uri:"known" "<a/>"))
      "(doc-available('known'), doc-available('unknown'))" "true false";
    expect "fn:id" ~pre:(fun eng ->
        let d =
          Core.Engine.load_document eng ~uri:"d"
            "<r><e id=\"x\"/><e id=\"y\"><f id=\"z\"/></e></r>"
        in
        Core.Engine.bind_node eng "d" d)
      "(count(id('x', $d)), count(id(('x', 'z'), $d)), count(id('nope', $d)))"
      "1 2 0";
  ]

let suite =
  [
    ("ext:typeswitch", typeswitch_tests);
    ("ext:treat", treat_tests);
    ("ext:snap-atomic", snap_atomic_tests);
    ("ext:builtins", builtin_tests);
  ]
