(* The TCP wire edge (lib/service/edge.ml) and the fiber runtime
   beneath it (lib/fiber). Edge tests bind an ephemeral port on
   loopback and speak the newline protocol through real sockets, so
   they cover exactly what a client sees: pipelining, partial reads,
   in-order responses, idle disconnects and the two backpressure
   stages. *)

module Svc = Xqb_service.Service
module Edge = Xqb_service.Edge
module Sched = Xqb_service.Scheduler
module Fiber = Xqb_fiber.Fiber

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Fiber runtime units                                                 *)
(* ------------------------------------------------------------------ *)

let fiber_tests =
  [
    tc "fiber: spawn, yield and promises cooperate" `Quick (fun () ->
        let l = Fiber.create () in
        let order = ref [] in
        let push x = order := x :: !order in
        Fiber.run l (fun () ->
            let p = Fiber.promise l in
            push "main";
            Fiber.spawn l (fun () ->
                push "child";
                Fiber.resolve p 42);
            Fiber.yield ();
            push (Printf.sprintf "got %d" (Fiber.await p)));
        check
          Alcotest.(list string)
          "order" [ "main"; "child"; "got 42" ] (List.rev !order));
    tc "fiber: sleep_ns wakes in deadline order" `Quick (fun () ->
        let l = Fiber.create () in
        let order = ref [] in
        Fiber.run l (fun () ->
            Fiber.spawn l (fun () ->
                Fiber.sleep_ns 30_000_000;
                order := "slow" :: !order);
            Fiber.spawn l (fun () ->
                Fiber.sleep_ns 5_000_000;
                order := "fast" :: !order));
        check
          Alcotest.(list string)
          "order" [ "fast"; "slow" ] (List.rev !order));
    tc "fiber: a foreign thread wakes a waiting fiber" `Quick (fun () ->
        let l = Fiber.create () in
        let got = ref `Timeout in
        Fiber.run l (fun () ->
            let w = Fiber.waker l in
            let (_ : Thread.t) =
              Thread.create
                (fun () ->
                  Thread.delay 0.02;
                  Fiber.wake w)
                ()
            in
            got :=
              Fiber.wait ~waker:w
                ~deadline_ns:(Xqb_obs.Clock.now_ns () + 2_000_000_000)
                ());
        check Alcotest.bool "woken" true (!got = `Woken));
    tc "fiber: wakeups latch — wake before wait is not lost" `Quick
      (fun () ->
        let l = Fiber.create () in
        let got = ref `Timeout in
        Fiber.run l (fun () ->
            let w = Fiber.waker l in
            Fiber.wake w;
            got :=
              Fiber.wait ~waker:w
                ~deadline_ns:(Xqb_obs.Clock.now_ns () + 2_000_000_000)
                ());
        check Alcotest.bool "woken" true (!got = `Woken));
    tc "fiber: deadline_ns alone yields `Timeout" `Quick (fun () ->
        let l = Fiber.create () in
        let got = ref `Woken in
        Fiber.run l (fun () ->
            got :=
              Fiber.wait ~deadline_ns:(Xqb_obs.Clock.now_ns () + 5_000_000) ());
        check Alcotest.bool "timeout" true (!got = `Timeout));
    tc "fiber: stop cancels suspended fibers and runs finalizers" `Quick
      (fun () ->
        let l = Fiber.create () in
        let finalized = ref false in
        Fiber.run l (fun () ->
            Fiber.spawn l (fun () ->
                Fun.protect
                  ~finally:(fun () -> finalized := true)
                  (fun () ->
                    (* park forever; only stop can end this *)
                    ignore
                      (Fiber.wait ~waker:(Fiber.waker l) ());
                    Alcotest.fail "wait returned without a wake"));
            Fiber.yield ();
            Fiber.stop l);
        check Alcotest.bool "finalizer ran" true !finalized;
        check Alcotest.int "no live fibers" 0 (Fiber.live l));
  ]

(* ------------------------------------------------------------------ *)
(* Wire helpers                                                        *)
(* ------------------------------------------------------------------ *)

let with_edge ?(mode = Edge.Fiber) ?(domains = 1) ?max_queue ?(max_conns = 0)
    ?(idle_timeout_ms = 0) f =
  let svc = Svc.create ~domains ?max_queue () in
  Fun.protect
    ~finally:(fun () -> Svc.shutdown svc)
    (fun () ->
      let edge =
        Edge.start svc
          { Edge.default_config with mode; max_conns; idle_timeout_ms }
      in
      Fun.protect ~finally:(fun () -> Edge.stop edge) (fun () -> f svc edge))

(* A client connection: raw fd for writing (so tests control segment
   boundaries exactly) plus a channel for line reads. A receive
   timeout turns a lost reply into a test failure, not a hang. *)
type client = { fd : Unix.file_descr; ic : in_channel }

let connect edge =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Edge.port edge));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  { fd; ic = Unix.in_channel_of_descr fd }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c s = ignore (Unix.write_substring c.fd s 0 (String.length s))
let line c = input_line c.ic

let with_client edge f =
  let c = connect edge in
  Fun.protect ~finally:(fun () -> close_client c) (fun () -> f c)

let eventually name pred =
  let rec go n =
    if pred () then ()
    else if n = 0 then Alcotest.fail name
    else begin
      Thread.delay 0.005;
      go (n - 1)
    end
  in
  go 1000

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Park the single worker domain on a mutex we hold, so the queue
   state is fully deterministic: nothing drains until we unlock. *)
let block_worker svc =
  let m = Mutex.create () in
  Mutex.lock m;
  let fut =
    Sched.submit (Svc.scheduler svc) ~exclusive:true (fun () ->
        Mutex.lock m;
        Mutex.unlock m)
  in
  eventually "worker picked up the blocker" (fun () ->
      Sched.queue_depth (Svc.scheduler svc) = 0);
  (m, fut)

(* ------------------------------------------------------------------ *)
(* Edge behavior                                                       *)
(* ------------------------------------------------------------------ *)

let edge_tests =
  [
    tc "fiber edge: request/response round trips" `Quick (fun () ->
        with_edge (fun _svc edge ->
            with_client edge (fun c ->
                send c "OPEN\n";
                let sid = Scanf.sscanf (line c) "OK %d" (fun n -> n) in
                send c (Printf.sprintf "QUERY %d 1+2*3\n" sid);
                check Alcotest.string "query" "OK 7" (line c);
                send c "nonsense\n";
                check Alcotest.bool "parse error is one ERR line" true
                  (starts_with "ERR " (line c)))));
    tc "fiber edge: pipelined batch answers in submission order" `Quick
      (fun () ->
        with_edge ~domains:2 (fun _svc edge ->
            with_client edge (fun c ->
                send c "OPEN\n";
                let sid = Scanf.sscanf (line c) "OK %d" (fun n -> n) in
                let n = 50 in
                let b = Buffer.create 1024 in
                for i = 1 to n do
                  Buffer.add_string b (Printf.sprintf "QUERY %d %d+0\n" sid i)
                done;
                (* one write carries all 50 requests *)
                send c (Buffer.contents b);
                for i = 1 to n do
                  check Alcotest.string
                    (Printf.sprintf "reply %d" i)
                    (Printf.sprintf "OK %d" i)
                    (line c)
                done);
            let g = Edge.gauges edge in
            check Alcotest.bool "requests counted" true
              (g.Svc.eg_requests >= 51)));
    tc "fiber edge: byte-by-byte writes still parse (partial reads)" `Quick
      (fun () ->
        with_edge (fun _svc edge ->
            with_client edge (fun c ->
                String.iter
                  (fun ch -> send c (String.make 1 ch))
                  "OPEN\n";
                let sid = Scanf.sscanf (line c) "OK %d" (fun n -> n) in
                let req = Printf.sprintf "QUERY %d 40+2\n" sid in
                String.iter (fun ch -> send c (String.make 1 ch)) req;
                check Alcotest.string "split request" "OK 42" (line c))));
    tc "fiber edge: back-to-back one-segment batches" `Quick (fun () ->
        with_edge (fun _svc edge ->
            with_client edge (fun c ->
                send c "OPEN\n";
                let sid = Scanf.sscanf (line c) "OK %d" (fun n -> n) in
                for round = 1 to 10 do
                  let b = Buffer.create 128 in
                  for i = 1 to 4 do
                    Buffer.add_string b
                      (Printf.sprintf "QUERY %d %d*%d\n" sid round i)
                  done;
                  send c (Buffer.contents b);
                  for i = 1 to 4 do
                    check Alcotest.string
                      (Printf.sprintf "round %d reply %d" round i)
                      (Printf.sprintf "OK %d" (round * i))
                      (line c)
                  done
                done)));
    tc "fiber edge: idle timeout disconnects a quiet connection" `Quick
      (fun () ->
        with_edge ~idle_timeout_ms:60 (fun _svc edge ->
            with_client edge (fun c ->
                send c "OPEN\n";
                ignore (line c);
                (* no traffic, no in-flight work: the edge hangs up *)
                match line c with
                | l -> Alcotest.failf "expected EOF, got %S" l
                | exception End_of_file -> ())));
    tc "fiber edge: hard watermark rejects, soft watermark stops reading"
      `Quick (fun () ->
        (* domains=1, max_queue=4 -> soft watermark 3. With the worker
           parked, six pipelined queries fill the queue to 4, the last
           two bounce as [overloaded], and the connection's reads
           suspend until the queue drains. *)
        with_edge ~domains:1 ~max_queue:4 (fun svc edge ->
            let m, blocker = block_worker svc in
            with_client edge (fun c ->
                send c "OPEN\n";
                let sid = Scanf.sscanf (line c) "OK %d" (fun n -> n) in
                let b = Buffer.create 256 in
                for _ = 1 to 6 do
                  Buffer.add_string b (Printf.sprintf "QUERY %d 1+1\n" sid)
                done;
                send c (Buffer.contents b);
                eventually "reads suspended" (fun () ->
                    (Edge.gauges edge).Svc.eg_suspended = 1);
                (* health surfaces the backpressure while it lasts *)
                check Alcotest.bool "health mentions edge-backpressure" true
                  (let h = Svc.health_json svc in
                   let re = Re.str "edge-backpressure" in
                   Re.execp (Re.compile re) h);
                Mutex.unlock m;
                ignore (Sched.await blocker);
                (* all six replies, in order: four OK then two rejects *)
                for i = 1 to 4 do
                  check Alcotest.string
                    (Printf.sprintf "ok %d" i)
                    "OK 2" (line c)
                done;
                for i = 5 to 6 do
                  check Alcotest.bool
                    (Printf.sprintf "reject %d" i)
                    true
                    (starts_with "ERR [overloaded]" (line c))
                done;
                (* reads resumed: the connection still works *)
                send c (Printf.sprintf "QUERY %d 9*9\n" sid);
                check Alcotest.string "resumed" "OK 81" (line c));
            let g = Edge.gauges edge in
            check Alcotest.bool "suspension counted" true
              (g.Svc.eg_suspensions >= 1);
            check Alcotest.int "no connection left suspended" 0
              g.Svc.eg_suspended;
            check Alcotest.bool "overload rejects counted" true
              (g.Svc.eg_overload_rejects >= 2)));
    tc "fiber edge: max-conns refuses the surplus connection" `Quick
      (fun () ->
        with_edge ~max_conns:1 (fun _svc edge ->
            with_client edge (fun c1 ->
                send c1 "OPEN\n";
                ignore (line c1);
                with_client edge (fun c2 ->
                    (* refused with one ERR line, then EOF *)
                    (match line c2 with
                    | l ->
                      check Alcotest.bool "refusal line" true
                        (starts_with "ERR [overloaded]" l)
                    | exception End_of_file -> ());
                    match line c2 with
                    | l -> Alcotest.failf "expected EOF, got %S" l
                    | exception End_of_file -> ());
                (* the admitted connection is unaffected *)
                send c1 "STATS\n";
                check Alcotest.bool "still served" true
                  (starts_with "OK {" (line c1)));
            let g = Edge.gauges edge in
            check Alcotest.bool "reject counted" true
              (g.Svc.eg_conn_rejects >= 1)));
    tc "fiber edge: QUIT closes only its own connection" `Quick (fun () ->
        with_edge (fun _svc edge ->
            with_client edge (fun c1 ->
                with_client edge (fun c2 ->
                    send c2 "QUIT\n";
                    check Alcotest.string "bye" "OK bye" (line c2);
                    (match line c2 with
                    | l -> Alcotest.failf "expected EOF, got %S" l
                    | exception End_of_file -> ());
                    send c1 "OPEN\n";
                    check Alcotest.bool "other conn alive" true
                      (starts_with "OK " (line c1))))));
    tc "fiber edge: STATS exposes the edge gauge block" `Quick (fun () ->
        with_edge (fun svc edge ->
            with_client edge (fun c ->
                send c "STATS\n";
                let l = line c in
                check Alcotest.bool "stats has edge object" true
                  (Re.execp (Re.compile (Re.str "\"edge\":{\"mode\":\"fiber\"")) l));
            ignore (Edge.gauges edge);
            check Alcotest.bool "service sees the gauges" true
              (Svc.edge_gauges svc <> None)));
    tc "threads edge: same protocol, same pipelining contract" `Quick
      (fun () ->
        with_edge ~mode:Edge.Threads ~domains:2 (fun _svc edge ->
            with_client edge (fun c ->
                send c "OPEN\n";
                let sid = Scanf.sscanf (line c) "OK %d" (fun n -> n) in
                let b = Buffer.create 256 in
                for i = 1 to 10 do
                  Buffer.add_string b (Printf.sprintf "QUERY %d %d+100\n" sid i)
                done;
                send c (Buffer.contents b);
                for i = 1 to 10 do
                  check Alcotest.string
                    (Printf.sprintf "reply %d" i)
                    (Printf.sprintf "OK %d" (i + 100))
                    (line c)
                done);
            let g = Edge.gauges edge in
            check Alcotest.string "mode gauge" "threads" g.Svc.eg_mode;
            check Alcotest.bool "accepts counted" true (g.Svc.eg_accepted >= 1)));
    tc "threads edge: max-conns refuses the surplus connection" `Quick
      (fun () ->
        with_edge ~mode:Edge.Threads ~max_conns:1 (fun _svc edge ->
            with_client edge (fun c1 ->
                send c1 "OPEN\n";
                ignore (line c1);
                with_client edge (fun c2 ->
                    (match line c2 with
                    | l ->
                      check Alcotest.bool "refusal line" true
                        (starts_with "ERR [overloaded]" l)
                    | exception End_of_file -> ());
                    match line c2 with
                    | l -> Alcotest.failf "expected EOF, got %S" l
                    | exception End_of_file -> ()))));
  ]

let suite = [ ("edge:fiber", fiber_tests); ("edge:wire", edge_tests) ]
