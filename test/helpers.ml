(* Shared helpers for the test suite. *)

module Store = Xqb_store.Store
module Value = Xqb_xdm.Value
module Item = Xqb_xdm.Item
module Atomic = Xqb_xdm.Atomic

let check = Alcotest.check
let tc = Alcotest.test_case

(* Run a query on a fresh engine; return the serialized result. *)
let run ?mode ?pre src =
  let eng = Core.Engine.create () in
  (match pre with Some f -> f eng | None -> ());
  let v = Core.Engine.run ?mode eng src in
  Core.Engine.serialize eng v

(* Run and expect a given serialized output. *)
let expect ?mode ?pre name src expected =
  tc name `Quick (fun () -> check Alcotest.string name expected (run ?mode ?pre src))

(* Run and expect some exception. *)
let expect_error name src (matches : exn -> bool) =
  tc name `Quick (fun () ->
      match run src with
      | s -> Alcotest.failf "%s: expected an error, got %S" name s
      | exception e ->
        if not (matches e) then
          Alcotest.failf "%s: unexpected exception %s" name (Printexc.to_string e))

let any_dynamic_error = function
  | Xqb_xdm.Errors.Dynamic_error _ -> true
  | _ -> false

let dynamic_error code = function
  | Xqb_xdm.Errors.Dynamic_error (c, _) -> String.equal c code
  | _ -> false

let compile_error = function Core.Engine.Compile_error _ -> true | _ -> false

(* A small fixed document used by many node-level tests:
   doc > a > (b1[x=1] > t1, c1, b2 > (t2, d1)), plus comment and pi. *)
type fixture = {
  store : Store.t;
  doc : Store.node_id;
  a : Store.node_id;
  b1 : Store.node_id;
  x1 : Store.node_id;  (* attribute on b1 *)
  t1 : Store.node_id;
  c1 : Store.node_id;
  b2 : Store.node_id;
  t2 : Store.node_id;
  d1 : Store.node_id;
}

let fixture () =
  let store = Store.create () in
  let doc =
    Store.load_string store "<a><b x=\"1\">one</b><c/><b>two<d/></b></a>"
  in
  let a = List.hd (Store.children store doc) in
  match Store.children store a with
  | [ b1; c1; b2 ] ->
    let x1 = List.hd (Store.attributes store b1) in
    let t1 = List.hd (Store.children store b1) in
    (match Store.children store b2 with
    | [ t2; d1 ] -> { store; doc; a; b1; x1; t1; c1; b2; t2; d1 }
    | _ -> assert false)
  | _ -> assert false

let qn = Xqb_xml.Qname.of_string

(* qcheck -> alcotest adapter with a fixed seed for reproducibility. *)
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest ~long:false
    (QCheck2.Test.make ~count ~name gen prop)

(* Assert [s] is a strict RFC 8259 document (Xqb_obs.Json) and return
   the parse — used to round-trip every JSON emitter in the tree. *)
let check_json name s =
  match Xqb_obs.Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: invalid JSON (%s) in:\n%s" name e s
