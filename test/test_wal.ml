(* The durability subsystem (lib/wal) and its service integration:
   the binary frame codec (qcheck round-trip, torn-tail truncation at
   every byte offset), snapshots, the Durable manager (commit →
   recover digest equality, aborted/incomplete spans, checkpoints,
   shipping), the durable Service end-to-end (restart recovery,
   CHECKPOINT, metrics) and leader → replica convergence driven
   through the same ship/ingest path the network loop uses. *)

open Helpers
module S = Xqb_store.Store
module Codec = Xqb_wal.Codec
module Wal = Xqb_wal.Wal
module Durable = Xqb_wal.Durable
module B64 = Xqb_wal.B64
module Crc32 = Xqb_wal.Crc32
module Svc = Xqb_service.Service
module Catalog = Xqb_service.Catalog
module SE = Xqb_service.Service_error
module P = Xqb_service.Protocol

let ok = function
  | Ok s -> s
  | Error e -> Alcotest.failf "query failed: %s" (SE.to_string e)

let err = function
  | Ok s -> Alcotest.failf "expected an error, got %S" s
  | Error (e : SE.t) -> e

let okr what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what e

let digest_of svc = Codec.store_digest_hex (Catalog.store (Svc.catalog svc))

(* Fresh scratch directories (Durable.recover creates them). *)
let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "xqbang-wal-test-%d-%d" (Unix.getpid ()) !tmp_counter)

let cfg ?(fsync = Wal.Never) ?(checkpoint_bytes = 0) ?(checkpoint_secs = 0.)
    dir =
  { Durable.dir; fsync; checkpoint_bytes; checkpoint_secs }

let with_durable_svc ?fsync dir f =
  let svc = Svc.create ~domains:0 ~durability:(cfg ?fsync dir) () in
  Fun.protect ~finally:(fun () -> Svc.shutdown svc) (fun () -> f svc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let wal_path dir = Filename.concat dir "wal.log"

let snap_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".snap")
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_bytes =
  (* arbitrary bytes, NULs and high bits included — the codec must be
     8-bit clean *)
  QCheck2.Gen.(string_size ~gen:char (0 -- 32))

let gen_qname =
  QCheck2.Gen.oneofl [ qn "a"; qn "b"; qn "ns:c"; qn "long-element-name" ]

let gen_op =
  let open QCheck2.Gen in
  let id = 0 -- 1000 in
  let pos =
    oneof [ return S.First; return S.Last; map (fun n -> S.After n) id ]
  in
  let kind =
    oneofl [ S.Document; S.Element; S.Attribute; S.Text; S.Comment; S.Pi ]
  in
  oneof
    [
      map3 (fun k q c -> S.M_make (k, q, c)) kind (option gen_qname) gen_bytes;
      map3 (fun p po ns -> S.M_insert (p, po, ns)) id pos (list_size (0 -- 4) id);
      map (fun n -> S.M_detach n) id;
      map2 (fun n q -> S.M_rename (n, q)) id gen_qname;
      map2 (fun n c -> S.M_set_content (n, c)) id gen_bytes;
      map (fun n -> S.M_deep_copy n) id;
      return S.M_txn_begin;
      return S.M_txn_commit;
      return S.M_txn_abort;
      map3
        (fun (line, col) (snap_depth, trace_id) desc ->
          S.M_request { line; col; snap_depth; trace_id; desc })
        (pair (0 -- 9999) (0 -- 999))
        (pair (0 -- 5) (option gen_bytes))
        gen_bytes;
    ]

let gen_record =
  let open QCheck2.Gen in
  oneof
    [
      map2 (fun seq op -> Codec.R_entry { S.seq; op }) (0 -- 100000) gen_op;
      map3
        (fun uri root bytes -> Codec.R_doc { uri; root; bytes })
        gen_bytes (0 -- 1000) (0 -- 1000000);
    ]

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let codec =
  [
    tc "crc32 known vector" `Quick (fun () ->
        check Alcotest.int "123456789" 0xCBF43926 (Crc32.digest "123456789"));
    qtest ~count:300 "frame/scan round-trips any record"
      QCheck2.Gen.(pair (0 -- 1_000_000) gen_record)
      (fun (lsn, r) ->
        let f = Codec.frame ~lsn r in
        match Codec.scan f with
        | [ (lsn', r', n) ], valid ->
          lsn' = lsn && r' = r && n = String.length f
          && valid = String.length f
        | _ -> false);
    qtest ~count:300 "base64 round-trips arbitrary bytes" gen_bytes (fun s ->
        B64.decode (B64.encode s) = s);
    tc "scan of a cut log stops exactly at the last whole frame" `Quick
      (fun () ->
        (* three frames, then cut the concatenation at *every* byte
           offset: scan must decode exactly the frames that fit and
           report the valid prefix length as the truncation point *)
        let records =
          [
            Codec.R_entry { S.seq = 0; op = S.M_txn_begin };
            Codec.R_entry
              { S.seq = 1; op = S.M_make (S.Element, Some (qn "a"), "") };
            Codec.R_doc { uri = "d"; root = 1; bytes = 42 };
          ]
        in
        let frames = List.mapi (fun i r -> Codec.frame ~lsn:(i + 1) r) records in
        let log = String.concat "" frames in
        let sizes = List.map String.length frames in
        for cut = 0 to String.length log do
          let prefix = String.sub log 0 cut in
          let decoded, valid = Codec.scan prefix in
          (* how many whole frames fit in [cut] bytes? *)
          let rec fit acc off = function
            | sz :: rest when off + sz <= cut -> fit (acc + 1) (off + sz) rest
            | _ -> (acc, off)
          in
          let expect_n, expect_valid = fit 0 0 sizes in
          check Alcotest.int
            (Printf.sprintf "frames at cut %d" cut)
            expect_n (List.length decoded);
          check Alcotest.int
            (Printf.sprintf "valid offset at cut %d" cut)
            expect_valid valid
        done);
    tc "scan stops at a corrupt frame, keeps the good prefix" `Quick
      (fun () ->
        let f1 = Codec.frame ~lsn:1 (Codec.R_entry { S.seq = 0; op = S.M_txn_begin }) in
        let f2 =
          Codec.frame ~lsn:2
            (Codec.R_entry
               { S.seq = 1; op = S.M_set_content (3, "hello world") })
        in
        let log = Bytes.of_string (f1 ^ f2) in
        (* flip a payload byte inside the second frame: its CRC fails *)
        let off = String.length f1 + 8 + 2 in
        Bytes.set log off (Char.chr (Char.code (Bytes.get log off) lxor 0xff));
        let decoded, valid = Codec.scan (Bytes.to_string log) in
        check Alcotest.int "one frame survives" 1 (List.length decoded);
        check Alcotest.int "truncation point" (String.length f1) valid);
    tc "snapshot round-trips a populated store" `Quick (fun () ->
        let st = S.create () in
        let root = S.load_string st "<r a='1'><b>two</b><!--c--><?p i?></r>" in
        let blob = Codec.snapshot ~lsn:7 ~docs:[ ("d", root, 99) ] st in
        let st' = S.create () in
        let lsn, docs = Codec.restore st' blob in
        check Alcotest.int "lsn" 7 lsn;
        check
          Alcotest.(list (triple string int int))
          "docs" [ ("d", root, 99) ] docs;
        check Alcotest.string "digest" (Codec.store_digest_hex st)
          (Codec.store_digest_hex st'));
    tc "a damaged snapshot never boots" `Quick (fun () ->
        let st = S.create () in
        ignore (S.load_string st "<r><a/></r>");
        let blob = Bytes.of_string (Codec.snapshot ~lsn:1 ~docs:[] st) in
        let off = Bytes.length blob / 2 in
        Bytes.set blob off
          (Char.chr (Char.code (Bytes.get blob off) lxor 0x01));
        match Codec.restore (S.create ()) (Bytes.to_string blob) with
        | exception Codec.Corrupt _ -> ()
        | _ -> Alcotest.fail "expected Codec.Corrupt");
  ]

(* ------------------------------------------------------------------ *)
(* Durable manager                                                     *)
(* ------------------------------------------------------------------ *)

(* A live store with journal recording on, plus its entries. *)
let journaled_store xml =
  let st = S.create () in
  S.journal_start st;
  let root = S.load_string st xml in
  (st, root)

let durable =
  [
    tc "commit → recover reproduces the store byte for byte" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let st, _ = journaled_store "<r><a>1</a><b>2</b></r>" in
        let d, r0 = Durable.recover (cfg dir) in
        check Alcotest.int "fresh boot" 0 r0.Durable.lsn;
        let entries = S.journal_entries_from st 0 in
        let lsn = Durable.commit_entries d entries in
        check Alcotest.int "one lsn per entry" (List.length entries) lsn;
        Durable.close d;
        let d2, r = Durable.recover (cfg dir) in
        check Alcotest.int "frames replayed" (List.length entries)
          r.Durable.wal_frames;
        check Alcotest.string "digest" (Codec.store_digest_hex st)
          (Codec.store_digest_hex r.Durable.store);
        check Alcotest.int "lsn restored" lsn r.Durable.lsn;
        (* LSNs keep increasing across restarts *)
        let lsn2 = Durable.commit_entries d2 [ { S.seq = 99; op = S.M_txn_begin };
                                               { S.seq = 100; op = S.M_txn_commit } ] in
        check Alcotest.bool "monotonic lsn" true (lsn2 = lsn + 2);
        Durable.close d2);
    tc "a trailing incomplete span is dropped on recovery" `Quick (fun () ->
        let dir = fresh_dir () in
        let st, _ = journaled_store "<r/>" in
        let d, _ = Durable.recover (cfg dir) in
        ignore (Durable.commit_entries d (S.journal_entries_from st 0));
        (* a span that begins but never commits: the writer died
           between append and the commit marker *)
        let n = S.journal_length st in
        ignore
          (Durable.commit_entries d
             [
               { S.seq = n; op = S.M_txn_begin };
               { S.seq = n + 1; op = S.M_make (S.Element, Some (qn "z"), "") };
             ]);
        Durable.close d;
        let d2, r = Durable.recover (cfg dir) in
        check Alcotest.string "half-written span ignored"
          (Codec.store_digest_hex st)
          (Codec.store_digest_hex r.Durable.store);
        Durable.close d2);
    tc "an aborted span replays through rollback" `Quick (fun () ->
        let dir = fresh_dir () in
        let st, root = journaled_store "<r><keep/></r>" in
        (try
           S.transactionally st (fun () ->
               let e = S.make_element st (qn "doomed") in
               S.insert st ~parent:root ~position:S.Last [ e ];
               failwith "boom")
         with Failure _ -> ());
        let d, _ = Durable.recover (cfg dir) in
        ignore (Durable.commit_entries d (S.journal_entries_from st 0));
        Durable.close d;
        let d2, r = Durable.recover (cfg dir) in
        check Alcotest.string "rollback reproduced"
          (Codec.store_digest_hex st)
          (Codec.store_digest_hex r.Durable.store);
        Durable.close d2);
    tc "a torn tail is truncated, committed prefix survives" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let st, _ = journaled_store "<r><a/></r>" in
        let d, _ = Durable.recover (cfg dir) in
        ignore (Durable.commit_entries d (S.journal_entries_from st 0));
        Durable.close d;
        (* simulate a crash mid-write: half a frame, then garbage *)
        let frame =
          Codec.frame ~lsn:999
            (Codec.R_entry { S.seq = 0; op = S.M_set_content (1, "x") })
        in
        let torn = String.sub frame 0 (String.length frame - 3) ^ "\x01\xff" in
        let oc =
          open_out_gen [ Open_append; Open_binary ] 0o644 (wal_path dir)
        in
        output_string oc torn;
        close_out oc;
        let d2, r = Durable.recover (cfg dir) in
        check Alcotest.bool "tail dropped" true (r.Durable.truncated_bytes > 0);
        check Alcotest.string "digest" (Codec.store_digest_hex st)
          (Codec.store_digest_hex r.Durable.store);
        (* the truncation is physical: the torn bytes are gone and a
           re-opened WAL appends clean frames after the valid prefix *)
        ignore
          (Durable.commit_entries d2
             [ { S.seq = 0; op = S.M_txn_begin };
               { S.seq = 1; op = S.M_txn_commit } ]);
        Durable.close d2;
        let d3, _ = Durable.recover (cfg dir) in
        Durable.close d3);
    tc "checkpoint truncates the WAL and recovery uses the snapshot"
      `Quick (fun () ->
        let dir = fresh_dir () in
        let st, _ = journaled_store "<r><a>1</a></r>" in
        let d, _ = Durable.recover (cfg dir) in
        ignore (Durable.commit_entries d (S.journal_entries_from st 0));
        let ck = Durable.checkpoint d ~docs:[ ("d", 0, 17) ] st in
        check Alcotest.bool "covers the log" true (ck > 0);
        check Alcotest.int "wal truncated" 0
          (Unix.stat (wal_path dir)).Unix.st_size;
        check Alcotest.int "one snapshot" 1 (List.length (snap_files dir));
        Durable.close d;
        let d2, r = Durable.recover (cfg dir) in
        check Alcotest.int "booted from the snapshot" ck r.Durable.snapshot_lsn;
        check Alcotest.int "no wal frames" 0 r.Durable.wal_frames;
        check
          Alcotest.(list (triple string int int))
          "docs recovered" [ ("d", 0, 17) ] r.Durable.docs;
        check Alcotest.string "digest" (Codec.store_digest_hex st)
          (Codec.store_digest_hex r.Durable.store);
        Durable.close d2);
    tc "only the two newest snapshots are kept" `Quick (fun () ->
        let dir = fresh_dir () in
        let st, _ = journaled_store "<r/>" in
        let d, _ = Durable.recover (cfg dir) in
        ignore (Durable.commit_entries d (S.journal_entries_from st 0));
        for i = 1 to 3 do
          ignore
            (Durable.commit_entries d
               [
                 { S.seq = i * 2; op = S.M_txn_begin };
                 { S.seq = (i * 2) + 1; op = S.M_txn_commit };
               ]);
          ignore (Durable.checkpoint d ~docs:[] st)
        done;
        check Alcotest.int "retention" 2 (List.length (snap_files dir));
        Durable.close d);
    tc "ship before the last checkpoint demands a re-bootstrap" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let st, _ = journaled_store "<r><a/></r>" in
        let d, _ = Durable.recover (cfg dir) in
        let lsn = Durable.commit_entries d (S.journal_entries_from st 0) in
        (match Durable.ship d ~from_lsn:1 ~max:1000 with
        | Ok (last, frames) ->
          check Alcotest.int "all frames" lsn (List.length frames);
          check Alcotest.int "last lsn" lsn last
        | Error `Too_old -> Alcotest.fail "tail should still be available");
        ignore (Durable.checkpoint d ~docs:[] st);
        (match Durable.ship d ~from_lsn:1 ~max:1000 with
        | Ok _ -> Alcotest.fail "frames before the checkpoint must be gone"
        | Error `Too_old -> ());
        (* at the tip: empty batch, not an error *)
        (match Durable.ship d ~from_lsn:(lsn + 1) ~max:1000 with
        | Ok (last, []) -> check Alcotest.int "tip" lsn last
        | Ok _ -> Alcotest.fail "expected an empty batch"
        | Error `Too_old -> Alcotest.fail "tip is never too old");
        Durable.close d);
    tc "a corrupted snapshot refuses to boot" `Quick (fun () ->
        let dir = fresh_dir () in
        let st, _ = journaled_store "<r><a/></r>" in
        let d, _ = Durable.recover (cfg dir) in
        ignore (Durable.commit_entries d (S.journal_entries_from st 0));
        ignore (Durable.checkpoint d ~docs:[] st);
        Durable.close d;
        let snap = Filename.concat dir (List.hd (snap_files dir)) in
        let b = Bytes.of_string (read_file snap) in
        let off = Bytes.length b / 2 in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
        write_file snap (Bytes.to_string b);
        match Durable.recover (cfg dir) with
        | exception Codec.Corrupt _ -> ()
        | d2, _ ->
          Durable.close d2;
          Alcotest.fail "expected Codec.Corrupt");
    tc "fsync always counts syncs; policy strings round-trip" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let d, _ = Durable.recover (cfg ~fsync:Wal.Always dir) in
        ignore
          (Durable.commit_entries d [ { S.seq = 0; op = S.M_txn_begin };
                                      { S.seq = 1; op = S.M_txn_commit } ]);
        let j = check_json "durability stats" (Durable.stats_json d) in
        let num path =
          match
            Option.bind (Xqb_obs.Json.path j path) Xqb_obs.Json.to_float_opt
          with
          | Some f -> int_of_float f
          | None -> Alcotest.failf "missing %s" (String.concat "." path)
        in
        check Alcotest.bool "fsynced" true (num [ "fsyncs" ] >= 1);
        check Alcotest.int "lsn" 2 (num [ "last_lsn" ]);
        Durable.close d;
        List.iter
          (fun p ->
            match Wal.fsync_policy_of_string (Wal.fsync_policy_to_string p) with
            | Ok p' -> check Alcotest.bool "round-trip" true (p = p')
            | Error e -> Alcotest.fail e)
          [ Wal.Always; Wal.Never; Wal.Interval_ms 25 ];
        check Alcotest.bool "bad policy rejected" true
          (Result.is_error (Wal.fsync_policy_of_string "sometimes")));
  ]

(* ------------------------------------------------------------------ *)
(* Durable service end-to-end                                          *)
(* ------------------------------------------------------------------ *)

let service =
  [
    tc "a durable service survives a restart" `Quick (fun () ->
        let dir = fresh_dir () in
        let d1 =
          with_durable_svc dir (fun svc ->
              let s = Svc.open_session svc in
              Svc.load_document svc s ~uri:"d" "<r><a>1</a></r>";
              ignore
                (ok (Svc.query svc s {|snap insert {<b/>} into {doc("d")/r}|}));
              ignore
                (ok
                   (Svc.query svc s
                      {|snap rename {doc("d")/r/a} to {'z'}|}));
              digest_of svc)
        in
        with_durable_svc dir (fun svc ->
            check Alcotest.string "digest after restart" d1 (digest_of svc);
            let s = Svc.open_session svc in
            check Alcotest.string "updates are visible" "<z>1</z>"
              (ok (Svc.query svc s {|doc("d")/r/z|}))));
    tc "a failed update leaves the durable state untouched" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let d1 =
          with_durable_svc dir (fun svc ->
              let s = Svc.open_session svc in
              Svc.load_document svc s ~uri:"d" "<r><a/></r>";
              let before = digest_of svc in
              ignore
                (err
                   (Svc.query svc s
                      {|snap conflict { rename {doc("d")/r} to {'p'},
                                        rename {doc("d")/r} to {'q'} }|}));
              check Alcotest.string "rolled back in memory" before
                (digest_of svc);
              before)
        in
        with_durable_svc dir (fun svc ->
            check Alcotest.string "rolled back on disk" d1 (digest_of svc)));
    tc "CHECKPOINT truncates the WAL, recovery boots from the snapshot"
      `Quick (fun () ->
        let dir = fresh_dir () in
        let d1 =
          with_durable_svc dir (fun svc ->
              let s = Svc.open_session svc in
              Svc.load_document svc s ~uri:"d" "<r><a/></r>";
              ignore
                (ok (Svc.query svc s {|snap insert {<b/>} into {doc("d")/r}|}));
              let ck = okr "checkpoint" (Svc.checkpoint_now svc) in
              check Alcotest.bool "positive lsn" true (ck > 0);
              check Alcotest.int "wal empty" 0
                (Unix.stat (wal_path dir)).Unix.st_size;
              (* post-checkpoint updates land in the fresh WAL *)
              ignore
                (ok (Svc.query svc s {|snap insert {<c/>} into {doc("d")/r}|}));
              digest_of svc)
        in
        with_durable_svc dir (fun svc ->
            check Alcotest.string "snapshot + tail" d1 (digest_of svc);
            let s = Svc.open_session svc in
            check Alcotest.string "both inserts" "2"
              (ok (Svc.query svc s {|count(doc("d")/r/(b|c))|}))));
    tc "JOURNAL STAT and durability gauges" `Quick (fun () ->
        let dir = fresh_dir () in
        with_durable_svc dir (fun svc ->
            let s = Svc.open_session svc in
            Svc.load_document svc s ~uri:"d" "<r/>";
            let j = check_json "journal stat" (Svc.journal_stat_json svc) in
            let get path = Xqb_obs.Json.path j path in
            check Alcotest.bool "recording" true
              (get [ "recording" ] = Some (Xqb_obs.Json.Bool true));
            check Alcotest.bool "has digest" true
              (match get [ "digest" ] with
              | Some (Xqb_obs.Json.Str h) -> String.length h = 32
              | _ -> false);
            check Alcotest.bool "durability in STATS" true
              (match
                 Xqb_obs.Json.path
                   (check_json "stats" (Svc.stats_json svc))
                   [ "durability"; "last_lsn" ]
               with
              | Some _ -> true
              | None -> false);
            let prom = Svc.metrics_prometheus svc in
            List.iter
              (fun needle ->
                check Alcotest.bool needle true
                  (Re.execp (Re.compile (Re.str needle)) prom))
              [
                "xqbang_wal_bytes_appended_total";
                "xqbang_wal_fsync_total";
                "xqbang_wal_last_lsn";
                "xqbang_checkpoint_age_seconds";
              ]));
    tc "non-durable services still answer JOURNAL STAT" `Quick (fun () ->
        let svc = Svc.create ~domains:0 () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            let j = check_json "journal stat" (Svc.journal_stat_json svc) in
            check Alcotest.bool "not recording" true
              (Xqb_obs.Json.path j [ "recording" ]
              = Some (Xqb_obs.Json.Bool false));
            check Alcotest.bool "no durability block" true
              (Svc.durability_json svc = None)));
  ]

(* ------------------------------------------------------------------ *)
(* Replication (ship/ingest driven in-process)                         *)
(* ------------------------------------------------------------------ *)

(* Pump committed frames leader → replica the way the polling thread
   does, [max] frames per SHIP. Returns the next from_lsn. *)
let pump ?(max = 512) leader replica ~from_lsn =
  let rec go from_lsn =
    match Svc.ship_frames leader ~from_lsn ~max with
    | Error e -> Alcotest.failf "ship failed: %s" e
    | Ok (_, "") -> from_lsn
    | Ok (leader_lsn, blob) ->
      ignore (okr "ingest" (Svc.replica_ingest replica ~leader_lsn blob));
      let frames, _ = Codec.scan blob in
      let next =
        List.fold_left (fun acc (l, _, _) -> Stdlib.max acc l) 0 frames + 1
      in
      go next
  in
  go from_lsn

let replication =
  [
    tc "bootstrap + shipping converge the replica, byte for byte" `Quick
      (fun () ->
        let dir = fresh_dir () in
        with_durable_svc dir (fun leader ->
            let replica = Svc.create ~domains:0 ~replica:true () in
            Fun.protect
              ~finally:(fun () -> Svc.shutdown replica)
              (fun () ->
                let ls = Svc.open_session leader in
                Svc.load_document leader ls ~uri:"d" "<r><a>1</a></r>";
                ignore
                  (ok
                     (Svc.query leader ls
                        {|snap insert {<b/>} into {doc("d")/r}|}));
                let lsn0, blob = okr "snapshot" (Svc.snapshot_blob leader) in
                check Alcotest.int "bootstrap lsn"
                  lsn0
                  (okr "bootstrap" (Svc.replica_bootstrap replica blob));
                check Alcotest.string "converged at bootstrap"
                  (digest_of leader) (digest_of replica);
                (* live tail: two more spans, shipped one frame per
                   batch so cut transaction spans must buffer *)
                ignore
                  (ok
                     (Svc.query leader ls
                        {|snap insert {<c/>} into {doc("d")/r}|}));
                ignore
                  (ok
                     (Svc.query leader ls
                        {|snap rename {doc("d")/r/a} to {'renamed'}|}));
                ignore (pump ~max:1 leader replica ~from_lsn:(lsn0 + 1));
                check Alcotest.string "converged after shipping"
                  (digest_of leader) (digest_of replica);
                let rs = Svc.open_session replica in
                check Alcotest.string "replica serves the update" "1"
                  (ok (Svc.query replica rs {|count(doc("d")/r/renamed)|}));
                (* shipped documents resolve without a local load *)
                check Alcotest.string "doc is resident" "1"
                  (ok (Svc.query replica rs {|count(doc("d")/r/c)|}));
                let j =
                  check_json "replica stat" (Svc.replica_stat_json replica)
                in
                check Alcotest.bool "lag zero" true
                  (Xqb_obs.Json.path j [ "lag" ]
                  = Some (Xqb_obs.Json.Num 0.)))));
    tc "ingest is idempotent; replicas reject writes" `Quick (fun () ->
        let dir = fresh_dir () in
        with_durable_svc dir (fun leader ->
            let replica = Svc.create ~domains:0 ~replica:true () in
            Fun.protect
              ~finally:(fun () -> Svc.shutdown replica)
              (fun () ->
                let ls = Svc.open_session leader in
                Svc.load_document leader ls ~uri:"d" "<r/>";
                let lsn0, blob = okr "snapshot" (Svc.snapshot_blob leader) in
                ignore (okr "bootstrap" (Svc.replica_bootstrap replica blob));
                ignore
                  (ok
                     (Svc.query leader ls
                        {|snap insert {<b/>} into {doc("d")/r}|}));
                let leader_lsn, frames =
                  match Svc.ship_frames leader ~from_lsn:(lsn0 + 1) ~max:512 with
                  | Ok (l, f) -> (l, f)
                  | Error e -> Alcotest.failf "ship: %s" e
                in
                let n1 =
                  okr "first ingest"
                    (Svc.replica_ingest replica ~leader_lsn frames)
                in
                check Alcotest.bool "applied something" true (n1 > 0);
                check Alcotest.int "duplicate batch is a no-op" 0
                  (okr "second ingest"
                     (Svc.replica_ingest replica ~leader_lsn frames));
                check Alcotest.string "still converged" (digest_of leader)
                  (digest_of replica);
                (* purity gate as the write fence *)
                let rs = Svc.open_session replica in
                let e =
                  err
                    (Svc.query replica rs
                       {|snap insert {<z/>} into {doc("d")/r}|})
                in
                check Alcotest.bool "read-only error" true
                  (Re.execp
                     (Re.compile (Re.str "read-only replica"))
                     (SE.to_string e));
                let e2 = err (Svc.explain replica rs "1 + 1") in
                check Alcotest.bool "EXPLAIN rejected too" true
                  (Re.execp
                     (Re.compile (Re.str "read-only replica"))
                     (SE.to_string e2));
                (match
                   Svc.load_document replica rs ~uri:"fresh" "<x/>"
                 with
                | exception Failure _ -> ()
                | () -> Alcotest.fail "fresh load must fail on a replica"))));
    tc "corrupt frame batches are rejected before any apply" `Quick
      (fun () ->
        let replica = Svc.create ~domains:0 ~replica:true () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown replica)
          (fun () ->
            match Svc.replica_ingest replica ~leader_lsn:1 "garbage-bytes" with
            | Ok _ -> Alcotest.fail "expected a corrupt-batch error"
            | Error e ->
              check Alcotest.bool "says corrupt" true
                (Re.execp (Re.compile (Re.str "corrupt")) e)));
    tc "durability and replica mode are mutually exclusive" `Quick
      (fun () ->
        let dir = fresh_dir () in
        match Svc.create ~domains:0 ~durability:(cfg dir) ~replica:true () with
        | exception Failure _ -> ()
        | svc ->
          Svc.shutdown svc;
          Alcotest.fail "expected Failure");
  ]

(* ------------------------------------------------------------------ *)
(* Wire verbs                                                          *)
(* ------------------------------------------------------------------ *)

let protocol =
  [
    tc "durability verbs parse" `Quick (fun () ->
        let p line = P.parse line in
        check Alcotest.bool "JOURNAL STAT" true
          (p "JOURNAL STAT" = Ok P.Journal_stat);
        check Alcotest.bool "JOURNAL" true (p "JOURNAL" = Ok P.Journal_stat);
        check Alcotest.bool "REPLICA STAT" true
          (p "REPLICA STAT" = Ok P.Replica_stat);
        check Alcotest.bool "CHECKPOINT" true
          (p "CHECKPOINT" = Ok P.Checkpoint);
        check Alcotest.bool "SNAPSHOT" true (p "SNAPSHOT" = Ok P.Snapshot);
        check Alcotest.bool "SHIP from max" true
          (p "SHIP 5 10" = Ok (P.Ship (5, 10, None)));
        check Alcotest.bool "SHIP default max" true
          (p "SHIP 7" = Ok (P.Ship (7, 512, None)));
        check Alcotest.bool "SHIP with replica id" true
          (p "SHIP 5 10 r-42" = Ok (P.Ship (5, 10, Some "r-42")));
        check Alcotest.bool "SHIP needs a number" true
          (Result.is_error (p "SHIP x"));
        check Alcotest.bool "SHIP max must be positive" true
          (Result.is_error (p "SHIP 1 0")));
  ]

let suite =
  [
    ("wal:codec", codec);
    ("wal:durable", durable);
    ("wal:service", service);
    ("wal:replication", replication);
    ("wal:protocol", protocol);
  ]
