(* The query service layer (lib/service): sessions over a shared
   document catalog, the cross-session plan cache, and the
   purity-gated scheduler. Scheduler tests run the same workload with
   domains=0 (synchronous) and domains=4 and require identical
   results. *)

open Helpers
module Svc = Xqb_service.Service
module Catalog = Xqb_service.Catalog
module Metrics = Xqb_service.Metrics
module Sched = Xqb_service.Scheduler
module PC = Xqb_service.Plan_cache
module SE = Xqb_service.Service_error

let ok = function
  | Ok s -> s
  | Error e -> Alcotest.failf "query failed: %s" (SE.to_string e)

let err = function
  | Ok s -> Alcotest.failf "expected an error, got %S" s
  | Error (e : SE.t) -> e

let kind_t =
  Alcotest.testable
    (fun fmt k -> Format.pp_print_string fmt (SE.kind_to_string k))
    ( = )

(* Expect a failure of the given taxonomy kind. *)
let errk name expected r = check kind_t name expected (err r).SE.kind

let with_service ?(domains = 0) ?cache_capacity ?deadline_ms ?fuel ?max_delta
    ?max_queue ?slow_apply_ms f =
  let svc =
    Svc.create ~domains ?cache_capacity ?deadline_ms ?fuel ?max_delta
      ?max_queue ?slow_apply_ms ()
  in
  Fun.protect ~finally:(fun () -> Svc.shutdown svc) (fun () -> f svc)

(* A few seconds of pure evaluation when ungoverned — long enough
   that deadlines and cancellation deterministically beat it, and it
   classifies parallel-safe (no construction), so it exercises the
   read side. *)
let slow_pure =
  "sum(for $i in 1 to 2000 return count(for $j in 1 to 2000 return $j))"

let doc_xml = "<r><a>1</a><a>2</a><b>x</b></r>"

let sessions =
  [
    tc "functions are per-session" `Quick (fun () ->
        with_service (fun svc ->
            let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
            check Alcotest.string "declare+call" "42"
              (ok (Svc.query svc s1 "declare function fortytwo() { 42 }; fortytwo()"));
            (* s2 never saw the declaration *)
            ignore (err (Svc.query svc s2 "fortytwo()"))));
    tc "globals are per-session" `Quick (fun () ->
        with_service (fun svc ->
            let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
            check Alcotest.string "declare" "7"
              (ok (Svc.query svc s1 "declare variable $g := 7; $g"));
            ignore (err (Svc.query svc s2 "$g"))));
    tc "documents load once and are shared" `Quick (fun () ->
        with_service (fun svc ->
            let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
            Svc.load_document svc s1 ~uri:"d" doc_xml;
            (* second load of the same uri reuses the resident tree *)
            Svc.load_document svc s2 ~uri:"d" "<r><a>only-one</a></r>";
            check Alcotest.string "s2 sees the first load" "2"
              (ok (Svc.query svc s2 {|count($d//a)|}));
            check Alcotest.int "refcounted twice" 2
              (Catalog.refcount (Svc.catalog svc) "d");
            Svc.close_session svc s1;
            check Alcotest.int "release on close" 1
              (Catalog.refcount (Svc.catalog svc) "d");
            Svc.close_session svc s2;
            check Alcotest.bool "evicted at zero" true
              (Catalog.find (Svc.catalog svc) "d" = None)));
    tc "fn:doc resolves across sessions" `Quick (fun () ->
        with_service (fun svc ->
            let s1 = Svc.open_session svc in
            Svc.load_document svc s1 ~uri:"d" doc_xml;
            (* s2 never loaded anything: resolution goes through the
               shared catalog *)
            let s2 = Svc.open_session svc in
            check Alcotest.string "doc() from the catalog" "2"
              (ok (Svc.query svc s2 {|count(doc("d")//a)|}))));
    tc "unknown session is an error" `Quick (fun () ->
        with_service (fun svc ->
            match Svc.query svc 999 "1" with
            | exception Failure _ -> ()
            | _ -> Alcotest.fail "expected Failure"));
  ]

let plan_cache =
  [
    tc "whitespace-insensitive cross-session hits" `Quick (fun () ->
        with_service (fun svc ->
            let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
            check Alcotest.string "miss" "2" (ok (Svc.query svc s1 "1 + 1"));
            check Alcotest.string "hit" "2"
              (ok (Svc.query svc s2 "1    +\n  1"));
            let st = Svc.cache_stats svc in
            check Alcotest.int "hits" 1 st.PC.hits;
            check Alcotest.int "misses" 1 st.PC.misses));
    tc "cached plans carry function declarations" `Quick (fun () ->
        with_service (fun svc ->
            let src = "declare function sq($x) { $x * $x }; sq(3)" in
            let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
            check Alcotest.string "compile" "9" (ok (Svc.query svc s1 src));
            (* the hit installs sq into s2, so the cached body runs *)
            check Alcotest.string "cache hit" "9" (ok (Svc.query svc s2 src));
            check Alcotest.int "was a hit" 1 (Svc.cache_stats svc).PC.hits));
    tc "distinct string literals get distinct plans" `Quick (fun () ->
        (* Regression: normalize_key used to collapse whitespace
           inside literals, so string-length("a b") and
           string-length("a  b") shared a key and the second query
           was answered with the first one's plan. *)
        with_service (fun svc ->
            let s = Svc.open_session svc in
            check Alcotest.string "one space" "3"
              (ok (Svc.query svc s {|string-length("a b")|}));
            check Alcotest.string "two spaces" "4"
              (ok (Svc.query svc s {|string-length("a  b")|}));
            let st = Svc.cache_stats svc in
            check Alcotest.int "no false hit" 0 st.PC.hits;
            check Alcotest.int "two distinct entries" 2 st.PC.misses));
    tc "normalize_key is literal- and comment-aware" `Quick (fun () ->
        let n = PC.normalize_key in
        check Alcotest.string "collapses code whitespace" "1 + 1"
          (n "1   +\n\t 1");
        check Alcotest.string "preserves single-quoted body" "'a  b'"
          (n "'a  b'");
        check Alcotest.string "code around a literal still collapses"
          "concat( 'a  b' , 'c' )"
          (n "concat( 'a  b' ,  'c' )");
        check Alcotest.string "double quotes too" {|x eq "a  b"|}
          (n {|x   eq  "a  b"|});
        check Alcotest.string "doubled-quote escape stays in the literal"
          {|"he said ""hi  there"""|}
          (n {|"he said ""hi  there"""|});
        check Alcotest.string "comments are preserved verbatim"
          "1 (: two  spaces (: nested :) kept :) + 1"
          (n "1  (: two  spaces (: nested :) kept :)  + 1");
        check Alcotest.string "lone paren is still code" "( 1 )"
          (n "(  1  )"));
    tc "bounded LRU evicts" `Quick (fun () ->
        with_service ~cache_capacity:2 (fun svc ->
            let s = Svc.open_session svc in
            ignore (ok (Svc.query svc s "1"));
            ignore (ok (Svc.query svc s "2"));
            ignore (ok (Svc.query svc s "3"));
            let st = Svc.cache_stats svc in
            check Alcotest.bool "evicted" true (st.PC.evictions >= 1);
            check Alcotest.bool "bounded" true (st.PC.size <= 2);
            (* "1" was least recently used: re-running it is a miss *)
            let misses = st.PC.misses in
            ignore (ok (Svc.query svc s "1"));
            check Alcotest.int "re-miss after eviction" (misses + 1)
              (Svc.cache_stats svc).PC.misses));
  ]

let reads =
  [|
    {|count(doc("d")//a)|};
    {|count(for $x in doc("d")//a where $x = "1" return $x)|};
    {|count(doc("d")//b) + count(doc("d")//a)|};
  |]

(* Pure-only workload: with no writers, results are independent of
   scheduling, so the 4-domain run must match the synchronous one
   exactly, entry for entry. *)
let pure_workload svc =
  let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
  Svc.load_document svc s1 ~uri:"d" doc_xml;
  let jobs =
    List.init 20 (fun i ->
        ((if i mod 2 = 0 then s1 else s2), reads.(i mod 3)))
  in
  let futs = List.map (fun (sid, q) -> Svc.submit svc sid q) jobs in
  List.map (fun f -> ok (Sched.await_exn f)) futs

(* Mixed workload: one insert every 5th query. Read/write
   *interleaving* is scheduler-dependent (a read may run before or
   after a concurrent insert — exactly the latitude the paper's
   semantics give a store shared between clients), but the final
   store state is not: every insert must land. *)
let mixed_workload svc =
  let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
  Svc.load_document svc s1 ~uri:"d" doc_xml;
  Svc.load_document svc s1 ~uri:"log" "<log/>";
  let jobs =
    List.init 20 (fun i ->
        let sid = if i mod 2 = 0 then s1 else s2 in
        if i mod 5 = 0 then
          (sid, Printf.sprintf {|insert {element hit {%d}} into {doc("log")/log}|} i)
        else (sid, reads.(i mod 3)))
  in
  let futs = List.map (fun (sid, q) -> Svc.submit svc sid q) jobs in
  List.iter (fun f -> ignore (ok (Sched.await_exn f))) futs;
  ok (Svc.query svc s1 {|count(doc("log")/log/hit)|})

let scheduler =
  [
    tc "pure queries classify parallel, allocating ones do not" `Quick
      (fun () ->
        with_service (fun svc ->
            let s = Svc.open_session svc in
            Svc.load_document svc s ~uri:"d" doc_xml;
            ignore (ok (Svc.query svc s {|count(doc("d")//a)|}));
            (* Pure but allocating (constructor): must take the write
               side — a fork evaluating it would grow the shared store *)
            ignore (ok (Svc.query svc s "<a/>"));
            let _, par, excl, _ = Metrics.counts (Svc.metrics svc) in
            check Alcotest.int "parallel" 1 par;
            check Alcotest.int "exclusive" 1 excl));
    tc "concurrent pure queries match sequential results" `Quick (fun () ->
        let seq = with_service ~domains:0 pure_workload in
        let par = with_service ~domains:4 pure_workload in
        check Alcotest.(list string) "identical results" seq par);
    tc "every update lands under the 4-domain pool" `Quick (fun () ->
        with_service ~domains:4 (fun svc ->
            let final = mixed_workload svc in
            check Alcotest.string "4 inserts applied" "4" final;
            let q, par, excl, errors = Metrics.counts (Svc.metrics svc) in
            check Alcotest.int "queries" 21 q;
            check Alcotest.int "errors" 0 errors;
            (* 4 inserts take the write side; reads + the final count
               take the read side *)
            check Alcotest.int "exclusive" 4 excl;
            check Alcotest.int "parallel" 17 par));
    tc "errors are reported, service stays usable" `Quick (fun () ->
        with_service ~domains:2 (fun svc ->
            let s = Svc.open_session svc in
            ignore (err (Svc.query svc s "1 +"));  (* parse error *)
            ignore (err (Svc.query svc s "$nope"));  (* static error *)
            check Alcotest.string "still alive" "2"
              (ok (Svc.query svc s "1 + 1"))));
  ]

(* Resource governance: budgets (fuel / wall-clock deadline /
   pending-∆ cap) kill runaway queries with structured [Timeout]
   errors, cancellation kills them with [Cancelled], and in every
   case the store is left unchanged and the service stays usable. *)
let governance =
  [
    tc "fuel exhaustion is a timeout; service stays usable" `Quick (fun () ->
        with_service ~fuel:10_000 (fun svc ->
            let s = Svc.open_session svc in
            errk "fuel" SE.Timeout (Svc.query svc s slow_pure);
            check Alcotest.string "next query fine" "2"
              (ok (Svc.query svc s "1 + 1"));
            let by_kind = Metrics.errors_by_kind (Svc.metrics svc) in
            check Alcotest.int "counted as timeout" 1
              (List.assoc SE.Timeout by_kind)));
    tc "wall-clock deadline fires well before the query would finish"
      `Quick (fun () ->
        with_service ~deadline_ms:100 (fun svc ->
            let s = Svc.open_session svc in
            let t0 = Unix.gettimeofday () in
            errk "deadline" SE.Timeout (Svc.query svc s slow_pure);
            let elapsed = Unix.gettimeofday () -. t0 in
            (* Ungoverned this runs for seconds; the 100ms budget plus
               generous scheduling slack must beat that. *)
            check Alcotest.bool "killed promptly" true (elapsed < 3.0);
            check Alcotest.string "still alive" "4"
              (ok (Svc.query svc s "2 + 2"))));
    tc "pending-delta cap rejects oversized snap frames, store unchanged"
      `Quick (fun () ->
        with_service ~max_delta:10 (fun svc ->
            let s = Svc.open_session svc in
            Svc.load_document svc s ~uri:"d" doc_xml;
            errk "delta cap" SE.Timeout
              (Svc.query svc s
                 {|snap { for $i in 1 to 100
                          return insert {<z/>} into {doc("d")/r} }|});
            check Alcotest.string "no partial insert" "0"
              (ok (Svc.query svc s {|count(doc("d")//z)|}))));
    tc "a timed-out update rolls back effects already applied" `Quick
      (fun () ->
        with_service ~deadline_ms:100 (fun svc ->
            let s = Svc.open_session svc in
            Svc.load_document svc s ~uri:"d" doc_xml;
            (* The snap closes (and applies the insert) long before
               the deadline kills the slow tail; the write side runs
               inside a store transaction, so the probe is undone. *)
            errk "killed after snap" SE.Timeout
              (Svc.query svc s
                 (Printf.sprintf
                    {|(snap insert {<probe/>} into {doc("d")/r}, %s)|}
                    slow_pure));
            check Alcotest.string "probe rolled back" "0"
              (ok (Svc.query svc s {|count(doc("d")//probe)|}))));
    tc "cancel kills an in-flight job with [Cancelled]" `Quick (fun () ->
        with_service ~domains:2 (fun svc ->
            let s = Svc.open_session svc in
            let jid, fut = Svc.submit_job svc s slow_pure in
            check Alcotest.bool "job found" true (Svc.cancel svc jid);
            errk "cancelled" SE.Cancelled (Svc.await fut);
            check Alcotest.bool "idempotent miss after completion" false
              (Svc.cancel svc jid);
            check Alcotest.string "service survives" "2"
              (ok (Svc.query svc s "1 + 1"));
            let by_kind = Metrics.errors_by_kind (Svc.metrics svc) in
            check Alcotest.int "counted as cancelled" 1
              (List.assoc SE.Cancelled by_kind)));
    tc "cli-style budget: Engine.with_budget kills a bare engine query"
      `Quick (fun () ->
        (* What bin/xqbang --fuel does, without the service layer. *)
        let eng = Core.Engine.create () in
        let budget = Xqb_governor.Budget.create ~fuel:5_000 () in
        match
          Core.Engine.with_budget eng (Some budget) (fun () ->
              Core.Engine.run eng slow_pure)
        with
        | _ -> Alcotest.fail "expected Budget_exceeded"
        | exception Xqb_governor.Budget.Budget_exceeded
            Xqb_governor.Budget.Fuel ->
            ());
  ]

let wait_for_drain sched =
  (* Spin until the worker has picked up the queued job. *)
  let rec go n =
    if n = 0 then Alcotest.fail "queue never drained"
    else if Sched.queue_depth sched > 0 then (
      Thread.delay 0.005;
      go (n - 1))
  in
  go 1000

(* Admission control and shutdown semantics, at both the service and
   the raw scheduler level. *)
let admission =
  [
    tc "queue over the watermark is rejected as [Overloaded]" `Quick
      (fun () ->
        with_service ~domains:1 ~max_queue:1 (fun svc ->
            let s = Svc.open_session svc in
            let jid1, f1 = Svc.submit_job svc s slow_pure in
            (* Wait until the worker holds job 1, so job 2 is the only
               queued entry and job 3 trips the watermark. *)
            wait_for_drain (Svc.scheduler svc);
            let _, f2 = Svc.submit_job svc s "1 + 1" in
            let _, f3 = Svc.submit_job svc s "2 + 2" in
            errk "rejected" SE.Overloaded (Svc.await f3);
            (* Don't sit through the slow job: cancel it. *)
            check Alcotest.bool "cancelled the hog" true (Svc.cancel svc jid1);
            errk "hog dies cancelled" SE.Cancelled (Svc.await f1);
            check Alcotest.string "queued job still ran" "2"
              (ok (Svc.await f2));
            let by_kind = Metrics.errors_by_kind (Svc.metrics svc) in
            check Alcotest.int "overload counted" 1
              (List.assoc SE.Overloaded by_kind)));
    tc "submit after shutdown fails uniformly (service, domains 0 and 4)"
      `Quick (fun () ->
        List.iter
          (fun domains ->
            let svc = Svc.create ~domains () in
            let s = Svc.open_session svc in
            Svc.shutdown svc;
            errk
              (Printf.sprintf "domains=%d" domains)
              SE.Overloaded
              (Svc.query svc s "1 + 1"))
          [ 0; 4 ]);
    tc "submit after shutdown raises uniformly (scheduler, domains 0 and 4)"
      `Quick (fun () ->
        (* The domains=0 synchronous path used to ignore [stopping]
           and happily run jobs after shutdown; both configurations
           must now agree. *)
        List.iter
          (fun domains ->
            let sched = Sched.create ~domains () in
            Sched.shutdown sched;
            match Sched.submit sched ~exclusive:false (fun () -> 42) with
            | _ ->
                Alcotest.failf "domains=%d accepted work after shutdown"
                  domains
            | exception Sched.Shut_down -> ())
          [ 0; 4 ]);
    tc "queue-time deadline: expired jobs never run" `Quick (fun () ->
        let sched = Sched.create ~domains:1 () in
        Fun.protect
          ~finally:(fun () -> Sched.shutdown sched)
          (fun () ->
            let f1 =
              Sched.submit sched ~exclusive:false (fun () ->
                  Unix.sleepf 0.25;
                  "slow done")
            in
            wait_for_drain sched;
            let aborted = ref false in
            let f2 =
              Sched.submit sched
                ~deadline:(Xqb_obs.Clock.now_ns () + 50_000_000)
                ~on_abort:(fun _ -> aborted := true)
                ~exclusive:false
                (fun () -> "should never run")
            in
            (match Sched.await f2 with
            | Error Sched.Expired_in_queue -> ()
            | Ok s -> Alcotest.failf "expired job ran: %s" s
            | Error e -> raise e);
            check Alcotest.bool "on_abort fired" true !aborted;
            check Alcotest.string "first job unaffected" "slow done"
              (Sched.await_exn f1)));
    tc "queue-time deadline: domains=0 agrees with the pool" `Quick (fun () ->
        (* regression: the synchronous path used to ignore [deadline]
           entirely — an already-expired job still executed, diverging
           from the pool's [Expired_in_queue] abort *)
        let sched = Sched.create ~domains:0 () in
        Fun.protect
          ~finally:(fun () -> Sched.shutdown sched)
          (fun () ->
            let ran = ref false and aborted = ref false in
            let f =
              Sched.submit sched
                ~deadline:(Xqb_obs.Clock.now_ns () - 1)
                ~on_abort:(fun _ -> aborted := true)
                ~exclusive:false
                (fun () -> ran := true)
            in
            (match Sched.await f with
            | Error Sched.Expired_in_queue -> ()
            | Ok () -> Alcotest.fail "expired job executed on the sync path"
            | Error e -> raise e);
            check Alcotest.bool "job body never ran" false !ran;
            check Alcotest.bool "on_abort fired" true !aborted));
    tc "expired jobs get a tagged queue.wait span, not phantom execution"
      `Quick (fun () ->
        (* regression: worker_loop used to emit the plain queue.wait
           span for jobs it then aborted as expired, so traces showed
           execution of work that never ran *)
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        let sched = Sched.create ~domains:1 () in
        Fun.protect
          ~finally:(fun () -> Sched.shutdown sched)
          (fun () ->
            let tr_hog = Xqb_obs.Trace.create () in
            let f0 =
              Sched.submit sched ~trace:tr_hog ~exclusive:false (fun () ->
                  Unix.sleepf 0.15)
            in
            wait_for_drain sched;
            let tr = Xqb_obs.Trace.create () in
            let f =
              Sched.submit sched ~trace:tr
                ~deadline:(Xqb_obs.Clock.now_ns () + 20_000_000)
                ~exclusive:false
                (fun () -> ())
            in
            (match Sched.await f with
            | Error Sched.Expired_in_queue -> ()
            | Ok () -> Alcotest.fail "job should have expired behind the hog"
            | Error e -> raise e);
            ignore (Sched.await_exn f0);
            check Alcotest.bool "expired span is tagged" true
              (contains (Xqb_obs.Trace.to_chrome_json tr) "expired");
            check Alcotest.bool "a run job's span is untagged" false
              (contains (Xqb_obs.Trace.to_chrome_json tr_hog) "expired")));
    tc "deadlined shutdown abandons still-queued jobs" `Quick (fun () ->
        let sched = Sched.create ~domains:1 () in
        let f1 =
          Sched.submit sched ~exclusive:false (fun () ->
              Unix.sleepf 0.3;
              "ran")
        in
        wait_for_drain sched;
        let f2 = Sched.submit sched ~exclusive:false (fun () -> "queued") in
        let t0 = Unix.gettimeofday () in
        Sched.shutdown ~deadline:0.05 sched;
        check Alcotest.bool "did not drain-wait for the runner" true
          (Unix.gettimeofday () -. t0 < 2.0);
        (match Sched.await f2 with
        | Error Sched.Shut_down -> ()
        | Ok s -> Alcotest.failf "abandoned job ran: %s" s
        | Error e -> raise e);
        check Alcotest.string "running job completed" "ran"
          (Sched.await_exn f1));
  ]

(* -- effect observability: DELTA, SLOWLOG, METRICS PROM ------------- *)

module J = Xqb_obs.Json
module Proto = Xqb_service.Protocol

let num_at v path =
  match Option.bind (J.path v path) J.to_float_opt with
  | Some f -> int_of_float f
  | None -> Alcotest.failf "missing %s" (String.concat "." path)

let updating_query =
  {|let $x := <x><a/></x>
    return (snap { insert {<b/>} into {$x},
                   insert {<c/>} into {$x},
                   delete {$x/a} },
            count($x/*))|}

let observability =
  [
    tc "DELTA: last write-side job's ∆ statistics" `Quick (fun () ->
        with_service (fun svc ->
            let s = Svc.open_session svc in
            check Alcotest.bool "none before any write-side job" true
              (Svc.delta_json svc = None);
            check Alcotest.string "query result" "2"
              (ok (Svc.query svc s updating_query));
            match Svc.delta_json svc with
            | None -> Alcotest.fail "expected ∆ statistics"
            | Some j ->
              let v = check_json "delta" j in
              check Alcotest.int "inserts" 2 (num_at v [ "requests"; "insert" ]);
              check Alcotest.int "deletes" 1 (num_at v [ "requests"; "delete" ]);
              check Alcotest.int "total" 3 (num_at v [ "total_requests" ]);
              check Alcotest.bool "snaps counted" true (num_at v [ "snaps" ] >= 1);
              check Alcotest.bool "depth recorded" true
                (num_at v [ "max_snap_depth" ] >= 1)));
    tc "DELTA tracks the most recent write-side job" `Quick (fun () ->
        with_service (fun svc ->
            let s = Svc.open_session svc in
            ignore (ok (Svc.query svc s updating_query));
            let jid1 =
              num_at (check_json "d1" (Option.get (Svc.delta_json svc))) [ "jid" ]
            in
            ignore
              (ok (Svc.query svc s "snap { for $i in 1 to 3 return () }"));
            let v = check_json "d2" (Option.get (Svc.delta_json svc)) in
            check Alcotest.bool "newer jid" true (num_at v [ "jid" ] > jid1);
            check Alcotest.int "no requests this time" 0
              (num_at v [ "total_requests" ])));
    tc "SLOWLOG: threshold 0 catches every effecting job" `Quick (fun () ->
        with_service ~slow_apply_ms:0 (fun svc ->
            let s = Svc.open_session svc in
            check Alcotest.int "empty at start" 0 (Svc.slowlog_length svc);
            (* pure queries never enter the slowlog *)
            ignore (ok (Svc.query svc s "1 + 1"));
            check Alcotest.int "pure query skipped" 0 (Svc.slowlog_length svc);
            ignore (ok (Svc.query svc s updating_query));
            check Alcotest.int "one entry" 1 (Svc.slowlog_length svc);
            let v = check_json "slowlog" (Svc.slowlog_json svc) in
            match J.to_list v with
            | [ e ] ->
              check Alcotest.int "requests" 3 (num_at e [ "requests" ]);
              check Alcotest.int "session" s (num_at e [ "sid" ]);
              (match Option.bind (J.member "src" e) J.to_string_opt with
              | Some src ->
                check Alcotest.bool "src captured" true
                  (String.length src > 0)
              | None -> Alcotest.fail "src missing")
            | l -> Alcotest.failf "expected one entry, got %d" (List.length l)));
    tc "SLOWLOG: default threshold keeps fast jobs out" `Quick (fun () ->
        with_service (fun svc ->
            let s = Svc.open_session svc in
            ignore (ok (Svc.query svc s updating_query));
            check Alcotest.int "no entries" 0 (Svc.slowlog_length svc)));
    tc "METRICS PROM: exposition covers counters and summaries" `Quick
      (fun () ->
        with_service ~slow_apply_ms:0 (fun svc ->
            let s = Svc.open_session svc in
            ignore (ok (Svc.query svc s "1 + 1"));
            ignore (ok (Svc.query svc s updating_query));
            ignore (err (Svc.query svc s "1 +"));
            let body = Svc.metrics_prometheus svc in
            let has sub = Re.execp (Re.compile (Re.str sub)) body in
            List.iter
              (fun sub ->
                if not (has sub) then
                  Alcotest.failf "exposition lacks %S:\n%s" sub body)
              [
                "# TYPE xqbang_queries_total counter";
                "xqbang_queries_total 3";
                "xqbang_queries_by_purity_total{purity=\"pure\"}";
                "xqbang_query_errors_total 1";
                "xqbang_update_requests_total 3";
                "xqbang_deltas_applied_total";
                "xqbang_query_latency_ns{quantile=\"0.99\"}";
                (* failed queries record no latency sample *)
                "xqbang_query_latency_ns_count 2";
                "# TYPE xqbang_phase_ns summary";
              ];
            (* every line is a comment or "name[{labels}] value";
               summaries may legitimately emit +Inf/-Inf/NaN *)
            let line_re =
              Re.compile
                (Re.Perl.re
                   {|^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([-+0-9.eE]+|\+Inf|-Inf|NaN))$|})
            in
            List.iter
              (fun line ->
                if line <> "" && not (Re.execp line_re line) then
                  Alcotest.failf "malformed exposition line %S" line)
              (String.split_on_char '\n' body)));
    tc "METRICS PROM: page-wide exposition lint" `Quick (fun () ->
        (* parse the whole page back: every sample's family must have
           exactly one # HELP and one # TYPE line (before its first
           sample), and counter families must end in _total *)
        with_service (fun svc ->
            let s = Svc.open_session svc in
            ignore (ok (Svc.query svc s "1 + 1"));
            ignore (ok (Svc.query svc s updating_query));
            let body = Svc.metrics_prometheus svc in
            let helps = Hashtbl.create 32 and types = Hashtbl.create 32 in
            let bump tbl name =
              Hashtbl.replace tbl name
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))
            in
            let sample_re =
              Re.compile
                (Re.Perl.re {|^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? |})
            in
            let family name =
              (* _sum/_count belong to their summary family *)
              let strip suf =
                if Filename.check_suffix name suf then
                  Some (Filename.chop_suffix name suf)
                else None
              in
              match (strip "_sum", strip "_count") with
              | Some f, _ when Hashtbl.mem types f -> f
              | _, Some f when Hashtbl.mem types f -> f
              | _ -> name
            in
            List.iter
              (fun line ->
                match String.split_on_char ' ' line with
                | "#" :: "HELP" :: name :: _ -> bump helps name
                | "#" :: "TYPE" :: name :: kind :: _ ->
                  bump types name;
                  if
                    kind = "counter"
                    && not (Filename.check_suffix name "_total")
                  then
                    Alcotest.failf "counter %s does not end in _total" name
                | _ when line = "" -> ()
                | _ -> (
                  match Re.exec_opt sample_re line with
                  | None -> Alcotest.failf "unparseable line %S" line
                  | Some g ->
                    let f = family (Re.Group.get g 1) in
                    if not (Hashtbl.mem types f) then
                      Alcotest.failf "sample %S before any # TYPE for %s"
                        line f;
                    if not (Hashtbl.mem helps f) then
                      Alcotest.failf "family %s has no # HELP" f))
              (String.split_on_char '\n' body);
            Hashtbl.iter
              (fun name n ->
                if n <> 1 then
                  Alcotest.failf "family %s declared # TYPE %d times" name n)
              types;
            Hashtbl.iter
              (fun name n ->
                if n <> 1 then
                  Alcotest.failf "family %s declared # HELP %d times" name n)
              helps;
            (* the new telemetry families are on the page *)
            List.iter
              (fun f ->
                if not (Hashtbl.mem types f) then
                  Alcotest.failf "missing family %s" f)
              [
                "xqbang_window_rate"; "xqbang_window_p99_ns";
                "xqbang_slo_burn_rate"; "xqbang_trace_ring_size";
                "xqbang_trace_ring_evictions_total"; "xqbang_events_total";
                "xqbang_events_by_level_total"; "xqbang_health_status";
              ]));
    tc "wire protocol parses the observability verbs" `Quick (fun () ->
        let is_ok r = function
          | Ok x -> x = r
          | Error _ -> false
        in
        check Alcotest.bool "DELTA" true
          (is_ok Proto.Delta (Proto.parse "DELTA"));
        check Alcotest.bool "SLOWLOG" true
          (is_ok Proto.Slowlog (Proto.parse "SLOWLOG"));
        check Alcotest.bool "METRICS" true
          (is_ok Proto.Metrics_prom (Proto.parse "METRICS"));
        check Alcotest.bool "METRICS PROM" true
          (is_ok Proto.Metrics_prom (Proto.parse "METRICS PROM"));
        check Alcotest.bool "METRICS bogus rejected" true
          (match Proto.parse "METRICS JSONX" with Error _ -> true | _ -> false);
        check Alcotest.bool "HEALTH" true
          (is_ok Proto.Health (Proto.parse "HEALTH"));
        check Alcotest.bool "HEALTH takes no args" true
          (match Proto.parse "HEALTH NOW" with Error _ -> true | _ -> false);
        check Alcotest.bool "EVENTS default" true
          (is_ok (Proto.Events (50, None)) (Proto.parse "EVENTS"));
        check Alcotest.bool "EVENTS TAIL" true
          (is_ok (Proto.Events (10, None)) (Proto.parse "EVENTS TAIL 10"));
        check Alcotest.bool "EVENTS LEVEL" true
          (is_ok (Proto.Events (50, Some "warn")) (Proto.parse "EVENTS LEVEL warn"));
        check Alcotest.bool "EVENTS TAIL + LEVEL" true
          (is_ok
             (Proto.Events (5, Some "error"))
             (Proto.parse "EVENTS TAIL 5 LEVEL ERROR"));
        check Alcotest.bool "EVENTS bad level rejected" true
          (match Proto.parse "EVENTS LEVEL loud" with
          | Error _ -> true
          | _ -> false);
        check Alcotest.bool "EVENTS bad tail rejected" true
          (match Proto.parse "EVENTS TAIL 0" with Error _ -> true | _ -> false));
  ]

(* -- Health telemetry: HEALTH, EVENTS, the trace ring ---------------- *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "xqbang-svc-health-%d-%d" (Unix.getpid ()) !tmp_counter)

let durable_cfg dir =
  { (Xqb_wal.Durable.default_config ~dir) with Xqb_wal.Durable.fsync = Always }

let status_of svc =
  let v = check_json "health" (Svc.health_json svc) in
  match Option.bind (J.member "status" v) J.to_string_opt with
  | Some s -> s
  | None -> Alcotest.fail "health_json has no status"

let reason_codes svc =
  let v = check_json "health" (Svc.health_json svc) in
  match J.member "reasons" v with
  | Some a ->
    List.filter_map
      (fun r -> Option.bind (J.member "code" r) J.to_string_opt)
      (J.to_list a)
  | None -> []

let health =
  [
    tc "HEALTH: a quiet service is ok with no reasons" `Quick (fun () ->
        with_service (fun svc ->
            let s = Svc.open_session svc in
            ignore (ok (Svc.query svc s "1 + 1"));
            check Alcotest.string "status" "ok" (status_of svc);
            check Alcotest.int "no reasons" 0 (List.length (reason_codes svc));
            check Alcotest.string "accessor agrees" "ok"
              (Svc.health_status svc)));
    tc "HEALTH: sustained errors burn the availability SLO" `Quick (fun () ->
        with_service (fun svc ->
            let s = Svc.open_session svc in
            (* all-error traffic: err_frac 1.0 against a 1% budget is
               a 100x burn, far past the 4x fast-burn threshold *)
            for _ = 1 to 8 do
              ignore (err (Svc.query svc s "1 +"))
            done;
            check Alcotest.string "status" "critical" (status_of svc);
            check Alcotest.bool "error-burn reason" true
              (List.mem "error-burn" (reason_codes svc))));
    tc "HEALTH: latency SLO violations burn the latency budget" `Quick
      (fun () ->
        (* a 0ms p99 target makes every query "slow": slow_frac 1.0
           over the 1% latency budget *)
        let svc = Svc.create ~domains:0 ~slo_p99_ms:0.000001 () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            let s = Svc.open_session svc in
            for _ = 1 to 8 do
              ignore (ok (Svc.query svc s "1 + 1"))
            done;
            check Alcotest.string "status" "critical" (status_of svc);
            check Alcotest.bool "latency-burn reason" true
              (List.mem "latency-burn" (reason_codes svc))));
    tc "HEALTH: induced overload trips the queue-depth check" `Quick
      (fun () ->
        (* one worker, watermark 2: a long job plus two queued ones
           puts the depth at the critical line (2*9/10 -> 1) *)
        let svc = Svc.create ~domains:1 ~max_queue:2 () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            let s = Svc.open_session svc in
            let futs =
              List.init 3 (fun _ -> snd (Svc.submit_job svc s slow_pure))
            in
            (* the first job occupies the worker; the rest are queued *)
            let rec wait_depth n =
              if n = 0 then Alcotest.fail "queue never filled"
              else if Sched.queue_depth (Svc.scheduler svc) < 1 then begin
                Thread.delay 0.005;
                wait_depth (n - 1)
              end
            in
            wait_depth 400;
            check Alcotest.bool "queue-depth reason" true
              (List.mem "queue-depth" (reason_codes svc));
            check Alcotest.bool "not ok under overload" true
              (status_of svc <> "ok");
            List.iter (fun f -> ignore (Svc.await f)) futs;
            (* drained: health recovers *)
            check Alcotest.bool "queue-depth clears" true
              (not (List.mem "queue-depth" (reason_codes svc)))));
    tc "HEALTH: a stalled fsync degrades then recovers" `Quick (fun () ->
        let dir = fresh_dir () in
        let svc =
          Svc.create ~domains:0 ~durability:(durable_cfg dir)
            ~fsync_warn_ms:50 ()
        in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            let s = Svc.open_session svc in
            Svc.load_document svc s ~uri:"d" "<r/>";
            (* boot fsyncs are real disk syncs: on a loaded box one can
               take a few ms, so the pre-check pins only the fsync
               reason, and the budget leaves a wide margin below the
               injected delay *)
            check Alcotest.bool "no fsync-latency before" true
              (not (List.mem "fsync-latency" (reason_codes svc)));
            (* every fsync now takes ~120ms against a 50ms p99 budget *)
            Svc.inject_fsync_delay svc 0.12;
            ignore (ok (Svc.query svc s {|snap { insert {<a/>} into {doc("d")/r} }|}));
            check Alcotest.string "degraded" "degraded" (status_of svc);
            check Alcotest.bool "fsync-latency reason" true
              (List.mem "fsync-latency" (reason_codes svc))));
    tc "HEALTH: a replica falling behind trips the leader's peer check"
      `Quick (fun () ->
        let dir = fresh_dir () in
        let svc =
          Svc.create ~domains:0 ~durability:(durable_cfg dir)
            ~lag_warn_frames:1 ()
        in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            let s = Svc.open_session svc in
            Svc.load_document svc s ~uri:"d" "<r/>";
            for _ = 1 to 6 do
              ignore
                (ok (Svc.query svc s {|snap { insert {<a/>} into {doc("d")/r} }|}))
            done;
            (* a replica announces itself from LSN 1 and never acks
               further: stuck >= 4 frames behind the WAL head *)
            (match
               Svc.ship_frames ~replica_id:"r-test" svc ~from_lsn:1 ~max:1
             with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "ship failed: %s" e);
            check Alcotest.string "critical" "critical" (status_of svc);
            check Alcotest.bool "peer-lag reason" true
              (List.mem "peer-lag" (reason_codes svc));
            (* REPLICA STAT on the leader lists the peer *)
            let v = check_json "replica stat" (Svc.replica_stat_json svc) in
            (match J.member "peers" v with
            | Some a ->
              check Alcotest.bool "peer listed" true (J.to_list a <> [])
            | None -> Alcotest.fail "leader stat has no peers")));
    tc "EVENTS: boot and commit events, level filter, wire shape" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let svc = Svc.create ~domains:0 ~durability:(durable_cfg dir) () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            let s = Svc.open_session svc in
            Svc.load_document svc s ~uri:"d" "<r/>";
            ignore (ok (Svc.query svc s {|snap { insert {<a/>} into {doc("d")/r} }|}));
            let kinds level =
              List.filter_map
                (fun e -> Option.bind (J.member "kind" e) J.to_string_opt)
                (J.to_list
                   (check_json "events" (Svc.events_json ?level svc 100)))
            in
            let all = kinds None in
            List.iter
              (fun k ->
                if not (List.mem k all) then
                  Alcotest.failf "events miss %S; have: %s" k
                    (String.concat "," all))
              [ "lifecycle.boot"; "lifecycle.recovery"; "wal.commit" ];
            (* wal.commit is Debug: filtered out at Info and above *)
            check Alcotest.bool "info filter drops wal.commit" true
              (not
                 (List.mem "wal.commit" (kinds (Some Xqb_obs.Events.Info))))));
    tc "EVENTS: telemetry off disables the log and monitor" `Quick (fun () ->
        let svc = Svc.create ~domains:0 ~telemetry:false () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            let s = Svc.open_session svc in
            ignore (ok (Svc.query svc s "1 + 1"));
            check Alcotest.string "no events" "[]" (Svc.events_json svc 100);
            (* health still answers (windows empty, no burn checks) *)
            check Alcotest.string "health still ok" "ok" (status_of svc)));
    tc "trace ring: --trace-ring caps retention and counts evictions"
      `Quick (fun () ->
        let svc = Svc.create ~domains:0 ~tracing:true ~trace_ring:2 () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            let s = Svc.open_session svc in
            let jids =
              List.init 3 (fun _ ->
                  let jid, fut = Svc.submit_job svc s "1 + 1" in
                  ignore (Svc.await fut);
                  jid)
            in
            let size, cap, ev = Svc.trace_ring_stats svc in
            check Alcotest.int "size" 2 size;
            check Alcotest.int "cap" 2 cap;
            check Alcotest.int "evictions" 1 ev;
            (* the oldest trace is gone, the newest two retrievable *)
            (match jids with
            | [ j1; j2; j3 ] ->
              check Alcotest.bool "oldest evicted" true
                (Svc.trace_json svc (Some j1) = None);
              check Alcotest.bool "second kept" true
                (Svc.trace_json svc (Some j2) <> None);
              check Alcotest.bool "newest kept" true
                (Svc.trace_json svc (Some j3) <> None)
            | _ -> assert false)));
    tc "trace_ring < 1 is rejected at create" `Quick (fun () ->
        match Svc.create ~domains:0 ~trace_ring:0 () with
        | svc ->
          Svc.shutdown svc;
          Alcotest.fail "trace_ring 0 accepted"
        | exception Invalid_argument _ -> ());
    tc "STATS embeds windows, health and telemetry gauges" `Quick (fun () ->
        with_service (fun svc ->
            let s = Svc.open_session svc in
            ignore (ok (Svc.query svc s "1 + 1"));
            let v = check_json "stats" (Svc.stats_json svc) in
            (match J.path v [ "health"; "status" ] with
            | Some (J.Str _) -> ()
            | _ -> Alcotest.fail "stats.health.status missing");
            (match J.path v [ "windows"; "10s" ] with
            | Some (J.Obj _) -> ()
            | _ -> Alcotest.fail "stats.windows.10s missing");
            match J.path v [ "telemetry"; "trace_ring" ] with
            | Some (J.Obj _) -> ()
            | _ -> Alcotest.fail "stats.telemetry.trace_ring missing"));
    tc "flight recorder: an unclean shutdown leaves a parseable dump"
      `Quick (fun () ->
        let dir = fresh_dir () in
        let svc = Svc.create ~domains:0 ~durability:(durable_cfg dir) () in
        let s = Svc.open_session svc in
        Svc.load_document svc s ~uri:"d" "<r/>";
        ignore (ok (Svc.query svc s {|snap { insert {<a/>} into {doc("d")/r} }|}));
        (* abandon svc without shutdown: the events sink never gets
           its lifecycle.shutdown line, exactly like a SIGKILL (the
           WAL fd stays open; recovery tolerates that) *)
        let svc2 = Svc.create ~domains:0 ~durability:(durable_cfg dir) () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc2)
          (fun () ->
            match Svc.boot_flight svc2 with
            | None -> Alcotest.fail "no flight dump after unclean shutdown"
            | Some path ->
              let ic = open_in_bin path in
              let body =
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              let v = check_json "flight dump" body in
              (match Option.bind (J.member "reason" v) J.to_string_opt with
              | Some r ->
                check Alcotest.string "reason" "unclean-shutdown" r
              | None -> Alcotest.fail "flight has no reason");
              (match J.member "events" v with
              | Some (J.Arr (_ :: _)) -> ()
              | _ -> Alcotest.fail "flight splices no prior events");
              match J.path v [ "recovery"; "lsn" ] with
              | Some (J.Num lsn) ->
                check Alcotest.bool "recovered lsn recorded" true (lsn > 0.)
              | _ -> Alcotest.fail "flight.recovery.lsn missing");
        (* a clean shutdown leaves no dump on the next boot *)
        let svc3 = Svc.create ~domains:0 ~durability:(durable_cfg dir) () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc3)
          (fun () ->
            check Alcotest.bool "clean boot has no flight" true
              (Svc.boot_flight svc3 = None)));
    tc "write_flight produces a dump on demand" `Quick (fun () ->
        let dir = fresh_dir () in
        let svc = Svc.create ~domains:0 ~durability:(durable_cfg dir) () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            match Svc.write_flight svc ~reason:"test" with
            | None -> Alcotest.fail "durable service refused a flight dump"
            | Some path ->
              check Alcotest.bool "file exists" true (Sys.file_exists path);
              let ic = open_in_bin path in
              let body =
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              let v = check_json "flight" body in
              (match J.path v [ "health"; "status" ] with
              | Some (J.Str _) -> ()
              | _ -> Alcotest.fail "flight.health.status missing")));
  ]

let suite =
  [
    ("service:sessions", sessions);
    ("service:plan-cache", plan_cache);
    ("service:scheduler", scheduler);
    ("service:governance", governance);
    ("service:admission", admission);
    ("service:observability", observability);
    ("service:health", health);
  ]
