(* The query service layer (lib/service): sessions over a shared
   document catalog, the cross-session plan cache, and the
   purity-gated scheduler. Scheduler tests run the same workload with
   domains=0 (synchronous) and domains=4 and require identical
   results. *)

open Helpers
module Svc = Xqb_service.Service
module Catalog = Xqb_service.Catalog
module Metrics = Xqb_service.Metrics
module Sched = Xqb_service.Scheduler
module PC = Xqb_service.Plan_cache

let ok = function
  | Ok s -> s
  | Error e -> Alcotest.failf "query failed: %s" e

let err = function
  | Ok s -> Alcotest.failf "expected an error, got %S" s
  | Error e -> e

let with_service ?(domains = 0) ?cache_capacity f =
  let svc = Svc.create ~domains ?cache_capacity () in
  Fun.protect ~finally:(fun () -> Svc.shutdown svc) (fun () -> f svc)

let doc_xml = "<r><a>1</a><a>2</a><b>x</b></r>"

let sessions =
  [
    tc "functions are per-session" `Quick (fun () ->
        with_service (fun svc ->
            let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
            check Alcotest.string "declare+call" "42"
              (ok (Svc.query svc s1 "declare function fortytwo() { 42 }; fortytwo()"));
            (* s2 never saw the declaration *)
            ignore (err (Svc.query svc s2 "fortytwo()"))));
    tc "globals are per-session" `Quick (fun () ->
        with_service (fun svc ->
            let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
            check Alcotest.string "declare" "7"
              (ok (Svc.query svc s1 "declare variable $g := 7; $g"));
            ignore (err (Svc.query svc s2 "$g"))));
    tc "documents load once and are shared" `Quick (fun () ->
        with_service (fun svc ->
            let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
            Svc.load_document svc s1 ~uri:"d" doc_xml;
            (* second load of the same uri reuses the resident tree *)
            Svc.load_document svc s2 ~uri:"d" "<r><a>only-one</a></r>";
            check Alcotest.string "s2 sees the first load" "2"
              (ok (Svc.query svc s2 {|count($d//a)|}));
            check Alcotest.int "refcounted twice" 2
              (Catalog.refcount (Svc.catalog svc) "d");
            Svc.close_session svc s1;
            check Alcotest.int "release on close" 1
              (Catalog.refcount (Svc.catalog svc) "d");
            Svc.close_session svc s2;
            check Alcotest.bool "evicted at zero" true
              (Catalog.find (Svc.catalog svc) "d" = None)));
    tc "fn:doc resolves across sessions" `Quick (fun () ->
        with_service (fun svc ->
            let s1 = Svc.open_session svc in
            Svc.load_document svc s1 ~uri:"d" doc_xml;
            (* s2 never loaded anything: resolution goes through the
               shared catalog *)
            let s2 = Svc.open_session svc in
            check Alcotest.string "doc() from the catalog" "2"
              (ok (Svc.query svc s2 {|count(doc("d")//a)|}))));
    tc "unknown session is an error" `Quick (fun () ->
        with_service (fun svc ->
            match Svc.query svc 999 "1" with
            | exception Failure _ -> ()
            | _ -> Alcotest.fail "expected Failure"));
  ]

let plan_cache =
  [
    tc "whitespace-insensitive cross-session hits" `Quick (fun () ->
        with_service (fun svc ->
            let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
            check Alcotest.string "miss" "2" (ok (Svc.query svc s1 "1 + 1"));
            check Alcotest.string "hit" "2"
              (ok (Svc.query svc s2 "1    +\n  1"));
            let st = Svc.cache_stats svc in
            check Alcotest.int "hits" 1 st.PC.hits;
            check Alcotest.int "misses" 1 st.PC.misses));
    tc "cached plans carry function declarations" `Quick (fun () ->
        with_service (fun svc ->
            let src = "declare function sq($x) { $x * $x }; sq(3)" in
            let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
            check Alcotest.string "compile" "9" (ok (Svc.query svc s1 src));
            (* the hit installs sq into s2, so the cached body runs *)
            check Alcotest.string "cache hit" "9" (ok (Svc.query svc s2 src));
            check Alcotest.int "was a hit" 1 (Svc.cache_stats svc).PC.hits));
    tc "bounded LRU evicts" `Quick (fun () ->
        with_service ~cache_capacity:2 (fun svc ->
            let s = Svc.open_session svc in
            ignore (ok (Svc.query svc s "1"));
            ignore (ok (Svc.query svc s "2"));
            ignore (ok (Svc.query svc s "3"));
            let st = Svc.cache_stats svc in
            check Alcotest.bool "evicted" true (st.PC.evictions >= 1);
            check Alcotest.bool "bounded" true (st.PC.size <= 2);
            (* "1" was least recently used: re-running it is a miss *)
            let misses = st.PC.misses in
            ignore (ok (Svc.query svc s "1"));
            check Alcotest.int "re-miss after eviction" (misses + 1)
              (Svc.cache_stats svc).PC.misses));
  ]

let reads =
  [|
    {|count(doc("d")//a)|};
    {|count(for $x in doc("d")//a where $x = "1" return $x)|};
    {|count(doc("d")//b) + count(doc("d")//a)|};
  |]

(* Pure-only workload: with no writers, results are independent of
   scheduling, so the 4-domain run must match the synchronous one
   exactly, entry for entry. *)
let pure_workload svc =
  let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
  Svc.load_document svc s1 ~uri:"d" doc_xml;
  let jobs =
    List.init 20 (fun i ->
        ((if i mod 2 = 0 then s1 else s2), reads.(i mod 3)))
  in
  let futs = List.map (fun (sid, q) -> Svc.submit svc sid q) jobs in
  List.map (fun f -> ok (Sched.await_exn f)) futs

(* Mixed workload: one insert every 5th query. Read/write
   *interleaving* is scheduler-dependent (a read may run before or
   after a concurrent insert — exactly the latitude the paper's
   semantics give a store shared between clients), but the final
   store state is not: every insert must land. *)
let mixed_workload svc =
  let s1 = Svc.open_session svc and s2 = Svc.open_session svc in
  Svc.load_document svc s1 ~uri:"d" doc_xml;
  Svc.load_document svc s1 ~uri:"log" "<log/>";
  let jobs =
    List.init 20 (fun i ->
        let sid = if i mod 2 = 0 then s1 else s2 in
        if i mod 5 = 0 then
          (sid, Printf.sprintf {|insert {element hit {%d}} into {doc("log")/log}|} i)
        else (sid, reads.(i mod 3)))
  in
  let futs = List.map (fun (sid, q) -> Svc.submit svc sid q) jobs in
  List.iter (fun f -> ignore (ok (Sched.await_exn f))) futs;
  ok (Svc.query svc s1 {|count(doc("log")/log/hit)|})

let scheduler =
  [
    tc "pure queries classify parallel, allocating ones do not" `Quick
      (fun () ->
        with_service (fun svc ->
            let s = Svc.open_session svc in
            Svc.load_document svc s ~uri:"d" doc_xml;
            ignore (ok (Svc.query svc s {|count(doc("d")//a)|}));
            (* Pure but allocating (constructor): must take the write
               side — a fork evaluating it would grow the shared store *)
            ignore (ok (Svc.query svc s "<a/>"));
            let _, par, excl, _ = Metrics.counts (Svc.metrics svc) in
            check Alcotest.int "parallel" 1 par;
            check Alcotest.int "exclusive" 1 excl));
    tc "concurrent pure queries match sequential results" `Quick (fun () ->
        let seq = with_service ~domains:0 pure_workload in
        let par = with_service ~domains:4 pure_workload in
        check Alcotest.(list string) "identical results" seq par);
    tc "every update lands under the 4-domain pool" `Quick (fun () ->
        with_service ~domains:4 (fun svc ->
            let final = mixed_workload svc in
            check Alcotest.string "4 inserts applied" "4" final;
            let q, par, excl, errors = Metrics.counts (Svc.metrics svc) in
            check Alcotest.int "queries" 21 q;
            check Alcotest.int "errors" 0 errors;
            (* 4 inserts take the write side; reads + the final count
               take the read side *)
            check Alcotest.int "exclusive" 4 excl;
            check Alcotest.int "parallel" 17 par));
    tc "errors are reported, service stays usable" `Quick (fun () ->
        with_service ~domains:2 (fun svc ->
            let s = Svc.open_session svc in
            ignore (err (Svc.query svc s "1 +"));  (* parse error *)
            ignore (err (Svc.query svc s "$nope"));  (* static error *)
            check Alcotest.string "still alive" "2"
              (ok (Svc.query svc s "1 + 1"))));
  ]

let suite =
  [
    ("service:sessions", sessions);
    ("service:plan-cache", plan_cache);
    ("service:scheduler", scheduler);
  ]
