(* S4: pretty-printer round-trip — parse (pretty e) = e for random
   ASTs covering the full expression grammar, plus golden strings. *)

open Helpers
module A = Xqb_syntax.Ast
module P = Xqb_syntax.Parser
module Pretty = Xqb_syntax.Pretty
module Axes = Xqb_store.Axes

(* Random AST generator. Names are drawn from a small pool; depth is
   bounded so shrinking stays fast. *)
let gen_expr : A.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let name = oneofl [ "a"; "b"; "foo"; "ns:x" ] in
  let var = oneofl [ "v"; "w"; "acc" ] in
  let lit =
    oneof
      [
        map (fun i -> A.Literal (A.Lit_integer i)) (int_bound 100);
        map (fun s -> A.Literal (A.Lit_string s)) (oneofl [ "x"; "a b"; "<&>"; "" ]);
      ]
  in
  let axis =
    oneofl
      [ Axes.Child; Axes.Descendant; Axes.Attribute; Axes.Parent;
        Axes.Ancestor_or_self; Axes.Following_sibling ]
  in
  let test =
    oneof
      [
        map (fun n -> Axes.Name (qn n)) name;
        pure Axes.Wildcard;
        pure Axes.Kind_node;
        pure Axes.Kind_text;
        map (fun n -> Axes.Kind_element (Some (qn n))) name;
      ]
  in
  let binop =
    oneofl
      [ A.Or; A.And; A.Gen_eq; A.Gen_lt; A.Val_eq; A.Val_gt; A.Is; A.Add;
        A.Sub; A.Mul; A.Div; A.Mod; A.To; A.Union; A.Intersect ]
  in
  let rec expr depth =
    if depth = 0 then oneof [ lit; map (fun v -> A.Var v) var; pure A.Context_item ]
    else
      let e = expr (depth - 1) in
      oneof
        [
          lit;
          map (fun v -> A.Var v) var;
          map (fun es -> A.Seq es) (list_size (int_range 2 3) e);
          map3 (fun l op r -> A.Binop (op, l, r)) e binop e;
          map (fun e -> A.Unary_minus e) e;
          map3 (fun b ax t -> A.Path (b, { A.axis = ax; test = t; preds = [] }))
            e axis test;
          map3
            (fun b t p -> A.Path (b, { A.axis = Axes.Child; test = t; preds = [ p ] }))
            e test e;
          map2 (fun b p -> A.Filter (b, [ p ])) e e;
          map3 (fun v e1 e2 -> A.Flwor ([ A.For [ (v, None, e1) ] ], None, e2)) var e e;
          map3 (fun v e1 e2 -> A.Flwor ([ A.Let [ (v, e1) ] ], None, e2)) var e e;
          map3 (fun c t f -> A.If (c, t, f)) e e e;
          map3 (fun v e1 e2 -> A.Quantified (A.Some_q, [ (v, e1) ], e2)) var e e;
          map2 (fun n c -> A.Comp_elem (A.Static_name (qn n), c)) name e;
          map2 (fun n c -> A.Comp_attr (A.Static_name (qn n), c)) name e;
          map (fun c -> A.Comp_text c) e;
          (* Fig. 1 operations *)
          map2 (fun a b -> A.Insert (a, A.Into b, A.no_loc)) e e;
          map2 (fun a b -> A.Insert (a, A.Into_as_first b, A.no_loc)) e e;
          map2 (fun a b -> A.Insert (a, A.After b, A.no_loc)) e e;
          map (fun a -> A.Delete (a, A.no_loc)) e;
          map2 (fun a b -> A.Replace (a, b, A.no_loc)) e e;
          map2 (fun a b -> A.Rename (a, b, A.no_loc)) e e;
          map (fun a -> A.Copy a) e;
          map2
            (fun m a -> A.Snap (m, a))
            (oneofl [ A.Snap_default; A.Snap_ordered; A.Snap_nondeterministic; A.Snap_conflict ])
            e;
          map2
            (fun n segs ->
              (* adjacent literal text merges on re-parse: normalize *)
              let rec merge = function
                | A.C_text a :: A.C_text b :: rest -> merge (A.C_text (a ^ b) :: rest)
                | s :: rest -> s :: merge rest
                | [] -> []
              in
              A.Dir_elem (qn n, [], merge segs))
            name
            (list_size (int_bound 2)
               (oneof
                  [
                    map (fun s -> A.C_text s) (oneofl [ "t"; "a b" ]);
                    map (fun e -> A.C_expr e) e;
                  ]));
        ]
  in
  expr 3

let roundtrip =
  qtest ~count:500 "parse (pretty e) = e" gen_expr (fun e ->
      let s = Pretty.expr_to_string e in
      match P.parse_expr_string s with
      | e' ->
        (* the parser stamps source locations onto effecting
           expressions (the generator uses [no_loc]); the printer
           ignores them, so compare modulo locations via a reprint *)
        if e = e' || Pretty.expr_to_string e' = s then true
        else QCheck2.Test.fail_reportf "not equal after round-trip:@.%s" s
      | exception ex ->
        QCheck2.Test.fail_reportf "re-parse failed: %s@.%s" (Printexc.to_string ex) s)

(* Golden outputs: the printer's concrete syntax is part of the
   tooling surface (explain output, error messages). *)
let golden =
  [
    tc "golden strings" `Quick (fun () ->
        let cases =
          [
            ("1 + 2 * 3", "(1 + (2 * 3))");
            ("snap delete { $x }", "snap {delete {$x}}");
            ("insert { <a/> } into { $x }", "insert {<a/>} into {$x}");
            ("$a//b[1]", "($a/descendant-or-self::node())/b[1]");
            ("for $x in $s return $x", "(for $x in $s return $x)");
          ]
        in
        List.iter
          (fun (src, expected) ->
            check Alcotest.string src expected
              (Pretty.expr_to_string (P.parse_expr_string src)))
          cases);
    tc "prog printing round-trips" `Quick (fun () ->
        let src =
          {|declare variable $v := 1;
            declare function f($x as xs:integer) as xs:integer { $x + $v };
            f(2)|}
        in
        let p = P.parse_prog src in
        let printed = Pretty.prog_to_string p in
        let p2 = P.parse_prog printed in
        check Alcotest.bool "equal" true (p = p2));
  ]

let suite = [ ("pretty:roundtrip", [ roundtrip ]); ("pretty:golden", golden) ]
