(* The store mutation journal (lib/store/journal.ml): replaying the
   journal against a fresh store must reproduce the original byte for
   byte — including loads, deep copies (composite entries), provenance
   notes, and committed/aborted transaction spans. The qcheck property
   drives random update-request sequences with random rollbacks. *)

open Helpers
module Journal = Xqb_store.Journal
module U = Core.Update

(* Fresh store with journaling on from the first allocation (replay
   is exact only from an empty store). *)
let fresh_with_doc xml =
  let store = Store.create () in
  Store.journal_start store;
  let doc = Store.load_string store xml in
  (store, doc)

let check_consistent name store =
  if not (Journal.consistent store) then
    Alcotest.failf "%s: replay diverged from the live store:\n%s" name
      (Journal.to_string ~store (Store.journal_entries store))

let first_elem store doc = List.hd (Store.children store doc)

let count_ops pred store =
  List.length
    (List.filter (fun (e : Journal.entry) -> pred e.op) (Store.journal_entries store))

let units =
  [
    tc "loading a document journals its construction" `Quick (fun () ->
        let store, _ = fresh_with_doc "<r><a/><b>t</b></r>" in
        check Alcotest.bool "non-empty" true (Store.journal_length store > 0);
        check_consistent "load" store);
    tc "plain mutations replay" `Quick (fun () ->
        let store, doc = fresh_with_doc "<r><a/><b>t</b></r>" in
        let r = first_elem store doc in
        let n = Store.make_element store (qn "new") in
        Store.insert store ~parent:r ~position:Store.First [ n ];
        Store.rename store n (qn "renamed");
        (match Store.children store r with
        | _ :: _ :: b :: _ ->
          Store.set_content store (List.hd (Store.children store b)) "t2"
        | _ -> Alcotest.fail "fixture shape");
        Store.detach store n;
        check_consistent "mutations" store);
    tc "deep copy is one composite entry" `Quick (fun () ->
        let store, doc = fresh_with_doc "<r><a><b/>t</a></r>" in
        let r = first_elem store doc in
        let before = Store.journal_length store in
        let c = Store.deep_copy store r in
        check Alcotest.int "inner allocations suppressed" (before + 1)
          (Store.journal_length store);
        Store.insert store ~parent:r ~position:Store.Last [ c ];
        check Alcotest.int "one M_deep_copy" 1
          (count_ops (function Store.M_deep_copy _ -> true | _ -> false) store);
        check_consistent "deep copy" store);
    tc "committed transaction replays" `Quick (fun () ->
        let store, doc = fresh_with_doc "<r/>" in
        let r = first_elem store doc in
        Store.transactionally store (fun () ->
            let n = Store.make_element store (qn "in-txn") in
            Store.insert store ~parent:r ~position:Store.Last [ n ]);
        check Alcotest.int "begin marker" 1
          (count_ops (function Store.M_txn_begin -> true | _ -> false) store);
        check Alcotest.int "commit marker" 1
          (count_ops (function Store.M_txn_commit -> true | _ -> false) store);
        check_consistent "committed txn" store);
    tc "aborted transaction rolls back in replay too" `Quick (fun () ->
        let store, doc = fresh_with_doc "<r><keep/></r>" in
        let r = first_elem store doc in
        let before = Journal.digest store in
        (try
           Store.transactionally store (fun () ->
               let n = Store.make_element store (qn "gone") in
               Store.insert store ~parent:r ~position:Store.Last [ n ];
               Store.rename store r (qn "other");
               failwith "abort")
         with Failure _ -> ());
        (* structure is restored (the allocation survives, detached) *)
        check Alcotest.int "one child again" 1 (Store.child_count store r);
        check Alcotest.bool "digest differs only by the allocation" true
          (before <> Journal.digest store);
        check Alcotest.int "abort marker" 1
          (count_ops (function Store.M_txn_abort -> true | _ -> false) store);
        check_consistent "aborted txn" store);
    tc "nested spans: inner abort inside outer commit" `Quick (fun () ->
        let store, doc = fresh_with_doc "<r/>" in
        let r = first_elem store doc in
        Store.transactionally store (fun () ->
            let a = Store.make_element store (qn "a") in
            Store.insert store ~parent:r ~position:Store.Last [ a ];
            try
              Store.transactionally store (fun () ->
                  let b = Store.make_element store (qn "b") in
                  Store.insert store ~parent:r ~position:Store.Last [ b ];
                  failwith "inner abort")
            with Failure _ -> ());
        check Alcotest.int "only the outer insert held" 1
          (Store.child_count store r);
        check_consistent "nested" store);
    tc "update requests journal provenance notes" `Quick (fun () ->
        let store, doc = fresh_with_doc "<r><a/></r>" in
        let r = first_elem store doc in
        let n = Store.make_element store (qn "p") in
        U.apply_request store
          (U.make
             ~prov:
               {
                 U.src_line = 3;
                 src_col = 12;
                 snap_depth = 1;
                 trace_id = Some "t9";
               }
             (U.Insert { nodes = [ n ]; parent = r; position = U.Last }));
        let notes =
          List.filter_map
            (fun (e : Journal.entry) ->
              match e.op with
              | Store.M_request _ -> Some (Journal.entry_to_string ~store e)
              | _ -> None)
            (Store.journal_entries store)
        in
        (match notes with
        | [ s ] ->
          List.iter
            (fun frag ->
              if
                not
                  (Re.execp (Re.compile (Re.str frag)) s)
              then Alcotest.failf "note %S lacks %S" s frag)
            [ "3:12"; "snap depth 1"; "trace t9" ]
        | _ -> Alcotest.failf "expected exactly one note, got %d" (List.length notes));
        check_consistent "provenance" store);
    tc "replay rejects an unmatched terminator" `Quick (fun () ->
        match Journal.replay [ { Journal.seq = 0; op = Store.M_txn_commit } ] with
        | _ -> Alcotest.fail "expected Replay_error"
        | exception Journal.Replay_error _ -> ());
    tc "digest separates distinguishable stores" `Quick (fun () ->
        let s1, _ = fresh_with_doc "<r><a/></r>" in
        let s2, d2 = fresh_with_doc "<r><a/></r>" in
        check Alcotest.string "same build, same digest" (Journal.digest s1)
          (Journal.digest s2);
        Store.rename s2 (first_elem s2 d2) (qn "z");
        check Alcotest.bool "mutation changes the digest" true
          (Journal.digest s1 <> Journal.digest s2));
    tc "engine queries with snap updates replay" `Quick (fun () ->
        let eng = Core.Engine.create () in
        let store = Core.Engine.store eng in
        Store.journal_start store;
        ignore
          (Core.Engine.run eng
             {|let $x := <x><a/></x>
               return (snap { insert {<b/>} into {$x},
                              rename {$x/a} to {'a2'} },
                       snap delete {$x/a2})|});
        check_consistent "engine" store);
  ]

(* -- qcheck: random request sequences with rollbacks ---------------- *)

type cmd =
  | C_insert of int * int * int  (* parent sel, position sel, name sel *)
  | C_delete of int
  | C_rename of int * int
  | C_set_value of int * int
  | C_copy of int * int  (* source sel, destination sel *)
  | C_txn of bool * cmd list  (* abort?, inner commands *)

let gen_cmds : cmd list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let sel = int_bound 40 in
  let base =
    oneof
      [
        map3 (fun a b c -> C_insert (a, b, c)) sel sel sel;
        map (fun a -> C_delete a) sel;
        map2 (fun a b -> C_rename (a, b)) sel sel;
        map2 (fun a b -> C_set_value (a, b)) sel sel;
        map2 (fun a b -> C_copy (a, b)) sel sel;
      ]
  in
  let cmd =
    oneof
      [ base; map2 (fun ab inner -> C_txn (ab, inner)) bool (list_size (int_range 1 4) base) ]
  in
  list_size (int_range 0 25) cmd

let names = [| "a"; "b"; "c"; "d" |]

(* Element-id pool: grows with every allocation; runtime guards make
   any selection valid or a cleanly-skipped Update_error. *)
let rec exec store pool cmd =
  let pick sel = List.nth !pool (sel mod List.length !pool) in
  let guard f = try f () with Store.Update_error _ -> () in
  let prov line col =
    { U.src_line = line; src_col = col; snap_depth = 0; trace_id = None }
  in
  match cmd with
  | C_insert (ps, pos_s, ns) ->
    let parent = pick ps in
    let n = Store.make_element store (qn names.(ns mod Array.length names)) in
    pool := !pool @ [ n ];
    guard (fun () ->
        let position =
          match Store.children store parent with
          | [] -> U.First
          | c :: _ -> (
            match pos_s mod 4 with
            | 0 -> U.First
            | 1 -> U.Last
            | 2 -> U.Before c
            | _ -> U.After c)
        in
        U.apply_request store
          (U.make ~prov:(prov (ps + 1) (ns + 1))
             (U.Insert { nodes = [ n ]; parent; position })))
  | C_delete s ->
    guard (fun () ->
        U.apply_request store (U.make ~prov:(prov (s + 1) 1) (U.Delete (pick s))))
  | C_rename (s, ns) ->
    guard (fun () ->
        U.apply_request store
          (U.make (U.Rename (pick s, qn names.(ns mod Array.length names)))))
  | C_set_value (s, v) ->
    guard (fun () ->
        U.apply_request store (U.make (U.Set_value (pick s, string_of_int v))))
  | C_copy (s, ds) ->
    let c = Store.deep_copy store (pick s) in
    pool := !pool @ [ c ];
    guard (fun () ->
        U.apply_request store
          (U.make (U.Insert { nodes = [ c ]; parent = pick ds; position = U.Last })))
  | C_txn (abort, inner) -> (
    try
      Store.transactionally store (fun () ->
          List.iter (exec store pool) inner;
          if abort then failwith "roll me back")
    with Failure _ -> ())

let rec elements store id acc =
  let acc = if Store.kind store id = Store.Element then id :: acc else acc in
  List.fold_left (fun a c -> elements store c a) acc (Store.children store id)

let replay_property =
  qtest ~count:150 "journal replay reproduces the store" gen_cmds (fun cmds ->
      let store, doc = fresh_with_doc "<r><a/><b>t</b></r>" in
      let pool = ref (elements store doc []) in
      List.iter (exec store pool) cmds;
      (match Store.validate store with
      | [] -> ()
      | errs ->
        QCheck2.Test.fail_reportf "store invariants broken:@.%s"
          (String.concat "\n" errs));
      Journal.consistent store
      || QCheck2.Test.fail_reportf "replay diverged:@.%s"
           (Journal.to_string ~store (Store.journal_entries store)))

let suite =
  [
    ("journal:units", units);
    ("journal:replay-property", [ replay_property ]);
  ]
