(* The pre/post order-key layer (Store.Order_key): keyed comparator
   and containment vs the naive chain walks, key invalidation under
   mutation and transaction rollback, and the R7 subtree conflict
   rule that rides on the keys. *)

open Helpers
module Update = Core.Update

(* Hand-built deltas: ops wrapped into requests (no provenance). *)
let rqs = List.map Update.make
module Conflict = Core.Conflict
module Apply = Core.Apply

let nth l n = List.nth l (n mod List.length l)

let sign n = compare n 0

(* Reference implementation of strict subtree containment. *)
let naive_inside store ~ancestor id =
  let rec up i =
    match Store.parent store i with
    | Some p -> p = ancestor || up p
    | None -> false
  in
  id <> ancestor && up id

(* Keyed comparator and containment agree with the chain walks on
   every pair of nodes ever allocated (attached or detached). *)
let agree store =
  let n = Store.node_count store in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if
        sign (Store.compare_order store i j)
        <> sign (Store.compare_order_naive store i j)
      then ok := false;
      if
        Store.is_descendant store ~ancestor:i j
        <> naive_inside store ~ancestor:i j
      then ok := false
    done
  done;
  !ok

let all_ids store = List.init (Store.node_count store) Fun.id

let build_keys store = ignore (Store.sort_doc_order store (all_ids store))

let sort_matches_naive store =
  let ids = all_ids store in
  Store.sort_doc_order store ids
  = List.sort_uniq (Store.compare_order_naive store) ids

(* -- random trees ------------------------------------------------- *)

(* Grow a tree from an int script: each step hangs a fresh element,
   text or attribute off a script-chosen existing element. *)
let build script =
  let store = Store.create () in
  let doc = Store.make_document store in
  let r = Store.make_element store (qn "r") in
  Store.insert store ~parent:doc ~position:Store.Last [ r ];
  let elems = ref [ r ] in
  List.iteri
    (fun i n ->
      let parent = nth !elems n in
      match n mod 3 with
      | 0 ->
        let e = Store.make_element store (qn (Printf.sprintf "e%d" (i mod 5))) in
        let position = if n mod 2 = 0 then Store.Last else Store.First in
        Store.insert store ~parent ~position [ e ];
        elems := e :: !elems
      | 1 ->
        let t = Store.make_text store "t" in
        Store.insert store ~parent ~position:Store.Last [ t ]
      | _ ->
        let a = Store.make_attribute store (qn (Printf.sprintf "a%d" i)) "v" in
        Store.insert store ~parent ~position:Store.Last [ a ])
    script;
  (store, doc)

(* Apply script-chosen ∆s through the snap application machinery
   (Apply → transactionally), so key invalidation is exercised on the
   same paths real queries use. [n mod 4 = 1] builds a ∆ whose second
   request always fails, forcing a rollback through the undo
   journal. *)
let mutate store muts =
  List.iteri
    (fun i n ->
      let elems =
        List.filter
          (fun x -> Store.kind store x = Store.Element)
          (all_ids store)
      in
      let v = nth elems n in
      let delta =
        match n mod 4 with
        | 0 ->
          let e = Store.make_element store (qn (Printf.sprintf "m%d" i)) in
          [ Update.Insert { nodes = [ e ]; parent = v; position = Update.Last } ]
        | 1 ->
          (* detach v, then a guaranteed cycle error: rolls back *)
          [ Update.Delete v;
            Update.Insert { nodes = [ v ]; parent = v; position = Update.Last }
          ]
        | 2 -> [ Update.Rename (v, qn "z") ]
        | _ -> [ Update.Set_value (v, "w") ]
      in
      match Apply.apply store Apply.Ordered (rqs delta) with
      | () -> ()
      | exception _ -> ())
    muts

let gen_scripts =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 40) (int_range 0 9999))
      (list_size (int_range 0 12) (int_range 0 9999)))

let prop_keyed_eq_naive (script, muts) =
  let store, _doc = build script in
  build_keys store;
  agree store
  && sort_matches_naive store
  &&
  (mutate store muts;
   (* first without rebuilding: stale keys must fall back, not lie *)
   agree store
   &&
   (build_keys store;
    agree store && sort_matches_naive store
    && Store.sorted_strict store (Store.sort_doc_order store (all_ids store))))

(* -- deterministic invalidation scenarios ------------------------- *)

(* Keys built on a detached subtree must not resurface as valid after
   the subtree is re-attached, reordered in place (which only bumps
   the enclosing root), and detached again. *)
let test_stale_subtree_keys () =
  let store = Store.create () in
  let b = Store.make_element store (qn "b") in
  let t = Store.make_text store "t" in
  let d2 = Store.make_element store (qn "d") in
  Store.insert store ~parent:b ~position:Store.Last [ t ];
  Store.insert store ~parent:b ~position:Store.Last [ d2 ];
  (* build keys while [b] is a detached root: t before d2 *)
  check Alcotest.(list int) "detached order" [ t; d2 ]
    (Store.sort_doc_order store [ d2; t ]);
  (* attach, swap the children, detach again *)
  let doc = Store.make_document store in
  Store.insert store ~parent:doc ~position:Store.Last [ b ];
  Store.detach store d2;
  Store.insert store ~parent:b ~position:Store.First [ d2 ];
  Store.detach store b;
  (* [b] is a root again; the old root=b keys claimed t < d2 *)
  check Alcotest.(list int) "reordered" [ d2; t ]
    (Store.sort_doc_order store [ d2; t ]);
  check Alcotest.bool "keyed = naive" true (agree store)

(* Rolling back a transaction that detached a subtree and built keys
   on it must leave no stale-valid keys behind (the undo path bumps
   the re-attached child as well as the parent). *)
let test_rollback_invalidation () =
  let f = fixture () in
  build_keys f.store;
  (try
     Store.transactionally f.store (fun () ->
         Store.detach f.store f.b2;
         ignore (Store.sort_doc_order f.store [ f.d1; f.t2 ]);
         raise Exit)
   with Exit -> ());
  check Alcotest.bool "keyed = naive after rollback" true (agree f.store);
  build_keys f.store;
  check Alcotest.bool "keyed = naive after rebuild" true (agree f.store);
  check Alcotest.(list int) "order restored" [ f.c1; f.t2; f.d1 ]
    (Store.sort_doc_order f.store [ f.d1; f.t2; f.c1 ])

(* -- unit coverage ------------------------------------------------ *)

let test_sort_fixture () =
  let f = fixture () in
  check Alcotest.(list int) "full order"
    [ f.doc; f.a; f.b1; f.x1; f.t1; f.c1; f.b2; f.t2; f.d1 ]
    (Store.sort_doc_order f.store
       [ f.d1; f.t2; f.doc; f.c1; f.b2; f.x1; f.a; f.t1; f.b1 ]);
  check Alcotest.(list int) "dups dropped" [ f.a; f.b2 ]
    (Store.sort_doc_order f.store [ f.b2; f.b2; f.a ])

let test_sorted_strict () =
  let f = fixture () in
  check Alcotest.bool "sorted" true
    (Store.sorted_strict f.store [ f.doc; f.a; f.b1 ]);
  check Alcotest.bool "empty" true (Store.sorted_strict f.store []);
  check Alcotest.bool "dup" false (Store.sorted_strict f.store [ f.a; f.a ]);
  check Alcotest.bool "swapped" false (Store.sorted_strict f.store [ f.b2; f.b1 ])

let test_is_descendant () =
  let f = fixture () in
  build_keys f.store;
  check Alcotest.bool "a/t2" true (Store.is_descendant f.store ~ancestor:f.a f.t2);
  check Alcotest.bool "doc/x1" true
    (Store.is_descendant f.store ~ancestor:f.doc f.x1);
  check Alcotest.bool "b1/t2" false
    (Store.is_descendant f.store ~ancestor:f.b1 f.t2);
  check Alcotest.bool "strict" false (Store.is_descendant f.store ~ancestor:f.a f.a)

let test_builds_counter () =
  let f = fixture () in
  check Alcotest.int "fresh" 0 (Store.order_key_builds f.store);
  build_keys f.store;
  check Alcotest.int "one build" 1 (Store.order_key_builds f.store);
  build_keys f.store;
  check Alcotest.int "cached" 1 (Store.order_key_builds f.store);
  Store.rename f.store f.a (qn "a2");
  build_keys f.store;
  check Alcotest.int "rebuild after mutation" 2 (Store.order_key_builds f.store)

let test_keys_disabled () =
  let f = fixture () in
  Store.set_order_keys f.store false;
  check Alcotest.(list int) "sort without keys" [ f.a; f.c1; f.t2 ]
    (Store.sort_doc_order f.store [ f.t2; f.c1; f.a ]);
  check Alcotest.bool "agree without keys" true (agree f.store);
  check Alcotest.int "no builds" 0 (Store.order_key_builds f.store)

(* -- R7: set-value vs structural work inside the subtree ---------- *)

let expect_conflict name store delta =
  tc name `Quick (fun () ->
      match Conflict.check ~store (rqs delta) with
      | () -> Alcotest.failf "%s: expected an R7 conflict" name
      | exception Conflict.Conflict_error _ -> ())

let expect_ok name store delta =
  tc name `Quick (fun () -> Conflict.check ~store (rqs delta))

let r7_tests =
  let f = fixture () in
  let fresh () = Store.make_element f.store (qn "n") in
  [ expect_conflict "R7 set-value vs inner delete" f.store
      [ Update.Set_value (f.b2, "v"); Update.Delete f.d1 ];
    expect_conflict "R7 set-value vs inner insert parent" f.store
      [ Update.Set_value (f.b2, "v");
        Update.Insert
          { nodes = [ fresh () ]; parent = f.d1; position = Update.Last }
      ];
    expect_conflict "R7 set-value vs inner anchor" f.store
      [ Update.Set_value (f.b2, "v");
        Update.Insert
          { nodes = [ fresh () ]; parent = f.b2; position = Update.After f.t2 }
      ];
    expect_ok "R7 is strict: anchor on the node itself" f.store
      [ Update.Set_value (f.b2, "v");
        Update.Insert
          { nodes = [ fresh () ]; parent = f.a; position = Update.After f.b2 }
      ];
    expect_ok "R7 skips non-element targets" f.store
      [ Update.Set_value (f.t2, "v"); Update.Delete f.d1 ];
    expect_ok "R7 disjoint subtrees" f.store
      [ Update.Set_value (f.b1, "v"); Update.Delete f.d1 ];
    tc "R7 needs the store" `Quick (fun () ->
        check Alcotest.bool "storeless check passes" true
          (Conflict.is_conflict_free
             (rqs [ Update.Set_value (f.b2, "v"); Update.Delete f.d1 ])))
  ]

let suite =
  [ ( "order keys",
      [ tc "sort_doc_order fixture" `Quick test_sort_fixture;
        tc "sorted_strict" `Quick test_sorted_strict;
        tc "is_descendant" `Quick test_is_descendant;
        tc "builds counter" `Quick test_builds_counter;
        tc "keys disabled" `Quick test_keys_disabled;
        tc "stale subtree keys" `Quick test_stale_subtree_keys;
        tc "rollback invalidation" `Quick test_rollback_invalidation;
        qtest ~count:80 "keyed order = naive order (random trees + snaps)"
          gen_scripts prop_keyed_eq_naive
      ]
      @ r7_tests )
  ]
