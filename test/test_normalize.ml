(* S5: normalization (§3.3). The paper's one non-trivial rule — the
   deep copy inserted around insert's first argument and replace's
   second — plus into => as-last, FLWOR nesting and path iteration. *)

open Helpers
module A = Xqb_syntax.Ast
module C = Core.Core_ast
module N = Core.Normalize

let normalize src =
  let ast = Xqb_syntax.Parser.parse_prog src in
  let prog = N.normalize_prog ~is_builtin:Core.Functions.is_builtin ast in
  Option.get prog.N.body

let norm name src pred =
  tc name `Quick (fun () ->
      let e = normalize src in
      if not (pred e) then
        Alcotest.failf "%s: unexpected core for %s:\n%s" name src (C.to_string e))

let copy_insertion =
  [
    norm "insert wraps payload in copy (the Fig. 3.3 rule)"
      "insert { $a } into { $b }"
      (function
        | C.Insert (C.T_last, C.Copy (C.Var "a"), C.Var "b", _) -> true
        | _ -> false);
    norm "into normalizes to as-last-into" "insert { $a } as last into { $b }"
      (function C.Insert (C.T_last, _, _, _) -> true | _ -> false);
    norm "as first survives" "insert { $a } as first into { $b }"
      (function C.Insert (C.T_first, _, _, _) -> true | _ -> false);
    norm "before/after survive" "(insert {$a} before {$b}, insert {$a} after {$b})"
      (function
        | C.Seq (C.Insert (C.T_before, _, _, _), C.Insert (C.T_after, _, _, _)) -> true
        | _ -> false);
    norm "replace wraps second argument in copy" "replace { $a } with { $b }"
      (function C.Replace (C.Var "a", C.Copy (C.Var "b"), _) -> true | _ -> false);
    norm "delete takes no copy" "delete { $a }"
      (function C.Delete (C.Var "a", _) -> true | _ -> false);
    norm "rename takes no copy" "rename { $a } to { $b }"
      (function C.Rename (C.Var "a", C.Var "b", _) -> true | _ -> false);
    norm "explicit copy is kept" "copy { $a }"
      (function C.Copy (C.Var "a") -> true | _ -> false);
  ]

let flwor_norm =
  [
    norm "where becomes if" "for $x in $s where $x return $x"
      (function
        | C.For ("x", None, C.Var "s", C.If (C.Var "x", C.Var "x", C.Empty)) -> true
        | _ -> false);
    norm "multiple bindings nest" "for $x in $s, $y in $t return 1"
      (function
        | C.For ("x", None, _, C.For ("y", None, _, _)) -> true
        | _ -> false);
    norm "let chain nests" "let $x := 1 let $y := 2 return $y"
      (function C.Let ("x", _, C.Let ("y", _, _)) -> true | _ -> false);
    norm "order by keeps a sort flwor" "for $x in $s order by $x return $x"
      (function C.Sort_flwor ([ C.S_for _ ], [ _ ], _) -> true | _ -> false);
    norm "quantifiers fold" "some $x in $a, $y in $b satisfies 1"
      (function C.Some_sat ("x", _, C.Some_sat ("y", _, _)) -> true | _ -> false);
  ]

let path_norm =
  [
    norm "plain step gets ddo only" "$x/a"
      (function
        | C.Call_builtin ("%ddo", [ C.Step (C.Var "x", Xqb_store.Axes.Child, _) ]) ->
          true
        | _ -> false);
    norm "predicate introduces per-dot iteration" "$x/a[1]"
      (function
        | C.Call_builtin
            ("%ddo", [ C.For (dot, None, C.Var "x", C.Predicate (C.Step (C.Var dot', _, _), _)) ])
          ->
          dot = dot'
        | _ -> false);
    norm "general rhs becomes Map" "$x/string()"
      (function C.Map (C.Var "x", C.Call_builtin ("string", [])) -> true | _ -> false);
    norm "root becomes fn:root(.)" "/"
      (function C.Call_builtin ("root", [ C.Context_item ]) -> true | _ -> false);
  ]

let constructor_norm =
  [
    norm "direct ctor: attributes precede content"
      {|<a x="1">t</a>|}
      (function
        | C.Elem (C.Static _, C.Seq (C.Attr (C.Static _, _), C.Text_node _)) -> true
        | _ -> false);
    norm "avt with one expr" {|<a x="{$v}"/>|}
      (function
        | C.Elem (_, C.Attr (_, C.Call_builtin ("%avt-part", [ C.Var "v" ]))) -> true
        | _ -> false);
    norm "avt mixing text and exprs uses concat" {|<a x="p{$v}s"/>|}
      (function
        | C.Elem (_, C.Attr (_, C.Call_builtin ("concat", [ _; _; _ ]))) -> true
        | _ -> false);
  ]

let call_resolution =
  [
    tc "builtin resolution" `Quick (fun () ->
        match normalize "count((1,2))" with
        | C.Call_builtin ("count", [ _ ]) -> ()
        | e -> Alcotest.failf "got %s" (C.to_string e));
    tc "fn: prefix resolves to builtin" `Quick (fun () ->
        match normalize "fn:count(())" with
        | C.Call_builtin ("count", _) -> ()
        | e -> Alcotest.failf "got %s" (C.to_string e));
    tc "xs: constructor functions" `Quick (fun () ->
        match normalize "xs:integer('3')" with
        | C.Call_builtin ("xs:integer", _) -> ()
        | e -> Alcotest.failf "got %s" (C.to_string e));
    tc "user function beats builtin" `Quick (fun () ->
        let ast =
          Xqb_syntax.Parser.parse_prog
            "declare function count($x) { 0 }; count((1,2))"
        in
        let prog = N.normalize_prog ~is_builtin:Core.Functions.is_builtin ast in
        match Option.get prog.N.body with
        | C.Call_user (_, _) -> ()
        | e -> Alcotest.failf "got %s" (C.to_string e));
    tc "unknown function is a static error" `Quick (fun () ->
        match normalize "no_such_fn(1)" with
        | _ -> Alcotest.fail "expected static error"
        | exception N.Static_error _ -> ());
    tc "wrong arity is a static error" `Quick (fun () ->
        match normalize "count(1, 2, 3)" with
        | _ -> Alcotest.fail "expected static error"
        | exception N.Static_error _ -> ());
    tc "duplicate function declaration rejected" `Quick (fun () ->
        let ast =
          Xqb_syntax.Parser.parse_prog
            "declare function f() { 1 }; declare function f() { 2 }; f()"
        in
        match N.normalize_prog ~is_builtin:Core.Functions.is_builtin ast with
        | _ -> Alcotest.fail "expected static error"
        | exception N.Static_error _ -> ());
  ]

let misc =
  [
    norm "sequence right-nests" "1, 2, 3"
      (function C.Seq (_, C.Seq (_, _)) -> true | _ -> false);
    norm "empty parens" "()" (function C.Empty -> true | _ -> false);
    norm "literals become scalars" "1.5"
      (function C.Scalar (Xqb_xdm.Atomic.Decimal _) -> true | _ -> false);
    norm "snap mode is preserved" "snap conflict { 1 }"
      (function C.Snap (C.Snap_conflict, _) -> true | _ -> false);
  ]

let suite =
  [
    ("normalize:copy", copy_insertion);
    ("normalize:flwor", flwor_norm);
    ("normalize:path", path_norm);
    ("normalize:constructors", constructor_norm);
    ("normalize:calls", call_resolution);
    ("normalize:misc", misc);
  ]
