(* S5/S8: the engine API end-to-end — documents, globals, modules
   compiled incrementally, serialization, error surfaces, and the
   engine-level snap-mode switch. *)

open Helpers

let engine_api =
  [
    tc "load_document + fn:doc + variable binding" `Quick (fun () ->
        let eng = Core.Engine.create () in
        let d = Core.Engine.load_document eng ~uri:"inv" "<inv><i/><i/></inv>" in
        Core.Engine.bind_node eng "inv" d;
        check Alcotest.string "via var" "2"
          (Core.Engine.serialize eng (Core.Engine.run eng "count($inv//i)"));
        check Alcotest.string "via doc()" "2"
          (Core.Engine.serialize eng (Core.Engine.run eng "count(doc('inv')//i)")));
    tc "doc resolver callback" `Quick (fun () ->
        let eng = Core.Engine.create () in
        Core.Engine.set_doc_resolver eng (fun uri ->
            Printf.sprintf "<from uri=\"%s\"/>" uri);
        check Alcotest.string "resolved" "dyn"
          (Core.Engine.serialize eng
             (Core.Engine.run eng "string(doc('dyn')/from/@uri)")));
    tc "bind values" `Quick (fun () ->
        let eng = Core.Engine.create () in
        Core.Engine.bind eng "n" (Xqb_xdm.Value.of_int 20);
        check Alcotest.string "read" "21"
          (Core.Engine.serialize eng (Core.Engine.run eng "$n + 1")));
    tc "state persists across runs" `Quick (fun () ->
        let eng = Core.Engine.create () in
        let d = Core.Engine.load_document eng ~uri:"d" "<d/>" in
        Core.Engine.bind_node eng "d" d;
        ignore (Core.Engine.run eng "snap insert {<a/>} into {$d/d}");
        check Alcotest.string "second run sees it" "1"
          (Core.Engine.serialize eng (Core.Engine.run eng "count($d/d/a)")));
    tc "functions persist across compiles" `Quick (fun () ->
        let eng = Core.Engine.create () in
        let m = Core.Engine.compile eng "declare function inc($x) { $x + 1 }; ()" in
        ignore (Core.Engine.run_compiled eng m);
        check Alcotest.string "callable later" "8"
          (Core.Engine.serialize eng (Core.Engine.run eng "inc(7)")));
    tc "serialize mixes nodes and atomics" `Quick (fun () ->
        let eng = Core.Engine.create () in
        check Alcotest.string "mixed" "1 2<a></a>3"
          (Core.Engine.serialize eng (Core.Engine.run eng "(1, 2, <a/>, 3)")));
    tc "compile errors carry positions" `Quick (fun () ->
        let eng = Core.Engine.create () in
        match Core.Engine.run eng "1 +" with
        | _ -> Alcotest.fail "expected compile error"
        | exception Core.Engine.Compile_error msg ->
          check Alcotest.bool "mentions parse" true
            (Re.execp (Re.compile (Re.str "parse error")) msg));
    tc "store is intact after a failed query" `Quick (fun () ->
        let eng = Core.Engine.create () in
        let d = Core.Engine.load_document eng ~uri:"d" "<d><k/></d>" in
        Core.Engine.bind_node eng "d" d;
        (match
           Core.Engine.run eng "(snap delete {$d/d/k}, error('E1','late failure'))"
         with
        | _ -> Alcotest.fail "expected error"
        | exception Xqb_xdm.Errors.Dynamic_error _ -> ());
        (* The inner snap applied before the failure: k is gone, and
           the store is still structurally valid. *)
        check Alcotest.string "k deleted" "0"
          (Core.Engine.serialize eng (Core.Engine.run eng "count($d/d/k)"));
        check
          (Alcotest.list Alcotest.string)
          "invariants" []
          (Xqb_store.Store.validate (Core.Engine.store eng)));
    tc "top-level failure keeps pending updates unapplied" `Quick (fun () ->
        let eng = Core.Engine.create () in
        let d = Core.Engine.load_document eng ~uri:"d" "<d><k/></d>" in
        Core.Engine.bind_node eng "d" d;
        (match Core.Engine.run eng "(delete {$d/d/k}, error('E2','fail'))" with
        | _ -> Alcotest.fail "expected error"
        | exception Xqb_xdm.Errors.Dynamic_error _ -> ());
        check Alcotest.string "k survives" "1"
          (Core.Engine.serialize eng (Core.Engine.run eng "count($d/d/k)")));
  ]

let engine_modes =
  [
    tc "default mode is ordered" `Quick (fun () ->
        let eng = Core.Engine.create () in
        let v =
          Core.Engine.run eng
            "let $x := <x/> return (insert {<a/>} into {$x}, insert {<b/>} into {$x}, $x)"
        in
        check Alcotest.string "ab" "<x><a></a><b></b></x>"
          (Core.Engine.serialize eng v));
    tc "nondeterministic mode at top level" `Quick (fun () ->
        (* independent renames: same result under any seed *)
        let run seed =
          let eng = Core.Engine.create ~seed () in
          let v =
            Core.Engine.run ~mode:Core.Core_ast.Snap_nondeterministic eng
              "let $x := <x><a/><b/></x> return (delete {$x/a}, rename {$x/b} to {'c'}, $x)"
          in
          Core.Engine.serialize eng v
        in
        check Alcotest.string "agree" (run 1) (run 2));
    tc "conflict mode rejects at top level" `Quick (fun () ->
        let eng = Core.Engine.create () in
        match
          Core.Engine.run ~mode:Core.Core_ast.Snap_conflict eng
            "let $x := <x/> return (insert {<a/>} into {$x}, insert {<b/>} into {$x})"
        with
        | _ -> Alcotest.fail "expected conflict"
        | exception Core.Conflict.Conflict_error _ -> ());
  ]

let serializer_output =
  [
    tc "indented writer" `Quick (fun () ->
        let events = Xqb_xml.Xml_parser.parse "<a><b>t</b><c/></a>" in
        let s = Xqb_xml.Xml_writer.to_string_indented events in
        check Alcotest.bool "has newlines" true (String.contains s '\n'));
    tc "store serializer escapes" `Quick (fun () ->
        let eng = Core.Engine.create () in
        check Alcotest.string "escaped" "<a k=\"&quot;v&quot;\">1 &lt; 2</a>"
          (Core.Engine.serialize eng
             (Core.Engine.run eng {|<a k="{'"v"'}">{'1 < 2'}</a>|})));
  ]

let suite =
  [
    ("engine:api", engine_api);
    ("engine:modes", engine_modes);
    ("engine:serialize", serializer_output);
  ]
