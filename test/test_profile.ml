(* The continuous sampling profiler (lib/obs/profile) and GC/runtime
   telemetry (lib/obs/gc_tel): folded-stack encoding round-trips,
   lifecycle idempotence, phase attribution under a real CPU-bound
   query, the PROFILE wire verb and the injected gc-pause health
   reason. The profiler is process-global, so every test that starts
   it stops and resets it in a [finally]. *)

open Helpers
module Profile = Xqb_obs.Profile
module Gc_tel = Xqb_obs.Gc_tel
module Procstat = Xqb_obs.Procstat
module Svc = Xqb_service.Service
module P = Xqb_service.Protocol
module J = Xqb_obs.Json

(* -- folded-stack encoding ------------------------------------------ *)

let folded_tests =
  [
    tc "encode_line is root-first with a trailing count" `Quick (fun () ->
        check Alcotest.string "plain" "main;eval;mod 7"
          (Profile.Folded.encode_line [ "main"; "eval"; "mod" ] 7));
    tc "frames with separators are escaped" `Quick (fun () ->
        let f = "a;b c\td\ne\rf\\g" in
        let enc = Profile.Folded.encode_frame f in
        check Alcotest.string "frame round-trip" f
          (Profile.Folded.decode_frame enc);
        (* the separator bytes are escaped, so a line holding this
           frame still decodes as ONE frame, not several *)
        match Profile.Folded.decode_line (Profile.Folded.encode_line [ f ] 5) with
        | Some ([ f' ], 5) -> check Alcotest.string "line round-trip" f f'
        | Some (fs, n) ->
          Alcotest.failf "decoded %d frames, count %d" (List.length fs) n
        | None -> Alcotest.fail "line did not decode");
    tc "decode_line on specific escapes" `Quick (fun () ->
        match Profile.Folded.decode_line {|a\;b;c\sd 12|} with
        | Some ([ "a;b"; "c d" ], 12) -> ()
        | Some (fs, n) ->
          Alcotest.failf "decoded %d frames, count %d" (List.length fs) n
        | None -> Alcotest.fail "decode_line rejected a valid line");
    tc "decode_line rejects malformed lines" `Quick (fun () ->
        List.iter
          (fun l ->
            if Profile.Folded.decode_line l <> None then
              Alcotest.failf "accepted malformed line %S" l)
          [ ""; "nocount"; "stack x"; "stack -1.5" ]);
    qtest ~count:300 "encode_line/decode_line round-trip arbitrary frames"
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 8)
             (string_size ~gen:(char_range '\000' '\255') (int_range 0 20)))
          (int_range 0 1_000_000))
      (fun (frames, count) ->
        match Profile.Folded.decode_line (Profile.Folded.encode_line frames count) with
        | Some (frames', count') -> frames' = frames && count' = count
        | None -> false);
    tc "dump of an idle profiler is empty, stat is JSON" `Quick (fun () ->
        Profile.reset ();
        check Alcotest.string "empty dump" "" (Profile.dump_folded ());
        ignore (check_json "stat" (Profile.stat_json ()));
        ignore (check_json "dump json" (Profile.dump_json ())));
    tc "diff_counts keeps positive deltas only" `Quick (fun () ->
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
          "delta"
          [ ("run", 3) ]
          (Profile.diff_counts
             [ ("run", 2); ("wal", 5) ]
             [ ("run", 5); ("wal", 5) ]));
  ]

(* -- lifecycle ------------------------------------------------------ *)

let lifecycle_tests =
  [
    tc "start is idempotent, stop restores" `Quick (fun () ->
        Fun.protect
          ~finally:(fun () ->
            ignore (Profile.stop ());
            Profile.reset ())
          (fun () ->
            check Alcotest.bool "not running initially" false
              (Profile.running ());
            check Alcotest.bool "first start" true (Profile.start ~hz:97 ());
            check Alcotest.bool "second start is a no-op" false
              (Profile.start ~hz:50 ());
            check Alcotest.int "rate unchanged by the no-op start" 97
              (Profile.hz ());
            check Alcotest.bool "running" true (Profile.running ());
            check Alcotest.bool "first stop" true (Profile.stop ());
            check Alcotest.bool "second stop is a no-op" false
              (Profile.stop ());
            check Alcotest.bool "stopped" false (Profile.running ())));
    tc "start rejects a non-positive rate" `Quick (fun () ->
        match Profile.start ~hz:0 () with
        | exception Invalid_argument _ -> ()
        | started ->
          if started then ignore (Profile.stop ());
          Alcotest.fail "hz:0 accepted");
    tc "with_phase nests and restores" `Quick (fun () ->
        (* observable via samples only when running; here we just
           check the bracket restores cleanly and composes *)
        let r =
          Profile.with_phase "compile" (fun () ->
              Profile.with_phase "run" (fun () -> Profile.with_op 3 (fun () -> 41 + 1)))
        in
        check Alcotest.int "result threads through" 42 r);
  ]

(* -- attribution under load (the wire verb end to end) -------------- *)

let busy = "sum(for $i in 1 to 400000 return $i mod 7)"

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let run_phase_samples () =
  Option.value ~default:0 (List.assoc_opt "run" (Profile.phase_counts ()))

let attribution_tests =
  [
    tc "PROFILE DUMP attributes samples to the run phase" `Slow (fun () ->
        let svc = Svc.create ~domains:1 () in
        Fun.protect
          ~finally:(fun () ->
            Svc.shutdown svc;
            ignore (Profile.stop ());
            Profile.reset ())
          (fun () ->
            Profile.reset ();
            let started = Svc.profile_command svc `Start in
            check Alcotest.bool "start reply names the rate" true
              (starts_with "started at " started);
            let sid = Svc.open_session svc in
            (* CPU-bound queries against a 97 Hz CPU-time timer: keep
               issuing until samples land in the run phase (a handful
               of queries on any machine; capped to stay bounded) *)
            let rec go n =
              if run_phase_samples () = 0 && n > 0 then begin
                (match Svc.query svc sid busy with
                | Ok _ -> ()
                | Error e ->
                  Alcotest.failf "busy query failed: %s"
                    (Xqb_service.Service_error.to_string e));
                go (n - 1)
              end
            in
            go 40;
            let run_samples = run_phase_samples () in
            if run_samples = 0 then
              Alcotest.fail "no samples attributed to the run phase";
            (* the folded dump carries the same attribution *)
            let dump = Svc.profile_command svc `Dump in
            check Alcotest.bool "dump has a run-phase stack" true
              (List.exists
                 (fun l -> starts_with "run" l)
                 (String.split_on_char '\n' dump));
            (match
               Profile.Folded.decode_line
                 (List.hd (String.split_on_char '\n' dump))
             with
            | Some (_frames, n) when n > 0 -> ()
            | _ -> Alcotest.fail "dump line does not round-trip");
            (* STAT reports the samples as strict JSON *)
            let stat = check_json "profile stat" (Svc.profile_command svc `Stat) in
            (match J.member "samples" stat with
            | Some (J.Num n) when n > 0. -> ()
            | _ -> Alcotest.fail "stat_json has no positive sample count");
            check Alcotest.string "stop" "stopped" (Svc.profile_command svc `Stop);
            check Alcotest.string "stop twice" "not running"
              (Svc.profile_command svc `Stop)));
  ]

(* -- PROFILE on the wire -------------------------------------------- *)

let parse_ok line =
  match P.parse line with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S failed: %s" line e

let wire_tests =
  [
    tc "PROFILE parses: START, STOP, DUMP, DUMP JSON, STAT" `Quick (fun () ->
        check Alcotest.bool "start" true
          (parse_ok "PROFILE START" = P.Profile `Start);
        check Alcotest.bool "stop" true
          (parse_ok "profile stop" = P.Profile `Stop);
        check Alcotest.bool "dump" true
          (parse_ok "PROFILE DUMP" = P.Profile `Dump);
        check Alcotest.bool "dump json" true
          (parse_ok "PROFILE DUMP JSON" = P.Profile `Dump_json);
        check Alcotest.bool "stat" true
          (parse_ok "PROFILE STAT" = P.Profile `Stat);
        check Alcotest.bool "bare PROFILE is STAT" true
          (parse_ok "PROFILE" = P.Profile `Stat);
        match P.parse "PROFILE FLAME" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown subcommand accepted");
    tc "profiler gauges are on the Prometheus page" `Quick (fun () ->
        let svc = Svc.create ~domains:0 () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            let page = Svc.metrics_prometheus svc in
            List.iter
              (fun m ->
                check Alcotest.bool m true
                  (Re.execp (Re.compile (Re.str m)) page))
              [
                "xqbang_profile_running";
                "xqbang_profile_samples_total";
                "xqbang_build_info";
                "xqbang_process_resident_memory_bytes";
                "xqbang_process_open_fds";
                "xqbang_process_uptime_seconds";
                "xqbang_gc_minor_collections_total";
              ]));
    tc "process gauges read sane values" `Quick (fun () ->
        check Alcotest.bool "rss positive" true (Procstat.rss_bytes () > 0);
        check Alcotest.bool "fds positive" true (Procstat.fd_count () > 0));
  ]

(* -- gc telemetry and the gc-pause health reason -------------------- *)

let health_reason_names svc =
  match J.member "reasons" (check_json "health" (Svc.health_json svc)) with
  | Some (J.Arr rs) ->
    List.filter_map
      (fun r ->
        match J.member "code" r with Some (J.Str s) -> Some s | _ -> None)
      rs
  | _ -> []

let gc_tests =
  [
    tc "injected gc pause degrades health; clearing restores it" `Quick
      (fun () ->
        let svc = Svc.create ~domains:0 ~gc_pause_warn_ms:50 () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            check Alcotest.bool "no gc-pause reason at rest" false
              (List.mem "gc-pause" (health_reason_names svc));
            (* degraded past warn, critical past 4x warn *)
            Svc.inject_gc_pause svc 80;
            check Alcotest.bool "gc-pause reason present" true
              (List.mem "gc-pause" (health_reason_names svc));
            Svc.inject_gc_pause svc 500;
            let v = check_json "health" (Svc.health_json svc) in
            (match J.member "status" v with
            | Some (J.Str "critical") -> ()
            | Some (J.Str s) -> Alcotest.failf "expected critical, got %s" s
            | _ -> Alcotest.fail "health_json has no status");
            Svc.clear_gc_pause_injection svc;
            check Alcotest.bool "cleared" false
              (List.mem "gc-pause" (health_reason_names svc))));
    tc "gc telemetry surfaces in STATS while enabled" `Quick (fun () ->
        let svc = Svc.create ~domains:0 () in
        Fun.protect
          ~finally:(fun () -> Svc.shutdown svc)
          (fun () ->
            let v = check_json "stats" (Svc.stats_json svc) in
            (match J.member "gc" v with
            | Some (J.Obj _) -> ()
            | _ -> Alcotest.fail "stats_json has no gc section");
            match J.member "profiler" v with
            | Some (J.Obj _) -> ()
            | _ -> Alcotest.fail "stats_json has no profiler section"));
  ]

let suite =
  [
    ("profile:folded", folded_tests);
    ("profile:lifecycle", lifecycle_tests);
    ("profile:attribution", attribution_tests);
    ("profile:wire", wire_tests);
    ("profile:gc", gc_tests);
  ]
