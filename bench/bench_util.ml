(* Measurement and reporting helpers shared by the E1-E7 benches.

   Two measurement styles:
   - [measure_ns] uses Bechamel (OLS over geometric run counts) for
     micro-operations;
   - [wall_ms] takes a single wall-clock measurement for macro runs
     whose setup cannot be repeated cheaply (fresh store per run). *)

open Bechamel

(* -- machine-readable results (bench --json PATH) -------------------

   Every measurement records (name, n, median ns) here; [write_json]
   dumps the run for per-PR BENCH_*.json trajectory files. [n] is
   the workload size the number refers to (1 for micro-ops). *)

let json_results : (string * int * float) list ref = ref []

let record ~name ~n ns = json_results := (name, n, ns) :: !json_results

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let escape s =
        String.concat ""
          (List.map
             (function
               | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
               | c -> String.make 1 c)
             (List.init (String.length s) (String.get s)))
      in
      output_string oc "[\n";
      List.iteri
        (fun i (name, n, ns) ->
          Printf.fprintf oc "  {\"name\":\"%s\",\"n\":%d,\"median_ns\":%.1f}%s\n"
            (escape name) n ns
            (if i = List.length !json_results - 1 then "" else ","))
        (List.rev !json_results);
      output_string oc "]\n");
  Printf.printf "wrote %d results to %s\n" (List.length !json_results) path

let ols =
  Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]

let clock = Toolkit.Instance.monotonic_clock

(* Estimated nanoseconds per run of [f]. *)
let measure_ns ?(quota = 0.4) name (f : unit -> unit) : float =
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg [ clock ] test in
  let res = Analyze.all ols clock raw in
  match Analyze.OLS.estimates (Hashtbl.find res name) with
  | Some [ t ] ->
    record ~name ~n:1 t;
    t
  | _ -> Float.nan

(* One wall-clock run, in milliseconds, with the result value kept
   alive. *)
let wall_ms (f : unit -> 'a) : 'a * float =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let t1 = Unix.gettimeofday () in
  (v, (t1 -. t0) *. 1000.)

(* Median-of-3 wall time for slightly steadier macro numbers. *)
let wall_ms_median3 (f : unit -> 'a) : float =
  let times = List.init 3 (fun _ -> snd (wall_ms f)) in
  match List.sort compare times with
  | [ _; m; _ ] -> m
  | _ -> assert false

let ns_to_string ns =
  if Float.is_nan ns then "n/a"
  else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else Printf.sprintf "%.2f ms" (ns /. 1e6)

(* -- Plain-text tables ------------------------------------------------ *)

let print_header title =
  Printf.printf "\n== %s ==\n" title

let print_table headers rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let line cells =
    List.iteri
      (fun i c -> Printf.printf "%-*s  " (List.nth widths i) c)
      cells;
    print_newline ()
  in
  line headers;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter line rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
