(* Benchmark harness: one section per experiment in DESIGN.md /
   EXPERIMENTS.md (E1-E7). Run all with

     dune exec bench/main.exe

   or a subset with e.g. `dune exec bench/main.exe -- e1 e2`.

   The numbers regenerate the *shape* of the paper's claims (who wins,
   by what complexity class); absolute times are this machine's. *)

open Bench_util
module G = Xqb_xmark.Generator

(* ------------------------------------------------------------------ *)
(* E1 — §4.3: naive nested-loop vs outer-join/group-by on the XMark   *)
(* Q8 variant with embedded inserts.                                   *)
(* ------------------------------------------------------------------ *)

let e1 () =
  print_header
    "E1 (§4.3): XMark Q8 + inserts — naive O(|p|*|ca|) vs join/group-by O(|p|+|ca|+|m|)";
  let scales = [ (25, 50); (50, 100); (100, 200); (200, 400); (400, 800) ] in
  let rows =
    List.map
      (fun (persons, closed) ->
        let naive_ms =
          wall_ms_median3 (fun () ->
              let eng = Workloads.engine ~persons ~closed () in
              ignore (Core.Engine.run eng Workloads.q8_with_inserts))
        in
        let opt = ref None in
        let opt_ms =
          wall_ms_median3 (fun () ->
              let eng = Workloads.engine ~persons ~closed () in
              opt := Some (Xqb_algebra.Runner.run eng Workloads.q8_with_inserts))
        in
        let r = Option.get !opt in
        [
          string_of_int persons;
          string_of_int closed;
          string_of_int r.Xqb_algebra.Runner.stats.Xqb_algebra.Exec.matches;
          f1 naive_ms;
          f1 opt_ms;
          f1 (naive_ms /. opt_ms) ^ "x";
          String.concat "," r.Xqb_algebra.Runner.fired;
        ])
      scales
  in
  print_table
    [ "persons"; "closed"; "matches"; "naive ms"; "opt ms"; "speedup"; "rewrites" ]
    rows;
  (* Shape check: from (100,200) to (400,800) naive should grow ~16x
     (quadratic in scale), the optimized plan ~4x (linear). *)
  let get r c = float_of_string (List.nth (List.nth rows r) c) in
  Printf.printf
    "growth from (100,200) to (400,800): naive %.1fx (quadratic ~16x), optimized %.1fx (linear ~4x)\n"
    (get 4 3 /. get 2 3)
    (get 4 4 /. get 2 4)

(* ------------------------------------------------------------------ *)
(* E2 — §3.2/§4.1: the three update-application semantics; conflict   *)
(* verification is linear time with hash tables.                       *)
(* ------------------------------------------------------------------ *)

let e2 () =
  print_header
    "E2 (§3.2): update-list application — ordered vs nondeterministic vs conflict-detection";
  let sizes = [ 100; 1000; 10000 ] in
  let build n =
    let store = Xqb_store.Store.create () in
    let doc = Xqb_store.Store.load_string store "<r/>" in
    let r = List.hd (Xqb_store.Store.children store doc) in
    (* n parents, one insert each: independent => conflict-free *)
    let parents =
      List.init n (fun i ->
          let p =
            Xqb_store.Store.make_element store
              (Xqb_xml.Qname.make (Printf.sprintf "p%d" i))
          in
          Xqb_store.Store.insert store ~parent:r ~position:Xqb_store.Store.Last [ p ];
          p)
    in
    let delta =
      List.map
        (fun p ->
          Core.Update.make
            (Core.Update.Insert
               {
                 nodes =
                   [ Xqb_store.Store.make_element store (Xqb_xml.Qname.make "c") ];
                 parent = p;
                 position = Core.Update.Last;
               }))
        parents
    in
    (store, delta)
  in
  let time_mode n mode =
    let times =
      List.init 3 (fun _ ->
          let store, delta = build n in
          snd (wall_ms (fun () -> Core.Apply.apply store mode delta)))
    in
    List.nth (List.sort compare times) 1
  in
  let check_only n =
    let _, delta = build n in
    measure_ns "conflict-check" (fun () -> Core.Conflict.check delta) /. 1e6
  in
  let rows =
    List.map
      (fun n ->
        let o = time_mode n Core.Apply.Ordered in
        let nd = time_mode n Core.Apply.Nondeterministic in
        let cd = time_mode n Core.Apply.Conflict_detection in
        let chk = check_only n in
        [
          string_of_int n;
          f2 o;
          f2 nd;
          f2 cd;
          f2 chk;
          f2 (1e6 *. chk /. float_of_int n) ^ " ns/req";
        ])
      sizes
  in
  print_table
    [ "requests"; "ordered ms"; "nondet ms"; "conflict ms"; "check ms"; "check cost" ]
    rows;
  print_endline
    "(check cost per request should be ~constant: the verification is linear, §4.1)"

(* ------------------------------------------------------------------ *)
(* E3 — §2.2-2.3: Web-service logging overhead.                        *)
(* ------------------------------------------------------------------ *)

let e3 () =
  print_header "E3 (§2.2-2.3): get_item with and without logging";
  let calls = 200 in
  let bench_fn fn =
    let eng = Workloads.web_service_engine () in
    let compiled =
      Array.init 10 (fun i ->
          Core.Engine.compile eng
            (Printf.sprintf "count(%s('item%d','person%d'))" fn i (i * 3)))
    in
    wall_ms_median3 (fun () ->
        for i = 1 to calls do
          ignore (Core.Engine.run_compiled eng compiled.(i mod 10))
        done)
  in
  let no_log = bench_fn "get_item_nolog" in
  let with_log = bench_fn "get_item" in
  let with_archive =
    (* tiny maxlog forces an archive every 2 calls *)
    let eng = Workloads.web_service_engine ~maxlog:2 () in
    let compiled =
      Array.init 10 (fun i ->
          Core.Engine.compile eng
            (Printf.sprintf "count(get_item('item%d','person%d'))" i (i * 3)))
    in
    wall_ms_median3 (fun () ->
        for i = 1 to calls do
          ignore (Core.Engine.run_compiled eng compiled.(i mod 10))
        done)
  in
  print_table
    [ "variant"; "ms/200 calls"; "us/call"; "overhead" ]
    [
      [ "no logging"; f1 no_log; f1 (no_log *. 1000. /. float_of_int calls); "1.00x" ];
      [
        "logging (snap insert + nextid)";
        f1 with_log;
        f1 (with_log *. 1000. /. float_of_int calls);
        f2 (with_log /. no_log) ^ "x";
      ];
      [
        "logging + archive every 2";
        f1 with_archive;
        f1 (with_archive *. 1000. /. float_of_int calls);
        f2 (with_archive /. no_log) ^ "x";
      ];
    ]

(* ------------------------------------------------------------------ *)
(* E4 — §2.5: nested snap cost.                                        *)
(* ------------------------------------------------------------------ *)

let e4 () =
  print_header "E4 (§2.5): snap nesting — cost per snap scope vs depth";
  let nested_query depth =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "let $x := <x/> return ";
    for _ = 1 to depth do
      Buffer.add_string buf "snap { insert {<a/>} into {$x}, "
    done;
    Buffer.add_string buf "0";
    for _ = 1 to depth do
      Buffer.add_string buf " }"
    done;
    Buffer.contents buf
  in
  let rows =
    List.map
      (fun depth ->
        let eng = Core.Engine.create () in
        let compiled = Core.Engine.compile eng (nested_query depth) in
        let ns =
          measure_ns
            (Printf.sprintf "snap-depth-%d" depth)
            (fun () -> ignore (Core.Engine.run_compiled eng compiled))
        in
        [ string_of_int depth; ns_to_string ns; ns_to_string (ns /. float_of_int depth) ])
      [ 1; 2; 4; 8; 16; 32; 64 ]
  in
  print_table [ "depth"; "time/query"; "time/snap" ] rows;
  print_endline "(time per snap should stay ~flat: a frame is O(1), §4.1)"

(* ------------------------------------------------------------------ *)
(* E5 — §3.4: the golden ordering example (semantic check).            *)
(* ------------------------------------------------------------------ *)

let e5 () =
  print_header "E5 (§3.4): snap ordering golden check";
  let eng = Core.Engine.create () in
  let v =
    Core.Engine.run eng
      {|let $x := <x/>
        return (snap ordered { insert {<a/>} into {$x},
                               snap { insert {<b/>} into {$x} },
                               insert {<c/>} into {$x} }, $x)|}
  in
  let got = Core.Engine.serialize eng v in
  Printf.printf "result: %s — %s\n" got
    (if got = "<x><b></b><a></a><c></c></x>" then "matches the paper (b, a, c)"
     else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* E6 — §4.1/§3.1: store micro-operations and detach semantics.        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  print_header "E6 (§4.1): store micro-operations";
  let module S = Xqb_store.Store in
  let store = S.create () in
  let doc = G.generate store { G.default with G.persons = 200 } in
  let site = List.hd (S.children store doc) in
  let people = List.nth (S.children store site) 2 in
  let persons = Array.of_list (S.children store people) in
  let i = ref 0 in
  let rows =
    [
      ( "make_element",
        measure_ns "make_element" (fun () ->
            ignore (S.make_element store (Xqb_xml.Qname.make "e"))) );
      ( "insert as last + detach",
        measure_ns "insert-detach" (fun () ->
            let e = S.make_element store (Xqb_xml.Qname.make "e") in
            S.insert store ~parent:people ~position:S.Last [ e ];
            S.detach store e) );
      ( "rename",
        measure_ns "rename" (fun () ->
            incr i;
            S.rename store persons.(!i mod Array.length persons)
              (Xqb_xml.Qname.make "person")) );
      ( "deep_copy person subtree",
        measure_ns "deep-copy" (fun () ->
            incr i;
            ignore (S.deep_copy store persons.(!i mod Array.length persons))) );
      ( "compare_order (siblings)",
        measure_ns "cmp-order" (fun () ->
            incr i;
            ignore
              (S.compare_order store
                 persons.(!i mod Array.length persons)
                 persons.((!i + 7) mod Array.length persons))) );
      ( "string_value person",
        measure_ns "string-value" (fun () ->
            incr i;
            ignore (S.string_value store persons.(!i mod Array.length persons))) );
    ]
  in
  print_table [ "operation"; "time" ]
    (List.map (fun (n, ns) -> [ n; ns_to_string ns ]) rows);
  let p = persons.(0) in
  S.detach store p;
  let sv = S.string_value store p in
  Printf.printf
    "detached person still queryable: %b (string length %d); detached roots now: %d\n"
    (String.length sv > 0) (String.length sv) (S.detached_count store)

(* ------------------------------------------------------------------ *)
(* E7 — §4.2-4.3: how often rewrites fire, and what the guards block.  *)
(* ------------------------------------------------------------------ *)

let e7 () =
  print_header "E7 (§4.2-4.3): rewrite guards over a query corpus";
  let corpus =
    [
      ( "pure join",
        {|for $p in $auction//person
          for $t in $auction//closed_auction
          where $t/buyer/@person = $p/@id return 1|} );
      ( "join, updating return",
        {|for $p in $auction//person
          for $t in $auction//closed_auction
          where $t/buyer/@person = $p/@id
          return insert {<l/>} into {$purchasers}|} );
      ("group-by (paper Q8)", Workloads.q8_with_inserts);
      ( "updating inner branch",
        {|for $p in $auction//person
          for $t in (insert {<l/>} into {$purchasers}, $auction//closed_auction)
          where $t/buyer/@person = $p/@id return 1|} );
      ( "snap in return",
        {|for $p in $auction//person
          for $t in $auction//closed_auction
          where $t/buyer/@person = $p/@id
          return snap insert {<l/>} into {$purchasers}|} );
      ( "no join pattern",
        {|for $p in $auction//person
          where starts-with($p/name, 'A') return string($p/name)|} );
    ]
  in
  let rows =
    List.map
      (fun (name, src) ->
        let eng = Workloads.engine ~persons:10 ~closed:10 () in
        let _, cres = Xqb_algebra.Runner.plan_of eng src in
        [
          name;
          (match cres.Xqb_algebra.Compile.fired with
          | [] -> "-"
          | fs -> String.concat "," fs);
          (match cres.Xqb_algebra.Compile.rejected with
          | [] -> "-"
          | rs -> String.concat "; " (List.map (fun (r, w) -> r ^ ": " ^ w) rs));
        ])
      corpus
  in
  print_table [ "query"; "rewrites fired"; "guard rejections" ] rows

(* ------------------------------------------------------------------ *)
(* E8 — compilation pipeline cost (parse -> normalize -> plan) vs      *)
(* query size. §4.2: "changes to the parser and normalization are      *)
(* trivial"; the pipeline should stay cheap and scale linearly.        *)
(* ------------------------------------------------------------------ *)

let e8 () =
  print_header "E8: compilation pipeline — parse/normalize/plan vs query size";
  let query_of_size n =
    (* a FLWOR chain with n let-clauses over constructed elements and
       one update, representative of module-sized programs *)
    let buf = Buffer.create (n * 64) in
    Buffer.add_string buf "let $x0 := <x id=\"0\">seed</x> return (";
    for i = 1 to n do
      Buffer.add_string buf
        (Printf.sprintf
           "let $x%d := <x id=\"{%d}\">{$x%d}</x> return (insert {<l/>} into {$x%d}, "
           i i (i - 1) i)
    done;
    Buffer.add_string buf "0";
    for _ = 1 to n do
      Buffer.add_string buf ")"
    done;
    Buffer.add_char buf ')';
    Buffer.contents buf
  in
  let rows =
    List.map
      (fun n ->
        let src = query_of_size n in
        let parse_ns =
          measure_ns (Printf.sprintf "parse-%d" n) (fun () ->
              ignore (Xqb_syntax.Parser.parse_prog src))
        in
        let full_ns =
          measure_ns (Printf.sprintf "compile-%d" n) (fun () ->
              let eng = Core.Engine.create () in
              ignore (Xqb_algebra.Runner.plan_of eng src))
        in
        [
          string_of_int n;
          string_of_int (String.length src);
          ns_to_string parse_ns;
          ns_to_string full_ns;
          ns_to_string (full_ns /. float_of_int n);
        ])
      [ 8; 32; 128; 512 ]
  in
  print_table
    [ "clauses"; "bytes"; "parse"; "parse+normalize+plan"; "per clause" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9 — snapshot granularity ablation. §2.4: "make snap scope as      *)
(* broad as possible, since a broader snap favors optimization"; this  *)
(* measures the runtime side of that advice.                           *)
(* ------------------------------------------------------------------ *)

let e9 () =
  print_header "E9: snapshot granularity — one broad snap vs snap-per-update";
  let n = 400 in
  let broad =
    Printf.sprintf
      "let $x := <x/> return snap { for $i in 1 to %d return insert {element n {$i}} into {$x} }"
      n
  in
  let per_update =
    Printf.sprintf
      "let $x := <x/> return for $i in 1 to %d return snap insert {element n {$i}} into {$x}"
      n
  in
  (* interleave the two strategies and take medians of five, so GC
     state from earlier experiments cannot bias one side *)
  let run src =
    let eng = Core.Engine.create () in
    let compiled = Core.Engine.compile eng src in
    snd (wall_ms (fun () -> ignore (Core.Engine.run_compiled eng compiled)))
  in
  ignore (run broad);
  ignore (run per_update);
  let pairs =
    List.init 7 (fun _ ->
        Gc.full_major ();
        let b = run broad in
        Gc.full_major ();
        let p = run per_update in
        (b, p))
  in
  let med l = List.nth (List.sort compare l) 3 in
  let tb = med (List.map fst pairs) and tp = med (List.map snd pairs) in
  print_table
    [ "strategy"; Printf.sprintf "ms/%d inserts" n; "relative" ]
    [
      [ "one broad snap (snapshot semantics)"; f2 tb; "1.00x" ];
      [ "snap per update (immediate)"; f2 tp; f2 (tp /. tb) ^ "x" ];
    ];
  print_endline
    "(apply cost is comparable at this scale once GC noise is controlled; the paper's\n\
     broaden-the-snap advice is about optimizability — a per-update snap makes the\n\
     block Effecting and disables every rewrite, see E7/E11)"

(* ------------------------------------------------------------------ *)
(* E10 — ddo ablation: the sortedness fast path on path results.      *)
(* ------------------------------------------------------------------ *)

let e10 () =
  print_header "E10: distinct-doc-order — sorted fast path vs full sort";
  let module S = Xqb_store.Store in
  let store = S.create () in
  let doc = G.generate store { G.default with G.persons = 400 } in
  let site = List.hd (S.children store doc) in
  let people = List.nth (S.children store site) 2 in
  let persons = Array.of_list (S.children store people) in
  let sorted = Array.to_list persons in
  let shuffled =
    let a = Array.copy persons in
    let r = Random.State.make [| 7 |] in
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int r (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list a
  in
  let ctx = Core.Context.create ~store () in
  let time name ids =
    measure_ns name (fun () ->
        ignore (Core.Functions.call ctx None "%ddo" [ Xqb_xdm.Value.of_nodes ids ]))
  in
  let t_sorted = time "ddo-sorted" sorted in
  let t_shuffled = time "ddo-shuffled" shuffled in
  print_table
    [ "input (400 nodes)"; "time"; "per node" ]
    [
      [ "already in document order"; ns_to_string t_sorted;
        ns_to_string (t_sorted /. 400.) ];
      [ "shuffled"; ns_to_string t_shuffled; ns_to_string (t_shuffled /. 400.) ];
    ];
  Printf.printf
    "fast path saves %.1fx on the common already-sorted case (every child step over sorted context)\n"
    (t_shuffled /. t_sorted)

(* ------------------------------------------------------------------ *)
(* E11 — the §4.2 rewriting phase: what fires on a realistic corpus    *)
(* and what it buys at runtime.                                        *)
(* ------------------------------------------------------------------ *)

let e11 () =
  print_header "E11 (§4.2): purity-guarded simplifier — rules fired and runtime effect";
  let corpus =
    [
      ("constant folding", "for $i in 1 to 2000 return (1 + 2 * 3) * $i");
      ("dead bindings", "for $i in 1 to 2000 let $unused := (1 to 5) return $i");
      ("boolean predicates", "(1 to 2000)[true()][true()]");
      ("branch folding", "for $i in 1 to 2000 return if (true()) then $i else error()");
      ( "paper Q8 (no constants to fold)",
        Workloads.q8_pure );
    ]
  in
  let rows =
    List.map
      (fun (name, src) ->
        let eng = Core.Engine.create () in
        Core.Engine.bind_node eng "auction"
          (Xqb_store.Store.load_string (Core.Engine.store eng) "<site/>");
        let c_on = Core.Engine.compile ~simplify:true eng src in
        let fired =
          List.fold_left (fun acc (_, n) -> acc + n) 0 c_on.Core.Engine.rewrites
        in
        let time simplify =
          let eng = Core.Engine.create () in
          Core.Engine.bind_node eng "auction"
            (Xqb_store.Store.load_string (Core.Engine.store eng) "<site/>");
          let c = Core.Engine.compile ~simplify eng src in
          measure_ns name (fun () -> ignore (Core.Engine.run_compiled eng c)) /. 1e6
        in
        let t_on = time true and t_off = time false in
        [
          name;
          string_of_int fired;
          (if c_on.Core.Engine.rewrites = [] then "-"
           else
             String.concat ","
               (List.map (fun (r, n) -> Printf.sprintf "%s:%d" r n)
                  c_on.Core.Engine.rewrites));
          f2 t_off;
          f2 t_on;
          (if t_on > 0. then f2 (t_off /. t_on) ^ "x" else "-");
        ])
      corpus
  in
  print_table
    [ "query"; "fired"; "rules"; "off ms"; "on ms"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12 — element-name index ablation: the //name fast path behind the *)
(* descendant-step rewrites, exercised by the §2 web service.          *)
(* ------------------------------------------------------------------ *)

let e12 () =
  print_header "E12: element-name index — //name lookups with and without the cache";
  let mk indexing persons =
    let eng = Core.Engine.create () in
    Xqb_store.Store.set_indexing (Core.Engine.store eng) indexing;
    let cfg = { G.default with G.persons } in
    let doc = G.generate (Core.Engine.store eng) cfg in
    Core.Engine.bind_node eng "auction" doc;
    eng
  in
  let rows =
    List.map
      (fun persons ->
        let time indexing =
          let eng = mk indexing persons in
          let c =
            Core.Engine.compile eng
              "count($auction//person[@id = 'person7']) + count($auction//item)"
          in
          measure_ns "lookup" (fun () -> ignore (Core.Engine.run_compiled eng c))
        in
        let t_on = time true and t_off = time false in
        [
          string_of_int persons;
          ns_to_string t_off;
          ns_to_string t_on;
          f1 (t_off /. t_on) ^ "x";
        ])
      [ 100; 400; 1600 ]
  in
  print_table [ "persons"; "no index"; "indexed"; "speedup" ] rows;
  (* updates invalidate: measure a mixed lookup/update loop *)
  let eng = mk true 400 in
  let lookup =
    Core.Engine.compile eng "count($auction//person[@id = 'person7'])"
  in
  let update =
    Core.Engine.compile eng
      "snap insert {<touch/>} into {($auction//maintenance_target, $auction/site)[1]}"
  in
  let mixed =
    measure_ns "mixed" (fun () ->
        ignore (Core.Engine.run_compiled eng lookup);
        ignore (Core.Engine.run_compiled eng update))
  in
  Printf.printf
    "mixed lookup+update iteration (index rebuilt after each write): %s\n"
    (ns_to_string mixed)

(* ------------------------------------------------------------------ *)
(* E13 — attribute-value key index: the §2 web service's              *)
(* //person[@id = $u] lookup with and without the hash path.           *)
(* ------------------------------------------------------------------ *)

let e13 () =
  print_header "E13: attribute-value key index on the §2 web service lookups";
  let bench indexing persons =
    let eng = Core.Engine.create () in
    Xqb_store.Store.set_indexing (Core.Engine.store eng) indexing;
    let cfg = { G.default with G.persons; items = persons } in
    let doc = G.generate (Core.Engine.store eng) cfg in
    Core.Engine.bind_node eng "auction" doc;
    let m = Core.Engine.compile eng (Workloads.web_service_module 1000) in
    Core.Engine.eval_globals eng m;
    let calls =
      Array.init 16 (fun i ->
          Core.Engine.compile eng
            (Printf.sprintf "count(get_item('item%d','person%d'))" (i * 3) (i * 5)))
    in
    let i = ref 0 in
    measure_ns "call" (fun () ->
        incr i;
        ignore (Core.Engine.run_compiled eng calls.(!i mod 16)))
  in
  let rows =
    List.map
      (fun persons ->
        let t_off = bench false persons in
        let t_on = bench true persons in
        [
          string_of_int persons;
          ns_to_string t_off;
          ns_to_string t_on;
          f1 (t_off /. t_on) ^ "x";
        ])
      [ 100; 400; 1600 ]
  in
  print_table
    [ "persons=items"; "us/call (no index)"; "us/call (indexed)"; "speedup" ]
    rows;
  print_endline
    "(each get_item call does //item[@id=...] and //person[@id=...] lookups plus a logging snap)"

(* ------------------------------------------------------------------ *)
(* E15 — the query service layer: plan-cache reuse and the            *)
(* purity-gated parallel scheduler (lib/service, docs/SERVICE.md).    *)
(* ------------------------------------------------------------------ *)

module Svc = Xqb_service.Service
module Sched = Xqb_service.Scheduler

let e15 () =
  print_header
    "E15: query service — plan-cache reuse and purity-gated parallelism";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host cores available: %d\n" cores;
  let expect_ok = function
    | Ok r -> r
    | Error e -> failwith ("e15: " ^ Xqb_service.Service_error.to_string e)
  in
  (* one XMark instance, serialized once, loaded into each service *)
  let xml =
    let store = Xqb_store.Store.create () in
    let doc =
      G.generate store { G.default with G.persons = 120; closed_auctions = 240 }
    in
    Core.Engine.serialize_with store (Xqb_xdm.Value.of_nodes [ doc ])
  in
  (* Pure *and* allocation-free reads: these classify parallel-safe
     and run on the scheduler's read side. The join dominates, so
     per-job work is large relative to scheduling overhead. *)
  let reads =
    [|
      {|count(for $p in $auction//person
              for $t in $auction//closed_auction
              where $t/buyer/@person = $p/@id return $t)|};
      {|count($auction//person[contains(name, "a")])|};
      {|count($auction//item) + count($auction//closed_auction)
        + count($auction//person[starts-with(name, "A")])|};
      {|count(for $t in $auction//closed_auction
              where $t/itemref/@item = "item3" return $t)|};
    |]
  in

  (* A. plan cache: rounds of 16 distinct queries. Round 1 compiles
     all 16; later rounds only normalize the key and look up. *)
  let svc = Svc.create ~domains:0 ~cache_capacity:64 () in
  let sid = Svc.open_session svc in
  Svc.load_document svc sid ~uri:"auction" xml;
  let corpus =
    List.init 16 (fun i ->
        Printf.sprintf {|count($auction//person[@id = "person%d"]/name)|} i)
  in
  let round () =
    List.iter (fun q -> ignore (expect_ok (Svc.query svc sid q))) corpus
  in
  let cold = snd (wall_ms round) in
  let hot = wall_ms_median3 round in
  let cs = Svc.cache_stats svc in
  Svc.shutdown svc;
  record ~name:"e15-cache-cold-round" ~n:16 (cold *. 1e6);
  record ~name:"e15-cache-hot-round" ~n:16 (hot *. 1e6);
  print_table
    [ "round of 16 distinct queries"; "ms"; "plan cache" ]
    [
      [ "first (16 compiles)"; f2 cold;
        Printf.sprintf "misses:%d" cs.Xqb_service.Plan_cache.misses ];
      [ "repeat (16 hits)"; f2 hot;
        Printf.sprintf "hits:%d evictions:%d" cs.Xqb_service.Plan_cache.hits
          cs.Xqb_service.Plan_cache.evictions ];
    ];
  Printf.printf
    "plan cache eliminates recompilation: repeat round %.1fx faster\n"
    (cold /. hot);

  (* B. pure-query throughput: 32 heavy reads, scheduler off
     (domains=0: synchronous, still lock-gated) vs a 4-domain pool.
     Results must be identical; wall-clock speedup needs real cores. *)
  let job_list = List.init 32 (fun i -> reads.(i mod Array.length reads)) in
  let run domains =
    let svc = Svc.create ~domains () in
    let sid = Svc.open_session svc in
    Svc.load_document svc sid ~uri:"auction" xml;
    (* warm: fill the plan cache and the store's lazy name indexes *)
    Array.iter (fun q -> ignore (expect_ok (Svc.query svc sid q))) reads;
    let results, ms =
      wall_ms (fun () ->
          let futs = List.map (fun q -> Svc.submit svc sid q) job_list in
          List.map Sched.await_exn futs)
    in
    let inflight = Xqb_service.Metrics.max_inflight (Svc.metrics svc) in
    Svc.shutdown svc;
    (List.map expect_ok results, ms, inflight)
  in
  let seq_res, seq_ms, _ = run 0 in
  let one_res, one_ms, _ = run 1 in
  let par_res, par_ms, (par_peak, _) = run 4 in
  record ~name:"e15-pure-32-scheduler-off" ~n:32 (seq_ms *. 1e6);
  record ~name:"e15-pure-32-scheduler-1dom" ~n:32 (one_ms *. 1e6);
  record ~name:"e15-pure-32-scheduler-4dom" ~n:32 (par_ms *. 1e6);
  print_table
    [ "scheduler"; "ms / 32 pure queries"; "throughput" ]
    [
      [ "off (domains=0, serialized)"; f1 seq_ms; "1.00x" ];
      [ "on (1 domain: pool overhead)"; f1 one_ms; f2 (seq_ms /. one_ms) ^ "x" ];
      [ "on (4 domains, read side)"; f1 par_ms; f2 (seq_ms /. par_ms) ^ "x" ];
    ];
  Printf.printf
    "results identical to sequential execution: %b\n\
     peak concurrent pure queries inside the read gate: %d (the purity gate admits 4-way overlap)\n"
    (seq_res = par_res && seq_res = one_res)
    par_peak;
  if cores < 4 then
    Printf.printf
      "NOTE: only %d core(s) visible — domains timeshare, and OCaml's stop-the-world\n\
       minor GC makes oversubscription a net loss; the >=2x wall-clock win needs >=4 cores\n"
      cores;

  (* C. mixed read/write gating: 2 sessions, 40 queries, every 5th an
     update. Writers must serialize (peak exclusive = 1) and every
     insert must land, regardless of interleaving. *)
  let svc = Svc.create ~domains:4 () in
  let s1 = Svc.open_session svc in
  let s2 = Svc.open_session svc in
  Svc.load_document svc s1 ~uri:"auction" xml;
  Svc.load_document svc s2 ~uri:"auction" xml;
  Svc.load_document svc s1 ~uri:"log" "<log/>";
  let mix =
    List.init 40 (fun i ->
        let sid = if i mod 2 = 0 then s1 else s2 in
        if i mod 5 = 0 then
          (sid,
           Printf.sprintf {|insert {element hit {%d}} into {doc("log")/log}|} i)
        else (sid, reads.(i mod Array.length reads)))
  in
  let futs = List.map (fun (sid, q) -> Svc.submit svc sid q) mix in
  List.iter (fun f -> ignore (expect_ok (Sched.await_exn f))) futs;
  let queries, par, excl, errs =
    Xqb_service.Metrics.counts (Svc.metrics svc)
  in
  let peak_par, peak_excl = Xqb_service.Metrics.max_inflight (Svc.metrics svc) in
  let hits = expect_ok (Svc.query svc s1 {|count(doc("log")/log/hit)|}) in
  Svc.shutdown svc;
  Printf.printf
    "mixed workload: %d queries = %d parallel + %d exclusive (%d errors)\n\
     peak in-flight: %d readers / %d writer(s); all 8 inserts applied: %s hits\n"
    queries par excl errs peak_par peak_excl hits

(* ------------------------------------------------------------------ *)
(* E16 — resource governance: tail latency of well-behaved queries    *)
(* under a poison-query mix, with and without per-query budgets.      *)
(* ------------------------------------------------------------------ *)

(* --smoke: tiny workload + tight budget, for CI (seconds, not tens). *)
let smoke = ref false

let e16 () =
  print_header
    "E16: resource governance — tail latency under a poison-query mix";
  let expect_ok = function
    | Ok r -> r
    | Error e -> failwith ("e16: " ^ Xqb_service.Service_error.to_string e)
  in
  (* Every [poison_every]-th submission is a poison query: an updating
     (hence exclusive, write-side) nested loop whose where-clause never
     matches, so it burns evaluation steps while holding the write gate
     without growing the store. Good queries are tiny pure reads. *)
  let n_good, poison_every, poison_n, deadline_ms =
    if !smoke then (40, 10, 600, 10) else (160, 16, 1500, 50)
  in
  let poison =
    Printf.sprintf
      {|for $i in 1 to %d for $j in 1 to %d where $j lt 0
        return insert {<z/>} into {doc("log")/log}|}
      poison_n poison_n
  in
  let good = {|count(doc("d")//a) + count(doc("d")//b)|} in
  let run governed =
    let svc =
      if governed then Svc.create ~domains:2 ~deadline_ms ()
      else Svc.create ~domains:2 ()
    in
    let sid = Svc.open_session svc in
    Svc.load_document svc sid ~uri:"d" "<r><a>1</a><a>2</a><b>x</b></r>";
    Svc.load_document svc sid ~uri:"log" "<log/>";
    ignore (expect_ok (Svc.query svc sid good));
    (* warm: plan cache *)
    let latencies = ref [] in
    let poison_futs = ref [] in
    for i = 1 to n_good do
      if i mod poison_every = 1 then
        poison_futs := Svc.submit svc sid poison :: !poison_futs;
      let r, ms = wall_ms (fun () -> Svc.query svc sid good) in
      ignore (expect_ok r);
      latencies := ms :: !latencies
    done;
    let timeouts, finished =
      List.fold_left
        (fun (t, f) fut ->
          match Svc.await fut with
          | Ok _ -> (t, f + 1)
          | Error { Xqb_service.Service_error.kind = Timeout; _ } ->
            (t + 1, f)
          | Error _ -> (t, f))
        (0, 0) !poison_futs
    in
    Svc.shutdown svc;
    let arr = Array.of_list !latencies in
    Array.sort compare arr;
    (arr, timeouts, finished, List.length !poison_futs)
  in
  let pct arr p =
    let n = Array.length arr in
    arr.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))
  in
  let off, _, off_done, off_total = run false in
  let on_, on_timeouts, on_done, on_total = run true in
  List.iter
    (fun (tag, arr) ->
      List.iter
        (fun p ->
          record
            ~name:(Printf.sprintf "e16-good-p%.0f-%s" p tag)
            ~n:n_good
            (pct arr p *. 1e6))
        [ 50.; 95.; 99. ])
    [ ("ungoverned", off); ("governed", on_) ];
  print_table
    [ "governance"; "good-query p50 ms"; "p95 ms"; "p99 ms"; "poison fate" ]
    [
      [ "off"; f2 (pct off 50.); f2 (pct off 95.); f2 (pct off 99.);
        Printf.sprintf "%d/%d ran to completion" off_done off_total ];
      [ Printf.sprintf "on (deadline %dms)" deadline_ms;
        f2 (pct on_ 50.); f2 (pct on_ 95.); f2 (pct on_ 99.);
        Printf.sprintf "%d/%d killed as timeouts" on_timeouts on_total ];
    ];
  Printf.printf
    "good-query p99 %.2fms -> %.2fms: the deadline bounds how long a poison\n\
     query can hold the write gate, so well-behaved reads stop inheriting\n\
     its runtime; store growth from killed poisons: none (transactional)\n"
    (pct off 99.) (pct on_ 99.);
  if on_done > 0 then
    Printf.printf
      "NOTE: %d poison(s) finished under the %dms budget — deepen the poison\n\
       loop if this host is fast enough to beat the deadline\n"
      on_done deadline_ms

(* ------------------------------------------------------------------ *)
(* E17 — observability: per-job tracing overhead on the E15 service   *)
(* mix, and validation of the emitted Chrome trace JSON.              *)
(* ------------------------------------------------------------------ *)

(* --trace-out PATH: dump the validated trace for artifact upload. *)
let trace_out = ref None

(* Set nonzero when E17's trace fails validation; the harness exits
   with it so CI catches a broken emitter. *)
let exit_code = ref 0

let e17 () =
  print_header
    "E17: observability — per-job tracing overhead and Chrome-trace validation";
  let module J = Xqb_obs.Json in
  let expect_ok = function
    | Ok r -> r
    | Error e -> failwith ("e17: " ^ Xqb_service.Service_error.to_string e)
  in
  let persons, n_mix = if !smoke then (40, 24) else (120, 96) in
  let xml =
    let store = Xqb_store.Store.create () in
    let doc =
      G.generate store
        { G.default with G.persons; closed_auctions = 2 * persons }
    in
    Core.Engine.serialize_with store (Xqb_xdm.Value.of_nodes [ doc ])
  in
  let reads =
    [|
      {|count(for $p in $auction//person
              for $t in $auction//closed_auction
              where $t/buyer/@person = $p/@id return $t)|};
      {|count($auction//person[contains(name, "a")])|};
      {|count($auction//item) + count($auction//closed_auction)|};
    |]
  in
  let update i =
    Printf.sprintf {|insert {element hit {%d}} into {doc("log")/log}|} i
  in
  (* the E15 mix: mostly pure reads, every 6th an exclusive update, so
     both scheduler sides and the snap pipeline are on the profile *)
  let mix =
    List.init n_mix (fun i ->
        if i mod 6 = 0 then update i else reads.(i mod Array.length reads))
  in
  let run tracing =
    let svc = Svc.create ~domains:2 ~tracing () in
    let sid = Svc.open_session svc in
    Svc.load_document svc sid ~uri:"auction" xml;
    Svc.load_document svc sid ~uri:"log" "<log/>";
    (* warm: plan cache + lazy store indexes *)
    Array.iter (fun q -> ignore (expect_ok (Svc.query svc sid q))) reads;
    let ms =
      wall_ms_median3 (fun () ->
          let futs = List.map (fun q -> Svc.submit svc sid q) mix in
          List.iter (fun f -> ignore (expect_ok (Svc.await f))) futs)
    in
    (* one final updating query so the freshest trace covers the whole
       pipeline, compile phases through snap application *)
    ignore (expect_ok (Svc.query svc sid (update 999)));
    let trace = Svc.trace_json svc None in
    Svc.shutdown svc;
    (ms, trace)
  in
  let off_ms, _ = run false in
  let on_ms, trace = run true in
  record ~name:"e17-mix-untraced" ~n:n_mix (off_ms *. 1e6);
  record ~name:"e17-mix-traced" ~n:n_mix (on_ms *. 1e6);
  let overhead = (on_ms /. off_ms -. 1.) *. 100. in
  print_table
    [ "tracing"; Printf.sprintf "ms / %d-query mix" n_mix; "overhead" ]
    [
      [ "off"; f2 off_ms; "-" ];
      [ "on (span per phase, per job)"; f2 on_ms;
        Printf.sprintf "%+.1f%%" overhead ];
    ];
  print_endline
    "(spans cost one clock read + one record each; the target envelope is <3%)";
  (* validate the recorded trace: strict JSON, and the span names must
     cover the pipeline end to end *)
  (match trace with
  | None ->
    print_endline "E17 FAIL: no trace recorded with tracing enabled";
    exit_code := 1
  | Some (jid, json) -> (
    match J.parse json with
    | Error msg ->
      Printf.printf "E17 FAIL: trace for job %d is not valid JSON: %s\n" jid msg;
      exit_code := 1
    | Ok v ->
      let events =
        match J.member "traceEvents" v with Some a -> J.to_list a | None -> []
      in
      let names =
        List.sort_uniq compare
          (List.filter_map
             (fun e -> Option.bind (J.member "name" e) J.to_string_opt)
             events)
      in
      let required =
        [ "queue.wait"; "lock.wait"; "compile"; "parse"; "eval"; "snap.apply" ]
      in
      let missing = List.filter (fun p -> not (List.mem p names)) required in
      Printf.printf
        "trace for job %d: %d events, strict-JSON valid; distinct phases: %s\n"
        jid (List.length events)
        (String.concat "," names);
      if missing <> [] then begin
        Printf.printf "E17 FAIL: trace is missing required phases: %s\n"
          (String.concat "," missing);
        exit_code := 1
      end;
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc json);
          Printf.printf "trace artifact written to %s (%d bytes)\n" path
            (String.length json))
        !trace_out))

(* ------------------------------------------------------------------ *)
(* E18 — document order on deep trees: versioned pre/post order keys  *)
(* + static ddo-elision vs the naive chain-walking comparator.         *)
(* ------------------------------------------------------------------ *)

let e18 () =
  print_header
    "E18: document order — pre/post order keys + ddo-elision vs naive chain walks";
  (* a depth-D chain of <sec> elements, each with a few <p> children
     and a single <mark/> at the bottom: every naive comparator call
     pays O(depth) parent steps, the keyed one two array reads *)
  let depth, kids = if !smoke then (120, 3) else (500, 4) in
  let deep_xml =
    let buf = Buffer.create (depth * 32) in
    Buffer.add_string buf "<doc>";
    for i = 1 to depth do
      Buffer.add_string buf "<sec>";
      for k = 1 to kids do
        Buffer.add_string buf (Printf.sprintf "<p>%d.%d</p>" i k)
      done
    done;
    Buffer.add_string buf "<mark/>";
    for _ = 1 to depth do
      Buffer.add_string buf "</sec>"
    done;
    Buffer.add_string buf "</doc>";
    Buffer.contents buf
  in
  let queries =
    [
      ("descendant //p", "slash-slash-p", {|count(doc("deep")//p)|});
      ("chain //sec/p", "sec-chain", {|count(doc("deep")//sec/p)|});
      ( "preceding:: from the deepest node",
        "preceding",
        {|count((doc("deep")//mark)[1]/preceding::p)|} );
      ( "positional predicate",
        "positional",
        {|count((doc("deep")//sec/p)[3])|} );
    ]
  in
  let mk keyed =
    let eng = Core.Engine.create () in
    if not keyed then Xqb_store.Store.set_order_keys (Core.Engine.store eng) false;
    ignore (Core.Engine.load_document eng ~uri:"deep" deep_xml);
    eng
  in
  (* baseline = the pre-keys configuration: order keys off in the
     store, elision off in the compiler; both sides share the engine,
     plan and name-index caches, so the delta is document order only *)
  let eng_naive = mk false in
  let eng_keyed = mk true in
  let rows =
    List.map
      (fun (label, tag, src) ->
        let time eng c =
          ignore (Core.Engine.run_compiled eng c);
          (* warm: name indexes, order keys *)
          wall_ms_median3 (fun () -> ignore (Core.Engine.run_compiled eng c))
        in
        let c_naive = Core.Engine.compile ~elide_ddo:false eng_naive src in
        let naive_ms = time eng_naive c_naive in
        let c_keyed = Core.Engine.compile eng_keyed src in
        let keyed_ms = time eng_keyed c_keyed in
        let same =
          Core.Engine.serialize eng_naive (Core.Engine.run_compiled eng_naive c_naive)
          = Core.Engine.serialize eng_keyed (Core.Engine.run_compiled eng_keyed c_keyed)
        in
        record ~name:(Printf.sprintf "e18-%s-naive" tag) ~n:1 (naive_ms *. 1e6);
        record ~name:(Printf.sprintf "e18-%s-keyed" tag) ~n:1 (keyed_ms *. 1e6);
        [
          label;
          f2 naive_ms;
          f2 keyed_ms;
          f1 (naive_ms /. keyed_ms) ^ "x";
          (if same then "ok" else "MISMATCH");
        ])
      queries
  in
  print_table
    [
      Printf.sprintf "query (depth %d, %d nodes)" depth
        (Xqb_store.Store.node_count (Core.Engine.store eng_keyed));
      "naive ms"; "keyed ms"; "speedup"; "results";
    ]
    rows;
  (* the elision must actually fire: EXPLAIN ANALYZE's counter *)
  let r, rendered =
    Xqb_algebra.Runner.analyze eng_keyed {|doc("deep")//p|}
  in
  Printf.printf "EXPLAIN ANALYZE elision counter: %d (key-table builds: %d)\n"
    r.Xqb_algebra.Runner.ddo_elided
    (Xqb_store.Store.order_key_builds (Core.Engine.store eng_keyed));
  if r.Xqb_algebra.Runner.ddo_elided <= 0 then begin
    Printf.printf "E18 FAIL: no ddo sorts elided on //p:\n%s\n" rendered;
    exit_code := 1
  end

(* ------------------------------------------------------------------ *)
(* E19 — effect observability: per-request provenance/∆-stat          *)
(* bookkeeping and the store mutation journal on an update-heavy mix; *)
(* replaying the journal must reproduce the store exactly.            *)
(* ------------------------------------------------------------------ *)

let e19 () =
  print_header
    "E19: effect observability — provenance bookkeeping + mutation journal";
  let rounds = if !smoke then 60 else 400 in
  (* steady-state update round: one insert, one rename, one delete per
     snap, so the store stays the same size while every request kind
     (and the whole provenance/journal path) is on the profile *)
  let update i =
    Printf.sprintf
      {|snap ordered { insert {element hit {%d}} into {doc("log")/log},
                       rename {(doc("log")/log/*)[1]} to {'seen'},
                       delete {(doc("log")/log/*)[last()]} }|}
      i
  in
  let read = {|count(doc("log")/log/*)|} in
  let run journal =
    let eng = Core.Engine.create () in
    let store = Core.Engine.store eng in
    if journal then Xqb_store.Store.journal_start store;
    ignore (Core.Engine.load_document eng ~uri:"log" "<log><hit>0</hit></log>");
    ignore (Core.Engine.run eng (update 0));
    ignore (Core.Engine.run eng read);
    (* warm: plan path, store caches *)
    let ms =
      wall_ms_median3 (fun () ->
          for i = 1 to rounds do
            ignore (Core.Engine.run eng (update i));
            if i mod 4 = 0 then ignore (Core.Engine.run eng read)
          done)
    in
    let requests =
      Core.Update.stats_requests
        (Core.Engine.context eng).Core.Context.delta_stats
    in
    (ms, requests, eng)
  in
  let off_ms, off_reqs, _ = run false in
  let on_ms, _, eng_on = run true in
  let store_on = Core.Engine.store eng_on in
  let entries = Xqb_store.Store.journal_length store_on in
  let consistent, replay_ms =
    let t0 = Xqb_obs.Clock.now_ns () in
    let ok = Xqb_store.Journal.consistent store_on in
    (ok, float_of_int (Xqb_obs.Clock.now_ns () - t0) /. 1e6)
  in
  record ~name:"e19-mix-journal-off" ~n:rounds (off_ms *. 1e6);
  record ~name:"e19-mix-journal-on" ~n:rounds (on_ms *. 1e6);
  record ~name:"e19-journal-replay" ~n:entries (replay_ms *. 1e6);
  print_table
    [ "journal"; Printf.sprintf "ms / %d-round mix" rounds; "requests";
      "entries"; "replay ≡ store" ]
    [
      [ "off"; f2 off_ms; string_of_int off_reqs; "-"; "-" ];
      [ "on"; f2 on_ms; "-"; string_of_int entries;
        (if consistent then Printf.sprintf "ok (%.2fms)" replay_ms
         else "DIVERGED") ];
    ];
  Printf.printf "journal-on overhead on the update mix: %+.1f%%\n"
    (100. *. (on_ms /. off_ms -. 1.));
  if not consistent then begin
    print_endline "E19 FAIL: journal replay diverged from the live store";
    exit_code := 1
  end;
  (* The always-on part — building the provenance record and folding a
     request into the ∆ statistics — must stay invisible next to the
     cost of evaluating and applying a request (<5% of the journal-off
     per-request budget). Microbenched straight, then compared. *)
  let k = if !smoke then 200_000 else 2_000_000 in
  let st = Core.Update.stats_create () in
  let prov =
    { Core.Update.src_line = 3; src_col = 12; snap_depth = 1; trace_id = None }
  in
  let prov_ns =
    let t0 = Xqb_obs.Clock.now_ns () in
    for _ = 1 to k do
      let r = Core.Update.make ~prov (Core.Update.Delete 3) in
      Core.Update.stats_record st [ Sys.opaque_identity r ]
    done;
    float_of_int (Xqb_obs.Clock.now_ns () - t0) /. float_of_int k
  in
  record ~name:"e19-prov-bookkeeping" ~n:k prov_ns;
  let per_req_ns = off_ms *. 1e6 /. float_of_int (max 1 off_reqs) in
  let share = 100. *. prov_ns /. per_req_ns in
  Printf.printf
    "provenance+stats bookkeeping: %.0fns/request = %.2f%% of the %.0fns\n\
     journal-off per-request budget (threshold 5%%)\n"
    prov_ns share per_req_ns;
  if share >= 5. then begin
    Printf.printf "E19 FAIL: bookkeeping share %.2f%% >= 5%%\n" share;
    exit_code := 1
  end

(* ------------------------------------------------------------------ *)
(* E20 — durability: update-mix throughput and p99 latency under the  *)
(* three WAL fsync policies, recovery-digest verification (the bench  *)
(* fails if a recovered store diverges from the one it persisted),    *)
(* and replica apply lag over the ship/ingest path.                   *)
(* ------------------------------------------------------------------ *)

let e20 () =
  print_header
    "E20: durability — WAL fsync policies, crash recovery, replica shipping";
  let module Svc = Xqb_service.Service in
  let module Catalog = Xqb_service.Catalog in
  let module Wal = Xqb_wal.Wal in
  let module Durable = Xqb_wal.Durable in
  let module Codec = Xqb_wal.Codec in
  let rounds = if !smoke then 40 else 300 in
  let tmp_tag = ref 0 in
  let fresh_dir () =
    incr tmp_tag;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xqbang-e20-%d-%d" (Unix.getpid ()) !tmp_tag)
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  let update i =
    Printf.sprintf
      {|snap ordered { insert {element hit {%d}} into {doc("log")/log},
                       rename {(doc("log")/log/*)[1]} to {'seen'},
                       delete {(doc("log")/log/*)[last()]} }|}
      i
  in
  let digest_of svc = Codec.store_digest_hex (Catalog.store (Svc.catalog svc)) in
  let run_mix svc s =
    (* per-query wall latencies, for throughput and p99 *)
    let lat = Array.make rounds 0. in
    let t0 = Unix.gettimeofday () in
    for i = 0 to rounds - 1 do
      let q0 = Unix.gettimeofday () in
      (match Svc.query svc s (update i) with
      | Ok _ -> ()
      | Error e ->
        Printf.printf "E20 FAIL: update rejected: %s\n"
          (Xqb_service.Service_error.to_string e);
        exit_code := 1);
      lat.(i) <- Unix.gettimeofday () -. q0
    done;
    let total_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    Array.sort compare lat;
    let p99 = lat.(min (rounds - 1) (rounds * 99 / 100)) *. 1e9 in
    (total_ms, p99)
  in
  let policies =
    [ ("off", None); ("never", Some Wal.Never);
      ("interval-5ms", Some (Wal.Interval_ms 5)); ("always", Some Wal.Always) ]
  in
  let results =
    List.map
      (fun (tag, policy) ->
        let dir = fresh_dir () in
        let durability =
          Option.map
            (fun fsync -> { (Durable.default_config ~dir) with Durable.fsync })
            policy
        in
        let svc = Svc.create ~domains:0 ?durability () in
        let s = Svc.open_session svc in
        Svc.load_document svc s ~uri:"log" "<log><hit>0</hit></log>";
        ignore (Svc.query svc s (update 0)) (* warm the plan path *);
        let total_ms, p99 = run_mix svc s in
        let digest = digest_of svc in
        Svc.shutdown svc;
        let recovered =
          match durability with
          | None -> "-"
          | Some cfg ->
            let svc' = Svc.create ~domains:0 ~durability:cfg () in
            let d = digest_of svc' in
            Svc.shutdown svc';
            rm_rf dir;
            if d = digest then "ok"
            else begin
              Printf.printf
                "E20 FAIL: %s: recovered digest %s <> committed %s\n" tag d
                digest;
              exit_code := 1;
              "DIVERGED"
            end
        in
        record ~name:(Printf.sprintf "e20-mix-fsync-%s" tag) ~n:rounds
          (total_ms *. 1e6);
        record ~name:(Printf.sprintf "e20-p99-fsync-%s" tag) ~n:1 p99;
        (tag, total_ms, p99, recovered))
      policies
  in
  (* replica shipping: a durable leader runs the same mix while every
     committed frame is pumped through ship/ingest into an in-process
     replica; lag is how long the replica needs to drain after the
     leader's last commit *)
  let dir = fresh_dir () in
  let leader =
    Svc.create ~domains:0
      ~durability:{ (Durable.default_config ~dir) with Durable.fsync = Wal.Never }
      ()
  in
  let replica = Svc.create ~domains:0 ~replica:true () in
  let s = Svc.open_session leader in
  Svc.load_document leader s ~uri:"log" "<log><hit>0</hit></log>";
  let lsn0, blob =
    match Svc.snapshot_blob leader with
    | Ok r -> r
    | Error e -> failwith ("E20: snapshot failed: " ^ e)
  in
  (match Svc.replica_bootstrap replica blob with
  | Ok _ -> ()
  | Error e -> failwith ("E20: bootstrap failed: " ^ e));
  for i = 0 to rounds - 1 do
    ignore (Svc.query leader s (update i))
  done;
  let frames = ref 0 in
  let drain_ms =
    let t0 = Unix.gettimeofday () in
    let from = ref (lsn0 + 1) in
    let continue = ref true in
    while !continue do
      match Svc.ship_frames leader ~from_lsn:!from ~max:512 with
      | Ok (_, "") -> continue := false
      | Ok (leader_lsn, batch) ->
        (match Svc.replica_ingest replica ~leader_lsn batch with
        | Ok _ -> ()
        | Error e -> failwith ("E20: ingest failed: " ^ e));
        let decoded, _ = Codec.scan batch in
        frames := !frames + List.length decoded;
        List.iter (fun (l, _, _) -> if l >= !from then from := l + 1) decoded
      | Error e -> failwith ("E20: ship failed: " ^ e)
    done;
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  let converged = digest_of leader = digest_of replica in
  if not converged then begin
    print_endline "E20 FAIL: replica diverged from the leader after shipping";
    exit_code := 1
  end;
  record ~name:"e20-replica-drain" ~n:!frames (drain_ms *. 1e6);
  Svc.shutdown replica;
  Svc.shutdown leader;
  rm_rf dir;
  print_table
    [ "fsync"; Printf.sprintf "ms / %d-update mix" rounds; "updates/s";
      "p99 µs"; "recovery" ]
    (List.map
       (fun (tag, total_ms, p99, recovered) ->
         [ tag; f2 total_ms;
           Printf.sprintf "%.0f" (float_of_int rounds /. (total_ms /. 1e3));
           f2 (p99 /. 1e3); recovered ])
       results);
  Printf.printf
    "replica drained %d frames in %.2fms (%.1fµs/frame), digests %s\n" !frames
    drain_ms
    (drain_ms *. 1e3 /. float_of_int (max 1 !frames))
    (if converged then "converged" else "DIVERGED")

(* ------------------------------------------------------------------ *)
(* E21 — footprint scheduling: concurrent writers over disjoint       *)
(* documents vs the single-writer purity gate, same durable store.    *)
(* ------------------------------------------------------------------ *)

let e21 () =
  print_header
    "E21: footprint scheduler — concurrent writers over disjoint documents";
  let module Svc = Xqb_service.Service in
  let module Catalog = Xqb_service.Catalog in
  let module Wal = Xqb_wal.Wal in
  let module Durable = Xqb_wal.Durable in
  let module Codec = Xqb_wal.Codec in
  let clients, rounds, scale =
    if !smoke then (4, 12, 0.02) else (10, 80, 0.05)
  in
  let tmp_tag = ref 0 in
  let fresh_dir () =
    incr tmp_tag;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xqbang-e21-%d-%d" (Unix.getpid ()) !tmp_tag)
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  let uri k = Printf.sprintf "x%d" k in
  let xml =
    (* one small XMark document per client, distinct seeds *)
    Array.init clients (fun k ->
        G.to_xml { (G.scaled scale) with G.seed = 1000 + k })
  in
  let write_q k i =
    Printf.sprintf
      {|insert {element hit {%d}} into {doc("%s")/site/regions}|} i (uri k)
  in
  let read_q k =
    Printf.sprintf {|count(doc("%s")/site/regions//item)|} (uri k)
  in
  (* Each client is a thread bound to its own document, alternating
     one update and one read per round, synchronously — so per-document
     apply order (and therefore the final state) is identical whichever
     way the scheduler interleaves clients. *)
  let run_mode footprints =
    let dir = fresh_dir () in
    let cfg = { (Durable.default_config ~dir) with Durable.fsync = Wal.Always } in
    let svc =
      Svc.create ~domains:clients ~durability:cfg
        ~footprint_scheduling:footprints ()
    in
    let sessions =
      Array.init clients (fun k ->
          let s = Svc.open_session svc in
          Svc.load_document svc s ~uri:(uri k) xml.(k);
          s)
    in
    let fail = ref None in
    let check = function
      | Ok _ -> ()
      | Error e -> fail := Some (Xqb_service.Service_error.to_string e)
    in
    let client k () =
      (* a write-heavy OLTP-ish mix: four updates, then one scan *)
      for i = 0 to rounds - 1 do
        for j = 0 to 3 do
          check (Svc.query svc sessions.(k) (write_q k ((4 * i) + j)))
        done;
        check (Svc.query svc sessions.(k) (read_q k))
      done
    in
    let t0 = Unix.gettimeofday () in
    let ts = Array.init clients (fun k -> Thread.create (client k) ()) in
    Array.iter Thread.join ts;
    let wall_s = Unix.gettimeofday () -. t0 in
    (match !fail with
    | Some e ->
      Printf.printf "E21 FAIL (%s): query rejected: %s\n"
        (if footprints then "footprint" else "baseline")
        e;
      exit_code := 1
    | None -> ());
    let docs =
      Array.to_list
        (Array.init clients (fun k ->
             match Svc.query svc sessions.(0) (Printf.sprintf {|doc("%s")|} (uri k)) with
             | Ok s -> s
             | Error e -> "ERR:" ^ Xqb_service.Service_error.to_string e))
    in
    let digest = Codec.store_digest_hex (Catalog.store (Svc.catalog svc)) in
    let concurrency = Svc.concurrency_json svc in
    Svc.shutdown svc;
    (* crash-recovery check: reopen the WAL dir, digests must agree *)
    let svc' = Svc.create ~domains:0 ~durability:cfg () in
    let recovered = Codec.store_digest_hex (Catalog.store (Svc.catalog svc')) in
    Svc.shutdown svc';
    rm_rf dir;
    if recovered <> digest then begin
      Printf.printf "E21 FAIL (%s): recovered digest diverged\n"
        (if footprints then "footprint" else "baseline");
      exit_code := 1
    end;
    let jobs = clients * rounds * 5 in
    (float_of_int jobs /. wall_s, docs, concurrency)
  in
  (* disk-latency noise dominates single runs: take the median of
     three full passes per mode (the workload is deterministic, so
     every pass must also produce identical documents) *)
  let median3 runs =
    let ts = List.sort compare (List.map (fun (t, _, _) -> t) runs) in
    List.nth ts 1
  in
  let base_runs = List.init 3 (fun _ -> run_mode false) in
  let fp_runs = List.init 3 (fun _ -> run_mode true) in
  let base_tput = median3 base_runs in
  let fp_tput = median3 fp_runs in
  let _, base_docs, _ = List.hd base_runs in
  let _, _, fp_conc = List.hd fp_runs in
  let fp_docs =
    match
      List.find_opt (fun (_, docs, _) -> docs <> base_docs) (base_runs @ fp_runs)
    with
    | Some (_, docs, _) -> docs
    | None -> base_docs
  in
  let ratio = fp_tput /. base_tput in
  if base_docs <> fp_docs then begin
    print_endline
      "E21 FAIL: footprint-scheduled store diverged from the single-writer store";
    exit_code := 1
  end;
  if ratio < 1.0 then begin
    Printf.printf
      "E21 FAIL: footprint scheduling slower than the single-writer gate (%.2fx)\n"
      ratio;
    exit_code := 1
  end;
  record ~name:"e21-tput-single-writer" ~n:(clients * rounds * 5)
    (base_tput *. 1e3);
  record ~name:"e21-tput-footprint" ~n:(clients * rounds * 5) (fp_tput *. 1e3);
  record ~name:"e21-speedup-x1000" ~n:1 (ratio *. 1e3);
  print_table
    [ "mode"; "jobs/s"; "speedup"; "digests" ]
    [ [ "single-writer gate"; f1 base_tput; "1.0x"; "converged" ];
      [ "footprint scheduler"; f1 fp_tput; f2 ratio ^ "x";
        (if base_docs = fp_docs then "converged" else "DIVERGED") ] ];
  Printf.printf
    "%d clients x %d rounds (4 inserts + 1 scan) over %d disjoint XMark \
     documents, fsync=always\nfootprint-mode gate gauges: %s\n"
    clients rounds clients fp_conc

(* ------------------------------------------------------------------ *)
(* E22 — health telemetry overhead: the E21 mixed load with the event  *)
(* log, rolling windows and monitor thread on vs off.                  *)
(* ------------------------------------------------------------------ *)

let e22 () =
  print_header
    "E22: health telemetry overhead — event log + windows + watchdog on the \
     E21 mixed load";
  let module Svc = Xqb_service.Service in
  let module Wal = Xqb_wal.Wal in
  let module Durable = Xqb_wal.Durable in
  let clients, rounds, scale =
    (* enough rounds that the measured section dwarfs scheduling noise *)
    if !smoke then (4, 12, 0.02) else (8, 240, 0.05)
  in
  let tmp_tag = ref 0 in
  let fresh_dir () =
    incr tmp_tag;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xqbang-e22-%d-%d" (Unix.getpid ()) !tmp_tag)
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  let uri k = Printf.sprintf "x%d" k in
  let xml =
    Array.init clients (fun k ->
        G.to_xml { (G.scaled scale) with G.seed = 2200 + k })
  in
  let write_q k i =
    Printf.sprintf
      {|insert {element hit {%d}} into {doc("%s")/site/regions}|} i (uri k)
  in
  let read_q k =
    Printf.sprintf {|count(doc("%s")/site/regions//item)|} (uri k)
  in
  (* fsync=never so the measurement exercises the telemetry hot path
     (per-query window samples, per-commit events), not the disk *)
  let run_mode telemetry =
    let dir = fresh_dir () in
    let cfg =
      { (Durable.default_config ~dir) with Durable.fsync = Wal.Never }
    in
    let svc = Svc.create ~domains:clients ~durability:cfg ~telemetry () in
    let sessions =
      Array.init clients (fun k ->
          let s = Svc.open_session svc in
          Svc.load_document svc s ~uri:(uri k) xml.(k);
          s)
    in
    let fail = ref None in
    let check = function
      | Ok _ -> ()
      | Error e -> fail := Some (Xqb_service.Service_error.to_string e)
    in
    let client k () =
      for i = 0 to rounds - 1 do
        for j = 0 to 3 do
          check (Svc.query svc sessions.(k) (write_q k ((4 * i) + j)))
        done;
        check (Svc.query svc sessions.(k) (read_q k))
      done
    in
    let t0 = Unix.gettimeofday () in
    let ts = Array.init clients (fun k -> Thread.create (client k) ()) in
    Array.iter Thread.join ts;
    let wall_s = Unix.gettimeofday () -. t0 in
    (match !fail with
    | Some e ->
      Printf.printf "E22 FAIL (telemetry %b): query rejected: %s\n" telemetry e;
      exit_code := 1
    | None -> ());
    (* sanity: the instrumented run actually measured something *)
    if telemetry then begin
      let health = Svc.health_status svc in
      if health <> "ok" then
        Printf.printf "E22 note: health %s during the run\n" health;
      if Xqb_obs.Events.total (Svc.events svc) = 0 then begin
        print_endline "E22 FAIL: telemetry on but no events were logged";
        exit_code := 1
      end
    end;
    Svc.shutdown svc;
    rm_rf dir;
    float_of_int (clients * rounds * 5) /. wall_s
  in
  (* one discarded run warms the page cache and the allocator, then
     interleave the modes and take medians so drift (cpu frequency,
     background load) hits both sides alike *)
  ignore (run_mode true);
  let median3 ts = List.nth (List.sort compare ts) 1 in
  let pairs = List.init 3 (fun _ -> (run_mode false, run_mode true)) in
  let off_tput = median3 (List.map fst pairs) in
  let on_tput = median3 (List.map snd pairs) in
  let overhead_pct = (1. -. (on_tput /. off_tput)) *. 100. in
  (* the 3% budget holds only when the measured section dwarfs the
     fixed boot costs (sink open, monitor spawn, flight check) —
     smoke runs are sanity-only: queries succeed, events logged *)
  if (not !smoke) && overhead_pct > 3. then begin
    Printf.printf "E22 FAIL: telemetry costs %.1f%% throughput (budget 3%%)\n"
      overhead_pct;
    exit_code := 1
  end;
  record ~name:"e22-tput-telemetry-off" ~n:(clients * rounds * 5)
    (off_tput *. 1e3);
  record ~name:"e22-tput-telemetry-on" ~n:(clients * rounds * 5)
    (on_tput *. 1e3);
  record ~name:"e22-overhead-pct-x1000" ~n:1 (overhead_pct *. 1e3);
  print_table
    [ "telemetry"; "jobs/s"; "overhead" ]
    [ [ "off"; f1 off_tput; "-" ];
      [ "on (events+windows+watchdog)"; f1 on_tput;
        Printf.sprintf "%.1f%%" overhead_pct ] ];
  Printf.printf
    "%d clients x %d rounds (4 inserts + 1 scan), fsync=never; telemetry = \
     event log + rolling windows + SLO burn + monitor thread\n"
    clients rounds

(* E23 — the service edge at scale: the effects-based fiber event    *)
(* loop vs the legacy thread-per-connection loop, N concurrent       *)
(* pipelined connections (connect storm + steady state).             *)
(* ------------------------------------------------------------------ *)

let e23 () =
  print_header
    "E23: service edge at scale — fiber event loop vs thread-per-connection";
  let module Svc = Xqb_service.Service in
  let module Edge = Xqb_service.Edge in
  let nconns, rounds, pipeline = if !smoke then (200, 3, 8) else (1000, 10, 8) in
  let nthreads = 8 in
  let per = nconns / nthreads in
  let nconns = per * nthreads in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.
    else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float n)) - 1))
  in
  let run_mode mode =
    let svc = Svc.create ~domains:2 () in
    let edge =
      Edge.start svc
        { Edge.default_config with Edge.mode; backlog = 512 }
    in
    let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Edge.port edge) in
    let fail = ref None in
    let failing e = if !fail = None then fail := Some e in
    (* fd for writes (controls segmentation), channel for line reads *)
    let conns = Array.make nconns None in
    (* connect storm: every client thread opens its slice as fast as
       it can and completes the OPEN handshake *)
    let storm k () =
      try
        for i = k * per to ((k + 1) * per) - 1 do
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd addr;
          Unix.setsockopt fd Unix.TCP_NODELAY true;
          ignore (Unix.write_substring fd "OPEN\n" 0 5);
          let ic = Unix.in_channel_of_descr fd in
          let sid = Scanf.sscanf (input_line ic) "OK %d" (fun n -> n) in
          conns.(i) <- Some (fd, ic, sid)
        done
      with e -> failing (Printexc.to_string e)
    in
    let t0 = Unix.gettimeofday () in
    Array.iter Thread.join
      (Array.init nthreads (fun k -> Thread.create (storm k) ()));
    let storm_s = Unix.gettimeofday () -. t0 in
    (* steady state: each connection repeatedly sends [pipeline]
       requests in one segment and reads the replies in order; all
       [nconns] connections stay open throughout, so the edge
       multiplexes the full set while only a few are active *)
    let lats = Array.make nthreads [] in
    let client k () =
      try
        for _ = 1 to rounds do
          for i = k * per to ((k + 1) * per) - 1 do
            match conns.(i) with
            | None -> ()
            | Some (fd, ic, sid) ->
              let b = Buffer.create 256 in
              for _ = 1 to pipeline do
                Buffer.add_string b (Printf.sprintf "QUERY %d 1+1\n" sid)
              done;
              let s = Buffer.contents b in
              let bt0 = Unix.gettimeofday () in
              ignore (Unix.write_substring fd s 0 (String.length s));
              for _ = 1 to pipeline do
                let l = input_line ic in
                if l <> "OK 2" then failing (Printf.sprintf "bad reply %S" l)
              done;
              lats.(k) <-
                ((Unix.gettimeofday () -. bt0) *. 1e6) :: lats.(k)
          done
        done
      with e -> failing (Printexc.to_string e)
    in
    let t0 = Unix.gettimeofday () in
    Array.iter Thread.join
      (Array.init nthreads (fun k -> Thread.create (client k) ()));
    let steady_s = Unix.gettimeofday () -. t0 in
    let peak = (Edge.gauges edge).Svc.eg_peak in
    Array.iter
      (function
        | Some (fd, _, _) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ())
      conns;
    Edge.stop edge;
    Svc.shutdown svc;
    (match !fail with
    | Some e ->
      Printf.printf "E23 FAIL (%s edge): %s\n" (Edge.mode_to_string mode) e;
      exit_code := 1
    | None -> ());
    let all = Array.of_list (List.concat (Array.to_list lats)) in
    Array.sort compare all;
    let tput = float_of_int (nconns * rounds * pipeline) /. steady_s in
    (storm_s, tput, percentile all 50., percentile all 99., peak)
  in
  let fs, ft, fp50, fp99, fpeak = run_mode Edge.Fiber in
  let ts, tt, tp50, tp99, tpeak = run_mode Edge.Threads in
  if (not !smoke) && fpeak < nconns then begin
    Printf.printf "E23 FAIL: fiber edge held %d concurrent connections (< %d)\n"
      fpeak nconns;
    exit_code := 1
  end;
  if ft < tt then begin
    Printf.printf
      "E23 FAIL: fiber edge slower than thread edge (%.0f vs %.0f req/s)\n" ft
      tt;
    exit_code := 1
  end;
  record ~name:"e23-fiber-tput" ~n:(nconns * rounds * pipeline) (ft *. 1e3);
  record ~name:"e23-threads-tput" ~n:(nconns * rounds * pipeline) (tt *. 1e3);
  record ~name:"e23-fiber-p50-us" ~n:1 (fp50 *. 1e3);
  record ~name:"e23-fiber-p99-us" ~n:1 (fp99 *. 1e3);
  record ~name:"e23-threads-p50-us" ~n:1 (tp50 *. 1e3);
  record ~name:"e23-threads-p99-us" ~n:1 (tp99 *. 1e3);
  record ~name:"e23-fiber-storm-ms" ~n:nconns (fs *. 1e6);
  record ~name:"e23-threads-storm-ms" ~n:nconns (ts *. 1e6);
  print_table
    [ "edge"; "conns"; "storm ms"; "req/s"; "batch p50 us"; "batch p99 us";
      "peak open" ]
    [ [ "fiber"; string_of_int nconns; f1 (fs *. 1e3); f1 ft; f1 fp50;
        f1 fp99; string_of_int fpeak ];
      [ "threads"; string_of_int nconns; f1 (ts *. 1e3); f1 tt; f1 tp50;
        f1 tp99; string_of_int tpeak ] ];
  Printf.printf
    "%d connections x %d rounds x %d pipelined QUERYs, %d client threads, \
     backlog 512; latency = per-batch round trip\n"
    nconns rounds pipeline nthreads

(* E24 — continuous profiling: the 97 Hz SIGPROF sampler + GC        *)
(* telemetry on the E21 mixed load, off vs on. The profiler is       *)
(* "always available", so its cost IS the product: the 3% budget is  *)
(* enforced, and the run must actually attribute samples (run phase) *)
(* and observe GC pauses, or low overhead would be vacuous.          *)
(* ------------------------------------------------------------------ *)

(* --profile-folded PATH: dump the aggregated folded stacks of the
   profiled runs for artifact upload (flamegraph.pl / speedscope). *)
let profile_folded_out = ref None

let e24 () =
  print_header
    "E24: continuous profiling — 97 Hz sampler + GC telemetry on the E21 \
     mixed load";
  let module Svc = Xqb_service.Service in
  let module Profile = Xqb_obs.Profile in
  let module Gc_tel = Xqb_obs.Gc_tel in
  let clients, rounds, scale =
    (* even smoke needs enough CPU time per run that a 97 Hz
       CPU-time sampler lands a statistically safe number of ticks —
       a 10ms run would see one tick or none *)
    if !smoke then (4, 150, 0.02) else (8, 240, 0.05)
  in
  let uri k = Printf.sprintf "x%d" k in
  let xml =
    Array.init clients (fun k ->
        G.to_xml { (G.scaled scale) with G.seed = 2400 + k })
  in
  let write_q k i =
    Printf.sprintf
      {|insert {element hit {%d}} into {doc("%s")/site/regions}|} i (uri k)
  in
  let read_q k =
    Printf.sprintf {|count(doc("%s")/site/regions//item)|} (uri k)
  in
  (* in-memory service (no WAL): the measured section is pure
     query CPU, the worst case for a CPU-time sampler *)
  let run_mode profiled =
    let svc = Svc.create ~domains:clients () in
    let sessions =
      Array.init clients (fun k ->
          let s = Svc.open_session svc in
          Svc.load_document svc s ~uri:(uri k) xml.(k);
          s)
    in
    let fail = ref None in
    let check = function
      | Ok _ -> ()
      | Error e -> fail := Some (Xqb_service.Service_error.to_string e)
    in
    let client k () =
      for i = 0 to rounds - 1 do
        for j = 0 to 3 do
          check (Svc.query svc sessions.(k) (write_q k ((4 * i) + j)))
        done;
        check (Svc.query svc sessions.(k) (read_q k))
      done
    in
    if profiled then ignore (Profile.start ~hz:97 ());
    let t0 = Unix.gettimeofday () in
    let ts = Array.init clients (fun k -> Thread.create (client k) ()) in
    Array.iter Thread.join ts;
    let wall_s = Unix.gettimeofday () -. t0 in
    if profiled then ignore (Profile.stop ());
    (match !fail with
    | Some e ->
      Printf.printf "E24 FAIL (profiler %b): query rejected: %s\n" profiled e;
      exit_code := 1
    | None -> ());
    Svc.shutdown svc;
    float_of_int (clients * rounds * 5) /. wall_s
  in
  Profile.reset ();
  (* warm both sides once, interleave off/on pairs, take medians so
     drift (cpu frequency, background load) hits both alike — the
     e22 protocol *)
  ignore (run_mode true);
  let median3 ts = List.nth (List.sort compare ts) 1 in
  let pairs = List.init 3 (fun _ -> (run_mode false, run_mode true)) in
  let off_tput = median3 (List.map fst pairs) in
  let on_tput = median3 (List.map snd pairs) in
  let overhead_pct = (1. -. (on_tput /. off_tput)) *. 100. in
  (* low overhead is only meaningful if the profiler measured the
     work: samples must land in the query phases and the GC
     telemetry must have seen real pauses *)
  let run_samples =
    Option.value ~default:0 (List.assoc_opt "run" (Profile.phase_counts ()))
  in
  let total_samples = Profile.samples () in
  let gc_pauses = Gc_tel.pauses_total () in
  if total_samples = 0 || run_samples = 0 then begin
    Printf.printf
      "E24 FAIL: profiler on but no run-phase samples (%d total, %d run)\n"
      total_samples run_samples;
    exit_code := 1
  end;
  if gc_pauses = 0 then begin
    print_endline
      "E24 FAIL: GC pause histogram is empty after an allocation-heavy run";
    exit_code := 1
  end;
  (match !profile_folded_out with
  | Some path ->
    Profile.write_folded path;
    Printf.printf "folded-stack artifact written to %s (%d samples)\n" path
      total_samples
  | None -> ());
  Profile.reset ();
  if (not !smoke) && overhead_pct > 3. then begin
    Printf.printf "E24 FAIL: profiling costs %.1f%% throughput (budget 3%%)\n"
      overhead_pct;
    exit_code := 1
  end;
  record ~name:"e24-tput-profiler-off" ~n:(clients * rounds * 5)
    (off_tput *. 1e3);
  record ~name:"e24-tput-profiler-on" ~n:(clients * rounds * 5)
    (on_tput *. 1e3);
  record ~name:"e24-overhead-pct-x1000" ~n:1 (overhead_pct *. 1e3);
  record ~name:"e24-run-phase-samples" ~n:1 (float_of_int run_samples);
  record ~name:"e24-gc-pauses" ~n:1 (float_of_int gc_pauses);
  print_table
    [ "profiler"; "jobs/s"; "overhead" ]
    [ [ "off"; f1 off_tput; "-" ];
      [ "on (97 Hz + gc telemetry)"; f1 on_tput;
        Printf.sprintf "%.1f%%" overhead_pct ] ];
  Printf.printf
    "%d clients x %d rounds (4 inserts + 1 scan), in-memory; %d samples \
     (%d in run phase), %d gc pauses observed\n"
    clients rounds total_samples run_samples gc_pauses

let experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e15", e15); ("e16", e16); ("e17", e17); ("e18", e18);
    ("e19", e19); ("e20", e20); ("e21", e21); ("e22", e22); ("e23", e23);
    ("e24", e24) ]

let () =
  (* args: experiment names, plus `--json PATH` to dump every
     recorded measurement as machine-readable JSON *)
  let rec parse names json = function
    | [] -> (List.rev names, json)
    | "--json" :: path :: rest -> parse names (Some path) rest
    | [ "--json" ] ->
      prerr_endline "--json requires a path";
      exit 2
    | "--trace-out" :: path :: rest ->
      trace_out := Some path;
      parse names json rest
    | [ "--trace-out" ] ->
      prerr_endline "--trace-out requires a path";
      exit 2
    | "--profile-folded" :: path :: rest ->
      profile_folded_out := Some path;
      parse names json rest
    | [ "--profile-folded" ] ->
      prerr_endline "--profile-folded requires a path";
      exit 2
    | "--smoke" :: rest ->
      smoke := true;
      parse names json rest
    | a :: rest -> parse (String.lowercase_ascii a :: names) json rest
  in
  let names, json = parse [] None (List.tl (Array.to_list Sys.argv)) in
  let requested = if names = [] then List.map fst experiments else names in
  print_endline "XQuery! reproduction benches (see EXPERIMENTS.md)";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None -> Printf.eprintf "unknown experiment %s\n" name)
    requested;
  Option.iter write_json json;
  if !exit_code <> 0 then exit !exit_code
