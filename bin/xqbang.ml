(* xqbang — command-line front end for the XQuery! engine.

   Examples:
     xqbang run query.xq --doc auction=data.xml
     xqbang run -e 'snap insert {<a/>} into {doc("d")}' --doc d=doc.xml
     xqbang explain query.xq --doc auction=data.xml
     xqbang xmark --factor 0.1 > auction.xml
*)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --doc name=path bindings: each document is loaded, registered for
   fn:doc("name") and bound to $name. *)
let setup_engine docs vars seed =
  let eng = Core.Engine.create ~seed () in
  Core.Engine.set_doc_resolver eng read_file;
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | None -> failwith (Printf.sprintf "--doc expects name=path, got %S" spec)
      | Some i ->
        let name = String.sub spec 0 i in
        let path = String.sub spec (i + 1) (String.length spec - i - 1) in
        let node = Core.Engine.load_document eng ~uri:name (read_file path) in
        Core.Engine.bind_node eng name node)
    docs;
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | None -> failwith (Printf.sprintf "--var expects name=value, got %S" spec)
      | Some i ->
        let name = String.sub spec 0 i in
        let v = String.sub spec (i + 1) (String.length spec - i - 1) in
        Core.Engine.bind eng name (Xqb_xdm.Value.of_string v))
    vars;
  eng

let get_source query expr =
  match expr, query with
  | Some e, _ -> e
  | None, Some path -> read_file path
  | None, None -> failwith "provide a query file or -e EXPR"

let mode_of_string = function
  | "ordered" -> Core.Core_ast.Snap_ordered
  | "nondeterministic" | "nondet" -> Core.Core_ast.Snap_nondeterministic
  | "conflict" -> Core.Core_ast.Snap_conflict
  | s -> failwith (Printf.sprintf "unknown snap mode %S" s)

open Cmdliner

let docs_arg =
  Arg.(value & opt_all string [] & info [ "doc" ] ~docv:"NAME=PATH"
         ~doc:"Load an XML document, bind it to \\$NAME and register it for fn:doc(\"NAME\").")

let vars_arg =
  Arg.(value & opt_all string [] & info [ "var" ] ~docv:"NAME=VALUE"
         ~doc:"Bind a string value to \\$NAME.")

let expr_arg =
  Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"EXPR"
         ~doc:"Inline query text instead of a query file.")

let query_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY.xq")

let mode_arg =
  Arg.(value & opt string "ordered" & info [ "snap-mode" ] ~docv:"MODE"
         ~doc:"Semantics of the implicit top-level snap: ordered, nondeterministic or conflict.")

let seed_arg =
  Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"N"
         ~doc:"Seed for the nondeterministic update-application order.")

let optimize_arg =
  Arg.(value & flag & info [ "O"; "optimize" ]
         ~doc:"Run through the algebraic compiler (join/group-by unnesting) instead of direct evaluation.")

let trace_arg =
  Arg.(value & flag & info [ "trace-updates" ]
         ~doc:"Print each pending-update list (Delta) to stderr as its snap scope closes, before application.")

let report_errors f =
  try f () with
  | Core.Engine.Compile_error m -> `Error (false, m)
  | Xqb_governor.Budget.Budget_exceeded r ->
    `Error (false, Xqb_governor.Budget.reason_to_string r)
  | Xqb_xdm.Errors.Dynamic_error (code, m) ->
    `Error (false, Printf.sprintf "dynamic error [%s] %s" code m)
  | Core.Conflict.Conflict_error c ->
    `Error (false, "update conflict: " ^ Core.Conflict.to_string c)
  | Xqb_store.Store.Update_error m -> `Error (false, "update error: " ^ m)
  | Failure m -> `Error (false, m)
  | Sys_error m -> `Error (false, m)

(* --show-delta: render each snap's ∆ before application with stable
   node paths, source locations and snap depths (store-aware, unlike
   the raw-id --trace-updates). *)
let enable_show_delta eng =
  (Core.Engine.context eng).Core.Context.on_apply <-
    Some
      (fun delta mode ->
        let store = Core.Engine.store eng in
        Printf.eprintf "snap(%s) Δ %d request(s):\n%s%!"
          (Core.Apply.mode_to_string mode)
          (List.length delta)
          (match delta with
          | [] -> ""
          | _ -> Core.Update.render_delta store delta ^ "\n"))

let enable_trace eng =
  (Core.Engine.context eng).Core.Context.on_apply <-
    Some
      (fun delta mode ->
        Printf.eprintf "snap(%s) applying %d request(s): %s\n%!"
          (Core.Apply.mode_to_string mode)
          (List.length delta)
          (Core.Update.delta_to_string delta))

(* Budget from the shared CLI flags; None when ungoverned. The
   deadline is anchored to the monotonic clock, same as the service
   path — a wall-clock step must not expire (or resurrect) a query. *)
let make_budget deadline_ms fuel =
  match (deadline_ms, fuel) with
  | None, None -> None
  | _ ->
    let deadline_ns =
      Option.map
        (fun ms -> Xqb_obs.Clock.now_ns () + (ms * 1_000_000))
        deadline_ms
    in
    Some (Xqb_governor.Budget.create ?deadline_ns ?fuel ())

let deadline_arg =
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Wall-clock budget per query; past it the query fails with a timeout error.")

let fuel_arg =
  Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
         ~doc:"Evaluation-step budget per query; past it the query fails with a timeout error.")

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let run_cmd =
  let run query expr docs vars mode seed optimize trace quiet deadline_ms fuel
      explain_analyze trace_out show_delta explain_conflicts profile_out =
    report_errors (fun () ->
        let eng = setup_engine docs vars seed in
        if trace then enable_trace eng;
        if show_delta then enable_show_delta eng;
        let src = get_source query expr in
        let mode = mode_of_string mode in
        (* --profile PATH: sample the whole run with the continuous
           profiler and write the folded-stack aggregate (flamegraph
           collapsed format) on exit *)
        if profile_out <> None then ignore (Xqb_obs.Profile.start ());
        (* --trace PATH: record the whole run (compile phases,
           evaluation, snap application) and write Chrome trace JSON *)
        let tracer =
          match trace_out with
          | Some _ -> Some (Xqb_obs.Trace.create ())
          | None -> None
        in
        (* Conflicts are reported with store-aware node paths; with
           --explain-conflicts both offending requests are also shown
           with their provenance. *)
        let on_conflict (c : Core.Conflict.conflict) =
          let store = Core.Engine.store eng in
          if explain_conflicts then
            Printf.eprintf "conflict %s:\n  first:  %s\n  second: %s\n%!"
              (Core.Conflict.rule_id c.Core.Conflict.rule)
              (Core.Update.render_request store c.Core.Conflict.first)
              (Core.Update.render_request store c.Core.Conflict.second);
          failwith ("update conflict: " ^ Core.Conflict.explain ~store c)
        in
        (try
        Core.Engine.with_tracer eng tracer (fun () ->
            let value =
              Core.Engine.with_budget eng (make_budget deadline_ms fuel)
                (fun () ->
                  if explain_analyze then begin
                    (* EXPLAIN ANALYZE: run through the algebraic
                       compiler with per-operator profiling; the
                       annotated tree precedes the result *)
                    let r, rendered = Xqb_algebra.Runner.analyze ~mode eng src in
                    print_endline rendered;
                    r.Xqb_algebra.Runner.value
                  end
                  else begin
                    let compiled = Core.Engine.compile eng src in
                    if not quiet then
                      List.iter
                        (fun w -> Printf.eprintf "warning: %s\n%!" w)
                        compiled.Core.Engine.type_warnings;
                    if optimize then
                      (Xqb_algebra.Runner.run ~mode eng src)
                        .Xqb_algebra.Runner.value
                    else Core.Engine.run_compiled ~mode eng compiled
                  end)
            in
            print_endline (Core.Engine.serialize eng value))
        with Core.Conflict.Conflict_error c -> on_conflict c);
        (match (trace_out, tracer) with
        | Some path, Some tr ->
          write_file path (Xqb_obs.Trace.to_chrome_json tr);
          Printf.eprintf "trace written to %s (%d spans)\n%!" path
            (Xqb_obs.Trace.span_count tr)
        | _ -> ());
        (match profile_out with
        | Some path ->
          ignore (Xqb_obs.Profile.stop ());
          Xqb_obs.Profile.write_folded path;
          Printf.eprintf "profile written to %s (%d samples)\n%!" path
            (Xqb_obs.Profile.samples ())
        | None -> ());
        `Ok ())
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ]
           ~doc:"Suppress static-typing warnings.")
  in
  let explain_analyze_arg =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"EXPLAIN ANALYZE: execute through the algebraic compiler and print the plan tree annotated with per-operator tuple counts and timings before the result.")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH"
           ~doc:"Record a span trace of the run (compile phases, evaluation, snap application) and write Chrome trace-event JSON to PATH (loadable in chrome://tracing or Perfetto).")
  in
  let show_delta_arg =
    Arg.(value & flag & info [ "show-delta" ]
           ~doc:"Render each pending-update list (Delta) to stderr before its snap applies it: one line per request with stable node paths, the source location of the effecting expression and its snap depth.")
  in
  let explain_conflicts_arg =
    Arg.(value & flag & info [ "explain-conflicts" ]
           ~doc:"On an update conflict, also print both offending requests with their provenance (rule id, node paths, source locations).")
  in
  let profile_out_arg =
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"PATH"
           ~doc:"Sample the run with the continuous CPU profiler (SIGPROF, 97 Hz) and write the aggregated folded stacks to PATH — feed it to flamegraph.pl or speedscope.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Evaluate an XQuery! program")
    Term.(ret (const run $ query_arg $ expr_arg $ docs_arg $ vars_arg $ mode_arg
               $ seed_arg $ optimize_arg $ trace_arg $ quiet_arg $ deadline_arg
               $ fuel_arg $ explain_analyze_arg $ trace_out_arg $ show_delta_arg
               $ explain_conflicts_arg $ profile_out_arg))

let explain_cmd =
  let explain query expr docs vars mode seed =
    try
      let eng = setup_engine docs vars seed in
      let src = get_source query expr in
      let mode = mode_of_string mode in
      print_endline (Xqb_algebra.Runner.explain ~mode eng src);
      `Ok ()
    with
    | Core.Engine.Compile_error m -> `Error (false, m)
    | Failure m -> `Error (false, m)
  in
  Cmd.v (Cmd.info "explain" ~doc:"Print the optimized query plan")
    Term.(ret (const explain $ query_arg $ expr_arg $ docs_arg $ vars_arg
               $ mode_arg $ seed_arg))

let xmark_cmd =
  let gen factor seed =
    let cfg = { (Xqb_xmark.Generator.scaled factor) with seed } in
    print_endline (Xqb_xmark.Generator.to_xml cfg)
  in
  let factor_arg =
    Arg.(value & opt float 0.1 & info [ "factor"; "f" ] ~docv:"F"
           ~doc:"Scale factor (1.0 ~ 255 persons).")
  in
  let gseed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  Cmd.v (Cmd.info "xmark" ~doc:"Generate an XMark-style auction document")
    Term.(const gen $ factor_arg $ gseed_arg)

let fmt_cmd =
  let fmt query expr =
    report_errors (fun () ->
        let src = get_source query expr in
        (match Xqb_syntax.Parser.parse_prog src with
        | prog -> print_endline (Xqb_syntax.Pretty.prog_to_string prog)
        | exception Xqb_syntax.Parser.Error (l, c, m) ->
          failwith (Printf.sprintf "parse error %d:%d: %s" l c m)
        | exception Xqb_syntax.Lexer.Error (l, c, m) ->
          failwith (Printf.sprintf "lex error %d:%d: %s" l c m));
        `Ok ())
  in
  Cmd.v
    (Cmd.info "fmt" ~doc:"Parse a program and reprint it canonically")
    Term.(ret (const fmt $ query_arg $ expr_arg))

(* A line-oriented REPL. Each line is a full query unless it ends with
   '\\'; ':'-prefixed lines are REPL commands. Engine state (loaded
   documents, declared variables and functions, applied updates)
   persists across inputs. *)
let repl_cmd =
  let repl docs vars mode seed trace =
    report_errors (fun () ->
        let eng = setup_engine docs vars seed in
        if trace then enable_trace eng;
        let mode = ref (mode_of_string mode) in
        let prompt () =
          print_string "xq! ";
          flush stdout
        in
        let rec read_input acc =
          match input_line stdin with
          | line ->
            let n = String.length line in
            if n > 0 && line.[n - 1] = '\\' then begin
              print_string "  > ";
              flush stdout;
              read_input (acc ^ String.sub line 0 (n - 1) ^ "\n")
            end
            else Some (acc ^ line)
          | exception End_of_file -> None
        in
        let handle_command line =
          match String.split_on_char ' ' (String.trim line) with
          | [ ":quit" ] | [ ":q" ] -> `Quit
          | [ ":mode"; m ] ->
            mode := mode_of_string m;
            Printf.printf "snap mode: %s\n" m;
            `Continue
          | [ ":load"; spec ] -> (
            match String.index_opt spec '=' with
            | Some i ->
              let name = String.sub spec 0 i in
              let path = String.sub spec (i + 1) (String.length spec - i - 1) in
              let node = Core.Engine.load_document eng ~uri:name (read_file path) in
              Core.Engine.bind_node eng name node;
              Printf.printf "loaded %s as $%s\n" path name;
              `Continue
            | None ->
              print_endline ":load expects name=path";
              `Continue)
          | ":explain" :: rest when rest <> [] ->
            let q = String.concat " " rest in
            (try print_endline (Xqb_algebra.Runner.explain ~mode:!mode eng q)
             with e -> print_endline (Core.Engine.parse_error_message e));
            `Continue
          | [ ":help" ] | [ ":h" ] ->
            print_endline
              "commands: :quit | :mode ordered|nondet|conflict | :load name=path | :explain QUERY\n\
               end a line with '\\' to continue it; anything else runs as a query";
            `Continue
          | _ ->
            print_endline "unknown command (:help for help)";
            `Continue
        in
        print_endline "XQuery! repl — :help for commands";
        let rec loop () =
          prompt ();
          match read_input "" with
          | None -> ()
          | Some line when String.trim line = "" -> loop ()
          | Some line when String.length (String.trim line) > 0 && (String.trim line).[0] = ':'
            -> (
            match handle_command line with `Quit -> () | `Continue -> loop ())
          | Some line ->
            (try
               let v = Core.Engine.run ~mode:!mode eng line in
               print_endline (Core.Engine.serialize eng v)
             with
            | Core.Engine.Compile_error m -> print_endline m
            | Xqb_xdm.Errors.Dynamic_error (code, m) ->
              Printf.printf "dynamic error [%s] %s\n" code m
            | Core.Conflict.Conflict_error c ->
              Printf.printf "update conflict: %s\n"
                (Core.Conflict.explain ~store:(Core.Engine.store eng) c)
            | Xqb_store.Store.Update_error m -> Printf.printf "update error: %s\n" m);
            loop ()
        in
        loop ();
        `Ok ())
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive session (state persists across queries)")
    Term.(ret (const repl $ docs_arg $ vars_arg $ mode_arg $ seed_arg $ trace_arg))

(* The query service (docs/SERVICE.md): sessions over a shared
   document catalog, a prepared-plan cache and the purity-gated
   parallel scheduler, speaking the newline-delimited protocol of
   [Xqb_service.Protocol] on stdin or a TCP socket. *)
let serve_cmd =
  let module Svc = Xqb_service.Service in
  let module Edge = Xqb_service.Edge in
  let serve domains cache_capacity port deadline_ms fuel max_delta max_queue
      tracing slow_apply_ms data_dir fsync checkpoint_bytes checkpoint_secs
      replica_of slo_p99_ms slo_err_pct trace_ring telemetry edge_mode backlog
      max_conns idle_timeout_ms profile_hz gc_pause_warn_ms =
    report_errors (fun () ->
        (* a bad --data-dir or a failed bind must exit non-zero with
           one clear line, not an uncaught exception: Durable raises
           Failure (caught by report_errors) and socket errors are
           folded to Failure here *)
        let fsync =
          (* validated even without --data-dir so a typo never goes
             silently ignored *)
          match Xqb_wal.Wal.fsync_policy_of_string fsync with
          | Ok p -> p
          | Error e -> failwith e
        in
        (* string flags validated by hand so a malformed value gets
           one clear line, same convention as --fsync *)
        let slo_p99_ms =
          match float_of_string_opt slo_p99_ms with
          | Some ms when ms > 0. -> ms
          | _ ->
            failwith
              (Printf.sprintf "--slo-p99-ms expects a positive number of \
                               milliseconds, got %S" slo_p99_ms)
        in
        let slo_err_pct =
          match float_of_string_opt slo_err_pct with
          | Some pct when pct > 0. && pct <= 100. -> pct
          | _ ->
            failwith
              (Printf.sprintf
                 "--slo-err-pct expects a percentage in (0,100], got %S"
                 slo_err_pct)
        in
        let trace_ring =
          match int_of_string_opt trace_ring with
          | Some n when n > 0 -> n
          | _ ->
            failwith
              (Printf.sprintf "--trace-ring expects a positive integer, got %S"
                 trace_ring)
        in
        let edge_mode =
          match Edge.mode_of_string edge_mode with
          | Ok m -> m
          | Error e -> failwith ("--edge: " ^ e)
        in
        let backlog =
          match int_of_string_opt backlog with
          | Some n when n > 0 -> n
          | _ ->
            failwith
              (Printf.sprintf "--backlog expects a positive integer, got %S"
                 backlog)
        in
        let max_conns =
          match int_of_string_opt max_conns with
          | Some n when n >= 0 -> n
          | _ ->
            failwith
              (Printf.sprintf
                 "--max-conns expects a non-negative integer (0 = unlimited), \
                  got %S" max_conns)
        in
        let idle_timeout_ms =
          match int_of_string_opt idle_timeout_ms with
          | Some n when n >= 0 -> n
          | _ ->
            failwith
              (Printf.sprintf
                 "--idle-timeout-ms expects a non-negative integer (0 = \
                  never), got %S" idle_timeout_ms)
        in
        let profile_hz =
          match int_of_string_opt profile_hz with
          | Some 0 -> None
          | Some n when n > 0 -> Some n
          | _ ->
            failwith
              (Printf.sprintf
                 "--profile-hz expects a positive sampling rate in Hz (0 = \
                  don't start the profiler at boot), got %S" profile_hz)
        in
        let gc_pause_warn_ms =
          match int_of_string_opt gc_pause_warn_ms with
          | Some n when n > 0 -> n
          | _ ->
            failwith
              (Printf.sprintf
                 "--gc-pause-warn-ms expects a positive integer, got %S"
                 gc_pause_warn_ms)
        in
        let durability =
          match data_dir with
          | None -> None
          | Some dir ->
            Some
              {
                (Xqb_wal.Durable.default_config ~dir) with
                Xqb_wal.Durable.fsync;
                checkpoint_bytes;
                checkpoint_secs;
              }
        in
        let svc =
          try
            Svc.create ~domains ~cache_capacity ?deadline_ms ?fuel ?max_delta
              ?max_queue ~tracing ~slow_apply_ms ?durability ?replica_of
              ~slo_p99_ms ~slo_err_pct ~trace_ring ~telemetry ?profile_hz
              ~gc_pause_warn_ms ()
          with Xqb_wal.Codec.Corrupt m ->
            failwith ("refusing to start: " ^ m)
        in
        Svc.install_crash_hooks svc;
        Svc.start_replication svc;
        (match port with
        | None ->
          (* newline-delimited requests on stdin, replies on stdout *)
          Edge.session_loop svc stdin stdout
        | Some port ->
          let edge =
            Edge.start svc
              { Edge.port; backlog; max_conns; idle_timeout_ms;
                mode = edge_mode }
          in
          Printf.eprintf "xqbang serve: listening on 127.0.0.1:%d (%s edge)\n%!"
            (Edge.port edge)
            (Edge.mode_to_string edge_mode);
          Edge.join edge);
        Svc.shutdown svc;
        `Ok ())
  in
  let domains_arg =
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains in the scheduler pool (0 = synchronous).")
  in
  let cache_arg =
    Arg.(value & opt int 128 & info [ "plan-cache" ] ~docv:"N"
           ~doc:"Prepared-plan cache capacity (LRU).")
  in
  let port_arg =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
           ~doc:"Listen on 127.0.0.1:PORT instead of serving stdin.")
  in
  let max_delta_arg =
    Arg.(value & opt (some int) None & info [ "max-delta" ] ~docv:"N"
           ~doc:"Cap on one snap scope's pending-update list per query.")
  in
  let max_queue_arg =
    Arg.(value & opt (some int) None & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission control: reject submissions once this many jobs are queued.")
  in
  let tracing_arg =
    Arg.(value & opt bool true & info [ "tracing" ] ~docv:"BOOL"
           ~doc:"Record a span trace per job (queue wait, lock wait, pipeline phases), retrievable as Chrome trace JSON via the TRACE request. Per-job overhead is a few microseconds; pass false to disable.")
  in
  let slow_apply_arg =
    Arg.(value & opt int 10 & info [ "slow-apply-ms" ] ~docv:"MS"
           ~doc:"Slow-effect log threshold: write-side jobs whose Delta-apply phase exceeds MS are recorded with their Delta summary and trace id, retrievable via the SLOWLOG request.")
  in
  let data_dir_arg =
    Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Durable mode: recover the store from DIR on boot (latest snapshot + WAL replay) and append every committed write to DIR/wal.log before acknowledging it.")
  in
  let fsync_arg =
    Arg.(value & opt string "always" & info [ "fsync" ] ~docv:"POLICY"
           ~doc:"WAL fsync policy: 'always' (group commit, fsync before every acknowledgment), 'interval-ms:N' (background fsync every N ms; a crash may lose the last interval) or 'never' (page cache only).")
  in
  let checkpoint_bytes_arg =
    Arg.(value & opt int (4 * 1024 * 1024) & info [ "checkpoint-bytes" ] ~docv:"N"
           ~doc:"Write a snapshot and truncate the WAL once it grows past N bytes (0 disables size-triggered checkpoints).")
  in
  let checkpoint_secs_arg =
    Arg.(value & opt float 0. & info [ "checkpoint-secs" ] ~docv:"S"
           ~doc:"Also checkpoint every S seconds (0 disables time-triggered checkpoints).")
  in
  let replica_of_arg =
    Arg.(value & opt (some string) None & info [ "replica-of" ] ~docv:"HOST:PORT"
           ~doc:"Run as a read-only replica of the leader at HOST:PORT: bootstrap from its SNAPSHOT, stream committed WAL frames via SHIP, serve read-only queries. Excludes --data-dir.")
  in
  let slo_p99_arg =
    Arg.(value & opt string "250" & info [ "slo-p99-ms" ] ~docv:"MS"
           ~doc:"Latency SLO target: queries slower than MS count against the latency burn rate reported by HEALTH and the xqbang_slo_burn_rate metric.")
  in
  let slo_err_arg =
    Arg.(value & opt string "1" & info [ "slo-err-pct" ] ~docv:"PCT"
           ~doc:"Availability SLO target: the error budget as a percentage of queries. A 10s-window error rate of PCT is a burn rate of 1.")
  in
  let trace_ring_arg =
    Arg.(value & opt string "32" & info [ "trace-ring" ] ~docv:"N"
           ~doc:"Capacity of the per-job trace ring behind the TRACE request; older traces are evicted (counted by xqbang_trace_ring_evictions_total).")
  in
  let telemetry_arg =
    Arg.(value & opt bool true & info [ "telemetry" ] ~docv:"BOOL"
           ~doc:"Health telemetry: the structured event log (EVENTS), rolling-window SLO metrics, stall watchdog and flight recorder. Pass false to run bare (bench E22's baseline).")
  in
  let edge_arg =
    Arg.(value & opt string "fiber" & info [ "edge" ] ~docv:"MODE"
           ~doc:"TCP edge implementation: 'fiber' (one event-loop thread multiplexes all connections as fibers over non-blocking sockets, with request pipelining and read-side backpressure) or 'threads' (legacy thread-per-connection, kept for A/B comparison).")
  in
  let backlog_arg =
    Arg.(value & opt string "64" & info [ "backlog" ] ~docv:"N"
           ~doc:"listen(2) backlog for the TCP edge: pending connections the kernel queues before refusing, absorbed during connect storms.")
  in
  let max_conns_arg =
    Arg.(value & opt string "10000" & info [ "max-conns" ] ~docv:"N"
           ~doc:"Refuse new connections (one-line ERR [overloaded] reply, then close) once N are open; 0 = unlimited.")
  in
  let idle_timeout_arg =
    Arg.(value & opt string "0" & info [ "idle-timeout-ms" ] ~docv:"MS"
           ~doc:"Disconnect a connection with no traffic and no in-flight requests after MS milliseconds; 0 = never (fiber edge only).")
  in
  let profile_hz_arg =
    Arg.(value & opt string "97" & info [ "profile-hz" ] ~docv:"HZ"
           ~doc:"Sampling rate of the continuous CPU profiler, armed at boot and driven by SIGPROF against CPU time (an idle server takes no samples). Folded stacks via the PROFILE DUMP request; 0 = leave the profiler disarmed until a PROFILE START request.")
  in
  let gc_pause_warn_arg =
    Arg.(value & opt string "50" & info [ "gc-pause-warn-ms" ] ~docv:"MS"
           ~doc:"GC-pause health threshold: HEALTH degrades (reason gc-pause) when the 10s-window p99 GC pause exceeds MS, and goes critical past 4xMS. Requires --telemetry true.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the multi-client query service (newline-delimited protocol)")
    Term.(ret (const serve $ domains_arg $ cache_arg $ port_arg $ deadline_arg
               $ fuel_arg $ max_delta_arg $ max_queue_arg $ tracing_arg
               $ slow_apply_arg $ data_dir_arg $ fsync_arg $ checkpoint_bytes_arg
               $ checkpoint_secs_arg $ replica_of_arg $ slo_p99_arg $ slo_err_arg
               $ trace_ring_arg $ telemetry_arg $ edge_arg $ backlog_arg
               $ max_conns_arg $ idle_timeout_arg $ profile_hz_arg
               $ gc_pause_warn_arg))

let () =
  let info = Cmd.info "xqbang" ~version:"1.0.0"
      ~doc:"XQuery! — an XML query language with side effects (EDBT 2006 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; explain_cmd; xmark_cmd; fmt_cmd; repl_cmd; serve_cmd ]))
