(** Versioned pre/post-order keys: the store's O(1) document-order
    acceleration (see [Store.compare_order]). A key is valid iff its
    [(root, ver)] generation matches the root's current version. *)

type t = { root : int; ver : int; pre : int; post : int }

(** The "no key" sentinel ([root = -1]). *)
val none : t

(** Strict subtree containment — an O(1) interval test. Only
    meaningful when both keys are valid for the same generation. *)
val contains : anc:t -> desc:t -> bool
