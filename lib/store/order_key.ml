(* Versioned pre/post-order keys for O(1) document order.

   One key per node, tagged with the (root, version) generation it was
   built under — the same generation machinery that invalidates the
   name index. A key is *valid* iff its root's current version still
   equals [ver]; every structural mutation bumps the affected root's
   version, so a valid key proves the tree shape is unchanged since
   the build.

   [pre]/[post] are positions in a single shared counter over one DFS:
   an element takes its [pre], then each attribute takes an empty slot
   (pre = post), then children recurse, then the element takes its
   [post]. This matches [Store.sibling_rank]'s attributes-before-
   children order, so the keyed comparator agrees with the naive
   chain-walking one (asserted by the qcheck property). *)

type t = { root : int; ver : int; pre : int; post : int }

(* Sentinel for "no key": root = -1 never matches a real root id. *)
let none = { root = -1; ver = -1; pre = 0; post = 0 }

(* Strict containment: is [desc] strictly inside [anc]'s subtree?
   Only meaningful when both keys are valid for the same generation. *)
let contains ~anc ~desc =
  anc.root = desc.root && anc.pre < desc.pre && desc.post < anc.post
