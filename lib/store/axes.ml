(* XPath axes over the store. Every axis returns nodes already in the
   axis' natural order (document order for forward axes, reverse
   document order for reverse axes); the evaluator still applies
   distinct-doc-order at step boundaries as XQuery requires. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Attribute
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding

let axis_to_string = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Attribute -> "attribute"
  | Self -> "self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"

let is_reverse = function
  | Parent | Ancestor | Ancestor_or_self | Preceding_sibling | Preceding -> true
  | Child | Descendant | Descendant_or_self | Attribute | Self
  | Following_sibling | Following -> false

(* Node tests. [Name] matches elements on non-attribute axes and
   attributes on the attribute axis, per XPath's principal node kind. *)
type node_test =
  | Name of Xqb_xml.Qname.t
  | Wildcard  (* '*' *)
  | Kind_node  (* node() *)
  | Kind_text
  | Kind_element of Xqb_xml.Qname.t option  (* element() / element(n) *)
  | Kind_attribute of Xqb_xml.Qname.t option
  | Kind_comment
  | Kind_pi of string option
  | Kind_document

let node_test_to_string = function
  | Name q -> Xqb_xml.Qname.to_string q
  | Wildcard -> "*"
  | Kind_node -> "node()"
  | Kind_text -> "text()"
  | Kind_element None -> "element()"
  | Kind_element (Some q) -> Printf.sprintf "element(%s)" (Xqb_xml.Qname.to_string q)
  | Kind_attribute None -> "attribute()"
  | Kind_attribute (Some q) -> Printf.sprintf "attribute(%s)" (Xqb_xml.Qname.to_string q)
  | Kind_comment -> "comment()"
  | Kind_pi None -> "processing-instruction()"
  | Kind_pi (Some t) -> Printf.sprintf "processing-instruction(%s)" t
  | Kind_document -> "document-node()"

let principal_kind = function
  | Attribute -> Store.Attribute
  | Child | Descendant | Descendant_or_self | Self | Parent | Ancestor
  | Ancestor_or_self | Following_sibling | Preceding_sibling | Following
  | Preceding -> Store.Element

let name_matches qn = function
  | Some n -> Xqb_xml.Qname.equal qn n
  | None -> false

let test_matches store axis test id =
  let k = Store.kind store id in
  match test with
  | Name qn -> k = principal_kind axis && name_matches qn (Store.name store id)
  | Wildcard -> k = principal_kind axis
  | Kind_node -> true
  | Kind_text -> k = Store.Text
  | Kind_element None -> k = Store.Element
  | Kind_element (Some qn) -> k = Store.Element && name_matches qn (Store.name store id)
  | Kind_attribute None -> k = Store.Attribute
  | Kind_attribute (Some qn) ->
    k = Store.Attribute && name_matches qn (Store.name store id)
  | Kind_comment -> k = Store.Comment
  | Kind_pi None -> k = Store.Pi
  | Kind_pi (Some t) ->
    k = Store.Pi
    && (match Store.name store id with
       | Some q -> String.equal (Xqb_xml.Qname.to_string q) t
       | None -> false)
  | Kind_document -> k = Store.Document

(* Charge [n] steps against an (optional) budget. The walkers below
   charge one step per emitted node *during* the walk, so a fuel
   budget bounds the work of a huge descendant/following scan instead
   of being checked only after the full result is materialized. *)
let charge b n =
  match b with None -> () | Some b -> Xqb_governor.Budget.charge b n

(* All descendants of [id] in document order (excluding attributes). *)
let rec add_descendants store b acc id =
  List.fold_left
    (fun acc c ->
      charge b 1;
      add_descendants store b (c :: acc) c)
    acc (Store.children store id)

let descendants_b store b id = List.rev (add_descendants store b [] id)

let descendants store id = descendants_b store None id

let ancestors store id =
  let rec up acc id =
    match Store.parent store id with None -> acc | Some p -> up (p :: acc) p
  in
  List.rev (up [] id)  (* nearest ancestor first (reverse doc order) *)

let siblings_after store id =
  match Store.parent store id with
  | None -> []
  | Some p ->
    if Store.kind store id = Store.Attribute then []
    else begin
      let n = Store.get store id in
      let cs = Store.get store p in
      let out = ref [] in
      for i = Vec.length cs.children - 1 downto n.pos + 1 do
        out := Vec.get cs.children i :: !out
      done;
      !out
    end

let siblings_before store id =
  match Store.parent store id with
  | None -> []
  | Some p ->
    if Store.kind store id = Store.Attribute then []
    else begin
      let n = Store.get store id in
      let cs = Store.get store p in
      let out = ref [] in
      for i = 0 to n.pos - 1 do
        out := Vec.get cs.children i :: !out
      done;
      !out  (* nearest sibling first: reverse document order *)
    end

(* Nodes strictly after [id] in document order, excluding descendants
   and attributes (the XPath [following] axis): the following siblings
   of [id] with their subtrees, then those of its parent, and so on. *)
let following_b store b id =
  let rec up id =
    let here =
      List.concat_map
        (fun s ->
          charge b 1;
          s :: descendants_b store b s)
        (siblings_after store id)
    in
    match Store.parent store id with None -> here | Some p -> here @ up p
  in
  up id

let preceding_b store b id =
  (* Nodes strictly before [id], excluding ancestors and attributes,
     in reverse document order. Ancestors go into a hash set: the
     membership test runs once per candidate sibling, and a List.mem
     over the ancestor chain made deep-tree preceding quadratic. *)
  let anc_set = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace anc_set a ()) (ancestors store id);
  let is_anc x = Hashtbl.mem anc_set x in
  let rec up acc id =
    let acc =
      List.fold_left
        (fun acc s ->
          if is_anc s then acc
          else begin
            charge b 1;
            List.rev_append (descendants_b store b s) (s :: acc)
          end)
        acc
        (List.rev (siblings_before store id))
      (* siblings_before is nearest-first; List.rev gives doc order;
         we accumulate reversed so nearest material ends up first. *)
    in
    match Store.parent store id with None -> acc | Some p -> up acc p
  in
  up [] id

let apply store axis id =
  (* Axis walks are where a governed query burns store work that the
     evaluator's per-expression tick cannot see. The unbounded-fanout
     axes charge per node during the walk (see [charge]); the
     remaining axes are bounded by local degree/depth and charge
     their materialized length, as before. *)
  let b = Xqb_governor.Budget.current () in
  match axis with
  | Descendant -> descendants_b store b id
  | Descendant_or_self ->
    charge b 1;
    id :: descendants_b store b id
  | Following -> following_b store b id
  | Preceding -> preceding_b store b id
  | Child | Attribute | Self | Parent | Ancestor | Ancestor_or_self
  | Following_sibling | Preceding_sibling ->
    let nodes =
      match axis with
      | Child -> Store.children store id
      | Attribute -> Store.attributes store id
      | Self -> [ id ]
      | Parent -> (match Store.parent store id with None -> [] | Some p -> [ p ])
      | Ancestor -> ancestors store id
      | Ancestor_or_self -> id :: ancestors store id
      | Following_sibling -> siblings_after store id
      | Preceding_sibling -> siblings_before store id
      | Descendant | Descendant_or_self | Following | Preceding ->
        assert false
    in
    charge b (List.length nodes);
    nodes

(* One full step: axis + node test from a single context node. *)
let step store axis test id =
  List.filter (test_matches store axis test) (apply store axis id)
