(** The XDM store of the paper's §3.2: for each node id its kind,
    parent, name and content, with the accessors and constructors
    corresponding to the XQuery data model.

    The store is mutable; the formal semantics' store-threading is
    realized by in-place mutation under the evaluator's defined
    left-to-right evaluation order.

    Delete follows the paper's {e detach} semantics (§3.1): nodes are
    never erased, only disconnected from their parent; a detached
    subtree remains queryable and re-insertable. *)

type node_id = int

type kind = Document | Element | Attribute | Text | Comment | Pi

val kind_to_string : kind -> string

(** The physical node record. Exposed for the store-internal modules
    ([Axes]) and white-box tests; engine code should use the accessors. *)
type node = {
  id : node_id;
  mutable kind : kind;
  mutable name : Xqb_xml.Qname.t option;
  mutable content : string;
  mutable parent : node_id option;
  mutable pos : int;  (** index within the parent's child/attr list *)
  children : Vec.t;
  attributes : Vec.t;
}

type t

(** Raised when an update's precondition fails (§3.2: update
    application is a partial function). *)
exception Update_error of string

val create : unit -> t

(** Number of nodes ever allocated. *)
val node_count : t -> int

(** Number of store-mutating operations performed (instrumentation). *)
val mutation_count : t -> int

val get : t -> node_id -> node

(** {1 Constructors (XDM)} *)

val make_document : t -> node_id
val make_element : t -> Xqb_xml.Qname.t -> node_id
val make_text : t -> string -> node_id
val make_comment : t -> string -> node_id
val make_pi : t -> string -> string -> node_id
val make_attribute : t -> Xqb_xml.Qname.t -> string -> node_id

(** {1 Accessors (XDM)} *)

val kind : t -> node_id -> kind
val name : t -> node_id -> Xqb_xml.Qname.t option
val node_name : t -> node_id -> Xqb_xml.Qname.t option
val content : t -> node_id -> string
val parent : t -> node_id -> node_id option
val children : t -> node_id -> node_id list
val attributes : t -> node_id -> node_id list
val child_count : t -> node_id -> int
val attribute_count : t -> node_id -> int
val nth_child : t -> node_id -> int -> node_id

(** Concatenated text of the subtree (fn:string on nodes). *)
val string_value : t -> node_id -> string

val is_ancestor : t -> ancestor:node_id -> node_id -> bool

(** Strict: is the node inside [ancestor]'s subtree? An O(1) interval
    test on the pre/post order keys once they are built (this is a
    read path — it builds on a miss, unlike {!is_ancestor}, whose
    keyed fast path is valid-only because it also runs while
    mutating). *)
val is_descendant : t -> ancestor:node_id -> node_id -> bool

(** Topmost parentless node above [id]. *)
val root : t -> node_id -> node_id

(** {1 Transactions}

    [transactionally store f] runs [f ()]; if it raises, every store
    mutation it performed is undone and the exception re-raised. Used
    by snap application so a failing update list (precondition
    violation, detected conflict) leaves the store unchanged.
    Transactions nest. *)
val transactionally : t -> (unit -> 'a) -> 'a

(** {1 Mutations (the update-request applications of §3.2)} *)

(** @raise Update_error on document/text/comment nodes. *)
val rename : t -> node_id -> Xqb_xml.Qname.t -> unit

(** Set text/comment/PI/attribute content.
    @raise Update_error on element/document nodes. *)
val set_content : t -> node_id -> string -> unit

(** Detach from the parent (the paper's delete). Idempotent. *)
val detach : t -> node_id -> unit

type insert_position = First | Last | After of node_id

(** [insert store ~parent ~position nodes] splices [nodes] into
    [parent]'s child list ([Attribute] nodes go to the attribute
    list). Preconditions (§3.2), checked before any mutation: every
    inserted node is parentless; an [After] anchor is a child of
    [parent]; kinds are compatible; no cycles; no duplicate attribute
    names. @raise Update_error otherwise. *)
val insert : t -> parent:node_id -> position:insert_position -> node_id list -> unit

(** Deep copy of a subtree; the copy is parentless (the data-model
    half of [copy { e }]). *)
val deep_copy : t -> node_id -> node_id

(** {1 Document order} *)

(** Total order: document order within a tree; across trees (incl.
    detached/fresh nodes) by root creation order. Attributes order
    after their element and before its children. Two array lookups
    when both nodes carry valid pre/post order keys, the naive
    O(depth) chain walk otherwise (never builds keys — building
    happens on the bulk read paths below). *)
val compare_order : t -> node_id -> node_id -> int

(** The chain-walking comparator, always. Exposed as the reference
    implementation for the keyed-≡-naive qcheck property. *)
val compare_order_naive : t -> node_id -> node_id -> int

(** Sort into document order and drop duplicates (the ddo applied to
    path-expression results). Builds order keys, then sorts decorated
    (root, pre) integer pairs. *)
val sort_doc_order : t -> node_id list -> node_id list

(** Is the list already strictly in document order (sorted and
    duplicate-free)? Builds order keys — the ddo builtin's fast
    path. *)
val sorted_strict : t -> node_id list -> bool

(** {1 Serialization and loading} *)

val events_of_node : t -> node_id -> Xqb_xml.Event.t list
val serialize : t -> node_id -> string

(** Build a document node from an event stream / XML text. *)
val load_events : t -> Xqb_xml.Event.t list -> node_id

val load_string : ?keep_ws:bool -> t -> string -> node_id

(** {1 Element-name index} *)

(** Elements named [q] among the descendants of the context node, in
    document order — the workhorse of [e//name] steps. Cached per
    parentless root; invalidated (by version) on any store mutation;
    computed directly for attached context nodes. *)
val descendants_by_name : t -> node_id -> Xqb_xml.Qname.t -> node_id list

(** String value of [elem]'s attribute named [attr], if present. *)
val attr_value : t -> node_id -> Xqb_xml.Qname.t -> string option

(** Elements [elem] under [root] whose @[attr] string-equals [value] —
    the hash path behind [//elem[@attr = $v]] for string keys. Same
    caching and invalidation policy as {!descendants_by_name}. *)
val lookup_by_key :
  t -> node_id -> elem:Xqb_xml.Qname.t -> attr:Xqb_xml.Qname.t -> string ->
  node_id list

(** Turn the caches off (the ablation knob for benches E12/E13;
    results are identical either way). *)
val set_indexing : t -> bool -> unit

(** Turn the pre/post order-key tables off (ablation knob for bench
    E18: forces the naive comparator everywhere; results are
    identical either way). *)
val set_order_keys : t -> bool -> unit

(** How many order-key tables were (re)built (instrumentation: one
    per (root, version) generation actually touched by a read). *)
val order_key_builds : t -> int

(** {1 Introspection} *)

(** Structural-invariant check; returns human-readable violations
    (empty = healthy). Used by tests and failure injection. *)
val validate : t -> string list

(** Parentless non-document nodes — the "persistent but unreachable
    nodes" of §4.1 the detach semantics produces. *)
val detached_count : t -> int

(** Stable, human-readable path from the node's root
    (["/site[1]/regions[1]/africa[1]"]; attributes end in ["/@name"],
    text nodes in ["/text()[k]"]). Indexes are 1-based among
    same-label siblings. Nodes under a detached (non-document) root
    get the root's id as a disambiguating prefix (["log#7/entry[2]"]);
    ids the store does not know render as ["#<id>"]. *)
val node_path : t -> node_id -> string

(** {1 Mutation journal (effect observability)}

    An append-only, replayable record of everything that changes the
    store, distinct from the transactional undo log: node allocations,
    inserts, detaches, renames, content writes, deep copies, and
    transaction begin/commit/abort markers, each with a monotonic
    sequence number. Because node ids are allocated sequentially,
    re-executing the entries in order against a {e fresh} store
    reproduces the same ids and hence the same store byte for byte —
    see {!Journal.replay}. Provenance notes ({!mj_op.M_request}) tie
    journal spans back to the update request (and source location)
    that caused them. *)

type mj_op =
  | M_make of kind * Xqb_xml.Qname.t option * string
      (** one node allocation: kind, name, content *)
  | M_insert of node_id * insert_position * node_id list
  | M_detach of node_id
  | M_rename of node_id * Xqb_xml.Qname.t
  | M_set_content of node_id * string
  | M_deep_copy of node_id
      (** composite: one whole recursive {!deep_copy} *)
  | M_txn_begin
  | M_txn_commit
  | M_txn_abort
  | M_request of {
      line : int;
      col : int;
      snap_depth : int;
      trace_id : string option;
      desc : string;
    }  (** provenance note preceding one update request's ops *)

type mj_entry = { seq : int; op : mj_op }

(** Start recording (clears any previous journal). Replay is exact
    only when recording starts on a fresh, empty store and outside any
    transaction. *)
val journal_start : t -> unit

val journal_stop : t -> unit

(** Recording and not suspended by a composite op. *)
val journal_active : t -> bool

(** Entries in chronological order. *)
val journal_entries : t -> mj_entry list

(** Entries with [seq >= n] in chronological order — the tail the
    durable layer has not yet appended to the on-disk WAL. O(tail)
    thanks to the reversed internal list. *)
val journal_entries_from : t -> int -> mj_entry list

(** Number of entries recorded (= the next sequence number). *)
val journal_length : t -> int

(** Append a provenance note ({!mj_op.M_request}); no-op when not
    recording. *)
val journal_note :
  t -> line:int -> col:int -> snap_depth:int -> trace_id:string option ->
  desc:string -> unit

(** Re-execute an {!mj_op.M_make} (journal replay only). *)
val replay_make : t -> kind -> Xqb_xml.Qname.t option -> string -> node_id
