(* Replay and rendering for the store's mutation journal (WAL-style
   effect audit trail).

   [Store] records every mutating operation — allocations, inserts,
   detaches, renames, content writes, deep copies, transaction
   markers, and per-update-request provenance notes — as an ordered
   [mj_entry] list. Node ids are allocated sequentially, so
   re-executing those entries against a fresh store is deterministic:
   the replayed store is byte-for-byte identical to the original
   (checked with [digest]/[consistent], used by tests and bench E19).

   Transaction spans replay through [Store.transactionally] itself: an
   [M_txn_abort] marker makes the replayed span raise, driving the
   same undo machinery the original rollback used — allocations
   survive (as they did originally), structural changes are undone. *)

module S = Store

type entry = S.mj_entry = { seq : int; op : S.mj_op }

exception Replay_error of string

(* Raised inside a replayed transaction span to trigger its rollback. *)
exception Abort_span

(* Execute entries in order until the list ends or a txn terminator
   for the *enclosing* span is reached; returns the unconsumed tail
   (beginning with that terminator, if any). *)
let rec exec_seq store (entries : entry list) : entry list =
  match entries with
  | [] -> []
  | { op; _ } :: rest -> (
    match op with
    | S.M_txn_commit | S.M_txn_abort -> entries
    | S.M_txn_begin ->
      let after = ref rest in
      (try
         S.transactionally store (fun () ->
             match exec_seq store rest with
             | { op = S.M_txn_commit; _ } :: tail -> after := tail
             | { op = S.M_txn_abort; _ } :: tail ->
               after := tail;
               raise Abort_span
             | tail ->
               (* truncated journal (recording stopped mid-span):
                  treat as committed *)
               after := tail)
       with Abort_span -> ());
      exec_seq store !after
    | S.M_make (kind, name, content) ->
      ignore (S.replay_make store kind name content);
      exec_seq store rest
    | S.M_insert (parent, position, nodes) ->
      S.insert store ~parent ~position nodes;
      exec_seq store rest
    | S.M_detach n ->
      S.detach store n;
      exec_seq store rest
    | S.M_rename (n, q) ->
      S.rename store n q;
      exec_seq store rest
    | S.M_set_content (n, s) ->
      S.set_content store n s;
      exec_seq store rest
    | S.M_deep_copy src ->
      ignore (S.deep_copy store src);
      exec_seq store rest
    | S.M_request _ -> exec_seq store rest)

(* Execute entries against an *existing* store — the WAL-tail replay
   and replica-apply primitive. Entries allocate node ids sequentially
   from the store's current next id, so applying a leader's journal
   tail to a store restored from the leader's snapshot (or applying
   shipped frames to a converged replica) reproduces the leader's ids
   exactly. *)
let apply store (entries : entry list) : unit =
  match exec_seq store entries with
  | [] -> ()
  | { seq; _ } :: _ ->
    raise
      (Replay_error
         (Printf.sprintf "unmatched transaction terminator at seq %d" seq))

let replay (entries : entry list) : S.t =
  let store = S.create () in
  apply store entries;
  store

(* Longest prefix that contains no dangling [M_txn_begin]: everything
   up to (and including) the last point where the top-level
   transaction depth returns to zero. Recovery truncates the WAL at
   the split point (a trailing half-written span was never
   acknowledged); a replica buffers the incomplete tail until the rest
   of the span ships. *)
let split_complete (entries : entry list) : entry list * entry list =
  let rec scan depth taken best = function
    | [] -> best
    | { op; _ } :: rest ->
      let depth =
        match op with
        | S.M_txn_begin -> depth + 1
        | S.M_txn_commit | S.M_txn_abort -> max 0 (depth - 1)
        | _ -> depth
      in
      let taken = taken + 1 in
      scan depth taken (if depth = 0 then taken else best) rest
  in
  let keep = scan 0 0 0 entries in
  let rec split i acc = function
    | rest when i = keep -> (List.rev acc, rest)
    | e :: rest -> split (i + 1) (e :: acc) rest
    | [] -> (List.rev acc, [])
  in
  split 0 [] entries

(* Canonical dump of the full node table — every field that defines
   the store's logical state, id by id. Two stores with equal digests
   are indistinguishable to every accessor. *)
let digest (store : S.t) : string =
  let buf = Buffer.create 1024 in
  for id = 0 to S.node_count store - 1 do
    let n = S.get store id in
    Buffer.add_string buf
      (Printf.sprintf "%d|%s|%s|%S|%s|%d|[%s]|[%s]\n" id
         (S.kind_to_string n.S.kind)
         (match n.S.name with
         | Some q -> Xqb_xml.Qname.to_string q
         | None -> "-")
         n.S.content
         (match n.S.parent with Some p -> string_of_int p | None -> "-")
         n.S.pos
         (String.concat ";" (List.map string_of_int (S.children store id)))
         (String.concat ";" (List.map string_of_int (S.attributes store id))))
  done;
  Buffer.contents buf

(* replay(journal) ≡ store — the consistency check. *)
let consistent (store : S.t) : bool =
  let replayed = replay (S.journal_entries store) in
  String.equal (digest replayed) (digest store)

(* -- Rendering ----------------------------------------------------- *)

(* [store] resolves node ids to stable paths; entries that reference
   ids render raw ("#12") without it. *)
let node_str store n =
  match store with
  | Some s -> S.node_path s n
  | None -> Printf.sprintf "#%d" n

let op_to_string ?store (op : S.mj_op) : string =
  match op with
  | S.M_make (kind, name, content) ->
    Printf.sprintf "make %s%s%s" (S.kind_to_string kind)
      (match name with
      | Some q -> " " ^ Xqb_xml.Qname.to_string q
      | None -> "")
      (if content = "" then "" else Printf.sprintf " %S" content)
  | S.M_insert (parent, position, nodes) ->
    Printf.sprintf "insert [%s] into %s %s"
      (String.concat "; " (List.map (node_str store) nodes))
      (node_str store parent)
      (match position with
      | S.First -> "first"
      | S.Last -> "last"
      | S.After a -> "after " ^ node_str store a)
  | S.M_detach n -> "detach " ^ node_str store n
  | S.M_rename (n, q) ->
    Printf.sprintf "rename %s to %s" (node_str store n)
      (Xqb_xml.Qname.to_string q)
  | S.M_set_content (n, s) ->
    Printf.sprintf "set-content %s %S" (node_str store n) s
  | S.M_deep_copy src -> "deep-copy " ^ node_str store src
  | S.M_txn_begin -> "txn-begin"
  | S.M_txn_commit -> "txn-commit"
  | S.M_txn_abort -> "txn-abort"
  | S.M_request { line; col; snap_depth; trace_id; desc } ->
    Printf.sprintf "request %s @ %d:%d (snap depth %d%s)" desc line col
      snap_depth
      (match trace_id with None -> "" | Some t -> ", trace " ^ t)

let entry_to_string ?store (e : entry) : string =
  Printf.sprintf "%6d  %s" e.seq (op_to_string ?store e.op)

let to_string ?store (entries : entry list) : string =
  String.concat "\n" (List.map (entry_to_string ?store) entries)
