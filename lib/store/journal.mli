(** Replay and rendering for the store's mutation journal — the
    WAL-style effect audit trail of the observability layer.

    {!Store} records every mutating operation as an ordered
    {!Store.mj_entry} list (see the "Mutation journal" section there).
    Node ids allocate sequentially, so replaying those entries against
    a fresh store is deterministic and reproduces the original store
    byte for byte; {!consistent} is that check, used by tests and
    bench E19. *)

type entry = Store.mj_entry = { seq : int; op : Store.mj_op }

exception Replay_error of string

(** Reconstruct a store by re-executing the journal against a fresh
    one. Transaction spans run through {!Store.transactionally}; an
    [M_txn_abort] marker drives the same rollback machinery the
    original used. @raise Replay_error on a malformed journal
    (terminator with no open span). *)
val replay : entry list -> Store.t

(** Execute entries against an {e existing} store — the WAL-tail
    replay and replica-apply primitive. Ids allocate from the store's
    current next id, so applying a journal tail to a store restored
    from the matching snapshot reproduces the original ids exactly.
    @raise Replay_error as {!replay}. *)
val apply : Store.t -> entry list -> unit

(** Split into the longest prefix containing no dangling
    [M_txn_begin] and the incomplete tail. Recovery truncates the WAL
    at the split point (a half-written trailing span was never
    acknowledged); a replica buffers the tail until the rest of the
    span ships. *)
val split_complete : entry list -> entry list * entry list

(** Canonical dump of the node table (kind, name, content, parent,
    position, child and attribute lists for every id). Equal digests
    ⟺ indistinguishable stores. *)
val digest : Store.t -> string

(** [replay (journal_entries store) ≡ store], byte for byte. *)
val consistent : Store.t -> bool

(** Human-readable rendering; [store] resolves node ids to stable
    {!Store.node_path}s, otherwise ids render raw (["#12"]). *)
val op_to_string : ?store:Store.t -> Store.mj_op -> string

val entry_to_string : ?store:Store.t -> entry -> string
val to_string : ?store:Store.t -> entry list -> string
