(* The XDM store of §3.2: for each node id, its kind, parent, name and
   content, plus the accessors and constructors corresponding to the
   XDM. The store is mutable; the formal semantics' store-threading is
   realized by in-place mutation under the evaluator's defined
   left-to-right evaluation order.

   Delete follows the paper's *detach* semantics: nodes are never
   erased, only disconnected from their parent; a detached subtree
   remains queryable and re-insertable (§3.1).

   Each node caches its index within its parent ([pos]); insert/detach
   maintain it, which makes document-order comparison O(depth) and
   keeps E1's complexity claims honest (no hidden linear scans). *)

type node_id = int

type kind = Document | Element | Attribute | Text | Comment | Pi

let kind_to_string = function
  | Document -> "document"
  | Element -> "element"
  | Attribute -> "attribute"
  | Text -> "text"
  | Comment -> "comment"
  | Pi -> "processing-instruction"

type node = {
  id : node_id;
  mutable kind : kind;
  mutable name : Xqb_xml.Qname.t option;
  mutable content : string;  (* text/comment/pi content, attribute value *)
  mutable parent : node_id option;
  mutable pos : int;  (* index within parent's children or attributes *)
  children : Vec.t;
  attributes : Vec.t;
}

type journal_entry =
  | J_child_inserted of node_id * node_id  (* parent, child *)
  | J_attr_inserted of node_id * node_id
  | J_detached_child of node_id * node_id * int  (* child, parent, index *)
  | J_detached_attr of node_id * node_id * int
  | J_renamed of node_id * Xqb_xml.Qname.t option
  | J_content of node_id * string

(* Mutation-journal ops (distinct from [journal_entry], which is the
   transactional UNDO log above). The mutation journal is an
   append-only, replayable record of everything that changed the
   store: node allocation is sequential, so re-executing the ops in
   order against a fresh store reproduces the same node ids and hence
   the same store byte for byte ([Journal.replay]). Transaction spans
   are bracketed with begin/commit/abort markers so replay can redo a
   rollback with the same undo machinery. *)
type insert_position = First | Last | After of node_id

type mj_op =
  | M_make of kind * Xqb_xml.Qname.t option * string
    (* one [alloc]: kind, name, content *)
  | M_insert of node_id * insert_position * node_id list
  | M_detach of node_id
  | M_rename of node_id * Xqb_xml.Qname.t
  | M_set_content of node_id * string
  | M_deep_copy of node_id
    (* composite: the whole recursive copy, one entry (inner allocs
       are suppressed — [deep_copy] wires structure directly, so
       replay just calls it again) *)
  | M_txn_begin
  | M_txn_commit
  | M_txn_abort
  | M_request of {
      line : int;
      col : int;
      snap_depth : int;
      trace_id : string option;
      desc : string;
    }
    (* provenance note preceding the ops of one update request *)

type mj_entry = { seq : int; op : mj_op }

type t = {
  mutable tbl : node array;
  mutable next_id : int;
  mutable journal : journal_entry list;
  mutable journal_on : bool;
  (* mutation journal (observability): reversed entry list, entry
     count (= next seq), recording flag, and a suspension flag for
     composite ops ([deep_copy]) whose inner allocs must not appear *)
  mutable mj : mj_entry list;
  mutable mj_count : int;
  mutable mj_on : bool;
  mutable mj_suspend : bool;
  mutable mutations : int;  (* statistics: store-changing operations *)
  (* element-name index: (root, version, name) -> descendants in doc
     order, built lazily per parentless root. Invalidation is
     *per-root*: every mutation bumps the version of the root above
     the touched node, so writes to one tree (a log) never evict
     another tree's index (the auction document) — see bench E13.
     Stale generations linger until the size-triggered reset. *)
  mutable index_enabled : bool;
  name_index : (node_id * int * string, node_id list) Hashtbl.t;
  indexed_roots : (node_id * int, unit) Hashtbl.t;
  (* per-root index generation, one slot per node id (only parentless
     roots are ever bumped). An array rather than a hashtable so the
     hot validity check ([okey_valid]) is a lock-free load that can
     run while a *disjoint* region of the same store is being
     mutated; all writes (and resizes) happen under [mu]. A stale
     read is sound: it can only under-report a bump by a concurrent
     writer whose footprint is disjoint, and relative order /
     containment of the reader's own nodes is unaffected by disjoint
     structural edits. *)
  mutable root_vers : int array;
  (* attribute-value key index: (root, version, elem, attr) -> value
     -> nodes; same policy *)
  key_index :
    (node_id * int * string * string, (string, node_id list) Hashtbl.t) Hashtbl.t;
  (* pre/post-order keys (see order_key.ml), one slot per node id,
     built lazily per parentless root and invalidated by the same
     per-root version bumps as the name index. [Order_key.none] means
     "never built"; a stale generation is detected per-node by
     comparing [ver] against the root's current version, so slots are
     never eagerly cleared. *)
  mutable okeys : Order_key.t array;
  mutable order_keys_enabled : bool;
  mutable okey_builds : int;  (* statistics: key-table (re)builds *)
  (* The index caches above are filled *lazily during reads*, and
     their builds walk a whole tree — potentially crossing into a
     subtree some footprint-disjoint writer is mutating right now.
     This lock therefore serializes cache fill/lookup *and* every
     structural mutator body, so a build never observes a half-done
     splice. Uncontended cost is a few ns. *)
  index_lock : Mutex.t;
  (* Allocation/journal lock: node-id assignment, table/okeys/version
     resizes, mutation-journal appends and version bumps. Keeps ids
     sequential and the journal totally ordered when several
     footprint-disjoint jobs evaluate concurrently. Lock order:
     [index_lock] before [mu]; never the reverse. *)
  mu : Mutex.t;
}

exception Update_error of string

let update_error fmt = Format.kasprintf (fun s -> raise (Update_error s)) fmt

let dummy_node =
  { id = -1; kind = Text; name = None; content = ""; parent = None; pos = 0;
    children = Vec.create (); attributes = Vec.create () }

let create () =
  { tbl = Array.make 64 dummy_node; next_id = 0; journal = []; journal_on = false;
    mj = []; mj_count = 0; mj_on = false; mj_suspend = false;
    mutations = 0; index_enabled = true; name_index = Hashtbl.create 64;
    indexed_roots = Hashtbl.create 8; root_vers = Array.make 64 0;
    key_index = Hashtbl.create 16;
    okeys = Array.make 64 Order_key.none; order_keys_enabled = true;
    okey_builds = 0; index_lock = Mutex.create (); mu = Mutex.create () }

(* -- Mutation journal (observability) ------------------------------ *)

let with_mu store f =
  Mutex.lock store.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock store.mu) f

(* Caller holds [mu] (allocation, deep copy). *)
let mj_record store op =
  if store.mj_on && not store.mj_suspend then begin
    store.mj <- { seq = store.mj_count; op } :: store.mj;
    store.mj_count <- store.mj_count + 1
  end

(* Locking append, for callers that don't hold [mu] (the structural
   mutators, transaction markers, provenance notes). *)
let mj_append store op = with_mu store (fun () -> mj_record store op)

(* Start recording. The journal is replayable only when started on a
   fresh (empty) store — replay depends on sequential id allocation —
   and outside any transaction; callers own that discipline. *)
let journal_start store =
  with_mu store (fun () ->
      store.mj <- [];
      store.mj_count <- 0;
      store.mj_on <- true)

let journal_stop store = store.mj_on <- false

let journal_active store = store.mj_on && not store.mj_suspend

let journal_entries store = with_mu store (fun () -> List.rev store.mj)

(* Entries with [seq >= n], oldest first. The internal list is newest
   first, so walk until the seq drops below [n] — O(tail), which is
   what the WAL appender consumes after each committed job. Under
   [mu] so a concurrent evaluator's allocation can't tear the list
   head out from under the walk. *)
let journal_entries_from store n =
  with_mu store (fun () ->
      let rec take acc = function
        | { seq; _ } as e :: rest when seq >= n -> take (e :: acc) rest
        | _ -> acc
      in
      take [] store.mj)

let journal_length store = store.mj_count

let journal_note store ~line ~col ~snap_depth ~trace_id ~desc =
  mj_append store (M_request { line; col; snap_depth; trace_id; desc })

let set_indexing store b = store.index_enabled <- b
let set_order_keys store b = store.order_keys_enabled <- b
let order_key_builds store = store.okey_builds

let with_index_lock store f =
  Mutex.lock store.index_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock store.index_lock) f

let root_version store root =
  let vers = store.root_vers in
  if root >= 0 && root < Array.length vers then vers.(root) else 0

(* Is this key's generation current? Two reads (key slot + version
   hash) — no root walk. Sound because every structural mutation
   bumps the version of the root whose tree it touches (including the
   self-bump on freshly attached nodes and the child bump when an
   undo re-attaches a detached subtree), so a key that still matches
   its root's version proves the tree shape is unchanged since the
   build. *)
let okey_valid store (k : Order_key.t) =
  k.Order_key.root >= 0 && root_version store k.Order_key.root = k.Order_key.ver

let node_count store = store.next_id

let mutation_count store = store.mutations

let get store id =
  if id < 0 || id >= store.next_id then invalid_arg "Store.get: bad node id";
  store.tbl.(id)

(* Caller holds [mu]. Resizes swap in freshly copied arrays, so a
   lock-free reader holding the old pointer still sees every node
   that existed when it loaded it — node records are shared, only
   the spine is replaced. *)
let alloc_unlocked store kind name content =
  if store.next_id >= Array.length store.tbl then begin
    let tbl = Array.make (2 * Array.length store.tbl) dummy_node in
    Array.blit store.tbl 0 tbl 0 store.next_id;
    store.tbl <- tbl;
    let okeys = Array.make (2 * Array.length store.okeys) Order_key.none in
    Array.blit store.okeys 0 okeys 0 store.next_id;
    store.okeys <- okeys;
    let vers = Array.make (2 * Array.length store.root_vers) 0 in
    Array.blit store.root_vers 0 vers 0 (Array.length store.root_vers);
    store.root_vers <- vers
  end;
  let n =
    { id = store.next_id; kind; name; content; parent = None; pos = 0;
      children = Vec.create (); attributes = Vec.create () }
  in
  store.tbl.(store.next_id) <- n;
  store.next_id <- store.next_id + 1;
  mj_record store (M_make (kind, name, content));
  n.id

let alloc store kind name content =
  with_mu store (fun () -> alloc_unlocked store kind name content)

(* Journal replay's constructor: re-execute an [M_make] verbatim.
   Identical to the per-kind constructors below modulo the name/kind
   packaging. *)
let replay_make store kind name content = alloc store kind name content

(* -- Constructors ------------------------------------------------- *)

let make_document store = alloc store Document None ""
let make_element store name = alloc store Element (Some name) ""
let make_text store content = alloc store Text None content
let make_comment store content = alloc store Comment None content
let make_pi store target content = alloc store Pi (Some (Xqb_xml.Qname.make target)) content

let make_attribute store name value = alloc store Attribute (Some name) value

(* -- Accessors ---------------------------------------------------- *)

let kind store id = (get store id).kind
let name store id = (get store id).name
let content store id = (get store id).content
let parent store id = (get store id).parent
let children store id = Vec.to_list (get store id).children
let attributes store id = Vec.to_list (get store id).attributes
let child_count store id = Vec.length (get store id).children
let attribute_count store id = Vec.length (get store id).attributes
let nth_child store id i = Vec.get (get store id).children i

let node_name store id =
  match (get store id).name with
  | Some n -> Some n
  | None -> None

let rec string_value store id =
  let n = get store id in
  match n.kind with
  | Text | Comment | Pi | Attribute -> n.content
  | Element | Document ->
    let buf = Buffer.create 16 in
    add_text_descendants store buf id;
    Buffer.contents buf

and add_text_descendants store buf id =
  let n = get store id in
  match n.kind with
  | Text -> Buffer.add_string buf n.content
  | Element | Document ->
    Vec.iter (fun c -> add_text_descendants store buf c) n.children
  | Attribute | Comment | Pi -> ()

let is_ancestor store ~ancestor id =
  (* valid-key fast path only — never builds, because this also runs
     on the mutation path (insert's cycle check), where keys are
     typically stale anyway *)
  let ka = store.okeys.(ancestor) and kd = store.okeys.(id) in
  if okey_valid store ka && okey_valid store kd then
    Order_key.contains ~anc:ka ~desc:kd
  else
    let rec up id =
      match (get store id).parent with
      | None -> false
      | Some p -> p = ancestor || up p
    in
    up id

let root store id =
  let rec up id =
    match (get store id).parent with None -> id | Some p -> up p
  in
  up id

(* Invalidate the index generation of the tree containing [id]
   (bump the version of its root). O(depth). Runs even while indexing
   is disabled, so caches built before a disable/enable cycle can
   never be served stale. *)
let bump_index store id =
  let r = root store id in
  with_mu store (fun () ->
      if r >= 0 && r < Array.length store.root_vers then
        store.root_vers.(r) <- store.root_vers.(r) + 1)

(* -- Order keys (see order_key.ml) --------------------------------- *)

(* Build the key table for the tree rooted at parentless [r] under
   its current version. One DFS with one shared counter: an element
   takes [pre], each attribute takes an empty slot (pre = post), the
   children recurse, then the element takes [post] — matching
   [sibling_rank]'s attributes-before-children order. A node's slot
   is written only once its post is known (an immutable record, so
   the store is atomic): lock-free readers either see a complete key
   of the current generation or fall back. *)
let build_okeys store r =
  let ver = root_version store r in
  let ctr = ref 0 in
  let rec walk id =
    let pre = !ctr in
    incr ctr;
    let n = get store id in
    Vec.iter
      (fun aid ->
        let s = !ctr in
        incr ctr;
        store.okeys.(aid) <- { Order_key.root = r; ver; pre = s; post = s })
      n.attributes;
    Vec.iter walk n.children;
    let post = !ctr in
    incr ctr;
    store.okeys.(id) <- { Order_key.root = r; ver; pre; post }
  in
  walk r;
  store.okey_builds <- store.okey_builds + 1

(* A valid key for [id], building its root's table on a generation
   miss. The fast path costs two reads; the O(depth) root walk and
   O(tree) build are paid once per (root, version) generation — i.e.
   once per evaluation phase of an innermost snap, during which no
   structural mutation can run (the §3.3 purity observation). *)
let ensure_key store id =
  let k = store.okeys.(id) in
  if okey_valid store k then Some k
  else if not store.order_keys_enabled then None
  else begin
    let r = root store id in
    with_index_lock store (fun () ->
        (* double-checked: another reader may have built this root *)
        if not (okey_valid store store.okeys.(id)) then build_okeys store r);
    let k = store.okeys.(id) in
    if okey_valid store k then Some k else None
  end

(* Strict: is [id] strictly inside [ancestor]'s subtree? An O(1)
   interval test once keys are built (read path — builds). *)
let is_descendant store ~ancestor id =
  id <> ancestor
  && (match ensure_key store ancestor, ensure_key store id with
     | Some ka, Some kd -> Order_key.contains ~anc:ka ~desc:kd
     | _ -> is_ancestor store ~ancestor id)

(* -- Journal ------------------------------------------------------ *)

let record store e = if store.journal_on then store.journal <- e :: store.journal

let undo store e =
  (match e with
  | J_child_inserted (parent, _)
  | J_attr_inserted (parent, _) ->
    bump_index store parent
  | J_detached_child (child, parent, _)
  | J_detached_attr (child, parent, _) ->
    (* the child is parentless right now, so it is its own root: bump
       it too, killing order keys built on the detached subtree
       between the detach and this rollback *)
    bump_index store child;
    bump_index store parent
  | J_renamed (id, _) | J_content (id, _) -> bump_index store id);
  match e with
  | J_child_inserted (parent, child) ->
    let p = get store parent in
    let c = get store child in
    Vec.remove_at p.children c.pos;
    for i = c.pos to Vec.length p.children - 1 do
      (get store (Vec.get p.children i)).pos <- i
    done;
    c.parent <- None;
    c.pos <- 0
  | J_attr_inserted (parent, attr) ->
    let p = get store parent in
    let a = get store attr in
    Vec.remove_at p.attributes a.pos;
    for i = a.pos to Vec.length p.attributes - 1 do
      (get store (Vec.get p.attributes i)).pos <- i
    done;
    a.parent <- None;
    a.pos <- 0
  | J_detached_child (child, parent, idx) ->
    let p = get store parent in
    let c = get store child in
    Vec.insert p.children idx child;
    c.parent <- Some parent;
    for i = idx to Vec.length p.children - 1 do
      (get store (Vec.get p.children i)).pos <- i
    done
  | J_detached_attr (attr, parent, idx) ->
    let p = get store parent in
    let a = get store attr in
    Vec.insert p.attributes idx attr;
    a.parent <- Some parent;
    for i = idx to Vec.length p.attributes - 1 do
      (get store (Vec.get p.attributes i)).pos <- i
    done
  | J_renamed (id, old) -> (get store id).name <- old
  | J_content (id, old) -> (get store id).content <- old

(* Run [f ()]; if it raises, undo every store mutation it performed
   and re-raise. Used by snap application so a failing update list
   (precondition violation, detected conflict) leaves the store
   unchanged — the paper's "update application fails" is atomic here.
   Transactions nest by saving the enclosing journal. *)
let transactionally store f =
  let saved_journal = store.journal and saved_on = store.journal_on in
  store.journal <- [];
  store.journal_on <- true;
  mj_append store M_txn_begin;
  match f () with
  | v ->
    (* Commit: fold our entries into the enclosing journal (if any) so
       an outer transaction can still undo them. *)
    store.journal_on <- saved_on;
    store.journal <- (if saved_on then store.journal @ saved_journal else saved_journal);
    mj_append store M_txn_commit;
    v
  | exception e ->
    let mine = store.journal in
    (* under the index lock: the undo splices bypass the mutators,
       and a concurrent reader's lazy index build must not watch *)
    with_index_lock store (fun () -> List.iter (undo store) mine);
    store.journal <- saved_journal;
    store.journal_on <- saved_on;
    (* the undo above bypassed the mutators, so nothing was journaled
       during rollback; the abort marker lets replay redo the rollback
       with the same machinery *)
    mj_append store M_txn_abort;
    raise e

(* -- Mutations ---------------------------------------------------- *)

(* Every structural mutator body runs under [index_lock], so a lazy
   index/order-key build (which walks the whole tree, possibly into a
   region some footprint-disjoint job is writing) never observes a
   half-done splice. Mutators are further serialized among themselves
   by the scheduler's apply mutex; the lock here is only against the
   read-side cache fills. *)
let rename store id new_name =
  with_index_lock store @@ fun () ->
  let n = get store id in
  (match n.kind with
  | Element | Attribute | Pi -> ()
  | Document | Text | Comment ->
    update_error "cannot rename a %s node" (kind_to_string n.kind));
  record store (J_renamed (id, n.name));
  mj_append store (M_rename (id, new_name));
  bump_index store id;
  n.name <- Some new_name;
  store.mutations <- store.mutations + 1

let set_content store id s =
  with_index_lock store @@ fun () ->
  let n = get store id in
  (match n.kind with
  | Text | Comment | Pi | Attribute -> ()
  | Document | Element ->
    update_error "cannot set content of a %s node" (kind_to_string n.kind));
  record store (J_content (id, n.content));
  mj_append store (M_set_content (id, s));
  bump_index store id;
  n.content <- s;
  store.mutations <- store.mutations + 1

(* Detach [id] from its parent (the paper's delete). Detaching an
   already parentless node is a no-op, matching the partial-function
   reading: the request "delete n" asks that n have no parent. *)
let detach store id =
  with_index_lock store @@ fun () ->
  let n = get store id in
  match n.parent with
  | None -> ()
  | Some pid ->
    bump_index store pid;  (* before the detach changes the root chain *)
    let p = get store pid in
    let vec = if n.kind = Attribute then p.attributes else p.children in
    let idx = n.pos in
    if idx >= Vec.length vec || Vec.get vec idx <> id then
      invalid_arg "Store.detach: corrupted position cache";
    Vec.remove_at vec idx;
    for i = idx to Vec.length vec - 1 do
      (get store (Vec.get vec i)).pos <- i
    done;
    record store
      (if n.kind = Attribute then J_detached_attr (id, pid, idx)
       else J_detached_child (id, pid, idx));
    mj_append store (M_detach id);
    n.parent <- None;
    n.pos <- 0;
    (* [id] just became its own root: bump it, so order keys built
       when it was last a root (before an earlier re-attach, during
       which its subtree may have changed under the *enclosing*
       root's versions) can never resurface as valid *)
    bump_index store id;
    store.mutations <- store.mutations + 1

(* Insert [nodes] under [parent]. Attribute nodes go to the attribute
   list (appended); other nodes are spliced into the child list at
   [position]. Preconditions (§3.2): every inserted node must be
   parentless; an [After n] position must denote a child of [parent];
   the parent must accept the node kind; no cycles. *)
let insert store ~parent:pid ~position nodes =
  with_index_lock store @@ fun () ->
  let p = get store pid in
  (match p.kind with
  | Element | Document -> ()
  | Attribute | Text | Comment | Pi ->
    update_error "cannot insert into a %s node" (kind_to_string p.kind));
  (* Validate all preconditions before mutating anything. *)
  List.iter
    (fun nid ->
      let n = get store nid in
      (match n.parent with
      | Some _ -> update_error "inserted node %d already has a parent" nid
      | None -> ());
      (match n.kind with
      | Document -> update_error "cannot insert a document node"
      | Attribute ->
        if p.kind <> Element then
          update_error "attributes can only be inserted into elements";
        (match n.name with
        | Some an ->
          if
            Vec.exists
              (fun aid ->
                match (get store aid).name with
                | Some bn -> Xqb_xml.Qname.equal an bn
                | None -> false)
              p.attributes
          then update_error "duplicate attribute %s" (Xqb_xml.Qname.to_string an)
        | None -> ())
      | Element | Text | Comment | Pi -> ());
      if nid = pid || is_ancestor store ~ancestor:nid pid then
        update_error "insertion would create a cycle")
    nodes;
  bump_index store pid;
  let base_idx =
    match position with
    | First -> 0
    | Last -> Vec.length p.children
    | After anchor ->
      let a = get store anchor in
      if a.parent <> Some pid || a.kind = Attribute then
        update_error "insertion anchor is not a child of the target parent";
      a.pos + 1
  in
  let inserted_children = ref 0 in
  List.iter
    (fun nid ->
      let n = get store nid in
      (* [nid] is still parentless here, i.e. its own root: bump it so
         order keys built on the detached subtree don't survive the
         attach (its nodes now live under [pid]'s root) *)
      bump_index store nid;
      if n.kind = Attribute then begin
        Vec.push p.attributes nid;
        n.parent <- Some pid;
        n.pos <- Vec.length p.attributes - 1;
        record store (J_attr_inserted (pid, nid))
      end
      else begin
        let idx = base_idx + !inserted_children in
        Vec.insert p.children idx nid;
        n.parent <- Some pid;
        incr inserted_children;
        for i = idx to Vec.length p.children - 1 do
          (get store (Vec.get p.children i)).pos <- i
        done;
        record store (J_child_inserted (pid, nid))
      end;
      store.mutations <- store.mutations + 1)
    nodes;
  (* recorded after the fact so a precondition failure above leaves
     the journal clean (nothing was mutated, nothing is replayed) *)
  mj_append store (M_insert (pid, position, nodes))

(* -- Deep copy (the [copy { e }] operator's data-model half) ------- *)

(* Caller holds [mu] (via [deep_copy]). *)
let rec deep_copy_rec store id =
  let n = get store id in
  let fresh =
    alloc_unlocked store n.kind n.name n.content
  in
  let f = get store fresh in
  Vec.iter
    (fun aid ->
      let c = deep_copy_rec store aid in
      Vec.push f.attributes c;
      (get store c).parent <- Some fresh;
      (get store c).pos <- Vec.length f.attributes - 1)
    n.attributes;
  Vec.iter
    (fun cid ->
      let c = deep_copy_rec store cid in
      Vec.push f.children c;
      (get store c).parent <- Some fresh;
      (get store c).pos <- Vec.length f.children - 1)
    n.children;
  fresh

(* The copy allocates and wires structure directly (bypassing
   [insert]), so it journals as one composite [M_deep_copy]: replay
   calls [deep_copy] again, which is deterministic given the same
   prior store. Inner allocs are suppressed for the duration. [mu]
   is held across the whole copy so the fresh id range is contiguous
   — replay re-executes the copy as one block, so an interleaved
   foreign allocation inside the range would shift every id after
   it. *)
let deep_copy store id =
  with_mu store @@ fun () ->
  let saved = store.mj_suspend in
  store.mj_suspend <- true;
  let fresh =
    Fun.protect
      ~finally:(fun () -> store.mj_suspend <- saved)
      (fun () -> deep_copy_rec store id)
  in
  mj_record store (M_deep_copy id);
  fresh

(* -- Document order ----------------------------------------------- *)

(* Rank of a node among its siblings: attributes order before child
   nodes of the same parent (XDM: attributes follow their element but
   precede its children). *)
let sibling_rank store id =
  let n = get store id in
  if n.kind = Attribute then (0, n.pos) else (1, n.pos)

(* Total order: within a tree, document order; across trees (including
   detached subtrees and freshly constructed nodes), by root id, which
   is creation order — stable and deterministic. The naive comparator
   allocates two full ancestor chains per call; it is the fallback
   (and the qcheck reference) for the keyed one below. *)
let compare_order_naive store a b =
  if a = b then 0
  else begin
    let chain id =
      let rec up acc id =
        match (get store id).parent with None -> id :: acc | Some p -> up (id :: acc) p
      in
      up [] id
    in
    let ca = chain a and cb = chain b in
    match ca, cb with
    | ra :: _, rb :: _ when ra <> rb -> compare ra rb
    | _ ->
      let rec walk ca cb =
        match ca, cb with
        | [], [] -> 0
        | [], _ :: _ -> -1 (* a is an ancestor of b: a first *)
        | _ :: _, [] -> 1
        | x :: ca', y :: cb' ->
          if x = y then walk ca' cb'
          else compare (sibling_rank store x) (sibling_rank store y)
      in
      walk ca cb
  end

(* Same total order, two array lookups when both keys are valid:
   across trees the roots compare like the naive root-id compare;
   within a tree pre-order is document order (ancestors first,
   attributes before children). Valid-only — never builds, so pure
   comparisons during a mutation phase just fall back. *)
let compare_order store a b =
  if a = b then 0
  else
    let ka = store.okeys.(a) and kb = store.okeys.(b) in
    if okey_valid store ka && okey_valid store kb then
      if ka.Order_key.root <> kb.Order_key.root then
        compare ka.Order_key.root kb.Order_key.root
      else compare ka.Order_key.pre kb.Order_key.pre
    else compare_order_naive store a b

(* Sort into document order and remove duplicates (the ddo applied to
   every path-expression result). The keyed path decorates each id
   with its (root, pre) key and sorts the triples with the polymorphic
   comparator — O(n log n) integer compares instead of O(n log n)
   chain walks. *)
let sort_doc_order store ids =
  match ids with
  | [] | [ _ ] -> ids
  | _ ->
    let rec decorate acc = function
      | [] -> Some (List.rev acc)
      | id :: rest ->
        (match ensure_key store id with
        | Some k -> decorate ((k.Order_key.root, k.Order_key.pre, id) :: acc) rest
        | None -> None)
    in
    (match decorate [] ids with
    | Some dec -> List.map (fun (_, _, id) -> id) (List.sort_uniq compare dec)
    | None -> List.sort_uniq (compare_order_naive store) ids)

(* Is [ids] already strictly in document order (sorted and duplicate
   free)? Builds keys, so the common already-sorted fast path through
   the ddo builtin costs O(n) lookups rather than n-1 chain walks. *)
let sorted_strict store ids =
  let lt a b =
    match ensure_key store a, ensure_key store b with
    | Some ka, Some kb ->
      (if ka.Order_key.root <> kb.Order_key.root then
         compare ka.Order_key.root kb.Order_key.root
       else compare ka.Order_key.pre kb.Order_key.pre)
      < 0
    | _ -> compare_order_naive store a b < 0
  in
  let rec go = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> lt a b && go rest
  in
  go ids

(* -- Serialization ------------------------------------------------ *)

let rec add_events store acc id =
  let n = get store id in
  match n.kind with
  | Document -> Vec.fold (fun acc c -> add_events store acc c) acc n.children
  | Element ->
    let name = match n.name with Some q -> q | None -> Xqb_xml.Qname.make "_" in
    let attrs =
      Vec.fold
        (fun acc aid ->
          let a = get store aid in
          match a.name with
          | Some an -> (an, a.content) :: acc
          | None -> acc)
        [] n.attributes
      |> List.rev
    in
    let acc = Xqb_xml.Event.Start_element (name, attrs) :: acc in
    let acc = Vec.fold (fun acc c -> add_events store acc c) acc n.children in
    Xqb_xml.Event.End_element name :: acc
  | Text -> Xqb_xml.Event.Text n.content :: acc
  | Comment -> Xqb_xml.Event.Comment n.content :: acc
  | Pi ->
    let target = match n.name with Some q -> Xqb_xml.Qname.to_string q | None -> "" in
    Xqb_xml.Event.Pi (target, n.content) :: acc
  | Attribute -> acc (* standalone attributes have no event form *)

let events_of_node store id = List.rev (add_events store [] id)

let serialize store id =
  let n = get store id in
  match n.kind with
  | Attribute ->
    (match n.name with
    | Some an ->
      Printf.sprintf "%s=\"%s\"" (Xqb_xml.Qname.to_string an) (Xqb_xml.Escape.attr n.content)
    | None -> "")
  | Document | Element | Text | Comment | Pi ->
    Xqb_xml.Xml_writer.to_string (events_of_node store id)

(* -- Loading ------------------------------------------------------ *)

(* Build a document node from an event stream. *)
let load_events store events =
  let doc = make_document store in
  let stack = ref [ doc ] in
  let top () = match !stack with t :: _ -> t | [] -> assert false in
  List.iter
    (fun (e : Xqb_xml.Event.t) ->
      match e with
      | Start_element (name, attrs) ->
        let el = make_element store name in
        let attr_ids =
          List.map (fun (an, av) -> make_attribute store an av) attrs
        in
        insert store ~parent:el ~position:Last attr_ids;
        insert store ~parent:(top ()) ~position:Last [ el ];
        stack := el :: !stack
      | End_element _ -> (
        match !stack with
        | _ :: rest -> stack := rest
        | [] -> assert false)
      | Text s -> insert store ~parent:(top ()) ~position:Last [ make_text store s ]
      | Comment s -> insert store ~parent:(top ()) ~position:Last [ make_comment store s ]
      | Pi (t, c) -> insert store ~parent:(top ()) ~position:Last [ make_pi store t c ])
    events;
  doc

let load_string ?keep_ws store src =
  load_events store (Xqb_xml.Xml_parser.parse ?keep_ws src)

(* -- Invariant checking (used by tests and failure injection) ------ *)

let validate store =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  for id = 0 to store.next_id - 1 do
    let n = store.tbl.(id) in
    if n.id <> id then err "node %d has wrong id %d" id n.id;
    (match n.parent with
    | Some pid ->
      let p = get store pid in
      let vec = if n.kind = Attribute then p.attributes else p.children in
      if not (n.pos >= 0 && n.pos < Vec.length vec && Vec.get vec n.pos = id) then
        err "node %d: position cache does not match parent %d" id pid
    | None -> ());
    Vec.iter
      (fun cid ->
        let c = get store cid in
        if c.parent <> Some id then err "child %d of %d has parent %s" cid id
            (match c.parent with None -> "none" | Some p -> string_of_int p);
        if c.kind = Attribute then err "attribute %d stored as child of %d" cid id;
        if c.kind = Document then err "document %d stored as child of %d" cid id)
      n.children;
    Vec.iter
      (fun aid ->
        let a = get store aid in
        if a.parent <> Some id then err "attribute %d of %d has wrong parent" aid id;
        if a.kind <> Attribute then err "non-attribute %d in attribute list of %d" aid id)
      n.attributes
  done;
  List.rev !errors

(* -- Element-name index -------------------------------------------- *)

(* Elements named [q] among the descendants of [root], in document
   order — the workhorse of [e//name] steps. Results are cached per
   parentless root and invalidated (wholesale, by version) on any
   store mutation; descendant queries from attached context nodes are
   computed directly, keeping the cache's memory linear in the store. *)
let descendants_by_name store root q =
  let compute ctxnode =
    let out = ref [] in
    let rec walk id =
      let n = get store id in
      (match n.kind, n.name with
      | Element, Some nm when Xqb_xml.Qname.equal nm q -> out := id :: !out
      | _ -> ());
      Vec.iter walk n.children
    in
    let n = get store ctxnode in
    Vec.iter walk n.children;
    List.rev !out
  in
  if not store.index_enabled then compute root
  else if (get store root).parent <> None then compute root
  else
    with_index_lock store (fun () ->
    begin
    (* size-bounded: stale generations accumulate until this reset *)
    if Hashtbl.length store.name_index > 65536 then begin
      Hashtbl.reset store.name_index;
      Hashtbl.reset store.indexed_roots;
      Hashtbl.reset store.key_index
    end;
    let n = get store root in
    begin
      let version = root_version store root in
      if not (Hashtbl.mem store.indexed_roots (root, version)) then begin
        (* one DFS filling the per-name buckets for this generation *)
        let buckets : (string, node_id list ref) Hashtbl.t = Hashtbl.create 32 in
        let rec walk id =
          let nd = get store id in
          (match nd.kind, nd.name with
          | Element, Some nm ->
            let key = Xqb_xml.Qname.to_string nm in
            (match Hashtbl.find_opt buckets key with
            | Some l -> l := id :: !l
            | None -> Hashtbl.add buckets key (ref [ id ]))
          | _ -> ());
          Vec.iter walk nd.children
        in
        Vec.iter walk n.children;
        Hashtbl.iter
          (fun name l ->
            Hashtbl.replace store.name_index (root, version, name) (List.rev !l))
          buckets;
        Hashtbl.replace store.indexed_roots (root, version) ()
      end;
      match
        Hashtbl.find_opt store.name_index (root, version, Xqb_xml.Qname.to_string q)
      with
      | Some l -> l
      | None -> []
    end
    end)

(* Attribute value of [elem] for [attr], if present. *)
let attr_value store elem attr =
  let n = get store elem in
  let found = ref None in
  Vec.iter
    (fun aid ->
      let a = get store aid in
      match a.name with
      | Some an when Xqb_xml.Qname.equal an attr && !found = None ->
        found := Some a.content
      | _ -> ())
    n.attributes;
  !found

(* Elements [elem] under [root] whose @[attr] string-equals [value] —
   the hash path behind //elem[@attr = $v] when $v is a string. Shares
   the name index's cache policy and invalidation. *)
let lookup_by_key store root ~elem ~attr value =
  let candidates () = descendants_by_name store root elem in
  let scan () =
    List.filter
      (fun e -> attr_value store e attr = Some value)
      (candidates ())
  in
  if not store.index_enabled then scan ()
  else begin
    (* [candidates] takes the index lock itself, so it must run
       before we acquire it (the lock is not reentrant) *)
    let base = candidates () in
    let n = get store root in
    if n.parent <> None then
      List.filter (fun e -> attr_value store e attr = Some value) base
    else
      with_index_lock store (fun () ->
      begin
      let key =
        ( root,
          root_version store root,
          Xqb_xml.Qname.to_string elem,
          Xqb_xml.Qname.to_string attr )
      in
      let tbl =
        match Hashtbl.find_opt store.key_index key with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 64 in
          List.iter
            (fun e ->
              match attr_value store e attr with
              | Some v ->
                let prev = Option.value ~default:[] (Hashtbl.find_opt tbl v) in
                Hashtbl.replace tbl v (e :: prev)
              | None -> ())
            base;
          (* store buckets in document order *)
          Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) tbl;
          Hashtbl.add store.key_index key tbl;
          tbl
      in
      Option.value ~default:[] (Hashtbl.find_opt tbl value)
      end)
  end

(* Count nodes that are not reachable from any document node —
   §4.1's "persistent but unreachable nodes" produced by the detach
   semantics (candidates for garbage collection). *)
let detached_count store =
  let n = ref 0 in
  for id = 0 to store.next_id - 1 do
    let node = store.tbl.(id) in
    if node.parent = None && node.kind <> Document then incr n
  done;
  !n

(* -- Stable node paths (observability) ----------------------------- *)

(* One path step: the node's label with its 1-based index among
   same-label siblings ("africa[1]", "text()[2]", "@id"). *)
let path_segment store id =
  let n = get store id in
  match n.kind with
  | Attribute ->
    "@" ^ (match n.name with Some q -> Xqb_xml.Qname.to_string q | None -> "?")
  | _ ->
    let label =
      match n.kind with
      | Element -> (
        match n.name with Some q -> Xqb_xml.Qname.to_string q | None -> "*")
      | Text -> "text()"
      | Comment -> "comment()"
      | Pi -> "processing-instruction()"
      | Document -> "document()"
      | Attribute -> assert false
    in
    (match n.parent with
    | None -> label
    | Some pid ->
      let p = get store pid in
      let seen = ref 0 and mine = ref 0 in
      Vec.iter
        (fun cid ->
          let c = get store cid in
          let same =
            match n.kind, c.kind with
            | Element, Element -> (
              match n.name, c.name with
              | Some a, Some b -> Xqb_xml.Qname.equal a b
              | _ -> false)
            | ka, kb -> ka = kb
          in
          if same then begin
            incr seen;
            if cid = id then mine := !seen
          end)
        p.children;
      Printf.sprintf "%s[%d]" label !mine)

(* Stable, human-readable path from the node's root
   ("/site[1]/regions[1]/africa[1]"; attributes end in "/@name").
   Nodes under a detached (non-document) root are prefixed with the
   root's id so operators can tell the trees apart; unknown ids render
   as "#<id>". *)
let node_path store id =
  if id < 0 || id >= store.next_id then Printf.sprintf "#%d" id
  else begin
    let rec up id acc =
      let n = get store id in
      match n.parent with
      | None ->
        if n.kind = Document then "/" ^ String.concat "/" acc
        else
          String.concat "/"
            (Printf.sprintf "%s#%d" (path_segment store id) id :: acc)
      | Some pid -> up pid (path_segment store id :: acc)
    in
    up id []
  end
