(** The dynamic context (dynEnv of §3.4) plus the machinery the formal
    semantics leaves implicit: the store handle, the snap stack, the
    seeded RNG for the nondeterministic semantics, module-level
    globals and the document registry backing fn:doc.

    Variable bindings ([env]) and the focus are threaded functionally
    by the evaluator. *)

module SMap : Map.S with type key = string

type focus = { item : Xqb_xdm.Item.t; position : int; size : int }

type env = Xqb_xdm.Value.t SMap.t

(** A user-declared function. [updating] is the §5 flag inferred by
    {!Static.classify_functions}. *)
type func = {
  params : (string * Xqb_syntax.Ast.seq_type option) list;
  return_type : Xqb_syntax.Ast.seq_type option;
  body : Core_ast.expr;
  updating : bool;
}

type t = {
  store : Xqb_store.Store.t;
  functions : (string * int, func) Hashtbl.t;
  snaps : Snap_stack.t;
  rand : Random.State.t;
  docs : (string, Xqb_store.Store.node_id) Hashtbl.t;
  mutable doc_lookup : (string -> Xqb_store.Store.node_id option) option;
      (** secondary registry consulted on a [docs] miss before the
          resolver (the service's shared catalog); lookup only, never
          loads *)
  mutable doc_resolver : (string -> string) option;
  mutable globals : env;
  mutable on_apply : (Update.delta -> Apply.mode -> unit) option;
      (** observability hook: called with each ∆ right before a snap
          applies it *)
  mutable apply_wrap : ((unit -> unit) -> unit) option;
      (** concurrency hook: when set, each snap's apply phase runs
          inside this wrapper. The service's footprint scheduler
          points it at the global apply mutex (plus WAL group commit)
          so footprint-disjoint writers evaluate concurrently while ∆
          application stays serial. [None] = apply inline. Cleared by
          {!fork_read}. *)
  mutable steps_evaluated : int;  (** instrumentation *)
  mutable ddo_elided : int;
      (** instrumentation: statically elided ddo sorts reached at
          runtime *)
  mutable budget : Xqb_governor.Budget.t option;
      (** resource budget charged at evaluation checkpoints; [None] =
          ungoverned. Install via {!Engine.with_budget}, which also
          mirrors it into the domain-local slot the store layer
          reads. Copied by {!fork_read}. *)
  mutable tracer : Xqb_obs.Trace.t option;
      (** per-query span tracer; [None] = off (one option match per
          instrumentation point). Install via {!Engine.with_tracer}.
          Copied by {!fork_read} so fork spans land in the same
          trace. *)
  delta_stats : Update.stats;
      (** ∆ introspection counters (applied snaps, requests by kind,
          snap-depth histogram, conflict checks) — behind the DELTA
          wire command and [--show-delta]. Fresh in {!fork_read}. *)
  mutable apply_ns : int;
      (** cumulative wall time spent applying ∆s (every snap's apply
          phase), feeding the service's slow-effect log *)
}

(** Fresh context; [seed] drives the nondeterministic application
    order. *)
val create : ?seed:int -> ?store:Xqb_store.Store.t -> unit -> t

(** A read-only fork for concurrent evaluation: shares the store but
    snapshots all other mutable state (function/document tables are
    copied, snap stack and RNG are fresh, [doc_resolver] is dropped so
    a fork can never load new XML into the shared store). Evaluating
    a {!Static.prog_parallel_safe} program in a fork touches no state
    another fork can observe. *)
val fork_read : t -> t

val declare_function : t -> Xqb_xml.Qname.t -> int -> func -> unit
val find_function : t -> Xqb_xml.Qname.t -> int -> func option

val register_doc : t -> string -> Xqb_store.Store.node_id -> unit

(** Registry lookup, falling back to [doc_lookup] then
    [doc_resolver]; raises FODC0002 when unresolvable. *)
val resolve_doc : t -> string -> Xqb_store.Store.node_id

(** [span ctx name f] runs [f] under a tracing span when a tracer is
    installed (one option match when not). Governed contexts get a
    [fuel] arg on the span: budget steps charged while it was open. *)
val span : ?cat:string -> t -> string -> (unit -> 'a) -> 'a

val empty_env : env
val bind : env -> string -> Xqb_xdm.Value.t -> env

(** @raise Xqb_xdm.Errors.Dynamic_error (XPST0008) when unbound. *)
val lookup : env -> string -> Xqb_xdm.Value.t
