(* Conflict detection for the conflict-detection snap semantics
   (§3.2): before applying a ∆, try to prove that every permutation of
   its ordered application would produce the same store. If the proof
   fails, update application fails (and the snap leaves the store
   unchanged).

   As in the paper (§4.1), verification is linear in |∆| using hash
   tables over node ids. The rules are deliberately simple and
   conservative — the paper concedes the approach "rules out many
   reasonable pieces of code":

   R1. two inserts targeting the same slot — same (parent, First),
       same (parent, Last), or the same Before/After anchor — conflict
       (their relative order determines sibling order);
   R2. an insert anchored Before/After node n conflicts with a delete
       of n (after the detach the anchor precondition fails);
   R3. a node may be inserted by at most one request (a second insert
       of the same node fails only in some orders);
   R4. deleting node n conflicts with inserting n (attached vs
       detached final states differ);
   R5. two renames of the same node conflict unless they agree on the
       new name;
   R6. two set-values of the same node conflict unless they agree on
       the value, and a set-value conflicts with an insert into or a
       delete of a child of the same element (we approximate the child
       relation conservatively: set-value on node n conflicts with any
       insert whose parent is n and any delete — of n itself);
   R7. (store-assisted, see [check]'s [?store]) a set-value targeting
       an element/document node conflicts with any structural request
       — insert parent, insert anchor, or delete — strictly inside
       that node's subtree, tested with the store's O(1) pre/post
       order keys. Conservative: set-value on an element detaches the
       children it finds at application time, so proving commutativity
       against interior structural work needs detach-idempotence
       reasoning over every permutation; like R1-R6 we reject the pair
       instead of attempting the proof.

   A detected conflict is *structured* ([Conflict_error]): the rule
   violated, both offending requests with their provenance, and the
   node at issue, rendered by [explain] into sentences like
   "R4: node /site/regions[1]/africa[1] inserted at 3:12 and deleted
   at 7:5". The hash tables therefore store the claiming request, not
   unit, so the first offender can be cited when the second arrives. *)

module S = Xqb_store.Store

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"

type conflict = {
  rule : rule;
  first : Update.request;  (* the earlier request of the pair *)
  second : Update.request;  (* the one that exposed the conflict *)
  subject : S.node_id option;  (* the node at issue, if one *)
  describe :
    node:(S.node_id -> string) -> site1:string -> site2:string -> string;
    (* the sentence body; [explain] supplies the node renderer and the
       two provenance sites *)
}

exception Conflict_error of conflict

let raise_conflict rule ~first ~second ?subject describe =
  raise (Conflict_error { rule; first; second; subject; describe })

let site_of (r : Update.request) =
  if Update.has_location r.prov then
    Printf.sprintf "%d:%d" r.prov.src_line r.prov.src_col
  else "<unknown source>"

let explain ?store (c : conflict) =
  let node n =
    match store with
    | Some s -> S.node_path s n
    | None -> Printf.sprintf "#%d" n
  in
  Printf.sprintf "%s: %s" (rule_id c.rule)
    (c.describe ~node ~site1:(site_of c.first) ~site2:(site_of c.second))

let to_string c = explain c

type slot =
  | Slot_first of S.node_id
  | Slot_last of S.node_id
  | Slot_before of S.node_id
  | Slot_after of S.node_id

let slot_describe node = function
  | Slot_first p -> "as first into " ^ node p
  | Slot_last p -> "as last into " ^ node p
  | Slot_before a -> "before " ^ node a
  | Slot_after a -> "after " ^ node a

let slot_subject = function
  | Slot_first p | Slot_last p -> p
  | Slot_before a | Slot_after a -> a

(* Raises [Conflict_error] if the ∆ cannot be proven
   order-independent. [store] enables the R7 subtree tests (keyed,
   O(1) each). *)
let check ?store (delta : Update.delta) =
  let slots : (slot, Update.request) Hashtbl.t = Hashtbl.create 64 in
  let inserted : (S.node_id, Update.request) Hashtbl.t = Hashtbl.create 64 in
  let anchors : (S.node_id, Update.request) Hashtbl.t = Hashtbl.create 64 in
  let deleted : (S.node_id, Update.request) Hashtbl.t = Hashtbl.create 64 in
  let renamed : (S.node_id, Xqb_xml.Qname.t * Update.request) Hashtbl.t =
    Hashtbl.create 16
  in
  let set_valued : (S.node_id, string * Update.request) Hashtbl.t =
    Hashtbl.create 16
  in
  let insert_parents : (S.node_id, Update.request) Hashtbl.t =
    Hashtbl.create 16
  in
  let claim_slot r s =
    match Hashtbl.find_opt slots s with
    | Some prior ->
      raise_conflict R1 ~first:prior ~second:r ~subject:(slot_subject s)
        (fun ~node ~site1 ~site2 ->
          Printf.sprintf "two inserts (at %s and %s) target the same slot: %s"
            site1 site2 (slot_describe node s))
    | None -> Hashtbl.add slots s r
  in
  List.iter
    (fun (r : Update.request) ->
      match r.Update.op with
      | Update.Insert { nodes; parent; position } ->
        Hashtbl.replace insert_parents parent r;
        (match Hashtbl.find_opt set_valued parent with
        | Some (_, prior) ->
          raise_conflict R6 ~first:prior ~second:r ~subject:parent
            (fun ~node ~site1 ~site2 ->
              Printf.sprintf
                "node %s value-set at %s and inserted into at %s" (node parent)
                site1 site2)
        | None -> ());
        (match position with
        | Update.First -> claim_slot r (Slot_first parent)
        | Update.Last -> claim_slot r (Slot_last parent)
        | Update.Before a | Update.After a ->
          claim_slot r
            (match position with
            | Update.Before _ -> Slot_before a
            | _ -> Slot_after a);
          Hashtbl.replace anchors a r;
          (match Hashtbl.find_opt deleted a with
          | Some prior ->
            raise_conflict R2 ~first:prior ~second:r ~subject:a
              (fun ~node ~site1 ~site2 ->
                Printf.sprintf
                  "node %s deleted at %s and used as an insert anchor at %s"
                  (node a) site1 site2)
          | None -> ()));
        List.iter
          (fun n ->
            (match Hashtbl.find_opt inserted n with
            | Some prior ->
              raise_conflict R3 ~first:prior ~second:r ~subject:n
                (fun ~node ~site1 ~site2 ->
                  Printf.sprintf "node %s inserted twice, at %s and %s"
                    (node n) site1 site2)
            | None -> Hashtbl.add inserted n r);
            match Hashtbl.find_opt deleted n with
            | Some prior ->
              raise_conflict R4 ~first:prior ~second:r ~subject:n
                (fun ~node ~site1 ~site2 ->
                  Printf.sprintf "node %s deleted at %s and inserted at %s"
                    (node n) site1 site2)
            | None -> ())
          nodes
      | Update.Delete n -> (
        Hashtbl.replace deleted n r;
        (match Hashtbl.find_opt anchors n with
        | Some prior ->
          raise_conflict R2 ~first:prior ~second:r ~subject:n
            (fun ~node ~site1 ~site2 ->
              Printf.sprintf
                "node %s used as an insert anchor at %s and deleted at %s"
                (node n) site1 site2)
        | None -> ());
        (match Hashtbl.find_opt inserted n with
        | Some prior ->
          raise_conflict R4 ~first:prior ~second:r ~subject:n
            (fun ~node ~site1 ~site2 ->
              Printf.sprintf "node %s inserted at %s and deleted at %s"
                (node n) site1 site2)
        | None -> ());
        match Hashtbl.find_opt set_valued n with
        | Some (_, prior) ->
          raise_conflict R6 ~first:prior ~second:r ~subject:n
            (fun ~node ~site1 ~site2 ->
              Printf.sprintf "node %s value-set at %s and deleted at %s"
                (node n) site1 site2)
        | None -> ())
      | Update.Rename (n, q) -> (
        match Hashtbl.find_opt renamed n with
        | Some (q', prior) when not (Xqb_xml.Qname.equal q q') ->
          raise_conflict R5 ~first:prior ~second:r ~subject:n
            (fun ~node ~site1 ~site2 ->
              Printf.sprintf "node %s renamed to %s at %s and to %s at %s"
                (node n)
                (Xqb_xml.Qname.to_string q')
                site1
                (Xqb_xml.Qname.to_string q)
                site2)
        | Some _ -> ()
        | None -> Hashtbl.add renamed n (q, r))
      | Update.Set_value (n, s) -> (
        (match Hashtbl.find_opt insert_parents n with
        | Some prior ->
          raise_conflict R6 ~first:prior ~second:r ~subject:n
            (fun ~node ~site1 ~site2 ->
              Printf.sprintf "node %s inserted into at %s and value-set at %s"
                (node n) site1 site2)
        | None -> ());
        (match Hashtbl.find_opt deleted n with
        | Some prior ->
          raise_conflict R6 ~first:prior ~second:r ~subject:n
            (fun ~node ~site1 ~site2 ->
              Printf.sprintf "node %s deleted at %s and value-set at %s"
                (node n) site1 site2)
        | None -> ());
        match Hashtbl.find_opt set_valued n with
        | Some (s', prior) when not (String.equal s s') ->
          raise_conflict R6 ~first:prior ~second:r ~subject:n
            (fun ~node ~site1 ~site2 ->
              Printf.sprintf
                "node %s set to %S at %s and to %S at %s" (node n) s' site1 s
                site2)
        | Some _ -> ()
        | None -> Hashtbl.add set_valued n (s, r)))
    delta;
  (* R7: set-value on an element/document vs structural work strictly
     inside its subtree. One keyed interval test per (set-valued
     element × structural node) pair; element-targeted set-values are
     rare in practice, so this pass is almost always a no-op. *)
  match store with
  | None -> ()
  | Some store ->
    Hashtbl.iter
      (fun n (_, (sv_req : Update.request)) ->
        match S.kind store n with
        | S.Element | S.Document ->
          let inside kind_s (tbl : (S.node_id, Update.request) Hashtbl.t) =
            Hashtbl.iter
              (fun m (req : Update.request) ->
                if S.is_descendant store ~ancestor:n m then
                  raise_conflict R7 ~first:sv_req ~second:req ~subject:m
                    (fun ~node ~site1 ~site2 ->
                      Printf.sprintf
                        "node %s value-set at %s while %s %s inside its \
                         subtree at %s"
                        (node n) site1 kind_s (node m) site2))
              tbl
          in
          inside "insert targets" insert_parents;
          inside "insert anchors on" anchors;
          inside "delete detaches" deleted
        | _ -> ())
      set_valued

let is_conflict_free delta =
  match check delta with () -> true | exception Conflict_error _ -> false
