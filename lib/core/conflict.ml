(* Conflict detection for the conflict-detection snap semantics
   (§3.2): before applying a ∆, try to prove that every permutation of
   its ordered application would produce the same store. If the proof
   fails, update application fails (and the snap leaves the store
   unchanged).

   As in the paper (§4.1), verification is linear in |∆| using hash
   tables over node ids. The rules are deliberately simple and
   conservative — the paper concedes the approach "rules out many
   reasonable pieces of code":

   R1. two inserts targeting the same slot — same (parent, First),
       same (parent, Last), or the same Before/After anchor — conflict
       (their relative order determines sibling order);
   R2. an insert anchored Before/After node n conflicts with a delete
       of n (after the detach the anchor precondition fails);
   R3. a node may be inserted by at most one request (a second insert
       of the same node fails only in some orders);
   R4. deleting node n conflicts with inserting n (attached vs
       detached final states differ);
   R5. two renames of the same node conflict unless they agree on the
       new name;
   R6. two set-values of the same node conflict unless they agree on
       the value, and a set-value conflicts with an insert into or a
       delete of a child of the same element (we approximate the child
       relation conservatively: set-value on node n conflicts with any
       insert whose parent is n and any delete — of n itself);
   R7. (store-assisted, see [check]'s [?store]) a set-value targeting
       an element/document node conflicts with any structural request
       — insert parent, insert anchor, or delete — strictly inside
       that node's subtree, tested with the store's O(1) pre/post
       order keys. Conservative: set-value on an element detaches the
       children it finds at application time, so proving commutativity
       against interior structural work needs detach-idempotence
       reasoning over every permutation; like R1-R6 we reject the pair
       instead of attempting the proof. *)

exception Conflict of string

let conflict fmt = Format.kasprintf (fun s -> raise (Conflict s)) fmt

type slot =
  | Slot_first of Xqb_store.Store.node_id
  | Slot_last of Xqb_store.Store.node_id
  | Slot_before of Xqb_store.Store.node_id
  | Slot_after of Xqb_store.Store.node_id

(* Raises [Conflict] if the ∆ cannot be proven order-independent.
   [store] enables the R7 subtree tests (keyed, O(1) each). *)
let check ?store (delta : Update.delta) =
  let slots : (slot, unit) Hashtbl.t = Hashtbl.create 64 in
  let inserted : (Xqb_store.Store.node_id, unit) Hashtbl.t = Hashtbl.create 64 in
  let anchors : (Xqb_store.Store.node_id, unit) Hashtbl.t = Hashtbl.create 64 in
  let deleted : (Xqb_store.Store.node_id, unit) Hashtbl.t = Hashtbl.create 64 in
  let renamed : (Xqb_store.Store.node_id, Xqb_xml.Qname.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let set_valued : (Xqb_store.Store.node_id, string) Hashtbl.t = Hashtbl.create 16 in
  let insert_parents : (Xqb_store.Store.node_id, unit) Hashtbl.t = Hashtbl.create 16 in
  let claim_slot s =
    if Hashtbl.mem slots s then
      conflict "two inserts target the same position (R1)"
    else Hashtbl.add slots s ()
  in
  List.iter
    (fun (r : Update.request) ->
      match r with
      | Update.Insert { nodes; parent; position } ->
        Hashtbl.replace insert_parents parent ();
        if Hashtbl.mem set_valued parent then
          conflict "insert into node %d whose value is also set (R6)" parent;
        (match position with
        | Update.First -> claim_slot (Slot_first parent)
        | Update.Last -> claim_slot (Slot_last parent)
        | Update.Before a ->
          claim_slot (Slot_before a);
          Hashtbl.replace anchors a ();
          if Hashtbl.mem deleted a then
            conflict "insert anchored on node %d which is also deleted (R2)" a
        | Update.After a ->
          claim_slot (Slot_after a);
          Hashtbl.replace anchors a ();
          if Hashtbl.mem deleted a then
            conflict "insert anchored on node %d which is also deleted (R2)" a);
        List.iter
          (fun n ->
            if Hashtbl.mem inserted n then
              conflict "node %d inserted twice (R3)" n;
            Hashtbl.add inserted n ();
            if Hashtbl.mem deleted n then
              conflict "node %d both inserted and deleted (R4)" n)
          nodes
      | Update.Delete n ->
        Hashtbl.replace deleted n ();
        if Hashtbl.mem anchors n then
          conflict "delete of node %d used as an insert anchor (R2)" n;
        if Hashtbl.mem inserted n then
          conflict "node %d both inserted and deleted (R4)" n;
        if Hashtbl.mem set_valued n then
          conflict "set-value of deleted node %d (R6)" n
      | Update.Rename (n, q) -> (
        match Hashtbl.find_opt renamed n with
        | Some q' when not (Xqb_xml.Qname.equal q q') ->
          conflict "node %d renamed to both %s and %s (R5)" n
            (Xqb_xml.Qname.to_string q') (Xqb_xml.Qname.to_string q)
        | Some _ -> ()
        | None -> Hashtbl.add renamed n q)
      | Update.Set_value (n, s) -> (
        if Hashtbl.mem insert_parents n then
          conflict "set-value of node %d which also receives inserts (R6)" n;
        if Hashtbl.mem deleted n then
          conflict "set-value of deleted node %d (R6)" n;
        match Hashtbl.find_opt set_valued n with
        | Some s' when not (String.equal s s') ->
          conflict "node %d set to two different values (R6)" n
        | Some _ -> ()
        | None -> Hashtbl.add set_valued n s))
    delta;
  (* R7: set-value on an element/document vs structural work strictly
     inside its subtree. One keyed interval test per (set-valued
     element × structural node) pair; element-targeted set-values are
     rare in practice, so this pass is almost always a no-op. *)
  match store with
  | None -> ()
  | Some store ->
    Hashtbl.iter
      (fun n _ ->
        match Xqb_store.Store.kind store n with
        | Xqb_store.Store.Element | Xqb_store.Store.Document ->
          let inside kind_s tbl =
            Hashtbl.iter
              (fun m () ->
                if Xqb_store.Store.is_descendant store ~ancestor:n m then
                  conflict "set-value of node %d vs %s %d inside its subtree (R7)"
                    n kind_s m)
              tbl
          in
          inside "insert under" insert_parents;
          inside "insert anchored on" anchors;
          inside "delete of" deleted
        | _ -> ())
      set_valued

let is_conflict_free delta =
  match check delta with () -> true | exception Conflict _ -> false
