(* The dynamic context (dynEnv of §3.4) plus the implementation
   machinery the formal semantics leaves implicit: the store handle,
   the snap stack, the seeded RNG for the nondeterministic semantics
   and the document registry backing fn:doc.

   Variable bindings and the focus (context item / position / size)
   are *not* in here — the evaluator threads them functionally, which
   matches the substitution-style formal rules and makes scoping bugs
   impossible. *)

module SMap = Map.Make (String)

type focus = { item : Xqb_xdm.Item.t; position : int; size : int }

type env = Xqb_xdm.Value.t SMap.t

type func = {
  params : (string * Xqb_syntax.Ast.seq_type option) list;
  return_type : Xqb_syntax.Ast.seq_type option;
  body : Core_ast.expr;
  updating : bool;  (* inferred by [Static]; see §5 *)
}

type t = {
  store : Xqb_store.Store.t;
  functions : (string * int, func) Hashtbl.t;  (* qname string, arity *)
  snaps : Snap_stack.t;
  rand : Random.State.t;
  docs : (string, Xqb_store.Store.node_id) Hashtbl.t;
  mutable doc_lookup : (string -> Xqb_store.Store.node_id option) option;
    (* secondary registry consulted on a [docs] miss before the
       resolver — the service layer points it at the shared document
       catalog. Must not load anything: lookup only. *)
  mutable doc_resolver : (string -> string) option;  (* uri -> XML text *)
  mutable globals : Xqb_xdm.Value.t SMap.t;  (* module-level variables *)
  mutable on_apply : (Update.delta -> Apply.mode -> unit) option;
    (* observability hook: called with each ∆ right before a snap
       applies it (CLI --trace-updates) *)
  mutable apply_wrap : ((unit -> unit) -> unit) option;
    (* concurrency hook: when set, the top-level snap's apply phase
       (Apply.apply plus its timing) runs inside this wrapper. The
       service's footprint scheduler points it at a global apply
       mutex + WAL group commit so footprint-disjoint writers can
       *evaluate* concurrently while ∆ application stays serial.
       None = apply inline (CLI, exclusive jobs). *)
  mutable steps_evaluated : int;  (* instrumentation for the benches *)
  mutable ddo_elided : int;
    (* instrumentation: statically elided ddo sorts actually reached
       at runtime (the "%ddo-elided" builtin / plan node) *)
  mutable budget : Xqb_governor.Budget.t option;
    (* resource budget charged by the evaluator (and, via the
       domain-local mirror, by store axis iteration); None = ungoverned.
       Installed around a run by [Engine.with_budget]. *)
  mutable tracer : Xqb_obs.Trace.t option;
    (* per-query span tracer; None = tracing off, so every
       instrumentation point costs one option match. Installed around
       a run by [Engine.with_tracer]. *)
  delta_stats : Update.stats;
    (* ∆ introspection: per-evaluation counters of applied snaps,
       requests by kind, snap-depth histogram, conflict checks —
       behind the DELTA wire command and --show-delta *)
  mutable apply_ns : int;
    (* cumulative wall time this evaluation spent applying ∆s (the
       apply phase of every snap), feeding the service's slow-effect
       log *)
}

let create ?(seed = 0x5eed) ?store () =
  let store = match store with Some s -> s | None -> Xqb_store.Store.create () in
  {
    store;
    functions = Hashtbl.create 16;
    snaps = Snap_stack.create ();
    rand = Random.State.make [| seed |];
    docs = Hashtbl.create 4;
    doc_lookup = None;
    doc_resolver = None;
    globals = SMap.empty;
    on_apply = None;
    apply_wrap = None;
    steps_evaluated = 0;
    ddo_elided = 0;
    budget = None;
    tracer = None;
    delta_stats = Update.stats_create ();
    apply_ns = 0;
  }

(* A read-only fork for concurrent evaluation (the service layer's
   purity-gated scheduler): shares the store, but snapshots every
   other piece of mutable state so evaluation in the fork can never
   race with the parent session. The function and document tables are
   copied (cheap — they are small), the snap stack and RNG are fresh,
   and the doc resolver is dropped: a fork may *look up* already
   registered documents but must never load new XML into the shared
   store. *)
let fork_read ctx =
  {
    store = ctx.store;
    functions = Hashtbl.copy ctx.functions;
    snaps = Snap_stack.create ();
    rand = Random.State.make [| 0x5eed |];
    docs = Hashtbl.copy ctx.docs;
    doc_lookup = ctx.doc_lookup;  (* lookup-only: safe in a fork *)
    doc_resolver = None;
    globals = ctx.globals;
    on_apply = None;
    apply_wrap = None;
    steps_evaluated = 0;
    ddo_elided = 0;
    budget = ctx.budget;  (* a governed session's forks inherit its budget *)
    tracer = ctx.tracer;  (* spans from the fork land in the same trace *)
    delta_stats = Update.stats_create ();  (* forks are read-only anyway *)
    apply_ns = 0;
  }

let declare_function ctx name arity (f : func) =
  Hashtbl.replace ctx.functions (Xqb_xml.Qname.to_string name, arity) f

let find_function ctx name arity =
  Hashtbl.find_opt ctx.functions (Xqb_xml.Qname.to_string name, arity)

let register_doc ctx uri node = Hashtbl.replace ctx.docs uri node

let resolve_doc ctx uri =
  match Hashtbl.find_opt ctx.docs uri with
  | Some n -> n
  | None -> (
    match (match ctx.doc_lookup with Some f -> f uri | None -> None) with
    | Some n ->
      Hashtbl.replace ctx.docs uri n;
      n
    | None -> (
      match ctx.doc_resolver with
      | None -> Xqb_xdm.Errors.raise_error "FODC0002" "document %S not found" uri
      | Some resolve ->
        let xml = resolve uri in
        let n = Xqb_store.Store.load_string ctx.store xml in
        Hashtbl.replace ctx.docs uri n;
        n))

(* Run [f] under a tracing span when a tracer is installed — one
   option match when not, which is the whole cost of disabled
   tracing. On a governed context the span is annotated with the
   budget fuel consumed while it was open, giving the per-phase fuel
   breakdown without a second accounting mechanism. *)
let span ?cat ctx name f =
  match ctx.tracer with
  | None -> f ()
  | Some tr ->
    let fuel_before =
      match ctx.budget with
      | Some b -> Xqb_governor.Budget.steps_used b
      | None -> -1
    in
    let id = Xqb_obs.Trace.begin_span ?cat tr name in
    Fun.protect
      ~finally:(fun () ->
        let args =
          match ctx.budget with
          | Some b when fuel_before >= 0 ->
            [ ("fuel", string_of_int (Xqb_governor.Budget.steps_used b - fuel_before)) ]
          | _ -> []
        in
        Xqb_obs.Trace.end_span ~args tr id)
      f

let empty_env : env = SMap.empty

let bind env v value : env = SMap.add v value env

let lookup env v =
  match SMap.find_opt v env with
  | Some value -> value
  | None -> Xqb_xdm.Errors.undefined_variable "undefined variable $%s" v
