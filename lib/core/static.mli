(** Static analyses over the core language: variable scoping, free
    variables, and the §5 pure/updating/effecting classification with
    its updating-function fixpoint ("a function that calls an updating
    function is updating as well"). *)

exception Static_error of string

(** The three-way effect classification the optimizer's guards
    consume (§4.2-4.3). *)
type purity =
  | Pure  (** no updates, no snap: freely reorderable *)
  | Updating
    (** emits update requests but contains no snap — the store is
        untouched during evaluation, so lazy/algebraic evaluation
        still applies subject to cardinality guards *)
  | Effecting  (** contains a snap: evaluation order is pinned *)

val purity_to_string : purity -> string

(** Least upper bound. *)
val join : purity -> purity -> purity

(** Purity given a classification oracle for user functions. *)
val purity_with : (Xqb_xml.Qname.t -> int -> purity) -> Core_ast.expr -> purity

(** Fixpoint classification of a program's functions. *)
val classify_functions :
  Normalize.func list -> (Xqb_xml.Qname.t * int * purity) list

(** A reusable purity oracle: the function-classification fixpoint
    runs once at construction, then each call is a plain traversal. *)
val purity_oracle : Normalize.prog -> Core_ast.expr -> purity

(** One-shot [purity_oracle] (reclassifies per call — prefer the
    oracle in loops). *)
val purity_in_prog : Normalize.prog -> Core_ast.expr -> purity

(** Does the expression allocate fresh store nodes (constructors,
    [Copy], update payloads), given a judgement for user functions?
    [Pure] expressions can still allocate — this is the extra check
    concurrent execution against a shared store needs. *)
val allocates_with : (Xqb_xml.Qname.t -> int -> bool) -> Core_ast.expr -> bool

(** Fixpoint allocation classification of a program's functions ("a
    function that calls an allocating function allocates"). *)
val classify_alloc_functions :
  Normalize.func list -> (Xqb_xml.Qname.t * int * bool) list

(** [true] iff every global initializer and the body are [Pure] and
    allocation-free — the gate for the service scheduler's parallel
    read side. *)
val prog_parallel_safe : Normalize.prog -> bool

module SSet : Set.S with type elt = string

(** Free variables (used by the optimizer's independence guards). *)
val free_vars : Core_ast.expr -> SSet.t

val is_independent_of : Core_ast.expr -> string list -> bool

(** Scope-check an expression given the bound variables.
    @raise Static_error (XPST0008-style) on an unbound variable. *)
val check_scopes : SSet.t -> Core_ast.expr -> unit

(** Scope-check a whole program: globals see earlier globals and
    [initial] (host-bound names); functions see globals and their
    parameters. *)
val check_prog : ?initial:string list -> Normalize.prog -> unit

(** {1 Document-order analysis (ddo elision)} *)

(** What can be promised about an expression's result order. *)
type order_info = {
  o_sorted : bool;  (** items are in document order *)
  o_nodup : bool;  (** no duplicate nodes *)
  o_unrelated : bool;  (** no item is an ancestor of another *)
  o_single : bool;  (** at most one item *)
  o_node_only : bool;  (** every item is a node *)
}

(** [order_of singles e] — the judgement, given the set of variables
    known to be bound to at most one item (for/some/every binders,
    positional variables, single lets). *)
val order_of : SSet.t -> Core_ast.expr -> order_info

(** Rewrite provably redundant ["%ddo"] applications (result already
    sorted, duplicate-free, node-only) to ["%ddo-elided"] — the
    identity plus an instrumentation counter. Each site is gated on
    [purity arg <> Effecting]: a snap inside the sorted expression
    would mutate the tree mid-evaluation and void the structural
    reasoning (the §3.3 purity observation, used in reverse). Returns
    the rewritten expression and the number of sites elided. *)
val elide_ddo :
  purity:(Core_ast.expr -> purity) -> Core_ast.expr -> Core_ast.expr * int

(** {1 Effects footprints (query-update independence)} *)

(** A conservative static over-approximation of the store regions a
    program may read and may write. Two jobs whose footprints are
    {!Footprint.independent} can run concurrently against the shared
    store; anything the analysis can't pin down widens to a whole
    document or to "any document", which conflicts with everything
    and degrades to the old exclusive behaviour. *)
module Footprint : sig
  type doc = Named of string | Any_doc

  (** A subtree region: the nodes at (or, when [ranchored] is false,
      somewhere below) the root-to-node label chain [rpath] of
      document [rdoc], together with everything beneath them.
      [rpath = []] is the whole document. *)
  type region = { rdoc : doc; rpath : string list; ranchored : bool }

  type t = { reads : region list; writes : region list }

  val any_region : region
  val empty : t
  val top : t

  (** Reads everything, writes nothing (the footprint of an opaque
      read-only job). *)
  val read_all : t

  val regions_overlap : region -> region -> bool
  val sets_overlap : region list -> region list -> bool

  (** May the two jobs run concurrently? Read/read overlap is fine;
      any write must be disjoint from the other side's reads and
      writes. *)
  val independent : t -> t -> bool

  val writes_nothing : t -> bool

  (** False iff some region widened to "any document". *)
  val conclusive : t -> bool

  val region_to_string : region -> string
  val to_string : t -> string

  (** Dedupe, drop covered regions, cap size by widening. *)
  val normalize : t -> t

  (** Infer the footprint of a normalized program. [var_docs] maps a
      host-bound free variable to the URI of the catalog document
      whose root it names, if any (unknown bindings widen to
      [any_region]). *)
  val of_prog :
    ?var_docs:(string -> string option) -> Normalize.prog -> t
end
