(* Builtin function library: the XQuery 1.0 Functions & Operators
   subset the paper's programs and the XMark workloads exercise, plus
   a few internal helpers produced by normalization ("%ddo",
   "%avt-part"). *)

module Atomic = Xqb_xdm.Atomic
module Item = Xqb_xdm.Item
module Value = Xqb_xdm.Value
module Errors = Xqb_xdm.Errors
module Store = Xqb_store.Store
module Qname = Xqb_xml.Qname

(* (name, supported arities) *)
let signatures : (string * int list) list =
  [
    ("%ddo", [ 1 ]);
    ("%ddo-elided", [ 1 ]);
    ("%avt-part", [ 1 ]);
    ("position", [ 0 ]);
    ("last", [ 0 ]);
    ("count", [ 1 ]);
    ("empty", [ 1 ]);
    ("exists", [ 1 ]);
    ("not", [ 1 ]);
    ("boolean", [ 1 ]);
    ("true", [ 0 ]);
    ("false", [ 0 ]);
    ("string", [ 0; 1 ]);
    ("data", [ 1 ]);
    ("number", [ 0; 1 ]);
    ("string-length", [ 0; 1 ]);
    ("normalize-space", [ 0; 1 ]);
    ("concat", [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]);
    ("string-join", [ 2 ]);
    ("contains", [ 2 ]);
    ("starts-with", [ 2 ]);
    ("ends-with", [ 2 ]);
    ("substring", [ 2; 3 ]);
    ("substring-before", [ 2 ]);
    ("substring-after", [ 2 ]);
    ("upper-case", [ 1 ]);
    ("lower-case", [ 1 ]);
    ("translate", [ 3 ]);
    ("matches", [ 2 ]);
    ("replace", [ 3 ]);
    ("tokenize", [ 2 ]);
    ("name", [ 0; 1 ]);
    ("local-name", [ 0; 1 ]);
    ("node-name", [ 1 ]);
    ("root", [ 0; 1 ]);
    ("doc", [ 1 ]);
    ("sum", [ 1; 2 ]);
    ("avg", [ 1 ]);
    ("max", [ 1 ]);
    ("min", [ 1 ]);
    ("abs", [ 1 ]);
    ("floor", [ 1 ]);
    ("ceiling", [ 1 ]);
    ("round", [ 1 ]);
    ("distinct-values", [ 1 ]);
    ("reverse", [ 1 ]);
    ("subsequence", [ 2; 3 ]);
    ("insert-before", [ 3 ]);
    ("remove", [ 2 ]);
    ("index-of", [ 2 ]);
    ("exactly-one", [ 1 ]);
    ("zero-or-one", [ 1 ]);
    ("one-or-more", [ 1 ]);
    ("deep-equal", [ 2 ]);
    ("error", [ 0; 1; 2 ]);
    ("trace", [ 2 ]);
    ("compare", [ 2 ]);
    ("string-to-codepoints", [ 1 ]);
    ("codepoints-to-string", [ 1 ]);
    ("round-half-to-even", [ 1 ]);
    ("doc-available", [ 1 ]);
    ("id", [ 1; 2 ]);
    ("xs:integer", [ 1 ]);
    ("xs:decimal", [ 1 ]);
    ("xs:double", [ 1 ]);
    ("xs:string", [ 1 ]);
    ("xs:boolean", [ 1 ]);
    ("xs:untypedAtomic", [ 1 ]);
    ("xs:QName", [ 1 ]);
  ]

let is_builtin name arity =
  if name = "concat" then arity >= 2
  else
    match List.assoc_opt name signatures with
    | Some arities -> List.mem arity arities
    | None -> false

let names () = List.map fst signatures

(* -- helpers -------------------------------------------------------- *)

let focus_item (focus : Context.focus option) =
  match focus with
  | Some f -> f.Context.item
  | None -> Errors.raise_error "XPDY0002" "no context item"

let opt_string_or_focus ctx focus args =
  match args with
  | [] -> Item.string_value ctx.Context.store (focus_item focus)
  | [ v ] -> Value.string_value ctx.Context.store v
  | _ -> assert false

let numeric_seq store v =
  List.filter_map
    (fun i ->
      match Item.atomize store i with
      | Atomic.Untyped s -> Some (Atomic.Double (Atomic.parse_float s))
      | a when Atomic.is_numeric a -> Some a
      | a -> Errors.type_error "expected a numeric value, got %s" (Atomic.type_name a))
    v

let node_arg store v =
  ignore store;
  match v with
  | [ Item.Node n ] -> n
  | _ -> Errors.type_error "expected a single node"

(* Fast path: most step results are already sorted; check before the
   O(n log n) sort. *)
let ddo store (v : Value.t) : Value.t =
  let ids =
    List.map
      (function
        | Item.Node n -> n
        | Item.Atomic a ->
          Errors.type_error "path result contains a %s (nodes required)"
            (Atomic.type_name a))
      v
  in
  if Store.sorted_strict store ids then v
  else Value.of_nodes (Store.sort_doc_order store ids)

let deep_equal_atomic a b =
  match Atomic.compare_values (Atomic.coerce_general a b |> fst)
          (Atomic.coerce_general a b |> snd)
  with
  | Some 0 -> true
  | _ -> false
  | exception Errors.Dynamic_error _ -> false

let rec deep_equal_node store a b =
  let ka = Store.kind store a and kb = Store.kind store b in
  ka = kb
  &&
  match ka with
  | Store.Text | Store.Comment ->
    String.equal (Store.content store a) (Store.content store b)
  | Store.Attribute | Store.Pi ->
    (match Store.name store a, Store.name store b with
    | Some na, Some nb -> Qname.equal na nb
    | None, None -> true
    | _ -> false)
    && String.equal (Store.content store a) (Store.content store b)
  | Store.Element ->
    (match Store.name store a, Store.name store b with
    | Some na, Some nb -> Qname.equal na nb
    | None, None -> true
    | _ -> false)
    && deep_equal_attrs store a b
    && deep_equal_children store a b
  | Store.Document -> deep_equal_children store a b

and deep_equal_attrs store a b =
  let attrs n =
    Store.attributes store n
    |> List.map (fun aid -> (Store.name store aid, Store.content store aid))
    |> List.sort compare
  in
  attrs a = attrs b

and deep_equal_children store a b =
  (* Whitespace-only text and comments/PIs are not significant for
     fn:deep-equal on elements per F&O; we compare all children except
     comments and PIs. *)
  let sig_children n =
    List.filter
      (fun c ->
        match Store.kind store c with
        | Store.Comment | Store.Pi -> false
        | Store.Document | Store.Element | Store.Attribute | Store.Text -> true)
      (Store.children store n)
  in
  let ca = sig_children a and cb = sig_children b in
  List.length ca = List.length cb
  && List.for_all2 (fun x y -> deep_equal_node store x y) ca cb

let deep_equal store (x : Value.t) (y : Value.t) =
  List.length x = List.length y
  && List.for_all2
       (fun a b ->
         match a, b with
         | Item.Atomic a, Item.Atomic b -> deep_equal_atomic a b
         | Item.Node a, Item.Node b -> deep_equal_node store a b
         | Item.Node _, Item.Atomic _ | Item.Atomic _, Item.Node _ -> false)
       x y

(* Global memo; locked because pure queries touch it and the service
   scheduler runs pure queries from several domains at once. *)
let regexp_cache : (string, Re.re) Hashtbl.t = Hashtbl.create 16
let regexp_lock = Mutex.create ()

let compile_re pattern =
  Mutex.lock regexp_lock;
  let cached = Hashtbl.find_opt regexp_cache pattern in
  Mutex.unlock regexp_lock;
  match cached with
  | Some re -> re
  | None ->
    let re =
      try Re.Pcre.re pattern |> Re.compile
      with _ -> Errors.raise_error "FORX0002" "invalid regular expression %S" pattern
    in
    Mutex.lock regexp_lock;
    Hashtbl.replace regexp_cache pattern re;
    Mutex.unlock regexp_lock;
    re

(* -- dispatch -------------------------------------------------------- *)

let call (ctx : Context.t) (focus : Context.focus option) name
    (args : Value.t list) : Value.t =
  let store = ctx.Context.store in
  let sv = Value.string_value store in
  match name, args with
  | "%ddo", [ v ] -> ddo store v
  | "%ddo-elided", [ v ] ->
    (* statically certified sorted/duplicate-free/node-only: identity *)
    ctx.Context.ddo_elided <- ctx.Context.ddo_elided + 1;
    v
  | "%avt-part", [ v ] ->
    let strs = List.map (fun i -> Item.string_value store i) v in
    Value.of_string (String.concat " " strs)
  | "position", [] -> (
    match focus with
    | Some f -> Value.of_int f.Context.position
    | None -> Errors.raise_error "XPDY0002" "fn:position with no context")
  | "last", [] -> (
    match focus with
    | Some f -> Value.of_int f.Context.size
    | None -> Errors.raise_error "XPDY0002" "fn:last with no context")
  | "count", [ v ] -> Value.of_int (List.length v)
  | "empty", [ v ] -> Value.of_bool (v = [])
  | "exists", [ v ] -> Value.of_bool (v <> [])
  | "not", [ v ] -> Value.of_bool (not (Value.effective_boolean_value v))
  | "boolean", [ v ] -> Value.of_bool (Value.effective_boolean_value v)
  | "true", [] -> Value.of_bool true
  | "false", [] -> Value.of_bool false
  | "string", _ -> Value.of_string (opt_string_or_focus ctx focus args)
  | "data", [ v ] -> List.map (fun i -> Item.Atomic (Item.atomize store i)) v
  | "number", _ ->
    let s =
      match args with
      | [] -> [ focus_item focus ]
      | [ v ] -> v
      | _ -> assert false
    in
    (match s with
    | [] -> Value.of_double Float.nan
    | [ i ] -> (
      match Atomic.to_double (Item.atomize store i) with
      | f -> Value.of_double f
      | exception Errors.Dynamic_error _ -> Value.of_double Float.nan)
    | _ -> Errors.type_error "fn:number on a sequence")
  | "string-length", _ ->
    Value.of_int (String.length (opt_string_or_focus ctx focus args))
  | "normalize-space", _ ->
    let s = opt_string_or_focus ctx focus args in
    let words =
      String.split_on_char ' '
        (String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s)
      |> List.filter (fun w -> w <> "")
    in
    Value.of_string (String.concat " " words)
  | "concat", args when List.length args >= 2 ->
    Value.of_string (String.concat "" (List.map sv args))
  | "string-join", [ v; sep ] ->
    let sep = sv sep in
    Value.of_string
      (String.concat sep (List.map (fun i -> Item.string_value store i) v))
  | "contains", [ a; b ] ->
    let s = sv a and sub = sv b in
    let re = Re.compile (Re.str sub) in
    Value.of_bool (sub = "" || Re.execp re s)
  | "starts-with", [ a; b ] ->
    let s = sv a and p = sv b in
    Value.of_bool
      (String.length p <= String.length s && String.sub s 0 (String.length p) = p)
  | "ends-with", [ a; b ] ->
    let s = sv a and p = sv b in
    Value.of_bool
      (String.length p <= String.length s
      && String.sub s (String.length s - String.length p) (String.length p) = p)
  | "substring", [ s; start ] ->
    let s = sv s in
    let st = int_of_float (Float.round (Value.to_double store start)) in
    let st = max 1 st in
    if st > String.length s then Value.of_string ""
    else Value.of_string (String.sub s (st - 1) (String.length s - st + 1))
  | "substring", [ s; start; len ] ->
    let s = sv s in
    let st = Float.round (Value.to_double store start) in
    let ln = Float.round (Value.to_double store len) in
    let first = int_of_float (max 1.0 st) in
    let last = int_of_float (st +. ln) - 1 in
    if last < first || first > String.length s then Value.of_string ""
    else
      let last = min last (String.length s) in
      Value.of_string (String.sub s (first - 1) (last - first + 1))
  | "substring-before", [ a; b ] ->
    let s = sv a and sub = sv b in
    (try
       let re = Re.compile (Re.str sub) in
       let g = Re.exec re s in
       Value.of_string (String.sub s 0 (Re.Group.start g 0))
     with Not_found -> Value.of_string "")
  | "substring-after", [ a; b ] ->
    let s = sv a and sub = sv b in
    (try
       let re = Re.compile (Re.str sub) in
       let g = Re.exec re s in
       let e = Re.Group.stop g 0 in
       Value.of_string (String.sub s e (String.length s - e))
     with Not_found -> Value.of_string "")
  | "upper-case", [ a ] -> Value.of_string (String.uppercase_ascii (sv a))
  | "lower-case", [ a ] -> Value.of_string (String.lowercase_ascii (sv a))
  | "translate", [ a; from_s; to_s ] ->
    let s = sv a and f = sv from_s and t = sv to_s in
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match String.index_opt f c with
        | None -> Buffer.add_char buf c
        | Some i -> if i < String.length t then Buffer.add_char buf t.[i])
      s;
    Value.of_string (Buffer.contents buf)
  | "matches", [ a; pat ] -> Value.of_bool (Re.execp (compile_re (sv pat)) (sv a))
  | "replace", [ a; pat; rep ] ->
    Value.of_string (Re.replace_string (compile_re (sv pat)) ~by:(sv rep) (sv a))
  | "tokenize", [ a; pat ] ->
    Re.split (compile_re (sv pat)) (sv a)
    |> List.map (fun s -> Item.Atomic (Atomic.String s))
  | "name", _ | "local-name", _ -> (
    let n =
      match args with
      | [] -> (
        match focus_item focus with
        | Item.Node n -> Some n
        | Item.Atomic _ -> Errors.type_error "fn:name on an atomic context item")
      | [ [] ] -> None
      | [ v ] -> Some (node_arg store v)
      | _ -> assert false
    in
    match n with
    | None -> Value.of_string ""
    | Some n -> (
      match Store.name store n with
      | None -> Value.of_string ""
      | Some q ->
        Value.of_string
          (if name = "name" then Qname.to_string q else Qname.local q)))
  | "node-name", [ v ] -> (
    match v with
    | [] -> []
    | _ -> (
      match Store.name store (node_arg store v) with
      | None -> []
      | Some q -> Value.of_atomic (Atomic.QName q)))
  | "root", _ -> (
    let n =
      match args with
      | [] -> (
        match focus_item focus with
        | Item.Node n -> n
        | Item.Atomic _ -> Errors.type_error "fn:root on an atomic context item")
      | [ v ] -> node_arg store v
      | _ -> assert false
    in
    Value.of_node (Store.root store n))
  | "doc", [ v ] -> Value.of_node (Context.resolve_doc ctx (sv v))
  | "sum", [ v ] -> (
    match numeric_seq store v with
    | [] -> Value.of_int 0
    | n :: rest ->
      Value.of_atomic (List.fold_left (Atomic.arith Atomic.Add) n rest))
  | "sum", [ v; zero ] -> (
    match numeric_seq store v with
    | [] -> zero
    | n :: rest ->
      Value.of_atomic (List.fold_left (Atomic.arith Atomic.Add) n rest))
  | "avg", [ v ] -> (
    match numeric_seq store v with
    | [] -> []
    | ns ->
      let total = List.fold_left (Atomic.arith Atomic.Add) (Atomic.Integer 0) ns in
      Value.of_atomic
        (Atomic.arith Atomic.Div total (Atomic.Integer (List.length ns))))
  | ("max" | "min"), [ v ] -> (
    let vals = Value.atomize store v in
    match vals with
    | [] -> []
    | first :: rest ->
      let better = if name = "max" then Atomic.Gt else Atomic.Lt in
      let norm = function Atomic.Untyped s -> Atomic.Double (Atomic.parse_float s) | a -> a in
      Value.of_atomic
        (List.fold_left
           (fun best a ->
             if Atomic.value_compare better (norm a) (norm best) then a else best)
           first rest))
  | "abs", [ v ] -> (
    match Value.atomize store v with
    | [] -> []
    | [ a ] ->
      Value.of_atomic
        (match a with
        | Atomic.Integer i -> Atomic.Integer (abs i)
        | Atomic.Decimal f -> Atomic.Decimal (Float.abs f)
        | Atomic.Double f -> Atomic.Double (Float.abs f)
        | Atomic.Untyped s -> Atomic.Double (Float.abs (Atomic.parse_float s))
        | a -> Errors.type_error "fn:abs on %s" (Atomic.type_name a))
    | _ -> Errors.type_error "fn:abs on a sequence")
  | ("floor" | "ceiling" | "round"), [ v ] -> (
    let f =
      match name with
      | "floor" -> Float.floor
      | "ceiling" -> Float.ceil
      (* fn:round breaks ties toward positive infinity (so
         round(-2.5) = -2), unlike Float.round *)
      | _ -> fun f -> Float.floor (f +. 0.5)
    in
    match Value.atomize store v with
    | [] -> []
    | [ Atomic.Integer i ] -> Value.of_int i
    | [ a ] -> Value.of_double (f (Atomic.to_double a))
    | _ -> Errors.type_error "fn:%s on a sequence" name)
  | "distinct-values", [ v ] ->
    let vals = Value.atomize store v in
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun a ->
        let key =
          match a with
          | Atomic.Integer i -> `Num (float_of_int i)
          | Atomic.Decimal f | Atomic.Double f -> `Num f
          | Atomic.String s | Atomic.Untyped s -> `Str s
          | Atomic.Boolean b -> `Bool b
          | Atomic.QName q -> `Str ("Q{" ^ Qname.to_string q)
        in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some (Item.Atomic a)
        end)
      vals
  | "reverse", [ v ] -> List.rev v
  | "subsequence", [ v; start ] ->
    let st = int_of_float (Float.round (Value.to_double store start)) in
    List.filteri (fun i _ -> i + 1 >= st) v
  | "subsequence", [ v; start; len ] ->
    let st = Float.round (Value.to_double store start) in
    let ln = Float.round (Value.to_double store len) in
    List.filteri
      (fun i _ ->
        let p = float_of_int (i + 1) in
        p >= st && p < st +. ln)
      v
  | "insert-before", [ v; pos; ins ] ->
    let p = max 1 (Value.to_integer store pos) in
    let rec go i = function
      | [] -> ins
      | x :: rest when i < p -> x :: go (i + 1) rest
      | rest -> ins @ rest
    in
    go 1 v
  | "remove", [ v; pos ] ->
    let p = Value.to_integer store pos in
    List.filteri (fun i _ -> i + 1 <> p) v
  | "index-of", [ v; target ] ->
    let t = Value.singleton_atomic store target in
    List.concat
      (List.mapi
         (fun i item ->
           if Atomic.general_compare Atomic.Eq (Item.atomize store item) t then
             [ Item.integer (i + 1) ]
           else [])
         v)
  | "exactly-one", [ v ] ->
    if List.length v = 1 then v
    else Errors.type_error "fn:exactly-one: got %d items" (List.length v)
  | "zero-or-one", [ v ] ->
    if List.length v <= 1 then v
    else Errors.type_error "fn:zero-or-one: got %d items" (List.length v)
  | "one-or-more", [ v ] ->
    if v <> [] then v else Errors.type_error "fn:one-or-more: empty sequence"
  | "deep-equal", [ a; b ] -> Value.of_bool (deep_equal store a b)
  | "error", [] -> Errors.raise_error "FOER0000" "fn:error"
  | "error", [ code ] -> raise (Errors.Dynamic_error (sv code, ""))
  | "error", [ code; msg ] ->
    raise (Errors.Dynamic_error (sv code, sv msg))
  | "trace", [ v; label ] ->
    Logs.debug (fun m ->
        m "trace %s: %a" (sv label) (Value.pp store) v);
    v
  | "compare", [ a; b ] -> (
    match Value.atomize store a, Value.atomize store b with
    | [], _ | _, [] -> []
    | [ x ], [ y ] ->
      let s = function Atomic.String s | Atomic.Untyped s -> s | a -> Atomic.to_string a in
      Value.of_int (compare (String.compare (s x) (s y)) 0)
    | _ -> Errors.type_error "fn:compare on sequences")
  | "string-to-codepoints", [ v ] ->
    let s = sv v in
    (* decode UTF-8 with uutf-free byte-level fallback: ASCII fast
       path; multibyte sequences decoded manually *)
    let out = ref [] in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      let c = Char.code s.[!i] in
      let cp, len =
        if c < 0x80 then (c, 1)
        else if c < 0xE0 && !i + 1 < n then
          (((c land 0x1F) lsl 6) lor (Char.code s.[!i + 1] land 0x3F), 2)
        else if c < 0xF0 && !i + 2 < n then
          ( ((c land 0x0F) lsl 12)
            lor ((Char.code s.[!i + 1] land 0x3F) lsl 6)
            lor (Char.code s.[!i + 2] land 0x3F),
            3 )
        else if !i + 3 < n then
          ( ((c land 0x07) lsl 18)
            lor ((Char.code s.[!i + 1] land 0x3F) lsl 12)
            lor ((Char.code s.[!i + 2] land 0x3F) lsl 6)
            lor (Char.code s.[!i + 3] land 0x3F),
            4 )
        else (0xFFFD, 1)
      in
      out := cp :: !out;
      i := !i + len
    done;
    List.rev_map Item.integer !out
  | "codepoints-to-string", [ v ] ->
    let buf = Buffer.create 16 in
    List.iter
      (fun item ->
        Xqb_xml.Escape.add_utf8 buf (Atomic.to_integer (Item.atomize store item)))
      v;
    Value.of_string (Buffer.contents buf)
  | "round-half-to-even", [ v ] -> (
    match Value.atomize store v with
    | [] -> []
    | [ Atomic.Integer i ] -> Value.of_int i
    | [ a ] ->
      let f = Atomic.to_double a in
      let below = Float.floor f and above = Float.ceil f in
      let r =
        if f -. below < above -. f then below
        else if above -. f < f -. below then above
        else if Float.rem below 2.0 = 0.0 then below
        else above
      in
      Value.of_double r
    | _ -> Errors.type_error "fn:round-half-to-even on a sequence")
  | "doc-available", [ v ] ->
    Value.of_bool
      (match Context.resolve_doc ctx (sv v) with
      | _ -> true
      | exception _ -> false)
  | "id", args -> (
    (* fn:id: elements (in the target document) whose @id attribute
       equals one of the given strings. *)
    let keys, scope =
      match args with
      | [ k ] -> (k, [ focus_item focus ])
      | [ k; n ] -> (k, n)
      | _ -> assert false
    in
    let wanted =
      List.concat_map
        (fun i -> String.split_on_char ' ' (Item.string_value store i))
        keys
      |> List.filter (fun s -> s <> "")
    in
    match scope with
    | [ Item.Node n ] ->
      let root = Store.root store n in
      let all = root :: Xqb_store.Axes.descendants store root in
      let hits =
        List.filter
          (fun el ->
            Store.kind store el = Store.Element
            && List.exists
                 (fun aid ->
                   match Store.name store aid with
                   | Some q when Qname.local q = "id" ->
                     List.mem (Store.content store aid) wanted
                   | _ -> false)
                 (Store.attributes store el))
          all
      in
      Value.of_nodes hits
    | _ -> Errors.type_error "fn:id needs a node scope")
  | "xs:integer", [ v ] -> Types.cast store (Xqb_syntax.Ast.It_atomic (Qname.xs "integer")) v
  | "xs:decimal", [ v ] -> Types.cast store (Xqb_syntax.Ast.It_atomic (Qname.xs "decimal")) v
  | "xs:double", [ v ] -> Types.cast store (Xqb_syntax.Ast.It_atomic (Qname.xs "double")) v
  | "xs:string", [ v ] -> Types.cast store (Xqb_syntax.Ast.It_atomic (Qname.xs "string")) v
  | "xs:boolean", [ v ] -> Types.cast store (Xqb_syntax.Ast.It_atomic (Qname.xs "boolean")) v
  | "xs:untypedAtomic", [ v ] ->
    Types.cast store (Xqb_syntax.Ast.It_atomic (Qname.xs "untypedAtomic")) v
  | "xs:QName", [ v ] -> Types.cast store (Xqb_syntax.Ast.It_atomic (Qname.xs "QName")) v
  | _ ->
    Errors.arity_error "unknown builtin %s/%d" name (List.length args)
