(* The "phase of syntactic rewriting" of §4.2: simplification rules on
   the core language, each "guarded by a judgment which detects
   whether side effects occur in a given subexpression to avoid
   changing the semantics for the query".

   The guards are the point (and what E11 measures): eliminating or
   duplicating a merely-Updating expression would change how many
   update requests reach the ∆, and reordering around an Effecting one
   would change what it observes — so every rule that drops, copies or
   moves a subexpression demands purity.

   Rules (names as reported in [stats]):
   - if-const:       if (true) then t else e  =>  t        (cond is a constant)
   - dead-let:       let $v := e1 return body =>  body     (v unused, e1 pure)
   - inline-let:     let $v := e1 return body =>  body[v:=e1]
                     (e1 pure, focus-independent, used once)
   - for-singleton:  for $v in <single item>  =>  let
   - seq-empty:      ((), e) => e ; (e, ()) => e
   - const-fold:     1 + 2 => 3 (both scalar, operation total here)
   - if-fold:        EBV of a scalar condition folds the branch
   - pred-true:      e[true()] => e
   - ddo-ddo:        %ddo(%ddo(e)) => %ddo(e)
   - for-empty:      for $v in () return body => () *)

module C = Core_ast
module A = Xqb_syntax.Ast

let bump stats rule =
  stats :=
    (match List.assoc_opt rule !stats with
    | Some n -> (rule, n + 1) :: List.remove_assoc rule !stats
    | None -> (rule, 1) :: !stats)

(* Number of free occurrences of [v] in [e]. *)
let rec occurrences v (e : C.expr) : int =
  match e with
  | C.Var w -> if String.equal v w then 1 else 0
  | C.For (w, pos, e1, body) ->
    let shadow = String.equal v w || pos = Some v in
    occurrences v e1 + if shadow then 0 else occurrences v body
  | C.Let (w, e1, body) | C.Some_sat (w, e1, body) | C.Every_sat (w, e1, body) ->
    occurrences v e1 + if String.equal v w then 0 else occurrences v body
  | C.Sort_flwor _ ->
    (* conservative: treat as many occurrences to block inlining *)
    if Static.SSet.mem v (Static.free_vars e) then 2 else 0
  | _ -> List.fold_left (fun acc s -> acc + occurrences v s) 0 (C.sub_exprs e)

(* Does evaluation of [e] depend on the focus (context item, position,
   size)? Inlining across a predicate/path boundary is only legal when
   it does not. *)
let rec uses_focus (e : C.expr) : bool =
  match e with
  | C.Context_item -> true
  | C.Call_builtin (("position" | "last"), []) -> true
  | C.Call_builtin (("string" | "string-length" | "normalize-space" | "number"
                    | "name" | "local-name" | "root"), []) ->
    true
  | C.Predicate (input, _) | C.Map (input, _) ->
    (* the right side runs under its own focus *)
    uses_focus input
  | _ -> List.exists uses_focus (C.sub_exprs e)

(* Substitute [replacement] for free [v] in [e] (capture is impossible:
   normalization's fresh variables contain '%', and we only substitute
   pure expressions whose free variables cannot be rebound between the
   let and the use — guaranteed by only inlining when the binder chain
   does not rebind them; checked conservatively below). *)
let rec substitute v replacement (e : C.expr) : C.expr =
  match e with
  | C.Var w when String.equal v w -> replacement
  | C.For (w, pos, e1, body) when String.equal v w || pos = Some v ->
    C.For (w, pos, substitute v replacement e1, body)
  | C.Let (w, e1, body) when String.equal v w ->
    C.Let (w, substitute v replacement e1, body)
  | C.Some_sat (w, e1, body) when String.equal v w ->
    C.Some_sat (w, substitute v replacement e1, body)
  | C.Every_sat (w, e1, body) when String.equal v w ->
    C.Every_sat (w, substitute v replacement e1, body)
  | _ -> map_subs (substitute v replacement) e

(* Rebuild [e] with [f] applied to every immediate subexpression. *)
and map_subs f (e : C.expr) : C.expr =
  match e with
  | C.Scalar _ | C.Var _ | C.Context_item | C.Empty -> e
  | C.Seq (a, b) -> C.Seq (f a, f b)
  | C.For (v, pos, a, b) -> C.For (v, pos, f a, f b)
  | C.Let (v, a, b) -> C.Let (v, f a, f b)
  | C.If (a, b, c) -> C.If (f a, f b, f c)
  | C.Sort_flwor (clauses, specs, ret) ->
    C.Sort_flwor
      ( List.map
          (function
            | C.S_for (v, pos, e) -> C.S_for (v, pos, f e)
            | C.S_let (v, e) -> C.S_let (v, f e)
            | C.S_where e -> C.S_where (f e))
          clauses,
        List.map (fun (k, d) -> (f k, d)) specs,
        f ret )
  | C.Some_sat (v, a, b) -> C.Some_sat (v, f a, f b)
  | C.Every_sat (v, a, b) -> C.Every_sat (v, f a, f b)
  | C.Step (a, ax, t) -> C.Step (f a, ax, t)
  | C.Key_step (a, elem, attr, b) -> C.Key_step (f a, elem, attr, f b)
  | C.Map (a, b) -> C.Map (f a, f b)
  | C.Predicate (a, b) -> C.Predicate (f a, f b)
  | C.Binop (op, a, b) -> C.Binop (op, f a, f b)
  | C.Unary_minus a -> C.Unary_minus (f a)
  | C.Call_builtin (n, args) -> C.Call_builtin (n, List.map f args)
  | C.Call_user (n, args) -> C.Call_user (n, List.map f args)
  | C.Instance_of (a, t) -> C.Instance_of (f a, t)
  | C.Cast_as (a, t) -> C.Cast_as (f a, t)
  | C.Castable_as (a, t) -> C.Castable_as (f a, t)
  | C.Treat_as (a, t) -> C.Treat_as (f a, t)
  | C.Elem (ns, c) -> C.Elem (map_name ns f, f c)
  | C.Attr (ns, c) -> C.Attr (map_name ns f, f c)
  | C.Text_node a -> C.Text_node (f a)
  | C.Comment_node a -> C.Comment_node (f a)
  | C.Pi_node (ns, a) -> C.Pi_node (map_name ns f, f a)
  | C.Doc_node a -> C.Doc_node (f a)
  | C.Insert (tgt, a, b, loc) -> C.Insert (tgt, f a, f b, loc)
  | C.Delete (a, loc) -> C.Delete (f a, loc)
  | C.Replace (a, b, loc) -> C.Replace (f a, f b, loc)
  | C.Replace_value (a, b, loc) -> C.Replace_value (f a, f b, loc)
  | C.Rename (a, b, loc) -> C.Rename (f a, f b, loc)
  | C.Copy a -> C.Copy (f a)
  | C.Snap (m, a) -> C.Snap (m, f a)

and map_name ns f = match ns with C.Static _ -> ns | C.Dynamic e -> C.Dynamic (f e)

(* All variables bound anywhere inside [e] — used to rule out capture
   when inlining. *)
let rec binders (e : C.expr) : Static.SSet.t =
  let subs =
    List.fold_left
      (fun acc s -> Static.SSet.union acc (binders s))
      Static.SSet.empty (C.sub_exprs e)
  in
  match e with
  | C.For (v, pos, _, _) ->
    let s = Static.SSet.add v subs in
    (match pos with Some p -> Static.SSet.add p s | None -> s)
  | C.Let (v, _, _) | C.Some_sat (v, _, _) | C.Every_sat (v, _, _) ->
    Static.SSet.add v subs
  | C.Sort_flwor (clauses, _, _) ->
    List.fold_left
      (fun acc c ->
        match c with
        | C.S_for (v, pos, _) ->
          let acc = Static.SSet.add v acc in
          (match pos with Some p -> Static.SSet.add p acc | None -> acc)
        | C.S_let (v, _) -> Static.SSet.add v acc
        | C.S_where _ -> acc)
      subs clauses
  | _ -> subs

(* Constant EBV of a scalar, when defined. *)
let const_ebv (e : C.expr) : bool option =
  match e with
  | C.Empty -> Some false
  | C.Call_builtin ("true", []) -> Some true
  | C.Call_builtin ("false", []) -> Some false
  | C.Scalar a -> (
    match a with
    | Xqb_xdm.Atomic.Boolean b -> Some b
    | Xqb_xdm.Atomic.Integer i -> Some (i <> 0)
    | Xqb_xdm.Atomic.String s | Xqb_xdm.Atomic.Untyped s -> Some (s <> "")
    | Xqb_xdm.Atomic.Decimal f | Xqb_xdm.Atomic.Double f ->
      Some (not (f = 0.0 || Float.is_nan f))
    | Xqb_xdm.Atomic.QName _ -> None)
  | _ -> None

(* One bottom-up pass. *)
let rec pass ~purity stats (e : C.expr) : C.expr =
  let e = map_subs (pass ~purity stats) e in
  let pure x = purity x = Static.Pure in
  match e with
  | C.If (c, t, f) -> (
    match const_ebv c with
    | Some b ->
      bump stats "if-const";
      if b then t else f
    | None -> e)
  | C.Let (v, e1, body) -> (
    match occurrences v body with
    | 0 when pure e1 ->
      bump stats "dead-let";
      body
    | 1
      when (* Copy propagation only: inlining a general pure
              expression is unsound here even when used once — it
              moves the evaluation *later*, across code whose effects
              (applied inner snaps) it might observe, and node
              constructors are pure but not referentially transparent
              (fresh identity per evaluation). Variables and literals
              are immune to both. *)
           (match e1 with C.Var _ | C.Scalar _ -> true | _ -> false)
           && Static.SSet.disjoint (Static.free_vars e1) (binders body) ->
      bump stats "inline-let";
      substitute v e1 body
    | _ -> e)
  | C.For (_, _, C.Empty, _) ->
    bump stats "for-empty";
    C.Empty
  | C.For (v, None, (C.Scalar _ as item), body) ->
    (* a for over one item binds exactly like a let *)
    bump stats "for-singleton";
    C.Let (v, item, body)
  | C.Seq (C.Empty, b) ->
    bump stats "seq-empty";
    b
  | C.Seq (a, C.Empty) ->
    bump stats "seq-empty";
    a
  | C.Binop (op, C.Scalar x, C.Scalar y) -> (
    match op with
    | A.Add | A.Sub | A.Mul | A.Div | A.Idiv | A.Mod -> (
      match Xqb_xdm.Atomic.arith (arith_of op) x y with
      | r ->
        bump stats "const-fold";
        C.Scalar r
      | exception _ -> e (* folding would move the error to compile time *))
    | A.Gen_eq | A.Gen_ne | A.Gen_lt | A.Gen_le | A.Gen_gt | A.Gen_ge -> (
      match Xqb_xdm.Atomic.general_compare (cmp_of op) x y with
      | b ->
        bump stats "const-fold";
        C.Scalar (Xqb_xdm.Atomic.Boolean b)
      | exception _ -> e)
    | _ -> e)
  (* only boolean constants: a numeric constant predicate is
     positional *)
  | C.Predicate (input, (C.Scalar (Xqb_xdm.Atomic.Boolean _) as p))
  | C.Predicate (input, (C.Call_builtin (("true" | "false"), []) as p)) -> (
    match const_ebv p with
    | Some true ->
      bump stats "pred-true";
      input
    | Some false when pure input ->
      bump stats "pred-false";
      C.Empty
    | _ -> e)
  | C.Call_builtin ("%ddo", [ C.Call_builtin ("%ddo", [ inner ]) ]) ->
    bump stats "ddo-ddo";
    C.Call_builtin ("%ddo", [ inner ])
  (* e//T: descendant-or-self::node()/child::T  =>  descendant::T —
     every descendant is the child of some node on the dos axis, so
     the sets coincide; the descendant form feeds the store's
     element-name index. *)
  | C.Call_builtin
      ( "%ddo",
        [
          C.Step
            ( C.Call_builtin
                ("%ddo", [ C.Step (b, Xqb_store.Axes.Descendant_or_self, Xqb_store.Axes.Kind_node) ]),
              Xqb_store.Axes.Child,
              test );
        ] ) ->
    bump stats "descendant-step";
    C.Call_builtin ("%ddo", [ C.Step (b, Xqb_store.Axes.Descendant, test) ])
  (* e//T[p] with a provably non-positional p: the per-parent
     predicate grouping only matters for positional predicates, so the
     flattened descendant form is equivalent. *)
  | C.Call_builtin
      ( "%ddo",
        [
          C.For
            ( dot,
              None,
              C.Call_builtin
                ("%ddo", [ C.Step (b, Xqb_store.Axes.Descendant_or_self, Xqb_store.Axes.Kind_node) ]),
              C.Predicate (C.Step (C.Var dot', Xqb_store.Axes.Child, test), p) );
        ] )
    when String.equal dot dot' && occurrences dot p = 0 && non_positional p ->
    bump stats "descendant-step-pred";
    C.Call_builtin ("%ddo", [ C.Predicate (C.Step (b, Xqb_store.Axes.Descendant, test), p) ])
  (* descendant::elem[@attr = rhs] with a pure, focus-free rhs: the
     form [Eval] can serve from the attribute-value key index. The rhs
     moves from per-item to once-per-evaluation — legal because it is
     pure (no ∆-cardinality change) and focus-free (same value every
     iteration). *)
  | C.Predicate
      ( C.Step (b, Xqb_store.Axes.Descendant, Xqb_store.Axes.Name elem),
        C.Binop (A.Gen_eq, lhs, rhs) ) -> (
    let attr_of = function
      | C.Call_builtin
          ("%ddo", [ C.Step (C.Context_item, Xqb_store.Axes.Attribute, Xqb_store.Axes.Name a) ])
        ->
        Some a
      | _ -> None
    in
    let mk attr key =
      if purity key = Static.Pure && not (uses_focus key) then begin
        bump stats "key-step";
        Some (C.Key_step (b, elem, attr, key))
      end
      else None
    in
    let rewritten =
      match attr_of lhs, attr_of rhs with
      | Some attr, None -> mk attr rhs
      | None, Some attr -> mk attr lhs
      | _ -> None
    in
    match rewritten with Some e' -> e' | None -> e)
  | e -> e

(* A predicate is provably non-positional when it mentions no
   position()/last(), calls no user functions (which could), and its
   inferred type rules out the numeric-predicate reading. *)
and non_positional (p : C.expr) : bool =
  let rec mentions_position e =
    match e with
    | C.Call_builtin (("position" | "last"), []) -> true
    | C.Call_user _ -> true (* conservative *)
    | _ -> List.exists mentions_position (C.sub_exprs e)
  in
  (not (mentions_position p))
  &&
  let t, _ = Typing.infer_expr p in
  match t.Typing.item with
  | Typing.T_atomic (Typing.K_boolean | Typing.K_string) -> true
  | Typing.T_element | Typing.T_attribute | Typing.T_text | Typing.T_comment
  | Typing.T_pi | Typing.T_document | Typing.T_node ->
    true
  | Typing.T_atomic _ | Typing.T_item -> false

and arith_of : A.binop -> Xqb_xdm.Atomic.arith_op = function
  | A.Add -> Xqb_xdm.Atomic.Add
  | A.Sub -> Xqb_xdm.Atomic.Sub
  | A.Mul -> Xqb_xdm.Atomic.Mul
  | A.Div -> Xqb_xdm.Atomic.Div
  | A.Idiv -> Xqb_xdm.Atomic.Idiv
  | A.Mod -> Xqb_xdm.Atomic.Mod
  | _ -> assert false

and cmp_of : A.binop -> Xqb_xdm.Atomic.cmp_op = function
  | A.Gen_eq -> Xqb_xdm.Atomic.Eq
  | A.Gen_ne -> Xqb_xdm.Atomic.Ne
  | A.Gen_lt -> Xqb_xdm.Atomic.Lt
  | A.Gen_le -> Xqb_xdm.Atomic.Le
  | A.Gen_gt -> Xqb_xdm.Atomic.Gt
  | A.Gen_ge -> Xqb_xdm.Atomic.Ge
  | _ -> assert false

(* Simplify to a fixpoint (bounded). Returns the rewritten expression
   and a count per fired rule. *)
let simplify ~purity (e : C.expr) : C.expr * (string * int) list =
  let stats = ref [] in
  let rec go i e =
    if i >= 10 then e
    else
      let before = !stats in
      let e' = pass ~purity stats e in
      if !stats = before then e' else go (i + 1) e'
  in
  let e = go 0 e in
  (e, !stats)
