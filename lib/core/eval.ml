(* The dynamic semantics of XQuery! (Figs. 2-3).

   The formal judgement
       store0; dynEnv |- Expr => value; Delta; store1
   is realized as:
   - the store is an OCaml mutable structure ([ctx.store]); store
     threading becomes in-place mutation under a *defined
     left-to-right evaluation order* — every rule below sequences its
     premises with explicit [let]s, never relying on OCaml's
     (right-to-left!) argument evaluation order;
   - Delta is not returned by each call: requests are appended to the
     innermost frame of the snap stack ([ctx.snaps]), which by
     construction yields exactly the (Delta1, Delta2, ...) ordering of
     the rules;
   - [Snap] pushes a frame, evaluates its body, pops and applies —
     the "stack-like behavior ... built into the recursive machinery"
     of §3.4. *)

module C = Core_ast
module A = Xqb_syntax.Ast
module Atomic = Xqb_xdm.Atomic
module Item = Xqb_xdm.Item
module Value = Xqb_xdm.Value
module Errors = Xqb_xdm.Errors
module Store = Xqb_store.Store
module Axes = Xqb_store.Axes
module Qname = Xqb_xml.Qname

let type_check store what (ty : A.seq_type option) (v : Value.t) =
  match ty with
  | None -> ()
  | Some ty ->
    if not (Types.matches store ty v) then
      Errors.type_error "%s does not match declared type %s" what
        (A.seq_type_to_string ty)

(* Convert a value to the node list an insert/replace payload denotes:
   runs of atomics become text nodes (space-joined), exactly as in
   element-constructor content. *)
let content_to_nodes ctx (v : Value.t) : Store.node_id list =
  let store = ctx.Context.store in
  let out = ref [] in
  let buf = ref [] in
  let flush () =
    if !buf <> [] then begin
      let s = String.concat " " (List.rev_map Atomic.to_string !buf) in
      out := Store.make_text store s :: !out;
      buf := []
    end
  in
  List.iter
    (fun item ->
      match item with
      | Item.Atomic a -> buf := a :: !buf
      | Item.Node n ->
        flush ();
        out := n :: !out)
    v;
  flush ();
  List.rev !out

(* Evaluate a name-producing expression (rename target, computed
   constructor names). *)
let value_to_qname store (v : Value.t) : Qname.t =
  match Value.singleton_atomic store v with
  | Atomic.QName q -> q
  | Atomic.String s | Atomic.Untyped s ->
    let q = Qname.of_string s in
    if not (Qname.valid q) then Errors.value_error "invalid QName %S" s;
    q
  | a -> Errors.type_error "expected a QName, got %s" (Atomic.type_name a)

(* Budget checkpoints. [tick] charges one unit per evaluated core
   expression; [charge_nodes] additionally charges result fan-out on
   the index-backed paths that bypass [Axes] (the generic axis walk
   is charged inside the store); [emit_request] enforces the
   pending-∆ cap as requests are recorded. All three are no-ops on an
   ungoverned context. *)
let tick ctx =
  match ctx.Context.budget with
  | None -> ()
  | Some b -> Xqb_governor.Budget.charge b 1

let charge_nodes ctx nodes =
  (match ctx.Context.budget with
  | None -> ()
  | Some b -> Xqb_governor.Budget.charge b (List.length nodes));
  nodes

(* Record an update request on the innermost snap frame, stamping it
   with provenance: the effecting expression's source location, the
   snap depth it was emitted at, and the active trace id (if any). *)
let emit_request ctx ?(loc = C.no_loc) op =
  let prov =
    {
      Update.src_line = loc.C.line;
      src_col = loc.C.col;
      snap_depth = Snap_stack.depth ctx.Context.snaps;
      trace_id =
        (match ctx.Context.tracer with
        | None -> None
        | Some tr -> Some (Xqb_obs.Trace.id tr));
    }
  in
  Snap_stack.emit ctx.Context.snaps (Update.make ~prov op);
  match ctx.Context.budget with
  | None -> ()
  | Some b ->
    Xqb_governor.Budget.charge_delta b (Snap_stack.pending ctx.Context.snaps)

let rec eval (ctx : Context.t) (env : Context.env) (focus : Context.focus option)
    (e : C.expr) : Value.t =
  tick ctx;
  match e with
  | C.Scalar a -> [ Item.Atomic a ]
  | C.Var v -> Context.lookup env v
  | C.Context_item -> (
    match focus with
    | Some f -> [ f.Context.item ]
    | None -> Errors.raise_error "XPDY0002" "no context item")
  | C.Empty -> []
  | C.Seq (e1, e2) ->
    (* Expr1 must be fully evaluated before Expr2 (§2.3). *)
    let v1 = eval ctx env focus e1 in
    let v2 = eval ctx env focus e2 in
    v1 @ v2
  | C.For (v, posvar, e1, body) ->
    let items = eval ctx env focus e1 in
    let n = ref 0 in
    let acc = ref [] in
    List.iter
      (fun item ->
        incr n;
        let env = Context.bind env v [ item ] in
        let env =
          match posvar with
          | None -> env
          | Some pv -> Context.bind env pv (Value.of_int !n)
        in
        acc := List.rev_append (eval ctx env focus body) !acc)
      items;
    List.rev !acc
  | C.Let (v, e1, body) ->
    let v1 = eval ctx env focus e1 in
    eval ctx (Context.bind env v v1) focus body
  | C.If (c, t, e) ->
    let cv = eval ctx env focus c in
    if Value.effective_boolean_value cv then eval ctx env focus t
    else eval ctx env focus e
  | C.Sort_flwor (clauses, specs, ret) -> eval_sort_flwor ctx env focus clauses specs ret
  | C.Some_sat (v, e1, sat) ->
    let items = eval ctx env focus e1 in
    Value.of_bool
      (List.exists
         (fun item ->
           Value.effective_boolean_value
             (eval ctx (Context.bind env v [ item ]) focus sat))
         items)
  | C.Every_sat (v, e1, sat) ->
    let items = eval ctx env focus e1 in
    Value.of_bool
      (List.for_all
         (fun item ->
           Value.effective_boolean_value
             (eval ctx (Context.bind env v [ item ]) focus sat))
         items)
  | C.Step (input, Axes.Descendant, Axes.Name q) ->
    (* descendant::name goes through the store's element-name index
       (populated lazily, invalidated on mutation) — the target of the
       descendant-step rewrites. *)
    let v = eval ctx env focus input in
    ctx.Context.steps_evaluated <- ctx.Context.steps_evaluated + 1;
    let store = ctx.Context.store in
    List.concat_map
      (fun item ->
        match item with
        | Item.Node n ->
          List.map Item.node (charge_nodes ctx (Store.descendants_by_name store n q))
        | Item.Atomic a ->
          Errors.type_error "path step applied to a %s" (Atomic.type_name a))
      v
  | C.Step (input, axis, test) ->
    let v = eval ctx env focus input in
    ctx.Context.steps_evaluated <- ctx.Context.steps_evaluated + 1;
    let store = ctx.Context.store in
    List.concat_map
      (fun item ->
        match item with
        | Item.Node n -> List.map Item.node (Axes.step store axis test n)
        | Item.Atomic a ->
          Errors.type_error "path step applied to a %s" (Atomic.type_name a))
      v
  | C.Key_step (base, elem, attr, rhs) ->
    (* descendant::elem[@attr = rhs], rhs pure and focus-free (the
       rewrite's guard). String keys go through the store's key index;
       non-string keys fall back to a scan with general-= semantics.
       The rhs is evaluated only when candidates exist, preserving the
       original's error behaviour (zero candidates = zero rhs
       evaluations). *)
    let v = eval ctx env focus base in
    ctx.Context.steps_evaluated <- ctx.Context.steps_evaluated + 1;
    let store = ctx.Context.store in
    let roots =
      List.map
        (function
          | Item.Node n -> n
          | Item.Atomic a ->
            Errors.type_error "path step applied to a %s" (Atomic.type_name a))
        v
    in
    let has_candidates =
      List.exists (fun n -> Store.descendants_by_name store n elem <> []) roots
    in
    if not has_candidates then []
    else begin
      let keys = Value.atomize store (eval ctx env focus rhs) in
      let strings_only =
        List.for_all
          (function Atomic.String _ | Atomic.Untyped _ -> true | _ -> false)
          keys
      in
      if strings_only then
        let key_strings =
          List.sort_uniq compare (List.map Atomic.to_string keys)
        in
        List.concat_map
          (fun n ->
            List.concat_map
              (fun k -> List.map Item.node (Store.lookup_by_key store n ~elem ~attr k))
              key_strings)
          roots
      else
        List.concat_map
          (fun n ->
            List.filter_map
              (fun e ->
                match Store.attr_value store e attr with
                | Some value
                  when List.exists
                         (fun k ->
                           Atomic.general_compare Atomic.Eq (Atomic.Untyped value) k)
                         keys ->
                  Some (Item.Node e)
                | _ -> None)
              (Store.descendants_by_name store n elem))
          roots
    end
  | C.Map (e1, e2) ->
    let v1 = eval ctx env focus e1 in
    let size = List.length v1 in
    let acc = ref [] in
    List.iteri
      (fun i item ->
        let f = { Context.item; position = i + 1; size } in
        acc := List.rev_append (eval ctx env (Some f) e2) !acc)
      v1;
    let results = List.rev !acc in
    let has_node = List.exists Item.is_node results in
    let has_atomic = List.exists (fun i -> not (Item.is_node i)) results in
    if has_node && has_atomic then
      Errors.raise_error "XPTY0018" "path result mixes nodes and atomic values"
    else if has_node then Functions.call ctx focus "%ddo" [ results ]
    else results
  | C.Predicate (input, pred) ->
    let v = eval ctx env focus input in
    let size = List.length v in
    let keep = ref [] in
    List.iteri
      (fun i item ->
        let f = { Context.item; position = i + 1; size } in
        let pv = eval ctx env (Some f) pred in
        let selected =
          match pv with
          | [ Item.Atomic a ] when Atomic.is_numeric a ->
            Atomic.to_double a = float_of_int (i + 1)
          | _ -> Value.effective_boolean_value pv
        in
        if selected then keep := item :: !keep)
      v;
    List.rev !keep
  | C.Binop (op, e1, e2) -> eval_binop ctx env focus op e1 e2
  | C.Unary_minus e -> (
    let v = eval ctx env focus e in
    match Value.atomize ctx.Context.store v with
    | [] -> []
    | [ a ] -> Value.of_atomic (Atomic.negate a)
    | _ -> Errors.type_error "unary minus on a sequence")
  | C.Call_builtin (name, arg_exprs) ->
    (* Arguments evaluate left to right (function-call rule, Fig. 3). *)
    let args = eval_args ctx env focus arg_exprs in
    Functions.call ctx focus name args
  | C.Call_user (f, arg_exprs) -> eval_user_call ctx env focus f arg_exprs
  | C.Instance_of (e, ty) ->
    let v = eval ctx env focus e in
    Value.of_bool (Types.matches ctx.Context.store ty v)
  | C.Cast_as (e, ty) ->
    let v = eval ctx env focus e in
    Types.cast ctx.Context.store ty v
  | C.Castable_as (e, ty) ->
    let v = eval ctx env focus e in
    Value.of_bool (Types.castable ctx.Context.store ty v)
  | C.Treat_as (e, ty) ->
    let v = eval ctx env focus e in
    if Types.matches ctx.Context.store ty v then v
    else
      Errors.raise_error "XPDY0050" "treat as %s failed"
        (A.seq_type_to_string ty)
  | C.Elem (ns, content) ->
    let name = eval_name ctx env focus ns in
    let cv = eval ctx env focus content in
    Value.of_node (construct_element ctx name cv)
  | C.Attr (ns, content) ->
    let name = eval_name ctx env focus ns in
    let cv = eval ctx env focus content in
    let s =
      String.concat " "
        (List.map (Item.string_value ctx.Context.store) cv)
    in
    Value.of_node (Store.make_attribute ctx.Context.store name s)
  | C.Text_node content -> (
    let cv = eval ctx env focus content in
    match cv with
    | [] -> []
    | _ ->
      let s =
        String.concat " " (List.map (Item.string_value ctx.Context.store) cv)
      in
      Value.of_node (Store.make_text ctx.Context.store s))
  | C.Comment_node content ->
    let s = Value.string_value ctx.Context.store (eval ctx env focus content) in
    Value.of_node (Store.make_comment ctx.Context.store s)
  | C.Pi_node (ns, content) ->
    let target = Qname.to_string (eval_name ctx env focus ns) in
    let s = Value.string_value ctx.Context.store (eval ctx env focus content) in
    Value.of_node (Store.make_pi ctx.Context.store target s)
  | C.Doc_node content ->
    let cv = eval ctx env focus content in
    let store = ctx.Context.store in
    let doc = Store.make_document store in
    let nodes = List.map (copy_item ctx) cv |> content_to_nodes ctx in
    Store.insert store ~parent:doc ~position:Store.Last nodes;
    Value.of_node doc
  (* ---- XQuery! operations (Fig. 2) ---- *)
  | C.Copy e ->
    let v = eval ctx env focus e in
    List.map (copy_item ctx) v
  | C.Insert (target, payload, dest, loc) ->
    (* Fig. 2: Expr1 first, then Expr2, then the location judgement. *)
    let v1 = eval ctx env focus payload in
    let v2 = eval ctx env focus dest in
    let nodes = content_to_nodes ctx v1 in
    let anchor = Value.singleton_node v2 in
    let store = ctx.Context.store in
    let parent_of n =
      match Store.parent store n with
      | Some p -> p
      | None ->
        Errors.raise_error "XUDY0029" "insert before/after a parentless node"
    in
    let parent, position =
      match target with
      | C.T_first -> (anchor, Update.First)
      | C.T_last -> (anchor, Update.Last)
      | C.T_before -> (parent_of anchor, Update.Before anchor)
      | C.T_after -> (parent_of anchor, Update.After anchor)
    in
    emit_request ctx ~loc (Update.Insert { nodes; parent; position });
    []
  | C.Delete (e, loc) ->
    let v = eval ctx env focus e in
    let nodes = Value.nodes_of v in
    List.iter (fun n -> emit_request ctx ~loc (Update.Delete n)) nodes;
    []
  | C.Replace (e1, e2, loc) ->
    (* Fig. 2: Delta3 = (Delta1, Delta2, insert(...), delete(node)). *)
    let v1 = eval ctx env focus e1 in
    let v2 = eval ctx env focus e2 in
    let node = Value.singleton_node v1 in
    let store = ctx.Context.store in
    let parent =
      match Store.parent store node with
      | Some p -> p
      | None -> Errors.raise_error "XUDY0009" "replace of a parentless node"
    in
    let nodes = content_to_nodes ctx v2 in
    emit_request ctx ~loc
      (Update.Insert { nodes; parent; position = Update.After node });
    emit_request ctx ~loc (Update.Delete node);
    []
  | C.Replace_value (e1, e2, loc) ->
    (* XQUF: the replacement atomizes to a string; emit a set-value
       request against the target node. *)
    let v1 = eval ctx env focus e1 in
    let v2 = eval ctx env focus e2 in
    let node = Value.singleton_node v1 in
    let s =
      String.concat " "
        (List.map Atomic.to_string (Value.atomize ctx.Context.store v2))
    in
    emit_request ctx ~loc (Update.Set_value (node, s));
    []
  | C.Rename (e1, e2, loc) ->
    let v1 = eval ctx env focus e1 in
    let v2 = eval ctx env focus e2 in
    let node = Value.singleton_node v1 in
    let name = value_to_qname ctx.Context.store v2 in
    emit_request ctx ~loc (Update.Rename (node, name));
    []
  | C.Snap (C.Snap_atomic, body) ->
    (* Extension (§5, failure control): run the whole scope — body
       evaluation, including any nested snaps it applies, plus the
       final application — inside a store transaction. On error the
       store is rolled back and the error propagates. *)
    Store.transactionally ctx.Context.store (fun () ->
        eval_snap ctx env focus Core_ast.Snap_ordered body)
  | C.Snap (mode, body) -> eval_snap ctx env focus mode body

(* Explicit left-to-right evaluation (OCaml's own application order is
   right-to-left, so a bare List.map would not do). *)
and eval_args ctx env focus arg_exprs =
  List.rev
    (List.fold_left (fun acc a -> eval ctx env focus a :: acc) [] arg_exprs)

and eval_snap ctx env focus mode body =
  let snaps = ctx.Context.snaps in
  Snap_stack.push snaps (Apply.mode_of_snap mode);
  let v =
    match eval ctx env focus body with
    | v -> v
    | exception ex ->
      (* Abandon the frame's pending updates on error. *)
      ignore (Snap_stack.pop snaps);
      raise ex
  in
  let delta, amode = Snap_stack.pop snaps in
  (match ctx.Context.on_apply with
  | Some hook -> hook delta amode
  | None -> ());
  Update.stats_record ctx.Context.delta_stats
    ~conflict_checked:(amode = Apply.Conflict_detection)
    delta;
  let apply_inline () =
    Xqb_obs.Profile.with_phase "snap-apply" @@ fun () ->
    let t0 = Xqb_obs.Clock.now_ns () in
    (match ctx.Context.tracer with
    | None ->
      Apply.apply ~rand_state:ctx.Context.rand ctx.Context.store amode delta
    | Some tr ->
      Xqb_obs.Trace.with_span ~cat:"snap"
        ~args:
          [
            ("requests", string_of_int (List.length delta));
            ("mode", Apply.mode_to_string amode);
          ]
        tr "snap.apply"
        (fun () ->
          Apply.apply ~rand_state:ctx.Context.rand ~tracer:tr ctx.Context.store
            amode delta));
    ctx.Context.apply_ns <- ctx.Context.apply_ns + (Xqb_obs.Clock.now_ns () - t0)
  in
  (match ctx.Context.apply_wrap with
  | Some wrap when delta <> [] -> wrap apply_inline
  | _ -> apply_inline ());
  v

and eval_name ctx env focus (ns : C.name_spec) : Qname.t =
  match ns with
  | C.Static q -> q
  | C.Dynamic e ->
    let v = eval ctx env focus e in
    value_to_qname ctx.Context.store v

and copy_item ctx (item : Item.t) : Item.t =
  match item with
  | Item.Atomic _ -> item
  | Item.Node n -> Item.Node (Store.deep_copy ctx.Context.store n)

(* Computed element construction: content items are deep-copied into
   the fresh element (XQuery 1.0 semantics — this is what makes the
   §3.3 copy-insertion around insert payloads sufficient to prevent
   trees with two parents). Attribute items must precede all other
   content. *)
and construct_element ctx name (content : Value.t) : Store.node_id =
  let store = ctx.Context.store in
  let el = Store.make_element store name in
  let seen_child = ref false in
  let pending_atoms = ref [] in
  let flush_atoms () =
    if !pending_atoms <> [] then begin
      let s = String.concat " " (List.rev_map Atomic.to_string !pending_atoms) in
      pending_atoms := [];
      seen_child := true;
      Store.insert store ~parent:el ~position:Store.Last [ Store.make_text store s ]
    end
  in
  List.iter
    (fun item ->
      match item with
      | Item.Atomic a -> pending_atoms := a :: !pending_atoms
      | Item.Node n -> (
        flush_atoms ();
        match Store.kind store n with
        | Store.Attribute ->
          if !seen_child then
            Errors.raise_error "XQTY0024"
              "attribute node follows non-attribute content";
          let c = Store.deep_copy store n in
          Store.insert store ~parent:el ~position:Store.Last [ c ]
        | Store.Document ->
          (* document nodes splice their children *)
          seen_child := true;
          let copies =
            List.map (fun c -> Store.deep_copy store c) (Store.children store n)
          in
          Store.insert store ~parent:el ~position:Store.Last copies
        | Store.Element | Store.Text | Store.Comment | Store.Pi ->
          seen_child := true;
          let c = Store.deep_copy store n in
          Store.insert store ~parent:el ~position:Store.Last [ c ]))
    content;
  flush_atoms ();
  el

and eval_user_call ctx env focus f arg_exprs =
  let arity = List.length arg_exprs in
  match Context.find_function ctx f arity with
  | None ->
    Errors.arity_error "call to undeclared function %s/%d" (Qname.to_string f) arity
  | Some fn ->
    (* Fig. 3: arguments evaluate left to right, threading the store;
       their Deltas precede the body's. *)
    let args = eval_args ctx env focus arg_exprs in
    let store = ctx.Context.store in
    (* Function bodies see the module's global variables, not the
       caller's locals; parameters shadow globals. *)
    let call_env =
      List.fold_left2
        (fun acc (p, ty) v ->
          type_check store (Printf.sprintf "argument $%s of %s" p (Qname.to_string f))
            ty v;
          Context.bind acc p v)
        ctx.Context.globals fn.Context.params args
    in
    (* The function body sees no focus: XQuery's context item does not
       propagate into function bodies. *)
    let result = eval ctx call_env None fn.Context.body in
    type_check store
      (Printf.sprintf "result of %s" (Qname.to_string f))
      fn.Context.return_type result;
    result

and eval_binop ctx env focus op e1 e2 =
  let store = ctx.Context.store in
  match op with
  | A.Or ->
    (* Defined order with short-circuit (documented deviation from
       XQuery 1.0's free order, required once operands may have
       effects). *)
    let v1 = eval ctx env focus e1 in
    if Value.effective_boolean_value v1 then Value.of_bool true
    else Value.of_bool (Value.effective_boolean_value (eval ctx env focus e2))
  | A.And ->
    let v1 = eval ctx env focus e1 in
    if not (Value.effective_boolean_value v1) then Value.of_bool false
    else Value.of_bool (Value.effective_boolean_value (eval ctx env focus e2))
  | A.Gen_eq | A.Gen_ne | A.Gen_lt | A.Gen_le | A.Gen_gt | A.Gen_ge ->
    let v1 = eval ctx env focus e1 in
    let v2 = eval ctx env focus e2 in
    let a1 = Value.atomize store v1 and a2 = Value.atomize store v2 in
    let cmp = gen_op op in
    Value.of_bool
      (List.exists
         (fun x -> List.exists (fun y -> Atomic.general_compare cmp x y) a2)
         a1)
  | A.Val_eq | A.Val_ne | A.Val_lt | A.Val_le | A.Val_gt | A.Val_ge -> (
    let v1 = eval ctx env focus e1 in
    let v2 = eval ctx env focus e2 in
    match Value.atomize store v1, Value.atomize store v2 with
    | [], _ | _, [] -> []
    | [ a ], [ b ] -> Value.of_bool (Atomic.value_compare (val_op op) a b)
    | _ -> Errors.type_error "value comparison on a sequence")
  | A.Is | A.Precedes | A.Follows -> (
    let v1 = eval ctx env focus e1 in
    let v2 = eval ctx env focus e2 in
    match v1, v2 with
    | [], _ | _, [] -> []
    | _ ->
      let n1 = Value.singleton_node v1 and n2 = Value.singleton_node v2 in
      let c = Store.compare_order store n1 n2 in
      Value.of_bool
        (match op with
        | A.Is -> n1 = n2
        | A.Precedes -> c < 0
        | A.Follows -> c > 0
        | _ -> assert false))
  | A.Add | A.Sub | A.Mul | A.Div | A.Idiv | A.Mod -> (
    let v1 = eval ctx env focus e1 in
    let v2 = eval ctx env focus e2 in
    match Value.atomize store v1, Value.atomize store v2 with
    | [], _ | _, [] -> []
    | [ a ], [ b ] -> Value.of_atomic (Atomic.arith (arith_op op) a b)
    | _ -> Errors.type_error "arithmetic on a sequence")
  | A.To -> (
    let v1 = eval ctx env focus e1 in
    let v2 = eval ctx env focus e2 in
    match v1, v2 with
    | [], _ | _, [] -> []
    | _ ->
      let a = Value.to_integer store v1 and b = Value.to_integer store v2 in
      if a > b then []
      else List.init (b - a + 1) (fun i -> Item.integer (a + i)))
  | A.Union | A.Intersect | A.Except ->
    let v1 = eval ctx env focus e1 in
    let v2 = eval ctx env focus e2 in
    let n1 = Value.nodes_of v1 and n2 = Value.nodes_of v2 in
    let module IS = Set.Make (Int) in
    let s2 = IS.of_list n2 in
    let result =
      match op with
      | A.Union -> n1 @ n2
      | A.Intersect -> List.filter (fun n -> IS.mem n s2) n1
      | A.Except -> List.filter (fun n -> not (IS.mem n s2)) n1
      | _ -> assert false
    in
    Value.of_nodes (Store.sort_doc_order store result)

and gen_op : A.binop -> Atomic.cmp_op = function
  | A.Gen_eq -> Atomic.Eq
  | A.Gen_ne -> Atomic.Ne
  | A.Gen_lt -> Atomic.Lt
  | A.Gen_le -> Atomic.Le
  | A.Gen_gt -> Atomic.Gt
  | A.Gen_ge -> Atomic.Ge
  | _ -> assert false

and val_op : A.binop -> Atomic.cmp_op = function
  | A.Val_eq -> Atomic.Eq
  | A.Val_ne -> Atomic.Ne
  | A.Val_lt -> Atomic.Lt
  | A.Val_le -> Atomic.Le
  | A.Val_gt -> Atomic.Gt
  | A.Val_ge -> Atomic.Ge
  | _ -> assert false

and arith_op : A.binop -> Atomic.arith_op = function
  | A.Add -> Atomic.Add
  | A.Sub -> Atomic.Sub
  | A.Mul -> Atomic.Mul
  | A.Div -> Atomic.Div
  | A.Idiv -> Atomic.Idiv
  | A.Mod -> Atomic.Mod
  | _ -> assert false

and compare_sort_keys (k1 : (Atomic.t option * A.sort_dir) list)
    (k2 : (Atomic.t option * A.sort_dir) list) : int =
  (* order-by comparison: empty keys first; untyped compares as string
     (the standard value-comparison rule); NaN ties. Shared with the
     plan executor's OrderBy. *)
  let rec go l1 l2 =
    match l1, l2 with
    | [], [] -> 0
    | (a, dir) :: r1, (b, _) :: r2 ->
      let c =
        match a, b with
        | None, None -> 0
        | None, Some _ -> -1
        | Some _, None -> 1
        | Some a, Some b -> (
          let norm = function Atomic.Untyped s -> Atomic.String s | x -> x in
          match Atomic.compare_values (norm a) (norm b) with
          | Some c -> c
          | None -> 0)
      in
      let c = match dir with A.Ascending -> c | A.Descending -> -c in
      if c <> 0 then c else go r1 r2
    | _ -> 0
  in
  go k1 k2

(* Evaluate one order-by key to its comparable form. *)
and eval_sort_key ctx env focus (ke : C.expr) : Atomic.t option =
  let kv = eval ctx env focus ke in
  match Value.atomize ctx.Context.store kv with
  | [] -> None
  | [ a ] -> Some a
  | _ -> Errors.type_error "order-by key is a sequence"

(* FLWOR with order-by: generate the binding-tuple stream in clause
   order, sort it by the order specs, then evaluate the return clause
   in sorted order. Effects in the clauses happen in generation order;
   effects in the return clause happen in sorted order — matching the
   defined-evaluation-order semantics. *)
and eval_sort_flwor ctx env focus clauses specs ret =
  let store = ctx.Context.store in
  let tuples = ref [] in
  let rec gen env = function
    | [] -> tuples := env :: !tuples
    | C.S_for (v, posvar, e) :: rest ->
      let items = eval ctx env focus e in
      let n = ref 0 in
      List.iter
        (fun item ->
          incr n;
          let env = Context.bind env v [ item ] in
          let env =
            match posvar with
            | None -> env
            | Some pv -> Context.bind env pv (Value.of_int !n)
          in
          gen env rest)
        items
    | C.S_let (v, e) :: rest ->
      let value = eval ctx env focus e in
      gen (Context.bind env v value) rest
    | C.S_where e :: rest ->
      if Value.effective_boolean_value (eval ctx env focus e) then gen env rest
  in
  gen env clauses;
  ignore store;
  let tuples = List.rev !tuples in
  let keyed =
    List.map
      (fun tenv ->
        let keys =
          List.map (fun (ke, dir) -> (eval_sort_key ctx tenv focus ke, dir)) specs
        in
        (keys, tenv))
      tuples
  in
  let sorted =
    List.stable_sort (fun (k1, _) (k2, _) -> compare_sort_keys k1 k2) keyed
  in
  List.concat_map (fun (_, tenv) -> eval ctx tenv focus ret) sorted
