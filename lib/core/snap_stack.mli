(** The stack of pending-update lists of §4.1: one frame per open snap
    scope; update operators append to the innermost frame; closing a
    snap pops its frame and applies the ∆. *)

type t

exception No_snap_scope

val create : unit -> t

(** Number of open snap scopes. *)
val depth : t -> int

(** Open a scope with the given application mode. *)
val push : t -> Apply.mode -> unit

(** Close the innermost scope: its ∆ (in evaluation order) and mode.
    @raise No_snap_scope if none is open. *)
val pop : t -> Update.delta * Apply.mode

(** Record a request in the innermost scope. @raise No_snap_scope
    outside any snap (cannot happen under the engine's implicit
    top-level snap, §2.3). *)
val emit : t -> Update.request -> unit

(** Requests pending in the innermost scope. O(1) — each frame keeps
    an explicit count. *)
val pending : t -> int
