(* Update requests and pending-update lists (∆) — §3.2.

   An update request is a tuple "opname(par1, ..., parn)"; its
   application is a partial function from stores to stores (the
   preconditions are enforced by [Xqb_store.Store]). A ∆ is an
   *ordered* list of requests; the order is fully specified by the
   language semantics, and whether application honors it depends on
   the snap mode ([Apply]).

   Every request also carries a provenance record — where in the query
   source the effecting expression sat, how deep in the snap stack it
   ran, and (when tracing) which trace it belongs to — so conflict
   errors, the mutation journal, and ∆ introspection can cite the
   exact expression responsible for an effect.

   Note on insert positions: the paper's worked example in §3.4
   (snap ordered { insert <a/>; snap { insert <b/> }; insert <c/> }
   yielding b,a,c) requires "into" to mean *as last at application
   time*: the inner snap's <b/> lands before the outer <a/> only if
   the outer inserts resolve "last" when the outer ∆ is applied, not
   when the insert expression is evaluated. The appendix's
   "last child otherwise self" judgement resolves the anchor at
   evaluation time, which would yield a,b,c instead. We follow the
   worked example (and the later XQuery Update Facility), keeping
   First/Last symbolic and Before/After anchored on nodes. *)

type position =
  | First
  | Last
  | Before of Xqb_store.Store.node_id
  | After of Xqb_store.Store.node_id

type op =
  | Insert of {
      nodes : Xqb_store.Store.node_id list;
      parent : Xqb_store.Store.node_id;
      position : position;
    }
  | Delete of Xqb_store.Store.node_id
  | Rename of Xqb_store.Store.node_id * Xqb_xml.Qname.t
  | Set_value of Xqb_store.Store.node_id * string
    (* XQUF "replace value of node": for text/comment/PI/attribute
       nodes set the content; for elements/documents replace all
       children by one text node with the given value *)

type provenance = {
  src_line : int;  (* 0 when unknown (e.g. hand-built deltas) *)
  src_col : int;
  snap_depth : int;  (* snap-stack depth at emission time *)
  trace_id : string option;  (* the emitting job's trace, if traced *)
}

let no_provenance = { src_line = 0; src_col = 0; snap_depth = 0; trace_id = None }

let has_location p = p.src_line > 0

let provenance_to_string p =
  if not (has_location p) then ""
  else
    Printf.sprintf "%d:%d (snap depth %d%s)" p.src_line p.src_col p.snap_depth
      (match p.trace_id with None -> "" | Some t -> ", trace " ^ t)

type request = { op : op; prov : provenance }

let make ?(prov = no_provenance) op = { op; prov }

(* ∆: most-recent request last. Represented as a reversed list inside
   accumulation frames (see [Snap_stack]) and materialized in order
   here. *)
type delta = request list

let position_to_string = function
  | First -> "first"
  | Last -> "last"
  | Before n -> Printf.sprintf "before(%d)" n
  | After n -> Printf.sprintf "after(%d)" n

let op_to_string = function
  | Insert { nodes; parent; position } ->
    Printf.sprintf "insert([%s], %d, %s)"
      (String.concat ";" (List.map string_of_int nodes))
      parent
      (position_to_string position)
  | Delete n -> Printf.sprintf "delete(%d)" n
  | Rename (n, q) -> Printf.sprintf "rename(%d, %s)" n (Xqb_xml.Qname.to_string q)
  | Set_value (n, s) -> Printf.sprintf "set-value(%d, %S)" n s

let request_to_string r = op_to_string r.op

let delta_to_string d = String.concat ", " (List.map request_to_string d)

let op_kind_name = function
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Rename _ -> "rename"
  | Set_value _ -> "set-value"

(* -- Store-aware rendering ------------------------------------------ *)

(* With a store at hand, render node ids as stable paths
   ("/site/regions[1]/africa[1]") instead of raw integers. Falls back
   to "#<id>" for ids the store no longer knows. *)
let node_str store n =
  match Xqb_store.Store.node_path store n with
  | p -> p
  | exception _ -> Printf.sprintf "#%d" n

let render_position store = function
  | First -> "first"
  | Last -> "last"
  | Before n -> Printf.sprintf "before %s" (node_str store n)
  | After n -> Printf.sprintf "after %s" (node_str store n)

let render_op store = function
  | Insert { nodes; parent; position } ->
    Printf.sprintf "insert [%s] into %s at %s"
      (String.concat "; " (List.map (node_str store) nodes))
      (node_str store parent)
      (render_position store position)
  | Delete n -> Printf.sprintf "delete %s" (node_str store n)
  | Rename (n, q) ->
    Printf.sprintf "rename %s to %s" (node_str store n) (Xqb_xml.Qname.to_string q)
  | Set_value (n, s) ->
    Printf.sprintf "set value of %s to %S" (node_str store n) s

let render_request store r =
  let loc =
    if has_location r.prov then
      Printf.sprintf " @ %d:%d" r.prov.src_line r.prov.src_col
    else ""
  in
  Printf.sprintf "%s%s [snap depth %d]" (render_op store r.op) loc
    r.prov.snap_depth

let render_delta store d =
  String.concat "\n" (List.map (render_request store) d)

(* -- ∆ statistics (the DELTA wire command / --show-delta summary) --- *)

(* Snap-depth histogram buckets: 0..depth_buckets-2 exact, the last
   bucket collects everything deeper. *)
let depth_buckets = 8

type stats = {
  mutable snaps : int;  (* snap scopes whose ∆ was applied *)
  mutable inserts : int;
  mutable deletes : int;
  mutable renames : int;
  mutable set_values : int;
  mutable conflicts_checked : int;  (* ∆s run through Conflict.check *)
  mutable max_snap_depth : int;
  depth_hist : int array;  (* requests by emission snap depth *)
}

let stats_create () =
  { snaps = 0; inserts = 0; deletes = 0; renames = 0; set_values = 0;
    conflicts_checked = 0; max_snap_depth = 0;
    depth_hist = Array.make depth_buckets 0 }

let stats_reset s =
  s.snaps <- 0;
  s.inserts <- 0;
  s.deletes <- 0;
  s.renames <- 0;
  s.set_values <- 0;
  s.conflicts_checked <- 0;
  s.max_snap_depth <- 0;
  Array.fill s.depth_hist 0 depth_buckets 0

let stats_record s ?(conflict_checked = false) (d : delta) =
  s.snaps <- s.snaps + 1;
  if conflict_checked then s.conflicts_checked <- s.conflicts_checked + 1;
  List.iter
    (fun r ->
      (match r.op with
      | Insert _ -> s.inserts <- s.inserts + 1
      | Delete _ -> s.deletes <- s.deletes + 1
      | Rename _ -> s.renames <- s.renames + 1
      | Set_value _ -> s.set_values <- s.set_values + 1);
      let d = r.prov.snap_depth in
      if d > s.max_snap_depth then s.max_snap_depth <- d;
      let b = if d >= depth_buckets then depth_buckets - 1 else max 0 d in
      s.depth_hist.(b) <- s.depth_hist.(b) + 1)
    d

let stats_requests s = s.inserts + s.deletes + s.renames + s.set_values

let stats_to_string s =
  Printf.sprintf
    "snaps=%d requests=%d (insert=%d delete=%d rename=%d set-value=%d) \
     conflicts-checked=%d max-depth=%d"
    s.snaps (stats_requests s) s.inserts s.deletes s.renames s.set_values
    s.conflicts_checked s.max_snap_depth

(* Apply one request to the store. Partial: raises
   [Xqb_store.Store.Update_error] when a precondition fails — with the
   request's source location prefixed when provenance carries one.
   Every successfully applied request is noted in the store's mutation
   journal (a no-op branch when journaling is off). *)
let apply_request store (r : request) =
  let apply_op () =
    match r.op with
    | Insert { nodes; parent; position } -> (
      match position with
      | First -> Xqb_store.Store.insert store ~parent ~position:Xqb_store.Store.First nodes
      | Last -> Xqb_store.Store.insert store ~parent ~position:Xqb_store.Store.Last nodes
      | After anchor ->
        Xqb_store.Store.insert store ~parent ~position:(Xqb_store.Store.After anchor) nodes
      | Before anchor ->
        (* before(x) = after the preceding sibling of x, or first *)
        let a = Xqb_store.Store.get store anchor in
        if a.Xqb_store.Store.parent <> Some parent then
          raise
            (Xqb_store.Store.Update_error
               "insertion anchor is not a child of the target parent");
        if a.Xqb_store.Store.pos = 0 then
          Xqb_store.Store.insert store ~parent ~position:Xqb_store.Store.First nodes
        else
          let prev =
            Xqb_store.Store.nth_child store parent (a.Xqb_store.Store.pos - 1)
          in
          Xqb_store.Store.insert store ~parent ~position:(Xqb_store.Store.After prev)
            nodes)
    | Delete n -> Xqb_store.Store.detach store n
    | Rename (n, q) -> Xqb_store.Store.rename store n q
    | Set_value (n, s) -> (
      match Xqb_store.Store.kind store n with
      | Xqb_store.Store.Text | Xqb_store.Store.Comment | Xqb_store.Store.Pi
      | Xqb_store.Store.Attribute ->
        Xqb_store.Store.set_content store n s
      | Xqb_store.Store.Element | Xqb_store.Store.Document ->
        List.iter (Xqb_store.Store.detach store) (Xqb_store.Store.children store n);
        if s <> "" then
          Xqb_store.Store.insert store ~parent:n ~position:Xqb_store.Store.Last
            [ Xqb_store.Store.make_text store s ])
  in
  if Xqb_store.Store.journal_active store then
    Xqb_store.Store.journal_note store
      ~line:r.prov.src_line ~col:r.prov.src_col ~snap_depth:r.prov.snap_depth
      ~trace_id:r.prov.trace_id
      ~desc:(op_kind_name r.op);
  try apply_op ()
  with Xqb_store.Store.Update_error m when has_location r.prov ->
    raise
      (Xqb_store.Store.Update_error
         (Printf.sprintf "at %d:%d: %s" r.prov.src_line r.prov.src_col m))
