(* The stack of pending-update lists described in §4.1: "the
   nondeterministic and conflict-detection semantics ... can be easily
   implemented using a stack of update lists, where each update list
   on the stack corresponds to a given snap scope. The invocation of
   an update operation adds an update in the update list on the top of
   the stack. When exiting a snap, the top-most delta ... is popped
   from the stack and applied."

   We use the same stack for the ordered semantics too: each frame
   keeps its requests in evaluation order (the order the semantic
   rules of Figs. 2-3 specify), which is exactly ∆ order. *)

type frame = {
  mutable requests_rev : Update.request list;
  (* |requests_rev|, kept explicitly so [pending] is O(1) — it is
     consulted per emitted request (∆-size budgets) and from metrics. *)
  mutable count : int;
  mode : Apply.mode;
}

type t = { mutable frames : frame list }

exception No_snap_scope

let create () = { frames = [] }

let depth t = List.length t.frames

let push t mode = t.frames <- { requests_rev = []; count = 0; mode } :: t.frames

(* Pop the top frame and return its ∆ in order. *)
let pop t =
  match t.frames with
  | [] -> raise No_snap_scope
  | f :: rest ->
    t.frames <- rest;
    (List.rev f.requests_rev, f.mode)

(* Record an update request in the innermost snap scope. Update
   operations outside any snap are a dynamic error — in practice they
   cannot occur because the engine wraps the top-level query in an
   implicit snap (§2.3). *)
let emit t (r : Update.request) =
  match t.frames with
  | [] -> raise No_snap_scope
  | f :: _ ->
    f.requests_rev <- r :: f.requests_rev;
    f.count <- f.count + 1

(* Number of requests pending in the innermost scope. O(1). *)
let pending t = match t.frames with [] -> 0 | f :: _ -> f.count
