(* Applying a ∆ to the store under the three semantics of §3.2:

   - [Ordered]: requests applied exactly in ∆ order;
   - [Nondeterministic]: requests applied in an arbitrary order — here
     a *seeded pseudo-random permutation*, so tests can demonstrate
     both the nondeterminism and the order-independence claims
     deterministically;
   - [Conflict_detection]: linear-time verification first
     ([Conflict.check]); if it succeeds the order of application is
     immaterial (we still permute, as a self-check); if it fails the
     whole application fails.

   Every application runs inside [Store.transactionally], so a failed
   application (precondition violation or detected conflict) leaves
   the store exactly as it was: the paper's "update application is
   undefined" never corrupts state in this implementation. *)

type mode = Ordered | Nondeterministic | Conflict_detection

let mode_of_snap (m : Core_ast.snap_mode) =
  match m with
  | Core_ast.Snap_default | Core_ast.Snap_ordered | Core_ast.Snap_atomic ->
    Ordered
  | Core_ast.Snap_nondeterministic -> Nondeterministic
  | Core_ast.Snap_conflict -> Conflict_detection

let mode_to_string = function
  | Ordered -> "ordered"
  | Nondeterministic -> "nondeterministic"
  | Conflict_detection -> "conflict-detection"

(* Deterministic Fisher-Yates shuffle from a caller-provided state. *)
let permute rand_state arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Random.State.int rand_state (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done

let apply_ordered store (delta : Update.delta) =
  List.iter (Update.apply_request store) delta

let apply_permuted store rand_state (delta : Update.delta) =
  let arr = Array.of_list delta in
  permute rand_state arr;
  Array.iter (Update.apply_request store) arr

(* Apply [delta] to [store] under [mode]. Raises [Conflict.Conflict]
   or [Store.Update_error]; in both cases the store is rolled back.
   When [tracer] is given, the conflict-detection check gets its own
   span (it is the one application phase whose cost scales with |∆|²
   worst-case conflict classes, so it is worth seeing separately). *)
let apply ?rand_state ?tracer store mode (delta : Update.delta) =
  let rand_state =
    match rand_state with Some r -> r | None -> Random.State.make [| 0x5eed |]
  in
  Xqb_store.Store.transactionally store (fun () ->
      match mode with
      | Ordered -> apply_ordered store delta
      | Nondeterministic -> apply_permuted store rand_state delta
      | Conflict_detection ->
        (match tracer with
        | Some tr when Xqb_obs.Trace.enabled tr ->
          Xqb_obs.Trace.with_span ~cat:"snap"
            ~args:[ ("requests", string_of_int (List.length delta)) ]
            tr "conflict.check"
            (fun () -> Conflict.check ~store delta)
        | _ -> Conflict.check ~store delta);
        apply_permuted store rand_state delta)
