(* The XQuery! core language (§3.3). Surface expressions are
   normalized into this smaller language; the dynamic semantics of
   Figs. 2-3 is defined over it ([Eval]).

   Differences from the surface syntax:
   - FLWORs without [order by] become nested [For]/[Let]/[If];
   - direct constructors become computed constructors;
   - [insert]/[replace] payloads are wrapped in an explicit [Copy]
     (§3.3's normalization rule);
   - [into] is resolved to [as last into];
   - function calls are resolved to user functions or builtins. *)

module Qname = Xqb_xml.Qname
module Axes = Xqb_store.Axes

(* Source location of the effecting keyword, carried from the surface
   syntax so emitted update requests can cite where they came from. *)
type loc = Xqb_syntax.Ast.loc = { line : int; col : int }

let no_loc = Xqb_syntax.Ast.no_loc

type snap_mode = Xqb_syntax.Ast.snap_mode =
  | Snap_default
  | Snap_ordered
  | Snap_nondeterministic
  | Snap_conflict
  | Snap_atomic

type expr =
  | Scalar of Xqb_xdm.Atomic.t  (* literals after normalization *)
  | Var of string
  | Context_item
  | Seq of expr * expr  (* binary comma, Fig. 3 *)
  | Empty  (* () *)
  | For of string * string option * expr * expr  (* for $v (at $p)? in e1 return e2 *)
  | Let of string * expr * expr
  | If of expr * expr * expr
  | Sort_flwor of sort_clause list * (expr * Xqb_syntax.Ast.sort_dir) list * expr
    (* FLWORs with order-by keep their clause chain *)
  | Some_sat of string * expr * expr
  | Every_sat of string * expr * expr
  | Step of expr * Axes.axis * Axes.node_test  (* e/axis::test, ddo applied *)
  | Key_step of expr * Qname.t * Qname.t * expr
    (* optimizer-produced form of e/descendant::elem[@attr = rhs] with
       a pure, focus-free rhs: eligible for the store's attribute-value
       key index when the rhs evaluates to strings *)
  | Map of expr * expr
    (* e1/e2 with general e2: evaluate e2 with each item of e1 as the
       focus; node results get distinct-doc-order, atomic-only results
       keep sequence order, mixed results are XPTY0018 *)
  | Predicate of expr * expr  (* e[p] with focus semantics *)
  | Binop of Xqb_syntax.Ast.binop * expr * expr
  | Unary_minus of expr
  | Call_builtin of string * expr list  (* resolved builtin, by canonical name *)
  | Call_user of Qname.t * expr list
  | Instance_of of expr * Xqb_syntax.Ast.seq_type
  | Cast_as of expr * Xqb_syntax.Ast.item_type
  | Castable_as of expr * Xqb_syntax.Ast.item_type
  | Treat_as of expr * Xqb_syntax.Ast.seq_type
  | Elem of name_spec * expr  (* computed element constructor *)
  | Attr of name_spec * expr
  | Text_node of expr
  | Comment_node of expr
  | Pi_node of name_spec * expr
  | Doc_node of expr
  (* XQuery! operations *)
  | Insert of insert_target * expr * expr * loc
    (* payload (already Copy-wrapped), target *)
  | Delete of expr * loc
  | Replace of expr * expr * loc  (* 2nd already Copy-wrapped *)
  | Replace_value of expr * expr * loc  (* XQUF "replace value of node" *)
  | Rename of expr * expr * loc
  | Copy of expr
  | Snap of snap_mode * expr

and name_spec =
  | Static of Qname.t
  | Dynamic of expr

and insert_target = T_first | T_last | T_before | T_after

and sort_clause =
  | S_for of string * string option * expr
  | S_let of string * expr
  | S_where of expr

let insert_target_to_string = function
  | T_first -> "as first into"
  | T_last -> "as last into"
  | T_before -> "before"
  | T_after -> "after"

(* A compact printer for debugging and golden tests. *)
let rec pp ppf (e : expr) =
  let open Format in
  match e with
  | Scalar a -> fprintf ppf "%s(%s)" (Xqb_xdm.Atomic.type_name a) (Xqb_xdm.Atomic.to_string a)
  | Var v -> fprintf ppf "$%s" v
  | Context_item -> fprintf ppf "."
  | Empty -> fprintf ppf "()"
  | Seq (a, b) -> fprintf ppf "(%a, %a)" pp a pp b
  | For (v, None, e1, e2) -> fprintf ppf "for $%s in %a return %a" v pp e1 pp e2
  | For (v, Some p, e1, e2) ->
    fprintf ppf "for $%s at $%s in %a return %a" v p pp e1 pp e2
  | Let (v, e1, e2) -> fprintf ppf "let $%s := %a return %a" v pp e1 pp e2
  | If (c, t, e) -> fprintf ppf "if (%a) then %a else %a" pp c pp t pp e
  | Sort_flwor (_, _, _) -> fprintf ppf "<sort-flwor>"
  | Some_sat (v, e1, e2) -> fprintf ppf "some $%s in %a satisfies %a" v pp e1 pp e2
  | Every_sat (v, e1, e2) -> fprintf ppf "every $%s in %a satisfies %a" v pp e1 pp e2
  | Step (e, ax, t) ->
    fprintf ppf "%a/%s::%s" pp e (Axes.axis_to_string ax) (Axes.node_test_to_string t)
  | Map (a, b) -> fprintf ppf "%a/%a" pp a pp b
  | Key_step (b, elem, attr, rhs) ->
    fprintf ppf "%a/key::%s[@%s = %a]" pp b (Qname.to_string elem)
      (Qname.to_string attr) pp rhs
  | Predicate (e, p) -> fprintf ppf "%a[%a]" pp e pp p
  | Binop (op, a, b) ->
    fprintf ppf "(%a %s %a)" pp a (Xqb_syntax.Ast.binop_to_string op) pp b
  | Unary_minus e -> fprintf ppf "-(%a)" pp e
  | Call_builtin (f, args) ->
    fprintf ppf "fn:%s(%a)" f (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp) args
  | Call_user (f, args) ->
    fprintf ppf "%s(%a)" (Qname.to_string f)
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp)
      args
  | Instance_of (e, t) ->
    fprintf ppf "(%a instance of %s)" pp e (Xqb_syntax.Ast.seq_type_to_string t)
  | Cast_as (e, t) ->
    fprintf ppf "(%a cast as %s)" pp e (Xqb_syntax.Ast.item_type_to_string t)
  | Castable_as (e, t) ->
    fprintf ppf "(%a castable as %s)" pp e (Xqb_syntax.Ast.item_type_to_string t)
  | Treat_as (e, t) ->
    fprintf ppf "(%a treat as %s)" pp e (Xqb_syntax.Ast.seq_type_to_string t)
  | Elem (Static n, c) -> fprintf ppf "element %s {%a}" (Qname.to_string n) pp c
  | Elem (Dynamic n, c) -> fprintf ppf "element {%a} {%a}" pp n pp c
  | Attr (Static n, c) -> fprintf ppf "attribute %s {%a}" (Qname.to_string n) pp c
  | Attr (Dynamic n, c) -> fprintf ppf "attribute {%a} {%a}" pp n pp c
  | Text_node e -> fprintf ppf "text {%a}" pp e
  | Comment_node e -> fprintf ppf "comment {%a}" pp e
  | Pi_node (Static t, e) ->
    fprintf ppf "processing-instruction %s {%a}" (Qname.to_string t) pp e
  | Pi_node (Dynamic t, e) ->
    fprintf ppf "processing-instruction {%a} {%a}" pp t pp e
  | Doc_node e -> fprintf ppf "document {%a}" pp e
  | Insert (tgt, what, into, _) ->
    fprintf ppf "insert {%a} %s {%a}" pp what (insert_target_to_string tgt) pp into
  | Delete (e, _) -> fprintf ppf "delete {%a}" pp e
  | Replace (a, b, _) -> fprintf ppf "replace {%a} with {%a}" pp a pp b
  | Replace_value (a, b, _) -> fprintf ppf "replace value of node %a with %a" pp a pp b
  | Rename (a, b, _) -> fprintf ppf "rename {%a} to {%a}" pp a pp b
  | Copy e -> fprintf ppf "copy {%a}" pp e
  | Snap (m, e) ->
    let ms = Xqb_syntax.Ast.snap_mode_to_string m in
    fprintf ppf "snap %s{%a}" (if ms = "" then "" else ms ^ " ") pp e

let to_string e = Format.asprintf "%a" pp e

(* Immediate sub-expressions; used by the static analyses and the
   purity judgement. *)
let sub_exprs (e : expr) : expr list =
  match e with
  | Scalar _ | Var _ | Context_item | Empty -> []
  | Seq (a, b)
  | Binop (_, a, b)
  | Predicate (a, b)
  | Let (_, a, b)
  | Some_sat (_, a, b)
  | Every_sat (_, a, b)
  | Replace (a, b, _)
  | Replace_value (a, b, _)
  | Rename (a, b, _)
  | For (_, _, a, b)
  | Insert (_, a, b, _)
  | Map (a, b)
  | Key_step (a, _, _, b) ->
    [ a; b ]
  | If (a, b, c) -> [ a; b; c ]
  | Sort_flwor (clauses, specs, ret) ->
    List.concat_map
      (function
        | S_for (_, _, e) | S_let (_, e) | S_where e -> [ e ])
      clauses
    @ List.map fst specs @ [ ret ]
  | Step (e, _, _)
  | Unary_minus e
  | Instance_of (e, _)
  | Cast_as (e, _)
  | Castable_as (e, _)
  | Treat_as (e, _)
  | Text_node e
  | Comment_node e
  | Doc_node e
  | Delete (e, _)
  | Copy e
  | Snap (_, e) ->
    [ e ]
  | Elem (ns, c) | Attr (ns, c) | Pi_node (ns, c) -> (
    match ns with Static _ -> [ c ] | Dynamic n -> [ n; c ])
  | Call_builtin (_, args) | Call_user (_, args) -> args
