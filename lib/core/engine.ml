(* The public entry point: compile and run XQuery! programs.

   Pipeline (§4.2): parse -> normalize -> static checks -> (optional
   algebraic compilation, in [Xqb_algebra]) -> evaluate. The top-level
   query is wrapped in an implicit snap (§2.3), whose mode defaults to
   ordered and can be overridden per run. *)

module Value = Xqb_xdm.Value
module Item = Xqb_xdm.Item
module Store = Xqb_store.Store
module Qname = Xqb_xml.Qname

type t = { ctx : Context.t }

exception Compile_error of string

let create ?seed ?store () =
  let ctx = Context.create ?seed ?store () in
  { ctx }

let context t = t.ctx
let store t = t.ctx.Context.store

(* Engine-level wrapper over {!Context.fork_read}: a read-only fork
   sharing the store but isolated from all session mutations. *)
let fork_read t = { ctx = Context.fork_read t.ctx }

(* Load an XML document into the store, register it for fn:doc under
   [uri], and return its document node. *)
let load_document t ~uri xml =
  let doc = Store.load_string (store t) xml in
  Context.register_doc t.ctx uri doc;
  doc

let set_doc_resolver t f = t.ctx.Context.doc_resolver <- Some f

(* Bind a global variable visible to subsequent queries. *)
let bind t name value =
  t.ctx.Context.globals <- Context.bind t.ctx.Context.globals name value

let bind_node t name node = bind t name (Value.of_node node)

let lookup_global t name = Context.SMap.find_opt name t.ctx.Context.globals

type compiled = {
  prog : Normalize.prog;
  source : string;
  rewrites : (string * int) list;  (* simplifier rules fired (§4.2) *)
  type_warnings : string list;  (* static-typing warnings (advisory) *)
}

let parse_error_message = function
  | Xqb_syntax.Parser.Error (l, c, m) -> Printf.sprintf "parse error %d:%d: %s" l c m
  | Xqb_syntax.Lexer.Error (l, c, m) -> Printf.sprintf "lex error %d:%d: %s" l c m
  | Normalize.Static_error m -> Printf.sprintf "static error: %s" m
  | e -> Printexc.to_string e

(* Merge two rule-count alists. *)
let merge_counts a b =
  List.fold_left
    (fun acc (rule, n) ->
      match List.assoc_opt rule acc with
      | Some m -> (rule, m + n) :: List.remove_assoc rule acc
      | None -> (rule, n) :: acc)
    a b

(* Install a compiled program's function declarations into the engine.
   [compile] does this automatically; the service layer's plan cache
   calls it on cache hits, where the parse/normalize/rewrite phases
   are skipped but a fresh session still needs the declarations. *)
let install_functions t (c : compiled) =
  let prog = c.prog in
  let purities = Static.classify_functions prog.Normalize.functions in
  List.iter
    (fun (f : Normalize.func) ->
      let arity = List.length f.Normalize.params in
      let updating =
        match
          List.find_opt
            (fun (g, m, _) -> Qname.equal f.Normalize.fname g && m = arity)
            purities
        with
        | Some (_, _, Static.Pure) -> false
        | Some _ -> true
        | None -> false
      in
      Context.declare_function t.ctx f.Normalize.fname arity
        {
          Context.params = f.Normalize.params;
          return_type = f.Normalize.return_type;
          body = f.Normalize.body;
          updating;
        })
    prog.Normalize.functions

(* Parse, normalize, statically check and simplify a program (§4.2's
   "phase of syntactic rewriting", with purity guards). Function
   declarations are installed into the engine so later [compile]d
   queries can call them too. *)
let compile ?(simplify = true) ?(elide_ddo = true) t source : compiled =
  Xqb_obs.Profile.with_phase "compile" @@ fun () ->
  Context.span ~cat:"compile" t.ctx "compile" @@ fun () ->
  let extra_fns =
    Hashtbl.fold
      (fun (name, arity) _ acc -> (Qname.of_string name, arity) :: acc)
      t.ctx.Context.functions []
  in
  let prog =
    try
      let ast =
        Context.span ~cat:"compile" t.ctx "parse" (fun () ->
            Xqb_syntax.Parser.parse_prog source)
      in
      Context.span ~cat:"compile" t.ctx "normalize" (fun () ->
          Normalize.normalize_prog ~extra_fns ~is_builtin:Functions.is_builtin ast)
    with
    | (Xqb_syntax.Parser.Error _ | Xqb_syntax.Lexer.Error _ | Normalize.Static_error _)
      as e ->
      raise (Compile_error (parse_error_message e))
  in
  let host_bound =
    Context.SMap.fold (fun k _ acc -> k :: acc) t.ctx.Context.globals []
  in
  (try
     Context.span ~cat:"compile" t.ctx "static.check" (fun () ->
         Static.check_prog ~initial:host_bound prog)
   with Normalize.Static_error m -> raise (Compile_error ("static error: " ^ m)));
  (* §4.2 syntactic rewriting, guarded by the purity judgement. *)
  let rewrites = ref [] in
  let prog =
    if not simplify then prog
    else
      Context.span ~cat:"compile" t.ctx "simplify" @@ fun () ->
      let purity = Static.purity_oracle prog in
      let simp e =
        let e', stats = Rewrite.simplify ~purity e in
        rewrites := merge_counts !rewrites stats;
        e'
      in
      {
        Normalize.global_vars =
          List.map (fun (v, ty, e) -> (v, ty, simp e)) prog.Normalize.global_vars;
        functions =
          List.map
            (fun (f : Normalize.func) -> { f with Normalize.body = simp f.Normalize.body })
            prog.Normalize.functions;
        body = Option.map simp prog.Normalize.body;
      }
  in
  (* Document-order analysis: elide provably redundant ddo sorts.
     After [simplify] (whose rules pattern-match "%ddo" literally),
     before [Typing.check_prog] (which types "%ddo-elided"). *)
  let prog =
    if not elide_ddo then prog
    else
      Context.span ~cat:"compile" t.ctx "ddo-elide" @@ fun () ->
      let purity = Static.purity_oracle prog in
      let elided = ref 0 in
      let el e =
        let e', n = Static.elide_ddo ~purity e in
        elided := !elided + n;
        e'
      in
      let prog =
        {
          Normalize.global_vars =
            List.map (fun (v, ty, e) -> (v, ty, el e)) prog.Normalize.global_vars;
          functions =
            List.map
              (fun (f : Normalize.func) -> { f with Normalize.body = el f.Normalize.body })
              prog.Normalize.functions;
          body = Option.map el prog.Normalize.body;
        }
      in
      if !elided > 0 then
        rewrites := merge_counts !rewrites [ ("ddo-elide", !elided) ];
      prog
  in
  let type_warnings =
    Context.span ~cat:"compile" t.ctx "typing" (fun () -> Typing.check_prog prog)
  in
  let c = { prog; source; rewrites = !rewrites; type_warnings } in
  install_functions t c;
  c

(* Evaluate the global-variable declarations of a compiled program (in
   order, under the implicit top-level snap like the body). *)
let eval_globals ?(mode = Core_ast.Snap_ordered) t (c : compiled) =
  List.iter
    (fun (v, ty, e) ->
      let wrapped = Core_ast.Snap (mode, e) in
      let value = Eval.eval t.ctx t.ctx.Context.globals None wrapped in
      (match ty with
      | Some ty ->
        if not (Types.matches (store t) ty value) then
          raise
            (Compile_error
               (Printf.sprintf "global $%s does not match its declared type" v))
      | None -> ());
      bind t v value)
    c.prog.Normalize.global_vars

(* Run a compiled program's body under the implicit top-level snap. *)
let run_compiled ?(mode = Core_ast.Snap_ordered) t (c : compiled) : Value.t =
  Xqb_obs.Profile.with_phase "run" @@ fun () ->
  Context.span ~cat:"exec" t.ctx "eval" @@ fun () ->
  eval_globals ~mode t c;
  match c.prog.Normalize.body with
  | None -> []
  | Some body ->
    Eval.eval t.ctx t.ctx.Context.globals None (Core_ast.Snap (mode, body))

(* One-shot: compile and run. *)
let run ?mode t source : Value.t =
  let c = compile t source in
  run_compiled ?mode t c

(* Serialize a value the way the CLI prints results: nodes as XML,
   atomics space-separated. [serialize_with] takes an explicit store
   handle — the service layer serializes results while still holding
   the scheduler's read lock, possibly from a forked context. *)
let serialize_with store (v : Value.t) : string =
  let buf = Buffer.create 256 in
  let last_was_atomic = ref false in
  List.iter
    (fun item ->
      match item with
      | Item.Node n ->
        Buffer.add_string buf (Store.serialize store n);
        last_was_atomic := false
      | Item.Atomic a ->
        if !last_was_atomic then Buffer.add_char buf ' ';
        Buffer.add_string buf (Xqb_xdm.Atomic.to_string a);
        last_was_atomic := true)
    v;
  Buffer.contents buf

let serialize t (v : Value.t) : string = serialize_with (store t) v

(* Run [f] with [budget] governing the engine: installed both on the
   context (evaluator checkpoints; inherited by read forks) and in
   the domain-local slot the store's axis iterators consult. Restored
   on exit, exceptional or not — a scheduler worker domain outlives
   many governed jobs, so leaking either installation would charge a
   later query against a dead budget. *)
let with_budget t budget f =
  let ctx = t.ctx in
  let saved = ctx.Context.budget in
  ctx.Context.budget <- budget;
  Fun.protect
    ~finally:(fun () -> ctx.Context.budget <- saved)
    (fun () -> Xqb_governor.Budget.with_current budget f)

(* Run [f] with [tracer] installed on the engine's context (inherited
   by read forks via [Context.fork_read]). Restored on exit for the
   same reason as [with_budget]: worker domains outlive jobs. *)
let with_tracer t tracer f =
  let ctx = t.ctx in
  let saved = ctx.Context.tracer in
  ctx.Context.tracer <- tracer;
  Fun.protect ~finally:(fun () -> ctx.Context.tracer <- saved) f

(* Purity of a compiled body (E7's instrumentation). *)
let body_purity (c : compiled) =
  match c.prog.Normalize.body with
  | None -> Static.Pure
  | Some body -> Static.purity_in_prog c.prog body

(* May this compiled program run concurrently with other such programs
   against the shared store? See {!Static.prog_parallel_safe}. *)
let parallel_safe (c : compiled) = Static.prog_parallel_safe c.prog

(* Static effects footprint of a compiled program — the (document,
   path-prefix) regions it may read or write. The service's footprint
   scheduler admits jobs with provably disjoint footprints
   concurrently; [var_docs] lets the caller name host-bound variables
   that hold catalog document roots (the service binds each loaded
   document to [$uri]). *)
let footprint ?var_docs (c : compiled) = Static.Footprint.of_prog ?var_docs c.prog

(* Run a parallel-safe compiled program without touching any of the
   session's mutable state: evaluation happens in a [Context.fork_read]
   of the session context, and — because the program is Pure — the
   implicit top-level snap is skipped entirely (it could only ever
   apply an empty ∆, but pushing the frame and applying would mutate
   the snap stack and the store's journal flags).

   @raise Invalid_argument when the program is not parallel-safe. *)
let run_readonly t (c : compiled) : Value.t =
  if not (parallel_safe c) then
    invalid_arg "Engine.run_readonly: program is not parallel-safe";
  let ctx = Context.fork_read t.ctx in
  Xqb_obs.Profile.with_phase "run" @@ fun () ->
  Context.span ~cat:"exec" ctx "eval.readonly" @@ fun () ->
  let env =
    List.fold_left
      (fun env (v, ty, e) ->
        let value = Eval.eval ctx env None e in
        (match ty with
        | Some ty ->
          if not (Types.matches ctx.Context.store ty value) then
            raise
              (Compile_error
                 (Printf.sprintf "global $%s does not match its declared type" v))
        | None -> ());
        Context.bind env v value)
      ctx.Context.globals c.prog.Normalize.global_vars
  in
  match c.prog.Normalize.body with
  | None -> []
  | Some body -> Eval.eval ctx env None body
