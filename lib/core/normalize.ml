(* Normalization of the surface language into the XQuery! core
   (§3.3). "The syntax of XQuery! core for update operations is almost
   identical to that of the surface language. The only non-trivial
   normalization effect is the insertion of a deep copy operator
   around the first argument of insert ... the same happens to the
   second argument of replace."

   Beyond the paper's rule we perform the standard XQuery 1.0
   normalizations: FLWOR chains to nested for/let/if, paths to
   per-context-node iteration with distinct-doc-order, direct
   constructors to computed constructors, function resolution. *)

module A = Xqb_syntax.Ast
module C = Core_ast
module Qname = Xqb_xml.Qname

exception Static_error of string

let static_error fmt = Format.kasprintf (fun s -> raise (Static_error s)) fmt

type env = {
  user_fns : (Qname.t * int) list;
  is_builtin : string -> int -> bool;  (* canonical name, arity *)
}

let fresh_counter = ref 0

let fresh_var base =
  incr fresh_counter;
  Printf.sprintf "%%%s%d" base !fresh_counter

(* A name resolves to a builtin when it has no prefix or the fn:
   prefix. *)
let builtin_name q =
  match Qname.prefix q with
  | "" | "fn" -> Some (Qname.local q)
  | "xs" -> Some ("xs:" ^ Qname.local q)  (* constructor functions *)
  | _ -> None

let rec normalize env (e : A.expr) : C.expr =
  match e with
  | A.Literal (A.Lit_integer i) -> C.Scalar (Xqb_xdm.Atomic.Integer i)
  | A.Literal (A.Lit_decimal f) -> C.Scalar (Xqb_xdm.Atomic.Decimal f)
  | A.Literal (A.Lit_double f) -> C.Scalar (Xqb_xdm.Atomic.Double f)
  | A.Literal (A.Lit_string s) -> C.Scalar (Xqb_xdm.Atomic.String s)
  | A.Var v -> C.Var v
  | A.Context_item -> C.Context_item
  | A.Seq [] -> C.Empty
  | A.Seq es ->
    let rec build = function
      | [] -> C.Empty
      | [ e ] -> normalize env e
      | e :: rest -> C.Seq (normalize env e, build rest)
    in
    build es
  | A.Root -> C.Call_builtin ("root", [ C.Context_item ])
  | A.Path (base, step) -> normalize_path env base step
  | A.Path_general (l, r) -> C.Map (normalize env l, normalize env r)
  | A.Filter (e, preds) ->
    List.fold_left
      (fun acc p -> C.Predicate (acc, normalize env p))
      (normalize env e) preds
  | A.Flwor (clauses, None, ret) ->
    let rec build = function
      | [] -> normalize env ret
      | A.For bindings :: rest ->
        List.fold_right
          (fun (v, pos, e) body -> C.For (v, pos, normalize env e, body))
          bindings (build rest)
      | A.Let bindings :: rest ->
        List.fold_right
          (fun (v, e) body -> C.Let (v, normalize env e, body))
          bindings (build rest)
      | A.Where cond :: rest -> C.If (normalize env cond, build rest, C.Empty)
    in
    build clauses
  | A.Flwor (clauses, Some specs, ret) ->
    let ncl =
      List.concat_map
        (fun c ->
          match c with
          | A.For bindings ->
            List.map (fun (v, pos, e) -> C.S_for (v, pos, normalize env e)) bindings
          | A.Let bindings ->
            List.map (fun (v, e) -> C.S_let (v, normalize env e)) bindings
          | A.Where e -> [ C.S_where (normalize env e) ])
        clauses
    in
    let nspecs = List.map (fun (e, d) -> (normalize env e, d)) specs in
    C.Sort_flwor (ncl, nspecs, normalize env ret)
  | A.Quantified (q, bindings, sat) ->
    let mk v e body =
      match q with
      | A.Some_q -> C.Some_sat (v, e, body)
      | A.Every_q -> C.Every_sat (v, e, body)
    in
    List.fold_right
      (fun (v, e) body -> mk v (normalize env e) body)
      bindings (normalize env sat)
  | A.If (c, t, e) -> C.If (normalize env c, normalize env t, normalize env e)
  | A.Binop (op, l, r) -> C.Binop (op, normalize env l, normalize env r)
  | A.Unary_minus e -> C.Unary_minus (normalize env e)
  | A.Call (f, args) -> normalize_call env f args
  | A.Instance_of (e, t) -> C.Instance_of (normalize env e, t)
  | A.Cast_as (e, t) -> C.Cast_as (normalize env e, t)
  | A.Castable_as (e, t) -> C.Castable_as (normalize env e, t)
  | A.Treat_as (e, t) -> C.Treat_as (normalize env e, t)
  (* typeswitch normalizes to the standard let/instance-of cascade
     (XQuery 1.0 core). *)
  | A.Typeswitch (scrut, cases, dv, dbody) ->
    let sv = fresh_var "ts" in
    let rec cascade = function
      | [] ->
        let body = normalize env dbody in
        (match dv with
        | Some v -> C.Let (v, C.Var sv, body)
        | None -> body)
      | (v, ty, body) :: rest ->
        let nbody = normalize env body in
        let nbody =
          match v with Some v -> C.Let (v, C.Var sv, nbody) | None -> nbody
        in
        C.If (C.Instance_of (C.Var sv, ty), nbody, cascade rest)
    in
    C.Let (sv, normalize env scrut, cascade cases)
  | A.Dir_elem (name, attrs, content) ->
    let attr_exprs =
      List.map
        (fun (an, avts) -> C.Attr (C.Static an, normalize_avt env avts))
        attrs
    in
    let content_exprs = List.map (normalize_content env) content in
    C.Elem (C.Static name, seq_of (attr_exprs @ content_exprs))
  | A.Comp_elem (ns, content) ->
    C.Elem (normalize_name_spec env ns, normalize env content)
  | A.Comp_attr (ns, content) ->
    C.Attr (normalize_name_spec env ns, normalize env content)
  | A.Comp_text e -> C.Text_node (normalize env e)
  | A.Comp_comment e -> C.Comment_node (normalize env e)
  | A.Comp_pi (ns, e) -> C.Pi_node (normalize_name_spec env ns, normalize env e)
  | A.Comp_doc e -> C.Doc_node (normalize env e)
  (* -- XQuery! operations; the paper's §3.3 rule inserts the deep
     copies here. -- *)
  | A.Insert (what, loc, kw_loc) ->
    let payload = C.Copy (normalize env what) in
    let target, dest =
      match loc with
      | A.Into e -> (C.T_last, e)  (* [into] => [as last into] *)
      | A.Into_as_first e -> (C.T_first, e)
      | A.Into_as_last e -> (C.T_last, e)
      | A.Before e -> (C.T_before, e)
      | A.After e -> (C.T_after, e)
    in
    C.Insert (target, payload, normalize env dest, kw_loc)
  | A.Delete (e, kw_loc) -> C.Delete (normalize env e, kw_loc)
  | A.Replace (e1, e2, kw_loc) ->
    C.Replace (normalize env e1, C.Copy (normalize env e2), kw_loc)
  (* replace value of node: the replacement is atomized, so no copy is
     needed — no node ends up with two parents. *)
  | A.Replace_value (e1, e2, kw_loc) ->
    C.Replace_value (normalize env e1, normalize env e2, kw_loc)
  | A.Rename (e1, e2, kw_loc) ->
    C.Rename (normalize env e1, normalize env e2, kw_loc)
  | A.Copy e -> C.Copy (normalize env e)
  (* XQUF transform is sugar the XQuery! core already expresses:
     copies bound by let, the modify clause under its own snap (its
     updates apply before the return clause runs), then the return.
     The XQUF restriction that modify only target the copies is not
     enforced (XQuery! is deliberately more permissive). *)
  | A.Transform (bindings, modify, ret) ->
    let body =
      C.Seq (C.Snap (A.Snap_ordered, normalize env modify), normalize env ret)
    in
    List.fold_right
      (fun (v, e) acc -> C.Let (v, C.Copy (normalize env e), acc))
      bindings body
  | A.Snap (mode, e) -> C.Snap (mode, normalize env e)

and seq_of = function
  | [] -> C.Empty
  | [ e ] -> e
  | e :: rest -> C.Seq (e, seq_of rest)

and normalize_name_spec env = function
  | A.Static_name q -> C.Static q
  | A.Dynamic_name e -> C.Dynamic (normalize env e)

(* Attribute value templates: text segments stay strings, enclosed
   expressions are atomized and space-joined; all segments are
   concatenated ("%avt" builtin). *)
and normalize_avt env (avts : A.avt list) : C.expr =
  match avts with
  | [] -> C.Scalar (Xqb_xdm.Atomic.String "")
  | [ A.Avt_text s ] -> C.Scalar (Xqb_xdm.Atomic.String s)
  | [ A.Avt_expr e ] -> C.Call_builtin ("%avt-part", [ normalize env e ])
  | segs ->
    let parts =
      List.map
        (function
          | A.Avt_text s -> C.Scalar (Xqb_xdm.Atomic.String s)
          | A.Avt_expr e -> C.Call_builtin ("%avt-part", [ normalize env e ]))
        segs
    in
    C.Call_builtin ("concat", parts)

and normalize_content env (c : A.content) : C.expr =
  match c with
  | A.C_text s -> C.Text_node (C.Scalar (Xqb_xdm.Atomic.String s))
  | A.C_expr e -> normalize env e
  | A.C_elem e -> normalize env e
  | A.C_comment s -> C.Comment_node (C.Scalar (Xqb_xdm.Atomic.String s))
  | A.C_pi (t, body) ->
    C.Pi_node
      (C.Static (Xqb_xml.Qname.make t), C.Scalar (Xqb_xdm.Atomic.String body))

and normalize_call env f args =
  let nargs = List.map (normalize env) args in
  let arity = List.length nargs in
  if List.exists (fun (g, n) -> Qname.equal f g && n = arity) env.user_fns then
    C.Call_user (f, nargs)
  else
    match builtin_name f with
    | Some name when env.is_builtin name arity -> C.Call_builtin (name, nargs)
    | _ ->
      static_error "unknown function %s/%d" (Qname.to_string f) arity

(* e/axis::test[p1][p2] normalizes to
     ddo(for $%dot in e return (($%dot/axis::test)[p1])[p2])
   so predicates see per-context-node position/size (XPath semantics)
   and the result is in document order without duplicates. *)
and normalize_path env base step =
  let nbase = normalize env base in
  let { A.axis; test; preds } = step in
  match preds with
  | [] -> C.Call_builtin ("%ddo", [ C.Step (nbase, axis, test) ])
  | _ ->
    let dot = fresh_var "dot" in
    let inner =
      List.fold_left
        (fun acc p -> C.Predicate (acc, normalize env p))
        (C.Step (C.Var dot, axis, test))
        preds
    in
    C.Call_builtin ("%ddo", [ C.For (dot, None, nbase, inner) ])

(* -- Programs -------------------------------------------------------- *)

type func = {
  fname : Qname.t;
  params : (string * A.seq_type option) list;
  return_type : A.seq_type option;
  body : C.expr;
}

type prog = {
  global_vars : (string * A.seq_type option * C.expr) list;
  functions : func list;
  body : C.expr option;
}

(* [extra_fns] lets the host contribute already-installed functions
   (e.g. a module compiled earlier in the same engine). *)
let normalize_prog ?(extra_fns = []) ~is_builtin (p : A.prog) : prog =
  let own_fns =
    List.filter_map
      (function
        | A.Decl_function (f, params, _, _) -> Some (f, List.length params)
        | A.Decl_variable _ -> None)
      p.A.prolog
  in
  (* Reject duplicate function declarations within this program (a
     declaration may shadow an [extra_fns] entry from the host). *)
  let rec check_dups = function
    | [] -> ()
    | (f, n) :: rest ->
      if List.exists (fun (g, m) -> Qname.equal f g && n = m) rest then
        static_error "duplicate function declaration %s/%d" (Qname.to_string f) n;
      check_dups rest
  in
  check_dups own_fns;
  let user_fns = own_fns @ extra_fns in
  let env = { user_fns; is_builtin } in
  let global_vars =
    List.filter_map
      (function
        | A.Decl_variable (v, ty, e) -> Some (v, ty, normalize env e)
        | A.Decl_function _ -> None)
      p.A.prolog
  in
  let functions =
    List.filter_map
      (function
        | A.Decl_function (f, params, ret, body) ->
          Some
            { fname = f; params; return_type = ret; body = normalize env body }
        | A.Decl_variable _ -> None)
      p.A.prolog
  in
  { global_vars; functions; body = Option.map (normalize env) p.A.body }
