(** Update requests and pending-update lists (∆) — §3.2.

    An update request is the tuple "opname(par1, ..., parn)" of the
    paper; its application is a partial function on stores. A ∆ is an
    ordered list of requests, collected during evaluation inside a
    snap scope and applied when the scope closes ({!Apply}).

    Every request carries a {!provenance} record — the source position
    of the effecting expression, the snap-stack depth at emission, and
    the emitting job's trace id when tracing — so conflict errors, the
    store mutation journal, and ∆ introspection can name the exact
    expression responsible for an effect.

    Insert positions: [First]/[Last] are kept symbolic and resolved at
    {e application} time; [Before]/[After] anchor on nodes. This
    follows the paper's §3.4 worked example (and the later XQuery
    Update Facility) rather than the appendix's evaluation-time
    "last child otherwise self" resolution — the two are inconsistent
    in the paper; see EXPERIMENTS.md "Deviations". *)

type position =
  | First
  | Last
  | Before of Xqb_store.Store.node_id
  | After of Xqb_store.Store.node_id

type op =
  | Insert of {
      nodes : Xqb_store.Store.node_id list;
      parent : Xqb_store.Store.node_id;
      position : position;
    }
  | Delete of Xqb_store.Store.node_id  (** detach, §3.1 *)
  | Rename of Xqb_store.Store.node_id * Xqb_xml.Qname.t
  | Set_value of Xqb_store.Store.node_id * string
      (** XQUF "replace value of node": content for
          text/comment/PI/attribute nodes; for elements/documents all
          children are replaced by one text node *)

type provenance = {
  src_line : int;  (** 0 when unknown (hand-built deltas) *)
  src_col : int;
  snap_depth : int;  (** snap-stack depth at emission time *)
  trace_id : string option;
}

val no_provenance : provenance

(** True iff the provenance carries a real source position. *)
val has_location : provenance -> bool

(** ["3:12 (snap depth 1, trace t42)"]; [""] without a location. *)
val provenance_to_string : provenance -> string

type request = { op : op; prov : provenance }

(** Build a request; [prov] defaults to {!no_provenance}. *)
val make : ?prov:provenance -> op -> request

type delta = request list

val position_to_string : position -> string
val op_to_string : op -> string
val op_kind_name : op -> string

(** Renders the op only (raw node ids), provenance elided — the
    compact debug form. *)
val request_to_string : request -> string

val delta_to_string : delta -> string

(** {1 Store-aware rendering}

    With a store at hand, node ids render as stable paths
    ("/site/regions[1]/africa[1]", {!Xqb_store.Store.node_path});
    requests append their source location and snap depth. Used by
    [--show-delta], conflict explanations, and the journal. *)

val render_op : Xqb_store.Store.t -> op -> string
val render_request : Xqb_store.Store.t -> request -> string
val render_delta : Xqb_store.Store.t -> delta -> string

(** {1 ∆ statistics}

    Mutable per-evaluation counters behind the [DELTA] wire command
    and the [--show-delta] summary: requests by kind, snap-depth
    histogram, conflict checks. *)

val depth_buckets : int

type stats = {
  mutable snaps : int;
  mutable inserts : int;
  mutable deletes : int;
  mutable renames : int;
  mutable set_values : int;
  mutable conflicts_checked : int;
  mutable max_snap_depth : int;
  depth_hist : int array;  (** length {!depth_buckets}; last is overflow *)
}

val stats_create : unit -> stats
val stats_reset : stats -> unit

(** Record one applied ∆ (one snap scope closing). *)
val stats_record : stats -> ?conflict_checked:bool -> delta -> unit

val stats_requests : stats -> int
val stats_to_string : stats -> string

(** Apply one request. Partial: @raise Xqb_store.Store.Update_error
    when a precondition fails, with ["at <line>:<col>: "] prefixed
    when the request's provenance carries a location. Applied requests
    are noted in the store's mutation journal when it is recording. *)
val apply_request : Xqb_store.Store.t -> request -> unit
