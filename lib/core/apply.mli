(** Applying a ∆ under the three semantics of §3.2. Every application
    runs inside {!Xqb_store.Store.transactionally}, so a failed
    application (precondition violation or detected conflict) leaves
    the store exactly as it was. *)

type mode =
  | Ordered  (** requests applied exactly in ∆ order *)
  | Nondeterministic
    (** an arbitrary order — here a seeded pseudo-random permutation,
        so tests can exercise the nondeterminism deterministically *)
  | Conflict_detection
    (** verify with {!Conflict.check} first; on success the order is
        immaterial (we still permute, as a self-check); on failure the
        application fails *)

(** The snap keyword's application mode ([snap atomic] applies
    ordered; its transactional wrapper lives in the evaluator). *)
val mode_of_snap : Core_ast.snap_mode -> mode

val mode_to_string : mode -> string

(** @raise Conflict.Conflict or @raise Xqb_store.Store.Update_error;
    the store is rolled back in both cases. [tracer] records the
    conflict-detection check as its own span. *)
val apply :
  ?rand_state:Random.State.t ->
  ?tracer:Xqb_obs.Trace.t ->
  Xqb_store.Store.t ->
  mode ->
  Update.delta ->
  unit
