(** The public entry point: compile and run XQuery! programs.

    Pipeline (§4.2): parse → normalize → static checks → evaluate,
    with the query body wrapped in the implicit top-level snap (§2.3).
    The algebraic path with join/group-by unnesting is
    [Xqb_algebra.Runner]. *)

type t

(** Parse/static errors, with positions where available. *)
exception Compile_error of string

(** Fresh engine (empty module). [seed] drives the nondeterministic
    update-application order; [store] shares an existing store between
    engines (the service layer's shared document catalog). *)
val create : ?seed:int -> ?store:Xqb_store.Store.t -> unit -> t

val context : t -> Context.t
val store : t -> Xqb_store.Store.t

(** Engine-level {!Context.fork_read}: a read-only fork sharing the
    store but isolated from all session mutations (the service layer
    forks at submission time so in-flight reads never race with the
    session). *)
val fork_read : t -> t

(** Load an XML document into the store and register it for
    [fn:doc(uri)]. *)
val load_document : t -> uri:string -> string -> Xqb_store.Store.node_id

(** Fallback for [fn:doc] on unknown URIs (e.g. read from disk). *)
val set_doc_resolver : t -> (string -> string) -> unit

(** Bind a global variable visible to all subsequent queries. *)
val bind : t -> string -> Xqb_xdm.Value.t -> unit

val bind_node : t -> string -> Xqb_store.Store.node_id -> unit
val lookup_global : t -> string -> Xqb_xdm.Value.t option

type compiled = {
  prog : Normalize.prog;
  source : string;
  rewrites : (string * int) list;
      (** §4.2 simplifier rules that fired during compilation *)
  type_warnings : string list;
      (** advisory static-typing warnings ({!Typing.check_prog}) *)
}

(** Parse, normalize, statically check and (unless [simplify:false])
    run the purity-guarded simplifier; installs the program's function
    declarations into the engine (later queries can call them).
    [elide_ddo] (default true) additionally runs the document-order
    analysis that rewrites provably redundant ddo sorts to the
    counted identity ["%ddo-elided"] ({!Static.elide_ddo}); its site
    count appears in [rewrites] under ["ddo-elide"].
    @raise Compile_error. *)
val compile : ?simplify:bool -> ?elide_ddo:bool -> t -> string -> compiled

(** Install a compiled program's function declarations into the
    engine. [compile] does this itself; the service layer's plan
    cache calls it on cache hits so a session that skipped
    compilation still sees the declarations. *)
val install_functions : t -> compiled -> unit

(** Evaluate the program's global-variable declarations, in order,
    each under an implicit snap. *)
val eval_globals : ?mode:Core_ast.snap_mode -> t -> compiled -> unit

(** Run a compiled program's body under the implicit top-level snap
    (default mode: ordered). *)
val run_compiled : ?mode:Core_ast.snap_mode -> t -> compiled -> Xqb_xdm.Value.t

(** [compile] + [run_compiled]. *)
val run : ?mode:Core_ast.snap_mode -> t -> string -> Xqb_xdm.Value.t

(** Nodes as XML, atomics space-separated — the CLI's output format.
    [serialize_with] takes an explicit store handle (for serializing
    from a forked read-only context). *)
val serialize : t -> Xqb_xdm.Value.t -> string

val serialize_with : Xqb_store.Store.t -> Xqb_xdm.Value.t -> string

(** [with_budget t b f] runs [f ()] with resource budget [b]
    installed on the engine's context (evaluator checkpoints, and
    inherited by {!fork_read} / {!run_readonly} forks) and in the
    domain-local slot the store's axis iterators consult. Both are
    restored on exit, including on exceptions. Evaluation past the
    budget raises {!Xqb_governor.Budget.Budget_exceeded}; run updates
    inside {!Xqb_store.Store.transactionally} to get rollback. *)
val with_budget : t -> Xqb_governor.Budget.t option -> (unit -> 'a) -> 'a

(** [with_tracer t tr f] runs [f ()] with span tracer [tr] installed
    on the engine's context; {!compile}, evaluation, snap application
    and conflict detection record spans into it. Inherited by
    {!fork_read} / {!run_readonly} forks; restored on exit. *)
val with_tracer : t -> Xqb_obs.Trace.t option -> (unit -> 'a) -> 'a

(** §5 classification of a compiled body (E7 instrumentation). *)
val body_purity : compiled -> Static.purity

(** May this program run concurrently with other parallel-safe
    programs against the shared store ({!Static.prog_parallel_safe}:
    Pure and allocation-free)? *)
val parallel_safe : compiled -> bool

(** Static effects footprint ({!Static.Footprint.of_prog}) of a
    compiled program: the (document, path-prefix) regions it may read
    or write. [var_docs] maps host-bound free variables to the URI of
    the catalog document they name (the service binds each loaded
    document to [$uri]); unknown bindings widen to "any document". *)
val footprint :
  ?var_docs:(string -> string option) -> compiled -> Static.Footprint.t

(** Run a {!parallel_safe} program without touching any session
    state: evaluation happens in a {!Context.fork_read} of the
    session context and the implicit top-level snap is skipped (a
    Pure program's ∆ is necessarily empty). Safe to call from
    multiple domains concurrently, provided no writer is mutating the
    store (the service scheduler's readers–writer lock enforces
    this).
    @raise Invalid_argument when the program is not parallel-safe. *)
val run_readonly : t -> compiled -> Xqb_xdm.Value.t

val parse_error_message : exn -> string
