(** Conflict detection for the conflict-detection snap semantics
    (§3.2): prove, before application, that every permutation of the
    ∆'s ordered application yields the same store. Linear in |∆| using
    hash tables over node ids (§4.1).

    The rules are deliberately conservative (the paper concedes the
    approach "rules out many reasonable pieces of code"):
    - R1: two inserts into the same slot conflict;
    - R2: an insert anchored on a deleted node conflicts;
    - R3: a node inserted by two requests conflicts;
    - R4: a node both inserted and deleted conflicts;
    - R5: diverging renames of one node conflict;
    - R7 (only with [?store]): a set-value targeting an
      element/document node conflicts with structural work strictly
      inside its subtree — an O(1) interval test per pair on the
      store's pre/post order keys. Conservative, like the rest:
      element set-value detaches whatever children it finds at
      application time, and rather than prove that interior inserts
      and detaches commute with that, we reject the pair. *)

exception Conflict of string

(** @raise Conflict when order-independence cannot be proven. [store]
    enables the R7 subtree tests. *)
val check : ?store:Xqb_store.Store.t -> Update.delta -> unit

val is_conflict_free : Update.delta -> bool
