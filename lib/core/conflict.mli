(** Conflict detection for the conflict-detection snap semantics
    (§3.2): prove, before application, that every permutation of the
    ∆'s ordered application yields the same store. Linear in |∆| using
    hash tables over node ids (§4.1).

    The rules are deliberately conservative (the paper concedes the
    approach "rules out many reasonable pieces of code"):
    - R1: two inserts into the same slot conflict;
    - R2: an insert anchored on a deleted node conflicts;
    - R3: a node inserted by two requests conflicts;
    - R4: a node both inserted and deleted conflicts;
    - R5: diverging renames of one node conflict;
    - R6: diverging set-values of one node conflict, and a set-value
      conflicts with inserts into / a delete of its node;
    - R7 (only with [?store]): a set-value targeting an
      element/document node conflicts with structural work strictly
      inside its subtree — an O(1) interval test per pair on the
      store's pre/post order keys. Conservative, like the rest:
      element set-value detaches whatever children it finds at
      application time, and rather than prove that interior inserts
      and detaches commute with that, we reject the pair.

    Detected conflicts are structured: {!Conflict_error} carries the
    violated {!rule}, both offending requests with their provenance,
    and the node at issue; {!explain} renders them into sentences like
    ["R4: node /site/regions[1]/africa[1] inserted at 3:12 and deleted
    at 7:5"]. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7

val rule_id : rule -> string

type conflict = {
  rule : rule;
  first : Update.request;  (** the earlier request of the pair *)
  second : Update.request;  (** the one that exposed the conflict *)
  subject : Xqb_store.Store.node_id option;  (** the node at issue *)
  describe :
    node:(Xqb_store.Store.node_id -> string) ->
    site1:string ->
    site2:string ->
    string;
      (** sentence body; {!explain} supplies the node renderer and the
          two provenance sites *)
}

exception Conflict_error of conflict

(** ["<rule>: <sentence>"]; with [store], node ids render as stable
    {!Xqb_store.Store.node_path}s, otherwise as ["#<id>"]. *)
val explain : ?store:Xqb_store.Store.t -> conflict -> string

(** {!explain} without a store. *)
val to_string : conflict -> string

(** @raise Conflict_error when order-independence cannot be proven.
    [store] enables the R7 subtree tests. *)
val check : ?store:Xqb_store.Store.t -> Update.delta -> unit

val is_conflict_free : Update.delta -> bool
