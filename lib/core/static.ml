(* Static analyses over the core language:

   - variable-scope checking (undefined variables are a static error,
     XPST0008);
   - the *updating / effecting* classification sketched in §5: "the
     signature of functions coming from other modules should contain
     an updating flag, with the 'monadic' rule that a function that
     calls an updating function is updating as well." We compute it as
     a fixpoint over the call graph. The three-way classification is
     what the optimizer's rewrite guards consume (§4.2-4.3):

     Pure      — no update operations, no snap: freely reorderable;
     Updating  — emits update requests but contains no snap: the store
                 is untouched during evaluation, so the expression is
                 still "side-effects free" in the paper's sense and
                 lazy/algebraic evaluation applies, subject to
                 cardinality guards;
     Effecting — contains a snap (or calls a function that does): the
                 store may change mid-evaluation; evaluation order is
                 pinned. *)

module C = Core_ast
module Qname = Xqb_xml.Qname

exception Static_error = Normalize.Static_error

type purity = Pure | Updating | Effecting

let purity_to_string = function
  | Pure -> "pure"
  | Updating -> "updating"
  | Effecting -> "effecting"

let join a b =
  match a, b with
  | Effecting, _ | _, Effecting -> Effecting
  | Updating, _ | _, Updating -> Updating
  | Pure, Pure -> Pure

(* Purity of an expression, given a classification for user
   functions. *)
let rec purity_with lookup (e : C.expr) : purity =
  let sub = List.fold_left (fun acc e -> join acc (purity_with lookup e)) Pure in
  match e with
  | C.Insert _ | C.Delete _ | C.Replace _ | C.Replace_value _ | C.Rename _ ->
    join Updating (sub (C.sub_exprs e))
  | C.Snap _ -> Effecting
  | C.Call_user (f, args) ->
    join (lookup f (List.length args)) (sub args)
  | _ -> sub (C.sub_exprs e)

(* Fixpoint classification of the declared functions. *)
let classify_functions (funcs : Normalize.func list) :
    (Qname.t * int * purity) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Normalize.func) ->
      Hashtbl.replace tbl
        (Qname.to_string f.Normalize.fname, List.length f.Normalize.params)
        Pure)
    funcs;
  let lookup f n =
    match Hashtbl.find_opt tbl (Qname.to_string f, n) with
    | Some p -> p
    | None -> Pure  (* unknown functions are assumed pure; builtins are *)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Normalize.func) ->
        let key = (Qname.to_string f.Normalize.fname, List.length f.Normalize.params) in
        let old = Hashtbl.find tbl key in
        let nu = purity_with lookup f.Normalize.body in
        if nu <> old then begin
          Hashtbl.replace tbl key nu;
          changed := true
        end)
      funcs
  done;
  List.map
    (fun (f : Normalize.func) ->
      let n = List.length f.Normalize.params in
      ( f.Normalize.fname,
        n,
        Hashtbl.find tbl (Qname.to_string f.Normalize.fname, n) ))
    funcs

(* A reusable purity oracle for a program: the function-classification
   fixpoint runs once, not per query expression. *)
let purity_oracle (prog : Normalize.prog) : C.expr -> purity =
  let classified = classify_functions prog.Normalize.functions in
  let tbl = Hashtbl.create (List.length classified * 2) in
  List.iter
    (fun (f, n, p) -> Hashtbl.replace tbl (Qname.to_string f, n) p)
    classified;
  let lookup f n =
    Option.value ~default:Pure (Hashtbl.find_opt tbl (Qname.to_string f, n))
  in
  fun e -> purity_with lookup e

(* Purity of an expression in the context of a normalized program. *)
let purity_in_prog (prog : Normalize.prog) (e : C.expr) : purity =
  purity_oracle prog e

(* -- Node allocation --------------------------------------------------

   [Pure] means "emits no update requests and contains no snap" — but
   a pure expression may still *allocate* fresh nodes in the store
   (constructors, [Copy]). Allocation mutates the shared node table,
   so the service scheduler needs the stronger judgement below before
   it runs two queries concurrently against one store. *)

(* Does the expression allocate store nodes, given a judgement for
   user functions? Builtins never allocate: fn:doc only loads via the
   context's resolver, which {!Context.fork_read} drops. *)
let rec allocates_with lookup (e : C.expr) : bool =
  let sub = List.exists (allocates_with lookup) in
  match e with
  | C.Elem _ | C.Attr _ | C.Text_node _ | C.Comment_node _ | C.Pi_node _
  | C.Doc_node _ | C.Copy _ ->
    true
  (* update requests carry Copy-wrapped payloads; conservatively
     allocating (they are never Pure anyway) *)
  | C.Insert _ | C.Replace _ -> true
  | C.Call_user (f, args) -> lookup f (List.length args) || sub args
  | _ -> sub (C.sub_exprs e)

(* Fixpoint: a function that calls an allocating function allocates. *)
let classify_alloc_functions (funcs : Normalize.func list) :
    (Qname.t * int * bool) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Normalize.func) ->
      Hashtbl.replace tbl
        (Qname.to_string f.Normalize.fname, List.length f.Normalize.params)
        false)
    funcs;
  let lookup f n =
    Option.value ~default:false (Hashtbl.find_opt tbl (Qname.to_string f, n))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Normalize.func) ->
        let key = (Qname.to_string f.Normalize.fname, List.length f.Normalize.params) in
        let old = Hashtbl.find tbl key in
        let nu = allocates_with lookup f.Normalize.body in
        if nu <> old then begin
          Hashtbl.replace tbl key nu;
          changed := true
        end)
      funcs
  done;
  List.map
    (fun (f : Normalize.func) ->
      let n = List.length f.Normalize.params in
      ( f.Normalize.fname,
        n,
        Hashtbl.find tbl (Qname.to_string f.Normalize.fname, n) ))
    funcs

(* Can the whole program run concurrently with other such programs
   against a shared store? Required: every global initializer and the
   body are [Pure] *and* allocation-free. This is the gate the
   service scheduler's read side checks. *)
let prog_parallel_safe (prog : Normalize.prog) : bool =
  let purity = purity_oracle prog in
  let alloc_tbl = Hashtbl.create 16 in
  List.iter
    (fun (f, n, a) -> Hashtbl.replace alloc_tbl (Qname.to_string f, n) a)
    (classify_alloc_functions prog.Normalize.functions);
  let alloc_lookup f n =
    Option.value ~default:false (Hashtbl.find_opt alloc_tbl (Qname.to_string f, n))
  in
  let safe e = purity e = Pure && not (allocates_with alloc_lookup e) in
  List.for_all (fun (_, _, e) -> safe e) prog.Normalize.global_vars
  && (match prog.Normalize.body with None -> true | Some b -> safe b)

(* -- Variable scoping ------------------------------------------------ *)

module SSet = Set.Make (String)

(* Free variables of a core expression (used by the optimizer's
   independence guards, §4.3: "a form of query independence"). *)
let rec free_vars (e : C.expr) : SSet.t =
  match e with
  | C.Var v -> SSet.singleton v
  | C.For (v, posvar, e1, body) ->
    let bound = SSet.add v (match posvar with Some p -> SSet.singleton p | None -> SSet.empty) in
    SSet.union (free_vars e1) (SSet.diff (free_vars body) bound)
  | C.Let (v, e1, body) | C.Some_sat (v, e1, body) | C.Every_sat (v, e1, body) ->
    SSet.union (free_vars e1) (SSet.remove v (free_vars body))
  | C.Sort_flwor (clauses, specs, ret) ->
    let bound, acc =
      List.fold_left
        (fun (bound, acc) c ->
          match c with
          | C.S_for (v, posvar, e) ->
            let acc = SSet.union acc (SSet.diff (free_vars e) bound) in
            let bound = SSet.add v bound in
            let bound =
              match posvar with Some p -> SSet.add p bound | None -> bound
            in
            (bound, acc)
          | C.S_let (v, e) ->
            let acc = SSet.union acc (SSet.diff (free_vars e) bound) in
            (SSet.add v bound, acc)
          | C.S_where e -> (bound, SSet.union acc (SSet.diff (free_vars e) bound)))
        (SSet.empty, SSet.empty) clauses
    in
    let inner =
      List.fold_left
        (fun acc (k, _) -> SSet.union acc (free_vars k))
        (free_vars ret) specs
    in
    SSet.union acc (SSet.diff inner bound)
  | _ ->
    List.fold_left
      (fun acc sub -> SSet.union acc (free_vars sub))
      SSet.empty (C.sub_exprs e)

let is_independent_of e vars =
  SSet.disjoint (free_vars e) (SSet.of_list vars)

let rec check_scopes (bound : SSet.t) (e : C.expr) : unit =
  match e with
  | C.Var v ->
    if not (SSet.mem v bound) then
      raise (Static_error (Printf.sprintf "undefined variable $%s" v))
  | C.For (v, posvar, e1, body) ->
    check_scopes bound e1;
    let bound = SSet.add v bound in
    let bound = match posvar with Some p -> SSet.add p bound | None -> bound in
    check_scopes bound body
  | C.Let (v, e1, body) ->
    check_scopes bound e1;
    check_scopes (SSet.add v bound) body
  | C.Some_sat (v, e1, body) | C.Every_sat (v, e1, body) ->
    check_scopes bound e1;
    check_scopes (SSet.add v bound) body
  | C.Sort_flwor (clauses, specs, ret) ->
    let bound =
      List.fold_left
        (fun bound c ->
          match c with
          | C.S_for (v, posvar, e) ->
            check_scopes bound e;
            let bound = SSet.add v bound in
            (match posvar with Some p -> SSet.add p bound | None -> bound)
          | C.S_let (v, e) ->
            check_scopes bound e;
            SSet.add v bound
          | C.S_where e ->
            check_scopes bound e;
            bound)
        bound clauses
    in
    List.iter (fun (k, _) -> check_scopes bound k) specs;
    check_scopes bound ret
  | _ -> List.iter (check_scopes bound) (C.sub_exprs e)

let check_prog ?(initial = []) (prog : Normalize.prog) =
  (* Globals are visible to later globals, to all functions and the
     body; function parameters shadow globals. [initial] holds names
     bound by the host (e.g. [Engine.bind]). *)
  let globals =
    List.fold_left
      (fun seen (v, _, e) ->
        check_scopes seen e;
        SSet.add v seen)
      (SSet.of_list initial) prog.Normalize.global_vars
  in
  List.iter
    (fun (f : Normalize.func) ->
      let bound =
        List.fold_left
          (fun acc (p, _) -> SSet.add p acc)
          globals f.Normalize.params
      in
      check_scopes bound f.Normalize.body)
    prog.Normalize.functions;
  Option.iter (check_scopes globals) prog.Normalize.body

(* -- Document-order analysis and ddo elision --------------------------

   Normalization wraps every path step in the "%ddo" builtin (sort
   into document order, drop duplicates). For a large class of paths
   the input is already provably sorted and duplicate-free — children
   of a single node, a descendant walk from unrelated sorted roots —
   and the sort is pure overhead. The judgement below computes, per
   expression, what can be promised about its result's order; the
   [elide_ddo] pass rewrites certified "%ddo" nodes to "%ddo-elided"
   (the identity, plus an instrumentation counter).

   Soundness leans on the paper's §3.3 purity observation: update
   requests only apply at snap boundaries, so as long as the
   expression under the ddo contains no snap (purity <> Effecting),
   the tree is frozen for the whole evaluation of that expression and
   structural facts ("the subtrees of unrelated nodes are disjoint
   document-order intervals") compose across its iterations. *)

type order_info = {
  o_sorted : bool;  (* items are in document order *)
  o_nodup : bool;  (* no duplicate nodes *)
  o_unrelated : bool;  (* no item is an ancestor of another *)
  o_single : bool;  (* at most one item *)
  o_node_only : bool;  (* every item is a node (ddo would not raise) *)
}

let o_bottom =
  { o_sorted = false; o_nodup = false; o_unrelated = false; o_single = false;
    o_node_only = false }

(* One item of unknown kind: trivially sorted/distinct/unrelated. *)
let o_one =
  { o_sorted = true; o_nodup = true; o_unrelated = true; o_single = true;
    o_node_only = false }

(* Exactly one node (constructors, doc()). *)
let o_one_node = { o_one with o_node_only = true }

let o_meet a b =
  { o_sorted = a.o_sorted && b.o_sorted;
    o_nodup = a.o_nodup && b.o_nodup;
    o_unrelated = a.o_unrelated && b.o_unrelated;
    o_single = a.o_single && b.o_single;
    o_node_only = a.o_node_only && b.o_node_only }

(* A sorted sequence of unrelated duplicate-free nodes distributes
   through downward axes: their subtrees are disjoint intervals in
   document order, so per-node results concatenate in order. A single
   node qualifies trivially. *)
let good_in i = i.o_single || (i.o_sorted && i.o_nodup && i.o_unrelated)

(* Does every result of [e] lie inside the subtree of [v]'s binding?
   (Conservative syntactic check: chains of self/child/attribute/
   descendant steps and predicates from $v.) This is what lets a
   [for] over unrelated sorted roots keep its blocks disjoint. *)
let rec downward v (e : C.expr) =
  match e with
  | C.Var x -> String.equal x v
  | C.Step
      ( b,
        ( C.Axes.Self | C.Axes.Child | C.Axes.Attribute | C.Axes.Descendant
        | C.Axes.Descendant_or_self ),
        _ ) ->
    downward v b
  | C.Predicate (b, _) -> downward v b
  | C.Call_builtin (("%ddo" | "%ddo-elided"), [ b ]) -> downward v b
  | C.For (w, _, b, body) -> downward v b && downward w body
  | _ -> false

(* [singles] holds variables known to be bound to at most one item:
   for/some/every binders (one item at a time, by construction),
   positional variables, and lets of provably-single expressions. *)
let rec order_of (singles : SSet.t) (e : C.expr) : order_info =
  let step_out = { o_bottom with o_node_only = true } in
  match e with
  | C.Empty -> { o_one with o_node_only = true }  (* vacuously *)
  | C.Scalar _ | C.Context_item -> o_one
  | C.Var x -> if SSet.mem x singles then o_one else o_bottom
  | C.Elem _ | C.Attr _ | C.Text_node _ | C.Comment_node _ | C.Pi_node _
  | C.Doc_node _ | C.Copy _ ->
    o_one_node
  (* updating expressions evaluate to the empty sequence *)
  | C.Insert _ | C.Delete _ | C.Replace _ | C.Replace_value _ | C.Rename _ ->
    { o_one with o_node_only = true }
  | C.Call_builtin ("doc", _) -> o_one_node
  | C.Call_builtin (("%ddo" | "%ddo-elided"), [ arg ]) ->
    let i = order_of singles arg in
    { o_sorted = true; o_nodup = true; o_unrelated = i.o_unrelated;
      o_single = i.o_single; o_node_only = true }
  | C.Step (b, axis, _) -> (
    let i = order_of singles b in
    match axis with
    | C.Axes.Self -> { i with o_node_only = true }
    | C.Axes.Child | C.Axes.Attribute ->
      if good_in i then
        { o_sorted = true; o_nodup = true; o_unrelated = true;
          o_single = false; o_node_only = true }
      else step_out
    | C.Axes.Descendant | C.Axes.Descendant_or_self ->
      (* subtrees of unrelated sorted roots are disjoint intervals;
         the result contains ancestor/descendant pairs, so
         [o_unrelated] is lost *)
      if good_in i then
        { o_sorted = true; o_nodup = true; o_unrelated = false;
          o_single = false; o_node_only = true }
      else step_out
    | C.Axes.Following_sibling ->
      if i.o_single then
        { o_sorted = true; o_nodup = true; o_unrelated = true;
          o_single = false; o_node_only = true }
      else step_out
    | C.Axes.Following ->
      if i.o_single then
        { o_sorted = true; o_nodup = true; o_unrelated = false;
          o_single = false; o_node_only = true }
      else step_out
    | C.Axes.Parent -> if i.o_single then o_one_node else step_out
    (* reverse axes emit reverse document order *)
    | C.Axes.Ancestor | C.Axes.Ancestor_or_self | C.Axes.Preceding_sibling
    | C.Axes.Preceding ->
      step_out)
  (* Key_step concatenates per-key bucket lookups: not sorted across
     multiple keys *)
  | C.Key_step _ -> step_out
  | C.Predicate (b, _) -> order_of singles b  (* filtering preserves all *)
  | C.For (v, posvar, e1, body) ->
    let i1 = order_of singles e1 in
    let singles_body =
      SSet.add v
        (match posvar with Some p -> SSet.add p singles | None -> singles)
    in
    let ib = order_of singles_body body in
    if i1.o_single then ib
    else if
      i1.o_sorted && i1.o_nodup && i1.o_unrelated && ib.o_sorted && ib.o_nodup
      && downward v body
    then
      { o_sorted = true; o_nodup = true; o_unrelated = ib.o_unrelated;
        o_single = false; o_node_only = ib.o_node_only }
    else o_bottom
  | C.Let (v, e1, body) ->
    let i1 = order_of singles e1 in
    let singles' =
      if i1.o_single then SSet.add v singles else SSet.remove v singles
    in
    order_of singles' body
  | C.Some_sat _ | C.Every_sat _ -> o_one  (* a boolean *)
  | C.If (_, t, e) -> o_meet (order_of singles t) (order_of singles e)
  | C.Treat_as (e1, _) -> order_of singles e1
  | C.Instance_of _ | C.Castable_as _ | C.Cast_as _ | C.Unary_minus _ -> o_one
  | C.Binop (op, _, _) -> (
    match op with
    | Xqb_syntax.Ast.Union | Xqb_syntax.Ast.Intersect | Xqb_syntax.Ast.Except ->
      (* the evaluator sorts set-operation results *)
      { o_sorted = true; o_nodup = true; o_unrelated = false;
        o_single = false; o_node_only = true }
    | Xqb_syntax.Ast.To -> o_bottom  (* a range: many integers *)
    | _ -> o_one (* comparisons, logic, arithmetic: one atomic *))
  | C.Seq _ | C.Map _ | C.Sort_flwor _ | C.Call_builtin _ | C.Call_user _
  | C.Snap _ ->
    o_bottom

(* Rewrite certified "%ddo" applications to "%ddo-elided" (identity +
   counter). Gated per-site on the purity of the sorted expression:
   a snap inside it would mutate the tree mid-evaluation and void the
   structural reasoning above. Returns the rewritten expression and
   the number of sites elided. *)
let elide_ddo ~purity (e : C.expr) : C.expr * int =
  let count = ref 0 in
  let rec go singles e =
    match e with
    | C.Call_builtin ("%ddo", [ arg ]) ->
      let arg' = go singles arg in
      let i = order_of singles arg' in
      if i.o_sorted && i.o_nodup && i.o_node_only && purity arg' <> Effecting
      then begin
        incr count;
        C.Call_builtin ("%ddo-elided", [ arg' ])
      end
      else C.Call_builtin ("%ddo", [ arg' ])
    | C.For (v, posvar, e1, body) ->
      let e1' = go singles e1 in
      let singles_body =
        SSet.add v
          (match posvar with Some p -> SSet.add p singles | None -> singles)
      in
      C.For (v, posvar, e1', go singles_body body)
    | C.Let (v, e1, body) ->
      let e1' = go singles e1 in
      let singles' =
        if (order_of singles e1').o_single then SSet.add v singles
        else SSet.remove v singles
      in
      C.Let (v, e1', go singles' body)
    | C.Some_sat (v, e1, body) ->
      C.Some_sat (v, go singles e1, go (SSet.add v singles) body)
    | C.Every_sat (v, e1, body) ->
      C.Every_sat (v, go singles e1, go (SSet.add v singles) body)
    | C.Sort_flwor (clauses, specs, ret) ->
      let singles', rev_clauses =
        List.fold_left
          (fun (singles, acc) c ->
            match c with
            | C.S_for (v, posvar, e) ->
              let e' = go singles e in
              let singles =
                SSet.add v
                  (match posvar with
                  | Some p -> SSet.add p singles
                  | None -> singles)
              in
              (singles, C.S_for (v, posvar, e') :: acc)
            | C.S_let (v, e) ->
              let e' = go singles e in
              let singles =
                if (order_of singles e').o_single then SSet.add v singles
                else SSet.remove v singles
              in
              (singles, C.S_let (v, e') :: acc)
            | C.S_where e -> (singles, C.S_where (go singles e) :: acc))
          (singles, []) clauses
      in
      C.Sort_flwor
        ( List.rev rev_clauses,
          List.map (fun (k, d) -> (go singles' k, d)) specs,
          go singles' ret )
    | C.Scalar _ | C.Var _ | C.Context_item | C.Empty -> e
    | C.Seq (a, b) -> C.Seq (go singles a, go singles b)
    | C.If (c, t, el) -> C.If (go singles c, go singles t, go singles el)
    | C.Step (b, ax, t) -> C.Step (go singles b, ax, t)
    | C.Key_step (b, elem, attr, rhs) ->
      C.Key_step (go singles b, elem, attr, go singles rhs)
    | C.Map (a, b) -> C.Map (go singles a, go singles b)
    | C.Predicate (a, b) -> C.Predicate (go singles a, go singles b)
    | C.Binop (op, a, b) -> C.Binop (op, go singles a, go singles b)
    | C.Unary_minus a -> C.Unary_minus (go singles a)
    | C.Call_builtin (f, args) -> C.Call_builtin (f, List.map (go singles) args)
    | C.Call_user (f, args) -> C.Call_user (f, List.map (go singles) args)
    | C.Instance_of (a, t) -> C.Instance_of (go singles a, t)
    | C.Cast_as (a, t) -> C.Cast_as (go singles a, t)
    | C.Castable_as (a, t) -> C.Castable_as (go singles a, t)
    | C.Treat_as (a, t) -> C.Treat_as (go singles a, t)
    | C.Elem (ns, c) -> C.Elem (go_ns singles ns, go singles c)
    | C.Attr (ns, c) -> C.Attr (go_ns singles ns, go singles c)
    | C.Text_node a -> C.Text_node (go singles a)
    | C.Comment_node a -> C.Comment_node (go singles a)
    | C.Pi_node (ns, a) -> C.Pi_node (go_ns singles ns, go singles a)
    | C.Doc_node a -> C.Doc_node (go singles a)
    | C.Insert (tgt, payload, dest, loc) ->
      C.Insert (tgt, go singles payload, go singles dest, loc)
    | C.Delete (a, loc) -> C.Delete (go singles a, loc)
    | C.Replace (a, b, loc) -> C.Replace (go singles a, go singles b, loc)
    | C.Replace_value (a, b, loc) ->
      C.Replace_value (go singles a, go singles b, loc)
    | C.Rename (a, b, loc) -> C.Rename (go singles a, go singles b, loc)
    | C.Copy a -> C.Copy (go singles a)
    | C.Snap (m, a) -> C.Snap (m, go singles a)
  and go_ns singles = function
    | C.Static q -> C.Static q
    | C.Dynamic e -> C.Dynamic (go singles e)
  in
  let e' = go SSet.empty e in
  (e', !count)

(* -- Effects footprints ------------------------------------------------

   A conservative static over-approximation of the store regions a
   program may read and may write, in the spirit of type-based
   query-update independence (Bidoit/Colazzo/Ulliana) and FLUX's
   static update analysis (Cheney). A region is a subtree of one
   document, addressed by a root-to-node chain of name labels; the
   scheduler runs two jobs concurrently when neither's writes may
   overlap the other's reads or writes. Precision falls back to
   "whole document" on upward axes and to "any document" on dynamic
   fn:doc URIs, unknown host bindings and user function calls — the
   runtime R1-R7 conflict check (§4.1) remains the safety net for
   anything the lattice widens. *)

module Footprint = struct
  type doc = Named of string | Any_doc

  (* [rpath] is a chain of child labels from the document root ("*"
     for a step whose name is statically unknown, "@n" for attributes,
     "#text" etc. for non-element kinds); the region denotes the whole
     subtree below any node matching the chain — [] is the document
     itself. [ranchored] records whether the region's nodes sit
     exactly at [rpath] (so a child step may append a label) or merely
     somewhere inside that subtree (descendant results, unknown
     bindings); overlap semantics are identical either way. *)
  type region = { rdoc : doc; rpath : string list; ranchored : bool }

  type t = { reads : region list; writes : region list }

  let any_region = { rdoc = Any_doc; rpath = []; ranchored = false }
  let empty = { reads = []; writes = [] }
  let top = { reads = [ any_region ]; writes = [ any_region ] }
  let read_all = { reads = [ any_region ]; writes = [] }

  let docs_may_equal a b =
    match a, b with
    | Any_doc, _ | _, Any_doc -> true
    | Named u, Named v -> String.equal u v

  (* Subtree regions overlap iff one path is a prefix of the other,
     up to "*" wildcards. *)
  let rec paths_may_overlap p q =
    match p, q with
    | [], _ | _, [] -> true
    | x :: p', y :: q' ->
      (String.equal x "*" || String.equal y "*" || String.equal x y)
      && paths_may_overlap p' q'

  let regions_overlap a b =
    docs_may_equal a.rdoc b.rdoc && paths_may_overlap a.rpath b.rpath

  let sets_overlap rs qs =
    List.exists (fun r -> List.exists (regions_overlap r) qs) rs

  (* May [a] and [b] run concurrently? Read/read always; any write
     must be disjoint from the other side entirely. *)
  let independent a b =
    (not (sets_overlap a.writes b.writes))
    && (not (sets_overlap a.writes b.reads))
    && not (sets_overlap b.writes a.reads)

  let writes_nothing fp = fp.writes = []

  (* Did the analysis stay conclusive, or did some part widen to
     "any document"? (The scheduler doesn't need this — ⊤ regions
     conflict with everything on their own — but EXPLAIN shows it.) *)
  let conclusive fp =
    not (List.exists (fun r -> r.rdoc = Any_doc) (fp.reads @ fp.writes))

  let region_to_string r =
    let d = match r.rdoc with Named u -> u | Any_doc -> "*" in
    match r.rpath with
    | [] -> d
    | p ->
      d ^ "/" ^ String.concat "/" p ^ (if r.ranchored then "" else "//")

  let set_to_string = function
    | [] -> "{}"
    | rs -> "{" ^ String.concat ", " (List.map region_to_string rs) ^ "}"

  let to_string fp =
    Printf.sprintf "reads %s writes %s" (set_to_string fp.reads)
      (set_to_string fp.writes)

  (* Normalization: clip over-deep paths (a prefix denotes a superset,
     so clipping is sound), drop regions covered by another, and cap
     the region count by widening. *)
  let max_depth = 8
  let max_regions = 12

  let rec take n = function
    | [] -> []
    | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

  let clip r =
    if List.length r.rpath <= max_depth then r
    else { r with rpath = take max_depth r.rpath; ranchored = false }

  (* Does subtree [w] definitely contain subtree [r]? *)
  let covers w r =
    (match w.rdoc, r.rdoc with
    | Any_doc, _ -> true
    | Named u, Named v -> String.equal u v
    | Named _, Any_doc -> false)
    &&
    let rec pref p q =
      match p, q with
      | [], _ -> true
      | _, [] -> false
      | x :: p', y :: q' ->
        (String.equal x "*" || String.equal x y) && pref p' q'
    in
    pref w.rpath r.rpath

  let norm rs =
    let rs = List.sort_uniq compare (List.map clip rs) in
    let rs =
      List.filter
        (fun r -> not (List.exists (fun w -> w <> r && covers w r) rs))
        rs
    in
    if List.length rs <= max_regions then rs
    else
      let docs =
        List.sort_uniq compare
          (List.map (fun r -> { r with rpath = []; ranchored = false }) rs)
      in
      if List.length docs <= max_regions then docs else [ any_region ]

  let normalize fp = { reads = norm fp.reads; writes = norm fp.writes }

  module SMap = Map.Make (String)

  (* Footprint inference over a normalized program. [var_docs] lets
     the host declare that a free variable is bound to the root of a
     named catalog document (the service binds each loaded document
     under its URI). *)
  let of_prog ?(var_docs = fun _ -> None) (prog : Normalize.prog) : t =
    let purity = purity_oracle prog in
    let rd = ref [] and wr = ref [] in
    let add_rd rs = rd := rs @ !rd in
    let add_wr rs = wr := rs @ !wr in
    let widen_doc r = { r with rpath = []; ranchored = false } in
    let parent_region r =
      match r.rpath with
      | [] -> r
      | p -> { r with rpath = take (List.length p - 1) p }
    in
    let label_of_test (t : C.Axes.node_test) =
      match t with
      | C.Axes.Name q -> Qname.to_string q
      | C.Axes.Kind_element (Some q) -> Qname.to_string q
      | C.Axes.Kind_attribute (Some q) -> "@" ^ Qname.to_string q
      | C.Axes.Kind_text -> "#text"
      | C.Axes.Kind_comment -> "#comment"
      | C.Axes.Kind_pi _ -> "#pi"
      | C.Axes.Wildcard | C.Axes.Kind_node | C.Axes.Kind_element None
      | C.Axes.Kind_attribute None | C.Axes.Kind_document ->
        "*"
    in
    let child_region lbl r =
      if r.ranchored then { r with rpath = r.rpath @ [ lbl ] } else r
    in
    (* [infer env focus e] returns the regions the *result nodes* of
       [e] may inhabit. Reads are recorded where results are
       *observed*, not where navigation happens: value contexts
       (comparisons, most builtins, conditions, sort keys) consume
       the regions of node arguments they atomize, and
       cardinality-observing sites (FLWOR input sequences,
       quantifiers, cardinality-checked coercions) consume their
       input regions. Navigation steps only *compute* their result
       region without recording it — an intermediate step's reads
       (child lists, sibling names) are already protected because
       every mutation that can disturb them carries a parent-widened
       write region, and that region is a path prefix of whatever
       final region the consumer records. This is what makes sibling
       subtrees of one document independent: doc(u)/r/x and
       doc(u)/r/y read only their own subtrees, not /r. *)
    let rec infer env focus (e : C.expr) : region list =
      (* a value context: whatever nodes flow in get read *)
      let consume e =
        let rs = infer env focus e in
        add_rd rs
      in
      match e with
      | C.Scalar _ | C.Empty -> []
      | C.Context_item -> focus
      | C.Var v -> (
        match SMap.find_opt v env with
        | Some rs -> rs
        | None -> (
          match var_docs v with
          | Some uri -> [ { rdoc = Named uri; rpath = []; ranchored = true } ]
          | None -> [ any_region ]))
      | C.Seq (a, b) -> infer env focus a @ infer env focus b
      | C.For (v, posvar, e1, body) ->
        let r1 = infer env focus e1 in
        (* iteration count (and positions) observe e1's cardinality *)
        add_rd r1;
        let env = SMap.add v r1 env in
        let env =
          match posvar with Some p -> SMap.add p [] env | None -> env
        in
        infer env focus body
      | C.Let (v, e1, body) ->
        infer (SMap.add v (infer env focus e1) env) focus body
      | C.Some_sat (v, e1, body) | C.Every_sat (v, e1, body) ->
        let r1 = infer env focus e1 in
        (* the truth value observes e1's cardinality *)
        add_rd r1;
        let rs = infer (SMap.add v r1 env) focus body in
        add_rd rs;
        []
      | C.If (c, t, el) ->
        consume c;
        infer env focus t @ infer env focus el
      | C.Sort_flwor (clauses, specs, ret) ->
        let env =
          List.fold_left
            (fun env cl ->
              match cl with
              | C.S_for (v, posvar, e) ->
                let r1 = infer env focus e in
                add_rd r1;
                let env = SMap.add v r1 env in
                (match posvar with
                | Some p -> SMap.add p [] env
                | None -> env)
              | C.S_let (v, e) -> SMap.add v (infer env focus e) env
              | C.S_where e ->
                add_rd (infer env focus e);
                env)
            env clauses
        in
        List.iter (fun (k, _) -> add_rd (infer env focus k)) specs;
        infer env focus ret
      | C.Step (b, axis, test) -> (
        let rb = infer env focus b in
        match axis with
        | C.Axes.Self -> rb
        | C.Axes.Child | C.Axes.Attribute ->
          List.map (child_region (label_of_test test)) rb
        | C.Axes.Descendant | C.Axes.Descendant_or_self ->
          List.map (fun r -> { r with ranchored = false }) rb
        | C.Axes.Parent | C.Axes.Ancestor | C.Axes.Ancestor_or_self
        | C.Axes.Following_sibling | C.Axes.Preceding_sibling
        | C.Axes.Following | C.Axes.Preceding ->
          (* upward / sideways: widen to the whole document *)
          List.sort_uniq compare (List.map widen_doc rb))
      | C.Key_step (b, _, _, rhs) ->
        let rb = infer env focus b in
        add_rd (infer env focus rhs);
        List.map (fun r -> { r with ranchored = false }) rb
      | C.Map (a, b) ->
        let ra = infer env focus a in
        (* result cardinality observes a's cardinality *)
        add_rd ra;
        infer env ra b
      | C.Predicate (b, p) ->
        let rb = infer env focus b in
        add_rd (infer env rb p);
        rb
      | C.Binop (op, a, b) -> (
        match op with
        | Xqb_syntax.Ast.Union | Xqb_syntax.Ast.Intersect
        | Xqb_syntax.Ast.Except ->
          infer env focus a @ infer env focus b
        | _ ->
          consume a;
          consume b;
          [])
      | C.Unary_minus a ->
        consume a;
        []
      | C.Instance_of (a, _) | C.Castable_as (a, _) | C.Cast_as (a, _) ->
        consume a;
        []
      | C.Treat_as (a, _) ->
        (* the cardinality check observes the sequence even when the
           result is discarded *)
        let ra = infer env focus a in
        add_rd ra;
        ra
      | C.Call_builtin ("doc", args) -> (
        List.iter consume args;
        match args with
        | [ C.Scalar (Xqb_xdm.Atomic.String u) ]
        | [ C.Scalar (Xqb_xdm.Atomic.Untyped u) ] ->
          [ { rdoc = Named u; rpath = []; ranchored = true } ]
        | _ ->
          (* dynamic URI: any document, and reading it *)
          add_rd [ any_region ];
          [ any_region ])
      | C.Call_builtin (("%ddo" | "%ddo-elided" | "trace"), [ a ]) ->
        infer env focus a
      | C.Call_builtin
          (("exactly-one" | "zero-or-one" | "one-or-more"), args) ->
        (* cardinality-checked: may raise on the input's cardinality
           even when the result is discarded *)
        let rs = List.concat_map (infer env focus) args in
        add_rd rs;
        rs
      | C.Call_builtin
          (("reverse" | "subsequence" | "remove" | "insert-before"), args) ->
        (* node-preserving sequence combinators: result nodes come
           from the arguments, nothing is atomized *)
        List.concat_map (infer env focus) args
      | C.Call_builtin (("root" | "id"), args) ->
        (* escapes to the whole document of the argument nodes *)
        let rs =
          List.sort_uniq compare
            (List.concat_map
               (fun a -> List.map widen_doc (infer env focus a))
               args)
        in
        add_rd rs;
        rs
      | C.Call_builtin (_, args) ->
        (* value builtins: atomize their node arguments *)
        List.iter consume args;
        []
      | C.Call_user (_, args) ->
        List.iter consume args;
        (* unknown function body: reads anywhere; writes too unless
           provably pure *)
        add_rd [ any_region ];
        if purity e <> Pure then add_wr [ any_region ];
        [ any_region ]
      | C.Elem (ns, c) | C.Attr (ns, c) | C.Pi_node (ns, c) ->
        (match ns with C.Dynamic n -> consume n | C.Static _ -> ());
        (* construction deep-copies its content *)
        consume c;
        []
      | C.Text_node a | C.Comment_node a | C.Doc_node a ->
        consume a;
        []
      | C.Copy a ->
        consume a;
        []
      | C.Insert (tgt, payload, dest, _) ->
        consume payload;
        let rdst = infer env focus dest in
        add_rd rdst;
        (match tgt with
        | C.T_first | C.T_last -> add_wr rdst
        | C.T_before | C.T_after -> add_wr (List.map parent_region rdst));
        []
      | C.Delete (a, _) ->
        let ra = infer env focus a in
        add_rd ra;
        add_wr (List.map parent_region ra);
        []
      | C.Replace (a, b, _) ->
        consume b;
        let ra = infer env focus a in
        add_rd ra;
        add_wr (List.map parent_region ra);
        []
      | C.Replace_value (a, b, _) ->
        consume b;
        let ra = infer env focus a in
        add_rd ra;
        add_wr ra;
        []
      | C.Rename (a, b, _) ->
        consume b;
        let ra = infer env focus a in
        add_rd ra;
        add_wr (List.map parent_region ra);
        []
      | C.Snap (_, a) ->
        (* shouldn't reach a footprint-scheduled plan (Snap is
           Effecting) — be safe anyway *)
        add_rd [ any_region ];
        add_wr [ any_region ];
        ignore (infer env focus a);
        []
    in
    let env =
      List.fold_left
        (fun env (v, _, e) -> SMap.add v (infer env [] e) env)
        SMap.empty prog.Normalize.global_vars
    in
    (match prog.Normalize.body with
    | None -> ()
    | Some b ->
      (* the final result is serialized: its subtrees are read *)
      add_rd (infer env [] b));
    normalize { reads = !rd; writes = !wr }
end
