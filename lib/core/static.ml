(* Static analyses over the core language:

   - variable-scope checking (undefined variables are a static error,
     XPST0008);
   - the *updating / effecting* classification sketched in §5: "the
     signature of functions coming from other modules should contain
     an updating flag, with the 'monadic' rule that a function that
     calls an updating function is updating as well." We compute it as
     a fixpoint over the call graph. The three-way classification is
     what the optimizer's rewrite guards consume (§4.2-4.3):

     Pure      — no update operations, no snap: freely reorderable;
     Updating  — emits update requests but contains no snap: the store
                 is untouched during evaluation, so the expression is
                 still "side-effects free" in the paper's sense and
                 lazy/algebraic evaluation applies, subject to
                 cardinality guards;
     Effecting — contains a snap (or calls a function that does): the
                 store may change mid-evaluation; evaluation order is
                 pinned. *)

module C = Core_ast
module Qname = Xqb_xml.Qname

exception Static_error = Normalize.Static_error

type purity = Pure | Updating | Effecting

let purity_to_string = function
  | Pure -> "pure"
  | Updating -> "updating"
  | Effecting -> "effecting"

let join a b =
  match a, b with
  | Effecting, _ | _, Effecting -> Effecting
  | Updating, _ | _, Updating -> Updating
  | Pure, Pure -> Pure

(* Purity of an expression, given a classification for user
   functions. *)
let rec purity_with lookup (e : C.expr) : purity =
  let sub = List.fold_left (fun acc e -> join acc (purity_with lookup e)) Pure in
  match e with
  | C.Insert _ | C.Delete _ | C.Replace _ | C.Replace_value _ | C.Rename _ ->
    join Updating (sub (C.sub_exprs e))
  | C.Snap _ -> Effecting
  | C.Call_user (f, args) ->
    join (lookup f (List.length args)) (sub args)
  | _ -> sub (C.sub_exprs e)

(* Fixpoint classification of the declared functions. *)
let classify_functions (funcs : Normalize.func list) :
    (Qname.t * int * purity) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Normalize.func) ->
      Hashtbl.replace tbl
        (Qname.to_string f.Normalize.fname, List.length f.Normalize.params)
        Pure)
    funcs;
  let lookup f n =
    match Hashtbl.find_opt tbl (Qname.to_string f, n) with
    | Some p -> p
    | None -> Pure  (* unknown functions are assumed pure; builtins are *)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Normalize.func) ->
        let key = (Qname.to_string f.Normalize.fname, List.length f.Normalize.params) in
        let old = Hashtbl.find tbl key in
        let nu = purity_with lookup f.Normalize.body in
        if nu <> old then begin
          Hashtbl.replace tbl key nu;
          changed := true
        end)
      funcs
  done;
  List.map
    (fun (f : Normalize.func) ->
      let n = List.length f.Normalize.params in
      ( f.Normalize.fname,
        n,
        Hashtbl.find tbl (Qname.to_string f.Normalize.fname, n) ))
    funcs

(* A reusable purity oracle for a program: the function-classification
   fixpoint runs once, not per query expression. *)
let purity_oracle (prog : Normalize.prog) : C.expr -> purity =
  let classified = classify_functions prog.Normalize.functions in
  let tbl = Hashtbl.create (List.length classified * 2) in
  List.iter
    (fun (f, n, p) -> Hashtbl.replace tbl (Qname.to_string f, n) p)
    classified;
  let lookup f n =
    Option.value ~default:Pure (Hashtbl.find_opt tbl (Qname.to_string f, n))
  in
  fun e -> purity_with lookup e

(* Purity of an expression in the context of a normalized program. *)
let purity_in_prog (prog : Normalize.prog) (e : C.expr) : purity =
  purity_oracle prog e

(* -- Node allocation --------------------------------------------------

   [Pure] means "emits no update requests and contains no snap" — but
   a pure expression may still *allocate* fresh nodes in the store
   (constructors, [Copy]). Allocation mutates the shared node table,
   so the service scheduler needs the stronger judgement below before
   it runs two queries concurrently against one store. *)

(* Does the expression allocate store nodes, given a judgement for
   user functions? Builtins never allocate: fn:doc only loads via the
   context's resolver, which {!Context.fork_read} drops. *)
let rec allocates_with lookup (e : C.expr) : bool =
  let sub = List.exists (allocates_with lookup) in
  match e with
  | C.Elem _ | C.Attr _ | C.Text_node _ | C.Comment_node _ | C.Pi_node _
  | C.Doc_node _ | C.Copy _ ->
    true
  (* update requests carry Copy-wrapped payloads; conservatively
     allocating (they are never Pure anyway) *)
  | C.Insert _ | C.Replace _ -> true
  | C.Call_user (f, args) -> lookup f (List.length args) || sub args
  | _ -> sub (C.sub_exprs e)

(* Fixpoint: a function that calls an allocating function allocates. *)
let classify_alloc_functions (funcs : Normalize.func list) :
    (Qname.t * int * bool) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Normalize.func) ->
      Hashtbl.replace tbl
        (Qname.to_string f.Normalize.fname, List.length f.Normalize.params)
        false)
    funcs;
  let lookup f n =
    Option.value ~default:false (Hashtbl.find_opt tbl (Qname.to_string f, n))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Normalize.func) ->
        let key = (Qname.to_string f.Normalize.fname, List.length f.Normalize.params) in
        let old = Hashtbl.find tbl key in
        let nu = allocates_with lookup f.Normalize.body in
        if nu <> old then begin
          Hashtbl.replace tbl key nu;
          changed := true
        end)
      funcs
  done;
  List.map
    (fun (f : Normalize.func) ->
      let n = List.length f.Normalize.params in
      ( f.Normalize.fname,
        n,
        Hashtbl.find tbl (Qname.to_string f.Normalize.fname, n) ))
    funcs

(* Can the whole program run concurrently with other such programs
   against a shared store? Required: every global initializer and the
   body are [Pure] *and* allocation-free. This is the gate the
   service scheduler's read side checks. *)
let prog_parallel_safe (prog : Normalize.prog) : bool =
  let purity = purity_oracle prog in
  let alloc_tbl = Hashtbl.create 16 in
  List.iter
    (fun (f, n, a) -> Hashtbl.replace alloc_tbl (Qname.to_string f, n) a)
    (classify_alloc_functions prog.Normalize.functions);
  let alloc_lookup f n =
    Option.value ~default:false (Hashtbl.find_opt alloc_tbl (Qname.to_string f, n))
  in
  let safe e = purity e = Pure && not (allocates_with alloc_lookup e) in
  List.for_all (fun (_, _, e) -> safe e) prog.Normalize.global_vars
  && (match prog.Normalize.body with None -> true | Some b -> safe b)

(* -- Variable scoping ------------------------------------------------ *)

module SSet = Set.Make (String)

(* Free variables of a core expression (used by the optimizer's
   independence guards, §4.3: "a form of query independence"). *)
let rec free_vars (e : C.expr) : SSet.t =
  match e with
  | C.Var v -> SSet.singleton v
  | C.For (v, posvar, e1, body) ->
    let bound = SSet.add v (match posvar with Some p -> SSet.singleton p | None -> SSet.empty) in
    SSet.union (free_vars e1) (SSet.diff (free_vars body) bound)
  | C.Let (v, e1, body) | C.Some_sat (v, e1, body) | C.Every_sat (v, e1, body) ->
    SSet.union (free_vars e1) (SSet.remove v (free_vars body))
  | C.Sort_flwor (clauses, specs, ret) ->
    let bound, acc =
      List.fold_left
        (fun (bound, acc) c ->
          match c with
          | C.S_for (v, posvar, e) ->
            let acc = SSet.union acc (SSet.diff (free_vars e) bound) in
            let bound = SSet.add v bound in
            let bound =
              match posvar with Some p -> SSet.add p bound | None -> bound
            in
            (bound, acc)
          | C.S_let (v, e) ->
            let acc = SSet.union acc (SSet.diff (free_vars e) bound) in
            (SSet.add v bound, acc)
          | C.S_where e -> (bound, SSet.union acc (SSet.diff (free_vars e) bound)))
        (SSet.empty, SSet.empty) clauses
    in
    let inner =
      List.fold_left
        (fun acc (k, _) -> SSet.union acc (free_vars k))
        (free_vars ret) specs
    in
    SSet.union acc (SSet.diff inner bound)
  | _ ->
    List.fold_left
      (fun acc sub -> SSet.union acc (free_vars sub))
      SSet.empty (C.sub_exprs e)

let is_independent_of e vars =
  SSet.disjoint (free_vars e) (SSet.of_list vars)

let rec check_scopes (bound : SSet.t) (e : C.expr) : unit =
  match e with
  | C.Var v ->
    if not (SSet.mem v bound) then
      raise (Static_error (Printf.sprintf "undefined variable $%s" v))
  | C.For (v, posvar, e1, body) ->
    check_scopes bound e1;
    let bound = SSet.add v bound in
    let bound = match posvar with Some p -> SSet.add p bound | None -> bound in
    check_scopes bound body
  | C.Let (v, e1, body) ->
    check_scopes bound e1;
    check_scopes (SSet.add v bound) body
  | C.Some_sat (v, e1, body) | C.Every_sat (v, e1, body) ->
    check_scopes bound e1;
    check_scopes (SSet.add v bound) body
  | C.Sort_flwor (clauses, specs, ret) ->
    let bound =
      List.fold_left
        (fun bound c ->
          match c with
          | C.S_for (v, posvar, e) ->
            check_scopes bound e;
            let bound = SSet.add v bound in
            (match posvar with Some p -> SSet.add p bound | None -> bound)
          | C.S_let (v, e) ->
            check_scopes bound e;
            SSet.add v bound
          | C.S_where e ->
            check_scopes bound e;
            bound)
        bound clauses
    in
    List.iter (fun (k, _) -> check_scopes bound k) specs;
    check_scopes bound ret
  | _ -> List.iter (check_scopes bound) (C.sub_exprs e)

let check_prog ?(initial = []) (prog : Normalize.prog) =
  (* Globals are visible to later globals, to all functions and the
     body; function parameters shadow globals. [initial] holds names
     bound by the host (e.g. [Engine.bind]). *)
  let globals =
    List.fold_left
      (fun seen (v, _, e) ->
        check_scopes seen e;
        SSet.add v seen)
      (SSet.of_list initial) prog.Normalize.global_vars
  in
  List.iter
    (fun (f : Normalize.func) ->
      let bound =
        List.fold_left
          (fun acc (p, _) -> SSet.add p acc)
          globals f.Normalize.params
      in
      check_scopes bound f.Normalize.body)
    prog.Normalize.functions;
  Option.iter (check_scopes globals) prog.Normalize.body
