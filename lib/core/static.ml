(* Static analyses over the core language:

   - variable-scope checking (undefined variables are a static error,
     XPST0008);
   - the *updating / effecting* classification sketched in §5: "the
     signature of functions coming from other modules should contain
     an updating flag, with the 'monadic' rule that a function that
     calls an updating function is updating as well." We compute it as
     a fixpoint over the call graph. The three-way classification is
     what the optimizer's rewrite guards consume (§4.2-4.3):

     Pure      — no update operations, no snap: freely reorderable;
     Updating  — emits update requests but contains no snap: the store
                 is untouched during evaluation, so the expression is
                 still "side-effects free" in the paper's sense and
                 lazy/algebraic evaluation applies, subject to
                 cardinality guards;
     Effecting — contains a snap (or calls a function that does): the
                 store may change mid-evaluation; evaluation order is
                 pinned. *)

module C = Core_ast
module Qname = Xqb_xml.Qname

exception Static_error = Normalize.Static_error

type purity = Pure | Updating | Effecting

let purity_to_string = function
  | Pure -> "pure"
  | Updating -> "updating"
  | Effecting -> "effecting"

let join a b =
  match a, b with
  | Effecting, _ | _, Effecting -> Effecting
  | Updating, _ | _, Updating -> Updating
  | Pure, Pure -> Pure

(* Purity of an expression, given a classification for user
   functions. *)
let rec purity_with lookup (e : C.expr) : purity =
  let sub = List.fold_left (fun acc e -> join acc (purity_with lookup e)) Pure in
  match e with
  | C.Insert _ | C.Delete _ | C.Replace _ | C.Replace_value _ | C.Rename _ ->
    join Updating (sub (C.sub_exprs e))
  | C.Snap _ -> Effecting
  | C.Call_user (f, args) ->
    join (lookup f (List.length args)) (sub args)
  | _ -> sub (C.sub_exprs e)

(* Fixpoint classification of the declared functions. *)
let classify_functions (funcs : Normalize.func list) :
    (Qname.t * int * purity) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Normalize.func) ->
      Hashtbl.replace tbl
        (Qname.to_string f.Normalize.fname, List.length f.Normalize.params)
        Pure)
    funcs;
  let lookup f n =
    match Hashtbl.find_opt tbl (Qname.to_string f, n) with
    | Some p -> p
    | None -> Pure  (* unknown functions are assumed pure; builtins are *)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Normalize.func) ->
        let key = (Qname.to_string f.Normalize.fname, List.length f.Normalize.params) in
        let old = Hashtbl.find tbl key in
        let nu = purity_with lookup f.Normalize.body in
        if nu <> old then begin
          Hashtbl.replace tbl key nu;
          changed := true
        end)
      funcs
  done;
  List.map
    (fun (f : Normalize.func) ->
      let n = List.length f.Normalize.params in
      ( f.Normalize.fname,
        n,
        Hashtbl.find tbl (Qname.to_string f.Normalize.fname, n) ))
    funcs

(* A reusable purity oracle for a program: the function-classification
   fixpoint runs once, not per query expression. *)
let purity_oracle (prog : Normalize.prog) : C.expr -> purity =
  let classified = classify_functions prog.Normalize.functions in
  let tbl = Hashtbl.create (List.length classified * 2) in
  List.iter
    (fun (f, n, p) -> Hashtbl.replace tbl (Qname.to_string f, n) p)
    classified;
  let lookup f n =
    Option.value ~default:Pure (Hashtbl.find_opt tbl (Qname.to_string f, n))
  in
  fun e -> purity_with lookup e

(* Purity of an expression in the context of a normalized program. *)
let purity_in_prog (prog : Normalize.prog) (e : C.expr) : purity =
  purity_oracle prog e

(* -- Node allocation --------------------------------------------------

   [Pure] means "emits no update requests and contains no snap" — but
   a pure expression may still *allocate* fresh nodes in the store
   (constructors, [Copy]). Allocation mutates the shared node table,
   so the service scheduler needs the stronger judgement below before
   it runs two queries concurrently against one store. *)

(* Does the expression allocate store nodes, given a judgement for
   user functions? Builtins never allocate: fn:doc only loads via the
   context's resolver, which {!Context.fork_read} drops. *)
let rec allocates_with lookup (e : C.expr) : bool =
  let sub = List.exists (allocates_with lookup) in
  match e with
  | C.Elem _ | C.Attr _ | C.Text_node _ | C.Comment_node _ | C.Pi_node _
  | C.Doc_node _ | C.Copy _ ->
    true
  (* update requests carry Copy-wrapped payloads; conservatively
     allocating (they are never Pure anyway) *)
  | C.Insert _ | C.Replace _ -> true
  | C.Call_user (f, args) -> lookup f (List.length args) || sub args
  | _ -> sub (C.sub_exprs e)

(* Fixpoint: a function that calls an allocating function allocates. *)
let classify_alloc_functions (funcs : Normalize.func list) :
    (Qname.t * int * bool) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Normalize.func) ->
      Hashtbl.replace tbl
        (Qname.to_string f.Normalize.fname, List.length f.Normalize.params)
        false)
    funcs;
  let lookup f n =
    Option.value ~default:false (Hashtbl.find_opt tbl (Qname.to_string f, n))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Normalize.func) ->
        let key = (Qname.to_string f.Normalize.fname, List.length f.Normalize.params) in
        let old = Hashtbl.find tbl key in
        let nu = allocates_with lookup f.Normalize.body in
        if nu <> old then begin
          Hashtbl.replace tbl key nu;
          changed := true
        end)
      funcs
  done;
  List.map
    (fun (f : Normalize.func) ->
      let n = List.length f.Normalize.params in
      ( f.Normalize.fname,
        n,
        Hashtbl.find tbl (Qname.to_string f.Normalize.fname, n) ))
    funcs

(* Can the whole program run concurrently with other such programs
   against a shared store? Required: every global initializer and the
   body are [Pure] *and* allocation-free. This is the gate the
   service scheduler's read side checks. *)
let prog_parallel_safe (prog : Normalize.prog) : bool =
  let purity = purity_oracle prog in
  let alloc_tbl = Hashtbl.create 16 in
  List.iter
    (fun (f, n, a) -> Hashtbl.replace alloc_tbl (Qname.to_string f, n) a)
    (classify_alloc_functions prog.Normalize.functions);
  let alloc_lookup f n =
    Option.value ~default:false (Hashtbl.find_opt alloc_tbl (Qname.to_string f, n))
  in
  let safe e = purity e = Pure && not (allocates_with alloc_lookup e) in
  List.for_all (fun (_, _, e) -> safe e) prog.Normalize.global_vars
  && (match prog.Normalize.body with None -> true | Some b -> safe b)

(* -- Variable scoping ------------------------------------------------ *)

module SSet = Set.Make (String)

(* Free variables of a core expression (used by the optimizer's
   independence guards, §4.3: "a form of query independence"). *)
let rec free_vars (e : C.expr) : SSet.t =
  match e with
  | C.Var v -> SSet.singleton v
  | C.For (v, posvar, e1, body) ->
    let bound = SSet.add v (match posvar with Some p -> SSet.singleton p | None -> SSet.empty) in
    SSet.union (free_vars e1) (SSet.diff (free_vars body) bound)
  | C.Let (v, e1, body) | C.Some_sat (v, e1, body) | C.Every_sat (v, e1, body) ->
    SSet.union (free_vars e1) (SSet.remove v (free_vars body))
  | C.Sort_flwor (clauses, specs, ret) ->
    let bound, acc =
      List.fold_left
        (fun (bound, acc) c ->
          match c with
          | C.S_for (v, posvar, e) ->
            let acc = SSet.union acc (SSet.diff (free_vars e) bound) in
            let bound = SSet.add v bound in
            let bound =
              match posvar with Some p -> SSet.add p bound | None -> bound
            in
            (bound, acc)
          | C.S_let (v, e) ->
            let acc = SSet.union acc (SSet.diff (free_vars e) bound) in
            (SSet.add v bound, acc)
          | C.S_where e -> (bound, SSet.union acc (SSet.diff (free_vars e) bound)))
        (SSet.empty, SSet.empty) clauses
    in
    let inner =
      List.fold_left
        (fun acc (k, _) -> SSet.union acc (free_vars k))
        (free_vars ret) specs
    in
    SSet.union acc (SSet.diff inner bound)
  | _ ->
    List.fold_left
      (fun acc sub -> SSet.union acc (free_vars sub))
      SSet.empty (C.sub_exprs e)

let is_independent_of e vars =
  SSet.disjoint (free_vars e) (SSet.of_list vars)

let rec check_scopes (bound : SSet.t) (e : C.expr) : unit =
  match e with
  | C.Var v ->
    if not (SSet.mem v bound) then
      raise (Static_error (Printf.sprintf "undefined variable $%s" v))
  | C.For (v, posvar, e1, body) ->
    check_scopes bound e1;
    let bound = SSet.add v bound in
    let bound = match posvar with Some p -> SSet.add p bound | None -> bound in
    check_scopes bound body
  | C.Let (v, e1, body) ->
    check_scopes bound e1;
    check_scopes (SSet.add v bound) body
  | C.Some_sat (v, e1, body) | C.Every_sat (v, e1, body) ->
    check_scopes bound e1;
    check_scopes (SSet.add v bound) body
  | C.Sort_flwor (clauses, specs, ret) ->
    let bound =
      List.fold_left
        (fun bound c ->
          match c with
          | C.S_for (v, posvar, e) ->
            check_scopes bound e;
            let bound = SSet.add v bound in
            (match posvar with Some p -> SSet.add p bound | None -> bound)
          | C.S_let (v, e) ->
            check_scopes bound e;
            SSet.add v bound
          | C.S_where e ->
            check_scopes bound e;
            bound)
        bound clauses
    in
    List.iter (fun (k, _) -> check_scopes bound k) specs;
    check_scopes bound ret
  | _ -> List.iter (check_scopes bound) (C.sub_exprs e)

let check_prog ?(initial = []) (prog : Normalize.prog) =
  (* Globals are visible to later globals, to all functions and the
     body; function parameters shadow globals. [initial] holds names
     bound by the host (e.g. [Engine.bind]). *)
  let globals =
    List.fold_left
      (fun seen (v, _, e) ->
        check_scopes seen e;
        SSet.add v seen)
      (SSet.of_list initial) prog.Normalize.global_vars
  in
  List.iter
    (fun (f : Normalize.func) ->
      let bound =
        List.fold_left
          (fun acc (p, _) -> SSet.add p acc)
          globals f.Normalize.params
      in
      check_scopes bound f.Normalize.body)
    prog.Normalize.functions;
  Option.iter (check_scopes globals) prog.Normalize.body

(* -- Document-order analysis and ddo elision --------------------------

   Normalization wraps every path step in the "%ddo" builtin (sort
   into document order, drop duplicates). For a large class of paths
   the input is already provably sorted and duplicate-free — children
   of a single node, a descendant walk from unrelated sorted roots —
   and the sort is pure overhead. The judgement below computes, per
   expression, what can be promised about its result's order; the
   [elide_ddo] pass rewrites certified "%ddo" nodes to "%ddo-elided"
   (the identity, plus an instrumentation counter).

   Soundness leans on the paper's §3.3 purity observation: update
   requests only apply at snap boundaries, so as long as the
   expression under the ddo contains no snap (purity <> Effecting),
   the tree is frozen for the whole evaluation of that expression and
   structural facts ("the subtrees of unrelated nodes are disjoint
   document-order intervals") compose across its iterations. *)

type order_info = {
  o_sorted : bool;  (* items are in document order *)
  o_nodup : bool;  (* no duplicate nodes *)
  o_unrelated : bool;  (* no item is an ancestor of another *)
  o_single : bool;  (* at most one item *)
  o_node_only : bool;  (* every item is a node (ddo would not raise) *)
}

let o_bottom =
  { o_sorted = false; o_nodup = false; o_unrelated = false; o_single = false;
    o_node_only = false }

(* One item of unknown kind: trivially sorted/distinct/unrelated. *)
let o_one =
  { o_sorted = true; o_nodup = true; o_unrelated = true; o_single = true;
    o_node_only = false }

(* Exactly one node (constructors, doc()). *)
let o_one_node = { o_one with o_node_only = true }

let o_meet a b =
  { o_sorted = a.o_sorted && b.o_sorted;
    o_nodup = a.o_nodup && b.o_nodup;
    o_unrelated = a.o_unrelated && b.o_unrelated;
    o_single = a.o_single && b.o_single;
    o_node_only = a.o_node_only && b.o_node_only }

(* A sorted sequence of unrelated duplicate-free nodes distributes
   through downward axes: their subtrees are disjoint intervals in
   document order, so per-node results concatenate in order. A single
   node qualifies trivially. *)
let good_in i = i.o_single || (i.o_sorted && i.o_nodup && i.o_unrelated)

(* Does every result of [e] lie inside the subtree of [v]'s binding?
   (Conservative syntactic check: chains of self/child/attribute/
   descendant steps and predicates from $v.) This is what lets a
   [for] over unrelated sorted roots keep its blocks disjoint. *)
let rec downward v (e : C.expr) =
  match e with
  | C.Var x -> String.equal x v
  | C.Step
      ( b,
        ( C.Axes.Self | C.Axes.Child | C.Axes.Attribute | C.Axes.Descendant
        | C.Axes.Descendant_or_self ),
        _ ) ->
    downward v b
  | C.Predicate (b, _) -> downward v b
  | C.Call_builtin (("%ddo" | "%ddo-elided"), [ b ]) -> downward v b
  | C.For (w, _, b, body) -> downward v b && downward w body
  | _ -> false

(* [singles] holds variables known to be bound to at most one item:
   for/some/every binders (one item at a time, by construction),
   positional variables, and lets of provably-single expressions. *)
let rec order_of (singles : SSet.t) (e : C.expr) : order_info =
  let step_out = { o_bottom with o_node_only = true } in
  match e with
  | C.Empty -> { o_one with o_node_only = true }  (* vacuously *)
  | C.Scalar _ | C.Context_item -> o_one
  | C.Var x -> if SSet.mem x singles then o_one else o_bottom
  | C.Elem _ | C.Attr _ | C.Text_node _ | C.Comment_node _ | C.Pi_node _
  | C.Doc_node _ | C.Copy _ ->
    o_one_node
  (* updating expressions evaluate to the empty sequence *)
  | C.Insert _ | C.Delete _ | C.Replace _ | C.Replace_value _ | C.Rename _ ->
    { o_one with o_node_only = true }
  | C.Call_builtin ("doc", _) -> o_one_node
  | C.Call_builtin (("%ddo" | "%ddo-elided"), [ arg ]) ->
    let i = order_of singles arg in
    { o_sorted = true; o_nodup = true; o_unrelated = i.o_unrelated;
      o_single = i.o_single; o_node_only = true }
  | C.Step (b, axis, _) -> (
    let i = order_of singles b in
    match axis with
    | C.Axes.Self -> { i with o_node_only = true }
    | C.Axes.Child | C.Axes.Attribute ->
      if good_in i then
        { o_sorted = true; o_nodup = true; o_unrelated = true;
          o_single = false; o_node_only = true }
      else step_out
    | C.Axes.Descendant | C.Axes.Descendant_or_self ->
      (* subtrees of unrelated sorted roots are disjoint intervals;
         the result contains ancestor/descendant pairs, so
         [o_unrelated] is lost *)
      if good_in i then
        { o_sorted = true; o_nodup = true; o_unrelated = false;
          o_single = false; o_node_only = true }
      else step_out
    | C.Axes.Following_sibling ->
      if i.o_single then
        { o_sorted = true; o_nodup = true; o_unrelated = true;
          o_single = false; o_node_only = true }
      else step_out
    | C.Axes.Following ->
      if i.o_single then
        { o_sorted = true; o_nodup = true; o_unrelated = false;
          o_single = false; o_node_only = true }
      else step_out
    | C.Axes.Parent -> if i.o_single then o_one_node else step_out
    (* reverse axes emit reverse document order *)
    | C.Axes.Ancestor | C.Axes.Ancestor_or_self | C.Axes.Preceding_sibling
    | C.Axes.Preceding ->
      step_out)
  (* Key_step concatenates per-key bucket lookups: not sorted across
     multiple keys *)
  | C.Key_step _ -> step_out
  | C.Predicate (b, _) -> order_of singles b  (* filtering preserves all *)
  | C.For (v, posvar, e1, body) ->
    let i1 = order_of singles e1 in
    let singles_body =
      SSet.add v
        (match posvar with Some p -> SSet.add p singles | None -> singles)
    in
    let ib = order_of singles_body body in
    if i1.o_single then ib
    else if
      i1.o_sorted && i1.o_nodup && i1.o_unrelated && ib.o_sorted && ib.o_nodup
      && downward v body
    then
      { o_sorted = true; o_nodup = true; o_unrelated = ib.o_unrelated;
        o_single = false; o_node_only = ib.o_node_only }
    else o_bottom
  | C.Let (v, e1, body) ->
    let i1 = order_of singles e1 in
    let singles' =
      if i1.o_single then SSet.add v singles else SSet.remove v singles
    in
    order_of singles' body
  | C.Some_sat _ | C.Every_sat _ -> o_one  (* a boolean *)
  | C.If (_, t, e) -> o_meet (order_of singles t) (order_of singles e)
  | C.Treat_as (e1, _) -> order_of singles e1
  | C.Instance_of _ | C.Castable_as _ | C.Cast_as _ | C.Unary_minus _ -> o_one
  | C.Binop (op, _, _) -> (
    match op with
    | Xqb_syntax.Ast.Union | Xqb_syntax.Ast.Intersect | Xqb_syntax.Ast.Except ->
      (* the evaluator sorts set-operation results *)
      { o_sorted = true; o_nodup = true; o_unrelated = false;
        o_single = false; o_node_only = true }
    | Xqb_syntax.Ast.To -> o_bottom  (* a range: many integers *)
    | _ -> o_one (* comparisons, logic, arithmetic: one atomic *))
  | C.Seq _ | C.Map _ | C.Sort_flwor _ | C.Call_builtin _ | C.Call_user _
  | C.Snap _ ->
    o_bottom

(* Rewrite certified "%ddo" applications to "%ddo-elided" (identity +
   counter). Gated per-site on the purity of the sorted expression:
   a snap inside it would mutate the tree mid-evaluation and void the
   structural reasoning above. Returns the rewritten expression and
   the number of sites elided. *)
let elide_ddo ~purity (e : C.expr) : C.expr * int =
  let count = ref 0 in
  let rec go singles e =
    match e with
    | C.Call_builtin ("%ddo", [ arg ]) ->
      let arg' = go singles arg in
      let i = order_of singles arg' in
      if i.o_sorted && i.o_nodup && i.o_node_only && purity arg' <> Effecting
      then begin
        incr count;
        C.Call_builtin ("%ddo-elided", [ arg' ])
      end
      else C.Call_builtin ("%ddo", [ arg' ])
    | C.For (v, posvar, e1, body) ->
      let e1' = go singles e1 in
      let singles_body =
        SSet.add v
          (match posvar with Some p -> SSet.add p singles | None -> singles)
      in
      C.For (v, posvar, e1', go singles_body body)
    | C.Let (v, e1, body) ->
      let e1' = go singles e1 in
      let singles' =
        if (order_of singles e1').o_single then SSet.add v singles
        else SSet.remove v singles
      in
      C.Let (v, e1', go singles' body)
    | C.Some_sat (v, e1, body) ->
      C.Some_sat (v, go singles e1, go (SSet.add v singles) body)
    | C.Every_sat (v, e1, body) ->
      C.Every_sat (v, go singles e1, go (SSet.add v singles) body)
    | C.Sort_flwor (clauses, specs, ret) ->
      let singles', rev_clauses =
        List.fold_left
          (fun (singles, acc) c ->
            match c with
            | C.S_for (v, posvar, e) ->
              let e' = go singles e in
              let singles =
                SSet.add v
                  (match posvar with
                  | Some p -> SSet.add p singles
                  | None -> singles)
              in
              (singles, C.S_for (v, posvar, e') :: acc)
            | C.S_let (v, e) ->
              let e' = go singles e in
              let singles =
                if (order_of singles e').o_single then SSet.add v singles
                else SSet.remove v singles
              in
              (singles, C.S_let (v, e') :: acc)
            | C.S_where e -> (singles, C.S_where (go singles e) :: acc))
          (singles, []) clauses
      in
      C.Sort_flwor
        ( List.rev rev_clauses,
          List.map (fun (k, d) -> (go singles' k, d)) specs,
          go singles' ret )
    | C.Scalar _ | C.Var _ | C.Context_item | C.Empty -> e
    | C.Seq (a, b) -> C.Seq (go singles a, go singles b)
    | C.If (c, t, el) -> C.If (go singles c, go singles t, go singles el)
    | C.Step (b, ax, t) -> C.Step (go singles b, ax, t)
    | C.Key_step (b, elem, attr, rhs) ->
      C.Key_step (go singles b, elem, attr, go singles rhs)
    | C.Map (a, b) -> C.Map (go singles a, go singles b)
    | C.Predicate (a, b) -> C.Predicate (go singles a, go singles b)
    | C.Binop (op, a, b) -> C.Binop (op, go singles a, go singles b)
    | C.Unary_minus a -> C.Unary_minus (go singles a)
    | C.Call_builtin (f, args) -> C.Call_builtin (f, List.map (go singles) args)
    | C.Call_user (f, args) -> C.Call_user (f, List.map (go singles) args)
    | C.Instance_of (a, t) -> C.Instance_of (go singles a, t)
    | C.Cast_as (a, t) -> C.Cast_as (go singles a, t)
    | C.Castable_as (a, t) -> C.Castable_as (go singles a, t)
    | C.Treat_as (a, t) -> C.Treat_as (go singles a, t)
    | C.Elem (ns, c) -> C.Elem (go_ns singles ns, go singles c)
    | C.Attr (ns, c) -> C.Attr (go_ns singles ns, go singles c)
    | C.Text_node a -> C.Text_node (go singles a)
    | C.Comment_node a -> C.Comment_node (go singles a)
    | C.Pi_node (ns, a) -> C.Pi_node (go_ns singles ns, go singles a)
    | C.Doc_node a -> C.Doc_node (go singles a)
    | C.Insert (tgt, payload, dest, loc) ->
      C.Insert (tgt, go singles payload, go singles dest, loc)
    | C.Delete (a, loc) -> C.Delete (go singles a, loc)
    | C.Replace (a, b, loc) -> C.Replace (go singles a, go singles b, loc)
    | C.Replace_value (a, b, loc) ->
      C.Replace_value (go singles a, go singles b, loc)
    | C.Rename (a, b, loc) -> C.Rename (go singles a, go singles b, loc)
    | C.Copy a -> C.Copy (go singles a)
    | C.Snap (m, a) -> C.Snap (m, go singles a)
  and go_ns singles = function
    | C.Static q -> C.Static q
    | C.Dynamic e -> C.Dynamic (go singles e)
  in
  let e' = go SSet.empty e in
  (e', !count)
